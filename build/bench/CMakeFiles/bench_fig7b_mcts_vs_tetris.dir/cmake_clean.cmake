file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7b_mcts_vs_tetris.dir/bench_fig7b_mcts_vs_tetris.cpp.o"
  "CMakeFiles/bench_fig7b_mcts_vs_tetris.dir/bench_fig7b_mcts_vs_tetris.cpp.o.d"
  "bench_fig7b_mcts_vs_tetris"
  "bench_fig7b_mcts_vs_tetris.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7b_mcts_vs_tetris.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
