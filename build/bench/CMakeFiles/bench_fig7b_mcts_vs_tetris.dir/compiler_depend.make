# Empty compiler generated dependencies file for bench_fig7b_mcts_vs_tetris.
# This may be replaced when dependencies are built.
