# Empty dependencies file for bench_fig9a_trace_tasks.
# This may be replaced when dependencies are built.
