file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7a_mcts_budget.dir/bench_fig7a_mcts_budget.cpp.o"
  "CMakeFiles/bench_fig7a_mcts_budget.dir/bench_fig7a_mcts_budget.cpp.o.d"
  "bench_fig7a_mcts_budget"
  "bench_fig7a_mcts_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7a_mcts_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
