# Empty dependencies file for bench_fig7a_mcts_budget.
# This may be replaced when dependencies are built.
