file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6a_makespan.dir/bench_fig6a_makespan.cpp.o"
  "CMakeFiles/bench_fig6a_makespan.dir/bench_fig6a_makespan.cpp.o.d"
  "bench_fig6a_makespan"
  "bench_fig6a_makespan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6a_makespan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
