# Empty compiler generated dependencies file for bench_fig9c_trace_reduction.
# This may be replaced when dependencies are built.
