file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8a_spear_vs_mcts.dir/bench_fig8a_spear_vs_mcts.cpp.o"
  "CMakeFiles/bench_fig8a_spear_vs_mcts.dir/bench_fig8a_spear_vs_mcts.cpp.o.d"
  "bench_fig8a_spear_vs_mcts"
  "bench_fig8a_spear_vs_mcts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8a_spear_vs_mcts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
