# Empty compiler generated dependencies file for bench_fig8a_spear_vs_mcts.
# This may be replaced when dependencies are built.
