# Empty dependencies file for bench_fig6b_runtime.
# This may be replaced when dependencies are built.
