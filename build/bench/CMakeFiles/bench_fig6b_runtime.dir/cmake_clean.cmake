file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6b_runtime.dir/bench_fig6b_runtime.cpp.o"
  "CMakeFiles/bench_fig6b_runtime.dir/bench_fig6b_runtime.cpp.o.d"
  "bench_fig6b_runtime"
  "bench_fig6b_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6b_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
