file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8b_learning_curve.dir/bench_fig8b_learning_curve.cpp.o"
  "CMakeFiles/bench_fig8b_learning_curve.dir/bench_fig8b_learning_curve.cpp.o.d"
  "bench_fig8b_learning_curve"
  "bench_fig8b_learning_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8b_learning_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
