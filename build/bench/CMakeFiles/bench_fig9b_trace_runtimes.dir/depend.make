# Empty dependencies file for bench_fig9b_trace_runtimes.
# This may be replaced when dependencies are built.
