
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/train_policy.cpp" "examples/CMakeFiles/train_policy.dir/train_policy.cpp.o" "gcc" "examples/CMakeFiles/train_policy.dir/train_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spear_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spear_mcts.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spear_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spear_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spear_env.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spear_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spear_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spear_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spear_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spear_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
