# Empty compiler generated dependencies file for spark_stages.
# This may be replaced when dependencies are built.
