file(REMOVE_RECURSE
  "CMakeFiles/spark_stages.dir/spark_stages.cpp.o"
  "CMakeFiles/spark_stages.dir/spark_stages.cpp.o.d"
  "spark_stages"
  "spark_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spark_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
