file(REMOVE_RECURSE
  "libspear_sched.a"
)
