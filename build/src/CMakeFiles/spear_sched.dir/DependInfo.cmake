
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/critical_path.cpp" "src/CMakeFiles/spear_sched.dir/sched/critical_path.cpp.o" "gcc" "src/CMakeFiles/spear_sched.dir/sched/critical_path.cpp.o.d"
  "/root/repo/src/sched/graphene.cpp" "src/CMakeFiles/spear_sched.dir/sched/graphene.cpp.o" "gcc" "src/CMakeFiles/spear_sched.dir/sched/graphene.cpp.o.d"
  "/root/repo/src/sched/insertion.cpp" "src/CMakeFiles/spear_sched.dir/sched/insertion.cpp.o" "gcc" "src/CMakeFiles/spear_sched.dir/sched/insertion.cpp.o.d"
  "/root/repo/src/sched/list_scheduler.cpp" "src/CMakeFiles/spear_sched.dir/sched/list_scheduler.cpp.o" "gcc" "src/CMakeFiles/spear_sched.dir/sched/list_scheduler.cpp.o.d"
  "/root/repo/src/sched/random_scheduler.cpp" "src/CMakeFiles/spear_sched.dir/sched/random_scheduler.cpp.o" "gcc" "src/CMakeFiles/spear_sched.dir/sched/random_scheduler.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/CMakeFiles/spear_sched.dir/sched/scheduler.cpp.o" "gcc" "src/CMakeFiles/spear_sched.dir/sched/scheduler.cpp.o.d"
  "/root/repo/src/sched/sjf.cpp" "src/CMakeFiles/spear_sched.dir/sched/sjf.cpp.o" "gcc" "src/CMakeFiles/spear_sched.dir/sched/sjf.cpp.o.d"
  "/root/repo/src/sched/tetris.cpp" "src/CMakeFiles/spear_sched.dir/sched/tetris.cpp.o" "gcc" "src/CMakeFiles/spear_sched.dir/sched/tetris.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spear_env.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spear_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spear_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spear_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
