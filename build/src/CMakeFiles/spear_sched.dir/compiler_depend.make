# Empty compiler generated dependencies file for spear_sched.
# This may be replaced when dependencies are built.
