file(REMOVE_RECURSE
  "CMakeFiles/spear_sched.dir/sched/critical_path.cpp.o"
  "CMakeFiles/spear_sched.dir/sched/critical_path.cpp.o.d"
  "CMakeFiles/spear_sched.dir/sched/graphene.cpp.o"
  "CMakeFiles/spear_sched.dir/sched/graphene.cpp.o.d"
  "CMakeFiles/spear_sched.dir/sched/insertion.cpp.o"
  "CMakeFiles/spear_sched.dir/sched/insertion.cpp.o.d"
  "CMakeFiles/spear_sched.dir/sched/list_scheduler.cpp.o"
  "CMakeFiles/spear_sched.dir/sched/list_scheduler.cpp.o.d"
  "CMakeFiles/spear_sched.dir/sched/random_scheduler.cpp.o"
  "CMakeFiles/spear_sched.dir/sched/random_scheduler.cpp.o.d"
  "CMakeFiles/spear_sched.dir/sched/scheduler.cpp.o"
  "CMakeFiles/spear_sched.dir/sched/scheduler.cpp.o.d"
  "CMakeFiles/spear_sched.dir/sched/sjf.cpp.o"
  "CMakeFiles/spear_sched.dir/sched/sjf.cpp.o.d"
  "CMakeFiles/spear_sched.dir/sched/tetris.cpp.o"
  "CMakeFiles/spear_sched.dir/sched/tetris.cpp.o.d"
  "libspear_sched.a"
  "libspear_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spear_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
