file(REMOVE_RECURSE
  "libspear_rl.a"
)
