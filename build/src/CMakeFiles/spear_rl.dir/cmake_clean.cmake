file(REMOVE_RECURSE
  "CMakeFiles/spear_rl.dir/rl/imitation.cpp.o"
  "CMakeFiles/spear_rl.dir/rl/imitation.cpp.o.d"
  "CMakeFiles/spear_rl.dir/rl/policy.cpp.o"
  "CMakeFiles/spear_rl.dir/rl/policy.cpp.o.d"
  "CMakeFiles/spear_rl.dir/rl/reinforce.cpp.o"
  "CMakeFiles/spear_rl.dir/rl/reinforce.cpp.o.d"
  "libspear_rl.a"
  "libspear_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spear_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
