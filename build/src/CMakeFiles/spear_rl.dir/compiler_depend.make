# Empty compiler generated dependencies file for spear_rl.
# This may be replaced when dependencies are built.
