# Empty dependencies file for spear_env.
# This may be replaced when dependencies are built.
