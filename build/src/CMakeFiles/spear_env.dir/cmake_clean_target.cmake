file(REMOVE_RECURSE
  "libspear_env.a"
)
