file(REMOVE_RECURSE
  "CMakeFiles/spear_env.dir/env/env.cpp.o"
  "CMakeFiles/spear_env.dir/env/env.cpp.o.d"
  "CMakeFiles/spear_env.dir/env/featurizer.cpp.o"
  "CMakeFiles/spear_env.dir/env/featurizer.cpp.o.d"
  "libspear_env.a"
  "libspear_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spear_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
