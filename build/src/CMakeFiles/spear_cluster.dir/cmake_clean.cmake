file(REMOVE_RECURSE
  "CMakeFiles/spear_cluster.dir/cluster/gantt.cpp.o"
  "CMakeFiles/spear_cluster.dir/cluster/gantt.cpp.o.d"
  "CMakeFiles/spear_cluster.dir/cluster/resource_time_space.cpp.o"
  "CMakeFiles/spear_cluster.dir/cluster/resource_time_space.cpp.o.d"
  "CMakeFiles/spear_cluster.dir/cluster/schedule.cpp.o"
  "CMakeFiles/spear_cluster.dir/cluster/schedule.cpp.o.d"
  "CMakeFiles/spear_cluster.dir/cluster/simulator.cpp.o"
  "CMakeFiles/spear_cluster.dir/cluster/simulator.cpp.o.d"
  "libspear_cluster.a"
  "libspear_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spear_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
