file(REMOVE_RECURSE
  "libspear_cluster.a"
)
