# Empty dependencies file for spear_cluster.
# This may be replaced when dependencies are built.
