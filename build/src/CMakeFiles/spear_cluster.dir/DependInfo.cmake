
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/gantt.cpp" "src/CMakeFiles/spear_cluster.dir/cluster/gantt.cpp.o" "gcc" "src/CMakeFiles/spear_cluster.dir/cluster/gantt.cpp.o.d"
  "/root/repo/src/cluster/resource_time_space.cpp" "src/CMakeFiles/spear_cluster.dir/cluster/resource_time_space.cpp.o" "gcc" "src/CMakeFiles/spear_cluster.dir/cluster/resource_time_space.cpp.o.d"
  "/root/repo/src/cluster/schedule.cpp" "src/CMakeFiles/spear_cluster.dir/cluster/schedule.cpp.o" "gcc" "src/CMakeFiles/spear_cluster.dir/cluster/schedule.cpp.o.d"
  "/root/repo/src/cluster/simulator.cpp" "src/CMakeFiles/spear_cluster.dir/cluster/simulator.cpp.o" "gcc" "src/CMakeFiles/spear_cluster.dir/cluster/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spear_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spear_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
