# Empty compiler generated dependencies file for spear_trace.
# This may be replaced when dependencies are built.
