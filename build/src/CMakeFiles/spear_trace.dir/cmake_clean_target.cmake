file(REMOVE_RECURSE
  "libspear_trace.a"
)
