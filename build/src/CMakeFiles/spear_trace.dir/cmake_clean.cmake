file(REMOVE_RECURSE
  "CMakeFiles/spear_trace.dir/trace/mapreduce.cpp.o"
  "CMakeFiles/spear_trace.dir/trace/mapreduce.cpp.o.d"
  "CMakeFiles/spear_trace.dir/trace/trace.cpp.o"
  "CMakeFiles/spear_trace.dir/trace/trace.cpp.o.d"
  "CMakeFiles/spear_trace.dir/trace/trace_io.cpp.o"
  "CMakeFiles/spear_trace.dir/trace/trace_io.cpp.o.d"
  "libspear_trace.a"
  "libspear_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spear_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
