file(REMOVE_RECURSE
  "CMakeFiles/spear_mcts.dir/mcts/mcts.cpp.o"
  "CMakeFiles/spear_mcts.dir/mcts/mcts.cpp.o.d"
  "CMakeFiles/spear_mcts.dir/mcts/policies.cpp.o"
  "CMakeFiles/spear_mcts.dir/mcts/policies.cpp.o.d"
  "CMakeFiles/spear_mcts.dir/mcts/tree.cpp.o"
  "CMakeFiles/spear_mcts.dir/mcts/tree.cpp.o.d"
  "libspear_mcts.a"
  "libspear_mcts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spear_mcts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
