file(REMOVE_RECURSE
  "libspear_mcts.a"
)
