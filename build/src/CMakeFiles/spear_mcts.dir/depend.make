# Empty dependencies file for spear_mcts.
# This may be replaced when dependencies are built.
