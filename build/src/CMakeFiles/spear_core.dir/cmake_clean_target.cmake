file(REMOVE_RECURSE
  "libspear_core.a"
)
