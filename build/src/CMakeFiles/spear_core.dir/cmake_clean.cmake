file(REMOVE_RECURSE
  "CMakeFiles/spear_core.dir/core/spear.cpp.o"
  "CMakeFiles/spear_core.dir/core/spear.cpp.o.d"
  "libspear_core.a"
  "libspear_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spear_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
