# Empty dependencies file for spear_core.
# This may be replaced when dependencies are built.
