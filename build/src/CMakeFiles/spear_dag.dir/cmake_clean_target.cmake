file(REMOVE_RECURSE
  "libspear_dag.a"
)
