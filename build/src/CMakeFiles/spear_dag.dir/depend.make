# Empty dependencies file for spear_dag.
# This may be replaced when dependencies are built.
