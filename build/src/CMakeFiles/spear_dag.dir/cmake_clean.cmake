file(REMOVE_RECURSE
  "CMakeFiles/spear_dag.dir/dag/dag.cpp.o"
  "CMakeFiles/spear_dag.dir/dag/dag.cpp.o.d"
  "CMakeFiles/spear_dag.dir/dag/dot.cpp.o"
  "CMakeFiles/spear_dag.dir/dag/dot.cpp.o.d"
  "CMakeFiles/spear_dag.dir/dag/features.cpp.o"
  "CMakeFiles/spear_dag.dir/dag/features.cpp.o.d"
  "CMakeFiles/spear_dag.dir/dag/gallery.cpp.o"
  "CMakeFiles/spear_dag.dir/dag/gallery.cpp.o.d"
  "CMakeFiles/spear_dag.dir/dag/generator.cpp.o"
  "CMakeFiles/spear_dag.dir/dag/generator.cpp.o.d"
  "CMakeFiles/spear_dag.dir/dag/io.cpp.o"
  "CMakeFiles/spear_dag.dir/dag/io.cpp.o.d"
  "CMakeFiles/spear_dag.dir/dag/merge.cpp.o"
  "CMakeFiles/spear_dag.dir/dag/merge.cpp.o.d"
  "CMakeFiles/spear_dag.dir/dag/resource.cpp.o"
  "CMakeFiles/spear_dag.dir/dag/resource.cpp.o.d"
  "libspear_dag.a"
  "libspear_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spear_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
