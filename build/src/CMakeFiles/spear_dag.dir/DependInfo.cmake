
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dag/dag.cpp" "src/CMakeFiles/spear_dag.dir/dag/dag.cpp.o" "gcc" "src/CMakeFiles/spear_dag.dir/dag/dag.cpp.o.d"
  "/root/repo/src/dag/dot.cpp" "src/CMakeFiles/spear_dag.dir/dag/dot.cpp.o" "gcc" "src/CMakeFiles/spear_dag.dir/dag/dot.cpp.o.d"
  "/root/repo/src/dag/features.cpp" "src/CMakeFiles/spear_dag.dir/dag/features.cpp.o" "gcc" "src/CMakeFiles/spear_dag.dir/dag/features.cpp.o.d"
  "/root/repo/src/dag/gallery.cpp" "src/CMakeFiles/spear_dag.dir/dag/gallery.cpp.o" "gcc" "src/CMakeFiles/spear_dag.dir/dag/gallery.cpp.o.d"
  "/root/repo/src/dag/generator.cpp" "src/CMakeFiles/spear_dag.dir/dag/generator.cpp.o" "gcc" "src/CMakeFiles/spear_dag.dir/dag/generator.cpp.o.d"
  "/root/repo/src/dag/io.cpp" "src/CMakeFiles/spear_dag.dir/dag/io.cpp.o" "gcc" "src/CMakeFiles/spear_dag.dir/dag/io.cpp.o.d"
  "/root/repo/src/dag/merge.cpp" "src/CMakeFiles/spear_dag.dir/dag/merge.cpp.o" "gcc" "src/CMakeFiles/spear_dag.dir/dag/merge.cpp.o.d"
  "/root/repo/src/dag/resource.cpp" "src/CMakeFiles/spear_dag.dir/dag/resource.cpp.o" "gcc" "src/CMakeFiles/spear_dag.dir/dag/resource.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spear_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
