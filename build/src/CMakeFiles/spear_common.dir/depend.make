# Empty dependencies file for spear_common.
# This may be replaced when dependencies are built.
