file(REMOVE_RECURSE
  "libspear_common.a"
)
