file(REMOVE_RECURSE
  "CMakeFiles/spear_common.dir/common/csv.cpp.o"
  "CMakeFiles/spear_common.dir/common/csv.cpp.o.d"
  "CMakeFiles/spear_common.dir/common/flags.cpp.o"
  "CMakeFiles/spear_common.dir/common/flags.cpp.o.d"
  "CMakeFiles/spear_common.dir/common/logging.cpp.o"
  "CMakeFiles/spear_common.dir/common/logging.cpp.o.d"
  "CMakeFiles/spear_common.dir/common/rng.cpp.o"
  "CMakeFiles/spear_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/spear_common.dir/common/stats.cpp.o"
  "CMakeFiles/spear_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/spear_common.dir/common/table.cpp.o"
  "CMakeFiles/spear_common.dir/common/table.cpp.o.d"
  "libspear_common.a"
  "libspear_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spear_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
