# Empty compiler generated dependencies file for spear_common.
# This may be replaced when dependencies are built.
