# Empty compiler generated dependencies file for spear_nn.
# This may be replaced when dependencies are built.
