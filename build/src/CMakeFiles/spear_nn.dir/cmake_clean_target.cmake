file(REMOVE_RECURSE
  "libspear_nn.a"
)
