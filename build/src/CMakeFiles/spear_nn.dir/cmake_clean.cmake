file(REMOVE_RECURSE
  "CMakeFiles/spear_nn.dir/nn/loss.cpp.o"
  "CMakeFiles/spear_nn.dir/nn/loss.cpp.o.d"
  "CMakeFiles/spear_nn.dir/nn/matrix.cpp.o"
  "CMakeFiles/spear_nn.dir/nn/matrix.cpp.o.d"
  "CMakeFiles/spear_nn.dir/nn/mlp.cpp.o"
  "CMakeFiles/spear_nn.dir/nn/mlp.cpp.o.d"
  "CMakeFiles/spear_nn.dir/nn/rmsprop.cpp.o"
  "CMakeFiles/spear_nn.dir/nn/rmsprop.cpp.o.d"
  "CMakeFiles/spear_nn.dir/nn/serialize.cpp.o"
  "CMakeFiles/spear_nn.dir/nn/serialize.cpp.o.d"
  "libspear_nn.a"
  "libspear_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spear_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
