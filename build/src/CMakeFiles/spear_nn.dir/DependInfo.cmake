
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/loss.cpp" "src/CMakeFiles/spear_nn.dir/nn/loss.cpp.o" "gcc" "src/CMakeFiles/spear_nn.dir/nn/loss.cpp.o.d"
  "/root/repo/src/nn/matrix.cpp" "src/CMakeFiles/spear_nn.dir/nn/matrix.cpp.o" "gcc" "src/CMakeFiles/spear_nn.dir/nn/matrix.cpp.o.d"
  "/root/repo/src/nn/mlp.cpp" "src/CMakeFiles/spear_nn.dir/nn/mlp.cpp.o" "gcc" "src/CMakeFiles/spear_nn.dir/nn/mlp.cpp.o.d"
  "/root/repo/src/nn/rmsprop.cpp" "src/CMakeFiles/spear_nn.dir/nn/rmsprop.cpp.o" "gcc" "src/CMakeFiles/spear_nn.dir/nn/rmsprop.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/CMakeFiles/spear_nn.dir/nn/serialize.cpp.o" "gcc" "src/CMakeFiles/spear_nn.dir/nn/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spear_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
