# Empty compiler generated dependencies file for test_rmsprop.
# This may be replaced when dependencies are built.
