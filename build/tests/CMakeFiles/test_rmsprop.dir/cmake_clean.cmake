file(REMOVE_RECURSE
  "CMakeFiles/test_rmsprop.dir/test_rmsprop.cpp.o"
  "CMakeFiles/test_rmsprop.dir/test_rmsprop.cpp.o.d"
  "test_rmsprop"
  "test_rmsprop.pdb"
  "test_rmsprop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rmsprop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
