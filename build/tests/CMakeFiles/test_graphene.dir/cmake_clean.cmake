file(REMOVE_RECURSE
  "CMakeFiles/test_graphene.dir/test_graphene.cpp.o"
  "CMakeFiles/test_graphene.dir/test_graphene.cpp.o.d"
  "test_graphene"
  "test_graphene.pdb"
  "test_graphene[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graphene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
