# Empty dependencies file for test_graphene.
# This may be replaced when dependencies are built.
