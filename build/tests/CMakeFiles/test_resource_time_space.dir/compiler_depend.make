# Empty compiler generated dependencies file for test_resource_time_space.
# This may be replaced when dependencies are built.
