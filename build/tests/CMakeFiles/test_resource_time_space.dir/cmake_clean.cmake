file(REMOVE_RECURSE
  "CMakeFiles/test_resource_time_space.dir/test_resource_time_space.cpp.o"
  "CMakeFiles/test_resource_time_space.dir/test_resource_time_space.cpp.o.d"
  "test_resource_time_space"
  "test_resource_time_space.pdb"
  "test_resource_time_space[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resource_time_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
