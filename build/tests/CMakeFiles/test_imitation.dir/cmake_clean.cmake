file(REMOVE_RECURSE
  "CMakeFiles/test_imitation.dir/test_imitation.cpp.o"
  "CMakeFiles/test_imitation.dir/test_imitation.cpp.o.d"
  "test_imitation"
  "test_imitation.pdb"
  "test_imitation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_imitation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
