# Empty dependencies file for test_imitation.
# This may be replaced when dependencies are built.
