# Empty compiler generated dependencies file for test_featurizer.
# This may be replaced when dependencies are built.
