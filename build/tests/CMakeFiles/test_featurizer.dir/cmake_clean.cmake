file(REMOVE_RECURSE
  "CMakeFiles/test_featurizer.dir/test_featurizer.cpp.o"
  "CMakeFiles/test_featurizer.dir/test_featurizer.cpp.o.d"
  "test_featurizer"
  "test_featurizer.pdb"
  "test_featurizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_featurizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
