# Empty compiler generated dependencies file for test_multiresource.
# This may be replaced when dependencies are built.
