# Empty dependencies file for test_motivating.
# This may be replaced when dependencies are built.
