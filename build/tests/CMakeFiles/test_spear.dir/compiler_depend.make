# Empty compiler generated dependencies file for test_spear.
# This may be replaced when dependencies are built.
