file(REMOVE_RECURSE
  "CMakeFiles/test_spear.dir/test_spear.cpp.o"
  "CMakeFiles/test_spear.dir/test_spear.cpp.o.d"
  "test_spear"
  "test_spear.pdb"
  "test_spear[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
