file(REMOVE_RECURSE
  "CMakeFiles/test_reinforce.dir/test_reinforce.cpp.o"
  "CMakeFiles/test_reinforce.dir/test_reinforce.cpp.o.d"
  "test_reinforce"
  "test_reinforce.pdb"
  "test_reinforce[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reinforce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
