# Empty dependencies file for test_reinforce.
# This may be replaced when dependencies are built.
