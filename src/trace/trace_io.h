// Trace persistence: CSV with one row per task, so a generated trace can be
// saved, inspected, and replayed bit-identically across runs.
//
// Columns: job_id, stage (map|reduce), task_index, runtime, cpu, mem

#pragma once

#include <string>
#include <vector>

#include "trace/trace.h"

namespace spear {

/// Writes `jobs` to `path`.  Throws std::runtime_error on I/O failure.
void save_trace(const std::vector<MapReduceJob>& jobs,
                const std::string& path);

/// Reads a trace written by save_trace.  Throws std::runtime_error on I/O
/// or format errors.
std::vector<MapReduceJob> load_trace(const std::string& path);

}  // namespace spear
