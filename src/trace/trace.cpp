#include "trace/trace.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/stats.h"

namespace spear {

namespace {

/// Log-normal sample with the given median and sigma (of the underlying
/// normal), clamped to [lo, hi].
double lognormal_clamped(Rng& rng, double median, double sigma, double lo,
                         double hi) {
  const double x = median * std::exp(rng.normal(0.0, sigma));
  return std::clamp(x, lo, hi);
}

std::size_t sample_stage_size(Rng& rng, double median, std::size_t lo,
                              std::size_t hi) {
  const double x = lognormal_clamped(rng, median, 0.4,
                                     static_cast<double>(lo),
                                     static_cast<double>(hi));
  return static_cast<std::size_t>(std::llround(x));
}

std::vector<Time> sample_stage_runtimes(Rng& rng, std::size_t count,
                                        double stage_mean, double task_sigma,
                                        Time max_runtime) {
  std::vector<Time> runtimes;
  runtimes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double rt = lognormal_clamped(rng, stage_mean, task_sigma, 1.0,
                                        static_cast<double>(max_runtime));
    runtimes.push_back(std::max<Time>(1, static_cast<Time>(std::llround(rt))));
  }
  return runtimes;
}

}  // namespace

std::vector<MapReduceJob> generate_trace(const TraceOptions& options,
                                         Rng& rng) {
  if (options.num_jobs == 0) {
    throw std::invalid_argument("generate_trace: num_jobs must be > 0");
  }
  if (options.min_tasks_per_stage > options.max_map_tasks ||
      options.min_tasks_per_stage > options.max_reduce_tasks) {
    throw std::invalid_argument("generate_trace: impossible stage sizes");
  }

  std::vector<MapReduceJob> jobs;
  jobs.reserve(options.num_jobs);
  for (std::size_t j = 0; j < options.num_jobs; ++j) {
    MapReduceJob job;
    job.job_id = "job-" + std::to_string(j);

    const std::size_t maps = sample_stage_size(
        rng, options.median_map_tasks, options.min_tasks_per_stage,
        options.max_map_tasks);
    const std::size_t reduces = sample_stage_size(
        rng, options.median_reduce_tasks, options.min_tasks_per_stage,
        options.max_reduce_tasks);

    // Per-job stage means vary widely across jobs (heterogeneous queries).
    const double map_mean = lognormal_clamped(
        rng, options.median_map_runtime, options.job_runtime_spread, 2.0,
        static_cast<double>(options.max_task_runtime));
    const double reduce_mean = lognormal_clamped(
        rng, options.median_reduce_runtime, options.job_runtime_spread, 2.0,
        static_cast<double>(options.max_task_runtime));

    job.map_runtimes = sample_stage_runtimes(
        rng, maps, map_mean, options.task_runtime_spread,
        options.max_task_runtime);
    job.reduce_runtimes = sample_stage_runtimes(
        rng, reduces, reduce_mean, options.task_runtime_spread,
        options.max_task_runtime);

    job.map_demand = ResourceVector{
        rng.uniform(options.map_cpu_lo, options.map_cpu_hi),
        rng.uniform(options.map_mem_lo, options.map_mem_hi)};
    job.reduce_demand = ResourceVector{
        rng.uniform(options.reduce_cpu_lo, options.reduce_cpu_hi),
        rng.uniform(options.reduce_mem_lo, options.reduce_mem_hi)};

    jobs.push_back(std::move(job));
  }
  return jobs;
}

TraceStats compute_trace_stats(const std::vector<MapReduceJob>& jobs) {
  TraceStats stats;
  if (jobs.empty()) return stats;

  std::vector<double> map_counts, reduce_counts;
  std::vector<double> map_runtimes, reduce_runtimes;
  for (const auto& job : jobs) {
    map_counts.push_back(static_cast<double>(job.num_map()));
    reduce_counts.push_back(static_cast<double>(job.num_reduce()));
    stats.max_map_tasks = std::max(stats.max_map_tasks, job.num_map());
    stats.max_reduce_tasks = std::max(stats.max_reduce_tasks, job.num_reduce());
    for (Time t : job.map_runtimes) {
      map_runtimes.push_back(static_cast<double>(t));
    }
    for (Time t : job.reduce_runtimes) {
      reduce_runtimes.push_back(static_cast<double>(t));
    }
  }
  stats.median_map_tasks = median(map_counts);
  stats.median_reduce_tasks = median(reduce_counts);
  stats.median_map_runtime = median(map_runtimes);
  stats.median_reduce_runtime = median(reduce_runtimes);
  return stats;
}

std::vector<Time> generate_poisson_arrivals(std::size_t n,
                                            const ArrivalOptions& options) {
  if (options.mean_interarrival <= 0.0) {
    throw std::invalid_argument(
        "generate_poisson_arrivals: mean_interarrival must be > 0");
  }
  std::vector<Time> arrivals;
  arrivals.reserve(n);
  // Pure SplitMix64 stream (not Rng) so the arrival pattern depends on
  // nothing but (n, options) — same idiom as the fault injector.
  SplitMix64 g(options.seed ^ 0xa0761d6478bd642fULL);
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    arrivals.push_back(static_cast<Time>(t));
    const double u = static_cast<double>(g.next() >> 11) * 0x1.0p-53;
    t += -options.mean_interarrival * std::log(1.0 - u);
  }
  return arrivals;
}

JctSummary summarize_jct(const std::vector<Time>& jcts) {
  if (jcts.empty()) {
    throw std::invalid_argument("summarize_jct: empty sample");
  }
  JctSummary summary;
  std::vector<Time> sorted = jcts;
  std::sort(sorted.begin(), sorted.end());
  double sum = 0.0;
  for (Time t : sorted) sum += static_cast<double>(t);
  summary.mean = sum / static_cast<double>(sorted.size());
  // Nearest-rank percentile: ceil(p * N)-th smallest (1-based).
  const auto rank = static_cast<std::size_t>(
      std::ceil(0.99 * static_cast<double>(sorted.size())));
  summary.p99 = sorted[rank - 1];
  summary.max = sorted.back();
  return summary;
}

}  // namespace spear
