// MapReduce job -> task DAG conversion: map tasks are sources; every reduce
// task depends on every map task (the shuffle barrier), giving the
// two-stage dependency structure the trace experiments schedule.

#pragma once

#include "trace/trace.h"

namespace spear {

/// Builds the job's DAG.  Task ids: maps first (0..M-1), then reduces.
Dag mapreduce_to_dag(const MapReduceJob& job);

}  // namespace spear
