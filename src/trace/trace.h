// Synthetic production-trace substrate.
//
// The paper's experiments (§V-C) replay 99 MapReduce jobs extracted from a
// proprietary production Hive cluster.  That trace is not publicly
// available, so this module synthesizes a statistically matched workload —
// the documented substitution in DESIGN.md:
//
//   * exactly `num_jobs` (99) jobs, each with > 5 map and > 5 reduce tasks
//     (the paper filters out smaller jobs);
//   * max 29 map / 38 reduce tasks per job, medians ~14 / ~17 (Fig. 9a);
//   * heavy-tailed task runtimes with stage medians ~73 s (map) and ~32 s
//     (reduce) (Fig. 9b).  NOTE: the paper's §V-A also quotes per-job mean
//     runtime ranges ([2,17] s map, [17,141] s reduce) that are mutually
//     inconsistent with those medians; we match the plotted Fig. 9
//     statistics, which are what the experiment consumes.
//   * reduce tasks demand more resources than map tasks (§II-C).
//
// A MapReduce job converts to a two-stage DAG: every reduce task depends on
// every map task (the shuffle barrier).

#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "dag/dag.h"

namespace spear {

struct MapReduceJob {
  std::string job_id;
  std::vector<Time> map_runtimes;
  std::vector<Time> reduce_runtimes;
  ResourceVector map_demand{2};     ///< per map task (CPU, memory)
  ResourceVector reduce_demand{2};  ///< per reduce task

  std::size_t num_map() const { return map_runtimes.size(); }
  std::size_t num_reduce() const { return reduce_runtimes.size(); }
};

struct TraceOptions {
  std::size_t num_jobs = 99;

  // Task-count model: log-normal rounded & clamped.
  std::size_t min_tasks_per_stage = 6;   // paper filters <= 5
  std::size_t max_map_tasks = 29;
  std::size_t max_reduce_tasks = 38;
  double median_map_tasks = 14.0;
  double median_reduce_tasks = 17.0;

  // Runtime model: per-job log-normal stage means, per-task log-normal
  // around the stage mean.  Stage medians land near Fig. 9(b)'s 73 / 32.
  double median_map_runtime = 73.0;
  double median_reduce_runtime = 32.0;
  double job_runtime_spread = 0.8;   // sigma of per-job stage-mean lognormal
  double task_runtime_spread = 0.35; // sigma of per-task lognormal
  Time max_task_runtime = 600;

  // Demand model (fractions of a 1.0-capacity cluster dimension); reduce
  // demands dominate map demands.
  double map_cpu_lo = 0.05, map_cpu_hi = 0.15;
  double map_mem_lo = 0.05, map_mem_hi = 0.12;
  double reduce_cpu_lo = 0.10, reduce_cpu_hi = 0.30;
  double reduce_mem_lo = 0.12, reduce_mem_hi = 0.35;
};

/// Generates the synthetic trace.  Deterministic given `rng`.
std::vector<MapReduceJob> generate_trace(const TraceOptions& options,
                                         Rng& rng);

/// Summary statistics of a trace (drives Fig. 9a/9b).
struct TraceStats {
  double median_map_tasks = 0.0;
  double median_reduce_tasks = 0.0;
  std::size_t max_map_tasks = 0;
  std::size_t max_reduce_tasks = 0;
  double median_map_runtime = 0.0;
  double median_reduce_runtime = 0.0;
};
TraceStats compute_trace_stats(const std::vector<MapReduceJob>& jobs);

// --- Timed arrival stream (online execution, DESIGN.md §14) -------------
//
// The offline experiments schedule each trace job in isolation; the online
// replay bench streams them into a live cluster instead.  Arrivals follow
// a Poisson process (exponential inter-arrival gaps, the standard model
// for independent job submissions), deterministic per seed.

struct ArrivalOptions {
  /// Mean slots between consecutive arrivals (> 0).
  double mean_interarrival = 50.0;
  std::uint64_t seed = 1;
};

/// `n` non-decreasing arrival instants starting at 0 (the first job arrives
/// with the stream), deterministic per (n, options).
std::vector<Time> generate_poisson_arrivals(std::size_t n,
                                            const ArrivalOptions& options);

/// Job-completion-time summary for the online bench: JCT = finish - arrival.
struct JctSummary {
  double mean = 0.0;
  Time p99 = 0;   ///< nearest-rank 99th percentile
  Time max = 0;
};
/// Requires jcts non-empty and finish >= arrival for every job.
JctSummary summarize_jct(const std::vector<Time>& jcts);

}  // namespace spear
