#include "trace/trace_io.h"

#include <cmath>
#include <map>
#include <stdexcept>

#include "common/csv.h"

namespace spear {

namespace {

/// All load errors carry path:line so a bad row in a large trace dump can
/// be found (and fixed) without bisecting the file.
[[noreturn]] void fail_at(const std::string& path, std::size_t line,
                          const std::string& why) {
  throw std::runtime_error("load_trace: " + path + ":" +
                           std::to_string(line) + ": " + why);
}

/// Strict integer field: the whole field must parse (no "12abc") and the
/// runtime must be a positive slot count.
Time parse_runtime(const std::string& field, const std::string& path,
                   std::size_t line) {
  Time value = 0;
  std::size_t consumed = 0;
  try {
    value = std::stoll(field, &consumed);
  } catch (const std::exception&) {
    fail_at(path, line, "non-numeric runtime '" + field + "'");
  }
  if (consumed != field.size()) {
    fail_at(path, line, "trailing characters in runtime '" + field + "'");
  }
  if (value < 1) {
    fail_at(path, line, "runtime must be >= 1, got '" + field + "'");
  }
  return value;
}

/// Strict double field: fully consumed, finite and non-negative.
double parse_demand(const std::string& field, const char* what,
                    const std::string& path, std::size_t line) {
  double value = 0.0;
  std::size_t consumed = 0;
  try {
    value = std::stod(field, &consumed);
  } catch (const std::exception&) {
    fail_at(path, line,
            std::string("non-numeric ") + what + " '" + field + "'");
  }
  if (consumed != field.size()) {
    fail_at(path, line, std::string("trailing characters in ") + what + " '" +
                            field + "'");
  }
  if (!std::isfinite(value) || value < 0.0) {
    fail_at(path, line, std::string(what) +
                            " must be finite and non-negative, got '" + field +
                            "'");
  }
  return value;
}

}  // namespace

void save_trace(const std::vector<MapReduceJob>& jobs,
                const std::string& path) {
  CsvWriter writer(path);
  writer.write("job_id", "stage", "task_index", "runtime", "cpu", "mem");
  for (const auto& job : jobs) {
    for (std::size_t i = 0; i < job.num_map(); ++i) {
      writer.write(job.job_id, "map", static_cast<long long>(i),
                   static_cast<long long>(job.map_runtimes[i]),
                   job.map_demand[kCpu], job.map_demand[kMem]);
    }
    for (std::size_t i = 0; i < job.num_reduce(); ++i) {
      writer.write(job.job_id, "reduce", static_cast<long long>(i),
                   static_cast<long long>(job.reduce_runtimes[i]),
                   job.reduce_demand[kCpu], job.reduce_demand[kMem]);
    }
  }
}

std::vector<MapReduceJob> load_trace(const std::string& path) {
  const auto rows = read_csv(path);
  if (rows.empty()) {
    throw std::runtime_error("load_trace: " + path +
                             ": empty file (expected a header row "
                             "job_id,stage,task_index,runtime,cpu,mem)");
  }
  if (rows.size() == 1) {
    throw std::runtime_error("load_trace: " + path +
                             ": header only, no data rows");
  }
  // Jobs keyed by id, in first-appearance order.
  std::vector<MapReduceJob> jobs;
  std::map<std::string, std::size_t> index;

  for (std::size_t r = 1; r < rows.size(); ++r) {  // skip header
    const auto& row = rows[r];
    const std::size_t line = r + 1;  // 1-based file line
    if (row.size() != 6) {
      fail_at(path, line,
              "truncated row: " + std::to_string(row.size()) +
                  " field(s), expected 6 "
                  "(job_id,stage,task_index,runtime,cpu,mem)");
    }
    const std::string& job_id = row[0];
    if (job_id.empty()) {
      fail_at(path, line, "empty job_id");
    }
    const std::string& stage = row[1];
    const Time runtime = parse_runtime(row[3], path, line);
    const double cpu = parse_demand(row[4], "cpu", path, line);
    const double mem = parse_demand(row[5], "mem", path, line);

    auto [it, inserted] = index.try_emplace(job_id, jobs.size());
    if (inserted) {
      jobs.emplace_back();
      jobs.back().job_id = job_id;
    }
    MapReduceJob& job = jobs[it->second];
    if (stage == "map") {
      job.map_runtimes.push_back(runtime);
      job.map_demand = ResourceVector{cpu, mem};
    } else if (stage == "reduce") {
      job.reduce_runtimes.push_back(runtime);
      job.reduce_demand = ResourceVector{cpu, mem};
    } else {
      fail_at(path, line,
              "unknown stage '" + stage + "' (expected 'map' or 'reduce')");
    }
  }
  return jobs;
}

}  // namespace spear
