#include "trace/trace_io.h"

#include <map>
#include <stdexcept>

#include "common/csv.h"

namespace spear {

void save_trace(const std::vector<MapReduceJob>& jobs,
                const std::string& path) {
  CsvWriter writer(path);
  writer.write("job_id", "stage", "task_index", "runtime", "cpu", "mem");
  for (const auto& job : jobs) {
    for (std::size_t i = 0; i < job.num_map(); ++i) {
      writer.write(job.job_id, "map", static_cast<long long>(i),
                   static_cast<long long>(job.map_runtimes[i]),
                   job.map_demand[kCpu], job.map_demand[kMem]);
    }
    for (std::size_t i = 0; i < job.num_reduce(); ++i) {
      writer.write(job.job_id, "reduce", static_cast<long long>(i),
                   static_cast<long long>(job.reduce_runtimes[i]),
                   job.reduce_demand[kCpu], job.reduce_demand[kMem]);
    }
  }
}

std::vector<MapReduceJob> load_trace(const std::string& path) {
  const auto rows = read_csv(path);
  if (rows.empty()) {
    throw std::runtime_error("load_trace: empty file " + path);
  }
  // Jobs keyed by id, in first-appearance order.
  std::vector<MapReduceJob> jobs;
  std::map<std::string, std::size_t> index;

  for (std::size_t r = 1; r < rows.size(); ++r) {  // skip header
    const auto& row = rows[r];
    if (row.size() != 6) {
      throw std::runtime_error("load_trace: row " + std::to_string(r) +
                               " has " + std::to_string(row.size()) +
                               " fields, expected 6");
    }
    const std::string& job_id = row[0];
    const std::string& stage = row[1];
    Time runtime = 0;
    double cpu = 0.0, mem = 0.0;
    try {
      runtime = std::stoll(row[3]);
      cpu = std::stod(row[4]);
      mem = std::stod(row[5]);
    } catch (const std::exception&) {
      throw std::runtime_error("load_trace: bad numeric field in row " +
                               std::to_string(r));
    }
    auto [it, inserted] = index.try_emplace(job_id, jobs.size());
    if (inserted) {
      jobs.emplace_back();
      jobs.back().job_id = job_id;
    }
    MapReduceJob& job = jobs[it->second];
    if (stage == "map") {
      job.map_runtimes.push_back(runtime);
      job.map_demand = ResourceVector{cpu, mem};
    } else if (stage == "reduce") {
      job.reduce_runtimes.push_back(runtime);
      job.reduce_demand = ResourceVector{cpu, mem};
    } else {
      throw std::runtime_error("load_trace: unknown stage '" + stage +
                               "' in row " + std::to_string(r));
    }
  }
  return jobs;
}

}  // namespace spear
