#include "trace/mapreduce.h"

namespace spear {

Dag mapreduce_to_dag(const MapReduceJob& job) {
  DagBuilder builder(job.map_demand.dims());
  std::vector<TaskId> maps;
  maps.reserve(job.num_map());
  for (std::size_t i = 0; i < job.num_map(); ++i) {
    maps.push_back(builder.add_task(job.map_runtimes[i], job.map_demand,
                                    job.job_id + "/map" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < job.num_reduce(); ++i) {
    const TaskId reduce =
        builder.add_task(job.reduce_runtimes[i], job.reduce_demand,
                         job.job_id + "/reduce" + std::to_string(i));
    for (TaskId map : maps) builder.add_edge(map, reduce);
  }
  return std::move(builder).build();
}

}  // namespace spear
