// Graph-derived scheduling features (§III-D of the paper).
//
//  * b-level: length of the longest (runtime-weighted) path from the task to
//    an exit node, inclusive of the task itself.  The maximum b-level over
//    all tasks is the critical-path length of the DAG.
//  * b-load (per resource): the load (runtime x demand) accumulated along the
//    task's b-level path.  The paper describes the b-load as "accumulating
//    the load of the tasks along the corresponding path" — we accumulate
//    along the path that realizes the b-level (ties broken toward the child
//    with larger b-load), which matches the motivation of capturing how much
//    resource pressure sits downstream of the task.
//  * number of children: the classic b-level tiebreaker.
//
// Features are computed once per DAG in reverse topological order (O(V+E))
// and exposed as plain arrays indexed by TaskId.

#pragma once

#include <vector>

#include "dag/dag.h"

namespace spear {

class DagFeatures {
 public:
  /// Computes all features for `dag`.  The Dag must outlive this object only
  /// for the duration of the constructor; results are stored by value.
  explicit DagFeatures(const Dag& dag);

  /// Runtime-weighted longest path to an exit node, including the task.
  Time b_level(TaskId id) const {
    return b_level_[static_cast<std::size_t>(id)];
  }

  /// Accumulated load (runtime x demand[resource]) along the b-level path.
  double b_load(TaskId id, std::size_t resource) const {
    return b_load_[static_cast<std::size_t>(id)][resource];
  }

  std::size_t num_children(TaskId id) const {
    return num_children_[static_cast<std::size_t>(id)];
  }

  /// Number of (transitive) descendants, excluding the task itself.
  std::size_t num_descendants(TaskId id) const {
    return num_descendants_[static_cast<std::size_t>(id)];
  }

  /// The DAG's critical-path length: max b-level over all tasks.
  Time critical_path() const { return critical_path_; }

  std::size_t resource_dims() const { return resource_dims_; }

 private:
  std::vector<Time> b_level_;
  std::vector<ResourceVector> b_load_;
  std::vector<std::size_t> num_children_;
  std::vector<std::size_t> num_descendants_;
  Time critical_path_ = 0;
  std::size_t resource_dims_ = 2;
};

}  // namespace spear
