#include "dag/merge.h"

#include <stdexcept>

namespace spear {

Dag merge_dags(const std::vector<Dag>& jobs) {
  if (jobs.empty()) {
    return DagBuilder().build();
  }
  const std::size_t dims = jobs.front().resource_dims();
  for (const auto& job : jobs) {
    if (job.resource_dims() != dims) {
      throw std::invalid_argument(
          "merge_dags: jobs disagree on resource dimensions");
    }
  }

  DagBuilder builder(dims);
  TaskId offset = 0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const Dag& job = jobs[j];
    for (const auto& t : job.tasks()) {
      std::string name =
          t.name.empty() ? "" : "j" + std::to_string(j) + "/" + t.name;
      builder.add_task(t.runtime, t.demand, std::move(name));
    }
    for (const auto& t : job.tasks()) {
      for (TaskId c : job.children(t.id)) {
        builder.add_edge(offset + t.id, offset + c);
      }
    }
    offset += static_cast<TaskId>(job.num_tasks());
  }
  return std::move(builder).build();
}

}  // namespace spear
