#include "dag/generator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace spear {

Dag generate_random_dag(const DagGeneratorOptions& options, Rng& rng) {
  if (options.num_tasks == 0) {
    throw std::invalid_argument("generate_random_dag: num_tasks must be > 0");
  }
  if (options.min_width == 0 || options.min_width > options.max_width) {
    throw std::invalid_argument("generate_random_dag: bad width range");
  }
  if (options.runtime_min <= 0 || options.runtime_min > options.runtime_max) {
    throw std::invalid_argument("generate_random_dag: bad runtime range");
  }
  if (options.demand_min < 0.0 || options.demand_min > options.demand_max) {
    throw std::invalid_argument("generate_random_dag: bad demand range");
  }

  DagBuilder builder(options.resource_dims);

  auto sample_task = [&](const std::string& name) {
    const double rt = rng.truncated_normal(
        options.runtime_mean, options.runtime_stddev,
        static_cast<double>(options.runtime_min),
        static_cast<double>(options.runtime_max));
    const Time runtime =
        std::clamp(static_cast<Time>(std::llround(rt)), options.runtime_min,
                   options.runtime_max);
    ResourceVector demand(options.resource_dims);
    for (std::size_t r = 0; r < options.resource_dims; ++r) {
      demand[r] = rng.truncated_normal(options.demand_mean,
                                       options.demand_stddev,
                                       options.demand_min, options.demand_max);
    }
    return builder.add_task(runtime, demand, name);
  };

  std::vector<TaskId> prev_layer;
  std::size_t placed = 0;
  std::size_t layer_index = 0;
  while (placed < options.num_tasks) {
    const auto remaining = options.num_tasks - placed;
    auto width = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(options.min_width),
        static_cast<std::int64_t>(options.max_width)));
    width = std::min(width, remaining);

    std::vector<TaskId> layer;
    layer.reserve(width);
    for (std::size_t i = 0; i < width; ++i) {
      const TaskId id = sample_task("L" + std::to_string(layer_index) + "." +
                                    std::to_string(i));
      layer.push_back(id);
      if (!prev_layer.empty()) {
        const auto max_parents =
            std::min<std::size_t>(options.max_parents, prev_layer.size());
        const auto num_parents = static_cast<std::size_t>(rng.uniform_int(
            1, static_cast<std::int64_t>(max_parents)));
        std::vector<TaskId> candidates = prev_layer;
        rng.shuffle(candidates);
        for (std::size_t p = 0; p < num_parents; ++p) {
          builder.add_edge(candidates[p], id);
        }
      }
    }
    // Make sure every task in the previous layer has at least one child so
    // the graph does not degenerate into disconnected strands that all end
    // mid-graph (keeps widths meaningful).
    if (!prev_layer.empty()) {
      for (TaskId parent : prev_layer) {
        // DagBuilder ignores duplicate edges, so blindly adding is safe.
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(layer.size()) - 1));
        builder.add_edge(parent, layer[pick]);
      }
    }
    prev_layer = std::move(layer);
    placed += width;
    ++layer_index;
  }

  return std::move(builder).build();
}

std::vector<Dag> generate_random_dags(const DagGeneratorOptions& options,
                                      std::size_t count, Rng& rng) {
  std::vector<Dag> dags;
  dags.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Rng child = rng.split();
    dags.push_back(generate_random_dag(options, child));
  }
  return dags;
}

}  // namespace spear
