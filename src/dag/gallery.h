// Gallery of fixed, documented example DAGs used by examples, tests and
// benches.

#pragma once

#include "dag/dag.h"

namespace spear {

/// The reconstructed motivating example (§II-C / Fig. 3 of the paper): an
/// 8-task, 2-resource instance on a (1.0, 1.0) cluster whose optimal
/// makespan is 29 (verified by exhaustive search) while Tetris, SJF, CP and
/// Graphene all produce 39.  The exact numbers in the paper's figure are
/// not machine-readable; this instance exhibits the same phenomenon — a
/// greedy work-conserving trap only schedule search escapes.
Dag motivating_example_dag();

/// The optimal makespan of motivating_example_dag() on a (1.0, 1.0)
/// cluster.
inline constexpr Time kMotivatingExampleOptimum = 29;

}  // namespace spear
