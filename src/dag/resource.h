// Multi-dimensional resource vectors (CPU, memory, ...).
//
// The paper schedules tasks with heterogeneous demands across multiple
// resource types; both task demands and cluster capacities are modeled as
// small fixed-dimension vectors.  Dimension count is a runtime property
// (default 2: CPU and memory) bounded by kMaxResources so the type stays a
// cheap value type with inline storage.

#pragma once

#include <array>
#include <cstddef>
#include <initializer_list>
#include <string>

namespace spear {

/// Hard upper bound on resource dimensions; raising it is an ABI-only change.
inline constexpr std::size_t kMaxResources = 8;

/// Conventional indices used throughout the project.
inline constexpr std::size_t kCpu = 0;
inline constexpr std::size_t kMem = 1;

class ResourceVector {
 public:
  /// Zero vector with the given dimension count (must be 1..kMaxResources).
  explicit ResourceVector(std::size_t dims = 2);

  /// E.g. ResourceVector{0.5, 0.25} — a CPU/memory demand.
  ResourceVector(std::initializer_list<double> values);

  std::size_t dims() const { return dims_; }

  double operator[](std::size_t i) const;
  double& operator[](std::size_t i);

  ResourceVector& operator+=(const ResourceVector& o);
  ResourceVector& operator-=(const ResourceVector& o);
  friend ResourceVector operator+(ResourceVector a, const ResourceVector& b) {
    a += b;
    return a;
  }
  friend ResourceVector operator-(ResourceVector a, const ResourceVector& b) {
    a -= b;
    return a;
  }

  bool operator==(const ResourceVector& o) const;

  /// Component-wise scale.
  ResourceVector scaled(double factor) const;

  /// True if every component of this fits within `capacity` (<=, with a tiny
  /// epsilon tolerance for accumulated floating-point error).
  bool fits_within(const ResourceVector& capacity) const;

  /// True if any component is strictly negative (beyond epsilon).
  bool any_negative() const;

  /// True if every component is finite.  NaN and infinity slip past
  /// any_negative() (NaN compares false against everything), so validation
  /// sites that gate on "demand is sane" must check both.
  bool all_finite() const;

  /// Inner product; the Tetris alignment score between a task demand and the
  /// currently available resources.
  double dot(const ResourceVector& o) const;

  /// Sum of components (used for load accounting).
  double sum() const;

  /// Largest component.
  double max_component() const;

  /// Clamp all components into [lo, hi].
  void clamp(double lo, double hi);

  std::string to_string() const;

 private:
  void check_same_dims(const ResourceVector& o) const;

  std::size_t dims_;
  std::array<double, kMaxResources> v_{};
};

}  // namespace spear
