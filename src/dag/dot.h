// Graphviz DOT export for DAGs — used by the examples for visual inspection
// of generated workloads and schedules.

#pragma once

#include <string>

#include "dag/dag.h"

namespace spear {

/// Renders the DAG in DOT syntax.  Node labels show "name\nruntime demand".
std::string to_dot(const Dag& dag);

/// Writes to_dot(dag) to `path`.  Throws std::runtime_error on I/O failure.
void write_dot(const Dag& dag, const std::string& path);

}  // namespace spear
