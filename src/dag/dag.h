// Task DAG model.
//
// A job is a directed acyclic graph whose nodes are tasks.  Each task has a
// (discrete) runtime and a multi-dimensional resource demand; edges are
// precedence constraints: a task may start only after all its parents have
// finished.  This module owns the graph structure, validation, and
// topological utilities; derived scheduling features (b-level, b-load, ...)
// live in dag/features.h.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dag/resource.h"

namespace spear {

/// Discrete simulation time (slots / seconds).
using Time = std::int64_t;

/// Index of a task within its Dag.
using TaskId = std::int32_t;
inline constexpr TaskId kInvalidTask = -1;

struct Task {
  TaskId id = kInvalidTask;
  Time runtime = 1;              ///< strictly positive duration in slots
  ResourceVector demand{2};      ///< per-slot demand while running
  std::string name;              ///< optional label (examples / DOT export)
};

/// An immutable-after-build task graph.  Use DagBuilder to construct; Dag
/// itself guarantees the invariants (acyclic, ids consistent, runtimes > 0,
/// demands non-negative) checked at build time.
class Dag {
 public:
  Dag() = default;

  std::size_t num_tasks() const { return tasks_.size(); }
  std::size_t num_edges() const { return num_edges_; }
  bool empty() const { return tasks_.empty(); }

  const Task& task(TaskId id) const { return tasks_.at(static_cast<std::size_t>(id)); }
  const std::vector<Task>& tasks() const { return tasks_; }

  const std::vector<TaskId>& children(TaskId id) const {
    return children_.at(static_cast<std::size_t>(id));
  }
  const std::vector<TaskId>& parents(TaskId id) const {
    return parents_.at(static_cast<std::size_t>(id));
  }

  /// Tasks with no parents / no children.
  std::vector<TaskId> sources() const;
  std::vector<TaskId> sinks() const;

  /// A topological order (parents before children); stable across calls.
  const std::vector<TaskId>& topological_order() const { return topo_; }

  /// Sum over tasks of runtime * demand[r]: total work per resource.
  double total_load(std::size_t resource) const;

  /// Sum of all runtimes (the serial makespan on an infinitely tight cluster).
  Time total_runtime() const;

  /// Number of resource dimensions shared by every task demand.
  std::size_t resource_dims() const { return resource_dims_; }

 private:
  friend class DagBuilder;

  std::vector<Task> tasks_;
  std::vector<std::vector<TaskId>> children_;
  std::vector<std::vector<TaskId>> parents_;
  std::vector<TaskId> topo_;
  std::size_t num_edges_ = 0;
  std::size_t resource_dims_ = 2;
};

/// Incremental builder; build() validates and produces the immutable Dag.
class DagBuilder {
 public:
  explicit DagBuilder(std::size_t resource_dims = 2);

  /// Adds a task and returns its id (ids are dense, in insertion order).
  TaskId add_task(Time runtime, ResourceVector demand, std::string name = "");

  /// Adds the precedence edge from -> to (from must finish before to starts).
  /// Duplicate edges are ignored.
  void add_edge(TaskId from, TaskId to);

  std::size_t num_tasks() const { return tasks_.size(); }

  /// Validates (acyclicity, positive runtimes, non-negative demands,
  /// consistent dimensions) and returns the finished Dag.
  /// Throws std::invalid_argument on violations.
  Dag build() &&;

 private:
  std::size_t resource_dims_;
  std::vector<Task> tasks_;
  std::vector<std::vector<TaskId>> children_;
  std::vector<std::vector<TaskId>> parents_;
};

}  // namespace spear
