// DAG persistence: a small line-oriented text format so jobs can be
// authored by hand, exported from other systems, and replayed.
//
//   # comment / blank lines ignored
//   dims 2
//   task <name> <runtime> <demand_0> ... <demand_{dims-1}>
//   edge <parent-name> <child-name>
//
// Task ids are assigned in declaration order; names must be unique and
// non-empty.  to_text/from_text are exposed for tests.

#pragma once

#include <string>

#include "dag/dag.h"

namespace spear {

/// Serializes the DAG (tasks in id order, then edges).
std::string dag_to_text(const Dag& dag);

/// Parses the format above.  Throws std::runtime_error with a line number
/// on malformed input, and std::invalid_argument for graph violations
/// (duplicate names, cycles, ...).
Dag dag_from_text(const std::string& text);

/// File variants.  Throw std::runtime_error on I/O failure.
void save_dag(const Dag& dag, const std::string& path);
Dag load_dag(const std::string& path);

}  // namespace spear
