#include "dag/dag.h"

#include <algorithm>
#include <stdexcept>

namespace spear {

std::vector<TaskId> Dag::sources() const {
  std::vector<TaskId> out;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (parents_[i].empty()) out.push_back(static_cast<TaskId>(i));
  }
  return out;
}

std::vector<TaskId> Dag::sinks() const {
  std::vector<TaskId> out;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (children_[i].empty()) out.push_back(static_cast<TaskId>(i));
  }
  return out;
}

double Dag::total_load(std::size_t resource) const {
  double acc = 0.0;
  for (const auto& t : tasks_) {
    acc += static_cast<double>(t.runtime) * t.demand[resource];
  }
  return acc;
}

Time Dag::total_runtime() const {
  Time acc = 0;
  for (const auto& t : tasks_) acc += t.runtime;
  return acc;
}

DagBuilder::DagBuilder(std::size_t resource_dims)
    : resource_dims_(resource_dims) {
  if (resource_dims_ == 0 || resource_dims_ > kMaxResources) {
    throw std::invalid_argument("DagBuilder: resource_dims must be 1..8");
  }
}

TaskId DagBuilder::add_task(Time runtime, ResourceVector demand,
                            std::string name) {
  if (runtime <= 0) {
    throw std::invalid_argument("DagBuilder: runtime must be positive");
  }
  if (demand.dims() != resource_dims_) {
    throw std::invalid_argument("DagBuilder: demand dimension mismatch");
  }
  if (demand.any_negative()) {
    throw std::invalid_argument("DagBuilder: negative demand");
  }
  if (!demand.all_finite()) {
    // NaN/Inf pass any_negative() (NaN compares false against everything)
    // and would silently poison every downstream makespan and capacity
    // check, so they are rejected at the door like negative demands.
    throw std::invalid_argument("DagBuilder: non-finite demand");
  }
  const auto id = static_cast<TaskId>(tasks_.size());
  tasks_.push_back(Task{id, runtime, std::move(demand), std::move(name)});
  children_.emplace_back();
  parents_.emplace_back();
  return id;
}

void DagBuilder::add_edge(TaskId from, TaskId to) {
  const auto n = static_cast<TaskId>(tasks_.size());
  if (from < 0 || from >= n || to < 0 || to >= n) {
    throw std::invalid_argument("DagBuilder: edge endpoint out of range");
  }
  if (from == to) {
    throw std::invalid_argument("DagBuilder: self edge");
  }
  auto& kids = children_[static_cast<std::size_t>(from)];
  if (std::find(kids.begin(), kids.end(), to) != kids.end()) {
    return;  // duplicate edge
  }
  kids.push_back(to);
  parents_[static_cast<std::size_t>(to)].push_back(from);
}

Dag DagBuilder::build() && {
  Dag dag;
  dag.resource_dims_ = resource_dims_;
  dag.tasks_ = std::move(tasks_);
  dag.children_ = std::move(children_);
  dag.parents_ = std::move(parents_);

  dag.num_edges_ = 0;
  for (const auto& kids : dag.children_) dag.num_edges_ += kids.size();

  // Kahn's algorithm: topological order + cycle detection.
  const std::size_t n = dag.tasks_.size();
  std::vector<std::size_t> indegree(n);
  for (std::size_t i = 0; i < n; ++i) indegree[i] = dag.parents_[i].size();
  std::vector<TaskId> frontier;
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) frontier.push_back(static_cast<TaskId>(i));
  }
  dag.topo_.reserve(n);
  while (!frontier.empty()) {
    const TaskId u = frontier.back();
    frontier.pop_back();
    dag.topo_.push_back(u);
    for (TaskId v : dag.children_[static_cast<std::size_t>(u)]) {
      if (--indegree[static_cast<std::size_t>(v)] == 0) frontier.push_back(v);
    }
  }
  if (dag.topo_.size() != n) {
    throw std::invalid_argument("DagBuilder: graph contains a cycle");
  }
  return dag;
}

}  // namespace spear
