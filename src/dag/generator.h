// Random layered-DAG generator reproducing the paper's simulation workload
// (§V-A): DAGs of ~100 tasks whose *width* (tasks per layer) is drawn from
// [2, 5], with task runtimes and per-resource demands following truncated
// normal distributions.
//
// Construction: tasks are assigned to consecutive layers whose widths are
// uniform in [min_width, max_width] until `num_tasks` are placed.  Every
// non-first-layer task receives 1..max_parents parents drawn from the
// previous layer (guaranteeing acyclicity and layer-to-layer dependency
// chains like the map->reduce stages that motivate the paper).

#pragma once

#include "common/rng.h"
#include "dag/dag.h"

namespace spear {

struct DagGeneratorOptions {
  std::size_t num_tasks = 100;
  std::size_t min_width = 2;
  std::size_t max_width = 5;
  std::size_t max_parents = 3;

  // Runtime ~ TruncNormal(mean, sd) clipped to [min, max]; the paper caps
  // task runtimes at 20 time units.
  double runtime_mean = 10.0;
  double runtime_stddev = 5.0;
  Time runtime_min = 1;
  Time runtime_max = 20;

  // Demand per resource ~ TruncNormal(mean, sd) clipped to
  // [demand_min, demand_max], expressed as a fraction of cluster capacity
  // 1.0 per dimension.
  std::size_t resource_dims = 2;
  double demand_mean = 0.3;
  double demand_stddev = 0.15;
  double demand_min = 0.05;
  double demand_max = 0.9;
};

/// Generates one random DAG.  Deterministic given the Rng state.
Dag generate_random_dag(const DagGeneratorOptions& options, Rng& rng);

/// Generates `count` DAGs, each from an independent child stream of `rng`.
std::vector<Dag> generate_random_dags(const DagGeneratorOptions& options,
                                      std::size_t count, Rng& rng);

}  // namespace spear
