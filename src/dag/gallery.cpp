#include "dag/gallery.h"

namespace spear {

Dag motivating_example_dag() {
  DagBuilder b;
  b.add_task(10, ResourceVector{0.25, 0.02}, "t0");
  b.add_task(10, ResourceVector{0.60, 0.02}, "t1");
  b.add_task(10, ResourceVector{0.02, 0.48}, "t2");
  b.add_task(10, ResourceVector{0.40, 0.40}, "t3");
  b.add_task(7, ResourceVector{0.20, 1.0 / 3}, "t4");
  b.add_task(9, ResourceVector{0.50, 0.25}, "t5");
  b.add_task(1, ResourceVector{0.60, 0.60}, "t6");
  b.add_task(9, ResourceVector{0.75, 1.0 / 3}, "t7");
  b.add_edge(3, 5);
  b.add_edge(3, 6);
  b.add_edge(4, 5);
  return std::move(b).build();
}

}  // namespace spear
