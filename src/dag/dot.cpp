#include "dag/dot.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace spear {

std::string to_dot(const Dag& dag) {
  std::ostringstream os;
  os << "digraph dag {\n  rankdir=TB;\n  node [shape=box];\n";
  for (const auto& t : dag.tasks()) {
    os << "  t" << t.id << " [label=\"";
    if (!t.name.empty()) os << t.name << "\\n";
    os << "rt=" << t.runtime << "\\n" << t.demand.to_string() << "\"];\n";
  }
  for (const auto& t : dag.tasks()) {
    for (TaskId c : dag.children(t.id)) {
      os << "  t" << t.id << " -> t" << c << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

void write_dot(const Dag& dag, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("write_dot: cannot open " + path);
  }
  out << to_dot(dag);
}

}  // namespace spear
