// Multi-job scheduling support: the disjoint union of several job DAGs is
// itself a DAG, so minimizing its makespan schedules the whole batch — the
// standard reduction for "N jobs submitted together" experiments.

#pragma once

#include <vector>

#include "dag/dag.h"

namespace spear {

/// Disjoint union of `jobs`.  Task ids are renumbered in job order (first
/// job's tasks keep their ids, the next job's are offset, ...); task names
/// are prefixed with "j<index>/" when non-empty so provenance stays
/// visible.  All jobs must share the same resource dimension count.
Dag merge_dags(const std::vector<Dag>& jobs);

}  // namespace spear
