#include "dag/features.h"

#include <algorithm>

namespace spear {

DagFeatures::DagFeatures(const Dag& dag) : resource_dims_(dag.resource_dims()) {
  const std::size_t n = dag.num_tasks();
  b_level_.assign(n, 0);
  b_load_.assign(n, ResourceVector(resource_dims_));
  num_children_.assign(n, 0);
  num_descendants_.assign(n, 0);

  // Descendant sets via bitsets, processed in reverse topological order.
  // O(V * V / 64 + E * V / 64): fine for the graph sizes we schedule (<= a
  // few thousand tasks).
  const std::size_t words = (n + 63) / 64;
  std::vector<std::uint64_t> desc(n * words, 0);

  const auto& topo = dag.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const TaskId u = *it;
    const auto ui = static_cast<std::size_t>(u);
    const Task& task = dag.task(u);
    num_children_[ui] = dag.children(u).size();

    // b-level / b-load along the dominant child path.
    Time best_child_blevel = 0;
    const std::size_t R = resource_dims_;
    ResourceVector best_child_bload(R);
    for (TaskId v : dag.children(u)) {
      const auto vi = static_cast<std::size_t>(v);
      const bool better =
          b_level_[vi] > best_child_blevel ||
          (b_level_[vi] == best_child_blevel &&
           b_load_[vi].sum() > best_child_bload.sum());
      if (better) {
        best_child_blevel = b_level_[vi];
        best_child_bload = b_load_[vi];
      }
      // Merge child descendants into ours, plus the child itself.
      for (std::size_t w = 0; w < words; ++w) {
        desc[ui * words + w] |= desc[vi * words + w];
      }
      desc[ui * words + vi / 64] |= (std::uint64_t{1} << (vi % 64));
    }
    b_level_[ui] = task.runtime + best_child_blevel;
    ResourceVector own_load(R);
    for (std::size_t r = 0; r < R; ++r) {
      own_load[r] = static_cast<double>(task.runtime) * task.demand[r];
    }
    b_load_[ui] = own_load + best_child_bload;

    std::size_t count = 0;
    for (std::size_t w = 0; w < words; ++w) {
      count += static_cast<std::size_t>(__builtin_popcountll(desc[ui * words + w]));
    }
    num_descendants_[ui] = count;

    critical_path_ = std::max(critical_path_, b_level_[ui]);
  }
}

}  // namespace spear
