#include "dag/io.h"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace spear {

std::string dag_to_text(const Dag& dag) {
  std::ostringstream os;
  os.precision(17);
  os << "# spear dag: " << dag.num_tasks() << " tasks, " << dag.num_edges()
     << " edges\n";
  os << "dims " << dag.resource_dims() << "\n";
  auto name_of = [&](const Task& t) {
    return t.name.empty() ? "t" + std::to_string(t.id) : t.name;
  };
  for (const auto& t : dag.tasks()) {
    os << "task " << name_of(t) << " " << t.runtime;
    for (std::size_t r = 0; r < dag.resource_dims(); ++r) {
      os << " " << t.demand[r];
    }
    os << "\n";
  }
  for (const auto& t : dag.tasks()) {
    for (TaskId c : dag.children(t.id)) {
      os << "edge " << name_of(t) << " " << name_of(dag.task(c)) << "\n";
    }
  }
  return os.str();
}

Dag dag_from_text(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  int line_number = 0;
  std::size_t dims = 2;
  bool dims_seen = false;

  auto fail = [&](const std::string& message) -> void {
    throw std::runtime_error("dag_from_text: line " +
                             std::to_string(line_number) + ": " + message);
  };

  // Two passes would simplify forward references, but the format requires
  // tasks before the edges that use them, so one pass suffices.
  DagBuilder builder(dims);
  std::map<std::string, TaskId> by_name;
  bool builder_started = false;

  while (std::getline(is, line)) {
    ++line_number;
    std::istringstream fields(line);
    std::string keyword;
    if (!(fields >> keyword) || keyword[0] == '#') continue;

    if (keyword == "dims") {
      if (builder_started) fail("dims after tasks");
      if (dims_seen) fail("duplicate dims");
      if (!(fields >> dims) || dims == 0 || dims > kMaxResources) {
        fail("bad dims value");
      }
      dims_seen = true;
      builder = DagBuilder(dims);
    } else if (keyword == "task") {
      builder_started = true;
      std::string name;
      Time runtime = 0;
      if (!(fields >> name >> runtime)) fail("bad task line");
      ResourceVector demand(dims);
      for (std::size_t r = 0; r < dims; ++r) {
        if (!(fields >> demand[r])) fail("missing demand component");
      }
      if (by_name.count(name) != 0) fail("duplicate task name '" + name + "'");
      by_name[name] = builder.add_task(runtime, demand, name);
    } else if (keyword == "edge") {
      std::string from, to;
      if (!(fields >> from >> to)) fail("bad edge line");
      const auto from_it = by_name.find(from);
      const auto to_it = by_name.find(to);
      if (from_it == by_name.end()) fail("unknown task '" + from + "'");
      if (to_it == by_name.end()) fail("unknown task '" + to + "'");
      builder.add_edge(from_it->second, to_it->second);
    } else {
      fail("unknown keyword '" + keyword + "'");
    }
  }
  return std::move(builder).build();
}

void save_dag(const Dag& dag, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("save_dag: cannot open " + path);
  out << dag_to_text(dag);
  if (!out) throw std::runtime_error("save_dag: write failed for " + path);
}

Dag load_dag(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_dag: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return dag_from_text(buf.str());
}

}  // namespace spear
