#include "dag/resource.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace spear {

namespace {
// Tolerance for capacity comparisons: demands are fractions of capacity and
// accumulate across tens of running tasks, so we allow ~1e-9 slop.
constexpr double kEps = 1e-9;
}  // namespace

ResourceVector::ResourceVector(std::size_t dims) : dims_(dims) {
  if (dims_ == 0 || dims_ > kMaxResources) {
    throw std::invalid_argument("ResourceVector: dims must be 1..8");
  }
}

ResourceVector::ResourceVector(std::initializer_list<double> values)
    : dims_(values.size()) {
  if (dims_ == 0 || dims_ > kMaxResources) {
    throw std::invalid_argument("ResourceVector: dims must be 1..8");
  }
  std::size_t i = 0;
  for (double v : values) v_[i++] = v;
}

double ResourceVector::operator[](std::size_t i) const {
  if (i >= dims_) throw std::out_of_range("ResourceVector index");
  return v_[i];
}

double& ResourceVector::operator[](std::size_t i) {
  if (i >= dims_) throw std::out_of_range("ResourceVector index");
  return v_[i];
}

void ResourceVector::check_same_dims(const ResourceVector& o) const {
  if (dims_ != o.dims_) {
    throw std::invalid_argument("ResourceVector: dimension mismatch");
  }
}

ResourceVector& ResourceVector::operator+=(const ResourceVector& o) {
  check_same_dims(o);
  for (std::size_t i = 0; i < dims_; ++i) v_[i] += o.v_[i];
  return *this;
}

ResourceVector& ResourceVector::operator-=(const ResourceVector& o) {
  check_same_dims(o);
  for (std::size_t i = 0; i < dims_; ++i) v_[i] -= o.v_[i];
  return *this;
}

bool ResourceVector::operator==(const ResourceVector& o) const {
  if (dims_ != o.dims_) return false;
  for (std::size_t i = 0; i < dims_; ++i) {
    if (v_[i] != o.v_[i]) return false;
  }
  return true;
}

ResourceVector ResourceVector::scaled(double factor) const {
  ResourceVector out(dims_);
  for (std::size_t i = 0; i < dims_; ++i) out.v_[i] = v_[i] * factor;
  return out;
}

bool ResourceVector::fits_within(const ResourceVector& capacity) const {
  check_same_dims(capacity);
  for (std::size_t i = 0; i < dims_; ++i) {
    if (v_[i] > capacity.v_[i] + kEps) return false;
  }
  return true;
}

bool ResourceVector::any_negative() const {
  for (std::size_t i = 0; i < dims_; ++i) {
    if (v_[i] < -kEps) return true;
  }
  return false;
}

bool ResourceVector::all_finite() const {
  for (std::size_t i = 0; i < dims_; ++i) {
    if (!std::isfinite(v_[i])) return false;
  }
  return true;
}

double ResourceVector::dot(const ResourceVector& o) const {
  check_same_dims(o);
  double acc = 0.0;
  for (std::size_t i = 0; i < dims_; ++i) acc += v_[i] * o.v_[i];
  return acc;
}

double ResourceVector::sum() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < dims_; ++i) acc += v_[i];
  return acc;
}

double ResourceVector::max_component() const {
  double m = v_[0];
  for (std::size_t i = 1; i < dims_; ++i) m = std::max(m, v_[i]);
  return m;
}

void ResourceVector::clamp(double lo, double hi) {
  for (std::size_t i = 0; i < dims_; ++i) v_[i] = std::clamp(v_[i], lo, hi);
}

std::string ResourceVector::to_string() const {
  std::ostringstream os;
  os << "(";
  for (std::size_t i = 0; i < dims_; ++i) {
    if (i) os << ", ";
    os << v_[i];
  }
  os << ")";
  return os.str();
}

}  // namespace spear
