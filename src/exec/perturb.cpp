#include "exec/perturb.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.h"

namespace spear::exec {
namespace {

// Top 53 bits -> uniform double in [0, 1) (same mapping as fault.cpp).
double to_unit(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

RuntimePerturber::RuntimePerturber(PerturbOptions options)
    : options_(options) {
  if (options_.sigma < 0.0) {
    throw std::invalid_argument("RuntimePerturber: sigma must be >= 0");
  }
  if (options_.straggler_rate < 0.0 || options_.straggler_rate > 1.0) {
    throw std::invalid_argument(
        "RuntimePerturber: straggler_rate must be in [0, 1]");
  }
  if (options_.straggler_factor < 1.0) {
    throw std::invalid_argument(
        "RuntimePerturber: straggler_factor must be >= 1");
  }
  if (options_.tail_alpha <= 0.0) {
    throw std::invalid_argument("RuntimePerturber: tail_alpha must be > 0");
  }
  if (options_.max_multiplier < 1.0) {
    throw std::invalid_argument(
        "RuntimePerturber: max_multiplier must be >= 1");
  }
}

double RuntimePerturber::multiplier(TaskId task, int attempt) const {
  // Two hashed passes, FaultInjector-style, but with distinct mixing
  // constants so the runtime draws are independent of the injector's
  // fail/straggle draws even under the same seed.
  SplitMix64 outer(options_.seed ^
                   (static_cast<std::uint64_t>(task) + 1) *
                       0xd1342543de82ef95ULL);
  SplitMix64 g(outer.next() ^
               (static_cast<std::uint64_t>(attempt) + 1) *
                   0x94d049bb133111ebULL);

  double m = 1.0;
  if (options_.sigma > 0.0) {
    // Box-Muller from two hashed uniforms; mu = -sigma^2/2 centers the
    // lognormal's MEAN (not median) at 1.
    const double u1 = to_unit(g.next());
    const double u2 = to_unit(g.next());
    const double z = std::sqrt(-2.0 * std::log(1.0 - u1)) *
                     std::cos(2.0 * 3.14159265358979323846 * u2);
    m = std::exp(-0.5 * options_.sigma * options_.sigma +
                 options_.sigma * z);
  } else {
    g.next();
    g.next();
  }
  const double u_straggle = to_unit(g.next());
  const double u_tail = to_unit(g.next());
  if (u_straggle < options_.straggler_rate) {
    // Pareto(alpha) tail starting at straggler_factor.
    m *= options_.straggler_factor *
         std::pow(1.0 - u_tail, -1.0 / options_.tail_alpha);
  }
  return std::clamp(m, 0x1.0p-10, options_.max_multiplier);
}

Time RuntimePerturber::realized_duration(const Task& task, int attempt) const {
  const double scaled =
      std::ceil(static_cast<double>(task.runtime) *
                multiplier(task.id, attempt));
  return std::max<Time>(1, static_cast<Time>(scaled));
}

}  // namespace spear::exec
