// Online execution engine with surprise detection, schedule repair, and
// straggler speculation (DESIGN.md §14).
//
// The offline planners (Spear::schedule, MctsScheduler, the list
// schedulers) commit a Schedule against ESTIMATED runtimes.  The engine
// takes that committed plan, replays it event-by-event against a stochastic
// cluster where REALIZED runtimes come from a RuntimePerturber (or a
// caller-provided duration source, e.g. trace-recorded durations), and
// reacts to divergence.  At each task-completion event it measures the
// surprise — realized lateness versus the estimate — and climbs a repair
// ladder of increasing cost:
//
//   1. absorb       — |surprise| <= absorb_factor * estimate: the event
//                     slack soaks it up; nothing to do.
//   2. local repair — re-sort the not-yet-started frontier by residual
//                     bottom level (critical path over the remaining work).
//                     Cheap, handles most lateness.
//   3. re-search    — surprise > research_factor * estimate: rebuild the
//                     residual DAG (pending tasks plus in-flight work as
//                     preloaded source stubs), hand it to MctsScheduler via
//                     schedule_env() with a bounded iteration budget, and
//                     adopt the new priority order.  Rate-limited by a
//                     cooldown and skipped when almost done.
//
// Orthogonally the engine speculates on stragglers: once an attempt has run
// speculation_factor times its estimate, a duplicate attempt (next attempt
// index, independent perturbation draw) is launched when resources allow;
// first finish wins and the loser is cancelled through the same
// shared_ptr<atomic<bool>> token idiom the service layer uses, releasing
// its resources at the cancel instant.  Capacity-loss windows from a
// FaultInjector gate NEW dispatches exactly as in ClusterSim.
//
// Everything is deterministic: realized durations are pure functions of
// (seed, task, attempt), re-search uses iteration budgets with leaf-mode
// MCTS (bit-identical across worker counts), and the event log serializes
// to a canonical text form — the same seed yields byte-identical logs, and
// 1 vs 4 re-search threads yield identical repair decisions.  The offline
// planning paths are untouched: the engine is a pure consumer of Schedule.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/schedule.h"
#include "dag/dag.h"
#include "dag/resource.h"
#include "exec/perturb.h"
#include "fault/fault.h"

namespace spear::exec {

/// Realized-duration source: slots the (0-based) `attempt`-th execution of
/// `task` actually takes (must be >= 1).  Must be a pure function of its
/// arguments — the engine may query any (task, attempt) pair at most once,
/// but determinism tests replay whole runs.
using DurationFn = std::function<Time(const Task& task, int attempt)>;

/// What happened, when.  `value` is kind-specific (see EventKind).
enum class EventKind {
  kStart,        ///< attempt dispatched; value = realized duration
  kSpeculate,    ///< duplicate attempt dispatched; value = realized duration
  kFinish,       ///< winning attempt completed; value = surprise (lateness
                 ///< of the task versus first-start + estimate, in slots)
  kCancel,       ///< losing duplicate cancelled; value = slots it ran
  kAbsorb,       ///< ladder rung 1 chosen; value = surprise
  kLocalRepair,  ///< ladder rung 2 chosen; value = surprise
  kResearch,     ///< ladder rung 3 chosen; value = surprise
};

struct ExecEvent {
  Time time = 0;
  EventKind kind = EventKind::kStart;
  TaskId task = kInvalidTask;
  int attempt = 0;
  Time value = 0;
};

/// Canonical one-line-per-event text form, e.g. "17 finish task=3 attempt=0
/// value=5".  Byte-compared by the determinism tests and CI smoke.
std::string format_events(const std::vector<ExecEvent>& events);

struct ExecStats {
  std::int64_t surprises = 0;      ///< completions with |surprise| > 0
  std::int64_t absorbed = 0;
  std::int64_t local_repairs = 0;
  std::int64_t researches = 0;
  std::int64_t speculations = 0;   ///< duplicates launched
  std::int64_t speculation_wins = 0;  ///< duplicate finished first
  std::int64_t cancellations = 0;
  Time max_surprise = 0;
};

struct ExecResult {
  Time makespan = 0;               ///< == replay_makespan(events), exactly
  std::vector<ExecEvent> events;   ///< in (time, emission) order
  ExecStats stats;
};

struct ExecOptions {
  /// false = open-loop baseline: plan-faithful replay (a task never starts
  /// before its planned start, priority order is frozen, no ladder).
  /// true = the work-conserving repair ladder.
  bool repair = true;

  /// Default realized-runtime model; ignored when `realized` is set.
  PerturbOptions perturb;
  /// Overrides `perturb` when non-null (trace-provided durations, or the
  /// FaultInjector's own attempt durations for cross-validation).
  DurationFn realized;

  /// Ladder rung 1: |surprise| <= absorb_factor * estimate is absorbed.
  double absorb_factor = 0.25;
  /// Ladder rung 3: surprise > research_factor * estimate triggers a
  /// bounded re-search (subject to cooldown / min-pending gates below).
  double research_factor = 1.0;
  /// Completion events that must elapse between re-searches.
  int research_cooldown = 8;
  /// Re-search is skipped when fewer pending tasks remain (the residual
  /// problem is too small to out-plan a greedy frontier sort).
  std::size_t research_min_pending = 3;
  /// Anytime iteration budgets handed to MctsScheduler (per decision).
  /// Iteration-based, never wall-clock, so repair decisions are
  /// reproducible across machines and thread counts.
  std::int64_t research_initial_budget = 128;
  std::int64_t research_min_budget = 32;
  /// Leaf-parallel workers for the re-search; results are bit-identical
  /// across values (leaf mode), so this is purely a latency knob.
  int research_threads = 1;

  /// Straggler speculation master switch.
  bool speculate = true;
  /// Duplicate once an attempt has run speculation_factor * estimate slots
  /// without finishing (the p-quantile proxy: under the default lognormal
  /// noise, 2x the mean estimate sits past p95).
  double speculation_factor = 2.0;
  /// Duplicates allowed per task (first-finish-wins among all attempts).
  int max_speculations_per_task = 1;

  /// Capacity-loss windows gate new dispatches (running work is unaffected,
  /// matching ClusterSim).  Fail/straggler rates of the injector are NOT
  /// consulted here — runtime stochasticity is the perturber's job.
  std::shared_ptr<const FaultInjector> faults;

  /// Salts the deterministic per-re-search MCTS seeds.
  std::uint64_t seed = 42;
};

class ExecutionEngine {
 public:
  /// Throws std::invalid_argument on null dag / out-of-range options.
  ExecutionEngine(std::shared_ptr<const Dag> dag, ResourceVector capacity,
                  ExecOptions options = {});

  /// Replays `plan` (which must place every task of the dag) to completion.
  /// Deterministic: same (dag, capacity, options, plan) => same result,
  /// byte-identical event log included.
  ExecResult run(const Schedule& plan);

  const ExecOptions& options() const { return options_; }

 private:
  struct RunningAttempt;
  struct RunState;

  bool try_start_tasks(RunState& s) const;
  void maybe_speculate(RunState& s) const;
  Time next_event_time(const RunState& s) const;
  void handle_completion(RunState& s, TaskId task, Time estimate) const;
  void local_repair(RunState& s) const;
  void research(RunState& s) const;

  std::shared_ptr<const Dag> dag_;
  ResourceVector capacity_;
  ExecOptions options_;
  std::optional<RuntimePerturber> perturber_;  // engaged iff !options_.realized
};

/// Replays the event log against the dag: dependency order (no attempt
/// starts before every parent's winning finish), capacity (total demand of
/// concurrently running attempts never exceeds capacity minus the
/// injector's loss at each dispatch instant), and attempt accounting
/// (indices 0,1,2,... per task; exactly one winning finish per task; every
/// other dispatched attempt cancelled).  Returns std::nullopt when valid,
/// else a description of the first violation.
std::optional<std::string> validate_events(
    const Dag& dag, const ResourceVector& capacity,
    const std::vector<ExecEvent>& events,
    const FaultInjector* faults = nullptr);

/// Makespan recomputed from the log alone: max finish-event time (0 when no
/// finishes).  ExecResult::makespan equals this exactly.
Time replay_makespan(const std::vector<ExecEvent>& events);

/// Schedule built from the event log (placements = winning attempts,
/// attempt records = every dispatched attempt), for feeding the existing
/// Schedule::validate* machinery.
Schedule schedule_from_events(const std::vector<ExecEvent>& events);

}  // namespace spear::exec
