#include "exec/engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <stdexcept>
#include <utility>

#include "env/env.h"
#include "mcts/mcts.h"
#include "obs/obs.h"

namespace spear::exec {
namespace {

const char* kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kStart:
      return "start";
    case EventKind::kSpeculate:
      return "speculate";
    case EventKind::kFinish:
      return "finish";
    case EventKind::kCancel:
      return "cancel";
    case EventKind::kAbsorb:
      return "absorb";
    case EventKind::kLocalRepair:
      return "local_repair";
    case EventKind::kResearch:
      return "research";
  }
  return "?";
}

}  // namespace

std::string format_events(const std::vector<ExecEvent>& events) {
  std::string out;
  for (const ExecEvent& e : events) {
    out += std::to_string(e.time);
    out += ' ';
    out += kind_name(e.kind);
    out += " task=";
    out += std::to_string(e.task);
    out += " attempt=";
    out += std::to_string(e.attempt);
    out += " value=";
    out += std::to_string(e.value);
    out += '\n';
  }
  return out;
}

struct ExecutionEngine::RunningAttempt {
  TaskId task = kInvalidTask;
  int attempt = 0;
  Time start = 0;
  Time finish = 0;     ///< realized finish (start + realized duration)
  bool speculative = false;
  /// Same cancellation idiom as the service layer: the winner's completion
  /// sets the loser's token; anything holding the token observes the stop.
  std::shared_ptr<std::atomic<bool>> cancel;
};

struct ExecutionEngine::RunState {
  Time now = 0;
  ResourceVector avail{2};
  std::vector<RunningAttempt> running;  // insertion order (deterministic)
  std::vector<TaskId> pending;          // not started, in priority order
  std::vector<char> done;
  std::vector<int> attempts;        // next attempt index per task
  std::vector<int> spec_launched;   // duplicates launched per task
  std::vector<Time> first_start;    // -1 until first dispatch
  std::vector<Time> planned;        // committed plan's start per task
  std::size_t completed = 0;
  int completions_since_research = 0;
  int research_count = 0;
  std::vector<ExecEvent> events;
  ExecStats stats;
  DurationFn duration;
};

ExecutionEngine::ExecutionEngine(std::shared_ptr<const Dag> dag,
                                 ResourceVector capacity, ExecOptions options)
    : dag_(std::move(dag)),
      capacity_(std::move(capacity)),
      options_(std::move(options)) {
  if (!dag_) {
    throw std::invalid_argument("ExecutionEngine: null dag");
  }
  if (options_.absorb_factor < 0.0 || options_.research_factor < 0.0) {
    throw std::invalid_argument(
        "ExecutionEngine: ladder factors must be >= 0");
  }
  if (options_.research_cooldown < 0 ||
      options_.research_initial_budget <= 0 ||
      options_.research_min_budget <= 0 || options_.research_threads < 1) {
    throw std::invalid_argument(
        "ExecutionEngine: re-search options out of range");
  }
  if (options_.speculation_factor < 1.0 ||
      options_.max_speculations_per_task < 0) {
    throw std::invalid_argument(
        "ExecutionEngine: speculation options out of range");
  }
  for (const Task& t : dag_->tasks()) {
    if (!t.demand.fits_within(capacity_)) {
      throw std::invalid_argument(
          "ExecutionEngine: task " + std::to_string(t.id) +
          " demands more than the cluster capacity");
    }
  }
  if (!options_.realized) {
    perturber_.emplace(options_.perturb);  // validates PerturbOptions
  }
}

bool ExecutionEngine::try_start_tasks(RunState& s) const {
  bool any = false;
  const ResourceVector loss =
      options_.faults ? options_.faults->capacity_loss_at(s.now)
                      : ResourceVector(capacity_.dims());
  for (auto it = s.pending.begin(); it != s.pending.end();) {
    const TaskId id = *it;
    bool ready = true;
    for (TaskId p : dag_->parents(id)) {
      if (!s.done[static_cast<std::size_t>(p)]) {
        ready = false;
        break;
      }
    }
    // Open-loop replay is plan-faithful: never start before the committed
    // start time.  The ladder is work-conserving and ignores the gate.
    if (!ready || (!options_.repair &&
                   s.now < s.planned[static_cast<std::size_t>(id)])) {
      ++it;
      continue;
    }
    const Task& task = dag_->task(id);
    if (!(task.demand + loss).fits_within(s.avail)) {
      ++it;
      continue;
    }
    const int attempt = s.attempts[static_cast<std::size_t>(id)]++;
    const Time realized = s.duration(task, attempt);
    if (s.first_start[static_cast<std::size_t>(id)] < 0) {
      s.first_start[static_cast<std::size_t>(id)] = s.now;
    }
    s.avail -= task.demand;
    s.running.push_back({id, attempt, s.now, s.now + realized, false,
                         std::make_shared<std::atomic<bool>>(false)});
    s.events.push_back({s.now, EventKind::kStart, id, attempt, realized});
    it = s.pending.erase(it);
    any = true;
  }
  return any;
}

void ExecutionEngine::maybe_speculate(RunState& s) const {
  if (!options_.speculate) return;
  const ResourceVector loss =
      options_.faults ? options_.faults->capacity_loss_at(s.now)
                      : ResourceVector(capacity_.dims());
  // Index loop: launching a duplicate appends to s.running.
  const std::size_t primaries = s.running.size();
  for (std::size_t i = 0; i < primaries; ++i) {
    // Copy the fields we need — the push_back below may reallocate.
    const TaskId id = s.running[i].task;
    const Time started = s.running[i].start;
    if (s.running[i].speculative) continue;
    const auto idx = static_cast<std::size_t>(id);
    if (s.spec_launched[idx] >= options_.max_speculations_per_task) continue;
    const Task& task = dag_->task(id);
    const Time trigger = std::max<Time>(
        1, static_cast<Time>(std::ceil(static_cast<double>(task.runtime) *
                                       options_.speculation_factor)));
    if (s.now < started + trigger) continue;
    if (!(task.demand + loss).fits_within(s.avail)) continue;
    ++s.spec_launched[idx];
    ++s.stats.speculations;
    const int attempt = s.attempts[idx]++;
    const Time realized = s.duration(task, attempt);
    s.avail -= task.demand;
    s.running.push_back({id, attempt, s.now, s.now + realized, true,
                         std::make_shared<std::atomic<bool>>(false)});
    s.events.push_back({s.now, EventKind::kSpeculate, id, attempt, realized});
    if (obs::enabled()) obs::count("exec.speculations");
  }
}

Time ExecutionEngine::next_event_time(const RunState& s) const {
  Time best = -1;
  const auto consider = [&best, &s](Time t) {
    if (t > s.now && (best < 0 || t < best)) best = t;
  };
  for (const RunningAttempt& r : s.running) {
    consider(r.finish);
    // A pending speculation trigger is a wake-up instant too.
    if (options_.speculate && !r.speculative &&
        s.spec_launched[static_cast<std::size_t>(r.task)] <
            options_.max_speculations_per_task) {
      const Task& task = dag_->task(r.task);
      consider(r.start +
               std::max<Time>(1, static_cast<Time>(std::ceil(
                                     static_cast<double>(task.runtime) *
                                     options_.speculation_factor))));
    }
  }
  // A ready pending task that could not start is waiting on either the
  // open-loop planned-start gate or a capacity-loss window boundary.
  bool blocked_ready = false;
  for (TaskId id : s.pending) {
    bool ready = true;
    for (TaskId p : dag_->parents(id)) {
      if (!s.done[static_cast<std::size_t>(p)]) {
        ready = false;
        break;
      }
    }
    if (!ready) continue;
    blocked_ready = true;
    if (!options_.repair) {
      consider(s.planned[static_cast<std::size_t>(id)]);
    }
  }
  if (blocked_ready && options_.faults) {
    consider(options_.faults->next_capacity_event_after(s.now));
  }
  return best;
}

void ExecutionEngine::handle_completion(RunState& s, TaskId task,
                                        Time estimate) const {
  // Surprise: the task's realized lateness versus what the plan expected
  // once it started — positive = late, negative = early.
  const Time surprise =
      s.now - (s.first_start[static_cast<std::size_t>(task)] + estimate);
  if (surprise != 0) {
    ++s.stats.surprises;
    s.stats.max_surprise = std::max(s.stats.max_surprise, surprise);
  }
  if (!options_.repair || s.pending.empty()) return;
  const double magnitude = std::abs(static_cast<double>(surprise));
  const double est = static_cast<double>(estimate);
  if (magnitude <= options_.absorb_factor * est) {
    ++s.stats.absorbed;
    s.events.push_back({s.now, EventKind::kAbsorb, task, 0, surprise});
    return;
  }
  if (static_cast<double>(surprise) > options_.research_factor * est &&
      s.completions_since_research >= options_.research_cooldown &&
      s.pending.size() >= options_.research_min_pending) {
    ++s.stats.researches;
    s.events.push_back({s.now, EventKind::kResearch, task, 0, surprise});
    research(s);
    return;
  }
  ++s.stats.local_repairs;
  s.events.push_back({s.now, EventKind::kLocalRepair, task, 0, surprise});
  local_repair(s);
}

void ExecutionEngine::local_repair(RunState& s) const {
  // Residual bottom level over nominal runtimes: the classic critical-path
  // urgency, recomputed cheaply (no descendant of an unfinished task can be
  // finished, so the full-DAG recurrence is exact for the frontier).
  std::vector<Time> bl(dag_->num_tasks(), 0);
  const auto& topo = dag_->topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const TaskId id = *it;
    Time best = 0;
    for (TaskId c : dag_->children(id)) {
      best = std::max(best, bl[static_cast<std::size_t>(c)]);
    }
    bl[static_cast<std::size_t>(id)] = dag_->task(id).runtime + best;
  }
  std::sort(s.pending.begin(), s.pending.end(),
            [&bl](TaskId a, TaskId b) {
              const Time ba = bl[static_cast<std::size_t>(a)];
              const Time bb = bl[static_cast<std::size_t>(b)];
              return ba != bb ? ba > bb : a < b;
            });
  if (obs::enabled()) obs::count("exec.local_repairs");
}

void ExecutionEngine::research(RunState& s) const {
  obs::ScopedTimer span("exec.research", "exec");
  s.completions_since_research = 0;
  ++s.research_count;

  // Residual DAG: in-flight work becomes preloaded source stubs whose
  // runtime is the estimated remaining slots (non-clairvoyant — the engine
  // does not peek at realized finishes); pending tasks keep their nominal
  // runtimes; edges survive only among remaining tasks (a pending task's
  // finished parents impose no constraint any more).
  std::vector<TaskId> running_ids;
  for (const RunningAttempt& r : s.running) {
    if (std::find(running_ids.begin(), running_ids.end(), r.task) ==
        running_ids.end()) {
      running_ids.push_back(r.task);
    }
  }
  std::sort(running_ids.begin(), running_ids.end());
  std::vector<TaskId> pending_sorted = s.pending;
  std::sort(pending_sorted.begin(), pending_sorted.end());

  DagBuilder builder(capacity_.dims());
  std::vector<TaskId> res_of(dag_->num_tasks(), kInvalidTask);
  for (TaskId id : running_ids) {
    Time earliest_start = s.now;
    for (const RunningAttempt& r : s.running) {
      if (r.task == id) earliest_start = std::min(earliest_start, r.start);
    }
    const Task& task = dag_->task(id);
    const Time remaining =
        std::max<Time>(1, task.runtime - (s.now - earliest_start));
    res_of[static_cast<std::size_t>(id)] =
        builder.add_task(remaining, task.demand, task.name);
  }
  for (TaskId id : pending_sorted) {
    const Task& task = dag_->task(id);
    res_of[static_cast<std::size_t>(id)] =
        builder.add_task(task.runtime, task.demand, task.name);
  }
  for (TaskId id : pending_sorted) {
    for (TaskId p : dag_->parents(id)) {
      if (res_of[static_cast<std::size_t>(p)] != kInvalidTask) {
        builder.add_edge(res_of[static_cast<std::size_t>(p)],
                         res_of[static_cast<std::size_t>(id)]);
      }
    }
  }
  auto residual = std::make_shared<Dag>(std::move(builder).build());

  EnvOptions env_options;
  env_options.max_ready = std::max<std::size_t>(residual->num_tasks(), 1);
  for (TaskId id : running_ids) {
    env_options.initial_running.push_back(
        res_of[static_cast<std::size_t>(id)]);
  }
  SchedulingEnv env(residual, capacity_, env_options);

  // Bounded anytime re-search: iteration budgets only (never wall-clock)
  // and leaf mode, so the chosen repair is bit-identical across machines
  // and research_threads values.  The seed mixes in the re-search ordinal
  // so consecutive repairs explore independently but reproducibly.
  MctsOptions mcts_options;
  mcts_options.initial_budget = options_.research_initial_budget;
  mcts_options.min_budget = options_.research_min_budget;
  mcts_options.seed = options_.seed ^
                      (static_cast<std::uint64_t>(s.research_count) *
                       0x9e3779b97f4a7c15ULL);
  mcts_options.name = "exec-research";
  mcts_options.num_threads = options_.research_threads;
  mcts_options.search_mode = SearchMode::kLeaf;
  MctsScheduler mcts(mcts_options,
                     std::make_shared<HeuristicDecisionPolicy>());
  const Schedule residual_plan = mcts.schedule_env(std::move(env));

  // Adopt the re-searched order: pending tasks sorted by their residual
  // start times (residual id breaks ties deterministically).
  std::sort(s.pending.begin(), s.pending.end(),
            [&residual_plan, &res_of](TaskId a, TaskId b) {
              const TaskId ra = res_of[static_cast<std::size_t>(a)];
              const TaskId rb = res_of[static_cast<std::size_t>(b)];
              const Time sa = residual_plan.start_of(ra);
              const Time sb = residual_plan.start_of(rb);
              return sa != sb ? sa < sb : ra < rb;
            });
  if (obs::enabled()) obs::count("exec.researches");
}

ExecResult ExecutionEngine::run(const Schedule& plan) {
  obs::ScopedTimer span("exec.run", "exec");
  const std::size_t n = dag_->num_tasks();
  RunState s;
  s.avail = capacity_;
  s.done.assign(n, 0);
  s.attempts.assign(n, 0);
  s.spec_launched.assign(n, 0);
  s.first_start.assign(n, -1);
  s.planned.resize(n);
  for (const Task& t : dag_->tasks()) {
    s.planned[static_cast<std::size_t>(t.id)] = plan.start_of(t.id);
  }
  // Initial dispatch priority: the committed plan's start order.
  s.pending.resize(n);
  for (std::size_t i = 0; i < n; ++i) s.pending[i] = static_cast<TaskId>(i);
  std::sort(s.pending.begin(), s.pending.end(),
            [&s](TaskId a, TaskId b) {
              const Time pa = s.planned[static_cast<std::size_t>(a)];
              const Time pb = s.planned[static_cast<std::size_t>(b)];
              return pa != pb ? pa < pb : a < b;
            });
  // Allow the very first surprise to escalate all the way.
  s.completions_since_research = options_.research_cooldown;
  if (options_.realized) {
    s.duration = options_.realized;
  } else {
    s.duration = [this](const Task& task, int attempt) {
      return perturber_->realized_duration(task, attempt);
    };
  }

  Time makespan = 0;
  while (s.completed < n) {
    try_start_tasks(s);
    maybe_speculate(s);
    const Time next = next_event_time(s);
    if (next < 0) {
      throw std::logic_error(
          "ExecutionEngine: no runnable work and no future event at t=" +
          std::to_string(s.now) + " (" + std::to_string(s.completed) + "/" +
          std::to_string(n) + " tasks done)");
    }
    s.now = next;

    // Process every finish at this instant in (task, attempt) order; the
    // first processed attempt of a task wins, every other in-flight attempt
    // of that task is cancelled at the same instant.
    for (;;) {
      std::size_t win = s.running.size();
      for (std::size_t i = 0; i < s.running.size(); ++i) {
        const RunningAttempt& r = s.running[i];
        if (r.finish > s.now) continue;
        if (win == s.running.size() ||
            r.task < s.running[win].task ||
            (r.task == s.running[win].task &&
             r.attempt < s.running[win].attempt)) {
          win = i;
        }
      }
      if (win == s.running.size()) break;
      const RunningAttempt winner = s.running[win];
      const Task& task = dag_->task(winner.task);
      s.running.erase(s.running.begin() +
                      static_cast<std::ptrdiff_t>(win));
      s.avail += task.demand;
      s.done[static_cast<std::size_t>(winner.task)] = 1;
      ++s.completed;
      ++s.completions_since_research;
      makespan = std::max(makespan, s.now);
      if (winner.speculative) ++s.stats.speculation_wins;
      const Time surprise =
          s.now -
          (s.first_start[static_cast<std::size_t>(winner.task)] +
           task.runtime);
      s.events.push_back({s.now, EventKind::kFinish, winner.task,
                          winner.attempt, surprise});
      // First-finish-wins: cancel the losing attempts via their tokens and
      // release their resources now (logged after the winning finish so the
      // log reads causally at this instant).
      for (std::size_t i = 0; i < s.running.size();) {
        if (s.running[i].task != winner.task) {
          ++i;
          continue;
        }
        const RunningAttempt loser = s.running[i];
        loser.cancel->store(true, std::memory_order_relaxed);
        s.running.erase(s.running.begin() + static_cast<std::ptrdiff_t>(i));
        s.avail += task.demand;
        ++s.stats.cancellations;
        s.events.push_back({s.now, EventKind::kCancel, loser.task,
                            loser.attempt, s.now - loser.start});
      }
      handle_completion(s, winner.task, task.runtime);
    }
  }

  if (obs::enabled()) {
    obs::count("exec.runs");
    obs::count("exec.surprises", s.stats.surprises);
    obs::count("exec.absorbed", s.stats.absorbed);
    obs::count("exec.local_repairs_total", s.stats.local_repairs);
    obs::count("exec.researches_total", s.stats.researches);
    obs::count("exec.speculations_total", s.stats.speculations);
    obs::count("exec.speculation_wins", s.stats.speculation_wins);
    obs::count("exec.cancellations", s.stats.cancellations);
    obs::gauge("exec.last_makespan", static_cast<double>(makespan));
  }

  ExecResult result;
  result.makespan = makespan;
  result.events = std::move(s.events);
  result.stats = s.stats;
  return result;
}

std::optional<std::string> validate_events(
    const Dag& dag, const ResourceVector& capacity,
    const std::vector<ExecEvent>& events, const FaultInjector* faults) {
  struct Interval {
    Time start = 0;
    Time end = -1;  // -1 = still open
    ResourceVector demand{2};
  };
  const std::size_t n = dag.num_tasks();
  std::vector<Time> finish_time(n, -1);
  std::vector<int> next_attempt(n, 0);
  std::map<std::pair<TaskId, int>, Interval> open;
  const auto err = [](const ExecEvent& e, const std::string& why) {
    return std::optional<std::string>(
        "event t=" + std::to_string(e.time) + " task " +
        std::to_string(e.task) + " attempt " + std::to_string(e.attempt) +
        ": " + why);
  };

  Time prev = 0;
  for (const ExecEvent& e : events) {
    if (e.time < prev) return err(e, "events not in time order");
    prev = e.time;
    if (e.task < 0 || static_cast<std::size_t>(e.task) >= n) {
      return err(e, "unknown task");
    }
    const auto idx = static_cast<std::size_t>(e.task);
    switch (e.kind) {
      case EventKind::kStart:
      case EventKind::kSpeculate: {
        if (finish_time[idx] >= 0) return err(e, "task already finished");
        if (e.attempt != next_attempt[idx]) {
          return err(e, "attempt index out of order (expected " +
                            std::to_string(next_attempt[idx]) + ")");
        }
        ++next_attempt[idx];
        for (TaskId p : dag.parents(e.task)) {
          const Time pf = finish_time[static_cast<std::size_t>(p)];
          if (pf < 0 || pf > e.time) {
            return err(e, "parent " + std::to_string(p) +
                              " not finished at dispatch");
          }
        }
        // Capacity at the dispatch instant: everything already running plus
        // this attempt must fit within capacity minus the loss window.
        ResourceVector used(capacity.dims());
        for (const auto& entry : open) used += entry.second.demand;
        used += dag.task(e.task).demand;
        if (faults) used += faults->capacity_loss_at(e.time);
        if (!used.fits_within(capacity)) {
          return err(e, "capacity exceeded at dispatch");
        }
        open[{e.task, e.attempt}] =
            Interval{e.time, -1, dag.task(e.task).demand};
        break;
      }
      case EventKind::kFinish: {
        const auto it = open.find({e.task, e.attempt});
        if (it == open.end()) return err(e, "finish without open attempt");
        if (finish_time[idx] >= 0) return err(e, "double finish");
        finish_time[idx] = e.time;
        open.erase(it);
        break;
      }
      case EventKind::kCancel: {
        const auto it = open.find({e.task, e.attempt});
        if (it == open.end()) return err(e, "cancel without open attempt");
        if (finish_time[idx] < 0) {
          return err(e, "cancel before the task's winning finish");
        }
        open.erase(it);
        break;
      }
      case EventKind::kAbsorb:
      case EventKind::kLocalRepair:
      case EventKind::kResearch:
        break;  // repair markers carry no resource state
    }
  }
  if (!open.empty()) {
    const auto& key = open.begin()->first;
    return "attempt " + std::to_string(key.second) + " of task " +
           std::to_string(key.first) + " never finished or was cancelled";
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (finish_time[i] < 0) {
      return "task " + std::to_string(i) + " never finished";
    }
  }
  return std::nullopt;
}

Time replay_makespan(const std::vector<ExecEvent>& events) {
  Time makespan = 0;
  for (const ExecEvent& e : events) {
    if (e.kind == EventKind::kFinish) makespan = std::max(makespan, e.time);
  }
  return makespan;
}

Schedule schedule_from_events(const std::vector<ExecEvent>& events) {
  Schedule schedule;
  std::map<std::pair<TaskId, int>, Time> starts;
  for (const ExecEvent& e : events) {
    switch (e.kind) {
      case EventKind::kStart:
      case EventKind::kSpeculate:
        starts[{e.task, e.attempt}] = e.time;
        break;
      case EventKind::kFinish: {
        const Time start = starts.at({e.task, e.attempt});
        schedule.add(e.task, start);
        schedule.add_attempt(e.task, e.attempt, start, e.time - start, true);
        break;
      }
      case EventKind::kCancel: {
        const Time start = starts.at({e.task, e.attempt});
        schedule.add_attempt(e.task, e.attempt, start, e.time - start, false);
        break;
      }
      default:
        break;
    }
  }
  return schedule;
}

}  // namespace spear::exec
