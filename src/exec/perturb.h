// Seeded runtime perturbation for online execution (DESIGN.md §14).
//
// The planner schedules against ESTIMATED task runtimes; the execution
// engine replays the plan against REALIZED runtimes drawn from this model:
//
//   realized = clamp(runtime * lognormal(sigma) * straggler_tail, >= 1)
//
//  * the lognormal multiplier (mu = -sigma^2/2, so its mean is exactly 1)
//    models the everyday estimate error of production runtime predictors;
//  * with probability straggler_rate the attempt additionally draws a
//    Pareto-tailed straggler multiplier >= straggler_factor — the
//    heavy-tailed mixture that makes p99 job completion time interesting;
//  * the total multiplier is capped at max_multiplier so a single draw
//    cannot blow up a simulation.
//
// Like FaultInjector, outcomes are a pure function of (seed, task id,
// attempt index): two hashed SplitMix64 passes decorrelate the draws, so a
// replay with the same seed reproduces the exact runtime trace no matter
// how many engines, repairs, or speculative duplicates observe it — the
// property every determinism test in tests/test_exec.cpp leans on.
// Speculative duplicate launches use the next attempt index and therefore
// get an independent draw, which is what makes speculation worthwhile.

#pragma once

#include <cstdint>

#include "dag/dag.h"

namespace spear::exec {

struct PerturbOptions {
  /// Log-stddev of the lognormal estimate-error multiplier; 0 disables it
  /// (multiplier exactly 1).  sigma = 0.6 gives roughly a [0.3x, 3x]
  /// central 95% range — the ">= 2x runtime noise" regime of the bench.
  double sigma = 0.35;
  /// Probability that an attempt is a straggler, in [0, 1].
  double straggler_rate = 0.05;
  /// Minimum slowdown of a straggler attempt (>= 1); the Pareto tail
  /// starts here.
  double straggler_factor = 4.0;
  /// Pareto shape of the straggler tail (> 0); smaller = heavier.  1.5
  /// keeps the mean finite while still producing the occasional 10x+.
  double tail_alpha = 1.5;
  /// Hard cap on the combined multiplier (>= 1).
  double max_multiplier = 20.0;
  std::uint64_t seed = 1;
};

/// Deterministic, stateless realized-runtime source (header comment).
class RuntimePerturber {
 public:
  /// Throws std::invalid_argument on out-of-range options.
  explicit RuntimePerturber(PerturbOptions options);

  const PerturbOptions& options() const { return options_; }

  /// Combined runtime multiplier for the (0-based) `attempt`-th execution
  /// of `task` — a pure function of (seed, task, attempt), in
  /// [something positive, max_multiplier].
  double multiplier(TaskId task, int attempt) const;

  /// ceil(task.runtime * multiplier), at least 1 slot.
  Time realized_duration(const Task& task, int attempt) const;

 private:
  PerturbOptions options_;
};

}  // namespace spear::exec
