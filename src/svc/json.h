// Minimal JSON parser for the service wire protocol (DESIGN.md §12).
//
// The repo's obs layer only *emits* JSON; the daemon must also *read* it —
// requests arrive as one JSON object per line.  This parser covers the full
// JSON grammar (objects, arrays, strings with escapes, numbers, booleans,
// null) with strict error reporting, because malformed client input is an
// expected, continuous event for a multi-tenant daemon: every parse error
// must map to a structured per-request rejection, never to UB or a crash.
//
// Limits: inputs are capped by the caller (AdmissionLimits::max_line_bytes)
// and nesting depth is bounded here, so hostile inputs cannot exhaust the
// stack.  \uXXXX escapes are decoded to UTF-8 (surrogate pairs included).

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace spear::svc {

/// Thrown on malformed JSON; `what()` includes the byte offset.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& message)
      : std::runtime_error(message) {}
};

/// An immutable parsed JSON value.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw JsonError on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;

  /// Object lookup: null-kind reference when the key is absent.
  const JsonValue& at(const std::string& key) const;
  bool has(const std::string& key) const;
  /// Object keys in source order (for strict-field validation).
  const std::vector<std::string>& keys() const;

  /// Convenience typed lookups with defaults for optional request fields;
  /// throw JsonError when the key exists with the wrong type.
  std::string get_string(const std::string& key,
                         const std::string& def = "") const;
  double get_number(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

 private:
  friend JsonValue json_parse(const std::string&);
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  // Insertion-ordered object storage: requests are tiny (a handful of
  // fields), so linear scans beat a map and preserve key order for errors.
  std::vector<std::pair<std::string, JsonValue>> object_;
  std::vector<std::string> object_keys_;
};

/// Parses exactly one JSON value (trailing whitespace allowed, anything else
/// is an error).  Throws JsonError on malformed input.
JsonValue json_parse(const std::string& text);

}  // namespace spear::svc
