// SchedulerService: the in-process heart of the scheduling daemon
// (DESIGN.md §12) — transport-free so frontends (stdio/socket) and the
// load bench drive the same code.
//
// Architecture (modeled on the GameServer / GameServerProxy split the
// ROADMAP cites): frontends parse the wire protocol and call submit();
// admission validates and either rejects structurally (invalid_dag /
// unschedulable / too_large), sheds (queue_full with retry-after), or
// enqueues.  N service workers — long-running tasks on the repo's shared
// ThreadPool — pop jobs and serve each within its remaining deadline via a
// degradation ladder:
//
//   rung 0 "search"     remaining >= full_search_floor_ms: anytime MCTS at
//                       the full iteration budget, wall-clock capped to the
//                       remaining deadline
//   rung 1 "reduced"    remaining < full_search_floor_ms: same search at
//                       the minimum iteration budget
//   rung 2 "heuristic"  remaining < heuristic_floor_ms: the CP x Tetris
//                       heuristic policy, no search at all
//   (expired)           remaining <= 0: structured deadline_expired
//                       rejection — the budget died in the queue
//
// Every rung below 0 counts as a degradation; the anytime search's own
// internal fallback (no iteration finished before the deadline) is counted
// on top (search_degradations).  Each worker owns ONE MctsScheduler and one
// guide clone for its whole life, so the guide's inference buffers and the
// network's ForwardWorkspace warm up once and are reused across requests;
// requests only retarget the budgets (set_anytime_budgets).
//
// Isolation: a request that throws anything produces an `internal` error
// response for THAT request; the worker, the queue, and other tenants'
// searches are untouched.  Worker state is per-worker and the MCTS
// transposition/rollout caches are cleared per schedule() call, so no state
// leaks between jobs.
//
// Shutdown: begin_drain() stops admission (submit => shutting_down);
// shutdown() additionally waits until the queue and all in-flight searches
// drain, then joins the workers.  The daemon drives this from the SIGTERM
// stop flag (common/supervisor.h).

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/spear.h"
#include "svc/admission.h"
#include "svc/protocol.h"

namespace spear::svc {

struct ServiceOptions {
  /// Cluster capacity every job is scheduled against.
  ResourceVector capacity{1.0, 1.0};
  /// Concurrent service workers (one search in flight per worker).
  int workers = 2;
  AdmissionLimits limits;
  /// Per-request deadline defaults/caps: a submit without budget_ms gets
  /// default_budget_ms; explicit budgets are clamped to max_budget_ms.
  std::int64_t default_budget_ms = 100;
  std::int64_t max_budget_ms = 10'000;
  /// Search iteration budgets (MctsOptions initial/min; Eq. 4).
  std::int64_t search_iterations = 400;
  std::int64_t min_iterations = 100;
  /// Degradation ladder thresholds (see header comment).
  std::int64_t full_search_floor_ms = 20;
  std::int64_t heuristic_floor_ms = 4;
  /// Parallel-search architecture inside each worker's scheduler.  Leaf
  /// mode is the default even single-threaded: the batched central
  /// evaluator and transposition cache win on their own (DESIGN.md §11).
  SearchMode search_mode = SearchMode::kLeaf;
  /// Search threads inside one worker's scheduler.  Default 1: the service
  /// scales across REQUESTS via `workers`; raise this only for few-tenant,
  /// large-DAG deployments.
  int search_threads = 1;
  /// Optional trained DRL guide (Spear).  Null = unguided MCTS.
  std::shared_ptr<const Policy> policy;
  std::uint64_t seed = 42;
};

/// Plain snapshot of the service counters (see counters_json for the wire
/// form).  All counts are since service construction.
struct ServiceCounters {
  std::int64_t submitted = 0;
  std::int64_t admitted = 0;
  std::int64_t placed = 0;
  std::int64_t rejected_bad_request = 0;
  std::int64_t rejected_invalid_dag = 0;
  std::int64_t rejected_unschedulable = 0;
  std::int64_t rejected_too_large = 0;
  std::int64_t rejected_queue_full = 0;
  std::int64_t rejected_deadline_expired = 0;
  std::int64_t rejected_shutting_down = 0;
  std::int64_t rejected_internal = 0;
  std::int64_t degraded_reduced = 0;
  std::int64_t degraded_heuristic = 0;
  /// Anytime-search internal fallbacks (stats.degradations) and deadline
  /// truncations (stats.deadline_cutoffs) summed over served requests.
  std::int64_t search_degradations = 0;
  std::int64_t search_deadline_cutoffs = 0;

  std::int64_t rejected_total() const {
    return rejected_bad_request + rejected_invalid_dag +
           rejected_unschedulable + rejected_too_large + rejected_queue_full +
           rejected_deadline_expired + rejected_shutting_down +
           rejected_internal;
  }
  /// Requests answered below rung 0 (any degradation ladder step).
  std::int64_t degraded_total() const {
    return degraded_reduced + degraded_heuristic;
  }
};

class SchedulerService {
 public:
  /// Delivers one request's outcome: exactly one of (ok, result) /
  /// (!ok, rejection) — invoked from a worker thread for served jobs, or
  /// synchronously from the submitting thread for admission rejections.
  using Responder =
      std::function<void(bool ok, const SubmitResult& result,
                         const Rejection& rejection)>;

  explicit SchedulerService(ServiceOptions options);
  /// Calls shutdown() if still running.
  ~SchedulerService();

  SchedulerService(const SchedulerService&) = delete;
  SchedulerService& operator=(const SchedulerService&) = delete;

  /// Spawns the worker loops.  Idempotent.
  void start();

  /// Admits or rejects `request`; the verdict (and later the result) is
  /// delivered through `respond`.  Thread-safe; never throws — every
  /// failure becomes a structured rejection.
  void submit(const SubmitRequest& request, Responder respond);

  /// Stops admission: every later submit is rejected shutting_down.
  /// Already-queued and in-flight jobs still complete (drain semantics).
  void begin_drain();
  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  /// begin_drain() + wait for queue and in-flight searches to finish +
  /// join the workers.  Idempotent.
  void shutdown();

  ServiceCounters counters() const;
  /// Counters as a JSON object (the `stats` response body, also embedded in
  /// the daemon's RunReport).
  std::string counters_json() const;
  /// Lets frontends count protocol-level rejections (bad_request on a parse
  /// failure, too_large on an oversized line) they answered themselves, so
  /// the stats stay one source of truth.
  void count_rejection(ErrorCode code);

  std::size_t queue_depth() const { return queue_.size(); }
  const ServiceOptions& options() const { return options_; }

 private:
  struct Worker;

  void worker_loop(Worker& worker);
  void serve(Worker& worker, Job& job);
  void respond_error(Job& job, const Rejection& rejection);
  /// Current smoothed per-job service time in ms (backpressure hint).
  double service_ms_estimate() const;
  void record_service_ms(double ms);

  ServiceOptions options_;
  AdmissionQueue queue_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::future<void>> worker_done_;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};

  /// EWMA of served-job wall time, for queue_full retry-after hints.
  mutable std::mutex estimate_mutex_;
  double service_ms_ewma_ = 0.0;

  /// Counter fields are individually atomic (relaxed): they are monotonic
  /// tallies, and snapshot() tolerates being a hair stale.
  struct AtomicCounters;
  std::unique_ptr<AtomicCounters> counters_;
};

}  // namespace spear::svc
