// SchedulerService: the in-process heart of the scheduling daemon
// (DESIGN.md §12–§13) — transport-free so frontends (stdio/socket) and the
// load bench drive the same code.
//
// Architecture (modeled on the GameServer / GameServerProxy split the
// ROADMAP cites): frontends parse the wire protocol and call submit();
// admission validates and either rejects structurally (invalid_dag /
// unschedulable / too_large), sheds (queue_full / quota_exceeded with
// retry-after), or enqueues into the multi-tenant fair queue
// (svc/admission.h).  N service workers — long-running tasks on the repo's
// shared ThreadPool — pop jobs in weighted-fair order and serve each within
// its remaining deadline via a degradation ladder:
//
//   rung 0 "search"     remaining >= full_search_floor_ms: anytime MCTS at
//                       the full iteration budget, wall-clock capped to the
//                       remaining deadline
//   rung 1 "reduced"    remaining < full_search_floor_ms: same search at
//                       the minimum iteration budget
//   rung 2 "heuristic"  remaining < heuristic_floor_ms: the CP x Tetris
//                       heuristic policy, no search at all
//   (expired)           remaining <= 0: structured deadline_expired
//                       rejection — the budget died in the queue
//
// Every rung below 0 counts as a degradation; the anytime search's own
// internal fallback (no iteration finished before the deadline) is counted
// on top (search_degradations).  Each worker owns ONE MctsScheduler and one
// guide clone for its whole life, so the guide's inference buffers and the
// network's ForwardWorkspace warm up once and are reused across requests;
// requests only retarget the budgets (set_anytime_budgets).
//
// Cancellation: cancel() withdraws a submit.  A queued job is removed and
// its responder answered `cancelled`; an in-flight job's token is set so
// the worker's search cuts off at the next anytime checkpoint and the
// worker answers `cancelled` (best-effort: a search past its last
// checkpoint still answers placed, and the cancel reports not_found once
// the outcome was delivered).
//
// Accounting: every submit ends in exactly one of {placed, rejected,
// cancelled} — the ledger records each (submitted, outcome) transition
// under one mutex, so the reconciliation invariant
//
//   submitted == placed + rejected_total + cancelled + in_flight
//
// holds EXACTLY in every counters() snapshot, not just at quiescence
// (in_flight counts admitted jobs still queued or being served).  Frontend-
// answered rejections (bad_request / too_large before parsing) flow through
// count_rejection(), which charges both sides of the invariant.
//
// Isolation: a request that throws anything produces an `internal` error
// response for THAT request; the worker, the queue, and other tenants'
// searches are untouched.  Worker state is per-worker and the MCTS
// transposition/rollout caches are cleared per schedule() call, so no state
// leaks between jobs.
//
// Shutdown: begin_drain() stops admission (submit => shutting_down);
// shutdown() additionally waits until the queue and all in-flight searches
// drain, then joins the workers.  The daemon drives this from the SIGTERM
// stop flag (common/supervisor.h).

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/spear.h"
#include "infer/service.h"
#include "svc/admission.h"
#include "svc/protocol.h"

namespace spear::svc {

/// How service workers run their policy-network forwards (DESIGN.md §15).
enum class InferMode {
  /// Each worker's guide deep-copies the Policy and forwards through its
  /// private workspace — bit-identical to the pre-§15 service.
  kPrivate,
  /// All workers share ONE immutable Policy and submit their forward rows
  /// to a process-wide InferenceService, which fuses rows from concurrent
  /// searches into wide batches (adaptive close at batch_max rows or the
  /// batching timeout).  Placements are bit-identical to kPrivate (the
  /// batch-row contract); only throughput/occupancy changes.
  kShared,
};

struct ServiceOptions {
  /// Cluster capacity every job is scheduled against.
  ResourceVector capacity{1.0, 1.0};
  /// Concurrent service workers (one search in flight per worker).
  int workers = 2;
  AdmissionLimits limits;
  /// Fair-queueing: limits applied to tenants without an override, named
  /// per-tenant overrides, and the high lane's dequeue share (see
  /// FairQueueOptions::high_lane_share).
  TenantLimits tenant_defaults;
  std::map<std::string, TenantLimits> tenant_overrides;
  double high_lane_share = 0.75;
  /// DRR cost accounting: kUnit = fair in requests (classic), kTasks =
  /// fair in tasks (job-size-aware; --tenant-cost-mode=tasks).
  CostMode tenant_cost_mode = CostMode::kUnit;
  /// Per-request deadline defaults/caps: a submit without budget_ms gets
  /// default_budget_ms; explicit budgets are clamped to max_budget_ms.
  std::int64_t default_budget_ms = 100;
  std::int64_t max_budget_ms = 10'000;
  /// Search iteration budgets (MctsOptions initial/min; Eq. 4).
  std::int64_t search_iterations = 400;
  std::int64_t min_iterations = 100;
  /// Degradation ladder thresholds (see header comment).
  std::int64_t full_search_floor_ms = 20;
  std::int64_t heuristic_floor_ms = 4;
  /// Parallel-search architecture inside each worker's scheduler.  Leaf
  /// mode is the default even single-threaded: the batched central
  /// evaluator and transposition cache win on their own (DESIGN.md §11).
  SearchMode search_mode = SearchMode::kLeaf;
  /// Search threads inside one worker's scheduler.  Default 1: the service
  /// scales across REQUESTS via `workers`; raise this only for few-tenant,
  /// large-DAG deployments.
  int search_threads = 1;
  /// Optional trained DRL guide (Spear).  Null = unguided MCTS.
  std::shared_ptr<const Policy> policy;
  /// Forward routing for the guide (ignored without a policy).
  InferMode infer_mode = InferMode::kPrivate;
  /// Batcher tuning for InferMode::kShared (batch_max, batch_timeout_us,
  /// queue_capacity, runners); ignored in kPrivate.
  infer::InferenceOptions infer;
  std::uint64_t seed = 42;
};

/// Per-tenant slice of the service counters.
struct TenantCounters {
  std::int64_t submitted = 0;  ///< submits charged to this tenant
  std::int64_t placed = 0;
  /// Load-shed submits (queue_full + quota_exceeded).
  std::int64_t shed = 0;
  std::int64_t cancelled = 0;
};

/// Plain snapshot of the service counters (see counters_json for the wire
/// form).  All counts are since service construction, taken under the
/// ledger mutex so the reconciliation invariant (header comment) is exact.
struct ServiceCounters {
  std::int64_t submitted = 0;
  std::int64_t admitted = 0;
  std::int64_t placed = 0;
  std::int64_t cancelled = 0;
  /// Admitted jobs not yet resolved (queued or being served).
  std::int64_t in_flight = 0;
  std::int64_t rejected_bad_request = 0;
  std::int64_t rejected_invalid_dag = 0;
  std::int64_t rejected_unschedulable = 0;
  std::int64_t rejected_too_large = 0;
  std::int64_t rejected_queue_full = 0;
  std::int64_t rejected_quota_exceeded = 0;
  std::int64_t rejected_deadline_expired = 0;
  std::int64_t rejected_shutting_down = 0;
  std::int64_t rejected_internal = 0;
  std::int64_t degraded_reduced = 0;
  std::int64_t degraded_heuristic = 0;
  /// Anytime-search internal fallbacks (stats.degradations) and deadline
  /// truncations (stats.deadline_cutoffs) summed over served requests.
  std::int64_t search_degradations = 0;
  std::int64_t search_deadline_cutoffs = 0;
  /// PHYSICAL network kernel invocations and rows summed over answered
  /// searches (batched evaluations and single-row guide calls alike), with
  /// the batch-occupancy histogram (forward_hist[w] = forwards that scored
  /// exactly w states) — the private-mode baseline the shared-inference
  /// win is measured against: same logical rows, fewer and wider physical
  /// forwards.  Zero in shared mode (the InferenceService stats hold the
  /// physical truth there).
  std::int64_t search_forwards = 0;
  std::int64_t search_forward_rows = 0;
  std::vector<std::int64_t> forward_hist;
  /// Cancel-request outcomes (not part of the submit invariant).
  std::int64_t cancel_queued = 0;
  std::int64_t cancel_in_flight = 0;
  std::int64_t cancel_not_found = 0;
  /// Per-tenant slices (submits only), keyed by resolved tenant name.
  std::map<std::string, TenantCounters> tenants;

  std::int64_t rejected_total() const {
    return rejected_bad_request + rejected_invalid_dag +
           rejected_unschedulable + rejected_too_large + rejected_queue_full +
           rejected_quota_exceeded + rejected_deadline_expired +
           rejected_shutting_down + rejected_internal;
  }
  /// Requests answered below rung 0 (any degradation ladder step).
  std::int64_t degraded_total() const {
    return degraded_reduced + degraded_heuristic;
  }
};

class SchedulerService {
 public:
  /// Delivers one request's outcome: exactly one of (ok, result) /
  /// (!ok, rejection) — invoked from a worker thread for served jobs, or
  /// synchronously from the submitting thread for admission rejections.
  using Responder =
      std::function<void(bool ok, const SubmitResult& result,
                         const Rejection& rejection)>;

  explicit SchedulerService(ServiceOptions options);
  /// Calls shutdown() if still running.
  ~SchedulerService();

  SchedulerService(const SchedulerService&) = delete;
  SchedulerService& operator=(const SchedulerService&) = delete;

  /// Spawns the worker loops.  Idempotent.
  void start();

  /// Admits or rejects `request`; the verdict (and later the result) is
  /// delivered through `respond`.  Thread-safe; never throws — every
  /// failure becomes a structured rejection.
  void submit(const SubmitRequest& request, Responder respond);

  /// Withdraws the submit with the same (tenant, id).  kQueued: the job was
  /// removed and its responder was answered `cancelled` before this
  /// returns.  kInFlight: the serving worker was signalled and will answer
  /// `cancelled` (best-effort).  kNotFound: no such submit is pending.
  /// Thread-safe.
  CancelState cancel(const std::string& tenant, const std::string& id);

  /// Stops admission: every later submit is rejected shutting_down.
  /// Already-queued and in-flight jobs still complete (drain semantics).
  void begin_drain();
  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  /// begin_drain() + wait for queue and in-flight searches to finish +
  /// join the workers.  Idempotent.
  void shutdown();

  ServiceCounters counters() const;
  /// Counters as a JSON object (the `stats` response body, also embedded in
  /// the daemon's RunReport).  Includes a per-tenant breakdown with live
  /// queue depths.
  std::string counters_json() const;
  /// Lets frontends count protocol-level rejections (bad_request on a parse
  /// failure, too_large on an oversized line) they answered themselves, so
  /// the stats stay one source of truth.  Charges both `submitted` and the
  /// rejection, keeping the reconciliation invariant exact.
  void count_rejection(ErrorCode code);

  std::size_t queue_depth() const { return queue_.size(); }
  const ServiceOptions& options() const { return options_; }
  /// The shared batcher (InferMode::kShared with a policy); null otherwise.
  /// Valid until shutdown(); benches read its stats() for occupancy.
  const infer::InferenceService* infer_service() const { return infer_.get(); }

 private:
  struct Worker;
  /// All invariant-bearing counters behind ONE mutex: every transition
  /// updates both sides (submitted + outcome, or outcome + in_flight)
  /// atomically, so no snapshot can observe a half-applied submit.
  struct Ledger;

  void worker_loop(Worker& worker);
  void serve(Worker& worker, Job& job);
  void respond_error(Job& job, const Rejection& rejection);
  /// Records a terminal worker-side rejection for `job` in the ledger and
  /// answers the responder.
  void reject_in_flight(Job& job, const Rejection& rejection);

  ServiceOptions options_;
  AdmissionQueue queue_;
  /// Process-wide shared batcher (InferMode::kShared); null in kPrivate.
  /// Shut down AFTER the workers drain — they submit rows to it.
  std::shared_ptr<infer::InferenceService> infer_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::future<void>> worker_done_;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};

  std::unique_ptr<Ledger> ledger_;
};

}  // namespace spear::svc
