// Transport frontends for the scheduling service (DESIGN.md §12): the
// JSON-lines protocol served over a pair of fds (the daemon's stdin/stdout)
// or a local AF_UNIX stream socket.
//
// Both transports share one connection loop, run_jsonl_connection():
// a poll()-based line reader (so the supervisor stop flag is observed even
// while idle — no blocking read wedges shutdown), per-line dispatch, and a
// mutex-guarded writer that submit responders invoke from service worker
// threads.  The writer is shared_ptr-owned by every in-flight responder, so
// a response racing a closing connection writes to a still-open fd and the
// fd closes only when the last response has been delivered.
//
// Robustness contract: a malformed line gets a bad_request response; a line
// exceeding the payload cap gets too_large (and the reader resyncs at the
// next newline); a dead peer ends that connection only.  Nothing a client
// sends terminates the daemon.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "svc/service.h"

namespace spear::svc {

/// Serialized whole-line writes to an fd; safe to call from any thread.
class LineWriter {
 public:
  /// When `own_fd`, the fd is closed when the writer is destroyed (used by
  /// socket connections; stdio writers never own their fds).
  explicit LineWriter(int fd, bool own_fd = false);
  ~LineWriter();

  LineWriter(const LineWriter&) = delete;
  LineWriter& operator=(const LineWriter&) = delete;

  /// Writes `line` plus a trailing newline, handling short writes.  Returns
  /// false once the peer is dead (EPIPE/...); later calls are no-ops.
  bool write_line(const std::string& line);
  bool alive() const;

 private:
  const int fd_;
  const bool own_fd_;
  mutable std::mutex mutex_;
  bool dead_ = false;
};

/// Incremental newline-delimited reader over an fd, polling so `stop` is
/// honored while idle.
class LineReader {
 public:
  enum class Status {
    kLine,      ///< `line` holds one complete request line
    kOverlong,  ///< a line exceeded `max_line_bytes`; reader resyncs at the
                ///< next newline — respond too_large and keep serving
    kEof,       ///< peer closed; no more lines
    kStopped,   ///< `stop()` returned true
    kError,     ///< unrecoverable read error
  };

  LineReader(int fd, std::size_t max_line_bytes);

  /// Blocks (in ~50 ms poll slices) until one of the statuses above.
  Status next(std::string& line, const std::function<bool()>& stop);

 private:
  const int fd_;
  const std::size_t max_line_bytes_;
  std::string buffer_;
  bool eof_ = false;
  bool discarding_ = false;  ///< inside an overlong line, seeking newline
};

/// Serves one JSON-lines connection against `service` until EOF, a dead
/// writer, or `stop()`.  Returns the number of request lines handled.
/// Submit responses are written asynchronously from service worker threads
/// through `out`; pass the reader and writer for the same connection.
std::int64_t run_jsonl_connection(int in_fd,
                                  std::shared_ptr<LineWriter> out,
                                  SchedulerService& service,
                                  const std::function<bool()>& stop);

/// AF_UNIX stream listener: accepts connections and serves each with
/// run_jsonl_connection on its own thread.
class SocketFrontend {
 public:
  SocketFrontend(std::string path, SchedulerService& service);
  ~SocketFrontend();

  SocketFrontend(const SocketFrontend&) = delete;
  SocketFrontend& operator=(const SocketFrontend&) = delete;

  /// Binds and listens on the socket path (replacing any stale socket
  /// file).  Throws std::runtime_error on failure.
  void start();

  /// Accept loop; returns once `stop()` is true and every connection
  /// thread has been joined.
  void serve(const std::function<bool()>& stop);

  const std::string& path() const { return path_; }

 private:
  const std::string path_;
  SchedulerService& service_;
  int listen_fd_ = -1;
  std::vector<std::thread> connections_;
};

}  // namespace spear::svc
