#include "svc/admission.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace spear::svc {

namespace {

TenantLimits sanitize(TenantLimits limits) {
  limits.weight = std::clamp(limits.weight, 0.01, 100.0);
  return limits;
}

}  // namespace

std::optional<Rejection> validate_job(const Dag& dag,
                                      const ResourceVector& capacity,
                                      const AdmissionLimits& limits) {
  if (dag.empty()) {
    return Rejection{ErrorCode::kInvalidDag, "DAG has no tasks", -1};
  }
  if (dag.num_tasks() > limits.max_tasks_per_job) {
    return Rejection{
        ErrorCode::kTooLarge,
        "job has " + std::to_string(dag.num_tasks()) +
            " tasks, cap is " + std::to_string(limits.max_tasks_per_job),
        -1};
  }
  if (dag.resource_dims() != capacity.dims()) {
    return Rejection{
        ErrorCode::kInvalidDag,
        "job has " + std::to_string(dag.resource_dims()) +
            " resource dims, cluster has " + std::to_string(capacity.dims()),
        -1};
  }
  // Schedulability: a task whose demand exceeds capacity in any dimension
  // can never be placed — no budget or degradation rung helps.  Reject at
  // the door instead of wedging a worker in a search that cannot finish.
  // (DagBuilder already guarantees demands are finite and non-negative.)
  for (const Task& task : dag.tasks()) {
    if (!task.demand.fits_within(capacity)) {
      const std::string name =
          task.name.empty() ? "t" + std::to_string(task.id) : task.name;
      return Rejection{
          ErrorCode::kUnschedulable,
          "task '" + name + "' demand " + task.demand.to_string() +
              " exceeds cluster capacity " + capacity.to_string(),
          -1};
    }
  }
  return std::nullopt;
}

AdmissionQueue::AdmissionQueue(FairQueueOptions options)
    : options_(std::move(options)) {
  options_.capacity = std::max<std::size_t>(options_.capacity, 1);
  options_.high_lane_share = std::clamp(options_.high_lane_share, 0.10, 0.95);
  options_.default_limits = sanitize(options_.default_limits);
  for (auto& [name, limits] : options_.per_tenant) limits = sanitize(limits);
  // share/(1-share) consecutive high pops per forced normal pop gives the
  // high lane `share` of the dequeue stream when both lanes are saturated.
  high_run_cap_ = static_cast<std::size_t>(std::max<long>(
      1, std::lround(options_.high_lane_share /
                     (1.0 - options_.high_lane_share))));
  // Satellite fix (cold-start retry hints): seed the EWMA so the first
  // shed response already carries a meaningful nonzero backoff.
  service_ms_ewma_ = std::max(options_.service_ms_seed, 1.0);
}

AdmissionQueue::AdmissionQueue(std::size_t capacity)
    : AdmissionQueue([capacity] {
        FairQueueOptions options;
        options.capacity = std::max<std::size_t>(capacity, 1);
        return options;
      }()) {}

const TenantLimits& AdmissionQueue::limits_for(
    const std::string& tenant) const {
  const auto it = options_.per_tenant.find(tenant);
  return it != options_.per_tenant.end() ? it->second
                                         : options_.default_limits;
}

std::int64_t AdmissionQueue::retry_hint_locked() const {
  // The queue drains one job per service interval, so a full queue (or
  // quota) frees a slot in roughly one smoothed service time.  The EWMA is
  // seeded >= 1 ms at construction, so the hint is never an instant-retry.
  return static_cast<std::int64_t>(
      std::ceil(std::clamp(service_ms_ewma_, 1.0, 60'000.0)));
}

std::optional<Rejection> AdmissionQueue::try_push(Job job) {
  if (job.tenant.empty()) job.tenant = kDefaultTenant;
  if (!job.cancelled) {
    job.cancelled = std::make_shared<std::atomic<bool>>(false);
  }
  // Stamp the DRR cost at admission so the dequeue path never dereferences
  // the DAG (it may be released by the time accounting replays).
  job.cost = options_.cost_mode == CostMode::kTasks && job.dag
                 ? std::max(1.0, static_cast<double>(job.dag->num_tasks()))
                 : 1.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) {
      return Rejection{ErrorCode::kShuttingDown,
                       "daemon is draining; resubmit elsewhere", -1};
    }
    // Per-tenant quota first: a tenant that exhausted its own share learns
    // that IT is the bottleneck even when the global queue is also full.
    const TenantLimits& limits = limits_for(job.tenant);
    const auto high_it = high_.tenants.find(job.tenant);
    const auto normal_it = normal_.tenants.find(job.tenant);
    const std::size_t queued =
        (high_it != high_.tenants.end() ? high_it->second.jobs.size() : 0) +
        (normal_it != normal_.tenants.end() ? normal_it->second.jobs.size()
                                            : 0);
    if (limits.max_queued > 0 && queued >= limits.max_queued) {
      ++shed_;
      return Rejection{ErrorCode::kQuotaExceeded,
                       "tenant '" + job.tenant + "' queue quota (" +
                           std::to_string(limits.max_queued) + ") exhausted",
                       retry_hint_locked()};
    }
    if (high_.total + normal_.total >= options_.capacity) {
      ++shed_;
      return Rejection{ErrorCode::kQueueFull,
                       "admission queue at capacity (" +
                           std::to_string(options_.capacity) + ")",
                       retry_hint_locked()};
    }
    Lane& lane = job.high_priority ? high_ : normal_;
    SubQueue& sub = lane.tenants[job.tenant];
    if (sub.jobs.empty()) lane.ring.push_back(job.tenant);
    sub.jobs.push_back(std::move(job));
    ++lane.total;
  }
  cv_.notify_all();
  return std::nullopt;
}

bool AdmissionQueue::lane_eligible(const Lane& lane) const {
  for (const std::string& name : lane.ring) {
    const auto it = lane.tenants.find(name);
    if (it == lane.tenants.end() || it->second.jobs.empty()) continue;
    const std::size_t cap = limits_for(name).max_in_flight;
    if (cap == 0) return true;
    const auto fl = in_flight_per_tenant_.find(name);
    if (fl == in_flight_per_tenant_.end() || fl->second < cap) return true;
  }
  return false;
}

Job AdmissionQueue::pop_from_lane(Lane& lane) {
  // Deficit round robin over the tenant ring, one job per call: the tenant
  // at the head earns one quantum (its weight) per arrival and serves while
  // its deficit covers its head job's COST (1.0 per job in unit mode, the
  // task count in kTasks mode — job-size-aware fairness); tenants at their
  // in-flight cap rotate without credit.  Weights are clamped >= 0.01, so
  // every full cycle adds at least 0.01 to some eligible tenant — the scan
  // bound below scales with the costliest head job so the accumulation
  // always reaches it.
  double max_cost = 1.0;
  for (const auto& [name, sub] : lane.tenants) {
    if (!sub.jobs.empty()) max_cost = std::max(max_cost, sub.jobs.front().cost);
  }
  std::size_t guard =
      lane.ring.size() * static_cast<std::size_t>(std::ceil(max_cost)) * 102 +
      2;
  while (guard-- > 0) {
    const std::string name = lane.ring.front();
    SubQueue& sub = lane.tenants[name];
    const TenantLimits& limits = limits_for(name);
    const auto fl = in_flight_per_tenant_.find(name);
    const bool at_cap =
        limits.max_in_flight > 0 && fl != in_flight_per_tenant_.end() &&
        fl->second >= limits.max_in_flight;
    if (at_cap) {
      lane.ring.pop_front();
      lane.ring.push_back(name);
      continue;
    }
    const double cost = sub.jobs.front().cost;
    if (sub.deficit < cost) sub.deficit += limits.weight;
    if (sub.deficit < cost) {
      // Banked credit carries to the next visit; move on.
      lane.ring.pop_front();
      lane.ring.push_back(name);
      continue;
    }
    Job job = std::move(sub.jobs.front());
    sub.jobs.pop_front();
    sub.deficit -= cost;
    --lane.total;
    if (sub.jobs.empty()) {
      // Idle tenants bank nothing (classic DRR): drop the entry so the
      // tenant map stays bounded by the set of BACKLOGGED tenants.
      lane.ring.pop_front();
      lane.tenants.erase(name);
    } else if (sub.deficit < sub.jobs.front().cost) {
      lane.ring.pop_front();
      lane.ring.push_back(name);
    }
    return job;
  }
  throw std::logic_error("AdmissionQueue: DRR scan failed to find a job");
}

bool AdmissionQueue::pop(Job& out) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] {
    return lane_eligible(high_) || lane_eligible(normal_) ||
           (closed_ && high_.total + normal_.total == 0);
  });
  const bool high_ok = lane_eligible(high_);
  const bool normal_ok = lane_eligible(normal_);
  if (!high_ok && !normal_ok) return false;  // closed and drained

  Lane* lane = nullptr;
  if (high_ok && (!normal_ok || high_run_ < high_run_cap_)) {
    lane = &high_;
    // The run counter only advances while normal work is actually waiting:
    // high traffic on an idle normal lane spends no credit.
    high_run_ = normal_ok ? high_run_ + 1 : 0;
  } else {
    lane = &normal_;
    high_run_ = 0;
  }
  out = pop_from_lane(*lane);
  in_flight_.push_back({out.tenant, out.id, out.cancelled});
  ++in_flight_per_tenant_[out.tenant];
  return true;
}

void AdmissionQueue::on_done(const Job& job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = in_flight_.begin(); it != in_flight_.end(); ++it) {
      if (it->token == job.cancelled) {
        in_flight_.erase(it);
        break;
      }
    }
    const auto fl = in_flight_per_tenant_.find(job.tenant);
    if (fl != in_flight_per_tenant_.end() && --fl->second == 0) {
      in_flight_per_tenant_.erase(fl);
    }
  }
  // A capped tenant may have become eligible, and drain waiters may now see
  // an empty queue.
  cv_.notify_all();
}

CancelState AdmissionQueue::cancel(const std::string& tenant,
                                   const std::string& id, Job& removed) {
  const std::string name = tenant.empty() ? kDefaultTenant : tenant;
  std::unique_lock<std::mutex> lock(mutex_);
  for (Lane* lane : {&high_, &normal_}) {
    const auto it = lane->tenants.find(name);
    if (it == lane->tenants.end()) continue;
    SubQueue& sub = it->second;
    for (auto job = sub.jobs.begin(); job != sub.jobs.end(); ++job) {
      if (job->id != id) continue;
      removed = std::move(*job);
      sub.jobs.erase(job);
      --lane->total;
      if (sub.jobs.empty()) {
        lane->ring.erase(
            std::find(lane->ring.begin(), lane->ring.end(), name));
        lane->tenants.erase(it);
      }
      lock.unlock();
      // Drain waiters must re-check "closed and empty".
      cv_.notify_all();
      return CancelState::kQueued;
    }
  }
  for (const InFlight& entry : in_flight_) {
    if (entry.tenant == name && entry.id == id) {
      entry.token->store(true, std::memory_order_relaxed);
      return CancelState::kInFlight;
    }
  }
  return CancelState::kNotFound;
}

void AdmissionQueue::record_service_ms(double ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  service_ms_ewma_ = 0.8 * service_ms_ewma_ + 0.2 * std::max(ms, 0.0);
}

double AdmissionQueue::service_ms_estimate() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::max(service_ms_ewma_, 1.0);
}

void AdmissionQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool AdmissionQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t AdmissionQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return high_.total + normal_.total;
}

std::size_t AdmissionQueue::tenant_depth(const std::string& tenant) const {
  const std::string name = tenant.empty() ? kDefaultTenant : tenant;
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t depth = 0;
  for (const Lane* lane : {&high_, &normal_}) {
    const auto it = lane->tenants.find(name);
    if (it != lane->tenants.end()) depth += it->second.jobs.size();
  }
  return depth;
}

std::map<std::string, std::size_t> AdmissionQueue::depths() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::size_t> out;
  for (const Lane* lane : {&high_, &normal_}) {
    for (const auto& [name, sub] : lane->tenants) {
      out[name] += sub.jobs.size();
    }
  }
  return out;
}

std::int64_t AdmissionQueue::shed_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shed_;
}

}  // namespace spear::svc
