#include "svc/admission.h"

#include <algorithm>
#include <cmath>

namespace spear::svc {

std::optional<Rejection> validate_job(const Dag& dag,
                                      const ResourceVector& capacity,
                                      const AdmissionLimits& limits) {
  if (dag.empty()) {
    return Rejection{ErrorCode::kInvalidDag, "DAG has no tasks", -1};
  }
  if (dag.num_tasks() > limits.max_tasks_per_job) {
    return Rejection{
        ErrorCode::kTooLarge,
        "job has " + std::to_string(dag.num_tasks()) +
            " tasks, cap is " + std::to_string(limits.max_tasks_per_job),
        -1};
  }
  if (dag.resource_dims() != capacity.dims()) {
    return Rejection{
        ErrorCode::kInvalidDag,
        "job has " + std::to_string(dag.resource_dims()) +
            " resource dims, cluster has " + std::to_string(capacity.dims()),
        -1};
  }
  // Schedulability: a task whose demand exceeds capacity in any dimension
  // can never be placed — no budget or degradation rung helps.  Reject at
  // the door instead of wedging a worker in a search that cannot finish.
  // (DagBuilder already guarantees demands are finite and non-negative.)
  for (const Task& task : dag.tasks()) {
    if (!task.demand.fits_within(capacity)) {
      const std::string name =
          task.name.empty() ? "t" + std::to_string(task.id) : task.name;
      return Rejection{
          ErrorCode::kUnschedulable,
          "task '" + name + "' demand " + task.demand.to_string() +
              " exceeds cluster capacity " + capacity.to_string(),
          -1};
    }
  }
  return std::nullopt;
}

AdmissionQueue::AdmissionQueue(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

std::optional<Rejection> AdmissionQueue::try_push(Job job,
                                                  double service_ms_hint) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) {
      return Rejection{ErrorCode::kShuttingDown,
                       "daemon is draining; resubmit elsewhere", -1};
    }
    if (queue_.size() >= capacity_) {
      ++shed_;
      // Backpressure hint: the queue drains one job per service interval,
      // so a full queue frees a slot in roughly one service time.  Clamp to
      // a sane range so a cold (or wildly noisy) estimate stays usable.
      const double hint = std::clamp(service_ms_hint, 1.0, 60'000.0);
      return Rejection{ErrorCode::kQueueFull,
                       "admission queue at capacity (" +
                           std::to_string(capacity_) + ")",
                       static_cast<std::int64_t>(std::ceil(hint))};
    }
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
  return std::nullopt;
}

bool AdmissionQueue::pop(Job& out) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return false;  // closed and drained
  out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

void AdmissionQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool AdmissionQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t AdmissionQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::int64_t AdmissionQueue::shed_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shed_;
}

}  // namespace spear::svc
