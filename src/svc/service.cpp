#include "svc/service.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "dag/io.h"
#include "fault/runner.h"
#include "obs/obs.h"

namespace spear::svc {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

struct SchedulerService::AtomicCounters {
  std::atomic<std::int64_t> submitted{0};
  std::atomic<std::int64_t> admitted{0};
  std::atomic<std::int64_t> placed{0};
  std::atomic<std::int64_t> rejected_bad_request{0};
  std::atomic<std::int64_t> rejected_invalid_dag{0};
  std::atomic<std::int64_t> rejected_unschedulable{0};
  std::atomic<std::int64_t> rejected_too_large{0};
  std::atomic<std::int64_t> rejected_queue_full{0};
  std::atomic<std::int64_t> rejected_deadline_expired{0};
  std::atomic<std::int64_t> rejected_shutting_down{0};
  std::atomic<std::int64_t> rejected_internal{0};
  std::atomic<std::int64_t> degraded_reduced{0};
  std::atomic<std::int64_t> degraded_heuristic{0};
  std::atomic<std::int64_t> search_degradations{0};
  std::atomic<std::int64_t> search_deadline_cutoffs{0};

  std::atomic<std::int64_t>& for_code(ErrorCode code) {
    switch (code) {
      case ErrorCode::kBadRequest: return rejected_bad_request;
      case ErrorCode::kInvalidDag: return rejected_invalid_dag;
      case ErrorCode::kUnschedulable: return rejected_unschedulable;
      case ErrorCode::kTooLarge: return rejected_too_large;
      case ErrorCode::kQueueFull: return rejected_queue_full;
      case ErrorCode::kDeadlineExpired: return rejected_deadline_expired;
      case ErrorCode::kShuttingDown: return rejected_shutting_down;
      case ErrorCode::kInternal: return rejected_internal;
    }
    return rejected_internal;
  }
};

struct SchedulerService::Worker {
  int index = 0;
  std::unique_ptr<MctsScheduler> scheduler;
  /// Rung 2: the CP x Tetris policy run greedily, no search.  Per-worker so
  /// concurrent heuristic serves never share state.
  HeuristicDecisionPolicy heuristic;
};

SchedulerService::SchedulerService(ServiceOptions options)
    : options_(std::move(options)),
      queue_(options_.limits.queue_capacity),
      counters_(std::make_unique<AtomicCounters>()) {
  options_.workers = std::max(options_.workers, 1);
  options_.default_budget_ms = std::max<std::int64_t>(
      std::min(options_.default_budget_ms, options_.max_budget_ms), 1);
  options_.search_iterations = std::max<std::int64_t>(
      options_.search_iterations, 1);
  options_.min_iterations = std::clamp<std::int64_t>(
      options_.min_iterations, 1, options_.search_iterations);
}

SchedulerService::~SchedulerService() { shutdown(); }

void SchedulerService::start() {
  if (started_.exchange(true)) return;

  // One guide prototype, cloned per worker: clone() gives each worker a
  // private copy of the Policy (the network keeps a mutable inference
  // workspace, so sharing one across worker threads would race), and the
  // per-worker copy then lives for the service lifetime — its buffers warm
  // up once and are reused by every request that worker serves.
  std::shared_ptr<DecisionPolicy> prototype;
  if (options_.policy) {
    prototype =
        std::make_shared<DrlDecisionPolicy>(options_.policy, /*greedy=*/true);
  }

  pool_ = std::make_unique<ThreadPool>(
      static_cast<std::size_t>(options_.workers));
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->index = i;

    MctsOptions mcts;
    mcts.initial_budget = options_.search_iterations;
    mcts.min_budget = options_.min_iterations;
    // Independent deterministic stream per worker; which worker serves a
    // request is scheduling-dependent, but each individual search is
    // reproducible from (seed, worker).
    mcts.seed = options_.seed + 0x9e3779b97f4a7c15ull * (i + 1);
    mcts.name = options_.policy ? "Spear" : "MCTS";
    mcts.num_threads = options_.search_threads;
    mcts.search_mode = options_.search_mode;
    worker->scheduler = std::make_unique<MctsScheduler>(
        mcts, prototype ? prototype->clone() : nullptr);
    workers_.push_back(std::move(worker));
  }
  worker_done_.reserve(workers_.size());
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    worker_done_.push_back(pool_->submit([this, w] { worker_loop(*w); }));
  }
}

void SchedulerService::submit(const SubmitRequest& request,
                              Responder respond) {
  counters_->submitted.fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled()) obs::count("svc.submitted");

  const auto reject = [&](const Rejection& rejection) {
    count_rejection(rejection.code);
    try {
      respond(false, SubmitResult{}, rejection);
    } catch (...) {
      // A responder that throws (dead client fd) must not take down the
      // submitting frontend thread.
    }
  };

  if (draining()) {
    reject(Rejection{ErrorCode::kShuttingDown,
                     "daemon is draining; not accepting new jobs", -1});
    return;
  }
  if (request.dag_text.size() > options_.limits.max_line_bytes) {
    reject(Rejection{
        ErrorCode::kTooLarge,
        "dag payload is " + std::to_string(request.dag_text.size()) +
            " bytes, cap is " +
            std::to_string(options_.limits.max_line_bytes),
        -1});
    return;
  }

  std::shared_ptr<const Dag> dag;
  try {
    dag = std::make_shared<const Dag>(dag_from_text(request.dag_text));
  } catch (const std::exception& e) {
    reject(Rejection{ErrorCode::kInvalidDag,
                     std::string("dag rejected: ") + e.what(), -1});
    return;
  }
  if (auto verdict = validate_job(*dag, options_.capacity, options_.limits)) {
    reject(*verdict);
    return;
  }

  std::int64_t budget_ms = request.budget_ms > 0 ? request.budget_ms
                                                 : options_.default_budget_ms;
  budget_ms = std::min(budget_ms, options_.max_budget_ms);

  Job job;
  job.id = request.id;
  job.dag = std::move(dag);
  job.arrival = Clock::now();
  job.deadline = job.arrival + std::chrono::milliseconds(budget_ms);
  job.budget_ms = budget_ms;
  job.iterations = request.iterations;
  // try_push consumes the job even when shedding, so keep the responder
  // reachable for the rejection path.
  Responder on_reject = respond;
  job.respond = std::move(respond);

  if (auto verdict = queue_.try_push(std::move(job), service_ms_estimate())) {
    count_rejection(verdict->code);
    if (obs::enabled() && verdict->code == ErrorCode::kQueueFull) {
      obs::count("svc.shed");
    }
    try {
      on_reject(false, SubmitResult{}, *verdict);
    } catch (...) {
    }
    return;
  }
  counters_->admitted.fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled()) {
    obs::count("svc.admitted");
    obs::gauge("svc.queue_depth", static_cast<double>(queue_.size()));
  }
}

void SchedulerService::begin_drain() {
  draining_.store(true, std::memory_order_relaxed);
  queue_.close();
}

void SchedulerService::shutdown() {
  begin_drain();
  if (stopped_.exchange(true)) return;
  for (auto& done : worker_done_) {
    // Worker loops catch per-request failures themselves; get() would only
    // rethrow a catastrophic loop failure, which we surface.
    if (done.valid()) done.get();
  }
  worker_done_.clear();
  pool_.reset();
}

void SchedulerService::worker_loop(Worker& worker) {
  Job job;
  while (queue_.pop(job)) {
    serve(worker, job);
    job = Job{};  // release the DAG and responder promptly
  }
}

void SchedulerService::serve(Worker& worker, Job& job) {
  const auto start = Clock::now();
  const double queue_ms = ms_between(job.arrival, start);
  if (obs::enabled()) obs::observe("svc.queue_ms", queue_ms);

  const std::int64_t remaining_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(job.deadline -
                                                            start)
          .count();
  if (remaining_ms <= 0) {
    counters_->rejected_deadline_expired.fetch_add(1,
                                                   std::memory_order_relaxed);
    if (obs::enabled()) obs::count("svc.deadline_expired");
    respond_error(job,
                  Rejection{ErrorCode::kDeadlineExpired,
                            "budget of " + std::to_string(job.budget_ms) +
                                " ms elapsed while queued",
                            -1});
    return;
  }

  try {
    SubmitResult result;
    result.queue_ms = queue_ms;
    Schedule schedule;

    if (remaining_ms < options_.heuristic_floor_ms) {
      // Rung 2: not enough budget for even a minimum search — answer with
      // the deterministic heuristic policy (run greedily through the env,
      // no faults), which costs microseconds.
      result.mode = ServeMode::kHeuristic;
      result.degraded = true;
      counters_->degraded_heuristic.fetch_add(1, std::memory_order_relaxed);
      if (obs::enabled()) obs::count("svc.degraded_heuristic");
      FaultRunResult run = run_policy_under_faults(
          worker.heuristic, *job.dag, options_.capacity,
          /*faults=*/nullptr, RetryOptions{}, options_.seed);
      schedule = std::move(run.schedule);
    } else {
      std::int64_t iterations =
          job.iterations > 0
              ? std::min(job.iterations, options_.search_iterations)
              : options_.search_iterations;
      if (remaining_ms < options_.full_search_floor_ms) {
        // Rung 1: the deadline is nearly spent — search, but only at the
        // minimum iteration budget.
        result.mode = ServeMode::kReduced;
        result.degraded = true;
        counters_->degraded_reduced.fetch_add(1, std::memory_order_relaxed);
        if (obs::enabled()) obs::count("svc.degraded_reduced");
        iterations = std::min(iterations, options_.min_iterations);
        worker.scheduler->set_anytime_budgets(iterations, iterations,
                                              remaining_ms);
      } else {
        // Rung 0: full search, wall-clock capped to the remaining deadline.
        worker.scheduler->set_anytime_budgets(
            iterations, std::min(options_.min_iterations, iterations),
            remaining_ms);
      }
      schedule = worker.scheduler->schedule(*job.dag, options_.capacity);
      const MctsScheduler::Stats& stats = worker.scheduler->last_stats();
      counters_->search_deadline_cutoffs.fetch_add(
          stats.deadline_cutoffs, std::memory_order_relaxed);
      if (stats.degradations > 0) {
        // The anytime search itself fell back (not one iteration finished
        // before the deadline on some decision) — degraded even on rung 0.
        counters_->search_degradations.fetch_add(stats.degradations,
                                                 std::memory_order_relaxed);
        if (obs::enabled()) {
          obs::count("svc.search_degradations", stats.degradations);
        }
        result.degraded = true;
      }
    }

    const auto end = Clock::now();
    result.search_ms = ms_between(start, end);
    result.makespan = schedule.makespan(*job.dag);
    result.placements = placement_names(schedule, *job.dag);
    counters_->placed.fetch_add(1, std::memory_order_relaxed);
    record_service_ms(result.search_ms);
    if (obs::enabled()) {
      obs::count("svc.placed");
      obs::observe("svc.search_ms", result.search_ms);
    }
    if (job.respond) job.respond(true, result, Rejection{});
  } catch (const std::exception& e) {
    // Request isolation: whatever this job did, only this job fails.
    counters_->rejected_internal.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) obs::count("svc.internal_errors");
    respond_error(job, Rejection{ErrorCode::kInternal,
                                 std::string("request failed: ") + e.what(),
                                 -1});
  } catch (...) {
    counters_->rejected_internal.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) obs::count("svc.internal_errors");
    respond_error(job, Rejection{ErrorCode::kInternal,
                                 "request failed: unknown error", -1});
  }
}

void SchedulerService::respond_error(Job& job, const Rejection& rejection) {
  if (!job.respond) return;
  try {
    job.respond(false, SubmitResult{}, rejection);
  } catch (...) {
    // Dead client; nothing further to do for this request.
  }
}

double SchedulerService::service_ms_estimate() const {
  std::lock_guard<std::mutex> lock(estimate_mutex_);
  // Cold start: assume a job costs its full default budget — pessimistic,
  // so early retry-after hints back clients off rather than inviting a
  // thundering herd.
  return service_ms_ewma_ > 0.0
             ? service_ms_ewma_
             : static_cast<double>(options_.default_budget_ms);
}

void SchedulerService::record_service_ms(double ms) {
  std::lock_guard<std::mutex> lock(estimate_mutex_);
  service_ms_ewma_ =
      service_ms_ewma_ > 0.0 ? 0.8 * service_ms_ewma_ + 0.2 * ms : ms;
}

void SchedulerService::count_rejection(ErrorCode code) {
  counters_->for_code(code).fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled()) {
    obs::count(std::string("svc.rejected.") + error_code_name(code));
  }
}

ServiceCounters SchedulerService::counters() const {
  const AtomicCounters& a = *counters_;
  ServiceCounters c;
  c.submitted = a.submitted.load(std::memory_order_relaxed);
  c.admitted = a.admitted.load(std::memory_order_relaxed);
  c.placed = a.placed.load(std::memory_order_relaxed);
  c.rejected_bad_request =
      a.rejected_bad_request.load(std::memory_order_relaxed);
  c.rejected_invalid_dag =
      a.rejected_invalid_dag.load(std::memory_order_relaxed);
  c.rejected_unschedulable =
      a.rejected_unschedulable.load(std::memory_order_relaxed);
  c.rejected_too_large = a.rejected_too_large.load(std::memory_order_relaxed);
  c.rejected_queue_full =
      a.rejected_queue_full.load(std::memory_order_relaxed);
  c.rejected_deadline_expired =
      a.rejected_deadline_expired.load(std::memory_order_relaxed);
  c.rejected_shutting_down =
      a.rejected_shutting_down.load(std::memory_order_relaxed);
  c.rejected_internal = a.rejected_internal.load(std::memory_order_relaxed);
  c.degraded_reduced = a.degraded_reduced.load(std::memory_order_relaxed);
  c.degraded_heuristic =
      a.degraded_heuristic.load(std::memory_order_relaxed);
  c.search_degradations =
      a.search_degradations.load(std::memory_order_relaxed);
  c.search_deadline_cutoffs =
      a.search_deadline_cutoffs.load(std::memory_order_relaxed);
  return c;
}

std::string SchedulerService::counters_json() const {
  const ServiceCounters c = counters();
  std::ostringstream os;
  os << "{\"submitted\":" << c.submitted << ",\"admitted\":" << c.admitted
     << ",\"placed\":" << c.placed
     << ",\"rejected\":{\"bad_request\":" << c.rejected_bad_request
     << ",\"invalid_dag\":" << c.rejected_invalid_dag
     << ",\"unschedulable\":" << c.rejected_unschedulable
     << ",\"too_large\":" << c.rejected_too_large
     << ",\"queue_full\":" << c.rejected_queue_full
     << ",\"deadline_expired\":" << c.rejected_deadline_expired
     << ",\"shutting_down\":" << c.rejected_shutting_down
     << ",\"internal\":" << c.rejected_internal
     << ",\"total\":" << c.rejected_total() << "}"
     << ",\"degraded\":{\"reduced\":" << c.degraded_reduced
     << ",\"heuristic\":" << c.degraded_heuristic
     << ",\"search_fallbacks\":" << c.search_degradations
     << ",\"deadline_cutoffs\":" << c.search_deadline_cutoffs
     << ",\"total\":" << c.degraded_total() << "}"
     << ",\"queue_depth\":" << queue_.size()
     << ",\"queue_capacity\":" << queue_.capacity()
     << ",\"draining\":" << (draining() ? "true" : "false") << "}";
  return os.str();
}

}  // namespace spear::svc
