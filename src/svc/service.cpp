#include "svc/service.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <sstream>
#include <utility>

#include "dag/io.h"
#include "fault/runner.h"
#include "obs/obs.h"

namespace spear::svc {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

ServiceOptions normalize(ServiceOptions options) {
  options.workers = std::max(options.workers, 1);
  options.default_budget_ms = std::max<std::int64_t>(
      std::min(options.default_budget_ms, options.max_budget_ms), 1);
  options.search_iterations =
      std::max<std::int64_t>(options.search_iterations, 1);
  options.min_iterations = std::clamp<std::int64_t>(
      options.min_iterations, 1, options.search_iterations);
  return options;
}

/// Builds the fair-queue configuration from normalized service options.
/// The retry-hint EWMA is seeded from the default budget: pessimistic, so
/// even the FIRST shed response backs clients off instead of inviting a
/// thundering herd (satellite fix: the pre-§13 queue started the hint
/// estimate at zero state and special-cased it at read time).
FairQueueOptions fair_options(const ServiceOptions& options) {
  FairQueueOptions fair;
  fair.capacity = options.limits.queue_capacity;
  fair.high_lane_share = options.high_lane_share;
  fair.service_ms_seed = static_cast<double>(options.default_budget_ms);
  fair.default_limits = options.tenant_defaults;
  fair.per_tenant = options.tenant_overrides;
  fair.cost_mode = options.tenant_cost_mode;
  return fair;
}

/// Tenant names become map keys, metric names, and JSON keys — keep them
/// short and boring.  (The wire default "" was resolved before this.)
bool valid_tenant_name(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name) {
    const auto u = static_cast<unsigned char>(c);
    if (!std::isalnum(u) && c != '_' && c != '-' && c != '.' && c != ':') {
      return false;
    }
  }
  return true;
}

bool is_shed(ErrorCode code) {
  return code == ErrorCode::kQueueFull || code == ErrorCode::kQuotaExceeded;
}

}  // namespace

// All counters live behind one mutex and every state transition updates
// both sides of the reconciliation invariant
//   submitted == placed + rejected_total + cancelled + in_flight
// in a single critical section, so snapshot() can never observe a submit
// whose outcome is half-recorded (the torn-read bug the relaxed-atomics
// predecessor had: `submitted` was bumped at submit() entry, the outcome
// only later, so stats taken in between broke reconciliation).
struct SchedulerService::Ledger {
  mutable std::mutex mutex;
  ServiceCounters c;

  std::int64_t& slot(ErrorCode code) {
    switch (code) {
      case ErrorCode::kBadRequest: return c.rejected_bad_request;
      case ErrorCode::kInvalidDag: return c.rejected_invalid_dag;
      case ErrorCode::kUnschedulable: return c.rejected_unschedulable;
      case ErrorCode::kTooLarge: return c.rejected_too_large;
      case ErrorCode::kQueueFull: return c.rejected_queue_full;
      case ErrorCode::kQuotaExceeded: return c.rejected_quota_exceeded;
      case ErrorCode::kDeadlineExpired: return c.rejected_deadline_expired;
      case ErrorCode::kShuttingDown: return c.rejected_shutting_down;
      case ErrorCode::kCancelled:
      case ErrorCode::kNotFound:
      case ErrorCode::kInternal: return c.rejected_internal;
    }
    return c.rejected_internal;
  }

  /// A submit rejected before admission.  Empty tenant = unattributable
  /// (frontend parse failures): charged globally, no per-tenant slice.
  void submit_rejected(const std::string& tenant, ErrorCode code) {
    std::lock_guard<std::mutex> lock(mutex);
    ++c.submitted;
    ++slot(code);
    if (!tenant.empty()) {
      TenantCounters& t = c.tenants[tenant];
      ++t.submitted;
      if (is_shed(code)) ++t.shed;
    }
  }

  /// A submit about to enter the queue.  Recorded BEFORE try_push so a
  /// fast worker's resolve cannot outrun the submit record.
  void submit_admitted(const std::string& tenant) {
    std::lock_guard<std::mutex> lock(mutex);
    ++c.submitted;
    ++c.admitted;
    ++c.in_flight;
    ++c.tenants[tenant].submitted;
  }

  /// try_push shed the job after all: convert the admit to a rejection
  /// (`submitted` stays — it was a submit).
  void admitted_to_rejected(const std::string& tenant, ErrorCode code) {
    std::lock_guard<std::mutex> lock(mutex);
    --c.admitted;
    --c.in_flight;
    ++slot(code);
    if (is_shed(code)) ++c.tenants[tenant].shed;
  }

  void resolve_placed(const std::string& tenant) {
    std::lock_guard<std::mutex> lock(mutex);
    ++c.placed;
    --c.in_flight;
    ++c.tenants[tenant].placed;
  }

  void resolve_rejected(ErrorCode code) {
    std::lock_guard<std::mutex> lock(mutex);
    ++slot(code);
    --c.in_flight;
  }

  void resolve_cancelled(const std::string& tenant) {
    std::lock_guard<std::mutex> lock(mutex);
    ++c.cancelled;
    --c.in_flight;
    ++c.tenants[tenant].cancelled;
  }

  void cancel_outcome(CancelState state) {
    std::lock_guard<std::mutex> lock(mutex);
    switch (state) {
      case CancelState::kQueued: ++c.cancel_queued; break;
      case CancelState::kInFlight: ++c.cancel_in_flight; break;
      case CancelState::kNotFound: ++c.cancel_not_found; break;
    }
  }

  void count_degraded(ServeMode mode) {
    std::lock_guard<std::mutex> lock(mutex);
    if (mode == ServeMode::kReduced) ++c.degraded_reduced;
    if (mode == ServeMode::kHeuristic) ++c.degraded_heuristic;
  }

  void count_search_stats(const MctsScheduler::Stats& stats) {
    std::lock_guard<std::mutex> lock(mutex);
    c.search_degradations += stats.degradations;
    c.search_deadline_cutoffs += stats.deadline_cutoffs;
    // Physical kernel invocations (batched AND single-row guide calls) —
    // zero in shared-inference mode, where the InferenceService's own
    // stats hold the physical truth.
    c.search_forwards += stats.guide_forwards;
    c.search_forward_rows += stats.guide_forward_rows;
    if (c.forward_hist.size() < stats.batch_rows_hist.size()) {
      c.forward_hist.resize(stats.batch_rows_hist.size(), 0);
    }
    for (std::size_t w = 0; w < stats.batch_rows_hist.size(); ++w) {
      c.forward_hist[w] += stats.batch_rows_hist[w];
    }
  }

  ServiceCounters snapshot() const {
    std::lock_guard<std::mutex> lock(mutex);
    return c;
  }
};

struct SchedulerService::Worker {
  int index = 0;
  std::unique_ptr<MctsScheduler> scheduler;
  /// Rung 2: the CP x Tetris policy run greedily, no search.  Per-worker so
  /// concurrent heuristic serves never share state.
  HeuristicDecisionPolicy heuristic;
};

SchedulerService::SchedulerService(ServiceOptions options)
    : options_(normalize(std::move(options))),
      queue_(fair_options(options_)),
      ledger_(std::make_unique<Ledger>()) {}

SchedulerService::~SchedulerService() { shutdown(); }

void SchedulerService::start() {
  if (started_.exchange(true)) return;

  // One guide prototype, cloned per worker.  kPrivate: clone() gives each
  // worker a private copy of the Policy (the network keeps a mutable
  // inference workspace, so sharing one across worker threads would race),
  // and the per-worker copy then lives for the service lifetime — its
  // buffers warm up once and are reused by every request that worker
  // serves.  kShared: ONE process-wide InferenceService owns the forward
  // workspaces, every worker's clone aliases the same immutable Policy and
  // submits rows to the batcher, which fuses rows from concurrent searches
  // (DESIGN.md §15).
  std::shared_ptr<DecisionPolicy> prototype;
  if (options_.policy) {
    if (options_.infer_mode == InferMode::kShared) {
      infer::InferenceOptions infer_options = options_.infer;
      if (infer_options.max_clients == 0) {
        // The workers are the only clients, and each blocks on its ticket:
        // once all of them are in a batch, stop waiting for more rows.
        infer_options.max_clients = static_cast<std::size_t>(options_.workers);
      }
      infer_ = std::make_shared<infer::InferenceService>(options_.policy,
                                                         infer_options);
    }
    prototype = std::make_shared<DrlDecisionPolicy>(options_.policy,
                                                    /*greedy=*/true, infer_);
  }

  pool_ = std::make_unique<ThreadPool>(
      static_cast<std::size_t>(options_.workers));
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->index = i;

    MctsOptions mcts;
    mcts.initial_budget = options_.search_iterations;
    mcts.min_budget = options_.min_iterations;
    // Independent deterministic stream per worker; which worker serves a
    // request is scheduling-dependent, but each individual search is
    // reproducible from (seed, worker).
    mcts.seed = options_.seed + 0x9e3779b97f4a7c15ull * (i + 1);
    mcts.name = options_.policy ? "Spear" : "MCTS";
    mcts.num_threads = options_.search_threads;
    mcts.search_mode = options_.search_mode;
    worker->scheduler = std::make_unique<MctsScheduler>(
        mcts, prototype ? prototype->clone() : nullptr);
    workers_.push_back(std::move(worker));
  }
  worker_done_.reserve(workers_.size());
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    worker_done_.push_back(pool_->submit([this, w] { worker_loop(*w); }));
  }
}

void SchedulerService::submit(const SubmitRequest& request,
                              Responder respond) {
  if (obs::enabled()) obs::count("svc.submitted");
  const std::string tenant =
      request.tenant.empty() ? kDefaultTenant : request.tenant;

  const auto reject = [&](const std::string& charged_tenant,
                          const Rejection& rejection) {
    ledger_->submit_rejected(charged_tenant, rejection.code);
    if (obs::enabled()) {
      obs::count(std::string("svc.rejected.") +
                 error_code_name(rejection.code));
    }
    try {
      respond(false, SubmitResult{}, rejection);
    } catch (...) {
      // A responder that throws (dead client fd) must not take down the
      // submitting frontend thread.
    }
  };

  if (!valid_tenant_name(tenant)) {
    // Charged globally: a garbage name must not mint a ledger slice.
    reject("", Rejection{ErrorCode::kBadRequest,
                         "invalid tenant name (1-64 chars of [A-Za-z0-9_.:-])",
                         -1});
    return;
  }
  if (draining()) {
    reject(tenant, Rejection{ErrorCode::kShuttingDown,
                             "daemon is draining; not accepting new jobs", -1});
    return;
  }
  if (request.dag_text.size() > options_.limits.max_line_bytes) {
    reject(tenant,
           Rejection{
               ErrorCode::kTooLarge,
               "dag payload is " + std::to_string(request.dag_text.size()) +
                   " bytes, cap is " +
                   std::to_string(options_.limits.max_line_bytes),
               -1});
    return;
  }

  std::shared_ptr<const Dag> dag;
  try {
    dag = std::make_shared<const Dag>(dag_from_text(request.dag_text));
  } catch (const std::exception& e) {
    reject(tenant, Rejection{ErrorCode::kInvalidDag,
                             std::string("dag rejected: ") + e.what(), -1});
    return;
  }
  if (auto verdict = validate_job(*dag, options_.capacity, options_.limits)) {
    reject(tenant, *verdict);
    return;
  }

  std::int64_t budget_ms = request.budget_ms > 0 ? request.budget_ms
                                                 : options_.default_budget_ms;
  budget_ms = std::min(budget_ms, options_.max_budget_ms);

  Job job;
  job.id = request.id;
  job.tenant = tenant;
  job.high_priority = request.high_priority;
  job.dag = std::move(dag);
  job.arrival = Clock::now();
  job.deadline = job.arrival + std::chrono::milliseconds(budget_ms);
  job.budget_ms = budget_ms;
  job.iterations = request.iterations;
  job.cancelled = std::make_shared<std::atomic<bool>>(false);
  // try_push consumes the job even when shedding, so keep the responder
  // reachable for the rejection path.
  Responder on_reject = respond;
  job.respond = std::move(respond);

  // Record the admit BEFORE the push: the instant the job is in the queue a
  // worker may pop, serve, and resolve it, and the resolve must never find
  // the submit unrecorded.  A shed converts the record below.
  ledger_->submit_admitted(tenant);
  if (auto verdict = queue_.try_push(std::move(job))) {
    ledger_->admitted_to_rejected(tenant, verdict->code);
    if (obs::enabled()) {
      obs::count(std::string("svc.rejected.") +
                 error_code_name(verdict->code));
      if (is_shed(verdict->code)) {
        obs::count("svc.shed");
        obs::count("svc.tenant." + tenant + ".shed");
      }
    }
    try {
      on_reject(false, SubmitResult{}, *verdict);
    } catch (...) {
    }
    return;
  }
  if (obs::enabled()) {
    obs::count("svc.admitted");
    obs::count("svc.tenant." + tenant + ".submitted");
    obs::gauge("svc.queue_depth", static_cast<double>(queue_.size()));
    obs::gauge("svc.tenant." + tenant + ".queue_depth",
               static_cast<double>(queue_.tenant_depth(tenant)));
  }
}

CancelState SchedulerService::cancel(const std::string& tenant,
                                     const std::string& id) {
  const std::string name = tenant.empty() ? kDefaultTenant : tenant;
  Job removed;
  const CancelState state = queue_.cancel(name, id, removed);
  ledger_->cancel_outcome(state);
  if (state == CancelState::kQueued) {
    // The job never reached a worker: resolve its submit here, exactly
    // once, from the cancelling thread.
    ledger_->resolve_cancelled(name);
    if (obs::enabled()) {
      obs::count("svc.cancelled");
      obs::gauge("svc.tenant." + name + ".queue_depth",
                 static_cast<double>(queue_.tenant_depth(name)));
    }
    if (removed.respond) {
      try {
        removed.respond(false, SubmitResult{},
                        Rejection{ErrorCode::kCancelled,
                                  "request cancelled while queued", -1});
      } catch (...) {
      }
    }
  }
  // kInFlight: the token is set; the serving worker resolves the submit
  // (cancelled at the next search checkpoint, or placed if the search beat
  // the signal — best-effort).  kNotFound: nothing to resolve.
  return state;
}

void SchedulerService::begin_drain() {
  draining_.store(true, std::memory_order_relaxed);
  queue_.close();
}

void SchedulerService::shutdown() {
  begin_drain();
  if (stopped_.exchange(true)) return;
  for (auto& done : worker_done_) {
    // Worker loops catch per-request failures themselves; get() would only
    // rethrow a catastrophic loop failure, which we surface.
    if (done.valid()) done.get();
  }
  worker_done_.clear();
  pool_.reset();
  // After the workers: they were the only submitters, so the batcher ring
  // is quiet and drains instantly.
  if (infer_) infer_->shutdown();
}

void SchedulerService::worker_loop(Worker& worker) {
  Job job;
  while (queue_.pop(job)) {
    serve(worker, job);
    // Release the in-flight slot only after the outcome was delivered, so
    // a cancel can never hit the registry gap between serve and on_done.
    queue_.on_done(job);
    job = Job{};  // release the DAG and responder promptly
  }
}

void SchedulerService::serve(Worker& worker, Job& job) {
  const auto start = Clock::now();
  const double queue_ms = ms_between(job.arrival, start);
  if (obs::enabled()) obs::observe("svc.queue_ms", queue_ms);

  const auto cancelled = [&] {
    return job.cancelled &&
           job.cancelled->load(std::memory_order_relaxed);
  };
  const auto respond_cancelled = [&] {
    ledger_->resolve_cancelled(job.tenant);
    if (obs::enabled()) obs::count("svc.cancelled");
    respond_error(job, Rejection{ErrorCode::kCancelled, "request cancelled",
                                 -1});
  };
  if (cancelled()) {
    // Cancel landed between pop and serve.
    respond_cancelled();
    return;
  }

  const std::int64_t remaining_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(job.deadline -
                                                            start)
          .count();
  if (remaining_ms <= 0) {
    if (obs::enabled()) obs::count("svc.deadline_expired");
    reject_in_flight(job,
                     Rejection{ErrorCode::kDeadlineExpired,
                               "budget of " + std::to_string(job.budget_ms) +
                                   " ms elapsed while queued",
                               -1});
    return;
  }

  try {
    SubmitResult result;
    result.queue_ms = queue_ms;
    Schedule schedule;

    if (remaining_ms < options_.heuristic_floor_ms) {
      // Rung 2: not enough budget for even a minimum search — answer with
      // the deterministic heuristic policy (run greedily through the env,
      // no faults), which costs microseconds.
      result.mode = ServeMode::kHeuristic;
      result.degraded = true;
      ledger_->count_degraded(ServeMode::kHeuristic);
      if (obs::enabled()) obs::count("svc.degraded_heuristic");
      FaultRunResult run = run_policy_under_faults(
          worker.heuristic, *job.dag, options_.capacity,
          /*faults=*/nullptr, RetryOptions{}, options_.seed);
      schedule = std::move(run.schedule);
    } else {
      std::int64_t iterations =
          job.iterations > 0
              ? std::min(job.iterations, options_.search_iterations)
              : options_.search_iterations;
      if (remaining_ms < options_.full_search_floor_ms) {
        // Rung 1: the deadline is nearly spent — search, but only at the
        // minimum iteration budget.
        result.mode = ServeMode::kReduced;
        result.degraded = true;
        ledger_->count_degraded(ServeMode::kReduced);
        if (obs::enabled()) obs::count("svc.degraded_reduced");
        iterations = std::min(iterations, options_.min_iterations);
        worker.scheduler->set_anytime_budgets(iterations, iterations,
                                              remaining_ms);
      } else {
        // Rung 0: full search, wall-clock capped to the remaining deadline.
        worker.scheduler->set_anytime_budgets(
            iterations, std::min(options_.min_iterations, iterations),
            remaining_ms);
      }
      // Attach the cancel token for the search's whole lifetime: a cancel
      // arriving mid-search trips the next anytime checkpoint and the
      // search finishes cheaply with its fallback heuristic.
      worker.scheduler->set_cancel_token(job.cancelled.get());
      schedule = worker.scheduler->schedule(*job.dag, options_.capacity);
      worker.scheduler->set_cancel_token(nullptr);
      const MctsScheduler::Stats& stats = worker.scheduler->last_stats();
      if (!cancelled()) {
        // A cancelled search's degradations are an artifact of the cutoff,
        // not of load — only count stats for answered searches.
        ledger_->count_search_stats(stats);
        if (stats.degradations > 0) {
          // The anytime search itself fell back (not one iteration finished
          // before the deadline on some decision) — degraded even on rung 0.
          if (obs::enabled()) {
            obs::count("svc.search_degradations", stats.degradations);
          }
          result.degraded = true;
        }
      }
    }

    if (cancelled()) {
      // The submit is answered `cancelled`, never a placement the client
      // already disowned.
      respond_cancelled();
      return;
    }

    const auto end = Clock::now();
    result.search_ms = ms_between(start, end);
    result.makespan = schedule.makespan(*job.dag);
    result.placements = placement_names(schedule, *job.dag);
    ledger_->resolve_placed(job.tenant);
    queue_.record_service_ms(result.search_ms);
    if (obs::enabled()) {
      obs::count("svc.placed");
      obs::count("svc.tenant." + job.tenant + ".placed");
      obs::observe("svc.search_ms", result.search_ms);
    }
    if (job.respond) job.respond(true, result, Rejection{});
  } catch (const std::exception& e) {
    // Request isolation: whatever this job did, only this job fails.
    worker.scheduler->set_cancel_token(nullptr);
    if (obs::enabled()) obs::count("svc.internal_errors");
    reject_in_flight(job, Rejection{ErrorCode::kInternal,
                                    std::string("request failed: ") + e.what(),
                                    -1});
  } catch (...) {
    worker.scheduler->set_cancel_token(nullptr);
    if (obs::enabled()) obs::count("svc.internal_errors");
    reject_in_flight(job, Rejection{ErrorCode::kInternal,
                                    "request failed: unknown error", -1});
  }
}

void SchedulerService::reject_in_flight(Job& job, const Rejection& rejection) {
  ledger_->resolve_rejected(rejection.code);
  respond_error(job, rejection);
}

void SchedulerService::respond_error(Job& job, const Rejection& rejection) {
  if (!job.respond) return;
  try {
    job.respond(false, SubmitResult{}, rejection);
  } catch (...) {
    // Dead client; nothing further to do for this request.
  }
}

void SchedulerService::count_rejection(ErrorCode code) {
  ledger_->submit_rejected("", code);
  if (obs::enabled()) {
    obs::count(std::string("svc.rejected.") + error_code_name(code));
  }
}

ServiceCounters SchedulerService::counters() const {
  return ledger_->snapshot();
}

std::string SchedulerService::counters_json() const {
  const ServiceCounters c = counters();
  // Live queued depth per tenant; merged into the slices below so tenants
  // with queued-but-unresolved work still show up.
  const std::map<std::string, std::size_t> depths = queue_.depths();
  std::ostringstream os;
  os << "{\"submitted\":" << c.submitted << ",\"admitted\":" << c.admitted
     << ",\"placed\":" << c.placed << ",\"cancelled\":" << c.cancelled
     << ",\"in_flight\":" << c.in_flight
     << ",\"rejected\":{\"bad_request\":" << c.rejected_bad_request
     << ",\"invalid_dag\":" << c.rejected_invalid_dag
     << ",\"unschedulable\":" << c.rejected_unschedulable
     << ",\"too_large\":" << c.rejected_too_large
     << ",\"queue_full\":" << c.rejected_queue_full
     << ",\"quota_exceeded\":" << c.rejected_quota_exceeded
     << ",\"deadline_expired\":" << c.rejected_deadline_expired
     << ",\"shutting_down\":" << c.rejected_shutting_down
     << ",\"internal\":" << c.rejected_internal
     << ",\"total\":" << c.rejected_total() << "}"
     << ",\"degraded\":{\"reduced\":" << c.degraded_reduced
     << ",\"heuristic\":" << c.degraded_heuristic
     << ",\"search_fallbacks\":" << c.search_degradations
     << ",\"deadline_cutoffs\":" << c.search_deadline_cutoffs
     << ",\"total\":" << c.degraded_total() << "}"
     << ",\"cancel\":{\"queued\":" << c.cancel_queued
     << ",\"in_flight\":" << c.cancel_in_flight
     << ",\"not_found\":" << c.cancel_not_found << "}";
  // Inference telemetry: per-search fused-forward totals plus (in shared
  // mode) the process-wide batcher's own view — occupancy is the fraction
  // of batch_max a mean forward fills.
  os << ",\"infer\":{\"mode\":\""
     << (infer_ ? "shared" : "private")
     << "\",\"search_forwards\":" << c.search_forwards
     << ",\"search_forward_rows\":" << c.search_forward_rows
     << ",\"batch_rows_mean\":"
     << (c.search_forwards > 0
             ? static_cast<double>(c.search_forward_rows) /
                   static_cast<double>(c.search_forwards)
             : 0.0)
     << ",\"batch_rows_p50\":" << infer::hist_percentile(c.forward_hist, 50.0)
     << ",\"batch_rows_p99\":" << infer::hist_percentile(c.forward_hist, 99.0);
  if (infer_) {
    const infer::InferenceStats s = infer_->stats();
    os << ",\"service\":{\"forwards\":" << s.forwards << ",\"rows\":" << s.rows
       << ",\"requests\":" << s.requests
       << ",\"batch_rows_mean\":" << s.mean_batch_rows()
       << ",\"batch_rows_p50\":" << infer::hist_percentile(s.batch_rows_hist, 50.0)
       << ",\"batch_rows_p99\":" << infer::hist_percentile(s.batch_rows_hist, 99.0)
       << ",\"occupancy_mean\":"
       << (s.mean_batch_rows() /
           static_cast<double>(infer_->options().batch_max))
       << ",\"queue_wait_us_mean\":" << s.mean_queue_wait_us()
       << ",\"full_closes\":" << s.full_closes
       << ",\"timeout_closes\":" << s.timeout_closes
       << ",\"client_closes\":" << s.client_closes
       << ",\"drain_closes\":" << s.drain_closes << "}";
  }
  os << "}"
     << ",\"tenants\":{";
  bool first = true;
  const auto tenant_entry = [&](const std::string& name,
                                const TenantCounters& t,
                                std::size_t queued) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":{\"submitted\":" << t.submitted
       << ",\"placed\":" << t.placed << ",\"shed\":" << t.shed
       << ",\"cancelled\":" << t.cancelled << ",\"queued\":" << queued
       << "}";
  };
  for (const auto& [name, t] : c.tenants) {
    const auto depth = depths.find(name);
    tenant_entry(name, t, depth != depths.end() ? depth->second : 0);
  }
  for (const auto& [name, queued] : depths) {
    if (c.tenants.count(name) == 0) tenant_entry(name, TenantCounters{}, queued);
  }
  os << "}"
     << ",\"queue_depth\":" << queue_.size()
     << ",\"queue_capacity\":" << queue_.capacity()
     << ",\"draining\":" << (draining() ? "true" : "false") << "}";
  return os.str();
}

}  // namespace spear::svc
