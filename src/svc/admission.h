// Admission control and backpressure for the scheduling service
// (DESIGN.md §12).
//
// Two gates stand between a client line and a search worker:
//
//  1. validate_job(): structural admission.  Payload/task-count caps bound
//     per-request memory, and a schedulability check rejects any job with a
//     task demand exceeding cluster capacity — such a task can NEVER be
//     placed, so entering a search would burn a worker until the deadline
//     only to fail.  Rejections are structured (too_large / unschedulable),
//     never exceptions.
//
//  2. AdmissionQueue: a bounded FIFO between frontends and workers.  When
//     full, try_push sheds the request immediately (queue_full) with a
//     retry-after hint derived from the observed service rate — overload
//     costs a client one round trip and the daemon ZERO memory growth.
//     Shutdown closes the queue: producers get shed (shutting_down upstream)
//     while consumers drain the remaining jobs before pop() returns false.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "dag/dag.h"
#include "svc/protocol.h"

namespace spear::svc {

/// Caps applied before a request may enter the queue.
struct AdmissionLimits {
  std::size_t queue_capacity = 64;      ///< max queued (admitted) requests
  std::size_t max_tasks_per_job = 512;  ///< DAG size cap
  std::size_t max_line_bytes = 1 << 20; ///< wire payload cap per request
};

/// Structural + schedulability validation of a parsed DAG against the
/// cluster.  Returns std::nullopt when admissible, otherwise the structured
/// rejection to send (too_large / unschedulable / invalid_dag for a
/// capacity-dimension mismatch).
std::optional<Rejection> validate_job(const Dag& dag,
                                      const ResourceVector& capacity,
                                      const AdmissionLimits& limits);

/// One admitted unit of work, carrying everything a worker needs to answer
/// the client without touching shared state.
struct Job {
  std::string id;
  std::shared_ptr<const Dag> dag;
  std::chrono::steady_clock::time_point arrival{};
  std::chrono::steady_clock::time_point deadline{};
  std::int64_t budget_ms = 0;      ///< resolved (server-clamped) budget
  std::int64_t iterations = 0;     ///< 0 = server default
  /// Delivers the serialized outcome; invoked exactly once, from a worker
  /// thread (or the submitting thread for admission rejections upstream).
  std::function<void(bool ok, const SubmitResult&, const Rejection&)> respond;
};

/// Bounded MPMC FIFO with load shedding.  All methods are thread-safe.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::size_t capacity);

  /// Admits `job` unless the queue is full or closed.  Returns std::nullopt
  /// on success; a queue_full Rejection (with a retry_after_ms estimate
  /// from `service_ms_hint`, the caller's recent per-job service time) when
  /// shedding; a shutting_down Rejection when closed.
  std::optional<Rejection> try_push(Job job, double service_ms_hint);

  /// Blocks until a job is available (true) or the queue is closed AND
  /// empty (false) — so closing drains: queued jobs are still handed out.
  bool pop(Job& out);

  /// Stops admission; pending jobs remain poppable (drain semantics).
  void close();

  bool closed() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  /// Total requests shed with queue_full since construction.
  std::int64_t shed_count() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  bool closed_ = false;
  std::int64_t shed_ = 0;
};

}  // namespace spear::svc
