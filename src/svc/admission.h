// Admission control and multi-tenant fair queueing for the scheduling
// service (DESIGN.md §12–§13).
//
// Two gates stand between a client line and a search worker:
//
//  1. validate_job(): structural admission.  Payload/task-count caps bound
//     per-request memory, and a schedulability check rejects any job with a
//     task demand exceeding cluster capacity — such a task can NEVER be
//     placed, so entering a search would burn a worker until the deadline
//     only to fail.  Rejections are structured (too_large / unschedulable),
//     never exceptions.
//
//  2. AdmissionQueue: a bounded multi-tenant fair queue between frontends
//     and workers.  Every tenant owns a bounded sub-queue per priority
//     lane; admission charges the submitting tenant (quota_exceeded when
//     its quota is spent, queue_full when the GLOBAL bound is hit), and
//     workers dequeue by deficit-round-robin weighted fair queueing so a
//     chatty tenant cannot starve the others.  The high-priority lane is
//     served first but capped (high_lane_share) so saturating it cannot
//     starve the normal lane.  Shedding replies carry a retry-after hint
//     from an EWMA of observed service time, seeded from the configured
//     default budget so even the FIRST shed response backs clients off
//     (a zero hint is an invitation to a retry stampede).
//
//     Cancellation: cancel() removes a queued (tenant, id) — the Job is
//     handed back so the caller can answer its responder — or flips the
//     cancel token of an in-flight one for best-effort early search
//     cutoff.  Shutdown closes the queue: producers get shed
//     (shutting_down upstream) while consumers drain the remaining jobs,
//     still in fair order, before pop() returns false.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "dag/dag.h"
#include "svc/protocol.h"

namespace spear::svc {

/// Caps applied before a request may enter the queue.
struct AdmissionLimits {
  std::size_t queue_capacity = 64;      ///< max queued (admitted) requests
  std::size_t max_tasks_per_job = 512;  ///< DAG size cap
  std::size_t max_line_bytes = 1 << 20; ///< wire payload cap per request
};

/// Structural + schedulability validation of a parsed DAG against the
/// cluster.  Returns std::nullopt when admissible, otherwise the structured
/// rejection to send (too_large / unschedulable / invalid_dag for a
/// capacity-dimension mismatch).
std::optional<Rejection> validate_job(const Dag& dag,
                                      const ResourceVector& capacity,
                                      const AdmissionLimits& limits);

/// One admitted unit of work, carrying everything a worker needs to answer
/// the client without touching shared state.
struct Job {
  std::string id;
  std::string tenant;         ///< resolved fair-queueing account (never "")
  bool high_priority = false; ///< admission lane
  std::shared_ptr<const Dag> dag;
  std::chrono::steady_clock::time_point arrival{};
  std::chrono::steady_clock::time_point deadline{};
  std::int64_t budget_ms = 0;      ///< resolved (server-clamped) budget
  std::int64_t iterations = 0;     ///< 0 = server default
  /// Best-effort cancel token, created at admission so a cancel can reach
  /// the job whether it is queued or already in a worker's search.
  std::shared_ptr<std::atomic<bool>> cancelled;
  /// Delivers the serialized outcome; invoked exactly once, from a worker
  /// thread (or the submitting thread for admission rejections upstream).
  std::function<void(bool ok, const SubmitResult&, const Rejection&)> respond;
  /// DRR cost of serving this job, in quanta (>= 1).  Stamped at admission
  /// from FairQueueOptions::cost_mode; 1.0 = the classic per-request DRR.
  double cost = 1.0;
};

/// Per-tenant fair-queueing configuration.
struct TenantLimits {
  /// Max requests this tenant may hold queued (both lanes combined);
  /// 0 = no per-tenant bound (the GLOBAL capacity is the only gate).
  std::size_t max_queued = 0;
  /// Max requests this tenant may have in workers concurrently; 0 = no cap.
  std::size_t max_in_flight = 0;
  /// Deficit-round-robin weight: service share relative to other
  /// backlogged tenants.  Clamped to [0.01, 100].
  double weight = 1.0;
};

/// What one dequeue "costs" a tenant in the DRR accounting.
enum class CostMode {
  /// Every request costs one quantum — fair in REQUESTS per tenant.  A
  /// tenant submitting huge DAGs gets the same request rate as one
  /// submitting tiny DAGs, and therefore far more worker time.
  kUnit,
  /// A request costs its task count in quanta — fair in TASKS (a proxy for
  /// search work, which scales with DAG size).  Tenants with equal weights
  /// then receive dequeues inversely proportional to their job sizes.
  kTasks,
};

/// AdmissionQueue construction options.
struct FairQueueOptions {
  std::size_t capacity = 64;  ///< global queued bound across all tenants
  /// Largest fraction of consecutive dequeues the high lane may take while
  /// the normal lane has eligible work; clamped to [0.10, 0.95].  High
  /// traffic beyond the share waits behind one normal dequeue per cycle.
  double high_lane_share = 0.75;
  /// EWMA cold-start seed for retry_after_ms hints, in milliseconds.  Seed
  /// this from the default request budget: before any job completes the
  /// EWMA would otherwise be zero and the first shed response would tell
  /// the client to retry IMMEDIATELY.
  double service_ms_seed = 100.0;
  TenantLimits default_limits;                   ///< applies to any tenant
  std::map<std::string, TenantLimits> per_tenant;  ///< named overrides
  /// Job-size-aware DRR costs; kUnit (default) is bit-identical to the
  /// pre-cost-mode accounting.
  CostMode cost_mode = CostMode::kUnit;
};

/// Outcome of AdmissionQueue::cancel.
enum class CancelState {
  kQueued,    ///< removed from the queue; the Job is returned
  kInFlight,  ///< token set; the serving worker answers `cancelled`
  kNotFound,  ///< neither queued nor in flight
};

/// Bounded MPMC multi-tenant weighted-fair queue.  All methods are
/// thread-safe.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(FairQueueOptions options);
  /// Single-tenant convenience (tests): global capacity only, defaults
  /// everywhere else.
  explicit AdmissionQueue(std::size_t capacity);

  /// Admits `job` unless its tenant's quota (quota_exceeded), the global
  /// capacity (queue_full), or shutdown (shutting_down) forbids it.
  /// Returns std::nullopt on success.  Shedding rejections carry a
  /// retry_after_ms hint from the service-time EWMA — nonzero even before
  /// the first completion (see FairQueueOptions::service_ms_seed).
  std::optional<Rejection> try_push(Job job);

  /// Blocks until an eligible job is available (true) or the queue is
  /// closed AND empty (false) — so closing drains: queued jobs are still
  /// handed out, still in fair order.  A tenant at its in-flight cap is
  /// skipped until on_done() releases a slot.  The popped job is recorded
  /// as in flight (for cancel() and the per-tenant cap) until on_done().
  bool pop(Job& out);

  /// Releases `job`'s in-flight slot after its outcome was delivered.
  /// Every successful pop() must be paired with exactly one on_done().
  void on_done(const Job& job);

  /// Cancels the queued or in-flight request (tenant, id).  When kQueued,
  /// `removed` receives the Job (its responder has NOT been invoked).
  /// First match wins if a client reused an id.
  CancelState cancel(const std::string& tenant, const std::string& id,
                     Job& removed);

  /// Folds a served job's wall time into the retry-hint EWMA.
  void record_service_ms(double ms);
  /// Current smoothed per-job service time in ms (>= 1 by construction).
  double service_ms_estimate() const;

  /// Stops admission; pending jobs remain poppable (drain semantics).
  void close();

  bool closed() const;
  std::size_t size() const;
  std::size_t capacity() const { return options_.capacity; }
  /// Queued requests for one tenant (both lanes), for gauges.
  std::size_t tenant_depth(const std::string& tenant) const;
  /// Queued depth per tenant with at least one request ever queued.
  std::map<std::string, std::size_t> depths() const;

  /// Total requests shed since construction (queue_full + quota_exceeded).
  std::int64_t shed_count() const;

 private:
  struct SubQueue {
    std::deque<Job> jobs;
    double deficit = 0.0;  ///< DRR credit, in whole jobs
  };
  struct Lane {
    /// Tenant sub-queues; std::map so the round-robin order is stable and
    /// deterministic (insertion timing cannot reorder service).
    std::map<std::string, SubQueue> tenants;
    /// Round-robin ring of tenants with queued work, served front-first.
    std::deque<std::string> ring;
    std::size_t total = 0;  ///< queued jobs in this lane
  };
  struct InFlight {
    std::string tenant;
    std::string id;
    std::shared_ptr<std::atomic<bool>> token;
  };

  const TenantLimits& limits_for(const std::string& tenant) const;
  /// True when `lane` holds a job whose tenant is below its in-flight cap.
  bool lane_eligible(const Lane& lane) const;
  /// Pops the next DRR-fair job from `lane`; requires lane_eligible(lane).
  Job pop_from_lane(Lane& lane);
  std::int64_t retry_hint_locked() const;

  FairQueueOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  Lane high_;
  Lane normal_;
  /// Consecutive high-lane pops taken while normal work was waiting.
  std::size_t high_run_ = 0;
  /// high_run_ bound derived from high_lane_share (>= 1).
  std::size_t high_run_cap_ = 3;
  /// In-flight registry: cancel() targets and per-tenant concurrency caps.
  std::vector<InFlight> in_flight_;
  std::map<std::string, std::size_t> in_flight_per_tenant_;
  bool closed_ = false;
  std::int64_t shed_ = 0;
  double service_ms_ewma_ = 0.0;  ///< seeded in the constructor
};

}  // namespace spear::svc
