#include "svc/protocol.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/json.h"
#include "svc/json.h"

namespace spear::svc {

namespace {

using obs::json_escape;

/// Millisecond fields carry 1 us resolution on the wire — full double
/// precision is noise there and bloats every response line.
std::string wire_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

/// Reads an optional non-negative integral field (budget_ms, iterations).
std::int64_t integral_field(const JsonValue& object, const char* name) {
  const double raw = object.get_number(name, 0.0);
  if (!(raw >= 0) || raw != std::floor(raw) || raw > 9e15) {
    throw JsonError(std::string("field '") + name +
                    "' must be a non-negative integer");
  }
  return static_cast<std::int64_t>(raw);
}

}  // namespace

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kInvalidDag: return "invalid_dag";
    case ErrorCode::kUnschedulable: return "unschedulable";
    case ErrorCode::kTooLarge: return "too_large";
    case ErrorCode::kQueueFull: return "queue_full";
    case ErrorCode::kQuotaExceeded: return "quota_exceeded";
    case ErrorCode::kDeadlineExpired: return "deadline_expired";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kShuttingDown: return "shutting_down";
    case ErrorCode::kInternal: return "internal";
  }
  return "internal";
}

const char* serve_mode_name(ServeMode mode) {
  switch (mode) {
    case ServeMode::kSearch: return "search";
    case ServeMode::kReduced: return "reduced";
    case ServeMode::kHeuristic: return "heuristic";
  }
  return "search";
}

Request parse_request(const std::string& line) {
  const JsonValue root = json_parse(line);
  if (!root.is_object()) throw JsonError("request must be a JSON object");

  Request request;
  request.id = root.get_string("id");
  const std::string method = root.get_string("method");
  if (method.empty()) throw JsonError("missing 'method'");

  if (method == "ping") {
    request.method = Request::Method::kPing;
  } else if (method == "stats") {
    request.method = Request::Method::kStats;
  } else if (method == "submit") {
    request.method = Request::Method::kSubmit;
    request.submit.id = request.id;
    const JsonValue& dag = root.at("dag");
    if (!dag.is_string() || dag.as_string().empty()) {
      throw JsonError("submit requires a non-empty 'dag' string");
    }
    request.submit.dag_text = dag.as_string();
    request.submit.budget_ms = integral_field(root, "budget_ms");
    request.submit.iterations = integral_field(root, "iterations");
    request.submit.tenant = root.get_string("tenant", "");
    const std::string priority = root.get_string("priority", "normal");
    if (priority == "high") {
      request.submit.high_priority = true;
    } else if (priority != "normal") {
      throw JsonError("field 'priority' must be \"high\" or \"normal\"");
    }
  } else if (method == "cancel") {
    request.method = Request::Method::kCancel;
    request.cancel.id = request.id;
    request.cancel.tenant = root.get_string("tenant", "");
  } else {
    throw JsonError("unknown method '" + method + "'");
  }
  return request;
}

std::string make_placed_response(const std::string& id,
                                 const SubmitResult& result) {
  std::ostringstream os;
  os << "{\"id\":\"" << json_escape(id) << "\",\"ok\":true"
     << ",\"result\":\"placed\""
     << ",\"makespan\":" << result.makespan
     << ",\"mode\":\"" << serve_mode_name(result.mode) << "\""
     << ",\"degraded\":" << (result.degraded ? "true" : "false")
     << ",\"queue_ms\":" << wire_ms(result.queue_ms)
     << ",\"search_ms\":" << wire_ms(result.search_ms)
     << ",\"placements\":[";
  bool first = true;
  for (const auto& [name, start] : result.placements) {
    if (!first) os << ",";
    first = false;
    os << "{\"task\":\"" << json_escape(name) << "\",\"start\":" << start
       << "}";
  }
  os << "]}";
  return os.str();
}

std::string make_error_response(const std::string& id,
                                const Rejection& rejection) {
  std::ostringstream os;
  os << "{\"id\":\"" << json_escape(id) << "\",\"ok\":false"
     << ",\"error\":{\"code\":\"" << error_code_name(rejection.code)
     << "\",\"message\":\"" << json_escape(rejection.message) << "\"";
  if (rejection.retry_after_ms >= 0) {
    os << ",\"retry_after_ms\":" << rejection.retry_after_ms;
  }
  os << "}}";
  return os.str();
}

std::string make_pong_response(const std::string& id) {
  return "{\"id\":\"" + json_escape(id) + "\",\"ok\":true,\"result\":\"pong\"}";
}

std::string make_cancelled_response(const std::string& id,
                                    const char* state) {
  return "{\"id\":\"" + json_escape(id) +
         "\",\"ok\":true,\"result\":\"cancelled\",\"state\":\"" + state +
         "\"}";
}

std::string make_stats_response(const std::string& id,
                                const std::string& stats_json) {
  return "{\"id\":\"" + json_escape(id) +
         "\",\"ok\":true,\"result\":\"stats\",\"stats\":" + stats_json + "}";
}

std::vector<std::pair<std::string, Time>> placement_names(
    const Schedule& schedule, const Dag& dag) {
  std::vector<std::pair<std::string, Time>> out;
  out.reserve(schedule.placements().size());
  for (const Placement& p : schedule.placements()) {
    const Task& task = dag.task(p.task);
    out.emplace_back(
        task.name.empty() ? "t" + std::to_string(task.id) : task.name,
        p.start);
  }
  return out;
}

}  // namespace spear::svc
