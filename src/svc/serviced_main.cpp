// spear_serviced — the scheduling-as-a-service daemon (DESIGN.md §12).
//
// Serves the JSON-lines protocol on stdin/stdout and, with --socket PATH,
// on a local AF_UNIX stream socket as well.  SIGTERM/SIGINT (or stdin EOF)
// triggers a supervised drain: admission stops (later submits are rejected
// shutting_down), queued and in-flight requests are answered, the RunReport
// is flushed (--metrics-out), and the process exits 0.
//
//   ./spear_serviced --workers=2 --queue-cap=64 --default-budget-ms=100
//   echo '{"id":"r1","method":"submit","dag":"dims 2\ntask a 5 0.5 0.5\n"}' |
//     ./spear_serviced
//
// Logs go to stderr; stdout carries protocol responses only.

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>

#include "common/flags.h"
#include "common/logging.h"
#include "common/supervisor.h"
#include "core/spear.h"
#include "nn/serialize.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "svc/frontend.h"
#include "svc/service.h"

namespace {

using namespace spear;
using namespace spear::svc;

/// Parses "1.0,1.0"-style --capacity values.
ResourceVector parse_capacity(const std::string& text) {
  std::vector<double> parts;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t comma = text.find(',', begin);
    const std::string token =
        text.substr(begin, comma == std::string::npos ? std::string::npos
                                                      : comma - begin);
    if (!token.empty()) parts.push_back(std::stod(token));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  if (parts.empty()) throw std::runtime_error("empty --capacity");
  ResourceVector capacity(parts.size());
  for (std::size_t i = 0; i < parts.size(); ++i) capacity[i] = parts[i];
  return capacity;
}

/// Parses "8" / "alice=8,bob=4" tenant-limit specs: a bare value sets the
/// default for every tenant, `name=value` entries override per tenant.
/// `apply` receives (TenantLimits&, parsed value) and stores the field.
/// Called in two passes (bare defaults first, then named overrides) so an
/// override inherits ALL configured defaults no matter which flag it came
/// from.
void parse_tenant_spec(const std::string& text, const std::string& flag,
                       ServiceOptions& options, bool named_pass,
                       const std::function<void(TenantLimits&, double)>& apply) {
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t comma = text.find(',', begin);
    const std::string token =
        text.substr(begin, comma == std::string::npos ? std::string::npos
                                                      : comma - begin);
    if (!token.empty()) {
      const std::size_t eq = token.find('=');
      const auto parse_value = [&](const std::string& value) {
        std::size_t parsed = 0;
        const double out = std::stod(value, &parsed);
        if (parsed != value.size()) {
          throw std::runtime_error("bad --" + flag + " entry '" + token + "'");
        }
        return out;
      };
      if (eq == std::string::npos) {
        if (!named_pass) apply(options.tenant_defaults, parse_value(token));
      } else if (named_pass) {
        const std::string name = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        if (name.empty() || value.empty()) {
          throw std::runtime_error("bad --" + flag + " entry '" + token + "'");
        }
        auto [it, inserted] = options.tenant_overrides.try_emplace(
            name, options.tenant_defaults);
        apply(it->second, parse_value(value));
      }
    }
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  auto socket_path = flags.define_string(
      "socket", "", "also serve on this AF_UNIX socket path");
  auto workers = flags.define_int("workers", 2, "concurrent service workers");
  auto queue_cap =
      flags.define_int("queue-cap", 64, "admission queue capacity");
  auto max_tasks =
      flags.define_int("max-tasks", 512, "max tasks per submitted DAG");
  auto max_line_bytes = flags.define_int("max-line-bytes", 1 << 20,
                                         "max request line length in bytes");
  auto tenant_quota = flags.define_string(
      "tenant-quota", "",
      "max queued requests per tenant: \"8\" for all, \"alice=8,bob=4\" per "
      "tenant, 0 = global bound only");
  auto tenant_inflight = flags.define_string(
      "tenant-inflight", "",
      "max concurrently served requests per tenant (same syntax as "
      "--tenant-quota), 0 = uncapped");
  auto tenant_weight = flags.define_string(
      "tenant-weight", "",
      "fair-queueing weight per tenant (same syntax as --tenant-quota)");
  auto high_lane_share = flags.define_double(
      "high-lane-share", 0.75,
      "max share of dequeues the high-priority lane may take while normal "
      "work waits");
  auto tenant_cost_mode = flags.define_string(
      "tenant-cost-mode", "unit",
      "DRR fairness accounting: unit = per request, tasks = per task "
      "(job-size-aware)");
  auto default_budget_ms = flags.define_int(
      "default-budget-ms", 100, "deadline for submits without budget_ms");
  auto max_budget_ms = flags.define_int(
      "max-budget-ms", 10000, "cap applied to client-requested budgets");
  auto iterations =
      flags.define_int("iterations", 400, "full search iteration budget");
  auto min_iterations =
      flags.define_int("min-iterations", 100, "minimum iteration budget");
  auto full_floor_ms = flags.define_int(
      "full-floor-ms", 20,
      "remaining deadline below which the search budget is reduced");
  auto heuristic_floor_ms = flags.define_int(
      "heuristic-floor-ms", 4,
      "remaining deadline below which the heuristic answers without search");
  auto search_threads = flags.define_int(
      "search-threads", 1, "parallel search threads inside each worker");
  auto search_mode = flags.define_string(
      "search-mode", "leaf", "parallel search architecture: root|leaf");
  auto capacity_text = flags.define_string(
      "capacity", "1.0,1.0", "cluster capacity, comma-separated per resource");
  auto policy_path = flags.define_string(
      "policy", "",
      "trained policy network (save_mlp format); empty = unguided MCTS");
  auto infer_mode = flags.define_string(
      "infer-mode", "private",
      "policy forward routing: private = per-worker network copies, shared "
      "= one cross-request batched inference service (DESIGN.md §15)");
  auto infer_batch_max = flags.define_int(
      "infer-batch-max", 64, "shared inference: close a batch at this many rows");
  auto infer_batch_timeout_us = flags.define_int(
      "infer-batch-timeout-us", 200,
      "shared inference: close a non-full batch after waiting this long");
  auto infer_queue_cap = flags.define_int(
      "infer-queue-cap", 256, "shared inference: bounded request ring size");
  auto infer_runners = flags.define_int(
      "infer-runners", 1, "shared inference: batcher runner threads");
  auto seed = flags.define_int("seed", 42, "base RNG seed");
  auto metrics_out = flags.define_string(
      "metrics-out", "", "write a run-report JSON here on shutdown");
  auto trace_out = flags.define_string(
      "trace-out", "", "write a Chrome trace-event JSON here");

  try {
    flags.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "spear_serviced: %s\n%s", e.what(),
                 flags.usage("spear_serviced").c_str());
    return 2;
  }

  // A client vanishing mid-response must surface as EPIPE on the write, not
  // kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);
  install_signal_handlers();

  if (!metrics_out->empty()) {
    obs::install_metrics(std::make_shared<obs::MetricsRegistry>());
  }
  if (!trace_out->empty()) {
    obs::install_trace(std::make_shared<obs::TraceEventWriter>(*trace_out));
  }

  ServiceOptions options;
  try {
    options.capacity = parse_capacity(*capacity_text);
    options.workers = static_cast<int>(*workers);
    options.limits.queue_capacity = static_cast<std::size_t>(*queue_cap);
    options.limits.max_tasks_per_job = static_cast<std::size_t>(*max_tasks);
    options.limits.max_line_bytes = static_cast<std::size_t>(*max_line_bytes);
    options.high_lane_share = *high_lane_share;
    if (*tenant_cost_mode == "unit") {
      options.tenant_cost_mode = CostMode::kUnit;
    } else if (*tenant_cost_mode == "tasks") {
      options.tenant_cost_mode = CostMode::kTasks;
    } else {
      throw std::runtime_error("--tenant-cost-mode must be unit or tasks");
    }
    const auto set_quota = [](TenantLimits& limits, double value) {
      limits.max_queued = static_cast<std::size_t>(std::max(value, 0.0));
    };
    const auto set_inflight = [](TenantLimits& limits, double value) {
      limits.max_in_flight = static_cast<std::size_t>(std::max(value, 0.0));
    };
    const auto set_weight = [](TenantLimits& limits, double value) {
      limits.weight = value;
    };
    for (const bool named_pass : {false, true}) {
      parse_tenant_spec(*tenant_quota, "tenant-quota", options, named_pass,
                        set_quota);
      parse_tenant_spec(*tenant_inflight, "tenant-inflight", options,
                        named_pass, set_inflight);
      parse_tenant_spec(*tenant_weight, "tenant-weight", options, named_pass,
                        set_weight);
    }
    options.default_budget_ms = *default_budget_ms;
    options.max_budget_ms = *max_budget_ms;
    options.search_iterations = *iterations;
    options.min_iterations = *min_iterations;
    options.full_search_floor_ms = *full_floor_ms;
    options.heuristic_floor_ms = *heuristic_floor_ms;
    options.search_threads = static_cast<int>(*search_threads);
    options.search_mode = parse_search_mode(*search_mode);
    if (*infer_mode == "private") {
      options.infer_mode = InferMode::kPrivate;
    } else if (*infer_mode == "shared") {
      options.infer_mode = InferMode::kShared;
    } else {
      throw std::runtime_error("--infer-mode must be private or shared");
    }
    options.infer.batch_max = static_cast<std::size_t>(
        std::max<std::int64_t>(*infer_batch_max, 1));
    options.infer.batch_timeout_us = *infer_batch_timeout_us;
    options.infer.queue_capacity = static_cast<std::size_t>(
        std::max<std::int64_t>(*infer_queue_cap, 1));
    options.infer.runners = static_cast<int>(*infer_runners);
    options.seed = static_cast<std::uint64_t>(*seed);
    if (!policy_path->empty()) {
      Featurizer featurizer{FeaturizerOptions{}};
      Mlp net = load_mlp(*policy_path);
      if (net.input_dim() != featurizer.input_dim(options.capacity.dims()) ||
          net.output_dim() != featurizer.num_actions()) {
        throw std::runtime_error(
            "--policy network shape does not match the default featurizer "
            "at this --capacity");
      }
      options.policy = std::make_shared<const Policy>(
          featurizer, std::move(net), options.capacity.dims());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "spear_serviced: %s\n", e.what());
    return 2;
  }

  SchedulerService service(options);
  service.start();
  SPEAR_LOG(Info) << "spear_serviced: serving on stdio"
                  << (socket_path->empty() ? "" : " + " + *socket_path)
                  << " (workers=" << options.workers
                  << " queue=" << options.limits.queue_capacity
                  << " policy=" << (options.policy ? "drl" : "none") << ")";

  const auto stop = [] { return stop_requested(); };

  // Optional AF_UNIX frontend on its own thread; the stdio frontend runs on
  // the main thread.  Both observe the same supervisor stop flag.
  std::unique_ptr<SocketFrontend> socket_frontend;
  std::thread socket_thread;
  if (!socket_path->empty()) {
    socket_frontend = std::make_unique<SocketFrontend>(*socket_path, service);
    try {
      socket_frontend->start();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "spear_serviced: %s\n", e.what());
      return 2;
    }
    socket_thread =
        std::thread([&socket_frontend, &stop] { socket_frontend->serve(stop); });
  }

  auto stdio_writer = std::make_shared<LineWriter>(/*fd=*/1);
  const std::int64_t handled =
      run_jsonl_connection(/*in_fd=*/0, stdio_writer, service, stop);

  // Stdin EOF with no socket frontend also means "no more work": drain.
  // With a socket frontend the daemon keeps serving until signaled.
  if (socket_frontend && !stop_requested()) {
    while (!stop_requested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }

  SPEAR_LOG(Info) << "spear_serviced: draining (" << service.queue_depth()
                  << " queued)";
  service.shutdown();  // stop admitting, answer everything queued, join
  if (socket_thread.joinable()) {
    request_stop();  // covers the stdin-EOF-only path
    socket_thread.join();
  }

  const ServiceCounters counters = service.counters();
  SPEAR_LOG(Info) << "spear_serviced: done (stdio_lines=" << handled
                  << " submitted=" << counters.submitted
                  << " placed=" << counters.placed
                  << " cancelled=" << counters.cancelled
                  << " rejected=" << counters.rejected_total()
                  << " degraded=" << counters.degraded_total() << ")";

  if (!metrics_out->empty()) {
    obs::RunReport report("spear_serviced");
    report.set("workers", static_cast<std::int64_t>(options.workers));
    report.set("queue_capacity",
               static_cast<std::int64_t>(options.limits.queue_capacity));
    report.set("submitted", counters.submitted);
    report.set("admitted", counters.admitted);
    report.set("placed", counters.placed);
    report.set("cancelled", counters.cancelled);
    report.set("rejected_total", counters.rejected_total());
    report.set("rejected_queue_full", counters.rejected_queue_full);
    report.set("rejected_quota_exceeded", counters.rejected_quota_exceeded);
    report.set("rejected_deadline_expired", counters.rejected_deadline_expired);
    report.set("degraded_reduced", counters.degraded_reduced);
    report.set("degraded_heuristic", counters.degraded_heuristic);
    report.set("search_degradations", counters.search_degradations);
    report.set("search_deadline_cutoffs", counters.search_deadline_cutoffs);
    report.set("infer_mode", options.infer_mode == InferMode::kShared
                                 ? "shared"
                                 : "private");
    report.set("search_forwards", counters.search_forwards);
    report.set("search_forward_rows", counters.search_forward_rows);
    report.set("batch_rows_p50",
               infer::hist_percentile(counters.forward_hist, 50.0));
    report.set("batch_rows_p99",
               infer::hist_percentile(counters.forward_hist, 99.0));
    const obs::MetricsSnapshot snapshot = obs::metrics()->snapshot();
    report.write(*metrics_out, &snapshot);
    std::fprintf(stderr, "spear_serviced: wrote %s\n", metrics_out->c_str());
  }
  obs::shutdown();
  return 0;
}
