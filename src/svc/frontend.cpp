#include "svc/frontend.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "svc/json.h"
#include "svc/protocol.h"

namespace spear::svc {

namespace {

constexpr int kPollMs = 50;  ///< stop-flag latency bound while idle

std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

LineWriter::LineWriter(int fd, bool own_fd) : fd_(fd), own_fd_(own_fd) {}

LineWriter::~LineWriter() {
  if (own_fd_ && fd_ >= 0) ::close(fd_);
}

bool LineWriter::write_line(const std::string& line) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (dead_) return false;
  std::string framed = line;
  framed.push_back('\n');
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n = ::write(fd_, framed.data() + off, framed.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      dead_ = true;  // EPIPE et al.: peer is gone, this connection is done
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool LineWriter::alive() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !dead_;
}

LineReader::LineReader(int fd, std::size_t max_line_bytes)
    : fd_(fd), max_line_bytes_(std::max<std::size_t>(max_line_bytes, 1)) {}

LineReader::Status LineReader::next(std::string& line,
                                    const std::function<bool()>& stop) {
  for (;;) {
    // Drain complete lines already buffered.
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string extracted = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (discarding_) {
        discarding_ = false;  // the tail of an overlong line; resynced now
        continue;
      }
      if (extracted.size() > max_line_bytes_) return Status::kOverlong;
      line = std::move(extracted);
      return Status::kLine;
    }
    if (!discarding_ && buffer_.size() > max_line_bytes_) {
      // Unterminated line already over the cap: shed it WITHOUT buffering
      // the rest — memory stays bounded no matter how much the client
      // streams — and resync at its eventual newline.
      buffer_.clear();
      discarding_ = true;
      return Status::kOverlong;
    }
    if (discarding_) buffer_.clear();

    if (eof_) {
      if (!buffer_.empty() && !discarding_) {
        // Final line without a trailing newline still counts (cap applies).
        std::string tail = std::move(buffer_);
        buffer_.clear();
        if (tail.size() > max_line_bytes_) return Status::kOverlong;
        line = std::move(tail);
        return Status::kLine;
      }
      return Status::kEof;
    }
    if (stop && stop()) return Status::kStopped;

    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, kPollMs);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::kError;
    }
    if (rc == 0) continue;  // timeout: loop to re-check stop()

    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return Status::kError;
    }
    if (n == 0) {
      eof_ = true;
      continue;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::int64_t run_jsonl_connection(int in_fd,
                                  std::shared_ptr<LineWriter> out,
                                  SchedulerService& service,
                                  const std::function<bool()>& stop) {
  LineReader reader(in_fd, service.options().limits.max_line_bytes);
  std::int64_t handled = 0;
  std::string line;
  for (;;) {
    const LineReader::Status status = reader.next(line, stop);
    if (status == LineReader::Status::kStopped ||
        status == LineReader::Status::kEof ||
        status == LineReader::Status::kError) {
      break;
    }
    if (status == LineReader::Status::kOverlong) {
      ++handled;
      service.count_rejection(ErrorCode::kTooLarge);
      out->write_line(make_error_response(
          "", Rejection{ErrorCode::kTooLarge,
                        "request line exceeds " +
                            std::to_string(
                                service.options().limits.max_line_bytes) +
                            " bytes",
                        -1}));
      continue;
    }
    if (line.empty()) continue;
    ++handled;

    Request request;
    try {
      request = parse_request(line);
    } catch (const std::exception& e) {
      // Malformed input costs the CLIENT one error line, never the daemon.
      service.count_rejection(ErrorCode::kBadRequest);
      out->write_line(make_error_response(
          "", Rejection{ErrorCode::kBadRequest, e.what(), -1}));
      continue;
    }

    switch (request.method) {
      case Request::Method::kPing:
        out->write_line(make_pong_response(request.id));
        break;
      case Request::Method::kStats:
        out->write_line(
            make_stats_response(request.id, service.counters_json()));
        break;
      case Request::Method::kSubmit: {
        // The responder keeps the writer alive until the outcome (possibly
        // delivered during shutdown drain) has been written.
        const std::string id = request.id;
        service.submit(request.submit,
                       [out, id](bool ok, const SubmitResult& result,
                                 const Rejection& rejection) {
                         out->write_line(
                             ok ? make_placed_response(id, result)
                                : make_error_response(id, rejection));
                       });
        break;
      }
      case Request::Method::kCancel: {
        // For a queued target, cancel() answers the ORIGINAL submit first
        // (through its own responder on this writer), then we ack the
        // cancel — so the client always sees the submit resolve before the
        // cancel confirmation.
        const CancelState state =
            service.cancel(request.cancel.tenant, request.cancel.id);
        if (state == CancelState::kNotFound) {
          out->write_line(make_error_response(
              request.id,
              Rejection{ErrorCode::kNotFound,
                        "no queued or in-flight request with id '" +
                            request.id + "'",
                        -1}));
        } else {
          out->write_line(make_cancelled_response(
              request.id,
              state == CancelState::kQueued ? "queued" : "in_flight"));
        }
        break;
      }
    }
    if (!out->alive()) break;
  }
  return handled;
}

SocketFrontend::SocketFrontend(std::string path, SchedulerService& service)
    : path_(std::move(path)), service_(service) {}

SocketFrontend::~SocketFrontend() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(path_.c_str());
  }
}

void SocketFrontend::start() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long: " + path_);
  }
  std::strncpy(addr.sun_path, path_.c_str(), sizeof(addr.sun_path) - 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error(errno_message("socket"));
  ::unlink(path_.c_str());  // replace a stale socket from a crashed run
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string message = errno_message("bind") + " (" + path_ + ")";
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(message);
  }
  if (::listen(listen_fd_, 16) != 0) {
    const std::string message = errno_message("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(message);
  }
}

void SocketFrontend::serve(const std::function<bool()>& stop) {
  if (listen_fd_ < 0) throw std::runtime_error("SocketFrontend not started");
  while (!(stop && stop())) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, kPollMs * 4);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == ECONNABORTED) {
        continue;
      }
      break;
    }
    connections_.emplace_back([this, conn, stop] {
      auto writer = std::make_shared<LineWriter>(conn, /*own_fd=*/true);
      run_jsonl_connection(conn, writer, service_, stop);
    });
  }
  for (std::thread& t : connections_) {
    if (t.joinable()) t.join();
  }
  connections_.clear();
}

}  // namespace spear::svc
