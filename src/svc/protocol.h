// The scheduling service wire protocol (DESIGN.md §12): JSON-lines over
// stdin/stdout or a local AF_UNIX socket.  One request object per line in,
// one response object per line out, correlated by the client-chosen "id".
//
// Requests:
//   {"id":"r1","method":"submit","dag":"dims 2\ntask a 5 0.5 0.5\n",
//    "budget_ms":200,"iterations":400}
//   {"id":"p1","method":"ping"}
//   {"id":"s1","method":"stats"}
//
// `dag` is the dag/io.h text format embedded as a JSON string.  `budget_ms`
// is the per-request scheduling deadline (0 / absent = server default);
// `iterations` optionally caps the search's iteration budget.
//
// Responses:
//   {"id":"r1","ok":true,"result":"placed","makespan":12,"mode":"search",
//    "degraded":false,"queue_ms":0.21,"search_ms":8.13,
//    "placements":[{"task":"a","start":0}, ...]}
//   {"id":"r1","ok":false,
//    "error":{"code":"queue_full","message":"...","retry_after_ms":40}}
//
// Error codes (the admission/backpressure contract):
//   bad_request       malformed JSON / missing or mistyped fields
//   invalid_dag       DAG text failed to parse or validate (cycle, NaN, ...)
//   unschedulable     a task demand exceeds cluster capacity: no search
//                     could ever place it, so it is rejected at admission
//   too_large         task count or payload byte caps exceeded
//   queue_full        admission queue at capacity (load shedding);
//                     retry_after_ms estimates when capacity frees up
//   deadline_expired  the request's whole budget elapsed while queued
//   shutting_down     daemon is draining (SIGTERM); submit elsewhere
//   internal          unexpected server-side failure (the request died,
//                     the daemon did not)
//
// Parsing is strict about types but tolerant of unknown fields, so clients
// can extend requests without breaking older daemons.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/schedule.h"
#include "dag/dag.h"

namespace spear::svc {

enum class ErrorCode {
  kBadRequest,
  kInvalidDag,
  kUnschedulable,
  kTooLarge,
  kQueueFull,
  kDeadlineExpired,
  kShuttingDown,
  kInternal,
};

/// The wire name of `code` ("queue_full", ...).
const char* error_code_name(ErrorCode code);

/// A structured rejection; serialized into the response "error" object.
struct Rejection {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
  /// Backpressure hint in milliseconds; < 0 = omitted from the wire.
  std::int64_t retry_after_ms = -1;
};

/// A parsed submit request (before DAG parsing/admission).
struct SubmitRequest {
  std::string id;
  std::string dag_text;
  std::int64_t budget_ms = 0;    ///< 0 = server default
  std::int64_t iterations = 0;   ///< 0 = server default
};

struct Request {
  enum class Method { kSubmit, kPing, kStats };
  Method method = Method::kPing;
  std::string id;
  SubmitRequest submit;  ///< valid when method == kSubmit
};

/// Parses one request line.  Throws JsonError (malformed JSON / wrong
/// types / unknown method) — the frontend converts that into a
/// bad_request response.
Request parse_request(const std::string& line);

/// How a placed request was served — the degradation ladder rung.
enum class ServeMode {
  kSearch,     ///< full search within the remaining deadline
  kReduced,    ///< deadline nearly spent: search at the minimum budget
  kHeuristic,  ///< deadline (almost) gone: CP x Tetris heuristic, no search
};
const char* serve_mode_name(ServeMode mode);

/// A successful scheduling outcome, ready for serialization.
struct SubmitResult {
  Time makespan = 0;
  ServeMode mode = ServeMode::kSearch;
  /// True when served below the requested rung (kReduced/kHeuristic) or the
  /// search internally fell back to its heuristic (anytime degradation).
  bool degraded = false;
  double queue_ms = 0.0;   ///< admission-to-dequeue wait
  double search_ms = 0.0;  ///< scheduling time
  /// (task name, start) pairs in placement order.
  std::vector<std::pair<std::string, Time>> placements;
};

/// Response serializers; each returns one JSON line WITHOUT the trailing
/// newline.
std::string make_placed_response(const std::string& id,
                                 const SubmitResult& result);
std::string make_error_response(const std::string& id,
                                const Rejection& rejection);
std::string make_pong_response(const std::string& id);
/// `stats_json` is a pre-rendered JSON object body (the service counters).
std::string make_stats_response(const std::string& id,
                                const std::string& stats_json);

/// Extracts placements as (task name, start) pairs in schedule order
/// (unnamed tasks render as "t<id>", matching dag/io.h).
std::vector<std::pair<std::string, Time>> placement_names(
    const Schedule& schedule, const Dag& dag);

}  // namespace spear::svc
