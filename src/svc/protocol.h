// The scheduling service wire protocol (DESIGN.md §12): JSON-lines over
// stdin/stdout or a local AF_UNIX socket.  One request object per line in,
// one response object per line out, correlated by the client-chosen "id".
//
// Requests:
//   {"id":"r1","method":"submit","dag":"dims 2\ntask a 5 0.5 0.5\n",
//    "budget_ms":200,"iterations":400,"tenant":"alice","priority":"high"}
//   {"id":"r1","method":"cancel","tenant":"alice"}
//   {"id":"p1","method":"ping"}
//   {"id":"s1","method":"stats"}
//
// `dag` is the dag/io.h text format embedded as a JSON string.  `budget_ms`
// is the per-request scheduling deadline (0 / absent = server default);
// `iterations` optionally caps the search's iteration budget.
//
// Multi-tenancy (DESIGN.md §13): `tenant` names the fair-queueing account a
// submit is charged to (absent/empty = "default"); each tenant has its own
// bounded sub-queue, quota, and weight.  `priority` selects the admission
// lane: "high" jumps ahead of "normal" (the default) but the high lane is
// capped so it can never starve normal traffic.
//
// `cancel` withdraws the earlier submit with the same (tenant, id): a
// queued request is removed and answered `cancelled`; an in-flight one is
// marked for best-effort early search cutoff and answered `cancelled` by
// its worker.  The cancel itself is answered
//   {"id":"r1","ok":true,"result":"cancelled","state":"queued"|"in_flight"}
// or, when no such request is queued or in flight (unknown id, already
// answered), {"id":"r1","ok":false,"error":{"code":"not_found",...}}.
//
// Responses:
//   {"id":"r1","ok":true,"result":"placed","makespan":12,"mode":"search",
//    "degraded":false,"queue_ms":0.21,"search_ms":8.13,
//    "placements":[{"task":"a","start":0}, ...]}
//   {"id":"r1","ok":false,
//    "error":{"code":"queue_full","message":"...","retry_after_ms":40}}
//
// Error codes (the admission/backpressure contract):
//   bad_request       malformed JSON / missing or mistyped fields
//   invalid_dag       DAG text failed to parse or validate (cycle, NaN, ...)
//   unschedulable     a task demand exceeds cluster capacity: no search
//                     could ever place it, so it is rejected at admission
//   too_large         task count or payload byte caps exceeded
//   queue_full        admission queue at GLOBAL capacity (load shedding);
//                     retry_after_ms estimates when capacity frees up
//   quota_exceeded    the TENANT's queued-request quota is exhausted (other
//                     tenants may still be admitted); carries retry_after_ms
//   deadline_expired  the request's whole budget elapsed while queued
//   cancelled         the submit was withdrawn by a cancel request (this is
//                     the answer the ORIGINAL submit receives)
//   not_found         cancel target is neither queued nor in flight
//   shutting_down     daemon is draining (SIGTERM); submit elsewhere
//   internal          unexpected server-side failure (the request died,
//                     the daemon did not)
//
// Parsing is strict about types but tolerant of unknown fields, so clients
// can extend requests without breaking older daemons.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/schedule.h"
#include "dag/dag.h"

namespace spear::svc {

enum class ErrorCode {
  kBadRequest,
  kInvalidDag,
  kUnschedulable,
  kTooLarge,
  kQueueFull,
  kQuotaExceeded,
  kDeadlineExpired,
  kCancelled,
  kNotFound,
  kShuttingDown,
  kInternal,
};

/// The wire name of `code` ("queue_full", ...).
const char* error_code_name(ErrorCode code);

/// A structured rejection; serialized into the response "error" object.
struct Rejection {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
  /// Backpressure hint in milliseconds; < 0 = omitted from the wire.
  std::int64_t retry_after_ms = -1;
};

/// The fair-queueing account absent/empty `tenant` fields resolve to.
inline constexpr const char* kDefaultTenant = "default";

/// A parsed submit request (before DAG parsing/admission).
struct SubmitRequest {
  std::string id;
  std::string dag_text;
  std::int64_t budget_ms = 0;    ///< 0 = server default
  std::int64_t iterations = 0;   ///< 0 = server default
  std::string tenant;            ///< empty = kDefaultTenant
  bool high_priority = false;    ///< "priority":"high" lane
};

/// A parsed cancel request: withdraw the submit with the same (tenant, id).
struct CancelRequest {
  std::string id;
  std::string tenant;  ///< empty = kDefaultTenant (same defaulting as submit)
};

struct Request {
  enum class Method { kSubmit, kPing, kStats, kCancel };
  Method method = Method::kPing;
  std::string id;
  SubmitRequest submit;  ///< valid when method == kSubmit
  CancelRequest cancel;  ///< valid when method == kCancel
};

/// Parses one request line.  Throws JsonError (malformed JSON / wrong
/// types / unknown method) — the frontend converts that into a
/// bad_request response.
Request parse_request(const std::string& line);

/// How a placed request was served — the degradation ladder rung.
enum class ServeMode {
  kSearch,     ///< full search within the remaining deadline
  kReduced,    ///< deadline nearly spent: search at the minimum budget
  kHeuristic,  ///< deadline (almost) gone: CP x Tetris heuristic, no search
};
const char* serve_mode_name(ServeMode mode);

/// A successful scheduling outcome, ready for serialization.
struct SubmitResult {
  Time makespan = 0;
  ServeMode mode = ServeMode::kSearch;
  /// True when served below the requested rung (kReduced/kHeuristic) or the
  /// search internally fell back to its heuristic (anytime degradation).
  bool degraded = false;
  double queue_ms = 0.0;   ///< admission-to-dequeue wait
  double search_ms = 0.0;  ///< scheduling time
  /// (task name, start) pairs in placement order.
  std::vector<std::pair<std::string, Time>> placements;
};

/// Response serializers; each returns one JSON line WITHOUT the trailing
/// newline.
std::string make_placed_response(const std::string& id,
                                 const SubmitResult& result);
std::string make_error_response(const std::string& id,
                                const Rejection& rejection);
std::string make_pong_response(const std::string& id);
/// `state` is "queued" or "in_flight" — where the cancel caught the target.
std::string make_cancelled_response(const std::string& id,
                                    const char* state);
/// `stats_json` is a pre-rendered JSON object body (the service counters).
std::string make_stats_response(const std::string& id,
                                const std::string& stats_json);

/// Extracts placements as (task name, start) pairs in schedule order
/// (unnamed tasks render as "t<id>", matching dag/io.h).
std::vector<std::pair<std::string, Time>> placement_names(
    const Schedule& schedule, const Dag& dag);

}  // namespace spear::svc
