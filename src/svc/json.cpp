#include "svc/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace spear::svc {

namespace {

[[noreturn]] void kind_error(const char* expected, JsonValue::Kind got) {
  static const char* names[] = {"null", "bool", "number",
                                "string", "array", "object"};
  throw JsonError(std::string("JSON value is ") +
                  names[static_cast<int>(got)] + ", expected " + expected);
}

const JsonValue& null_value() {
  static const JsonValue v;
  return v;
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("bool", kind_);
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) kind_error("number", kind_);
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) kind_error("string", kind_);
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) kind_error("array", kind_);
  return array_;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  for (const auto& [k, v] : object_) {
    if (k == key) return v;
  }
  return null_value();
}

bool JsonValue::has(const std::string& key) const {
  if (kind_ != Kind::kObject) return false;
  for (const auto& [k, v] : object_) {
    if (k == key) return true;
  }
  return false;
}

const std::vector<std::string>& JsonValue::keys() const {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  return object_keys_;
}

std::string JsonValue::get_string(const std::string& key,
                                  const std::string& def) const {
  const JsonValue& v = at(key);
  if (v.is_null()) return def;
  if (!v.is_string()) throw JsonError("field '" + key + "' must be a string");
  return v.string_;
}

double JsonValue::get_number(const std::string& key, double def) const {
  const JsonValue& v = at(key);
  if (v.is_null()) return def;
  if (!v.is_number()) throw JsonError("field '" + key + "' must be a number");
  return v.number_;
}

bool JsonValue::get_bool(const std::string& key, bool def) const {
  const JsonValue& v = at(key);
  if (v.is_null()) return def;
  if (!v.is_bool()) throw JsonError("field '" + key + "' must be a boolean");
  return v.bool_;
}

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  // Deep enough for any sane request, shallow enough that hostile nesting
  // cannot overflow the stack (the recursive descent uses O(depth) frames).
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& message) const {
    throw JsonError("JSON parse error at byte " + std::to_string(pos_) +
                    ": " + message);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + peek() + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    std::size_t n = 0;
    while (literal[n] != '\0') ++n;
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    JsonValue v;
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        v.kind_ = JsonValue::Kind::kString;
        v.string_ = parse_string();
        return v;
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        v.kind_ = JsonValue::Kind::kBool;
        v.bool_ = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        v.kind_ = JsonValue::Kind::kBool;
        v.bool_ = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return v;  // null
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail(std::string("unexpected character '") + c + "'");
    }
  }

  JsonValue parse_object(int depth) {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("object key must be a string");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      JsonValue value = parse_value(depth + 1);
      for (const auto& [k, existing] : v.object_) {
        if (k == key) fail("duplicate object key '" + key + "'");
      }
      v.object_keys_.push_back(key);
      v.object_.emplace_back(std::move(key), std::move(value));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array(int depth) {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array_.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        ++pos_;
        const char e = peek();
        ++pos_;
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': append_unicode_escape(out); break;
          default: fail("invalid escape sequence");
        }
        continue;
      }
      if (c < 0x20) fail("unescaped control character in string");
      out += static_cast<char>(c);
      ++pos_;
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<std::uint32_t>(c - 'A' + 10);
      else fail("invalid \\u escape");
    }
    return value;
  }

  void append_unicode_escape(std::string& out) {
    std::uint32_t cp = parse_hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      // High surrogate: must be followed by \uDC00..\uDFFF.
      if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u') {
        fail("unpaired surrogate");
      }
      pos_ += 2;
      const std::uint32_t low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired surrogate");
    }
    // Encode as UTF-8.
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size()) fail("truncated number");
    if (text_[pos_] == '0') {
      ++pos_;
    } else if (text_[pos_] >= '1' && text_[pos_] <= '9') {
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    } else {
      fail("invalid number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("invalid number fraction");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("invalid number exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    v.number_ = std::strtod(text_.c_str() + start, nullptr);
    if (!std::isfinite(v.number_)) fail("number out of range");
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

JsonValue json_parse(const std::string& text) {
  return JsonParser(text).parse();
}

}  // namespace spear::svc
