// Transposition cache for leaf-parallel MCTS (DESIGN.md §11).
//
// Different action orders frequently reach the same scheduling state (e.g.
// scheduling tasks A then B at the same instant vs B then A), and with
// cross-decision tree reuse the same states recur decision after decision.
// The cache maps a canonical state key — built by
// SchedulingEnv::append_canonical_key from (elapsed time, running set,
// ready set, backlog, pending retries) — to the guide's prior ordering, so
// a repeated state costs a hash probe instead of a network forward.
//
// Only PRIORS are cached, never values: two transposed states share the
// same action distribution (their featurizations are bit-identical, see
// append_canonical_key) but sit at different tree positions with different
// rollout histories.  Lookups compare the FULL key, not just its hash, so
// a hit always returns priors bitwise-identical to a fresh evaluation —
// search results with the cache on equal the cache-off results bit for bit
// (prior evaluation consumes no RNG).
//
// Eviction is FIFO under a fixed entry cap: scheduling states are visited
// in loosely time-ordered waves, so the oldest entries are the least likely
// to recur.  FIFO also keeps eviction deterministic — no access-time state.
// The cache is single-threaded by design: the central evaluator is the only
// client (workers never probe it), so no locking is needed.

#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace spear {

class TranspositionCache {
 public:
  /// The cached value: a guide prior ordering as produced by
  /// DecisionPolicy::action_weights (descending weight, ties stable).
  using Priors = std::vector<std::pair<int, double>>;
  using Key = std::vector<std::uint64_t>;

  /// `capacity` = max cached entries; 0 disables the cache entirely
  /// (find() always misses, insert() is a no-op).
  explicit TranspositionCache(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return entries_.size(); }

  /// Cached priors for `key`, or nullptr on a miss.  The pointer is valid
  /// until the next insert() (which may evict).
  const Priors* find(const Key& key) const;

  /// Inserts (evicting the oldest entry when full).  Duplicate keys keep
  /// the existing entry — the first evaluation wins, matching the
  /// bit-identity contract (re-evaluation yields the same priors anyway).
  void insert(const Key& key, Priors priors);

  /// Drops every entry (the scheduler clears between schedule() calls —
  /// keys do not encode the DAG identity).
  void clear();

  /// splitmix64-style mix of the key words.  Collisions are harmless
  /// (buckets chain and the full key is compared); the mix only needs to
  /// spread the buckets.
  static std::uint64_t hash_key(const Key& key);

 private:
  struct KeyHash {
    std::uint64_t operator()(const Key& key) const { return hash_key(key); }
  };

  std::size_t capacity_;
  std::unordered_map<Key, Priors, KeyHash> entries_;
  /// Insertion order for FIFO eviction.
  std::deque<Key> order_;
};

/// Canonical-state -> greedy-rollout-action cache for the leaf evaluator's
/// batched rollout steps.
///
/// Greedy rollouts are pure functions of the state: the same canonical key
/// always resolves to the same argmax action, so repeated rollout states
/// cost a hash probe instead of a network forward.  Repetition is the
/// common case, not the exception — expanding a node's highest-prior child
/// replays the parent's greedy rollout state for state (guided expansion
/// pops actions in prior order, and the greedy rollout took exactly the
/// top-prior action), and every descent that parks on an already-covered
/// node re-walks a cached suffix.  Never consulted for sampling rollouts:
/// a sampled step consumes RNG, so skipping the draw would shift every
/// later draw in that rollout's stream.
///
/// Same key scheme, full-key compare, FIFO eviction, and 0-disables
/// contract as TranspositionCache; single-threaded by design (each search
/// worker owns a private instance).
class ActionCache {
 public:
  using Key = TranspositionCache::Key;

  explicit ActionCache(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return entries_.size(); }

  /// Cached env-level action for `key`, or nullptr on a miss.  The pointer
  /// is valid until the next insert() (which may evict).
  const int* find(const Key& key) const;

  /// Inserts (evicting the oldest entry when full).  Duplicate keys keep
  /// the existing entry.
  void insert(const Key& key, int action);

  void clear();

 private:
  struct KeyHash {
    std::uint64_t operator()(const Key& key) const {
      return TranspositionCache::hash_key(key);
    }
  };

  std::size_t capacity_;
  std::unordered_map<Key, int, KeyHash> entries_;
  /// Insertion order for FIFO eviction.
  std::deque<Key> order_;
};

/// Concurrent greedy-rollout action cache shared by ALL leaf-search
/// workers (DESIGN.md §11/§15).
///
/// Per-worker private ActionCaches fragment as workers are added: the same
/// rollout state missed independently in every worker's cache, so total
/// forwards GREW with the worker count (the multi-thread throughput
/// regression BENCH_mcts_leaf_parallel.json recorded — misses roughly
/// tripled from 1 to 8 workers).  One shared cache restores the
/// single-worker miss rate: whichever worker evaluates a state first
/// serves every other worker's later probe.
///
/// Sharded: the key hash picks one of a power-of-two number of
/// mutex-guarded shards, so concurrent probes rarely contend.  Within a
/// shard the contract matches ActionCache (full-key compare, FIFO
/// eviction per shard, duplicate inserts keep the first entry).
///
/// Determinism: greedy picks are pure functions of the canonical state, so
/// a hit is bit-identical to the forward it skipped — which worker
/// inserted first is timing-dependent, but every possible cache content
/// yields the same actions.  Placements therefore stay bit-identical
/// across worker counts and runs; only the hit/miss SPLIT (never the
/// probe total) varies at >1 workers.
class SharedActionCache {
 public:
  using Key = TranspositionCache::Key;

  /// `capacity` = max entries across all shards (0 disables); `shards` is
  /// rounded up to a power of two.
  explicit SharedActionCache(std::size_t capacity, std::size_t shards = 8);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;

  /// Looks up `key`; on a hit copies the action into *action and returns
  /// true.  (By value, unlike ActionCache::find — the shard lock is
  /// released before returning, so a pointer into the map would race.)
  bool find(const Key& key, int* action) const;

  /// Inserts (evicting the shard's oldest entry when the shard is full).
  /// Duplicate keys keep the existing entry.
  void insert(const Key& key, int action);

  /// Drops every entry in every shard.
  void clear();

 private:
  struct KeyHash {
    std::uint64_t operator()(const Key& key) const {
      return TranspositionCache::hash_key(key);
    }
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<Key, int, KeyHash> entries;
    /// Insertion order for per-shard FIFO eviction.
    std::deque<Key> order;
  };

  Shard& shard_for(const Key& key) const {
    return shards_[TranspositionCache::hash_key(key) & shard_mask_];
  }

  std::size_t capacity_;
  std::size_t shard_capacity_;
  std::uint64_t shard_mask_;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace spear
