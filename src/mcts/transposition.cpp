#include "mcts/transposition.h"

namespace spear {

std::uint64_t TranspositionCache::hash_key(const Key& key) {
  // splitmix64 finalizer folded over the words; seeded with the length so
  // prefixes of longer keys do not collide trivially.
  std::uint64_t h = 0x9e3779b97f4a7c15ULL * (key.size() + 1);
  for (std::uint64_t word : key) {
    std::uint64_t z = h + word + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    h = z ^ (z >> 31);
  }
  return h;
}

const TranspositionCache::Priors* TranspositionCache::find(
    const Key& key) const {
  if (capacity_ == 0) return nullptr;
  const auto it = entries_.find(key);
  return it != entries_.end() ? &it->second : nullptr;
}

void TranspositionCache::insert(const Key& key, Priors priors) {
  if (capacity_ == 0) return;
  if (entries_.count(key) != 0) return;
  while (entries_.size() >= capacity_) {
    entries_.erase(order_.front());
    order_.pop_front();
  }
  order_.push_back(key);
  entries_.emplace(key, std::move(priors));
}

void TranspositionCache::clear() {
  entries_.clear();
  order_.clear();
}

const int* ActionCache::find(const Key& key) const {
  if (capacity_ == 0) return nullptr;
  const auto it = entries_.find(key);
  return it != entries_.end() ? &it->second : nullptr;
}

void ActionCache::insert(const Key& key, int action) {
  if (capacity_ == 0) return;
  if (entries_.count(key) != 0) return;
  while (entries_.size() >= capacity_) {
    entries_.erase(order_.front());
    order_.pop_front();
  }
  order_.push_back(key);
  entries_.emplace(key, action);
}

void ActionCache::clear() {
  entries_.clear();
  order_.clear();
}

SharedActionCache::SharedActionCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity) {
  std::size_t n = 1;
  while (n < shards) n <<= 1;
  shard_mask_ = n - 1;
  shards_ = std::make_unique<Shard[]>(n);
  // Ceil split so the shard capacities sum to >= capacity; capacity 0
  // disables every shard (find always misses, insert is a no-op).
  shard_capacity_ = capacity == 0 ? 0 : (capacity + n - 1) / n;
}

std::size_t SharedActionCache::size() const {
  std::size_t total = 0;
  for (std::uint64_t s = 0; s <= shard_mask_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mutex);
    total += shards_[s].entries.size();
  }
  return total;
}

bool SharedActionCache::find(const Key& key, int* action) const {
  if (capacity_ == 0) return false;
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return false;
  *action = it->second;
  return true;
}

void SharedActionCache::insert(const Key& key, int action) {
  if (capacity_ == 0) return;
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.entries.count(key) != 0) return;
  while (shard.entries.size() >= shard_capacity_) {
    shard.entries.erase(shard.order.front());
    shard.order.pop_front();
  }
  shard.order.push_back(key);
  shard.entries.emplace(key, action);
}

void SharedActionCache::clear() {
  for (std::uint64_t s = 0; s <= shard_mask_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mutex);
    shards_[s].entries.clear();
    shards_[s].order.clear();
  }
}

}  // namespace spear
