#include "mcts/transposition.h"

namespace spear {

std::uint64_t TranspositionCache::hash_key(const Key& key) {
  // splitmix64 finalizer folded over the words; seeded with the length so
  // prefixes of longer keys do not collide trivially.
  std::uint64_t h = 0x9e3779b97f4a7c15ULL * (key.size() + 1);
  for (std::uint64_t word : key) {
    std::uint64_t z = h + word + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    h = z ^ (z >> 31);
  }
  return h;
}

const TranspositionCache::Priors* TranspositionCache::find(
    const Key& key) const {
  if (capacity_ == 0) return nullptr;
  const auto it = entries_.find(key);
  return it != entries_.end() ? &it->second : nullptr;
}

void TranspositionCache::insert(const Key& key, Priors priors) {
  if (capacity_ == 0) return;
  if (entries_.count(key) != 0) return;
  while (entries_.size() >= capacity_) {
    entries_.erase(order_.front());
    order_.pop_front();
  }
  order_.push_back(key);
  entries_.emplace(key, std::move(priors));
}

void TranspositionCache::clear() {
  entries_.clear();
  order_.clear();
}

const int* ActionCache::find(const Key& key) const {
  if (capacity_ == 0) return nullptr;
  const auto it = entries_.find(key);
  return it != entries_.end() ? &it->second : nullptr;
}

void ActionCache::insert(const Key& key, int action) {
  if (capacity_ == 0) return;
  if (entries_.count(key) != 0) return;
  while (entries_.size() >= capacity_) {
    entries_.erase(order_.front());
    order_.pop_front();
  }
  order_.push_back(key);
  entries_.emplace(key, action);
}

void ActionCache::clear() {
  entries_.clear();
  order_.clear();
}

}  // namespace spear
