#include "mcts/mcts.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/obs.h"

namespace spear {

namespace {

/// Applies an env-level action, processing to the next completion for the
/// process action (the paper's depth-minimizing adaptation).
void apply_action(SchedulingEnv& env, int action) {
  if (action == SchedulingEnv::kProcessAction) {
    env.process_to_next_finish();
  } else {
    env.step(action);
  }
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Independent deterministic RNG stream for one (decision, worker) pair.
/// Two SplitMix64 passes decorrelate nearby decision/worker indices, so
/// worker streams do not overlap run-to-run or with the serial stream.
std::uint64_t worker_stream_seed(std::uint64_t seed, std::uint64_t decision,
                                 std::uint64_t worker) {
  SplitMix64 outer(seed ^ (decision * 0x9e3779b97f4a7c15ULL));
  SplitMix64 inner(outer.next() ^ (worker + 1));
  return inner.next();
}

/// Independent deterministic RNG stream for one (decision, iteration) slot
/// of the leaf-parallel search.  Keyed by the GLOBAL iteration index, not
/// the worker id, so a slot's rollout stream is the same no matter how
/// slots are partitioned across workers; the salt keeps the streams
/// disjoint from the root-parallel worker streams.
std::uint64_t leaf_stream_seed(std::uint64_t seed, std::uint64_t decision,
                               std::uint64_t iteration) {
  SplitMix64 outer(seed ^ 0x1eafc0de00000000ULL ^
                   (decision * 0x9e3779b97f4a7c15ULL));
  SplitMix64 inner(outer.next() ^ (iteration + 1));
  return inner.next();
}

/// One in-flight descent of a leaf-parallel evaluator tick (DESIGN.md §11).
/// The coordinator fills the descent fields under virtual loss; a worker
/// thread fills the child/rollout results (each worker owns a disjoint
/// contiguous slot range, so jobs are written race-free); the coordinator
/// consumes everything at backup, in slot order.
struct LeafJob {
  enum class Kind {
    kExpand,    ///< pop a reserved untried action of `node` and expand it
    kRollout,   ///< re-rollout `node` (all its actions are in flight)
    kTerminal,  ///< revisit of a terminal node (value known immediately)
  };
  Kind kind = Kind::kTerminal;
  NodeId node = kNoNode;
  int action = 0;            ///< kExpand: the reserved untried action
  std::vector<NodeId> path;  ///< nodes holding virtual loss (root..node)

  // Worker-filled results.
  std::optional<SchedulingEnv> child;  ///< kExpand: the stepped child state
  bool aborted = false;
  bool terminal = false;
  double value = 0.0;
  TranspositionCache::Key key;  ///< canonical key (nonterminal kExpand)

  // Per-job telemetry, folded into Stats at backup in slot order so the
  // totals are independent of the worker partition.
  std::int64_t env_copies = 0;
  std::int64_t rollouts = 0;
  std::int64_t fault_failures = 0;
  std::int64_t fault_retries = 0;
  std::int64_t fault_aborts = 0;

  // Evaluation-queue bookkeeping (coordinator side).
  std::vector<std::pair<int, double>> priors;  ///< new child's ordering
  std::chrono::steady_clock::time_point enqueued;  ///< obs: queue wait
};

/// Merged per-action root statistics for root-parallel search.
struct RootActionStat {
  int action = 0;
  std::int64_t visits = 0;
  double max_value = -std::numeric_limits<double>::infinity();
  double sum_value = 0.0;

  double mean_value() const {
    return visits > 0 ? sum_value / static_cast<double>(visits) : 0.0;
  }
};

/// Constructs every candidate child of `parent` up front and scores all
/// non-terminal ones with ONE fused guide evaluation (DESIGN.md §10).
/// prepared[i] corresponds to untried[i]; expansion pops both in lockstep.
/// Environment copies and fault deltas are NOT counted here — the expansion
/// pop accounts for them, so Stats match the lazy path exactly.
std::vector<PreparedChild> prepare_children(
    const SchedulingEnv& parent,
    const std::vector<std::pair<int, double>>& untried, DecisionPolicy& guide,
    MctsScheduler::Stats& stats) {
  std::vector<PreparedChild> out;
  out.reserve(untried.size());
  for (const auto& [action, weight] : untried) {
    PreparedChild pc(action, parent);
    const EnvFaultStats pre = pc.state.fault_stats();
    try {
      apply_action(pc.state, action);
    } catch (const JobAbortedError&) {
      pc.aborted = true;
    }
    pc.fault_failures = pc.state.fault_stats().failures - pre.failures;
    pc.fault_retries = pc.state.fault_stats().retries - pre.retries;
    pc.terminal = pc.aborted || pc.state.done();
    out.push_back(std::move(pc));
  }
  std::vector<const SchedulingEnv*> pending;
  pending.reserve(out.size());
  for (const PreparedChild& pc : out) {
    if (!pc.terminal) pending.push_back(&pc.state);
  }
  if (!pending.empty()) {
    auto lists = guide.action_weights_batch(pending.data(), pending.size());
    std::size_t next = 0;
    for (PreparedChild& pc : out) {
      if (!pc.terminal) pc.untried = std::move(lists[next++]);
    }
    ++stats.batched_evals;
    stats.batched_rows += static_cast<std::int64_t>(pending.size());
  }
  return out;
}

}  // namespace

Time greedy_makespan_estimate(const SchedulingEnv& env) {
  HeuristicDecisionPolicy greedy;
  Rng unused(0);  // HeuristicDecisionPolicy::pick is deterministic
  SchedulingEnv copy = env;
  try {
    while (!copy.done()) {
      apply_action(copy, greedy.pick(copy, unused));
    }
  } catch (const JobAbortedError&) {
    // Fault mode: the greedy probe aborted — any positive scale works.
    return env.dag().total_runtime() + 1;
  }
  return copy.makespan();
}

MctsScheduler::MctsScheduler(MctsOptions options,
                             std::shared_ptr<DecisionPolicy> guide)
    : options_(std::move(options)), guide_(std::move(guide)) {
  if (options_.initial_budget <= 0 || options_.min_budget <= 0) {
    throw std::invalid_argument("MctsScheduler: budgets must be positive");
  }
  if (options_.exploration_scale < 0.0) {
    throw std::invalid_argument(
        "MctsScheduler: exploration_scale must be non-negative");
  }
  if (options_.num_threads < 1) {
    throw std::invalid_argument(
        "MctsScheduler: num_threads must be at least 1");
  }
  if (options_.time_budget_ms < 0) {
    throw std::invalid_argument(
        "MctsScheduler: time_budget_ms must be non-negative");
  }
  if (options_.leaf_batch_size < 1) {
    throw std::invalid_argument(
        "MctsScheduler: leaf_batch_size must be at least 1");
  }
  if (!guide_) {
    guide_ = std::make_shared<RandomDecisionPolicy>();
  }
  if (!options_.fallback) {
    options_.fallback = std::make_shared<HeuristicDecisionPolicy>();
  }
}

void MctsScheduler::set_anytime_budgets(std::int64_t initial_budget,
                                        std::int64_t min_budget,
                                        std::int64_t time_budget_ms) {
  if (initial_budget <= 0 || min_budget <= 0) {
    throw std::invalid_argument("MctsScheduler: budgets must be positive");
  }
  if (time_budget_ms < 0) {
    throw std::invalid_argument(
        "MctsScheduler: time_budget_ms must be non-negative");
  }
  options_.initial_budget = initial_budget;
  options_.min_budget = min_budget;
  options_.time_budget_ms = time_budget_ms;
}

double MctsScheduler::search_once(SearchTree& tree, DecisionPolicy& guide,
                                  Rng& rng, double exploration_c,
                                  Stats& stats) {
  // --- Selection: descend while fully expanded. ---
  NodeId current = tree.root();
  while (true) {
    SearchNode& n = tree.node(current);
    if (n.terminal || !n.untried.empty() || n.children.empty()) break;
    NodeId best = kNoNode;
    double best_score = -std::numeric_limits<double>::infinity();
    double best_mean = -std::numeric_limits<double>::infinity();
    const double log_n =
        std::log(static_cast<double>(std::max<std::int64_t>(n.visits, 1)));
    for (NodeId child_id : n.children) {
      const SearchNode& child = tree.node(child_id);
      const double explore =
          exploration_c *
          std::sqrt(log_n / static_cast<double>(std::max<std::int64_t>(
                                child.visits, 1)));
      const double exploit =
          options_.max_backprop ? child.max_value : child.mean_value();
      const double score = exploit + explore;  // Eq. 5
      const double mean = child.mean_value();
      if (score > best_score ||
          (score == best_score && mean > best_mean)) {
        best_score = score;
        best_mean = mean;
        best = child_id;
      }
    }
    current = best;
  }

  // --- Expansion: try the most promising untried action (the guide
  // pre-orders untried, so the front is the best candidate). ---
  SearchNode& selected = tree.node(current);
  if (!selected.terminal && !selected.untried.empty()) {
    NodeId child_id;
    if (selected.prepared_ready && !selected.prepared.empty()) {
      // Batched fast path (DESIGN.md §10): the child state and its guide
      // ordering were precomputed by one fused batch evaluation.  All
      // accounting happens here, at pop time, so Stats are identical to
      // the lazy path below (unpopped speculation is never counted).
      PreparedChild pc = std::move(selected.prepared.front());
      selected.prepared.erase(selected.prepared.begin());
      selected.untried.erase(selected.untried.begin());
      ++stats.env_copies;
      if (options_.faults) {
        stats.search_failures += pc.fault_failures;
        stats.search_retries += pc.fault_retries;
        if (pc.aborted) ++stats.search_aborts;
      }
      const int action = pc.action;
      const bool aborted = pc.aborted;
      const bool terminal = pc.terminal;
      auto child_untried = std::move(pc.untried);
      child_id = tree.add_child(current, action, std::move(pc.state));
      SearchNode& child = tree.node(child_id);
      child.aborted = aborted;
      child.terminal = terminal;
      child.untried = std::move(child_untried);
    } else {
      const int action = selected.untried.front().first;
      selected.untried.erase(selected.untried.begin());
      SchedulingEnv child_state = selected.state;
      ++stats.env_copies;
      const EnvFaultStats pre_expand = child_state.fault_stats();
      bool aborted = false;
      try {
        apply_action(child_state, action);
      } catch (const JobAbortedError&) {
        // Fault mode: this action path exhausts a retry budget.  Keep the
        // node (with its fixed penalty) so the search learns to avoid it.
        aborted = true;
      }
      if (options_.faults) {
        // Speculative fault telemetry: counted into THIS call's stats
        // object, so parallel workers accumulate privately and merge later.
        stats.search_failures +=
            child_state.fault_stats().failures - pre_expand.failures;
        stats.search_retries +=
            child_state.fault_stats().retries - pre_expand.retries;
        if (aborted) ++stats.search_aborts;
      }
      child_id = tree.add_child(current, action, std::move(child_state));
      SearchNode& child = tree.node(child_id);
      child.aborted = aborted;
      child.terminal = aborted || child.state.done();
      if (!child.terminal) {
        child.untried = guide.action_weights(child.state);
      }
    }
    current = child_id;
    ++stats.nodes_expanded;
  }
  ++stats.iterations;

  // --- Simulation: rollout to termination with the guide policy. ---
  double value;
  const SearchNode& leaf = tree.node(current);
  if (leaf.aborted) {
    value = abort_value_;
  } else if (leaf.terminal) {
    value = -static_cast<double>(leaf.state.makespan());
  } else {
    SchedulingEnv rollout = leaf.state;
    ++stats.env_copies;
    const EnvFaultStats pre_rollout = rollout.fault_stats();
    try {
      while (!rollout.done()) {
        apply_action(rollout, guide.pick(rollout, rng));
      }
      value = -static_cast<double>(rollout.makespan());
    } catch (const JobAbortedError&) {
      value = abort_value_;  // penalize the abort, never kill the search
      if (options_.faults) ++stats.search_aborts;
    }
    if (options_.faults) {
      stats.search_failures +=
          rollout.fault_stats().failures - pre_rollout.failures;
      stats.search_retries +=
          rollout.fault_stats().retries - pre_rollout.retries;
    }
    ++stats.rollouts;
  }

  // --- Backpropagation (max + mean, §III-C). ---
  tree.backpropagate(current, value);
  return value;
}

SearchTree MctsScheduler::make_tree(const SchedulingEnv& env,
                                    DecisionPolicy& guide) {
  SearchTree tree(env);
  SearchNode& root = tree.node(tree.root());
  root.untried = guide.action_weights(env);
  if (root.untried.empty()) {
    throw std::logic_error("MctsScheduler: no valid action at decision root");
  }
  return tree;
}

void MctsScheduler::maybe_prepare_root(SearchTree& tree) {
  SearchNode& root = tree.node(tree.root());
  if (!options_.batch_expansion || !guide_->supports_batch_eval()) return;
  if (root.prepared_ready || root.terminal || root.untried.empty()) return;
  root.prepared = prepare_children(root.state, root.untried, *guide_, stats_);
  root.prepared_ready = true;
}

NodeId MctsScheduler::decide(SearchTree& tree, std::int64_t budget, Rng& rng,
                             double exploration_c, const Deadline& deadline,
                             bool& ran_any) {
  ran_any = false;
  tree.reserve(tree.size() + static_cast<std::size_t>(budget));
  for (std::int64_t i = 0; i < budget; ++i) {
    if (deadline_reached(deadline)) {
      ++stats_.deadline_cutoffs;
      break;
    }
    search_once(tree, *guide_, rng, exploration_c, stats_);
    ran_any = true;
  }
  return best_root_child(tree);
}

NodeId MctsScheduler::best_root_child(const SearchTree& tree) const {
  // Final move: pure exploitation — best max value, mean as tiebreaker
  // (or mean only under the ablation).
  const SearchNode& final_root = tree.node(tree.root());
  NodeId best = kNoNode;
  double best_exploit = -std::numeric_limits<double>::infinity();
  double best_mean = -std::numeric_limits<double>::infinity();
  for (NodeId child_id : final_root.children) {
    const SearchNode& child = tree.node(child_id);
    const double exploit =
        options_.max_backprop ? child.max_value : child.mean_value();
    if (exploit > best_exploit ||
        (exploit == best_exploit && child.mean_value() > best_mean)) {
      best_exploit = exploit;
      best_mean = child.mean_value();
      best = child_id;
    }
  }
  return best;
}

NodeId MctsScheduler::decide_leaf(SearchTree& tree, std::int64_t budget,
                                  std::int64_t decision_depth,
                                  double exploration_c,
                                  const Deadline& deadline, bool& ran_any) {
  ran_any = false;
  // At most one node per iteration: pre-reserve so mid-tick add_child never
  // reallocates the arena while descents hold node references.
  tree.reserve(tree.size() + static_cast<std::size_t>(budget));
  const auto workers = static_cast<std::int64_t>(worker_guides_.size());
  // Absolute, worker-count-independent tick size (see MctsOptions): the
  // same seed and budget descend the same tree no matter how many workers
  // split the slots.
  const std::int64_t per_tick =
      std::max<std::int64_t>(options_.leaf_batch_size, 1);

  // One sequential descent under virtual loss; returns the reserved job.
  // Descents run on the coordinator thread — selection is a few float
  // compares per level, negligible next to the network forwards the tick
  // parallelizes — which is what keeps leaf mode deterministic: slot i's
  // job depends only on the i-1 descents before it, never on OS timing.
  const auto descend = [&]() -> LeafJob {
    LeafJob job;
    NodeId current = tree.root();
    bool collided = false;
    while (true) {
      SearchNode& n = tree.node(current);
      job.path.push_back(current);
      if (current != tree.root() && n.vloss > 0) collided = true;
      if (n.terminal) {
        job.kind = LeafJob::Kind::kTerminal;
        job.node = current;
        job.value = n.aborted ? abort_value_
                              : -static_cast<double>(n.state.makespan());
        break;
      }
      if (!n.untried.empty()) {
        // Reserve the most promising untried action: pop it NOW so the
        // next descent tries the next action instead of duplicating this
        // one; the child node itself is created at backup.
        job.kind = LeafJob::Kind::kExpand;
        job.node = current;
        job.action = n.untried.front().first;
        n.untried.erase(n.untried.begin());
        break;
      }
      if (n.children.empty()) {
        // Every action of this node is already in flight in this tick:
        // contribute another rollout from the node itself.
        job.kind = LeafJob::Kind::kRollout;
        job.node = current;
        break;
      }
      // UCB (Eq. 5) with virtual loss: in-flight descents inflate visit
      // counts (their value contribution is still unknown), steering
      // concurrent descents toward unexplored siblings.  The exploitation
      // term is untouched — a subtractive penalty would need tuning
      // against the negative-makespan value scale, whereas visit
      // inflation is scale-free.
      NodeId best = kNoNode;
      double best_score = -std::numeric_limits<double>::infinity();
      double best_mean = -std::numeric_limits<double>::infinity();
      const double log_n = std::log(static_cast<double>(
          std::max<std::int64_t>(n.visits + n.vloss, 1)));
      for (NodeId child_id : n.children) {
        const SearchNode& child = tree.node(child_id);
        const double explore =
            exploration_c *
            std::sqrt(log_n /
                      static_cast<double>(std::max<std::int64_t>(
                          child.visits + child.vloss, 1)));
        const double exploit =
            options_.max_backprop ? child.max_value : child.mean_value();
        const double score = exploit + explore;
        const double mean = child.mean_value();
        if (score > best_score || (score == best_score && mean > best_mean)) {
          best_score = score;
          best_mean = mean;
          best = child_id;
        }
      }
      current = best;
    }
    if (collided) ++stats_.vloss_collisions;
    for (NodeId id : job.path) ++tree.node(id).vloss;
    return job;
  };

  std::int64_t completed = 0;
  while (completed < budget) {
    if (deadline_reached(deadline)) {
      ++stats_.deadline_cutoffs;
      break;
    }
    const std::int64_t slots = std::min(per_tick, budget - completed);
    obs::ScopedTimer tick_span("mcts.leaf.tick", "mcts");
    if (tick_span.active()) {
      tick_span.set_args("\"decision\":" + std::to_string(decision_depth) +
                         ",\"slots\":" + std::to_string(slots));
    }

    // --- Descend: reserve one leaf per slot under virtual loss. ---
    std::vector<LeafJob> jobs;
    jobs.reserve(static_cast<std::size_t>(slots));
    for (std::int64_t s = 0; s < slots; ++s) jobs.push_back(descend());
    // Per-slot rollout RNG streams, keyed by the global iteration index so
    // they do not depend on the worker partition.
    std::vector<Rng> rngs;
    rngs.reserve(jobs.size());
    for (std::int64_t s = 0; s < slots; ++s) {
      rngs.emplace_back(leaf_stream_seed(
          options_.seed, static_cast<std::uint64_t>(decision_depth),
          static_cast<std::uint64_t>(completed + s)));
    }

    // --- Workers: construct child states, then advance all of their
    // rollouts in lockstep so batch-capable guides fuse one forward per
    // rollout STEP instead of one per rollout state. ---
    const auto worker_body =
        [&](std::size_t w) {
          const auto lo = static_cast<std::size_t>(
              slots * static_cast<std::int64_t>(w) / workers);
          const auto hi = static_cast<std::size_t>(
              slots * (static_cast<std::int64_t>(w) + 1) / workers);
          if (lo >= hi) return;
          DecisionPolicy& guide = *worker_guides_[w];

          struct ActiveRollout {
            std::size_t slot;
            SchedulingEnv env;
            EnvFaultStats pre;
          };
          std::vector<ActiveRollout> active;
          active.reserve(hi - lo);
          for (std::size_t s = lo; s < hi; ++s) {
            LeafJob& job = jobs[s];
            if (job.kind == LeafJob::Kind::kTerminal) continue;
            const SearchNode& node = tree.node(job.node);
            if (job.kind == LeafJob::Kind::kRollout) {
              ++job.env_copies;
              active.push_back({s, node.state, node.state.fault_stats()});
              continue;
            }
            SchedulingEnv child = node.state;
            ++job.env_copies;
            const EnvFaultStats pre = child.fault_stats();
            try {
              apply_action(child, job.action);
            } catch (const JobAbortedError&) {
              job.aborted = true;
            }
            job.fault_failures = child.fault_stats().failures - pre.failures;
            job.fault_retries = child.fault_stats().retries - pre.retries;
            if (job.aborted) ++job.fault_aborts;
            job.terminal = job.aborted || child.done();
            if (job.aborted) {
              job.value = abort_value_;
            } else if (job.terminal) {
              job.value = -static_cast<double>(child.makespan());
            } else {
              child.append_canonical_key(job.key);
              if (obs::enabled()) {
                job.enqueued = std::chrono::steady_clock::now();
              }
              ++job.env_copies;
              active.push_back({s, child, child.fault_stats()});
            }
            job.child.emplace(std::move(child));
          }

          std::vector<const SchedulingEnv*> envs;
          std::vector<Rng*> rng_ptrs;
          std::vector<int> picks;
          while (!active.empty()) {
            envs.clear();
            rng_ptrs.clear();
            for (ActiveRollout& a : active) {
              envs.push_back(&a.env);
              rng_ptrs.push_back(&rngs[a.slot]);
            }
            picks.resize(active.size());
            guide.pick_batch(envs.data(), active.size(), rng_ptrs.data(),
                             picks.data());
            std::size_t kept = 0;
            for (std::size_t i = 0; i < active.size(); ++i) {
              ActiveRollout& a = active[i];
              LeafJob& job = jobs[a.slot];
              bool finished = false;
              try {
                apply_action(a.env, picks[i]);
                if (a.env.done()) {
                  job.value = -static_cast<double>(a.env.makespan());
                  finished = true;
                }
              } catch (const JobAbortedError&) {
                job.value = abort_value_;
                ++job.fault_aborts;
                finished = true;
              }
              if (finished) {
                job.fault_failures +=
                    a.env.fault_stats().failures - a.pre.failures;
                job.fault_retries +=
                    a.env.fault_stats().retries - a.pre.retries;
                ++job.rollouts;
              } else {
                if (kept != i) active[kept] = std::move(active[i]);
                ++kept;
              }
            }
            active.erase(active.begin() + static_cast<std::ptrdiff_t>(kept),
                         active.end());
          }
        };
    // One worker runs the body inline: a one-lane pool dispatch would pay a
    // submit/wake/join round trip per tick for zero parallelism — a
    // measurable leaf-throughput tax at num_threads == 1 (and the pool is
    // not even built then, see ensure_parallel_workers).
    if (workers == 1) {
      worker_body(0);
    } else {
      pool_->parallel_for(static_cast<std::size_t>(workers), worker_body);
    }

    // --- Evaluator: drain the queue of new leaf states through the
    // transposition cache, then ONE fused guide forward for the misses. ---
    {
      obs::ScopedTimer drain_span("mcts.evaluator.drain", "mcts");
      const bool obs_on = drain_span.active();
      const auto drain_start = obs_on ? std::chrono::steady_clock::now()
                                      : std::chrono::steady_clock::time_point();
      std::vector<const SchedulingEnv*> pending;
      std::vector<LeafJob*> pending_jobs;
      for (LeafJob& job : jobs) {
        if (job.kind != LeafJob::Kind::kExpand || job.terminal) continue;
        if (obs_on) {
          obs::observe(
              "mcts.evaluator.queue_wait_ms",
              std::chrono::duration<double, std::milli>(drain_start -
                                                        job.enqueued)
                  .count());
        }
        if (const TranspositionCache::Priors* hit =
                transpositions_->find(job.key)) {
          job.priors = *hit;  // copy: inserts below may evict the entry
          ++stats_.tt_hits;
        } else {
          // A disabled cache (capacity 0) is not "all misses": the probe
          // counters only track a cache that is actually in play.
          if (transpositions_->capacity() > 0) ++stats_.tt_misses;
          pending.push_back(&*job.child);
          pending_jobs.push_back(&job);
        }
      }
      if (!pending.empty()) {
        auto lists =
            guide_->action_weights_batch(pending.data(), pending.size());
        ++stats_.batched_evals;
        stats_.batched_rows += static_cast<std::int64_t>(pending.size());
        if (obs_on) {
          obs::observe("mcts.evaluator.batch_rows",
                       static_cast<double>(pending.size()));
        }
        for (std::size_t i = 0; i < pending_jobs.size(); ++i) {
          transpositions_->insert(pending_jobs[i]->key, lists[i]);
          pending_jobs[i]->priors = std::move(lists[i]);
        }
      }
    }

    // --- Backup, in slot order (the deterministic tie-breaking order),
    // releasing each descent's virtual loss. ---
    for (LeafJob& job : jobs) {
      NodeId backprop_from = job.node;
      if (job.kind == LeafJob::Kind::kExpand) {
        const NodeId child_id =
            tree.add_child(job.node, job.action, std::move(*job.child));
        SearchNode& child = tree.node(child_id);
        child.aborted = job.aborted;
        child.terminal = job.terminal;
        if (!job.terminal) child.untried = std::move(job.priors);
        ++stats_.nodes_expanded;
        backprop_from = child_id;
      }
      stats_.env_copies += job.env_copies;
      stats_.rollouts += job.rollouts;
      if (options_.faults) {
        stats_.search_failures += job.fault_failures;
        stats_.search_retries += job.fault_retries;
        stats_.search_aborts += job.fault_aborts;
      }
      ++stats_.iterations;
      tree.backpropagate(backprop_from, job.value);
      for (NodeId id : job.path) --tree.node(id).vloss;
    }

    ++stats_.leaf_ticks;
    completed += slots;
    ran_any = true;
  }
  return best_root_child(tree);
}

bool MctsScheduler::ensure_parallel_workers() {
  const auto n = static_cast<std::size_t>(options_.num_threads);
  if (worker_guides_.size() != n) {
    worker_guides_.clear();
    worker_guides_.reserve(n);
    for (std::size_t w = 0; w < n; ++w) {
      auto clone = guide_->clone();
      if (!clone) {
        // Uncloneable custom guide: stay serial rather than race on it.
        worker_guides_.clear();
        return false;
      }
      worker_guides_.push_back(std::move(clone));
    }
  }
  if (n > 1) {
    if (!pool_ || pool_->size() != n) {
      pool_ = std::make_unique<ThreadPool>(n);
    }
  } else {
    // Single worker: every tick runs inline on the coordinator, so a pool
    // would only add idle threads and a per-tick dispatch round trip.
    pool_.reset();
  }
  return true;
}

std::optional<int> MctsScheduler::decide_parallel(
    const SchedulingEnv& env,
    const std::vector<std::pair<int, double>>& untried, std::int64_t budget,
    std::int64_t decision_depth, double exploration_c,
    const Deadline& deadline) {
  const auto workers = static_cast<std::int64_t>(worker_guides_.size());

  // Batched expansion: prepare the root's children ONCE on this thread
  // (one fused network forward for all of them) and hand every worker a
  // copy — instead of each worker re-stepping and re-scoring the same k
  // children with k single-row forwards.
  std::vector<PreparedChild> prepared_template;
  bool use_prepared = false;
  if (options_.batch_expansion && guide_->supports_batch_eval()) {
    prepared_template = prepare_children(env, untried, *guide_, stats_);
    use_prepared = true;
  }
  struct WorkerResult {
    std::vector<RootActionStat> children;
    Stats stats;
    bool truncated = false;
  };
  std::vector<WorkerResult> results(static_cast<std::size_t>(workers));

  pool_->parallel_for(
      static_cast<std::size_t>(workers), [&](std::size_t w) {
        const auto wi = static_cast<std::int64_t>(w);
        // Equal split, the first (budget % workers) workers taking the
        // remainder — every worker's share is fixed by (budget, N) alone.
        const std::int64_t share =
            budget / workers + (wi < budget % workers ? 1 : 0);
        if (share <= 0) return;
        obs::ScopedTimer worker_span("mcts.worker", "mcts");
        if (worker_span.active()) {
          worker_span.set_args("\"worker\":" + std::to_string(w) +
                               ",\"decision\":" +
                               std::to_string(decision_depth) +
                               ",\"share\":" + std::to_string(share));
        }
        DecisionPolicy& guide = *worker_guides_[w];
        Rng rng(worker_stream_seed(
            options_.seed, static_cast<std::uint64_t>(decision_depth), w));
        WorkerResult& out = results[w];
        // The root ordering is shared (computed once by the caller) rather
        // than recomputed per worker — one network forward saved per
        // worker for guided search, bit-identical ordering either way.
        SearchTree tree(env);
        tree.reserve(static_cast<std::size_t>(share) + 1);
        {
          SearchNode& root = tree.node(tree.root());
          root.untried = untried;
          if (use_prepared) {
            root.prepared = prepared_template;  // private per-worker copy
            root.prepared_ready = true;
          }
        }
        for (std::int64_t i = 0; i < share; ++i) {
          if (deadline_reached(deadline)) {
            out.truncated = true;
            break;
          }
          search_once(tree, guide, rng, exploration_c, out.stats);
        }
        const SearchNode& root = tree.node(tree.root());
        out.children.reserve(root.children.size());
        for (NodeId child_id : root.children) {
          const SearchNode& child = tree.node(child_id);
          out.children.push_back({child.action_from_parent, child.visits,
                                  child.max_value, child.sum_value});
        }
      });

  // Merge root statistics in worker order — deterministic for a fixed
  // thread count no matter how the OS interleaved the workers.  Every
  // per-worker counter is folded in here; a worker-side Stats field that
  // this loop missed would silently drop telemetry at num_threads > 1
  // (the pre-observability bug), so the parity test pins the invariants.
  std::vector<RootActionStat> merged;
  bool truncated = false;
  for (const WorkerResult& result : results) {
    stats_.iterations += result.stats.iterations;
    stats_.rollouts += result.stats.rollouts;
    stats_.nodes_expanded += result.stats.nodes_expanded;
    stats_.env_copies += result.stats.env_copies;
    stats_.search_failures += result.stats.search_failures;
    stats_.search_retries += result.stats.search_retries;
    stats_.search_aborts += result.stats.search_aborts;
    stats_.batched_evals += result.stats.batched_evals;
    stats_.batched_rows += result.stats.batched_rows;
    truncated = truncated || result.truncated;
    for (const RootActionStat& child : result.children) {
      auto it = std::find_if(
          merged.begin(), merged.end(),
          [&](const RootActionStat& m) { return m.action == child.action; });
      if (it == merged.end()) {
        merged.push_back(child);
      } else {
        it->visits += child.visits;
        it->sum_value += child.sum_value;
        it->max_value = std::max(it->max_value, child.max_value);
      }
    }
  }
  if (truncated) ++stats_.deadline_cutoffs;  // once per truncated decision
  if (merged.empty()) return std::nullopt;

  // Same final-move rule as the serial search, on the merged statistics.
  const RootActionStat* best = nullptr;
  double best_exploit = -std::numeric_limits<double>::infinity();
  double best_mean = -std::numeric_limits<double>::infinity();
  for (const RootActionStat& child : merged) {
    const double exploit =
        options_.max_backprop ? child.max_value : child.mean_value();
    if (exploit > best_exploit ||
        (exploit == best_exploit && child.mean_value() > best_mean)) {
      best_exploit = exploit;
      best_mean = child.mean_value();
      best = &child;
    }
  }
  return best->action;
}

Schedule MctsScheduler::schedule(const Dag& dag,
                                 const ResourceVector& capacity) {
  EnvOptions env_options;
  env_options.max_ready = std::max<std::size_t>(dag.num_tasks(), 1);
  if (const auto* drl = dynamic_cast<const DrlDecisionPolicy*>(guide_.get())) {
    // The policy network can only see its featurizer's ready window (§V-A:
    // at most 15 ready tasks are fed to the network, the rest backlog).
    env_options.max_ready = drl->max_ready();
  }
  env_options.faults = options_.faults;
  env_options.retry = options_.retry;
  return schedule_env(
      SchedulingEnv(std::make_shared<Dag>(dag), capacity, env_options));
}

Schedule MctsScheduler::schedule_env(SchedulingEnv env) {
  stats_ = {};
  Rng rng(options_.seed);
  const Dag& dag = env.dag();

  obs::ScopedTimer schedule_span("mcts.schedule", "mcts");
  if (schedule_span.active()) {
    schedule_span.set_args("\"name\":\"" + options_.name + "\",\"tasks\":" +
                           std::to_string(dag.num_tasks()) + ",\"threads\":" +
                           std::to_string(options_.num_threads));
  }

  // Simulated trajectories that abort under the retry policy score strictly
  // worse than any completion: bound the worst completable makespan (every
  // attempt of every task straggler-stretched, every backoff fully served,
  // the whole capacity-loss horizon waited out) and go one past it.
  double worst = static_cast<double>(dag.total_runtime());
  if (options_.faults) {
    worst *= std::max(options_.faults->options().straggler_factor, 1.0) *
             static_cast<double>(options_.retry.max_retries + 1);
    worst += static_cast<double>(dag.num_tasks()) *
             static_cast<double>(options_.retry.max_retries) *
             static_cast<double>(options_.retry.backoff_cap);
    worst += static_cast<double>(options_.faults->options().loss_horizon);
  }
  abort_value_ = -(worst + 1.0);

  const double exploration_c =
      options_.exploration_scale *
      static_cast<double>(std::max<Time>(greedy_makespan_estimate(env), 1));

  // Leaf parallelism replaces the root-parallel split whenever selected —
  // even at num_threads == 1, where the shared-evaluator batching (not
  // thread scaling) is the win.  Both modes need cloneable guides; an
  // uncloneable custom guide falls back to the serial search.
  const bool leaf_mode =
      options_.search_mode == SearchMode::kLeaf && ensure_parallel_workers();
  const bool parallel =
      !leaf_mode && options_.num_threads > 1 && ensure_parallel_workers();
  if (leaf_mode) {
    if (!transpositions_ ||
        transpositions_->capacity() != options_.transposition_capacity) {
      transpositions_ = std::make_unique<TranspositionCache>(
          options_.transposition_capacity);
    }
    // Keys do not encode the DAG identity: never reuse entries across
    // schedule() calls.
    transpositions_->clear();
    // Arm the workers' rollout action caches (greedy guides only — the
    // calls are no-ops for sampling or cache-less guides).  Re-arming drops
    // stale entries and zeroes the hit/miss tallies.  At num_threads > 1
    // the workers share ONE cache: private per-worker caches miss
    // independently on the same rollout states, so total forwards GREW
    // with the worker count (the multi-thread throughput regression); hits
    // stay bit-identical either way (greedy picks are pure functions of
    // the state), only the hit/miss split becomes timing-dependent.
    if (worker_guides_.size() > 1 && options_.transposition_capacity > 0) {
      if (!shared_rollout_cache_ || shared_rollout_cache_->capacity() !=
                                        options_.transposition_capacity) {
        shared_rollout_cache_ = std::make_shared<SharedActionCache>(
            options_.transposition_capacity);
      }
      shared_rollout_cache_->clear();
      for (const auto& g : worker_guides_) {
        g->share_rollout_cache(shared_rollout_cache_);
      }
    } else {
      shared_rollout_cache_.reset();
      for (const auto& g : worker_guides_) {
        g->enable_rollout_cache(options_.transposition_capacity);
      }
    }
  }
  // Zero every guide's physical-forward tallies so the end-of-schedule fold
  // reports THIS schedule only (clones persist across schedule() calls).
  if (guide_) guide_->reset_forward_stats();
  for (const auto& g : worker_guides_) g->reset_forward_stats();

  // Anytime mode: every decision gets its own wall-clock deadline, started
  // BEFORE the root guide evaluation so an expensive guide counts against
  // the budget it actually consumes.
  const auto make_deadline = [this]() -> Deadline {
    if (options_.time_budget_ms <= 0) return std::nullopt;
    return std::chrono::steady_clock::now() +
           std::chrono::milliseconds(options_.time_budget_ms);
  };
  // Real-trajectory fault counters come from the ONE persistent env that
  // both the serial and the parallel path step; the speculative per-worker
  // counters (search_failures/search_retries/search_aborts) are aggregated
  // by the decide_parallel merge (serial search_once adds them directly).
  const auto record_fault_stats = [this, &env]() {
    if (!options_.faults) return;
    stats_.task_failures = env.fault_stats().failures;
    stats_.task_retries = env.fault_stats().retries;
  };
  // Worker rollout-cache tallies are folded ONCE per schedule() (each
  // worker accumulates across every decision); the per-worker sums are
  // deterministic for a fixed seed and worker count.
  const auto fold_rollout_cache_stats = [this, leaf_mode]() {
    if (!leaf_mode) return;
    for (const auto& g : worker_guides_) {
      stats_.rollout_cache_hits += g->rollout_cache_hits();
      stats_.rollout_cache_misses += g->rollout_cache_misses();
    }
  };
  // Physical forward telemetry: folded from EVERY guide that may have run
  // a private-weights kernel this schedule (the root guide plus the
  // parallel/leaf worker clones).  Counters were reset before the search
  // loop, so the fold is this schedule's tally exactly once.
  const auto fold_forward_stats = [this]() {
    const auto fold_one = [this](const DecisionPolicy& g) {
      stats_.guide_forwards += g.forward_calls();
      stats_.guide_forward_rows += g.forward_rows();
      const std::vector<std::int64_t>* hist = g.forward_hist();
      if (!hist) return;
      if (stats_.batch_rows_hist.size() < hist->size()) {
        stats_.batch_rows_hist.resize(hist->size(), 0);
      }
      for (std::size_t w = 0; w < hist->size(); ++w) {
        stats_.batch_rows_hist[w] += (*hist)[w];
      }
    };
    if (guide_) fold_one(*guide_);
    for (const auto& g : worker_guides_) fold_one(*g);
  };
  // One registry push per schedule() call — hot loops only touch stats_.
  const auto flush_metrics = [this]() {
    if (!obs::enabled()) return;
    obs::count("mcts.schedules");
    obs::count("mcts.decisions", stats_.decisions);
    obs::count("mcts.forced_decisions", stats_.forced_decisions);
    obs::count("mcts.iterations", stats_.iterations);
    obs::count("mcts.rollouts", stats_.rollouts);
    obs::count("mcts.nodes_expanded", stats_.nodes_expanded);
    obs::count("mcts.env_copies", stats_.env_copies);
    obs::count("mcts.deadline_cutoffs", stats_.deadline_cutoffs);
    obs::count("mcts.degradations", stats_.degradations);
    obs::count("mcts.task_failures", stats_.task_failures);
    obs::count("mcts.task_retries", stats_.task_retries);
    obs::count("mcts.search_failures", stats_.search_failures);
    obs::count("mcts.search_retries", stats_.search_retries);
    obs::count("mcts.search_aborts", stats_.search_aborts);
    obs::count("mcts.batched_evals", stats_.batched_evals);
    obs::count("mcts.batched_rows", stats_.batched_rows);
    obs::count("mcts.guide_forwards", stats_.guide_forwards);
    obs::count("mcts.guide_forward_rows", stats_.guide_forward_rows);
    obs::count("mcts.leaf_ticks", stats_.leaf_ticks);
    obs::count("mcts.tt_hits", stats_.tt_hits);
    obs::count("mcts.tt_misses", stats_.tt_misses);
    obs::count("mcts.vloss_collisions", stats_.vloss_collisions);
    obs::count("mcts.rollout_cache_hits", stats_.rollout_cache_hits);
    obs::count("mcts.rollout_cache_misses", stats_.rollout_cache_misses);
    obs::gauge("mcts.last_search_seconds", stats_.search_seconds);
  };

  std::optional<SearchTree> tree;
  std::int64_t depth = 1;  // 1-based decision depth d_i of Eq. 4
  try {
    while (!env.done()) {
      const Deadline deadline = make_deadline();
      if (parallel) {
        const auto untried = guide_->action_weights(env);
        if (untried.empty()) {
          throw std::logic_error(
              "MctsScheduler: no valid action at decision root");
        }
        if (untried.size() == 1) {
          // Forced move: skip the search entirely.
          apply_action(env, untried.front().first);
          ++stats_.forced_decisions;
        } else {
          const std::int64_t budget =
              options_.decay_budget
                  ? std::max(options_.initial_budget / depth,
                             options_.min_budget)
                  : options_.initial_budget;
          obs::ScopedTimer decision_span("mcts.decision", "mcts");
          if (decision_span.active()) {
            decision_span.set_args(
                "\"depth\":" + std::to_string(depth) + ",\"budget\":" +
                std::to_string(budget) + ",\"parallel\":true");
          }
          const auto start = std::chrono::steady_clock::now();
          const std::optional<int> action = decide_parallel(
              env, untried, budget, depth, exploration_c, deadline);
          stats_.search_seconds += seconds_since(start);
          decision_span.finish();
          if (action) {
            apply_action(env, *action);
          } else if (deadline) {
            // Anytime degradation: not one iteration finished anywhere
            // before the deadline — take the fallback heuristic's move.
            ++stats_.degradations;
            apply_action(env, options_.fallback->pick(env, rng));
          } else {
            // Budget below the worker count: fall back to the guide's top
            // choice, like the serial search.
            apply_action(env, untried.front().first);
          }
        }
        ++stats_.decisions;
        ++depth;
        continue;
      }

      if (!tree) tree.emplace(make_tree(env, *guide_));

      const SearchNode& root = tree->node(tree->root());
      if (root.untried.size() == 1 && root.children.empty()) {
        // Forced move: skip the search entirely.
        apply_action(env, root.untried.front().first);
        tree.reset();
        ++stats_.decisions;
        ++stats_.forced_decisions;
        ++depth;
        continue;
      }

      // Batched root preparation is a root-mode optimization: the leaf
      // descent pops `untried` without popping `prepared` in lockstep, and
      // its evaluator batches child scoring anyway.
      if (!leaf_mode) maybe_prepare_root(*tree);

      const std::int64_t budget =
          options_.decay_budget
              ? std::max(options_.initial_budget / depth, options_.min_budget)
              : options_.initial_budget;
      obs::ScopedTimer decision_span("mcts.decision", "mcts");
      if (decision_span.active()) {
        decision_span.set_args(
            "\"depth\":" + std::to_string(depth) + ",\"budget\":" +
            std::to_string(budget) +
            (leaf_mode ? ",\"mode\":\"leaf\"" : ",\"parallel\":false"));
      }
      const auto start = std::chrono::steady_clock::now();
      bool ran_any = false;
      const NodeId best =
          leaf_mode
              ? decide_leaf(*tree, budget, depth, exploration_c, deadline,
                            ran_any)
              : decide(*tree, budget, rng, exploration_c, deadline, ran_any);
      stats_.search_seconds += seconds_since(start);
      decision_span.finish();
      if (best == kNoNode) {
        if (deadline && !ran_any) {
          // Anytime degradation: the deadline expired before a single
          // iteration finished — take the fallback heuristic's move.
          ++stats_.degradations;
          apply_action(env, options_.fallback->pick(env, rng));
        } else {
          // Budget too small to expand anything: fall back to the guide's
          // top untried choice.
          apply_action(env, tree->node(tree->root()).untried.front().first);
        }
        tree.reset();
      } else {
        apply_action(env, tree->node(best).action_from_parent);
        const bool reuse =
            leaf_mode ? options_.leaf_tree_reuse : options_.reuse_tree;
        if (reuse) {
          tree = tree->reroot(best);
        } else {
          tree.reset();
        }
      }
      ++stats_.decisions;
      ++depth;
    }
  } catch (const JobAbortedError&) {
    // The REAL trajectory exhausted a retry budget: surface the stats the
    // caller will want in the error report, then let the abort propagate.
    record_fault_stats();
    fold_rollout_cache_stats();
    fold_forward_stats();
    if (obs::enabled()) obs::count("mcts.job_aborts");
    flush_metrics();
    throw;
  }
  record_fault_stats();
  fold_rollout_cache_stats();
  fold_forward_stats();
  flush_metrics();
  return env.cluster().schedule();
}

}  // namespace spear
