#include "mcts/mcts.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>

namespace spear {

namespace {

/// Applies an env-level action, processing to the next completion for the
/// process action (the paper's depth-minimizing adaptation).
void apply_action(SchedulingEnv& env, int action) {
  if (action == SchedulingEnv::kProcessAction) {
    env.process_to_next_finish();
  } else {
    env.step(action);
  }
}

}  // namespace

Time greedy_makespan_estimate(const SchedulingEnv& env) {
  HeuristicDecisionPolicy greedy;
  Rng unused(0);  // HeuristicDecisionPolicy::pick is deterministic
  SchedulingEnv copy = env;
  while (!copy.done()) {
    apply_action(copy, greedy.pick(copy, unused));
  }
  return copy.makespan();
}

MctsScheduler::MctsScheduler(MctsOptions options,
                             std::shared_ptr<DecisionPolicy> guide)
    : options_(std::move(options)), guide_(std::move(guide)) {
  if (options_.initial_budget <= 0 || options_.min_budget <= 0) {
    throw std::invalid_argument("MctsScheduler: budgets must be positive");
  }
  if (options_.exploration_scale < 0.0) {
    throw std::invalid_argument(
        "MctsScheduler: exploration_scale must be non-negative");
  }
  if (!guide_) {
    guide_ = std::make_shared<RandomDecisionPolicy>();
  }
}

double MctsScheduler::search_once(SearchTree& tree, Rng& rng,
                                  double exploration_c) {
  // --- Selection: descend while fully expanded. ---
  NodeId current = tree.root();
  while (true) {
    SearchNode& n = tree.node(current);
    if (n.terminal || !n.untried.empty() || n.children.empty()) break;
    NodeId best = kNoNode;
    double best_score = -std::numeric_limits<double>::infinity();
    double best_mean = -std::numeric_limits<double>::infinity();
    const double log_n =
        std::log(static_cast<double>(std::max<std::int64_t>(n.visits, 1)));
    for (NodeId child_id : n.children) {
      const SearchNode& child = tree.node(child_id);
      const double explore =
          exploration_c *
          std::sqrt(log_n / static_cast<double>(std::max<std::int64_t>(
                                child.visits, 1)));
      const double exploit =
          options_.max_backprop ? child.max_value : child.mean_value();
      const double score = exploit + explore;  // Eq. 5
      const double mean = child.mean_value();
      if (score > best_score ||
          (score == best_score && mean > best_mean)) {
        best_score = score;
        best_mean = mean;
        best = child_id;
      }
    }
    current = best;
  }

  // --- Expansion: try the most promising untried action. ---
  SearchNode& selected = tree.node(current);
  if (!selected.terminal && !selected.untried.empty()) {
    const int action = selected.untried.front().first;
    selected.untried.erase(selected.untried.begin());
    SchedulingEnv child_state = selected.state;
    apply_action(child_state, action);
    const NodeId child_id =
        tree.add_child(current, action, std::move(child_state));
    SearchNode& child = tree.node(child_id);
    child.terminal = child.state.done();
    if (!child.terminal) {
      child.untried = guide_->action_weights(child.state);
      std::stable_sort(
          child.untried.begin(), child.untried.end(),
          [](const auto& a, const auto& b) { return a.second > b.second; });
    }
    current = child_id;
  }
  ++stats_.iterations;

  // --- Simulation: rollout to termination with the guide policy. ---
  double value;
  const SearchNode& leaf = tree.node(current);
  if (leaf.terminal) {
    value = -static_cast<double>(leaf.state.makespan());
  } else {
    SchedulingEnv rollout = leaf.state;
    while (!rollout.done()) {
      apply_action(rollout, guide_->pick(rollout, rng));
    }
    value = -static_cast<double>(rollout.makespan());
    ++stats_.rollouts;
  }

  // --- Backpropagation (max + mean, §III-C). ---
  tree.backpropagate(current, value);
  return value;
}

SearchTree MctsScheduler::make_tree(const SchedulingEnv& env) {
  SearchTree tree(env);
  SearchNode& root = tree.node(tree.root());
  root.untried = guide_->action_weights(env);
  std::stable_sort(
      root.untried.begin(), root.untried.end(),
      [](const auto& a, const auto& b) { return a.second > b.second; });
  if (root.untried.empty()) {
    throw std::logic_error("MctsScheduler: no valid action at decision root");
  }
  return tree;
}

NodeId MctsScheduler::decide(SearchTree& tree, std::int64_t budget, Rng& rng,
                             double exploration_c) {
  for (std::int64_t i = 0; i < budget; ++i) {
    search_once(tree, rng, exploration_c);
  }

  // Final move: pure exploitation — best max value, mean as tiebreaker
  // (or mean only under the ablation).
  const SearchNode& final_root = tree.node(tree.root());
  NodeId best = kNoNode;
  double best_exploit = -std::numeric_limits<double>::infinity();
  double best_mean = -std::numeric_limits<double>::infinity();
  for (NodeId child_id : final_root.children) {
    const SearchNode& child = tree.node(child_id);
    const double exploit =
        options_.max_backprop ? child.max_value : child.mean_value();
    if (exploit > best_exploit ||
        (exploit == best_exploit && child.mean_value() > best_mean)) {
      best_exploit = exploit;
      best_mean = child.mean_value();
      best = child_id;
    }
  }
  return best;
}

Schedule MctsScheduler::schedule(const Dag& dag,
                                 const ResourceVector& capacity) {
  stats_ = {};
  Rng rng(options_.seed);

  EnvOptions env_options;
  env_options.max_ready = std::max<std::size_t>(dag.num_tasks(), 1);
  if (const auto* drl = dynamic_cast<const DrlDecisionPolicy*>(guide_.get())) {
    // The policy network can only see its featurizer's ready window (§V-A:
    // at most 15 ready tasks are fed to the network, the rest backlog).
    env_options.max_ready = drl->max_ready();
  }
  SchedulingEnv env(std::make_shared<Dag>(dag), capacity, env_options);

  const double exploration_c =
      options_.exploration_scale *
      static_cast<double>(std::max<Time>(greedy_makespan_estimate(env), 1));

  std::optional<SearchTree> tree;
  std::int64_t depth = 1;  // 1-based decision depth d_i of Eq. 4
  while (!env.done()) {
    if (!tree) tree.emplace(make_tree(env));

    const SearchNode& root = tree->node(tree->root());
    if (root.untried.size() == 1 && root.children.empty()) {
      // Forced move: skip the search entirely.
      apply_action(env, root.untried.front().first);
      tree.reset();
      ++stats_.decisions;
      ++depth;
      continue;
    }

    const std::int64_t budget =
        options_.decay_budget
            ? std::max(options_.initial_budget / depth, options_.min_budget)
            : options_.initial_budget;
    const NodeId best = decide(*tree, budget, rng, exploration_c);
    if (best == kNoNode) {
      // Budget too small to expand anything: fall back to the guide's top
      // untried choice.
      apply_action(env, tree->node(tree->root()).untried.front().first);
      tree.reset();
    } else {
      apply_action(env, tree->node(best).action_from_parent);
      if (options_.reuse_tree) {
        tree = tree->reroot(best);
      } else {
        tree.reset();
      }
    }
    ++stats_.decisions;
    ++depth;
  }
  return env.cluster().schedule();
}

}  // namespace spear
