// Budgeted Monte Carlo Tree Search for dependency-aware task scheduling
// (§III-C of the paper), with all of the paper's adaptations:
//
//  * Actions: schedule a fitting ready task, or process; processing always
//    advances to the next task completion ("no new information arrives
//    prior"), minimizing tree depth.
//  * Expansion filters: process is never expanded on an idle cluster, and
//    only tasks that can start before the earliest finish in the cluster
//    (i.e. tasks fitting the available resources right now) are expanded.
//  * Guided expansion & rollout: a DecisionPolicy orders untried actions
//    and drives rollouts.  Random = classic MCTS; the trained DRL policy =
//    Spear.
//  * Backpropagation keeps the maximum rollout value per node, with the
//    mean as the selection tiebreaker; node selection uses
//        UCB_i = max_i + c * sqrt(ln n / n_i)          (Eq. 5)
//    with c auto-scaled to a greedy-packing makespan estimate so the
//    exploration term is commensurate with the (negative-makespan)
//    exploitation score.
//  * Per-decision budget decay: budget(d) = max(b_initial / d, b_min)
//    where d is the 1-based decision depth (Eq. 4).
//
// A fresh tree is built for every decision; the chosen action is applied to
// the persistent environment and search repeats until the DAG completes.
//
// Root parallelism (num_threads > 1): every decision's budget is split
// across N workers on a reusable ThreadPool.  Each worker grows its own
// SearchTree from the decision state with an independent deterministic RNG
// stream derived from (seed, decision depth, worker id), then the root
// children's statistics (visit counts, max values, value sums) are merged
// by action and the usual final-move rule picks the action.  Results are
// deterministic for a fixed thread count regardless of OS scheduling;
// num_threads == 1 follows the original serial code path bit for bit.

// Anytime search (time_budget_ms > 0): every decision races a wall-clock
// deadline.  When the deadline expires mid-decision the best root action
// found so far is returned; when not even one iteration completes (e.g. an
// expensive guide evaluation already ate the budget) the decision degrades
// gracefully to a configurable fallback heuristic instead of stalling.
// Degradations and deadline cutoffs are counted in Stats.  Wall-clock
// budgets trade the bit-for-bit determinism of the iteration budget for
// bounded latency.
//
// Failure-aware search (options.faults set): the schedule is produced
// against the fault-injected environment — failed tasks are retried under
// options.retry, rollouts simulate the same deterministic fault trace, and
// a rollout that exhausts its retry budget scores a large penalty instead
// of aborting the search.  If the *real* trajectory exhausts a retry
// budget, JobAbortedError propagates to the caller.

#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <vector>

#include "common/thread_pool.h"
#include "fault/fault.h"
#include "mcts/policies.h"
#include "mcts/transposition.h"
#include "mcts/tree.h"
#include "sched/scheduler.h"

namespace spear {

/// How a multi-threaded search (num_threads > 1) parallelizes.
enum class SearchMode {
  /// Root parallelism (PR-1 style): every worker grows its own tree from
  /// the decision state; root-child statistics merge at the end.
  kRoot,
  /// Leaf parallelism (DESIGN.md §11): one shared tree, descents hold
  /// virtual loss, leaf states park in an evaluation queue that a central
  /// evaluator drains with ONE batched network forward per tick, and
  /// worker threads advance the parked rollouts in lockstep batches.
  /// Duplicate states share evaluations through a transposition cache.
  kLeaf,
};

struct MctsOptions {
  std::int64_t initial_budget = 1000;  ///< b_initial of Eq. 4
  std::int64_t min_budget = 100;       ///< b_min of Eq. 4
  /// c = exploration_scale x greedy-packing makespan estimate.
  double exploration_scale = 1.0;
  std::uint64_t seed = 42;
  /// Display name ("MCTS" for the pure variant, "Spear" when DRL-guided).
  std::string name = "MCTS";
  /// Root-parallel search workers.  1 (default) = the serial search,
  /// bit-identical to the original implementation; N > 1 splits every
  /// decision budget over N workers with independent RNG streams and merges
  /// root statistics.  Requires the guide policy to be clone()-able
  /// (all built-in policies are); otherwise the search stays serial.
  int num_threads = 1;

  /// Anytime wall-clock budget per decision, in milliseconds; 0 (default) =
  /// unlimited (the iteration budget alone governs, fully deterministic).
  std::int64_t time_budget_ms = 0;
  /// Fallback heuristic used when the deadline expires before a single
  /// iteration completes (anytime degradation).  Defaults to
  /// HeuristicDecisionPolicy (the CP x Tetris blend); plug in
  /// CpDecisionPolicy or TetrisDecisionPolicy for a pure fallback.
  std::shared_ptr<DecisionPolicy> fallback;

  /// Failure-aware scheduling: non-null = simulate (and search) under this
  /// fault injector with the retry policy below.
  std::shared_ptr<const FaultInjector> faults;
  RetryOptions retry;

  /// Batched child evaluation at the decision root (DESIGN.md §10): when
  /// the guide supports fused batch evaluation (the DRL policy), all of the
  /// root's candidate children are constructed up front and scored with ONE
  /// batched network forward instead of one single-row forward per
  /// expansion.  Search results are bit-identical either way — batched
  /// logits rows equal single-row forwards bit for bit and the expansion
  /// order is unchanged — only wall clock improves.  Root-only on purpose:
  /// root children are (virtually) always all expanded, so no speculative
  /// work is wasted; deeper nodes keep the lazy path.
  bool batch_expansion = true;

  // --- Ablation knobs (the paper's design choices; defaults = paper). ---
  /// Eq. 5 backpropagation: exploit the MAX rollout value with the mean as
  /// tiebreaker.  false = classic mean-value UCB (ablation).
  bool max_backprop = true;
  /// Eq. 4 budget decay: budget(d) = max(b_initial/d, b_min).
  /// false = flat b_initial at every decision (ablation).
  bool decay_budget = true;
  /// Reuse the selected child's subtree as the next decision's root
  /// (§III-C: "the selected action will point to a child node which will
  /// become the new root node").  Off by default: with the decayed budget
  /// the benefit is small and a fresh tree keeps memory flat; turn on to
  /// match the paper's mechanism exactly.  Serial-only: root-parallel mode
  /// rebuilds per-worker trees each decision (leaf mode has its own knob,
  /// leaf_tree_reuse below).
  bool reuse_tree = false;

  // --- Leaf-parallel search (search_mode == kLeaf; DESIGN.md §11). ---
  /// Parallelization architecture.  kLeaf runs even at num_threads == 1
  /// (batched evaluation is a win on its own); it requires a cloneable
  /// guide, like kRoot, and otherwise the search stays serial.
  SearchMode search_mode = SearchMode::kRoot;
  /// Descents held in flight per evaluator tick (split across the workers;
  /// each tick is one descend -> evaluate -> backup round).  Deliberately
  /// NOT scaled by num_threads: tick size shapes the search (virtual-loss
  /// distortion, evaluator batch size), so keeping it absolute makes leaf
  /// results independent of the worker count.  Larger ticks batch better
  /// but hold more virtual loss concurrently; ticks never exceed the
  /// decision's remaining budget.
  int leaf_batch_size = 32;
  /// Max entries in the leaf-mode transposition cache; 0 disables it.
  /// Cached priors are bitwise-identical to fresh evaluations, so this is
  /// purely a throughput knob.
  std::size_t transposition_capacity = 8192;
  /// Leaf mode reuses the chosen subtree across decisions by default
  /// (SearchTree::reroot) — the shared tree makes reuse natural and it
  /// compounds with the transposition cache.  The benches' --no-tree-reuse
  /// clears this.
  bool leaf_tree_reuse = true;
};

class MctsScheduler : public Scheduler {
 public:
  /// `guide` steers expansion ordering and rollouts; nullptr = the classic
  /// uniform-random policy.
  explicit MctsScheduler(MctsOptions options,
                         std::shared_ptr<DecisionPolicy> guide = nullptr);

  std::string name() const override { return options_.name; }
  Schedule schedule(const Dag& dag, const ResourceVector& capacity) override;

  /// Searches from an EXISTING environment state instead of a fresh idle
  /// cluster — the residual-DAG re-search entry point of the online
  /// execution engine (DESIGN.md §14): the caller builds an env whose
  /// cluster already carries the still-running work
  /// (EnvOptions::initial_running) and whose DAG is the remaining tasks,
  /// and the search resumes from that occupancy.  schedule() is exactly
  /// schedule_env() over a freshly-constructed env, so the offline path is
  /// unchanged.  The env is taken by value: the search steps it to
  /// completion.  Returns the full schedule recorded by the env's cluster
  /// (preloaded tasks appear as placements at t = 0).
  Schedule schedule_env(SchedulingEnv env);

  /// Search telemetry for the most recent schedule() call.  Counters are
  /// summed across all parallel workers (each worker accumulates a private
  /// Stats that the merge step folds in, so nothing is dropped or
  /// double-counted at num_threads > 1); wall time is measured around the
  /// per-decision search only (tree setup + iterations + merge), not around
  /// policy training or environment stepping outside the search.
  struct Stats {
    std::int64_t decisions = 0;       ///< scheduling decisions made
    std::int64_t forced_decisions = 0;  ///< decisions with one legal action
                                        ///< (taken without searching)
    std::int64_t iterations = 0;      ///< total MCTS iterations
    std::int64_t rollouts = 0;        ///< total simulated episodes
    std::int64_t nodes_expanded = 0;  ///< tree nodes created by expansion
    std::int64_t env_copies = 0;      ///< environment snapshots taken
    double search_seconds = 0.0;      ///< wall time inside the search
    std::int64_t deadline_cutoffs = 0;  ///< decisions truncated by the
                                        ///< anytime deadline
    std::int64_t degradations = 0;    ///< decisions that fell back to the
                                      ///< heuristic (no iteration finished)
    std::int64_t task_failures = 0;   ///< failed attempts on the real
                                      ///< trajectory (fault mode)
    std::int64_t task_retries = 0;    ///< retries on the real trajectory
    // Fault events observed INSIDE the search (expansion steps + rollouts),
    // summed across workers in parallel mode — the speculative counterpart
    // of task_failures/task_retries above.
    std::int64_t search_failures = 0;  ///< failed attempts in search states
    std::int64_t search_retries = 0;   ///< retries in search states
    std::int64_t search_aborts = 0;    ///< simulated trajectories that
                                       ///< exhausted the retry budget
    // Batched-evaluation telemetry: root mode counts the fused forwards of
    // batched child preparation (options.batch_expansion with a
    // batch-capable guide); leaf mode counts the central evaluator's queue
    // drains.  Zero otherwise.
    std::int64_t batched_evals = 0;  ///< fused batch forwards issued
    std::int64_t batched_rows = 0;   ///< states scored by those batches
                                     ///< (rows per eval = batched_rows /
                                     ///< batched_evals)
    // Physical forward telemetry, folded from the guides once per
    // schedule(): every PRIVATE-weights kernel invocation the guide
    // policies executed (batched evaluations AND single-row calls — root
    // priors, serial rollout picks), with its row count.  This is the
    // denominator batch occupancy is measured against; batched_evals above
    // only counts the fused calls.  In shared-inference mode guides
    // forward through the InferenceService instead and these stay ZERO —
    // the service's own stats are the physical truth there.
    std::int64_t guide_forwards = 0;      ///< kernel invocations
    std::int64_t guide_forward_rows = 0;  ///< rows across those calls
    /// batch_rows_hist[w] = private-weights kernel invocations that scored
    /// exactly w states — the occupancy distribution behind
    /// guide_forward_rows/guide_forwards, which the service layer surfaces
    /// as p50/p99 batch occupancy.  Sized on demand (empty when no guide
    /// forward ran).
    std::vector<std::int64_t> batch_rows_hist;
    // Leaf-parallel telemetry (search_mode == kLeaf; zero otherwise).
    std::int64_t leaf_ticks = 0;  ///< evaluator ticks (descend -> evaluate
                                  ///< -> backup rounds)
    std::int64_t tt_hits = 0;     ///< transposition-cache prior hits
    std::int64_t tt_misses = 0;   ///< probes that fell through to the
                                  ///< evaluator
    std::int64_t vloss_collisions = 0;  ///< descents that crossed a node
                                        ///< already holding virtual loss
                                        ///< (another descent in flight)
    std::int64_t rollout_cache_hits = 0;    ///< greedy rollout steps served
                                            ///< from the workers' action
                                            ///< caches (no forward)
    std::int64_t rollout_cache_misses = 0;  ///< rollout steps that paid the
                                            ///< batched forward

    double seconds_per_decision() const {
      return decisions > 0 ? search_seconds / static_cast<double>(decisions)
                           : 0.0;
    }
    double iterations_per_second() const {
      return search_seconds > 0.0
                 ? static_cast<double>(iterations) / search_seconds
                 : 0.0;
    }
    /// Decisions that actually ran a search (every one of these consumes
    /// exactly its budget's iterations when no deadline truncates it, in
    /// both the serial and the root-parallel mode).
    std::int64_t searched_decisions() const {
      return decisions - forced_decisions;
    }
  };
  /// Statistics of the most recent schedule() call.
  const Stats& last_stats() const { return stats_; }

  /// Re-targets the per-schedule budgets without rebuilding the scheduler.
  /// The service daemon (DESIGN.md §12) keeps ONE scheduler (and thus one
  /// guide with its warmed inference workspaces) per worker and adjusts the
  /// budgets to each request's remaining deadline before schedule().
  /// Validation matches the constructor: budgets must be positive,
  /// time_budget_ms non-negative (0 = unlimited).  Never call concurrently
  /// with schedule().
  void set_anytime_budgets(std::int64_t initial_budget,
                           std::int64_t min_budget,
                           std::int64_t time_budget_ms);

  /// Best-effort cancellation through the anytime machinery: while `token`
  /// is non-null and set, every anytime-deadline checkpoint treats the
  /// deadline as already expired, so the search stops at the next iteration
  /// boundary and the remaining decisions degrade to the fallback heuristic
  /// — schedule() still returns a complete (cheap) schedule rather than
  /// throwing.  The token is read with relaxed atomics from the search
  /// threads; any thread may set it at any time.  Pass nullptr to detach.
  /// Like set_anytime_budgets, never call concurrently with schedule().
  void set_cancel_token(const std::atomic<bool>* token) {
    cancel_token_ = token;
  }

 private:
  using Deadline = std::optional<std::chrono::steady_clock::time_point>;

  /// True when the anytime deadline has passed OR the cancel token fired.
  bool deadline_reached(const Deadline& deadline) const {
    if (cancel_token_ && cancel_token_->load(std::memory_order_relaxed)) {
      return true;
    }
    return deadline && std::chrono::steady_clock::now() >= *deadline;
  }

  double search_once(SearchTree& tree, DecisionPolicy& guide, Rng& rng,
                     double exploration_c, Stats& stats);
  /// Runs up to `budget` iterations on `tree` (stopping at `deadline` if
  /// set) and returns the chosen root child (kNoNode if nothing was ever
  /// expanded — callers fall back).  `ran_any` reports whether at least one
  /// iteration completed this call.
  NodeId decide(SearchTree& tree, std::int64_t budget, Rng& rng,
                double exploration_c, const Deadline& deadline,
                bool& ran_any);
  /// Root-parallel decision from `env`: splits `budget` over the worker
  /// pool, merges root-child statistics, returns the chosen env action
  /// (nullopt if no worker expanded a child).  `untried` is the root's
  /// guide ordering, computed ONCE by the caller and shared by every
  /// worker (hoisting the per-worker root evaluation — all built-in guides
  /// are deterministic, so the shared ordering is what each worker would
  /// have computed itself).
  std::optional<int> decide_parallel(
      const SchedulingEnv& env,
      const std::vector<std::pair<int, double>>& untried, std::int64_t budget,
      std::int64_t decision_depth, double exploration_c,
      const Deadline& deadline);
  /// Leaf-parallel decision (search_mode == kLeaf; DESIGN.md §11): runs up
  /// to `budget` iterations on the SHARED `tree` in synchronized ticks —
  /// descend with virtual loss, construct children and advance rollouts on
  /// the worker pool, drain the evaluation queue through the transposition
  /// cache and ONE batched guide forward, back up in slot order — and
  /// returns the chosen root child exactly like decide().
  NodeId decide_leaf(SearchTree& tree, std::int64_t budget,
                     std::int64_t decision_depth, double exploration_c,
                     const Deadline& deadline, bool& ran_any);
  /// The final-move rule shared by decide() and decide_leaf(): best max
  /// value among root children, mean as tiebreaker (mean only under the
  /// ablation); kNoNode when the root has no children.
  NodeId best_root_child(const SearchTree& tree) const;
  /// Fresh single-node tree for `env` with guide-ordered untried actions.
  SearchTree make_tree(const SchedulingEnv& env, DecisionPolicy& guide);
  /// Batch-prepares the root's children (options_.batch_expansion with a
  /// batch-capable guide): one fused guide evaluation scores every
  /// candidate child, stored in root.prepared for expansion to pop.
  void maybe_prepare_root(SearchTree& tree);
  /// Lazily builds the thread pool and per-worker guide clones; false if
  /// the guide is not cloneable (parallel search disabled).
  bool ensure_parallel_workers();

  MctsOptions options_;
  std::shared_ptr<DecisionPolicy> guide_;
  Stats stats_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::shared_ptr<DecisionPolicy>> worker_guides_;
  /// Leaf-mode prior cache, reset per schedule() call (its keys do not
  /// encode the DAG identity); null outside leaf mode.
  std::unique_ptr<TranspositionCache> transpositions_;
  /// Leaf-mode rollout action cache shared across ALL worker guides at
  /// num_threads > 1 (per-worker private caches fragment — the multi-thread
  /// throughput regression); reset per schedule() call like transpositions_.
  std::shared_ptr<SharedActionCache> shared_rollout_cache_;
  /// Rollout value assigned to simulated trajectories that abort under the
  /// retry policy — a deterministic penalty worse than any completion.
  double abort_value_ = 0.0;
  /// Best-effort cancel token (set_cancel_token); null = never cancelled.
  const std::atomic<bool>* cancel_token_ = nullptr;
};

/// Deterministic greedy-packing estimate of the makespan from `env`'s
/// current state (HeuristicDecisionPolicy rollout) — scales the UCB
/// exploration constant, as §IV prescribes.
Time greedy_makespan_estimate(const SchedulingEnv& env);

}  // namespace spear
