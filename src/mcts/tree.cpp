// SearchTree is header-only; this translation unit exists so the build
// exposes a concrete object for the mcts library target.
#include "mcts/tree.h"
