#include "mcts/policies.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "infer/service.h"
#include "sched/critical_path.h"
#include "sched/tetris.h"

namespace spear {

namespace {

/// Sorts action/weight pairs by descending weight, ties keeping env order —
/// the ordering contract of DecisionPolicy::action_weights.
void sort_by_weight(std::vector<std::pair<int, double>>& weights) {
  std::stable_sort(
      weights.begin(), weights.end(),
      [](const auto& a, const auto& b) { return a.second > b.second; });
}

/// Shared shape of the heuristic policies: score every placeable ready
/// task, give process the mean schedule weight (pack first, never starve
/// completions), sort descending.
template <typename ScoreFn>
std::vector<std::pair<int, double>> scored_weights(const SchedulingEnv& env,
                                                   ScoreFn score) {
  std::vector<std::pair<int, double>> out;
  double schedule_sum = 0.0;
  std::size_t schedule_count = 0;
  for (std::size_t i = 0; i < env.ready().size(); ++i) {
    if (!env.can_schedule(i)) continue;
    const double weight = 1e-6 + score(env.ready()[i]);
    out.emplace_back(static_cast<int>(i), weight);
    schedule_sum += weight;
    ++schedule_count;
  }
  if (env.can_process()) {
    const double mean = schedule_count > 0
                            ? schedule_sum / static_cast<double>(schedule_count)
                            : 1.0;
    out.emplace_back(SchedulingEnv::kProcessAction, mean);
  }
  sort_by_weight(out);
  return out;
}

/// Deterministic greedy pick: the best-scored schedule action while
/// anything fits, process otherwise.
int greedy_schedule_pick(const std::vector<std::pair<int, double>>& weights,
                         const char* who) {
  if (weights.empty()) {
    throw std::logic_error(std::string(who) + ": no valid actions");
  }
  int best_action = weights.front().first;
  double best_weight = weights.front().second;
  bool has_schedule = best_action != SchedulingEnv::kProcessAction;
  for (const auto& [action, weight] : weights) {
    if (action == SchedulingEnv::kProcessAction) continue;
    if (!has_schedule || weight > best_weight) {
      best_action = action;
      best_weight = weight;
      has_schedule = true;
    }
  }
  return best_action;
}

}  // namespace

std::vector<std::vector<std::pair<int, double>>>
DecisionPolicy::action_weights_batch(const SchedulingEnv* const* envs,
                                     std::size_t n) {
  std::vector<std::vector<std::pair<int, double>>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(action_weights(*envs[i]));
  return out;
}

int DecisionPolicy::pick(const SchedulingEnv& env, Rng& rng) {
  const auto weights = action_weights(env);
  if (weights.empty()) {
    throw std::logic_error("DecisionPolicy::pick: no valid actions");
  }
  // Sample proportionally to the weights in place — this is the rollout hot
  // path, so no second weight vector is materialized.  Mirrors
  // Rng::categorical exactly (one uniform draw, positive-weight walk) so
  // results are bit-identical to sampling via a copied vector.
  double total = 0.0;
  for (const auto& [action, weight] : weights) {
    if (weight > 0.0) total += weight;
  }
  if (total <= 0.0) {
    // Degenerate all-zero weights fall back to uniform.
    total = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) total += 1.0;
    double r = rng.uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      r -= 1.0;
      if (r <= 0.0) return weights[i].first;
    }
    return weights.back().first;
  }
  double r = rng.uniform() * total;
  for (const auto& [action, weight] : weights) {
    if (weight <= 0.0) continue;
    r -= weight;
    if (r <= 0.0) return action;
  }
  // Floating-point slop: return the last positive-weight action.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i].second > 0.0) return weights[i].first;
  }
  return weights.back().first;  // unreachable: total > 0
}

void DecisionPolicy::pick_batch(const SchedulingEnv* const* envs,
                                std::size_t n, Rng* const* rngs, int* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = pick(*envs[i], *rngs[i]);
}

std::vector<std::pair<int, double>> RandomDecisionPolicy::action_weights(
    const SchedulingEnv& env) {
  // All-equal weights are trivially in descending order already.
  const auto actions = env.valid_actions();
  std::vector<std::pair<int, double>> out;
  out.reserve(actions.size());
  for (int action : actions) out.emplace_back(action, 1.0);
  return out;
}

std::shared_ptr<DecisionPolicy> RandomDecisionPolicy::clone() const {
  return std::make_shared<RandomDecisionPolicy>();
}

std::vector<std::pair<int, double>> HeuristicDecisionPolicy::action_weights(
    const SchedulingEnv& env) {
  // Normalized blend: b-level urgency (dependency awareness) x alignment
  // (packing awareness).  Both are positive, so products rank sensibly.
  std::vector<std::pair<int, double>> out;
  const double cp = static_cast<double>(
      std::max<Time>(env.features().critical_path(), 1));
  double schedule_sum = 0.0;
  std::size_t schedule_count = 0;
  for (std::size_t i = 0; i < env.ready().size(); ++i) {
    if (!env.can_schedule(i)) continue;
    const TaskId task = env.ready()[i];
    const double urgency =
        static_cast<double>(env.features().b_level(task)) / cp;
    const double alignment = tetris_alignment(env, task);
    const double weight = 1e-6 + urgency * (1e-6 + alignment);
    out.emplace_back(static_cast<int>(i), weight);
    schedule_sum += weight;
    ++schedule_count;
  }
  if (env.can_process()) {
    // Processing is as attractive as an average schedule action: the agent
    // should usually pack first, but never starve completions.
    const double mean = schedule_count > 0
                            ? schedule_sum / static_cast<double>(schedule_count)
                            : 1.0;
    out.emplace_back(SchedulingEnv::kProcessAction, mean);
  }
  sort_by_weight(out);
  return out;
}

std::shared_ptr<DecisionPolicy> HeuristicDecisionPolicy::clone() const {
  return std::make_shared<HeuristicDecisionPolicy>();
}

int HeuristicDecisionPolicy::pick(const SchedulingEnv& env, Rng& rng) {
  (void)rng;
  return greedy_schedule_pick(action_weights(env),
                              "HeuristicDecisionPolicy::pick");
}

std::vector<std::pair<int, double>> CpDecisionPolicy::action_weights(
    const SchedulingEnv& env) {
  const double cp = static_cast<double>(
      std::max<Time>(env.features().critical_path(), 1));
  return scored_weights(env, [&](TaskId task) {
    return static_cast<double>(env.features().b_level(task)) / cp;
  });
}

int CpDecisionPolicy::pick(const SchedulingEnv& env, Rng& rng) {
  (void)rng;
  return greedy_schedule_pick(action_weights(env), "CpDecisionPolicy::pick");
}

std::shared_ptr<DecisionPolicy> CpDecisionPolicy::clone() const {
  return std::make_shared<CpDecisionPolicy>();
}

std::vector<std::pair<int, double>> TetrisDecisionPolicy::action_weights(
    const SchedulingEnv& env) {
  return scored_weights(
      env, [&](TaskId task) { return tetris_alignment(env, task); });
}

int TetrisDecisionPolicy::pick(const SchedulingEnv& env, Rng& rng) {
  (void)rng;
  return greedy_schedule_pick(action_weights(env),
                              "TetrisDecisionPolicy::pick");
}

std::shared_ptr<DecisionPolicy> TetrisDecisionPolicy::clone() const {
  return std::make_shared<TetrisDecisionPolicy>();
}

DrlDecisionPolicy::DrlDecisionPolicy(
    std::shared_ptr<const Policy> policy, bool greedy,
    std::shared_ptr<infer::InferenceService> shared)
    : policy_(std::move(policy)),
      greedy_(greedy),
      shared_(std::move(shared)) {
  if (!policy_) {
    throw std::invalid_argument("DrlDecisionPolicy: null policy");
  }
}

void DrlDecisionPolicy::forward_batch(const SchedulingEnv* const* envs,
                                      std::size_t n) {
  if (shared_) {
    // Shared mode NEVER touches the wrapped Policy's member workspace —
    // clones alias one Policy, so the service's per-runner workspaces are
    // the only mutable forward state.  infer() blocks until the fused
    // batch containing these rows completes.
    shared_->infer(envs, n, batch_masks_, batch_probs_);
    return;
  }
  record_forward(n);
  policy_->action_probs_batch(envs, n, batch_masks_, batch_probs_);
}

void DrlDecisionPolicy::record_forward(std::size_t rows) {
  ++forward_calls_;
  forward_rows_ += static_cast<std::int64_t>(rows);
  if (forward_hist_.size() <= rows) forward_hist_.resize(rows + 1, 0);
  ++forward_hist_[rows];
}

std::vector<std::pair<int, double>> DrlDecisionPolicy::weights_from_probs(
    const std::vector<double>& probs) const {
  std::vector<std::pair<int, double>> out;
  for (std::size_t o = 0; o < probs.size(); ++o) {
    if (probs[o] > 0.0) {
      out.emplace_back(policy_->to_env_action(o), probs[o]);
    }
  }
  sort_by_weight(out);
  return out;
}

std::vector<std::pair<int, double>> DrlDecisionPolicy::action_weights(
    const SchedulingEnv& env) {
  if (shared_) {
    // One-row request to the shared batcher: bit-identical to the private
    // path (action_probs_into == action_probs_batch at n = 1; the service
    // keeps rows independent of their batch neighbours).
    const SchedulingEnv* envp = &env;
    forward_batch(&envp, 1);
    return weights_from_probs(batch_probs_[0]);
  }
  // Allocation-free inference: features land straight in the network
  // workspace and the probabilities in a reused buffer; only the returned
  // weight list is materialized.
  record_forward(1);
  policy_->action_probs_into(env, mask_buf_, probs_buf_);
  return weights_from_probs(probs_buf_);
}

std::vector<std::vector<std::pair<int, double>>>
DrlDecisionPolicy::action_weights_batch(const SchedulingEnv* const* envs,
                                        std::size_t n) {
  std::vector<std::vector<std::pair<int, double>>> out;
  out.reserve(n);
  forward_batch(envs, n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(weights_from_probs(batch_probs_[i]));
  }
  return out;
}

std::shared_ptr<DecisionPolicy> DrlDecisionPolicy::clone() const {
  if (shared_) {
    // Shared-inference mode: the Policy is immutable to this guide (every
    // forward goes through the service's workspaces), so clones alias the
    // same weights and the same service — N workers, ONE network in memory.
    return std::make_shared<DrlDecisionPolicy>(policy_, greedy_, shared_);
  }
  // Each clone owns a full copy of the Policy (weights + scratch), so
  // concurrent forward passes on different threads cannot race.
  return std::make_shared<DrlDecisionPolicy>(
      std::make_shared<const Policy>(*policy_), greedy_);
}

int DrlDecisionPolicy::pick(const SchedulingEnv& env, Rng& rng) {
  if (shared_) {
    // Same resolution as greedy_output / sample_output, fed by the shared
    // batcher: argmax is the first maximum, sampling draws once from this
    // row's RNG — bit-identical either way.
    const SchedulingEnv* envp = &env;
    forward_batch(&envp, 1);
    const std::vector<double>& probs = batch_probs_[0];
    std::size_t output;
    if (greedy_) {
      output = static_cast<std::size_t>(
          std::max_element(probs.begin(), probs.end()) - probs.begin());
    } else {
      output = rng.categorical(probs);
    }
    return policy_->to_env_action(output);
  }
  record_forward(1);
  if (greedy_) {
    return policy_->to_env_action(policy_->greedy_output(env));
  }
  return policy_->to_env_action(policy_->sample_output(env, rng));
}

void DrlDecisionPolicy::enable_rollout_cache(std::size_t capacity) {
  rollout_cache_hits_ = 0;
  rollout_cache_misses_ = 0;
  shared_rollout_cache_.reset();
  if (capacity == 0 || !greedy_) {
    rollout_cache_.reset();
    return;
  }
  rollout_cache_ = std::make_unique<ActionCache>(capacity);
}

void DrlDecisionPolicy::share_rollout_cache(
    std::shared_ptr<SharedActionCache> cache) {
  rollout_cache_hits_ = 0;
  rollout_cache_misses_ = 0;
  rollout_cache_.reset();
  if (!greedy_) return;  // sampling rollouts never cache (RNG stream shift)
  shared_rollout_cache_ = std::move(cache);
}

void DrlDecisionPolicy::pick_batch(const SchedulingEnv* const* envs,
                                   std::size_t n, Rng* const* rngs, int* out) {
  if (n == 0) return;
  if (rollout_cache_ || shared_rollout_cache_) {
    // Greedy mode with a cache armed (private per-worker, or one shared
    // across all workers): probe every row's canonical key and forward only
    // the misses.  A hit is bit-identical to a fresh argmax (the cached
    // action WAS a fresh argmax of the same state), and greedy rows consume
    // no RNG, so skipping the forward shifts nothing.
    miss_keys_.clear();
    miss_envs_.clear();
    miss_rows_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      key_buf_.clear();
      envs[i]->append_canonical_key(key_buf_);
      int cached = 0;
      const bool hit =
          rollout_cache_
              ? [&] {
                  const int* action = rollout_cache_->find(key_buf_);
                  if (action) cached = *action;
                  return action != nullptr;
                }()
              : shared_rollout_cache_->find(key_buf_, &cached);
      if (hit) {
        out[i] = cached;
        ++rollout_cache_hits_;
      } else {
        miss_keys_.push_back(key_buf_);
        miss_envs_.push_back(envs[i]);
        miss_rows_.push_back(i);
        ++rollout_cache_misses_;
      }
    }
    if (miss_envs_.empty()) return;
    forward_batch(miss_envs_.data(), miss_envs_.size());
    for (std::size_t j = 0; j < miss_envs_.size(); ++j) {
      const std::vector<double>& probs = batch_probs_[j];
      // Same argmax (first maximum) as Policy::greedy_output.
      const auto output = static_cast<std::size_t>(
          std::max_element(probs.begin(), probs.end()) - probs.begin());
      const int action = policy_->to_env_action(output);
      out[miss_rows_[j]] = action;
      if (rollout_cache_) {
        rollout_cache_->insert(miss_keys_[j], action);
      } else {
        shared_rollout_cache_->insert(miss_keys_[j], action);
      }
    }
    return;
  }
  forward_batch(envs, n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::vector<double>& probs = batch_probs_[i];
    std::size_t output;
    if (greedy_) {
      // Same argmax (first maximum) as Policy::greedy_output.
      output = static_cast<std::size_t>(
          std::max_element(probs.begin(), probs.end()) - probs.begin());
    } else {
      output = rngs[i]->categorical(probs);
    }
    out[i] = policy_->to_env_action(output);
  }
}

}  // namespace spear
