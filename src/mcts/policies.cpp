#include "mcts/policies.h"

#include <algorithm>
#include <stdexcept>

#include "sched/critical_path.h"
#include "sched/tetris.h"

namespace spear {

int DecisionPolicy::pick(const SchedulingEnv& env, Rng& rng) {
  const auto weights = action_weights(env);
  if (weights.empty()) {
    throw std::logic_error("DecisionPolicy::pick: no valid actions");
  }
  std::vector<double> w;
  w.reserve(weights.size());
  for (const auto& [action, weight] : weights) w.push_back(weight);
  // Degenerate all-zero weights fall back to uniform.
  double total = 0.0;
  for (double x : w) total += x;
  if (total <= 0.0) {
    std::fill(w.begin(), w.end(), 1.0);
  }
  return weights[rng.categorical(w)].first;
}

std::vector<std::pair<int, double>> RandomDecisionPolicy::action_weights(
    const SchedulingEnv& env) {
  std::vector<std::pair<int, double>> out;
  for (int action : env.valid_actions()) out.emplace_back(action, 1.0);
  return out;
}

std::vector<std::pair<int, double>> HeuristicDecisionPolicy::action_weights(
    const SchedulingEnv& env) {
  // Normalized blend: b-level urgency (dependency awareness) x alignment
  // (packing awareness).  Both are positive, so products rank sensibly.
  std::vector<std::pair<int, double>> out;
  const double cp = static_cast<double>(
      std::max<Time>(env.features().critical_path(), 1));
  double schedule_sum = 0.0;
  std::size_t schedule_count = 0;
  for (std::size_t i = 0; i < env.ready().size(); ++i) {
    if (!env.can_schedule(i)) continue;
    const TaskId task = env.ready()[i];
    const double urgency =
        static_cast<double>(env.features().b_level(task)) / cp;
    const double alignment = tetris_alignment(env, task);
    const double weight = 1e-6 + urgency * (1e-6 + alignment);
    out.emplace_back(static_cast<int>(i), weight);
    schedule_sum += weight;
    ++schedule_count;
  }
  if (env.can_process()) {
    // Processing is as attractive as an average schedule action: the agent
    // should usually pack first, but never starve completions.
    const double mean = schedule_count > 0
                            ? schedule_sum / static_cast<double>(schedule_count)
                            : 1.0;
    out.emplace_back(SchedulingEnv::kProcessAction, mean);
  }
  return out;
}

int HeuristicDecisionPolicy::pick(const SchedulingEnv& env, Rng& rng) {
  // Deterministic greedy: schedule the best-scored task while anything
  // fits, process otherwise.
  (void)rng;
  const auto weights = action_weights(env);
  if (weights.empty()) {
    throw std::logic_error("HeuristicDecisionPolicy::pick: no valid actions");
  }
  int best_action = weights.front().first;
  double best_weight = weights.front().second;
  bool has_schedule = best_action != SchedulingEnv::kProcessAction;
  for (const auto& [action, weight] : weights) {
    if (action == SchedulingEnv::kProcessAction) continue;
    if (!has_schedule || weight > best_weight) {
      best_action = action;
      best_weight = weight;
      has_schedule = true;
    }
  }
  return best_action;
}

DrlDecisionPolicy::DrlDecisionPolicy(std::shared_ptr<const Policy> policy,
                                     bool greedy)
    : policy_(std::move(policy)), greedy_(greedy) {
  if (!policy_) {
    throw std::invalid_argument("DrlDecisionPolicy: null policy");
  }
}

std::vector<std::pair<int, double>> DrlDecisionPolicy::action_weights(
    const SchedulingEnv& env) {
  const auto probs = policy_->action_probs(env);
  std::vector<std::pair<int, double>> out;
  for (std::size_t o = 0; o < probs.size(); ++o) {
    if (probs[o] > 0.0) {
      out.emplace_back(policy_->to_env_action(o), probs[o]);
    }
  }
  return out;
}

int DrlDecisionPolicy::pick(const SchedulingEnv& env, Rng& rng) {
  if (greedy_) {
    return policy_->to_env_action(policy_->greedy_output(env));
  }
  return policy_->to_env_action(policy_->sample_output(env, rng));
}

}  // namespace spear
