// Decision policies plugged into MCTS expansion and rollout (§III-A/C).
//
// Pure MCTS uses RandomDecisionPolicy for both (the classic algorithm);
// Spear swaps in DrlDecisionPolicy — the trained policy network — so that
// expansion tries promising actions first and rollouts estimate makespans
// like an expert instead of a random walker.  HeuristicDecisionPolicy (CP /
// Tetris scores) sits in between and is used in ablations.
//
// The env-level action encoding is used throughout: i >= 0 schedules the
// i-th visible ready task, SchedulingEnv::kProcessAction processes.  Only
// valid actions are produced (fitting ready tasks; process only when busy),
// which realizes both of the paper's expansion filters.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "env/env.h"
#include "mcts/transposition.h"
#include "rl/policy.h"

namespace spear::infer {
class InferenceService;
}  // namespace spear::infer

namespace spear {

class DecisionPolicy {
 public:
  virtual ~DecisionPolicy() = default;

  /// Valid actions with non-negative preference weights (need not be
  /// normalized; all-equal means "no preference").  Never empty unless
  /// env.done().  Actions are returned in DESCENDING weight order, ties in
  /// stable env order, so MCTS expansion can pop the most promising action
  /// from the front without re-sorting on the hot path.
  virtual std::vector<std::pair<int, double>> action_weights(
      const SchedulingEnv& env) = 0;

  /// Picks one valid action for rollouts.  Default: samples from
  /// action_weights.
  virtual int pick(const SchedulingEnv& env, Rng& rng);

  /// Batched rollout step: out[i] == pick(*envs[i], *rngs[i]) for every i
  /// (bit-identical — each row consumes only its own RNG stream).  The
  /// leaf-parallel search advances many rollouts in lockstep through this
  /// so batch-capable guides score one fused forward per step instead of
  /// one single-row forward per rollout.  The default loops over pick().
  virtual void pick_batch(const SchedulingEnv* const* envs, std::size_t n,
                          Rng* const* rngs, int* out);

  /// True when action_weights_batch fuses its evaluations (one network
  /// forward for all `n` states) instead of looping.  MCTS only
  /// batch-prepares children for such guides — for everything else the
  /// lazy one-state-at-a-time path is already optimal.
  virtual bool supports_batch_eval() const { return false; }

  /// Evaluates `n` states at once; out[i] == action_weights(*envs[i]) for
  /// every i (bit-identical — the contract batched inference must keep).
  /// The default loops over action_weights; batch-capable policies fuse.
  virtual std::vector<std::vector<std::pair<int, double>>>
  action_weights_batch(const SchedulingEnv* const* envs, std::size_t n);

  /// Deep, thread-independent copy for parallel search: each worker owns a
  /// clone so concurrent action_weights/pick calls never share mutable
  /// state.  Returns nullptr when the policy is not cloneable; parallel
  /// MCTS then falls back to the serial search path.
  virtual std::shared_ptr<DecisionPolicy> clone() const { return nullptr; }

  /// Arms (capacity > 0) or disarms (capacity == 0) a canonical-state ->
  /// action cache for deterministic pick_batch rows, dropping any cached
  /// entries and zeroing the hit/miss counters.  The leaf-parallel search
  /// calls this per schedule() on every worker guide (keys do not encode
  /// the DAG identity, so entries must never cross schedules).  Default:
  /// no-op — only guides whose picks are pure functions of the state can
  /// cache them.
  virtual void enable_rollout_cache(std::size_t capacity) { (void)capacity; }
  virtual std::int64_t rollout_cache_hits() const { return 0; }
  virtual std::int64_t rollout_cache_misses() const { return 0; }

  /// Points the guide's deterministic pick_batch rows at a rollout action
  /// cache SHARED with other workers' guides (leaf-parallel search at >1
  /// workers), replacing any private cache and zeroing the hit/miss
  /// counters.  Hits stay bit-identical (the cached action is a pure
  /// function of the state) but the hit/miss split becomes
  /// timing-dependent.  nullptr detaches.  Default: no-op, like
  /// enable_rollout_cache — only cache-capable guides opt in.
  virtual void share_rollout_cache(std::shared_ptr<SharedActionCache> cache) {
    (void)cache;
  }

  /// Physical network forwards this guide executed with its PRIVATE weights
  /// since the last reset_forward_stats(): kernel invocations and total
  /// rows, plus the per-call row-count histogram (hist[k] = calls with k
  /// rows).  In shared-inference mode guides report ZERO here — the
  /// InferenceService's own stats are the physical truth there (its fused
  /// batches span guides, so no single guide can attribute them).  Default:
  /// zero — guides without a network never forward.
  virtual std::int64_t forward_calls() const { return 0; }
  virtual std::int64_t forward_rows() const { return 0; }
  virtual const std::vector<std::int64_t>* forward_hist() const {
    return nullptr;
  }
  virtual void reset_forward_stats() {}
};

/// Uniform over valid actions: classic MCTS.
class RandomDecisionPolicy : public DecisionPolicy {
 public:
  std::vector<std::pair<int, double>> action_weights(
      const SchedulingEnv& env) override;
  std::shared_ptr<DecisionPolicy> clone() const override;
};

/// Scores schedule actions by a blend of CP b-level and Tetris alignment;
/// process gets the mean schedule weight.  Deterministic pick (argmax).
class HeuristicDecisionPolicy : public DecisionPolicy {
 public:
  std::vector<std::pair<int, double>> action_weights(
      const SchedulingEnv& env) override;
  int pick(const SchedulingEnv& env, Rng& rng) override;
  std::shared_ptr<DecisionPolicy> clone() const override;
};

/// Pure critical-path policy: schedule actions weighted by b-level urgency
/// alone.  Deterministic pick (argmax); an anytime-MCTS fallback choice.
class CpDecisionPolicy : public DecisionPolicy {
 public:
  std::vector<std::pair<int, double>> action_weights(
      const SchedulingEnv& env) override;
  int pick(const SchedulingEnv& env, Rng& rng) override;
  std::shared_ptr<DecisionPolicy> clone() const override;
};

/// Pure Tetris policy: schedule actions weighted by resource alignment
/// alone.  Deterministic pick (argmax); an anytime-MCTS fallback choice.
class TetrisDecisionPolicy : public DecisionPolicy {
 public:
  std::vector<std::pair<int, double>> action_weights(
      const SchedulingEnv& env) override;
  int pick(const SchedulingEnv& env, Rng& rng) override;
  std::shared_ptr<DecisionPolicy> clone() const override;
};

/// The trained DRL policy.  Weights are the masked softmax probabilities;
/// rollout picks sample from them (set `greedy` for argmax rollouts).
class DrlDecisionPolicy : public DecisionPolicy {
 public:
  /// `shared` routes EVERY network forward (action_weights, picks, batch
  /// evaluations) through the process-wide InferenceService instead of the
  /// wrapped Policy's private workspace (DESIGN.md §15): rows from this
  /// guide fuse with rows from every other guide on the same service, and
  /// clone() shares the immutable weights instead of deep-copying them.
  /// Results are bit-identical either way (the service's row contract).
  explicit DrlDecisionPolicy(
      std::shared_ptr<const Policy> policy, bool greedy = false,
      std::shared_ptr<infer::InferenceService> shared = nullptr);

  std::vector<std::pair<int, double>> action_weights(
      const SchedulingEnv& env) override;
  int pick(const SchedulingEnv& env, Rng& rng) override;
  /// Fused rollout step: ONE batched forward scores all `n` states, then
  /// each row resolves exactly as pick() would (greedy argmax or a
  /// categorical draw from that row's own RNG) — bit-identical results by
  /// the action_probs_batch row contract.  With the rollout cache armed
  /// (greedy picks only) cached rows skip the forward entirely; the argmax
  /// is a pure function of the state, so hits stay bit-identical too.
  void pick_batch(const SchedulingEnv* const* envs, std::size_t n,
                  Rng* const* rngs, int* out) override;

  /// Greedy picks are deterministic and consume no RNG, so they are safe to
  /// cache; in sampling mode the cache stays disarmed (a skipped draw would
  /// shift the rollout's RNG stream) and the counters stay zero.
  void enable_rollout_cache(std::size_t capacity) override;
  /// Greedy mode only (sampling guides stay cold, as with the private
  /// cache); replaces the private cache until the next enable/share call.
  void share_rollout_cache(std::shared_ptr<SharedActionCache> cache) override;
  std::int64_t rollout_cache_hits() const override {
    return rollout_cache_hits_;
  }
  std::int64_t rollout_cache_misses() const override {
    return rollout_cache_misses_;
  }
  std::int64_t forward_calls() const override { return forward_calls_; }
  std::int64_t forward_rows() const override { return forward_rows_; }
  const std::vector<std::int64_t>* forward_hist() const override {
    return &forward_hist_;
  }
  void reset_forward_stats() override {
    forward_calls_ = 0;
    forward_rows_ = 0;
    forward_hist_.clear();
  }
  /// Clones with a private copy of the wrapped Policy (the network keeps a
  /// mutable inference workspace, so sharing one across threads races) —
  /// except in shared-inference mode, where the weights are immutable and
  /// the clone shares them (the "replaces N cloned policies" saving).
  std::shared_ptr<DecisionPolicy> clone() const override;

  /// Fused batch evaluation: all `n` states featurized into one input
  /// matrix and scored by ONE network forward (DESIGN.md §10).
  bool supports_batch_eval() const override { return true; }
  std::vector<std::vector<std::pair<int, double>>> action_weights_batch(
      const SchedulingEnv* const* envs, std::size_t n) override;

  /// The ready-window width the wrapped network expects.
  std::size_t max_ready() const {
    return policy_->featurizer().options().max_ready;
  }

 private:
  /// Converts one masked-softmax probability vector into the sorted
  /// action_weights form.
  std::vector<std::pair<int, double>> weights_from_probs(
      const std::vector<double>& probs) const;
  /// The one forward funnel: fills batch_masks_/batch_probs_ for `n`
  /// states, through the shared service when attached (rows fuse with
  /// other clients) or the wrapped Policy's workspace otherwise.
  void forward_batch(const SchedulingEnv* const* envs, std::size_t n);
  /// Tallies one private-weights kernel invocation of `rows` rows.
  void record_forward(std::size_t rows);

  std::shared_ptr<const Policy> policy_;
  bool greedy_;
  /// Shared-inference mode (null = private forwards).
  std::shared_ptr<infer::InferenceService> shared_;
  /// Reused scratch: one guide serves one thread (parallel search clones),
  /// so holding the buffers across calls makes the steady state
  /// allocation-free.
  std::vector<bool> mask_buf_;
  std::vector<double> probs_buf_;
  std::vector<std::vector<bool>> batch_masks_;
  std::vector<std::vector<double>> batch_probs_;
  /// Rollout cache (greedy mode only; see enable_rollout_cache) plus the
  /// pick_batch probe scratch and hit/miss tallies.  At most one of the
  /// private/shared caches is armed at a time.
  std::unique_ptr<ActionCache> rollout_cache_;
  std::shared_ptr<SharedActionCache> shared_rollout_cache_;
  std::int64_t rollout_cache_hits_ = 0;
  std::int64_t rollout_cache_misses_ = 0;
  /// Private-weights physical forward tallies (see DecisionPolicy docs).
  std::int64_t forward_calls_ = 0;
  std::int64_t forward_rows_ = 0;
  std::vector<std::int64_t> forward_hist_;
  ActionCache::Key key_buf_;
  std::vector<ActionCache::Key> miss_keys_;
  std::vector<const SchedulingEnv*> miss_envs_;
  std::vector<std::size_t> miss_rows_;
};

}  // namespace spear
