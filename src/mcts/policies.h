// Decision policies plugged into MCTS expansion and rollout (§III-A/C).
//
// Pure MCTS uses RandomDecisionPolicy for both (the classic algorithm);
// Spear swaps in DrlDecisionPolicy — the trained policy network — so that
// expansion tries promising actions first and rollouts estimate makespans
// like an expert instead of a random walker.  HeuristicDecisionPolicy (CP /
// Tetris scores) sits in between and is used in ablations.
//
// The env-level action encoding is used throughout: i >= 0 schedules the
// i-th visible ready task, SchedulingEnv::kProcessAction processes.  Only
// valid actions are produced (fitting ready tasks; process only when busy),
// which realizes both of the paper's expansion filters.

#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "env/env.h"
#include "rl/policy.h"

namespace spear {

class DecisionPolicy {
 public:
  virtual ~DecisionPolicy() = default;

  /// Valid actions with non-negative preference weights (need not be
  /// normalized; all-equal means "no preference").  Never empty unless
  /// env.done().  Actions are returned in DESCENDING weight order, ties in
  /// stable env order, so MCTS expansion can pop the most promising action
  /// from the front without re-sorting on the hot path.
  virtual std::vector<std::pair<int, double>> action_weights(
      const SchedulingEnv& env) = 0;

  /// Picks one valid action for rollouts.  Default: samples from
  /// action_weights.
  virtual int pick(const SchedulingEnv& env, Rng& rng);

  /// True when action_weights_batch fuses its evaluations (one network
  /// forward for all `n` states) instead of looping.  MCTS only
  /// batch-prepares children for such guides — for everything else the
  /// lazy one-state-at-a-time path is already optimal.
  virtual bool supports_batch_eval() const { return false; }

  /// Evaluates `n` states at once; out[i] == action_weights(*envs[i]) for
  /// every i (bit-identical — the contract batched inference must keep).
  /// The default loops over action_weights; batch-capable policies fuse.
  virtual std::vector<std::vector<std::pair<int, double>>>
  action_weights_batch(const SchedulingEnv* const* envs, std::size_t n);

  /// Deep, thread-independent copy for parallel search: each worker owns a
  /// clone so concurrent action_weights/pick calls never share mutable
  /// state.  Returns nullptr when the policy is not cloneable; parallel
  /// MCTS then falls back to the serial search path.
  virtual std::shared_ptr<DecisionPolicy> clone() const { return nullptr; }
};

/// Uniform over valid actions: classic MCTS.
class RandomDecisionPolicy : public DecisionPolicy {
 public:
  std::vector<std::pair<int, double>> action_weights(
      const SchedulingEnv& env) override;
  std::shared_ptr<DecisionPolicy> clone() const override;
};

/// Scores schedule actions by a blend of CP b-level and Tetris alignment;
/// process gets the mean schedule weight.  Deterministic pick (argmax).
class HeuristicDecisionPolicy : public DecisionPolicy {
 public:
  std::vector<std::pair<int, double>> action_weights(
      const SchedulingEnv& env) override;
  int pick(const SchedulingEnv& env, Rng& rng) override;
  std::shared_ptr<DecisionPolicy> clone() const override;
};

/// Pure critical-path policy: schedule actions weighted by b-level urgency
/// alone.  Deterministic pick (argmax); an anytime-MCTS fallback choice.
class CpDecisionPolicy : public DecisionPolicy {
 public:
  std::vector<std::pair<int, double>> action_weights(
      const SchedulingEnv& env) override;
  int pick(const SchedulingEnv& env, Rng& rng) override;
  std::shared_ptr<DecisionPolicy> clone() const override;
};

/// Pure Tetris policy: schedule actions weighted by resource alignment
/// alone.  Deterministic pick (argmax); an anytime-MCTS fallback choice.
class TetrisDecisionPolicy : public DecisionPolicy {
 public:
  std::vector<std::pair<int, double>> action_weights(
      const SchedulingEnv& env) override;
  int pick(const SchedulingEnv& env, Rng& rng) override;
  std::shared_ptr<DecisionPolicy> clone() const override;
};

/// The trained DRL policy.  Weights are the masked softmax probabilities;
/// rollout picks sample from them (set `greedy` for argmax rollouts).
class DrlDecisionPolicy : public DecisionPolicy {
 public:
  explicit DrlDecisionPolicy(std::shared_ptr<const Policy> policy,
                             bool greedy = false);

  std::vector<std::pair<int, double>> action_weights(
      const SchedulingEnv& env) override;
  int pick(const SchedulingEnv& env, Rng& rng) override;
  /// Clones with a private copy of the wrapped Policy (the network keeps a
  /// mutable inference workspace, so sharing one across threads races).
  std::shared_ptr<DecisionPolicy> clone() const override;

  /// Fused batch evaluation: all `n` states featurized into one input
  /// matrix and scored by ONE network forward (DESIGN.md §10).
  bool supports_batch_eval() const override { return true; }
  std::vector<std::vector<std::pair<int, double>>> action_weights_batch(
      const SchedulingEnv* const* envs, std::size_t n) override;

  /// The ready-window width the wrapped network expects.
  std::size_t max_ready() const {
    return policy_->featurizer().options().max_ready;
  }

 private:
  /// Converts one masked-softmax probability vector into the sorted
  /// action_weights form.
  std::vector<std::pair<int, double>> weights_from_probs(
      const std::vector<double>& probs) const;

  std::shared_ptr<const Policy> policy_;
  bool greedy_;
  /// Reused scratch: one guide serves one thread (parallel search clones),
  /// so holding the buffers across calls makes the steady state
  /// allocation-free.
  std::vector<bool> mask_buf_;
  std::vector<double> probs_buf_;
  std::vector<std::vector<bool>> batch_masks_;
  std::vector<std::vector<double>> batch_probs_;
};

}  // namespace spear
