// The MCTS search tree (§III-C).
//
// Each node is one state — a unique history of actions from the decision
// root — holding a full environment snapshot, so selection never
// re-simulates a prefix.  Values are negative makespans; per the paper's
// backpropagation rule every node tracks both the MAXIMUM value seen in
// rollouts through it (the exploitation score) and the running mean (the
// tiebreaker).  Nodes live in an arena indexed by NodeId; the arena is
// pre-reserved to the decision budget (see MctsScheduler) so expansion is a
// bump allocation, never a reallocation.

#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "env/env.h"

namespace spear {

using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;

/// A speculatively constructed child awaiting expansion — the unit of the
/// batched guide evaluation (DESIGN.md §10).  The child state was stepped
/// and its own untried ordering scored up front (one fused network forward
/// for ALL siblings); expansion then pops PreparedChild entries in lockstep
/// with `untried`, bit-identical to constructing each child lazily.
struct PreparedChild {
  int action = 0;
  SchedulingEnv state;
  /// Guide ordering for the child (empty when terminal/aborted).
  std::vector<std::pair<int, double>> untried;
  bool terminal = false;
  bool aborted = false;
  /// Fault deltas observed while stepping into the child; folded into
  /// Stats only when the child is actually expanded, so telemetry matches
  /// the lazy path exactly.
  std::int64_t fault_failures = 0;
  std::int64_t fault_retries = 0;

  PreparedChild(int a, SchedulingEnv s) : action(a), state(std::move(s)) {}
};

struct SearchNode {
  SchedulingEnv state;
  int action_from_parent = 0;
  NodeId parent = kNoNode;
  std::vector<NodeId> children;
  /// Untried actions in descending guidance weight; expansion pops from the
  /// front so the most promising action is tried first.
  std::vector<std::pair<int, double>> untried;
  /// When prepared_ready, prepared[i] is the precomputed child for
  /// untried[i]; both lists pop from the front together (root nodes only —
  /// deeper nodes expand lazily, see MctsScheduler).
  std::vector<PreparedChild> prepared;
  bool prepared_ready = false;
  bool terminal = false;
  /// Fault mode: the action into this node aborted the simulated job
  /// (retry budget exhausted); evaluated with a fixed penalty, never
  /// expanded.
  bool aborted = false;

  std::int64_t visits = 0;
  double max_value = -std::numeric_limits<double>::infinity();
  double sum_value = 0.0;
  /// Virtual loss (leaf-parallel search only): number of in-flight descents
  /// currently holding this node on their path.  Inflates the node's visit
  /// count during selection so concurrent descents spread over siblings,
  /// and is released when the descent's evaluation is backed up.  Always 0
  /// outside a leaf-parallel tick, so the serial and root-parallel searches
  /// never observe it.
  std::int32_t vloss = 0;

  explicit SearchNode(SchedulingEnv s) : state(std::move(s)) {}

  double mean_value() const {
    return visits > 0 ? sum_value / static_cast<double>(visits) : 0.0;
  }
};

class SearchTree {
 public:
  explicit SearchTree(SchedulingEnv root_state) {
    nodes_.emplace_back(std::move(root_state));
  }

  NodeId root() const { return 0; }
  SearchNode& node(NodeId id) { return nodes_[static_cast<std::size_t>(id)]; }
  const SearchNode& node(NodeId id) const {
    return nodes_[static_cast<std::size_t>(id)];
  }
  std::size_t size() const { return nodes_.size(); }

  /// Pre-sizes the node arena to hold `total_nodes` nodes, so a budgeted
  /// search (at most one expansion per iteration) never reallocates — and
  /// never moves node states — mid-decision.
  void reserve(std::size_t total_nodes) { nodes_.reserve(total_nodes); }

  /// Appends a child of `parent` reached via `action`.
  NodeId add_child(NodeId parent, int action, SchedulingEnv state) {
    const auto id = static_cast<NodeId>(nodes_.size());
    nodes_.emplace_back(std::move(state));
    nodes_.back().parent = parent;
    nodes_.back().action_from_parent = action;
    node(parent).children.push_back(id);
    return id;
  }

  /// Updates visits/max/sum on `id` and every ancestor (§III-C
  /// backpropagation: max with mean as tiebreaker).
  void backpropagate(NodeId id, double value) {
    for (NodeId cur = id; cur != kNoNode; cur = node(cur).parent) {
      SearchNode& n = node(cur);
      ++n.visits;
      n.sum_value += value;
      if (value > n.max_value) n.max_value = value;
    }
  }

  /// New tree whose root is (a copy of) `new_root` and whose nodes are
  /// exactly the subtree below it — the paper's "selected child becomes
  /// the new root" tree reuse, compacting away the discarded siblings.
  SearchTree reroot(NodeId new_root) const {
    SearchTree out(node(new_root).state);
    copy_node_into(out, new_root, out.root(), /*copy_children=*/true);
    return out;
  }

 private:
  /// Copies statistics/untried of `src` onto `dst` in `out`, then clones
  /// the children subtrees.
  void copy_node_into(SearchTree& out, NodeId src, NodeId dst,
                      bool copy_children) const {
    const SearchNode& from = node(src);
    SearchNode& to = out.node(dst);
    to.untried = from.untried;
    to.prepared = from.prepared;
    to.prepared_ready = from.prepared_ready;
    to.terminal = from.terminal;
    to.aborted = from.aborted;
    to.visits = from.visits;
    to.max_value = from.max_value;
    to.sum_value = from.sum_value;
    to.vloss = from.vloss;
    if (!copy_children) return;
    for (NodeId child : from.children) {
      const NodeId cloned = out.add_child(
          dst, node(child).action_from_parent, node(child).state);
      copy_node_into(out, child, cloned, true);
    }
  }

  std::vector<SearchNode> nodes_;
};

}  // namespace spear
