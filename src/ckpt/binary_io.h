// Little-endian binary encoding primitives for the checkpoint format.
//
// Doubles travel as their IEEE-754 bit pattern (std::bit_cast to uint64),
// so every value — including NaN payloads, infinities, denormals and -0.0 —
// round-trips exactly.  That bit-exactness is what makes resumed training
// curves byte-identical to uninterrupted ones (DESIGN.md §9); the text
// format in nn/serialize.cpp cannot give that guarantee.
//
// The reader is bounds-checked: any read past the end throws
// CheckpointError rather than returning garbage, which is how truncated
// checkpoint files are detected even before the CRC footer is consulted.

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace spear::ckpt {

/// Thrown on malformed, truncated or corrupt checkpoint data.
class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Appends little-endian primitives to a growing byte buffer.
class BinaryWriter {
 public:
  void put_u8(std::uint8_t v) { bytes_.push_back(v); }
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_double(double v);
  /// Length-prefixed (u64) raw bytes.
  void put_string(const std::string& s);
  /// Length-prefixed (u64) sequence of bit-exact doubles.
  void put_doubles(const std::vector<double>& v);
  /// Length-prefixed (u64) sequence of u64s.
  void put_u64s(const std::vector<std::uint64_t>& v);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Reads the same encoding back; every accessor throws CheckpointError on
/// out-of-bounds access ("truncated") or absurd length prefixes.
class BinaryReader {
 public:
  BinaryReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit BinaryReader(const std::vector<std::uint8_t>& bytes)
      : BinaryReader(bytes.data(), bytes.size()) {}

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  double get_double();
  std::string get_string();
  std::vector<double> get_doubles();
  std::vector<std::uint64_t> get_u64s();

  std::size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  void need(std::size_t n) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace spear::ckpt
