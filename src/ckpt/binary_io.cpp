#include "ckpt/binary_io.h"

#include <bit>
#include <cstring>

namespace spear::ckpt {

void BinaryWriter::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void BinaryWriter::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void BinaryWriter::put_double(double v) {
  put_u64(std::bit_cast<std::uint64_t>(v));
}

void BinaryWriter::put_string(const std::string& s) {
  put_u64(s.size());
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void BinaryWriter::put_doubles(const std::vector<double>& v) {
  put_u64(v.size());
  for (double d : v) put_double(d);
}

void BinaryWriter::put_u64s(const std::vector<std::uint64_t>& v) {
  put_u64(v.size());
  for (std::uint64_t u : v) put_u64(u);
}

void BinaryReader::need(std::size_t n) const {
  if (size_ - pos_ < n) {
    throw CheckpointError("checkpoint payload truncated: need " +
                          std::to_string(n) + " bytes at offset " +
                          std::to_string(pos_) + ", have " +
                          std::to_string(size_ - pos_));
  }
}

std::uint8_t BinaryReader::get_u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t BinaryReader::get_u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t BinaryReader::get_u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

double BinaryReader::get_double() {
  return std::bit_cast<double>(get_u64());
}

std::string BinaryReader::get_string() {
  const std::uint64_t n = get_u64();
  need(n);
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

std::vector<double> BinaryReader::get_doubles() {
  const std::uint64_t n = get_u64();
  // Compare against remaining/8 rather than multiplying n so an absurd
  // length prefix cannot overflow past the bounds check.
  if (n > (size_ - pos_) / 8) {
    throw CheckpointError("checkpoint payload truncated: array of " +
                          std::to_string(n) + " elements exceeds remaining " +
                          std::to_string(size_ - pos_) + " bytes");
  }
  std::vector<double> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(get_double());
  return v;
}

std::vector<std::uint64_t> BinaryReader::get_u64s() {
  const std::uint64_t n = get_u64();
  if (n > (size_ - pos_) / 8) {
    throw CheckpointError("checkpoint payload truncated: array of " +
                          std::to_string(n) + " elements exceeds remaining " +
                          std::to_string(size_ - pos_) + " bytes");
  }
  std::vector<std::uint64_t> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(get_u64());
  return v;
}

}  // namespace spear::ckpt
