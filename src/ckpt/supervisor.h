// Compatibility alias: the SIGINT/SIGTERM supervisor and Watchdog were
// promoted to src/common/supervisor.h so the scheduling-as-a-service daemon
// and the trainers share one process-wide stop-flag path (DESIGN.md §12).
// Existing spear::ckpt:: call sites keep working through these aliases; new
// code should include "common/supervisor.h" and use the spear:: names.

#pragma once

#include "common/supervisor.h"

namespace spear::ckpt {

using ::spear::install_signal_handlers;
using ::spear::request_stop;
using ::spear::reset_stop_flag;
using ::spear::stop_requested;
using ::spear::Watchdog;
using ::spear::WatchdogScope;

}  // namespace spear::ckpt
