#include "ckpt/manager.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "obs/obs.h"

namespace spear::ckpt {

namespace fs = std::filesystem;

namespace {

constexpr const char* kManifestHeader = "spear-ckpt-manifest v1";
constexpr const char* kExtension = ".spearck";

std::string generation_name(const std::string& basename, std::uint64_t gen) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "-%06llu",
                static_cast<unsigned long long>(gen));
  return basename + buf + kExtension;
}

}  // namespace

CheckpointManager::CheckpointManager(CheckpointManagerOptions options)
    : options_(std::move(options)) {
  if (options_.dir.empty()) {
    throw CheckpointError("CheckpointManager: empty checkpoint directory");
  }
  if (options_.keep == 0) options_.keep = 1;
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) {
    throw CheckpointError("CheckpointManager: cannot create " + options_.dir +
                          ": " + ec.message());
  }
}

std::string CheckpointManager::path_for(std::uint64_t generation) const {
  return (fs::path(options_.dir) /
          generation_name(options_.basename, generation))
      .string();
}

std::string CheckpointManager::manifest_path() const {
  return (fs::path(options_.dir) / "MANIFEST").string();
}

std::vector<std::uint64_t> CheckpointManager::scan_directory() const {
  std::vector<std::uint64_t> gens;
  const std::string prefix = options_.basename + "-";
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= prefix.size() + std::strlen(kExtension)) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - std::strlen(kExtension),
                     std::strlen(kExtension), kExtension) != 0) {
      continue;
    }
    const std::string digits = name.substr(
        prefix.size(), name.size() - prefix.size() - std::strlen(kExtension));
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    gens.push_back(std::strtoull(digits.c_str(), nullptr, 10));
  }
  std::sort(gens.begin(), gens.end());
  gens.erase(std::unique(gens.begin(), gens.end()), gens.end());
  return gens;
}

std::vector<std::uint64_t> CheckpointManager::generations() const {
  std::ifstream in(manifest_path());
  if (!in) return scan_directory();
  std::string header;
  if (!std::getline(in, header) || header != kManifestHeader) {
    SPEAR_LOG(Warn) << "checkpoint manifest " << manifest_path()
                    << " is corrupt; falling back to a directory scan";
    if (obs::enabled()) obs::count("ckpt.manifest_failures");
    return scan_directory();
  }
  std::vector<std::uint64_t> gens;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::uint64_t gen = 0;
    std::string name;
    if (!(ls >> gen >> name)) {
      SPEAR_LOG(Warn) << "checkpoint manifest " << manifest_path()
                      << " has a malformed line; falling back to a "
                         "directory scan";
      if (obs::enabled()) obs::count("ckpt.manifest_failures");
      return scan_directory();
    }
    gens.push_back(gen);
  }
  std::sort(gens.begin(), gens.end());
  gens.erase(std::unique(gens.begin(), gens.end()), gens.end());
  return gens;
}

void CheckpointManager::write_manifest(
    const std::vector<std::uint64_t>& generations) const {
  std::ostringstream os;
  os << kManifestHeader << "\n";
  for (std::uint64_t gen : generations) {
    os << gen << " " << generation_name(options_.basename, gen) << "\n";
  }
  const std::string text = os.str();

  const std::string path = manifest_path();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) {
    throw CheckpointError("CheckpointManager: cannot open " + tmp + ": " +
                          std::strerror(errno));
  }
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
      std::fflush(f) == 0;
  if (std::fclose(f) != 0 || !ok) {
    std::remove(tmp.c_str());
    throw CheckpointError("CheckpointManager: write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw CheckpointError("CheckpointManager: rename to " + path +
                          " failed: " + std::strerror(errno));
  }
}

std::uint64_t CheckpointManager::save(const TrainerState& state) {
  std::vector<std::uint64_t> gens = generations();
  const std::uint64_t next = gens.empty() ? 1 : gens.back() + 1;

  write_checkpoint_file(path_for(next), state);
  gens.push_back(next);

  // Prune beyond `keep`, oldest first, then publish the manifest.  Pruning
  // before the manifest write keeps the manifest a subset of what is on
  // disk at every instant.
  while (gens.size() > options_.keep) {
    const std::uint64_t victim = gens.front();
    gens.erase(gens.begin());
    std::error_code ec;
    fs::remove(path_for(victim), ec);  // best-effort; scan tolerates leftovers
  }
  write_manifest(gens);

  if (obs::enabled()) {
    obs::count("ckpt.saves");
    obs::gauge("ckpt.last_generation", static_cast<double>(next));
  }
  SPEAR_LOG(Info) << "checkpoint: saved generation " << next << " ("
                  << state.phase << ", next epoch " << state.next_epoch
                  << ") to " << path_for(next);
  return next;
}

std::optional<LoadedCheckpoint> CheckpointManager::load_latest() {
  const std::vector<std::uint64_t> gens = generations();
  std::size_t corrupt = 0;
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    const std::string path = path_for(*it);
    try {
      LoadedCheckpoint loaded;
      loaded.state = read_checkpoint_file(path);
      loaded.generation = *it;
      loaded.path = path;
      loaded.corrupt_skipped = corrupt;
      if (obs::enabled()) obs::count("ckpt.loads");
      if (corrupt > 0) {
        SPEAR_LOG(Warn) << "checkpoint: recovered from generation " << *it
                        << " after skipping " << corrupt
                        << " corrupt newer generation(s)";
      }
      return loaded;
    } catch (const CheckpointError& e) {
      ++corrupt;
      SPEAR_LOG(Warn) << "checkpoint: generation " << *it
                      << " failed verification (" << e.what()
                      << "); falling back to the previous generation";
      if (obs::enabled()) obs::count("ckpt.load_failures");
    }
  }
  return std::nullopt;
}

}  // namespace spear::ckpt
