#include "ckpt/checkpoint.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define SPEAR_CKPT_HAVE_FSYNC 1
#endif

#include "ckpt/crc32.h"

namespace spear::ckpt {

namespace {

void check_layer_shapes(const TensorSnapshot& snap) {
  if (snap.sizes.size() < 2) {
    throw CheckpointError("tensor snapshot: fewer than 2 layer sizes");
  }
  const std::size_t layers = snap.sizes.size() - 1;
  if (snap.weights.size() != layers || snap.bias.size() != layers) {
    throw CheckpointError("tensor snapshot: layer count mismatch");
  }
  for (std::size_t l = 0; l < layers; ++l) {
    const std::uint64_t fan_in = snap.sizes[l];
    const std::uint64_t fan_out = snap.sizes[l + 1];
    if (snap.weights[l].size() != fan_in * fan_out ||
        snap.bias[l].size() != fan_out) {
      throw CheckpointError("tensor snapshot: bad shape at layer " +
                            std::to_string(l));
    }
  }
}

}  // namespace

TensorSnapshot snapshot_of(const Mlp& net) {
  TensorSnapshot snap;
  for (std::size_t s : net.sizes()) snap.sizes.push_back(s);
  for (const auto& layer : net.layers()) {
    snap.weights.emplace_back(layer.weights.data().begin(),
                              layer.weights.data().end());
    snap.bias.push_back(layer.bias);
  }
  return snap;
}

TensorSnapshot snapshot_of(const Mlp::Gradients& grads) {
  TensorSnapshot snap;
  if (grads.d_weights.empty()) {
    throw CheckpointError("snapshot_of: empty gradient buffers");
  }
  snap.sizes.push_back(grads.d_weights.front().rows());
  for (const auto& w : grads.d_weights) snap.sizes.push_back(w.cols());
  for (const auto& w : grads.d_weights) {
    snap.weights.emplace_back(w.data().begin(), w.data().end());
  }
  for (const auto& b : grads.d_bias) snap.bias.push_back(b);
  return snap;
}

void restore_into(Mlp& net, const TensorSnapshot& snap) {
  check_layer_shapes(snap);
  if (net.sizes().size() != snap.sizes.size()) {
    throw CheckpointError("restore_into(Mlp): topology depth mismatch");
  }
  for (std::size_t i = 0; i < snap.sizes.size(); ++i) {
    if (net.sizes()[i] != snap.sizes[i]) {
      throw CheckpointError("restore_into(Mlp): layer width mismatch at " +
                            std::to_string(i));
    }
  }
  for (std::size_t l = 0; l < net.layers().size(); ++l) {
    net.layers()[l].weights.data().assign(snap.weights[l].begin(),
                                          snap.weights[l].end());
    net.layers()[l].bias = snap.bias[l];
  }
}

void restore_into(Mlp::Gradients& grads, const TensorSnapshot& snap) {
  check_layer_shapes(snap);
  const std::size_t layers = snap.sizes.size() - 1;
  if (grads.d_weights.size() != layers || grads.d_bias.size() != layers) {
    throw CheckpointError("restore_into(Gradients): layer count mismatch");
  }
  for (std::size_t l = 0; l < layers; ++l) {
    if (grads.d_weights[l].size() != snap.weights[l].size() ||
        grads.d_bias[l].size() != snap.bias[l].size()) {
      throw CheckpointError("restore_into(Gradients): shape mismatch at " +
                            std::to_string(l));
    }
    grads.d_weights[l].data().assign(snap.weights[l].begin(),
                                     snap.weights[l].end());
    grads.d_bias[l] = snap.bias[l];
  }
}

namespace {

void encode_tensor(BinaryWriter& w, const TensorSnapshot& snap) {
  w.put_u64s(snap.sizes);
  w.put_u64(snap.weights.size());
  for (const auto& layer : snap.weights) w.put_doubles(layer);
  w.put_u64(snap.bias.size());
  for (const auto& layer : snap.bias) w.put_doubles(layer);
}

TensorSnapshot decode_tensor(BinaryReader& r) {
  TensorSnapshot snap;
  snap.sizes = r.get_u64s();
  const std::uint64_t n_weights = r.get_u64();
  for (std::uint64_t i = 0; i < n_weights; ++i) {
    snap.weights.push_back(r.get_doubles());
  }
  const std::uint64_t n_bias = r.get_u64();
  for (std::uint64_t i = 0; i < n_bias; ++i) {
    snap.bias.push_back(r.get_doubles());
  }
  check_layer_shapes(snap);
  return snap;
}

}  // namespace

std::vector<std::uint8_t> encode_trainer_state(const TrainerState& state) {
  BinaryWriter w;
  w.put_string(state.phase);
  w.put_u64(state.next_epoch);
  w.put_u64(state.episodes);
  w.put_u64(state.clipped_updates);
  w.put_u64(state.skipped_updates);
  w.put_double(state.baseline);
  for (std::uint64_t s : state.rng.s) w.put_u64(s);
  w.put_double(state.rng.cached_normal);
  w.put_u8(state.rng.has_cached_normal ? 1 : 0);
  w.put_doubles(state.curve);
  w.put_u64s(state.permutation);
  encode_tensor(w, state.net);
  encode_tensor(w, state.optimizer);
  return w.take();
}

TrainerState decode_trainer_state(const std::uint8_t* data, std::size_t size) {
  BinaryReader r(data, size);
  TrainerState state;
  state.phase = r.get_string();
  if (state.phase != kPhaseImitation && state.phase != kPhaseReinforce) {
    throw CheckpointError("unknown trainer phase \"" + state.phase + "\"");
  }
  state.next_epoch = r.get_u64();
  state.episodes = r.get_u64();
  state.clipped_updates = r.get_u64();
  state.skipped_updates = r.get_u64();
  state.baseline = r.get_double();
  for (auto& s : state.rng.s) s = r.get_u64();
  state.rng.cached_normal = r.get_double();
  state.rng.has_cached_normal = r.get_u8() != 0;
  state.curve = r.get_doubles();
  state.permutation = r.get_u64s();
  state.net = decode_tensor(r);
  state.optimizer = decode_tensor(r);
  if (!r.exhausted()) {
    throw CheckpointError("checkpoint payload has " +
                          std::to_string(r.remaining()) +
                          " trailing bytes");
  }
  return state;
}

void write_checkpoint_file(const std::string& path,
                           const TrainerState& state) {
  const std::vector<std::uint8_t> payload = encode_trainer_state(state);

  BinaryWriter w;
  for (char c : kMagic) w.put_u8(static_cast<std::uint8_t>(c));
  w.put_u32(kFormatVersion);
  w.put_u64(payload.size());
  std::vector<std::uint8_t> bytes = w.take();
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  const std::uint32_t crc = crc32(bytes.data(), bytes.size());
  BinaryWriter footer;
  footer.put_u32(crc);
  const auto& tail = footer.bytes();
  bytes.insert(bytes.end(), tail.begin(), tail.end());

  // Atomic publish: write the whole image to a sibling tmp file, force it
  // to disk, then rename over the target.  rename(2) within one directory
  // is atomic, so readers see either the previous checkpoint or this one.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) {
    throw CheckpointError("write_checkpoint_file: cannot open " + tmp + ": " +
                          std::strerror(errno));
  }
  const bool wrote =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size() &&
      std::fflush(f) == 0;
#if SPEAR_CKPT_HAVE_FSYNC
  const bool synced = wrote && ::fsync(::fileno(f)) == 0;
#else
  const bool synced = wrote;
#endif
  if (std::fclose(f) != 0 || !synced) {
    std::remove(tmp.c_str());
    throw CheckpointError("write_checkpoint_file: write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw CheckpointError("write_checkpoint_file: rename to " + path +
                          " failed: " + std::strerror(errno));
  }
}

TrainerState read_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw CheckpointError("read_checkpoint_file: cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();
  const auto* data = reinterpret_cast<const std::uint8_t*>(bytes.data());

  constexpr std::size_t kHeaderSize = 8 + 4 + 8;  // magic + version + length
  constexpr std::size_t kFooterSize = 4;
  if (bytes.size() < kHeaderSize + kFooterSize) {
    throw CheckpointError("read_checkpoint_file: " + path +
                          " is truncated (" + std::to_string(bytes.size()) +
                          " bytes)");
  }
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    throw CheckpointError("read_checkpoint_file: " + path +
                          " has a bad magic header");
  }
  BinaryReader header(data + sizeof(kMagic), bytes.size() - sizeof(kMagic));
  const std::uint32_t version = header.get_u32();
  if (version != kFormatVersion) {
    throw CheckpointError("read_checkpoint_file: " + path +
                          " has unsupported version " +
                          std::to_string(version));
  }
  const std::uint64_t payload_size = header.get_u64();
  if (payload_size != bytes.size() - kHeaderSize - kFooterSize) {
    throw CheckpointError("read_checkpoint_file: " + path +
                          " is truncated: payload claims " +
                          std::to_string(payload_size) + " bytes, file has " +
                          std::to_string(bytes.size()));
  }
  const std::size_t body = kHeaderSize + payload_size;
  BinaryReader footer(data + body, kFooterSize);
  const std::uint32_t stored_crc = footer.get_u32();
  const std::uint32_t actual_crc = crc32(data, body);
  if (stored_crc != actual_crc) {
    throw CheckpointError("read_checkpoint_file: " + path +
                          " failed CRC verification");
  }
  try {
    return decode_trainer_state(data + kHeaderSize, payload_size);
  } catch (const CheckpointError& e) {
    throw CheckpointError("read_checkpoint_file: " + path + ": " + e.what());
  }
}

}  // namespace spear::ckpt
