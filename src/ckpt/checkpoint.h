// Crash-safe trainer checkpoints (DESIGN.md §9).
//
// A checkpoint file is a versioned binary container:
//
//   bytes 0..7   magic "SPEARCKP"
//   u32          format version (currently 1)
//   u64          payload size in bytes
//   payload      TrainerState, encoded by encode_trainer_state()
//   u32          CRC-32 (IEEE) over everything above the footer
//
// Files are written atomically: the bytes go to "<path>.tmp" in the same
// directory, are flushed and fsync'd, and the tmp file is then renamed over
// the target.  A crash at any point leaves either the old file or the new
// one, never a torn mix; a torn tmp file is ignored by readers.  Reads
// verify magic, version, length and CRC and throw CheckpointError on any
// mismatch — the rotation layer (ckpt/manager.h) turns that into a fallback
// to the previous good generation.
//
// TrainerState is the union of everything the RL trainers need to continue
// a run bit-identically: network parameters, RMSProp accumulators, the Rng
// engine state (incl. the Box-Muller cache), epoch/episode counters, the
// last REINFORCE baseline, the learning curve recorded so far and the
// imitation shuffle permutation.  Doubles are stored bit-exact.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/binary_io.h"
#include "common/rng.h"
#include "nn/mlp.h"

namespace spear::ckpt {

inline constexpr char kMagic[8] = {'S', 'P', 'E', 'A', 'R', 'C', 'K', 'P'};
inline constexpr std::uint32_t kFormatVersion = 1;

/// Bit-exact copy of an Mlp's (or Mlp::Gradients') parameters.
struct TensorSnapshot {
  std::vector<std::uint64_t> sizes;        // layer widths {in, hidden..., out}
  std::vector<std::vector<double>> weights;  // per layer, row-major
  std::vector<std::vector<double>> bias;     // per layer

  friend bool operator==(const TensorSnapshot&, const TensorSnapshot&) =
      default;
};

TensorSnapshot snapshot_of(const Mlp& net);
TensorSnapshot snapshot_of(const Mlp::Gradients& grads);

/// Restores parameters in place.  Throws CheckpointError on shape mismatch.
void restore_into(Mlp& net, const TensorSnapshot& snap);
void restore_into(Mlp::Gradients& grads, const TensorSnapshot& snap);

/// Which trainer a checkpoint belongs to.
inline constexpr const char* kPhaseImitation = "imitation";
inline constexpr const char* kPhaseReinforce = "reinforce";

struct TrainerState {
  std::string phase;            // kPhaseImitation or kPhaseReinforce
  std::uint64_t next_epoch = 0;  // first epoch that has NOT run yet
  std::uint64_t episodes = 0;    // episodes (or batches) completed so far
  std::uint64_t clipped_updates = 0;
  std::uint64_t skipped_updates = 0;
  double baseline = 0.0;         // last REINFORCE per-example baseline
  RngState rng;
  std::vector<double> curve;     // per-epoch metric recorded so far
  std::vector<std::uint64_t> permutation;  // imitation shuffle order
  TensorSnapshot net;
  TensorSnapshot optimizer;      // RMSProp mean-square accumulators

  friend bool operator==(const TrainerState&, const TrainerState&) = default;
};

/// Payload (no container framing) round-trip.
std::vector<std::uint8_t> encode_trainer_state(const TrainerState& state);
TrainerState decode_trainer_state(const std::uint8_t* data, std::size_t size);

/// Writes `state` to `path` atomically (tmp + flush + fsync + rename).
/// Throws CheckpointError on I/O failure.
void write_checkpoint_file(const std::string& path, const TrainerState& state);

/// Reads and fully verifies a checkpoint file.  Throws CheckpointError on a
/// missing file, bad magic/version, truncation or CRC mismatch; the message
/// always names the path.
TrainerState read_checkpoint_file(const std::string& path);

}  // namespace spear::ckpt
