// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the integrity
// footer of every checkpoint file (DESIGN.md §9).  Self-contained so the
// checkpoint layer needs no zlib; a build-time-generated table keeps the
// per-byte cost to one lookup and one xor.

#pragma once

#include <cstddef>
#include <cstdint>

namespace spear::ckpt {

/// Incremental CRC-32: feed chunks, then value().  A fresh object (or
/// reset()) starts a new message.
class Crc32 {
 public:
  void update(const void* data, std::size_t size);
  void reset() { state_ = 0xffffffffu; }
  std::uint32_t value() const { return state_ ^ 0xffffffffu; }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

/// One-shot convenience.
std::uint32_t crc32(const void* data, std::size_t size);

}  // namespace spear::ckpt
