// Checkpoint rotation and recovery (DESIGN.md §9).
//
// A checkpoint directory holds up to `keep` generations plus a manifest:
//
//   <dir>/MANIFEST            text index, newest generation last
//   <dir>/<basename>-000012.spearck
//   <dir>/<basename>-000013.spearck
//   ...
//
// save() writes the next generation atomically, rewrites the manifest
// (also atomically) and prunes generations beyond `keep`.  load_latest()
// walks generations newest-first: a missing, truncated or CRC-corrupt file
// logs a warning, bumps the "ckpt.load_failures" counter and falls back to
// the previous generation — exactly the recovery contract the resume tests
// exercise.  A missing or corrupt manifest degrades to a directory scan, so
// losing the manifest never loses the checkpoints.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"

namespace spear::ckpt {

struct CheckpointManagerOptions {
  std::string dir;
  std::string basename = "ckpt";
  /// Generations retained on disk; older ones are pruned after each save.
  std::size_t keep = 3;
};

/// A successfully loaded checkpoint plus where it came from.
struct LoadedCheckpoint {
  TrainerState state;
  std::uint64_t generation = 0;
  std::string path;
  /// Newer generations that were skipped because they failed verification.
  std::size_t corrupt_skipped = 0;
};

class CheckpointManager {
 public:
  /// Creates `options.dir` (and parents) if needed.  Throws CheckpointError
  /// when the directory cannot be created.
  explicit CheckpointManager(CheckpointManagerOptions options);

  const CheckpointManagerOptions& options() const { return options_; }

  /// Writes the next generation and returns its id.
  std::uint64_t save(const TrainerState& state);

  /// Newest generation that verifies, or nullopt when none does (or the
  /// directory holds no checkpoints at all).
  std::optional<LoadedCheckpoint> load_latest();

  /// Generations currently on disk, ascending (from the manifest, falling
  /// back to a directory scan).
  std::vector<std::uint64_t> generations() const;

  std::string path_for(std::uint64_t generation) const;
  std::string manifest_path() const;

 private:
  void write_manifest(const std::vector<std::uint64_t>& generations) const;
  std::vector<std::uint64_t> scan_directory() const;

  CheckpointManagerOptions options_;
};

}  // namespace spear::ckpt
