// Greedy fault-aware execution of a DecisionPolicy — the rescheduling
// baseline for the robustness experiments: the policy reacts to failures
// exactly as it would online (a failed task re-enters the ready set after
// its backoff and is re-placed by the same decision rule), with no search.
//
// This is how the heuristic schedulers (CP, Tetris, the blend) run under
// faults: their batch Scheduler::schedule implementations plan against the
// idealized simulator, so the sweep drives their decision-policy forms
// through the fault-aware environment instead.

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "cluster/schedule.h"
#include "env/env.h"
#include "mcts/policies.h"

namespace spear {

/// Outcome of one fault-aware greedy run.
struct FaultRunResult {
  Schedule schedule;
  /// Final makespan; meaningful only when !aborted.
  Time makespan = 0;
  EnvFaultStats fault_stats;
  /// True if the retry policy aborted the job (see abort_reason).
  bool aborted = false;
  std::string abort_reason;
};

/// Executes `policy` one pick() at a time on `dag` under `faults`/`retry`
/// until the DAG completes or the retry policy aborts.  Deterministic for
/// deterministic policies; `seed` feeds the RNG of stochastic ones.
FaultRunResult run_policy_under_faults(
    DecisionPolicy& policy, const Dag& dag, const ResourceVector& capacity,
    std::shared_ptr<const FaultInjector> faults, const RetryOptions& retry,
    std::uint64_t seed = 0);

}  // namespace spear
