#include "fault/fault.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"

namespace spear {

namespace {

/// Maps a 64-bit hash to a uniform double in [0, 1).
double to_unit(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjector::FaultInjector(FaultOptions options,
                             const ResourceVector& capacity)
    : options_(options), dims_(capacity.dims()) {
  if (options_.fault_rate < 0.0 || options_.fault_rate > 1.0 ||
      options_.straggler_rate < 0.0 || options_.straggler_rate > 1.0) {
    throw std::invalid_argument("FaultInjector: rates must be in [0, 1]");
  }
  if (options_.fail_fraction_min < 0.0 || options_.fail_fraction_max > 1.0 ||
      options_.fail_fraction_min > options_.fail_fraction_max) {
    throw std::invalid_argument(
        "FaultInjector: fail fractions must satisfy 0 <= min <= max <= 1");
  }
  if (options_.straggler_factor < 1.0) {
    throw std::invalid_argument(
        "FaultInjector: straggler_factor must be >= 1");
  }
  if (options_.loss_fraction < 0.0 || options_.loss_fraction > 1.0) {
    throw std::invalid_argument(
        "FaultInjector: loss_fraction must be in [0, 1]");
  }
  if (options_.num_loss_windows > 0) {
    if (options_.loss_window_length <= 0 || options_.loss_horizon <= 0) {
      throw std::invalid_argument(
          "FaultInjector: loss window length and horizon must be positive");
    }
    // One window per equal segment of [0, loss_horizon), at a sampled
    // offset, truncated to the segment — windows never overlap, so at most
    // one loss is active at any instant.
    SplitMix64 g(options_.seed ^ 0xfa517b10c5ULL);
    const Time segment =
        options_.loss_horizon / static_cast<Time>(options_.num_loss_windows);
    if (segment <= 0) {
      throw std::invalid_argument(
          "FaultInjector: loss_horizon too short for num_loss_windows");
    }
    const ResourceVector amount = [&] {
      ResourceVector a(dims_);
      for (std::size_t r = 0; r < dims_; ++r) {
        a[r] = capacity[r] * options_.loss_fraction;
      }
      return a;
    }();
    for (std::size_t w = 0; w < options_.num_loss_windows; ++w) {
      const Time seg_start = static_cast<Time>(w) * segment;
      const Time max_offset =
          std::max<Time>(segment - options_.loss_window_length, 0);
      const Time offset = max_offset > 0
                              ? static_cast<Time>(to_unit(g.next()) *
                                                  static_cast<double>(
                                                      max_offset + 1))
                              : 0;
      const Time start = seg_start + std::min(offset, max_offset);
      const Time end =
          std::min(start + options_.loss_window_length, seg_start + segment);
      if (end > start) loss_windows_.push_back({start, end, amount});
    }
  }
}

AttemptOutcome FaultInjector::attempt_outcome(const Task& task,
                                              int attempt) const {
  AttemptOutcome out;
  out.duration = task.runtime;
  if (options_.fault_rate <= 0.0 && options_.straggler_rate <= 0.0) {
    return out;
  }
  // Two SplitMix64 passes decorrelate (task, attempt) pairs, mirroring the
  // worker-stream derivation in root-parallel MCTS.
  SplitMix64 outer(options_.seed ^
                   (static_cast<std::uint64_t>(task.id) + 1) *
                       0x9e3779b97f4a7c15ULL);
  SplitMix64 g(outer.next() ^ (static_cast<std::uint64_t>(attempt) + 1));
  const double u_straggle = to_unit(g.next());
  const double u_fail = to_unit(g.next());
  const double u_fraction = to_unit(g.next());

  if (u_straggle < options_.straggler_rate) {
    out.duration = static_cast<Time>(
        std::ceil(static_cast<double>(task.runtime) *
                  options_.straggler_factor));
  }
  if (u_fail < options_.fault_rate) {
    out.fails = true;
    const double fraction =
        options_.fail_fraction_min +
        u_fraction *
            (options_.fail_fraction_max - options_.fail_fraction_min);
    out.duration = std::max<Time>(
        static_cast<Time>(std::llround(fraction *
                                       static_cast<double>(out.duration))),
        1);
  }
  return out;
}

Time retry_backoff_delay(const RetryOptions& retry, int attempts, Time now,
                         Time first_start) {
  Time delay = std::min(retry.backoff_base, retry.backoff_cap);
  for (int k = 1; k < attempts; ++k) {
    // Saturating doubling: delay <= cap/2 guarantees delay * 2 <= cap, so
    // the multiplication cannot overflow before the min() would clamp it.
    if (delay > retry.backoff_cap / 2) {
      delay = retry.backoff_cap;
      break;
    }
    delay *= 2;
  }
  if (retry.task_deadline > 0) {
    const Time window_end = first_start <= std::numeric_limits<Time>::max() -
                                               retry.task_deadline
                                ? first_start + retry.task_deadline
                                : std::numeric_limits<Time>::max();
    if (now < window_end) delay = std::min(delay, window_end - now);
  }
  // now + delay must stay representable even with a saturated cap.
  return std::min(delay, std::numeric_limits<Time>::max() - now);
}

ResourceVector FaultInjector::capacity_loss_at(Time t) const {
  for (const auto& w : loss_windows_) {
    if (t >= w.start && t < w.end) return w.amount;
    if (t < w.start) break;  // sorted, non-overlapping
  }
  return ResourceVector(dims_);
}

Time FaultInjector::next_capacity_event_after(Time t) const {
  for (const auto& w : loss_windows_) {
    if (w.start > t) return w.start;
    if (w.end > t) return w.end;
  }
  return kNoEvent;
}

}  // namespace spear
