// Deterministic fault injection for the cluster simulator (the robustness
// layer: every scheduler can be evaluated and trained under failures).
//
// Three event kinds, in the spirit of Decima's workload perturbations and
// the dynamic-rescheduling regime of Grinsztajn et al.:
//
//  * task failure   — an execution attempt dies at a sampled fraction of its
//                     runtime; the task occupies resources until the failure
//                     point, then must be re-executed (dependents keep
//                     waiting until a successful attempt completes);
//  * straggler      — an attempt runs `straggler_factor` times slower;
//  * capacity loss  — a transient window during which a fraction of the
//                     cluster capacity is unavailable for *new* placements
//                     (already-running tasks keep their resources, as when a
//                     scheduler fences off machines for maintenance).
//
// Outcomes are a pure function of (seed, task id, attempt index), so a
// replay with the same seed reproduces the exact fault sequence no matter
// how many rollouts or schedulers observe it — byte-identical CSVs, and
// MCTS rollouts that anticipate the recorded fault trace the way a
// re-scheduler replaying history would.  fault_rate = 0 with no loss
// windows is bit-identical to the idealized simulator.

#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "dag/dag.h"
#include "dag/resource.h"

namespace spear {

struct FaultOptions {
  /// Probability that any single execution attempt fails.
  double fault_rate = 0.0;
  /// A failed attempt dies after a uniform fraction of its (effective)
  /// runtime in [fail_fraction_min, fail_fraction_max].
  double fail_fraction_min = 0.1;
  double fail_fraction_max = 0.9;

  /// Probability that an attempt is a straggler.
  double straggler_rate = 0.0;
  /// Runtime multiplier applied to straggler attempts (>= 1).
  double straggler_factor = 2.0;

  /// Number of transient capacity-loss windows sampled in [0, loss_horizon).
  std::size_t num_loss_windows = 0;
  /// Fraction of the cluster capacity withheld during a window, in [0, 1].
  double loss_fraction = 0.5;
  /// Length of each window in slots.
  Time loss_window_length = 20;
  /// Windows are sampled inside [0, loss_horizon); one per equal segment,
  /// so they never overlap.
  Time loss_horizon = 200;

  std::uint64_t seed = 1;
};

/// Half-open interval [start, end) during which `amount` of the capacity is
/// unavailable for new placements.
struct CapacityLossWindow {
  Time start = 0;
  Time end = 0;
  ResourceVector amount{2};
};

/// What happens to one execution attempt of a task.
struct AttemptOutcome {
  /// True if the attempt dies before completing.
  bool fails = false;
  /// Slots the attempt occupies resources for: the full (possibly
  /// straggler-stretched) runtime on success, the failure point otherwise.
  Time duration = 0;
};

/// How the environment reacts to failed attempts.
struct RetryOptions {
  /// Retries allowed per task beyond the first attempt; one more failure
  /// aborts the job with JobAbortedError.
  int max_retries = 3;
  /// Exponential backoff: attempt k (1-based failure count) becomes ready
  /// again after min(backoff_base * 2^(k-1), backoff_cap) slots.
  Time backoff_base = 1;
  Time backoff_cap = 64;
  /// If > 0: a retry that would become ready later than
  /// first_attempt_start + task_deadline aborts the job instead of looping.
  Time task_deadline = 0;
};

/// Backoff delay before the retry following failure number `attempts`
/// (1-based) of a task, hardened against the two overflow traps of the
/// naive min(base * 2^(k-1), cap) recurrence:
///
///  * the doubling saturates at backoff_cap instead of overflowing the
///    signed Time at large attempt counts (a huge cap made delay * 2 UB
///    around attempt 63, yielding a negative "delay" in the past);
///  * the result never overflows `now + delay`, and with a per-task
///    deadline it is additionally capped at the REMAINING deadline window
///    (first_start + task_deadline - now) when that window is still open —
///    waiting past the deadline helps nobody, so the retry is scheduled at
///    the last admissible instant instead.  A window that is already spent
///    (now >= first_start + task_deadline) leaves the delay uncapped; the
///    caller's deadline check then aborts exactly as before.
///
/// `first_start` is the task's first attempt start (ignored unless
/// retry.task_deadline > 0).  Requires attempts >= 1 and now >= 0.
Time retry_backoff_delay(const RetryOptions& retry, int attempts, Time now,
                         Time first_start);

/// Thrown when a job cannot complete under the retry policy — a clear,
/// actionable error instead of an infinite retry loop.
class JobAbortedError : public std::runtime_error {
 public:
  JobAbortedError(TaskId task, int attempts, const std::string& why)
      : std::runtime_error("job aborted: task " + std::to_string(task) +
                           " after " + std::to_string(attempts) +
                           " attempt(s): " + why),
        task_(task),
        attempts_(attempts) {}

  TaskId task() const { return task_; }
  int attempts() const { return attempts_; }

 private:
  TaskId task_;
  int attempts_;
};

/// Deterministic, replayable fault source.  Stateless after construction:
/// attempt_outcome() hashes (seed, task, attempt), so outcomes do not depend
/// on query order and every simulator snapshot sees the same fault trace.
class FaultInjector {
 public:
  /// `capacity` sizes the capacity-loss amounts (loss_fraction of it).
  /// Throws std::invalid_argument on out-of-range options.
  FaultInjector(FaultOptions options, const ResourceVector& capacity);

  const FaultOptions& options() const { return options_; }

  /// Outcome of the (0-based) `attempt`-th execution of `task` — a pure
  /// function of (seed, task.id, attempt).
  AttemptOutcome attempt_outcome(const Task& task, int attempt) const;

  /// Non-overlapping, sorted capacity-loss windows.
  const std::vector<CapacityLossWindow>& loss_windows() const {
    return loss_windows_;
  }

  /// Capacity withheld from new placements at instant t (zero vector when
  /// no window is active).
  ResourceVector capacity_loss_at(Time t) const;

  /// Earliest window boundary (start or end) strictly after t, or
  /// kNoEvent if none — the next instant at which placability can change.
  Time next_capacity_event_after(Time t) const;

  /// True if any fault source is active (false = bit-identical idealized
  /// simulation).
  bool active() const {
    return options_.fault_rate > 0.0 || options_.straggler_rate > 0.0 ||
           !loss_windows_.empty();
  }

  static constexpr Time kNoEvent = -1;

 private:
  FaultOptions options_;
  std::size_t dims_;
  std::vector<CapacityLossWindow> loss_windows_;
};

}  // namespace spear
