#include "fault/runner.h"

#include <algorithm>
#include <utility>

namespace spear {

FaultRunResult run_policy_under_faults(
    DecisionPolicy& policy, const Dag& dag, const ResourceVector& capacity,
    std::shared_ptr<const FaultInjector> faults, const RetryOptions& retry,
    std::uint64_t seed) {
  EnvOptions options;
  options.max_ready = std::max<std::size_t>(dag.num_tasks(), 1);
  if (const auto* drl = dynamic_cast<const DrlDecisionPolicy*>(&policy)) {
    options.max_ready = drl->max_ready();
  }
  options.faults = std::move(faults);
  options.retry = retry;
  SchedulingEnv env(std::make_shared<Dag>(dag), capacity, options);

  Rng rng(seed);
  FaultRunResult result;
  try {
    while (!env.done()) {
      const int action = policy.pick(env, rng);
      if (action == SchedulingEnv::kProcessAction) {
        env.process_to_next_finish();
      } else {
        env.step(action);
      }
    }
    result.makespan = env.makespan();
  } catch (const JobAbortedError& e) {
    result.aborted = true;
    result.abort_reason = e.what();
  }
  result.schedule = env.cluster().schedule();
  result.fault_stats = env.fault_stats();
  return result;
}

}  // namespace spear
