// Critical Path (CP) baseline: prioritizes ready tasks by their b-level —
// the runtime-weighted longest path to an exit task — with the number of
// children as the classic tiebreaker.  Dependency-aware but blind to
// multi-dimensional resource demands.

#pragma once

#include <memory>

#include "sched/list_scheduler.h"

namespace spear {

/// Creates the CP baseline.
std::unique_ptr<Scheduler> make_critical_path_scheduler();

/// The CP priority itself, exposed for reuse (the RL imitation teacher
/// learns from this heuristic, §IV of the paper).
double critical_path_priority(const SchedulingEnv& env, TaskId task);

}  // namespace spear
