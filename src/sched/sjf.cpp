#include "sched/sjf.h"

namespace spear {

std::unique_ptr<Scheduler> make_sjf_scheduler() {
  return std::make_unique<ListScheduler>(
      "SJF", [](const SchedulingEnv& env, TaskId task) {
        return -static_cast<double>(env.dag().task(task).runtime);
      });
}

}  // namespace spear
