// Tetris (Grandl et al., SIGCOMM'14) packing baseline as described by the
// paper: multi-resource aware but dependency-blind.  At each decision the
// ready task with the highest *alignment score* — the inner product of its
// demand vector with the currently available resource vector — is started.
// Tasks with large demands along currently-plentiful dimensions pack first,
// reducing fragmentation.

#pragma once

#include <memory>

#include "sched/list_scheduler.h"

namespace spear {

/// Creates the Tetris baseline (pure packing score, as the Spear paper
/// describes it).
std::unique_ptr<Scheduler> make_tetris_scheduler();

/// The full Tetris score of the original paper: alignment blended with an
/// SRPT (shortest-remaining-processing-time) term controlled by `srpt_weight`
/// in [0, 1] — 0 is pure packing (== make_tetris_scheduler), 1 is pure SRPT.
/// The SRPT term scores shorter *remaining downstream work* (the task's
/// b-level) higher, trading packing efficiency against completion delay.
std::unique_ptr<Scheduler> make_tetris_srpt_scheduler(double srpt_weight);

/// The alignment score, exposed for reuse in rollout heuristics.
double tetris_alignment(const SchedulingEnv& env, TaskId task);

}  // namespace spear
