// Graphene (Grandl et al., OSDI'16) re-implementation, as described in the
// Spear paper (§II, §V-A).
//
// Graphene's insight is that packing "troublesome" tasks first — even at
// virtual times that violate dependencies — and ordering the rest around
// them yields good packed schedules.  Pipeline, per the paper:
//
//   1. For each runtime threshold δ in {0.2, 0.4, 0.6, 0.8}: the troublesome
//      set T = tasks whose runtime >= δ x (max task runtime in the DAG).
//   2. Place T alone into an empty virtual resource-time space in
//      *descending runtime order* (the paper points out this runtime-only
//      ordering is exactly Graphene's weakness), ignoring dependencies.
//      Two placement strategies are tried:
//        forward  — each task at its earliest fitting start;
//        backward — each task at its latest fitting start before a deadline
//                   (the serial runtime bound).
//   3. Place the remaining tasks around T respecting virtual dependency
//      times (topological order for forward, reverse for backward).
//   4. The virtual start times induce a total priority order; a
//      work-conserving online packer (the shared list scheduler) realizes a
//      feasible schedule honoring real dependencies and capacities.
//   5. Keep the best schedule over all (threshold, strategy) combinations.

#pragma once

#include <memory>
#include <vector>

#include "sched/scheduler.h"

namespace spear {

struct GrapheneOptions {
  /// Fractions of the max task runtime defining the troublesome set.
  std::vector<double> thresholds = {0.2, 0.4, 0.6, 0.8};
  /// Also try both placement strategies (forward & backward).
  bool try_backward = true;
};

std::unique_ptr<Scheduler> make_graphene_scheduler(GrapheneOptions options = {});

/// The virtual-placement order Graphene derives for one (threshold,
/// backward?) configuration — exposed for unit tests.
std::vector<TaskId> graphene_task_order(const Dag& dag,
                                        const ResourceVector& capacity,
                                        double threshold, bool backward);

}  // namespace spear
