// Priority-driven online list scheduler with packing.
//
// The classic skeleton every greedy baseline shares: at each decision
// instant, among the ready tasks whose demand fits the currently available
// resources, greedily start the one with the highest priority; repeat until
// nothing fits, then advance time to the next task completion (resources
// and the ready set can only change there).  Concrete baselines are just
// priority functions:
//   SJF     priority = -runtime
//   CP      priority = b-level
//   Tetris  priority = demand . available   (alignment score)
//   Random  priority = fresh random draw per decision
//
// Priorities may depend on the live cluster state (Tetris does), so the
// callback receives the whole environment.

#pragma once

#include <functional>
#include <string>

#include "env/env.h"
#include "sched/scheduler.h"

namespace spear {

/// Priority of scheduling `task` in the current state; larger is better.
/// Ties are broken toward the lower task id (deterministic).
using PriorityFn =
    std::function<double(const SchedulingEnv& env, TaskId task)>;

class ListScheduler : public Scheduler {
 public:
  ListScheduler(std::string name, PriorityFn priority);

  std::string name() const override { return name_; }
  Schedule schedule(const Dag& dag, const ResourceVector& capacity) override;

 private:
  std::string name_;
  PriorityFn priority_;
};

/// One list-scheduling pass over an existing environment (all ready tasks
/// visible).  Exposed so Graphene and MCTS rollout policies can reuse it.
/// Returns the final makespan.
Time run_list_scheduling(SchedulingEnv& env, const PriorityFn& priority);

}  // namespace spear
