#include "sched/list_scheduler.h"

#include <memory>
#include <stdexcept>

namespace spear {

ListScheduler::ListScheduler(std::string name, PriorityFn priority)
    : name_(std::move(name)), priority_(std::move(priority)) {
  if (!priority_) {
    throw std::invalid_argument("ListScheduler: null priority function");
  }
}

Time run_list_scheduling(SchedulingEnv& env, const PriorityFn& priority) {
  while (!env.done()) {
    // Greedily start the best-fitting ready task, if any fits.
    int best_action = SchedulingEnv::kProcessAction;
    double best_priority = 0.0;
    const auto& ready = env.ready();
    for (std::size_t i = 0; i < ready.size(); ++i) {
      if (!env.can_schedule(i)) continue;
      const double p = priority(env, ready[i]);
      if (best_action == SchedulingEnv::kProcessAction || p > best_priority) {
        best_action = static_cast<int>(i);
        best_priority = p;
      }
    }
    if (best_action != SchedulingEnv::kProcessAction) {
      env.step(best_action);
    } else {
      env.process_to_next_finish();
    }
  }
  return env.makespan();
}

Schedule ListScheduler::schedule(const Dag& dag,
                                 const ResourceVector& capacity) {
  // All ready tasks visible: the greedy baselines are not limited by the
  // RL agent's 15-slot window.
  EnvOptions options;
  options.max_ready = std::max<std::size_t>(dag.num_tasks(), 1);
  SchedulingEnv env(std::make_shared<Dag>(dag), capacity, options);
  run_list_scheduling(env, priority_);
  return env.cluster().schedule();
}

}  // namespace spear
