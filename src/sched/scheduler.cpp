#include "sched/scheduler.h"

#include <stdexcept>

namespace spear {

Time validated_makespan(Scheduler& scheduler, const Dag& dag,
                        const ResourceVector& capacity) {
  const Schedule s = scheduler.schedule(dag, capacity);
  if (const auto error = s.validate(dag, capacity)) {
    throw std::logic_error(scheduler.name() +
                           " produced an invalid schedule: " + *error);
  }
  return s.makespan(dag);
}

}  // namespace spear
