// Scheduler interface: every algorithm in the project — the baselines
// (SJF, CP, Tetris, Graphene, Random), pure MCTS, and Spear — maps a DAG
// plus a cluster capacity to a complete, feasible Schedule.

#pragma once

#include <memory>
#include <string>

#include "cluster/schedule.h"
#include "dag/dag.h"

namespace spear {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Human-readable algorithm name used in tables and CSV output.
  virtual std::string name() const = 0;

  /// Produces a complete schedule for `dag` on a cluster with `capacity`.
  /// Postcondition (checked by tests): the result validates against the DAG
  /// and capacity.
  virtual Schedule schedule(const Dag& dag, const ResourceVector& capacity) = 0;
};

/// Runs `scheduler`, validates the result (throws std::logic_error with the
/// violation message if invalid), and returns the makespan.  The evaluation
/// harness calls this so no invalid schedule can ever contribute a number.
Time validated_makespan(Scheduler& scheduler, const Dag& dag,
                        const ResourceVector& capacity);

}  // namespace spear
