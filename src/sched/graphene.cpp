#include "sched/graphene.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <stdexcept>

#include "cluster/resource_time_space.h"
#include "dag/features.h"
#include "sched/list_scheduler.h"

namespace spear {

namespace {

/// Virtual start times for every task under one (threshold, strategy)
/// configuration.  Dependency constraints are deliberately ignored for the
/// troublesome set and honored (against virtual times) for the rest.
std::vector<Time> virtual_starts(const Dag& dag, const ResourceVector& capacity,
                                 double threshold, bool backward) {
  const std::size_t n = dag.num_tasks();
  std::vector<Time> start(n, 0);
  if (n == 0) return start;

  Time max_runtime = 1;
  for (const auto& t : dag.tasks()) {
    max_runtime = std::max(max_runtime, t.runtime);
  }
  const auto cutoff = static_cast<Time>(threshold * static_cast<double>(max_runtime));

  std::vector<TaskId> troublesome;
  std::vector<bool> is_troublesome(n, false);
  for (const auto& t : dag.tasks()) {
    if (t.runtime >= cutoff) {
      troublesome.push_back(t.id);
      is_troublesome[static_cast<std::size_t>(t.id)] = true;
    }
  }
  // Graphene schedules the troublesome set by descending runtime only —
  // the ordering weakness the Spear paper calls out.
  std::sort(troublesome.begin(), troublesome.end(), [&](TaskId a, TaskId b) {
    const Time ra = dag.task(a).runtime;
    const Time rb = dag.task(b).runtime;
    return ra != rb ? ra > rb : a < b;
  });

  ResourceTimeSpace space(capacity);
  // Deadline for backward placement: the serial bound always suffices.
  const Time deadline = std::max<Time>(dag.total_runtime(), 1);

  auto place_forward = [&](const Task& task, Time not_before) {
    const Time s = space.earliest_start(task.demand, task.runtime, not_before);
    space.place(task.demand, s, task.runtime);
    return s;
  };
  auto place_backward = [&](const Task& task, Time finish_by) {
    const Time s =
        space.latest_start(task.demand, task.runtime, 0, finish_by);
    if (s != ResourceTimeSpace::kInvalidTime) {
      space.place(task.demand, s, task.runtime);
      return s;
    }
    // No slot before the deadline: overflow past it (virtual times only
    // induce an order, so feasibility of the real schedule is unaffected).
    return place_forward(task, 0);
  };

  // Step 2: troublesome tasks, dependencies ignored.
  for (TaskId id : troublesome) {
    const Task& task = dag.task(id);
    start[static_cast<std::size_t>(id)] =
        backward ? place_backward(task, deadline) : place_forward(task, 0);
  }

  // Step 3: the remaining tasks around them.
  if (!backward) {
    // Topological order; earliest start after all parents' virtual finishes.
    for (TaskId id : dag.topological_order()) {
      if (is_troublesome[static_cast<std::size_t>(id)]) continue;
      Time ready_at = 0;
      for (TaskId p : dag.parents(id)) {
        ready_at = std::max(ready_at, start[static_cast<std::size_t>(p)] +
                                          dag.task(p).runtime);
      }
      start[static_cast<std::size_t>(id)] =
          place_forward(dag.task(id), ready_at);
    }
  } else {
    // Reverse topological order; latest start finishing before all
    // children's virtual starts.
    const auto& topo = dag.topological_order();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const TaskId id = *it;
      if (is_troublesome[static_cast<std::size_t>(id)]) continue;
      Time finish_by = deadline;
      for (TaskId c : dag.children(id)) {
        finish_by = std::min(finish_by, start[static_cast<std::size_t>(c)]);
      }
      start[static_cast<std::size_t>(id)] =
          place_backward(dag.task(id), std::max<Time>(finish_by, 1));
    }
  }
  return start;
}

}  // namespace

std::vector<TaskId> graphene_task_order(const Dag& dag,
                                        const ResourceVector& capacity,
                                        double threshold, bool backward) {
  const auto starts = virtual_starts(dag, capacity, threshold, backward);
  const DagFeatures features(dag);
  std::vector<TaskId> order(dag.num_tasks());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<TaskId>(i);
  }
  // Ascending virtual start; b-level (descending) breaks ties so chains are
  // released promptly when several tasks share a start slot.
  std::sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    const Time sa = starts[static_cast<std::size_t>(a)];
    const Time sb = starts[static_cast<std::size_t>(b)];
    if (sa != sb) return sa < sb;
    const Time ba = features.b_level(a);
    const Time bb = features.b_level(b);
    if (ba != bb) return ba > bb;
    return a < b;
  });
  return order;
}

namespace {

class GrapheneScheduler : public Scheduler {
 public:
  explicit GrapheneScheduler(GrapheneOptions options)
      : options_(std::move(options)) {
    if (options_.thresholds.empty()) {
      throw std::invalid_argument("Graphene: need at least one threshold");
    }
  }

  std::string name() const override { return "Graphene"; }

  Schedule schedule(const Dag& dag, const ResourceVector& capacity) override {
    Schedule best;
    Time best_makespan = std::numeric_limits<Time>::max();
    for (double threshold : options_.thresholds) {
      for (int backward = 0; backward <= (options_.try_backward ? 1 : 0);
           ++backward) {
        const auto order =
            graphene_task_order(dag, capacity, threshold, backward != 0);
        // rank[task] = position in the derived order; the online packer
        // prefers lower ranks among fitting ready tasks.
        std::vector<double> rank(dag.num_tasks());
        for (std::size_t i = 0; i < order.size(); ++i) {
          rank[static_cast<std::size_t>(order[i])] = static_cast<double>(i);
        }
        ListScheduler realize(
            "Graphene-pass", [&rank](const SchedulingEnv&, TaskId task) {
              return -rank[static_cast<std::size_t>(task)];
            });
        Schedule candidate = realize.schedule(dag, capacity);
        const Time makespan = candidate.makespan(dag);
        if (makespan < best_makespan) {
          best_makespan = makespan;
          best = std::move(candidate);
        }
      }
    }
    return best;
  }

 private:
  GrapheneOptions options_;
};

}  // namespace

std::unique_ptr<Scheduler> make_graphene_scheduler(GrapheneOptions options) {
  return std::make_unique<GrapheneScheduler>(std::move(options));
}

}  // namespace spear
