// Insertion-based critical-path scheduler (HEFT-style, the classic
// list-scheduling family of the paper's refs [8]-[10], adapted to a
// multi-resource cluster).
//
// Offline: tasks are taken in descending b-level order (ties: more
// children first) and each is placed at the earliest start that (a) is at
// or after all its parents' finish times and (b) fits the remaining
// resource-time space — including *insertion* into earlier idle gaps,
// which the online work-conserving executor cannot do.  The result is a
// complete, feasible schedule by construction.

#pragma once

#include <memory>

#include "sched/scheduler.h"

namespace spear {

/// Creates the insertion-based CP scheduler ("CP-insert").
std::unique_ptr<Scheduler> make_insertion_scheduler();

}  // namespace spear
