#include "sched/insertion.h"

#include <algorithm>
#include <vector>

#include "cluster/resource_time_space.h"
#include "dag/features.h"

namespace spear {

namespace {

class InsertionScheduler : public Scheduler {
 public:
  std::string name() const override { return "CP-insert"; }

  Schedule schedule(const Dag& dag, const ResourceVector& capacity) override {
    const DagFeatures features(dag);

    std::vector<TaskId> order(dag.num_tasks());
    for (std::size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<TaskId>(i);
    }
    std::sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
      const Time ba = features.b_level(a);
      const Time bb = features.b_level(b);
      if (ba != bb) return ba > bb;
      const std::size_t ca = features.num_children(a);
      const std::size_t cb = features.num_children(b);
      if (ca != cb) return ca > cb;
      return a < b;
    });

    ResourceTimeSpace space(capacity);
    std::vector<Time> finish(dag.num_tasks(), 0);
    Schedule result;
    for (TaskId id : order) {
      const Task& task = dag.task(id);
      Time ready_at = 0;
      // Descending b-level is a topological order (a parent's b-level
      // strictly exceeds its child's), so parents are always placed first.
      for (TaskId parent : dag.parents(id)) {
        ready_at = std::max(ready_at, finish[static_cast<std::size_t>(parent)]);
      }
      const Time start = space.earliest_start(task.demand, task.runtime,
                                              ready_at);
      space.place(task.demand, start, task.runtime);
      finish[static_cast<std::size_t>(id)] = start + task.runtime;
      result.add(id, start);
    }
    return result;
  }
};

}  // namespace

std::unique_ptr<Scheduler> make_insertion_scheduler() {
  return std::make_unique<InsertionScheduler>();
}

}  // namespace spear
