// Random work-conserving scheduler: picks uniformly among the ready tasks
// that fit.  Not a paper baseline, but the reference point for "how much do
// the informed policies actually buy" in tests and ablations, and the
// default MCTS rollout policy before DRL guidance is added.

#pragma once

#include <memory>

#include "common/rng.h"
#include "sched/scheduler.h"

namespace spear {

/// Creates the random baseline seeded with `seed`.
std::unique_ptr<Scheduler> make_random_scheduler(std::uint64_t seed);

}  // namespace spear
