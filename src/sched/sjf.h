// Shortest Job First: schedules the ready task with the smallest runtime
// first.  Dependency-agnostic beyond readiness; one of the paper's baselines.

#pragma once

#include <memory>

#include "sched/list_scheduler.h"

namespace spear {

/// Creates the SJF baseline.
std::unique_ptr<Scheduler> make_sjf_scheduler();

}  // namespace spear
