#include "sched/random_scheduler.h"

#include <memory>

#include "sched/list_scheduler.h"

namespace spear {

namespace {

class RandomScheduler : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : rng_(seed) {}

  std::string name() const override { return "Random"; }

  Schedule schedule(const Dag& dag, const ResourceVector& capacity) override {
    // A fresh uniform priority per (decision, task) pair is equivalent to
    // picking uniformly among the fitting ready tasks.
    auto priority = [this](const SchedulingEnv&, TaskId) {
      return rng_.uniform();
    };
    ListScheduler list("Random", priority);
    return list.schedule(dag, capacity);
  }

 private:
  Rng rng_;
};

}  // namespace

std::unique_ptr<Scheduler> make_random_scheduler(std::uint64_t seed) {
  return std::make_unique<RandomScheduler>(seed);
}

}  // namespace spear
