#include "sched/tetris.h"

#include <algorithm>
#include <stdexcept>

namespace spear {

double tetris_alignment(const SchedulingEnv& env, TaskId task) {
  return env.dag().task(task).demand.dot(env.cluster().available());
}

std::unique_ptr<Scheduler> make_tetris_scheduler() {
  return std::make_unique<ListScheduler>("Tetris", tetris_alignment);
}

std::unique_ptr<Scheduler> make_tetris_srpt_scheduler(double srpt_weight) {
  if (srpt_weight < 0.0 || srpt_weight > 1.0) {
    throw std::invalid_argument(
        "make_tetris_srpt_scheduler: srpt_weight must be in [0, 1]");
  }
  const std::string name =
      "Tetris+SRPT(" + std::to_string(srpt_weight).substr(0, 4) + ")";
  auto priority = [srpt_weight](const SchedulingEnv& env, TaskId task) {
    // Both terms normalized to [0, 1] so the blend weight is meaningful:
    // alignment by its maximum (capacity . capacity), remaining work by
    // the DAG's critical path.
    const auto& capacity = env.cluster().capacity();
    const double alignment =
        tetris_alignment(env, task) / std::max(capacity.dot(capacity), 1e-9);
    const double cp = static_cast<double>(
        std::max<Time>(env.features().critical_path(), 1));
    const double srpt =
        1.0 - static_cast<double>(env.features().b_level(task)) / cp;
    return (1.0 - srpt_weight) * alignment + srpt_weight * srpt;
  };
  return std::make_unique<ListScheduler>(name, priority);
}

}  // namespace spear
