#include "sched/critical_path.h"

namespace spear {

double critical_path_priority(const SchedulingEnv& env, TaskId task) {
  // b-level dominates; #children breaks ties (scaled far below one runtime
  // unit so it can never override a genuine b-level difference).
  const double b_level = static_cast<double>(env.features().b_level(task));
  const double children =
      static_cast<double>(env.features().num_children(task));
  const double n = static_cast<double>(env.dag().num_tasks()) + 1.0;
  return b_level + children / (n * 2.0);
}

std::unique_ptr<Scheduler> make_critical_path_scheduler() {
  return std::make_unique<ListScheduler>("CP", critical_path_priority);
}

}  // namespace spear
