#include "nn/rmsprop.h"

#include <cmath>
#include <stdexcept>

namespace spear {

RmsProp::RmsProp(const Mlp& net, RmsPropOptions options)
    : options_(options), cache_(net.make_gradients()) {
  if (options_.learning_rate <= 0.0 || options_.rho < 0.0 ||
      options_.rho >= 1.0 || options_.epsilon <= 0.0) {
    throw std::invalid_argument("RmsProp: bad hyper-parameters");
  }
}

void RmsProp::step(Mlp& net, const Mlp::Gradients& grads) {
  auto& layers = net.layers();
  if (grads.d_weights.size() != layers.size()) {
    throw std::invalid_argument("RmsProp::step: gradient shape mismatch");
  }
  const double lr = options_.learning_rate;
  const double rho = options_.rho;
  const double eps = options_.epsilon;

  for (std::size_t l = 0; l < layers.size(); ++l) {
    auto& w = layers[l].weights.data();
    auto& gw = grads.d_weights[l].data();
    auto& cw = cache_.d_weights[l].data();
    if (w.size() != gw.size()) {
      throw std::invalid_argument("RmsProp::step: weight shape mismatch");
    }
    for (std::size_t i = 0; i < w.size(); ++i) {
      cw[i] = rho * cw[i] + (1.0 - rho) * gw[i] * gw[i];
      w[i] -= lr * gw[i] / (std::sqrt(cw[i]) + eps);
    }
    auto& b = layers[l].bias;
    const auto& gb = grads.d_bias[l];
    auto& cb = cache_.d_bias[l];
    if (b.size() != gb.size()) {
      throw std::invalid_argument("RmsProp::step: bias shape mismatch");
    }
    for (std::size_t i = 0; i < b.size(); ++i) {
      cb[i] = rho * cb[i] + (1.0 - rho) * gb[i] * gb[i];
      b[i] -= lr * gb[i] / (std::sqrt(cb[i]) + eps);
    }
  }
}

}  // namespace spear
