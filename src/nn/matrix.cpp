#include "nn/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "nn/kernels.h"

namespace spear {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::from_rows(std::size_t rows, std::size_t cols,
                         std::vector<double> data) {
  if (data.size() != rows * cols) {
    throw std::invalid_argument("Matrix::from_rows: size mismatch");
  }
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_.assign(data.begin(), data.end());
  return m;
}

Matrix Matrix::he_normal(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  const double stddev = std::sqrt(2.0 / static_cast<double>(rows));
  for (auto& x : m.data_) x = rng.normal(0.0, stddev);
  return m;
}

void Matrix::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::reshape(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  // assign() reuses the existing allocation whenever capacity suffices —
  // the property the ForwardWorkspace zero-allocation contract rests on.
  data_.assign(rows * cols, 0.0);
}

void Matrix::reshape_uninit(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  // resize() value-initializes only elements beyond the old size, so a
  // buffer at its high-water capacity is re-shaped without touching data.
  data_.resize(rows * cols);
}

Matrix& Matrix::operator+=(const Matrix& o) {
  if (rows_ != o.rows_ || cols_ != o.cols_) {
    throw std::invalid_argument("Matrix::operator+=: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  if (rows_ != o.rows_ || cols_ != o.cols_) {
    throw std::invalid_argument("Matrix::operator-=: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (auto& x : data_) x *= s;
  return *this;
}

Matrix Matrix::matmul(const Matrix& o) const {
  if (cols_ != o.rows_) {
    throw std::invalid_argument("Matrix::matmul: inner dimension mismatch");
  }
  Matrix out(rows_, o.cols_);
  matmul_into(o, out);
  return out;
}

void Matrix::matmul_into(const Matrix& o, Matrix& out) const {
  if (cols_ != o.rows_) {
    throw std::invalid_argument("Matrix::matmul_into: inner dim mismatch");
  }
  if (out.rows_ != rows_ || out.cols_ != o.cols_) {
    throw std::invalid_argument("Matrix::matmul_into: output shape mismatch");
  }
  kernels::matmul_into(data_.data(), rows_, cols_, o.data_.data(), o.cols_,
                       out.data_.data());
}

Matrix Matrix::transpose_matmul(const Matrix& o) const {
  if (rows_ != o.rows_) {
    throw std::invalid_argument(
        "Matrix::transpose_matmul: row count mismatch");
  }
  Matrix out(cols_, o.cols_);
  transpose_matmul_into(o, out);
  return out;
}

void Matrix::transpose_matmul_into(const Matrix& o, Matrix& out) const {
  if (rows_ != o.rows_) {
    throw std::invalid_argument(
        "Matrix::transpose_matmul_into: row count mismatch");
  }
  if (out.rows_ != cols_ || out.cols_ != o.cols_) {
    throw std::invalid_argument(
        "Matrix::transpose_matmul_into: output shape mismatch");
  }
  kernels::transpose_matmul_into(data_.data(), rows_, cols_, o.data_.data(),
                                 o.cols_, out.data_.data());
}

Matrix Matrix::matmul_transpose(const Matrix& o) const {
  if (cols_ != o.cols_) {
    throw std::invalid_argument(
        "Matrix::matmul_transpose: column count mismatch");
  }
  Matrix out(rows_, o.rows_);
  matmul_transpose_into(o, out);
  return out;
}

void Matrix::matmul_transpose_into(const Matrix& o, Matrix& out) const {
  if (cols_ != o.cols_) {
    throw std::invalid_argument(
        "Matrix::matmul_transpose_into: column count mismatch");
  }
  if (out.rows_ != rows_ || out.cols_ != o.rows_) {
    throw std::invalid_argument(
        "Matrix::matmul_transpose_into: output shape mismatch");
  }
  kernels::matmul_transpose_into(data_.data(), rows_, cols_, o.data_.data(),
                                 o.rows_, out.data_.data());
}

void Matrix::add_row_broadcast(const std::vector<double>& row) {
  if (row.size() != cols_) {
    throw std::invalid_argument("Matrix::add_row_broadcast: width mismatch");
  }
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) data_[i * cols_ + j] += row[j];
  }
}

std::vector<double> Matrix::column_sums() const {
  std::vector<double> sums(cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) sums[j] += data_[i * cols_ + j];
  }
  return sums;
}

void Matrix::relu() {
  for (auto& x : data_) x = x > 0.0 ? x : 0.0;
}

void Matrix::relu_backward_mask(const Matrix& pre_activation) {
  if (rows_ != pre_activation.rows_ || cols_ != pre_activation.cols_) {
    throw std::invalid_argument("Matrix::relu_backward_mask: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (pre_activation.data_[i] <= 0.0) data_[i] = 0.0;
  }
}

void Matrix::softmax_rows() {
  for (std::size_t i = 0; i < rows_; ++i) {
    double* row = &data_[i * cols_];
    double max = row[0];
    for (std::size_t j = 1; j < cols_; ++j) max = std::max(max, row[j]);
    double sum = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) {
      row[j] = std::exp(row[j] - max);
      sum += row[j];
    }
    for (std::size_t j = 0; j < cols_; ++j) row[j] /= sum;
  }
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::abs(x));
  return m;
}

std::string Matrix::shape_string() const {
  std::ostringstream os;
  os << rows_ << "x" << cols_;
  return os.str();
}

}  // namespace spear
