#include "nn/mlp.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/obs.h"

namespace spear {

void Mlp::Gradients::zero() {
  for (auto& w : d_weights) w.fill(0.0);
  for (auto& b : d_bias) std::fill(b.begin(), b.end(), 0.0);
}

void Mlp::Gradients::scale(double factor) {
  for (auto& w : d_weights) w *= factor;
  for (auto& b : d_bias) {
    for (auto& x : b) x *= factor;
  }
}

void Mlp::Gradients::add(const Gradients& other) {
  if (d_weights.size() != other.d_weights.size()) {
    throw std::invalid_argument("Gradients::add: layer count mismatch");
  }
  for (std::size_t l = 0; l < d_weights.size(); ++l) {
    d_weights[l] += other.d_weights[l];
    if (d_bias[l].size() != other.d_bias[l].size()) {
      throw std::invalid_argument("Gradients::add: bias shape mismatch");
    }
    for (std::size_t i = 0; i < d_bias[l].size(); ++i) {
      d_bias[l][i] += other.d_bias[l][i];
    }
  }
}

double Mlp::Gradients::max_abs() const {
  double m = 0.0;
  for (const auto& w : d_weights) m = std::max(m, w.max_abs());
  for (const auto& b : d_bias) {
    for (double x : b) m = std::max(m, std::abs(x));
  }
  return m;
}

double Mlp::Gradients::squared_norm() const {
  double sum = 0.0;
  for (const auto& w : d_weights) {
    for (double x : w.data()) sum += x * x;
  }
  for (const auto& b : d_bias) {
    for (double x : b) sum += x * x;
  }
  return sum;
}

bool Mlp::Gradients::all_finite() const {
  for (const auto& w : d_weights) {
    for (double x : w.data()) {
      if (!std::isfinite(x)) return false;
    }
  }
  for (const auto& b : d_bias) {
    for (double x : b) {
      if (!std::isfinite(x)) return false;
    }
  }
  return true;
}

Mlp::Mlp(std::vector<std::size_t> sizes, Rng& rng) : sizes_(std::move(sizes)) {
  if (sizes_.size() < 2) {
    throw std::invalid_argument("Mlp: need at least input and output sizes");
  }
  for (std::size_t s : sizes_) {
    if (s == 0) throw std::invalid_argument("Mlp: zero layer width");
  }
  layers_.reserve(sizes_.size() - 1);
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
    Layer layer;
    layer.weights = Matrix::he_normal(sizes_[l], sizes_[l + 1], rng);
    layer.bias.assign(sizes_[l + 1], 0.0);
    layers_.push_back(std::move(layer));
  }
}

std::size_t Mlp::num_parameters() const {
  std::size_t count = 0;
  for (const auto& layer : layers_) {
    count += layer.weights.size() + layer.bias.size();
  }
  return count;
}

Mlp::Forward Mlp::forward(const Matrix& input) const {
  if (input.cols() != input_dim()) {
    throw std::invalid_argument("Mlp::forward: input width mismatch");
  }
  // Metrics-only span: forward passes are far too frequent for trace
  // events, but the nn.forward.ms histogram and row counters are cheap.
  obs::ScopedTimer span("nn.forward", "nn", /*with_trace=*/false);
  if (span.active()) {
    obs::count("nn.forwards");
    obs::count("nn.forward_rows", static_cast<std::int64_t>(input.rows()));
  }
  Forward cache;
  cache.input = input;
  cache.pre_activations.reserve(layers_.size());

  Matrix activation = input;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    Matrix z = activation.matmul(layers_[l].weights);
    z.add_row_broadcast(layers_[l].bias);
    cache.pre_activations.push_back(z);
    if (l + 1 < layers_.size()) {
      z.relu();
      activation = std::move(z);
    } else {
      cache.logits = std::move(z);
    }
  }
  return cache;
}

std::vector<double> Mlp::logits(const std::vector<double>& input) const {
  Matrix batch = Matrix::from_rows(1, input.size(), input);
  return forward(batch).logits.data();
}

void Mlp::backward(const Forward& cache, const Matrix& d_logits,
                   Gradients& grads) const {
  if (grads.d_weights.size() != layers_.size()) {
    throw std::invalid_argument("Mlp::backward: gradient shape mismatch");
  }
  obs::ScopedTimer span("nn.backward", "nn", /*with_trace=*/false);
  if (span.active()) obs::count("nn.backwards");
  // Activation feeding layer l: input for l == 0, relu(z_{l-1}) otherwise.
  auto activation_into = [&](std::size_t l) {
    if (l == 0) return cache.input;
    Matrix a = cache.pre_activations[l - 1];
    a.relu();
    return a;
  };

  Matrix delta = d_logits;  // dLoss/dZ for the current layer
  for (std::size_t l = layers_.size(); l-- > 0;) {
    const Matrix a = activation_into(l);
    grads.d_weights[l] += a.transpose_matmul(delta);
    const auto db = delta.column_sums();
    for (std::size_t i = 0; i < db.size(); ++i) grads.d_bias[l][i] += db[i];
    if (l > 0) {
      delta = delta.matmul_transpose(layers_[l].weights);
      delta.relu_backward_mask(cache.pre_activations[l - 1]);
    }
  }
}

Mlp::Gradients Mlp::make_gradients() const {
  Gradients g;
  g.d_weights.reserve(layers_.size());
  g.d_bias.reserve(layers_.size());
  for (const auto& layer : layers_) {
    g.d_weights.emplace_back(layer.weights.rows(), layer.weights.cols());
    g.d_bias.emplace_back(layer.bias.size(), 0.0);
  }
  return g;
}

}  // namespace spear
