#include "nn/mlp.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/kernels.h"
#include "obs/obs.h"

namespace spear {

namespace {

/// Reshapes `m` and returns the bytes newly allocated by the reshape (zero
/// once the buffer has reached its high-water capacity).  `zero` selects
/// reshape() vs reshape_uninit(): scratch buffers whose every element the
/// next kernel overwrites skip the zero sweep, which would otherwise cost
/// more than a single-row forward pass.
std::size_t reshape_tracked(Matrix& m, std::size_t rows, std::size_t cols,
                            bool zero = true) {
  const std::size_t before = m.data().capacity();
  if (zero) {
    m.reshape(rows, cols);
  } else {
    m.reshape_uninit(rows, cols);
  }
  return (m.data().capacity() - before) * sizeof(double);
}

template <typename T>
std::size_t resize_tracked(std::vector<T>& v, std::size_t n) {
  const std::size_t before = v.capacity();
  v.assign(n, T{});
  return (v.capacity() - before) * sizeof(T);
}

}  // namespace

void Mlp::Gradients::zero() {
  for (auto& w : d_weights) w.fill(0.0);
  for (auto& b : d_bias) std::fill(b.begin(), b.end(), 0.0);
}

void Mlp::Gradients::scale(double factor) {
  for (auto& w : d_weights) w *= factor;
  for (auto& b : d_bias) {
    for (auto& x : b) x *= factor;
  }
}

void Mlp::Gradients::add(const Gradients& other) {
  if (d_weights.size() != other.d_weights.size()) {
    throw std::invalid_argument("Gradients::add: layer count mismatch");
  }
  for (std::size_t l = 0; l < d_weights.size(); ++l) {
    d_weights[l] += other.d_weights[l];
    if (d_bias[l].size() != other.d_bias[l].size()) {
      throw std::invalid_argument("Gradients::add: bias shape mismatch");
    }
    for (std::size_t i = 0; i < d_bias[l].size(); ++i) {
      d_bias[l][i] += other.d_bias[l][i];
    }
  }
}

double Mlp::Gradients::max_abs() const {
  double m = 0.0;
  for (const auto& w : d_weights) m = std::max(m, w.max_abs());
  for (const auto& b : d_bias) {
    for (double x : b) m = std::max(m, std::abs(x));
  }
  return m;
}

double Mlp::Gradients::squared_norm() const {
  double sum = 0.0;
  for (const auto& w : d_weights) {
    for (double x : w.data()) sum += x * x;
  }
  for (const auto& b : d_bias) {
    for (double x : b) sum += x * x;
  }
  return sum;
}

bool Mlp::Gradients::all_finite() const {
  for (const auto& w : d_weights) {
    for (double x : w.data()) {
      if (!std::isfinite(x)) return false;
    }
  }
  for (const auto& b : d_bias) {
    for (double x : b) {
      if (!std::isfinite(x)) return false;
    }
  }
  return true;
}

Mlp::Mlp(std::vector<std::size_t> sizes, Rng& rng) : sizes_(std::move(sizes)) {
  if (sizes_.size() < 2) {
    throw std::invalid_argument("Mlp: need at least input and output sizes");
  }
  for (std::size_t s : sizes_) {
    if (s == 0) throw std::invalid_argument("Mlp: zero layer width");
  }
  layers_.reserve(sizes_.size() - 1);
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
    Layer layer;
    layer.weights = Matrix::he_normal(sizes_[l], sizes_[l + 1], rng);
    layer.bias.assign(sizes_[l + 1], 0.0);
    layers_.push_back(std::move(layer));
  }
}

std::size_t Mlp::num_parameters() const {
  std::size_t count = 0;
  for (const auto& layer : layers_) {
    count += layer.weights.size() + layer.bias.size();
  }
  return count;
}

Mlp::Forward Mlp::forward(const Matrix& input) const {
  if (input.cols() != input_dim()) {
    throw std::invalid_argument("Mlp::forward: input width mismatch");
  }
  // Metrics-only span: forward passes are far too frequent for trace
  // events, but the nn.forward.ms histogram and row counters are cheap.
  obs::ScopedTimer span("nn.forward", "nn", /*with_trace=*/false);
  if (span.active()) {
    obs::count("nn.forwards");
    obs::count("nn.forward_rows", static_cast<std::int64_t>(input.rows()));
    obs::observe("nn.batch_rows", static_cast<double>(input.rows()));
  }
  Forward cache;
  cache.input = input;
  cache.pre_activations.reserve(layers_.size());

  Matrix activation = input;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    Matrix z = activation.matmul(layers_[l].weights);
    z.add_row_broadcast(layers_[l].bias);
    cache.pre_activations.push_back(z);
    if (l + 1 < layers_.size()) {
      z.relu();
      activation = std::move(z);
    } else {
      cache.logits = std::move(z);
    }
  }
  return cache;
}

std::vector<double> Mlp::logits(const std::vector<double>& input) const {
  Matrix batch = Matrix::from_rows(1, input.size(), input);
  const Forward cache = forward(batch);
  return {cache.logits.data().begin(), cache.logits.data().end()};
}

Matrix& Mlp::begin_forward(ForwardWorkspace& ws, std::size_t rows) const {
  if (rows == 0) {
    throw std::invalid_argument("Mlp::begin_forward: zero rows");
  }
  // Only ws.input is zero-filled (its contract: the caller fills rows into
  // a clean slate).  Every other buffer is fully overwritten by the kernel
  // that consumes it — matmul_into zero-fills its output, add_bias_relu /
  // matmul_transpose_into assign every element, backward_ws copies into
  // delta — so they skip the zero sweep.
  std::size_t grown = reshape_tracked(ws.input, rows, input_dim());
  const std::size_t layers = layers_.size();
  ws.pre_activations.resize(layers);
  ws.activations.resize(layers > 0 ? layers - 1 : 0);
  std::size_t max_width = input_dim();
  for (std::size_t l = 0; l < layers; ++l) {
    const std::size_t width = layers_[l].weights.cols();
    max_width = std::max(max_width, width);
    grown += reshape_tracked(ws.pre_activations[l], rows, width, false);
    if (l + 1 < layers) {
      grown += reshape_tracked(ws.activations[l], rows, width, false);
    }
  }
  grown += reshape_tracked(ws.d_logits, rows, output_dim(), false);
  grown += reshape_tracked(ws.delta, rows, max_width, false);
  grown += reshape_tracked(ws.delta_prev, rows, max_width, false);
  std::size_t max_params = 0;
  for (const auto& layer : layers_) {
    max_params = std::max(max_params, layer.weights.size());
  }
  grown += reshape_tracked(ws.dw_scratch, 1, max_params, false);
  grown += resize_tracked(ws.db_scratch, max_width);
  grown += resize_tracked(ws.probs, output_dim());
  grown += resize_tracked(ws.kidx, rows * max_width);
  grown += resize_tracked(ws.kval, rows * max_width);
  grown += resize_tracked(ws.row_nnz, rows);
  ws.input_compressed = false;
  if (grown > 0 && obs::enabled()) {
    obs::count("nn.alloc_bytes", static_cast<std::int64_t>(grown));
  }
  return ws.input;
}

void Mlp::forward_ws(ForwardWorkspace& ws) const {
  const std::size_t rows = ws.input.rows();
  if (ws.input.cols() != input_dim() ||
      ws.pre_activations.size() != layers_.size()) {
    throw std::invalid_argument("Mlp::forward_ws: workspace not prepared");
  }
  obs::ScopedTimer span("nn.forward", "nn", /*with_trace=*/false);
  if (span.active()) {
    obs::count("nn.forwards");
    obs::count("nn.forward_rows", static_cast<std::int64_t>(rows));
    obs::observe("nn.batch_rows", static_cast<double>(rows));
  }
  // The sparse inference path: feature rows and post-ReLU activations are
  // mostly exact zeros, so every layer consumes its input in compressed
  // (index, value) form — bit-identical to the dense kernels (kernels.h).
  // The input is compressed once up front (or arrives precompressed from
  // featurize_compress_into); each hidden layer's compression is fused
  // into its bias+ReLU sweep, so nothing is ever re-scanned.
  if (!ws.input_compressed) {
    kernels::compress_rows_into(ws.input.data().data(), rows,
                                ws.input.cols(), ws.input.cols(),
                                ws.kidx.data(), ws.kval.data(),
                                ws.row_nnz.data());
  }
  std::size_t prev_width = ws.input.cols();
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    Matrix& z = ws.pre_activations[l];
    const std::size_t width = z.cols();
    kernels::matmul_compressed_into(ws.kidx.data(), ws.kval.data(),
                                    ws.row_nnz.data(), rows, prev_width,
                                    layers_[l].weights.data().data(), width,
                                    z.data().data());
    if (l + 1 < layers_.size()) {
      // Fused bias + ReLU + compression: z keeps the pre-activation,
      // activations[l] the rectified copy (backward_ws reads it), and
      // kidx/kval/row_nnz the compressed rows the next layer consumes.
      Matrix& a = ws.activations[l];
      kernels::add_bias_relu_compress(z.data().data(), rows, width,
                                      layers_[l].bias.data(),
                                      a.data().data(), ws.kidx.data(),
                                      ws.kval.data(), ws.row_nnz.data());
      prev_width = width;
    } else {
      kernels::add_bias(z.data().data(), rows, width,
                        layers_[l].bias.data());
    }
  }
}

void Mlp::backward_ws(ForwardWorkspace& ws, const Matrix& d_logits,
                      Gradients& grads) const {
  const std::size_t rows = ws.input.rows();
  if (grads.d_weights.size() != layers_.size()) {
    throw std::invalid_argument("Mlp::backward_ws: gradient shape mismatch");
  }
  if (d_logits.rows() != rows || d_logits.cols() != output_dim()) {
    throw std::invalid_argument("Mlp::backward_ws: d_logits shape mismatch");
  }
  obs::ScopedTimer span("nn.backward", "nn", /*with_trace=*/false);
  if (span.active()) obs::count("nn.backwards");

  // delta = dLoss/dZ of the current layer; starts as a copy of d_logits in
  // the ws.delta scratch (reshape keeps its high-water capacity).
  ws.delta.reshape_uninit(rows, output_dim());
  std::copy(d_logits.data().begin(), d_logits.data().end(),
            ws.delta.data().begin());

  for (std::size_t l = layers_.size(); l-- > 0;) {
    const Matrix& a = l == 0 ? ws.input : ws.activations[l - 1];
    // Weight gradient staged in dw_scratch, then accumulated — same
    // element order as the seed's `grads += a^T delta` temporary.
    ws.dw_scratch.reshape_uninit(a.cols(), ws.delta.cols());
    a.transpose_matmul_into(ws.delta, ws.dw_scratch);
    grads.d_weights[l] += ws.dw_scratch;

    std::fill(ws.db_scratch.begin(), ws.db_scratch.end(), 0.0);
    kernels::column_sums_accumulate(ws.delta.data().data(), rows,
                                    ws.delta.cols(), ws.db_scratch.data());
    auto& db = grads.d_bias[l];
    for (std::size_t i = 0; i < db.size(); ++i) db[i] += ws.db_scratch[i];

    if (l > 0) {
      ws.delta_prev.reshape_uninit(rows, layers_[l].weights.rows());
      ws.delta.matmul_transpose_into(layers_[l].weights, ws.delta_prev);
      kernels::relu_backward_mask(ws.delta_prev.data().data(),
                                  ws.pre_activations[l - 1].data().data(),
                                  ws.delta_prev.size());
      std::swap(ws.delta, ws.delta_prev);
    }
  }
}

void Mlp::backward(const Forward& cache, const Matrix& d_logits,
                   Gradients& grads) const {
  if (grads.d_weights.size() != layers_.size()) {
    throw std::invalid_argument("Mlp::backward: gradient shape mismatch");
  }
  obs::ScopedTimer span("nn.backward", "nn", /*with_trace=*/false);
  if (span.active()) obs::count("nn.backwards");
  // Activation feeding layer l: input for l == 0, relu(z_{l-1}) otherwise.
  auto activation_into = [&](std::size_t l) {
    if (l == 0) return cache.input;
    Matrix a = cache.pre_activations[l - 1];
    a.relu();
    return a;
  };

  Matrix delta = d_logits;  // dLoss/dZ for the current layer
  for (std::size_t l = layers_.size(); l-- > 0;) {
    const Matrix a = activation_into(l);
    grads.d_weights[l] += a.transpose_matmul(delta);
    const auto db = delta.column_sums();
    for (std::size_t i = 0; i < db.size(); ++i) grads.d_bias[l][i] += db[i];
    if (l > 0) {
      delta = delta.matmul_transpose(layers_[l].weights);
      delta.relu_backward_mask(cache.pre_activations[l - 1]);
    }
  }
}

Mlp::Gradients Mlp::make_gradients() const {
  Gradients g;
  g.d_weights.reserve(layers_.size());
  g.d_bias.reserve(layers_.size());
  for (const auto& layer : layers_) {
    g.d_weights.emplace_back(layer.weights.rows(), layer.weights.cols());
    g.d_bias.emplace_back(layer.bias.size(), 0.0);
  }
  return g;
}

}  // namespace spear
