#include "nn/grad_guard.h"

#include <cmath>

namespace spear {

GradGuardReport guard_gradients(Mlp::Gradients& grads, double max_norm) {
  GradGuardReport report;
  if (!grads.all_finite()) {
    report.skipped = true;
    grads.zero();
    return report;
  }
  report.norm = std::sqrt(grads.squared_norm());
  if (max_norm > 0.0 && report.norm > max_norm) {
    grads.scale(max_norm / report.norm);
    report.clipped = true;
  }
  return report;
}

bool weights_finite(const Mlp& net) {
  for (const auto& layer : net.layers()) {
    for (double x : layer.weights.data()) {
      if (!std::isfinite(x)) return false;
    }
    for (double x : layer.bias) {
      if (!std::isfinite(x)) return false;
    }
  }
  return true;
}

}  // namespace spear
