// The policy network: a multi-layer perceptron with ReLU hidden layers and
// a linear output head (softmax is applied by the loss / action sampler).
// The paper's architecture is 3 hidden layers of widths 256, 32 and 32
// (§IV); the class supports any depth.
//
// Backpropagation is implemented manually (no autograd): forward() caches
// pre-activations, backward() walks them in reverse.  Gradients accumulate
// into an Mlp::Gradients of identical shape, so mini-batch accumulation and
// optimizer steps are trivial.

#pragma once

#include <vector>

#include "nn/matrix.h"

namespace spear {

class Mlp {
 public:
  struct Layer {
    Matrix weights;            // fan_in x fan_out
    std::vector<double> bias;  // fan_out
  };

  /// Gradient buffers matching a network's parameter shapes.
  struct Gradients {
    std::vector<Matrix> d_weights;
    std::vector<std::vector<double>> d_bias;

    void zero();
    void scale(double factor);
    /// Accumulates other into this (shapes must match).
    void add(const Gradients& other);
    double max_abs() const;
    /// Sum of squares over every entry — the global L2 norm squared.
    double squared_norm() const;
    /// False if any entry is NaN or infinite.
    bool all_finite() const;
  };

  /// Cached intermediate results of one forward pass.
  struct Forward {
    std::vector<Matrix> pre_activations;  // per layer, before ReLU
    Matrix input;                         // batch input (kept for backward)
    Matrix logits;                        // final linear output
  };

  /// sizes = {input, hidden..., output}; must have >= 2 entries.
  /// Weights are He-normal initialized from `rng`, biases zero.
  Mlp(std::vector<std::size_t> sizes, Rng& rng);

  const std::vector<std::size_t>& sizes() const { return sizes_; }
  std::size_t input_dim() const { return sizes_.front(); }
  std::size_t output_dim() const { return sizes_.back(); }
  std::size_t num_parameters() const;

  std::vector<Layer>& layers() { return layers_; }
  const std::vector<Layer>& layers() const { return layers_; }

  /// Batched forward pass; input is batch x input_dim.
  Forward forward(const Matrix& input) const;

  /// Convenience single-sample forward: returns the logits row.
  std::vector<double> logits(const std::vector<double>& input) const;

  /// Backward pass: `d_logits` is dLoss/dLogits (batch x output_dim);
  /// gradients are *accumulated* into `grads` (call grads.zero() first for
  /// a fresh batch).
  void backward(const Forward& cache, const Matrix& d_logits,
                Gradients& grads) const;

  /// Gradient buffers of the right shapes, zero-filled.
  Gradients make_gradients() const;

 private:
  std::vector<std::size_t> sizes_;
  std::vector<Layer> layers_;
};

}  // namespace spear
