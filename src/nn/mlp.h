// The policy network: a multi-layer perceptron with ReLU hidden layers and
// a linear output head (softmax is applied by the loss / action sampler).
// The paper's architecture is 3 hidden layers of widths 256, 32 and 32
// (§IV); the class supports any depth.
//
// Backpropagation is implemented manually (no autograd): forward() caches
// pre-activations, backward() walks them in reverse.  Gradients accumulate
// into an Mlp::Gradients of identical shape, so mini-batch accumulation and
// optimizer steps are trivial.

#pragma once

#include <cstdint>
#include <vector>

#include "nn/matrix.h"

namespace spear {

class Mlp {
 public:
  struct Layer {
    Matrix weights;            // fan_in x fan_out
    std::vector<double> bias;  // fan_out
  };

  /// Gradient buffers matching a network's parameter shapes.
  struct Gradients {
    std::vector<Matrix> d_weights;
    std::vector<std::vector<double>> d_bias;

    void zero();
    void scale(double factor);
    /// Accumulates other into this (shapes must match).
    void add(const Gradients& other);
    double max_abs() const;
    /// Sum of squares over every entry — the global L2 norm squared.
    double squared_norm() const;
    /// False if any entry is NaN or infinite.
    bool all_finite() const;
  };

  /// Cached intermediate results of one forward pass.
  struct Forward {
    std::vector<Matrix> pre_activations;  // per layer, before ReLU
    Matrix input;                         // batch input (kept for backward)
    Matrix logits;                        // final linear output
  };

  /// Preallocated buffers for the allocation-free forward/backward path
  /// (DESIGN.md §10).  Buffers grow to the high-water batch size on first
  /// use and are reused verbatim afterwards: a workspace cycled through
  /// differing batch sizes performs zero heap allocations at steady state.
  /// Growth is counted into the nn.alloc_bytes metric, so a run whose
  /// counter stops moving has reached the zero-allocation regime.  One
  /// workspace serves one thread; parallel search gives each worker its
  /// own (via the per-worker Policy clones).
  struct ForwardWorkspace {
    Matrix input;                         // batch x input_dim (caller fills)
    std::vector<Matrix> pre_activations;  // per layer, before ReLU
    std::vector<Matrix> activations;      // per hidden layer, after ReLU
    Matrix d_logits;   // batch x output_dim, caller-filled for backward_ws
    Matrix delta;      // backward scratch (dLoss/dZ of the current layer)
    Matrix delta_prev; // backward scratch (next delta, ping-ponged)
    Matrix dw_scratch; // per-layer weight-gradient staging
    std::vector<double> db_scratch;  // per-layer bias-gradient staging
    std::vector<double> probs;       // caller scratch (masked softmax etc.)
    std::vector<std::int32_t> kidx;  // compressed-activation indices
    std::vector<double> kval;        // compressed-activation values
    std::vector<std::int32_t> row_nnz;  // nonzeros per compressed row
    /// Set by callers that filled kidx/kval/row_nnz with ws.input's
    /// compressed form (stride = input width) while writing it — e.g.
    /// Featurizer::featurize_compress_into — letting forward_ws skip its
    /// own compression scan.  Reset to false by begin_forward().
    bool input_compressed = false;

    /// Batch rows of the pass begun by the last begin_forward().
    std::size_t rows() const { return input.rows(); }
    /// Logits of the last forward_ws() pass.
    const Matrix& logits() const { return pre_activations.back(); }
  };

  /// Sizes `ws` for a `rows`-row pass and returns ws.input (rows x
  /// input_dim, zero-filled) for the caller to fill.  Reuses every buffer
  /// whose capacity suffices; grown bytes are counted into nn.alloc_bytes.
  Matrix& begin_forward(ForwardWorkspace& ws, std::size_t rows) const;

  /// Forward pass over ws.input into ws (logits in ws.logits()).
  /// Bit-identical to forward() on the same rows; no heap allocation.
  void forward_ws(ForwardWorkspace& ws) const;

  /// Backward pass using the activations cached in `ws` by forward_ws();
  /// `d_logits` is dLoss/dLogits (ws.rows() x output_dim) — ws.d_logits or
  /// any caller matrix.  Accumulates into `grads`, bit-identical to
  /// backward(); no heap allocation.
  void backward_ws(ForwardWorkspace& ws, const Matrix& d_logits,
                   Gradients& grads) const;

  /// sizes = {input, hidden..., output}; must have >= 2 entries.
  /// Weights are He-normal initialized from `rng`, biases zero.
  Mlp(std::vector<std::size_t> sizes, Rng& rng);

  const std::vector<std::size_t>& sizes() const { return sizes_; }
  std::size_t input_dim() const { return sizes_.front(); }
  std::size_t output_dim() const { return sizes_.back(); }
  std::size_t num_parameters() const;

  std::vector<Layer>& layers() { return layers_; }
  const std::vector<Layer>& layers() const { return layers_; }

  /// Batched forward pass; input is batch x input_dim.
  Forward forward(const Matrix& input) const;

  /// Convenience single-sample forward: returns the logits row.
  std::vector<double> logits(const std::vector<double>& input) const;

  /// Backward pass: `d_logits` is dLoss/dLogits (batch x output_dim);
  /// gradients are *accumulated* into `grads` (call grads.zero() first for
  /// a fresh batch).
  void backward(const Forward& cache, const Matrix& d_logits,
                Gradients& grads) const;

  /// Gradient buffers of the right shapes, zero-filled.
  Gradients make_gradients() const;

 private:
  std::vector<std::size_t> sizes_;
  std::vector<Layer> layers_;
};

}  // namespace spear
