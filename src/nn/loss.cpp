#include "nn/loss.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace spear {

Matrix softmax(const Matrix& logits) {
  Matrix probs = logits;
  probs.softmax_rows();
  return probs;
}

double cross_entropy(const Matrix& probs, const std::vector<int>& targets) {
  if (probs.rows() != targets.size()) {
    throw std::invalid_argument("cross_entropy: batch size mismatch");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < probs.rows(); ++i) {
    const auto t = static_cast<std::size_t>(targets[i]);
    if (t >= probs.cols()) {
      throw std::invalid_argument("cross_entropy: target out of range");
    }
    total += -std::log(std::max(probs(i, t), 1e-300));
  }
  return total / static_cast<double>(probs.rows());
}

Matrix nll_logit_gradient(const Matrix& probs, const std::vector<int>& targets,
                          const std::vector<double>& weights) {
  Matrix grad(probs.rows(), probs.cols());
  nll_logit_gradient_into(probs, targets, weights, grad);
  return grad;
}

void nll_logit_gradient_into(const Matrix& probs,
                             const std::vector<int>& targets,
                             const std::vector<double>& weights, Matrix& out) {
  if (probs.rows() != targets.size() || probs.rows() != weights.size()) {
    throw std::invalid_argument("nll_logit_gradient: batch size mismatch");
  }
  out.reshape(probs.rows(), probs.cols());
  std::copy(probs.data().begin(), probs.data().end(), out.data().begin());
  for (std::size_t i = 0; i < out.rows(); ++i) {
    const auto t = static_cast<std::size_t>(targets[i]);
    if (t >= out.cols()) {
      throw std::invalid_argument("nll_logit_gradient: target out of range");
    }
    out(i, t) -= 1.0;
    for (std::size_t j = 0; j < out.cols(); ++j) out(i, j) *= weights[i];
  }
}

double log_softmax_at(const std::vector<double>& logits, std::size_t index) {
  if (index >= logits.size()) {
    throw std::invalid_argument("log_softmax_at: index out of range");
  }
  const double max = *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  for (double x : logits) sum += std::exp(x - max);
  return logits[index] - max - std::log(sum);
}

}  // namespace spear
