// Losses for the policy network.
//
// Both supervised pre-training (imitation of the CP heuristic) and
// REINFORCE share the same backward path: for a softmax policy
// pi = softmax(logits), dLoss/dlogits for -w * log pi[target] is
// w * (pi - onehot(target)).  Supervised learning uses w = 1/batch;
// REINFORCE uses w = -advantage (scaled by the learning-rate convention of
// the caller).

#pragma once

#include <vector>

#include "nn/matrix.h"

namespace spear {

/// Row-wise softmax of logits (returns a new matrix).
Matrix softmax(const Matrix& logits);

/// Mean negative log-likelihood of the target class per row.
/// `probs` must already be softmaxed.
double cross_entropy(const Matrix& probs, const std::vector<int>& targets);

/// dLoss/dlogits for weighted NLL rows: row i gets
/// weight[i] * (probs[i] - onehot(targets[i])).
/// For plain supervised CE, pass weight[i] = 1/batch.
Matrix nll_logit_gradient(const Matrix& probs, const std::vector<int>& targets,
                          const std::vector<double>& weights);

/// Workspace form of nll_logit_gradient: writes into `out` (reshaped to
/// probs' shape, reusing its allocation) instead of returning a fresh
/// matrix.  Identical values.
void nll_logit_gradient_into(const Matrix& probs,
                             const std::vector<int>& targets,
                             const std::vector<double>& weights, Matrix& out);

/// Numerically-stable log softmax probability of `index` given raw logits.
double log_softmax_at(const std::vector<double>& logits, std::size_t index);

}  // namespace spear
