// Model (de)serialization: plain text, full double precision.  Used to ship
// a trained policy from the training bench/example into Spear runs.
//
// Format:
//   spear-mlp v1
//   <num sizes> <size...>
//   <weights layer 0 row-major...> <bias layer 0 ...>
//   ...

#pragma once

#include <string>

#include "nn/mlp.h"

namespace spear {

/// Writes `net` to `path` atomically (tmp + flush + rename): a crash
/// mid-save leaves either the previous file or the new one, never a torn
/// mix.  Throws std::runtime_error on I/O failure, and rejects networks
/// with non-finite parameters (the text format cannot round-trip them).
void save_mlp(const Mlp& net, const std::string& path);

/// Reads a network from `path`.  Throws std::runtime_error on I/O or format
/// errors; parse errors include the file path.
Mlp load_mlp(const std::string& path);

/// String round-trip variants (exposed for tests).  mlp_to_string throws on
/// non-finite parameters; mlp_from_string distinguishes truncated input
/// from unparsable values.
std::string mlp_to_string(const Mlp& net);
Mlp mlp_from_string(const std::string& text);

}  // namespace spear
