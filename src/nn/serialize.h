// Model (de)serialization: plain text, full double precision.  Used to ship
// a trained policy from the training bench/example into Spear runs.
//
// Format:
//   spear-mlp v1
//   <num sizes> <size...>
//   <weights layer 0 row-major...> <bias layer 0 ...>
//   ...

#pragma once

#include <string>

#include "nn/mlp.h"

namespace spear {

/// Writes `net` to `path`.  Throws std::runtime_error on I/O failure.
void save_mlp(const Mlp& net, const std::string& path);

/// Reads a network from `path`.  Throws std::runtime_error on I/O or format
/// errors.
Mlp load_mlp(const std::string& path);

/// String round-trip variants (exposed for tests).
std::string mlp_to_string(const Mlp& net);
Mlp mlp_from_string(const std::string& text);

}  // namespace spear
