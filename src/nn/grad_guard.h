// Numeric guards for the manual-backprop training loops: global-norm
// gradient clipping and non-finite detection.  Without autograd there is no
// framework safety net — one exploding batch (e.g. a huge advantage from a
// degenerate rollout) would silently poison the weights, and every later
// forward pass with them.  The guard clips oversized gradients to a fixed
// global L2 norm and flags non-finite ones so the caller can skip the
// update and keep the last good weights.

#pragma once

#include "nn/mlp.h"

namespace spear {

struct GradGuardReport {
  /// Global L2 norm before clipping (0 when skipped — a non-finite entry
  /// makes the norm meaningless).
  double norm = 0.0;
  /// The norm exceeded max_norm; the gradients were rescaled in place.
  bool clipped = false;
  /// A NaN/inf entry was found; the gradients were zeroed so that even an
  /// accidental optimizer step is a no-op.  Skip the update and warn.
  bool skipped = false;
};

/// Checks `grads` for non-finite entries and clips the global L2 norm to
/// `max_norm` (<= 0 disables clipping, non-finite detection stays on).
GradGuardReport guard_gradients(Mlp::Gradients& grads, double max_norm);

/// True when every weight and bias of `net` is finite — a post-update
/// sanity check for tests and debugging.
bool weights_finite(const Mlp& net);

}  // namespace spear
