// RMSProp optimizer with the paper's hyper-parameters (§IV):
// learning rate alpha = 1e-4, decay rho = 0.9, epsilon = 1e-9.
//
//   cache <- rho * cache + (1 - rho) * grad^2
//   param <- param - alpha * grad / (sqrt(cache) + eps)

#pragma once

#include "nn/mlp.h"

namespace spear {

struct RmsPropOptions {
  double learning_rate = 1e-4;
  double rho = 0.9;
  double epsilon = 1e-9;
};

class RmsProp {
 public:
  /// Creates caches matching `net`'s parameter shapes.
  explicit RmsProp(const Mlp& net, RmsPropOptions options = {});

  const RmsPropOptions& options() const { return options_; }

  /// Applies one update step to `net` from `grads` (shapes must match the
  /// network this optimizer was created for).
  void step(Mlp& net, const Mlp::Gradients& grads);

  /// The running mean-of-squared-gradients accumulator.  Exposed so the
  /// checkpoint layer can persist and restore optimizer state; a resumed
  /// run with a fresh cache would diverge from the uninterrupted one.
  const Mlp::Gradients& cache() const { return cache_; }
  Mlp::Gradients& cache() { return cache_; }

 private:
  RmsPropOptions options_;
  Mlp::Gradients cache_;  // running mean of squared gradients
};

}  // namespace spear
