// Dense matmul / bias / ReLU kernels behind Matrix and Mlp — the inference
// fast path (DESIGN.md §10).
//
// Every kernel writes into caller-owned storage ("_into" convention), so
// the steady-state forward/backward path allocates nothing.  The tiled
// kernels block over output columns to keep the streamed B-panel resident
// in cache and contain no data-dependent branches, so the inner loops
// auto-vectorize under portable flags.
//
// Correctness contract (enforced by the KernelBitIdentity tests): every
// output element accumulates its k-products in ascending-k order, exactly
// like the seed triple loop, so tiled results are bit-identical to the
// naive ones.  No kernel reassociates floating-point sums.

#pragma once

#include <cstddef>
#include <cstdint>

namespace spear::kernels {

/// Column-tile width of the blocked matmul kernels.  One B-panel
/// (inner x kColTile doubles) stays cache-resident while every output row
/// streams over it; the tail tile handles widths that are not a multiple.
inline constexpr std::size_t kColTile = 64;

/// out = A (rows x inner) * B (inner x cols), row-major, out zero-filled
/// first.  Tiled over output columns; ascending-k accumulation per element.
void matmul_into(const double* a, std::size_t rows, std::size_t inner,
                 const double* b, std::size_t cols, double* out);

/// The inference matmul: exploits exact zeros in the LHS rows (policy
/// feature rows are ~80% zero padding, post-ReLU activations ~50% zero).
/// Per row, the nonzero (k, value) pairs are first compressed into the
/// caller-provided kidx/kval scratch (each at least `inner` long), then
/// applied in groups of four B-rows per output sweep — one load/store of
/// the output row amortizes four multiply-adds, which lifts the kernel off
/// the store-bandwidth ceiling the one-row-at-a-time sweep sits on.
///
/// Bit-identical to matmul_into for finite inputs: within each output
/// element the products are still added one at a time in ascending-k
/// order (grouping batches loads, not additions), and the skipped
/// products are +/-0.0, which a (+0.0-initialized, never -0.0 under
/// round-to-nearest) accumulator absorbs without changing bits.  Dense
/// general-purpose callers (Matrix::matmul) stay on the branchless tiled
/// kernel.
void matmul_sparse_lhs_into(const double* a, std::size_t rows,
                            std::size_t inner, const double* b,
                            std::size_t cols, double* out,
                            std::int32_t* kidx, double* kval);

/// Compresses each row of A (rows x inner) into (index, value) pairs at
/// kidx/kval + i * stride with counts in row_nnz — the form
/// matmul_compressed_into consumes.  Branchless, one pass.
void compress_rows_into(const double* a, std::size_t rows, std::size_t inner,
                        std::size_t stride, std::int32_t* kidx, double* kval,
                        std::int32_t* row_nnz);

/// matmul_sparse_lhs_into for an LHS already in compressed row form:
/// row i's nonzeros sit at kidx/kval + i * stride, row_nnz[i] of them
/// (compress_rows_into / add_bias_relu_compress emit this), so layers
/// never re-scan their inputs.  Same grouped ascending-k sweeps, same
/// bit-identity.
void matmul_compressed_into(const std::int32_t* kidx, const double* kval,
                            const std::int32_t* row_nnz, std::size_t rows,
                            std::size_t stride, const double* b,
                            std::size_t cols, double* out);

/// The seed implementation (i-k-j with the a == 0.0 skip branch), kept as
/// the bit-identity oracle for tests and the before/after micro-bench.
void reference_matmul_into(const double* a, std::size_t rows,
                           std::size_t inner, const double* b,
                           std::size_t cols, double* out);

/// out += A^T (inner x rows viewed transposed: A is rows x inner) * B
/// (rows x cols) — accumulated into a zero-filled out, ascending-i order
/// per element (identical to the seed's transpose_matmul loop).
void transpose_matmul_into(const double* a, std::size_t rows,
                           std::size_t inner, const double* b,
                           std::size_t cols, double* out);

/// out = A (rows x cols_a) * B^T where B is rows_b x cols_a; out is
/// rows x rows_b.  Dot-product form, ascending-k per element.
void matmul_transpose_into(const double* a, std::size_t rows,
                           std::size_t cols_a, const double* b,
                           std::size_t rows_b, double* out);

/// m[i][j] += bias[j] for every row — the bias broadcast.
void add_bias(double* m, std::size_t rows, std::size_t cols,
              const double* bias);

/// Fused bias broadcast + ReLU in one pass: relu_out = max(m + bias, 0)
/// while m keeps the pre-activation (m += bias).  One sweep instead of the
/// seed's broadcast-then-copy-then-relu; identical results.
void add_bias_relu(double* m, std::size_t rows, std::size_t cols,
                   const double* bias, double* relu_out);

/// add_bias_relu that additionally emits each relu_out row's nonzero
/// (index, value) pairs into kidx/kval (strided by cols per row, counts in
/// row_nnz) while it sweeps — the compressed form matmul_compressed_into
/// consumes.  Values are identical to add_bias_relu.
void add_bias_relu_compress(double* m, std::size_t rows, std::size_t cols,
                            const double* bias, double* relu_out,
                            std::int32_t* kidx, double* kval,
                            std::int32_t* row_nnz);

/// out[j] += sum_i m[i][j] — column sums accumulated into out.
void column_sums_accumulate(const double* m, std::size_t rows,
                            std::size_t cols, double* out);

/// grad[i] = 0 where pre[i] <= 0 — the ReLU backward mask.
void relu_backward_mask(double* grad, const double* pre, std::size_t n);

}  // namespace spear::kernels
