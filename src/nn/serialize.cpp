#include "nn/serialize.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace spear {

std::string mlp_to_string(const Mlp& net) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "spear-mlp v1\n";
  os << net.sizes().size();
  for (std::size_t s : net.sizes()) os << " " << s;
  os << "\n";
  for (const auto& layer : net.layers()) {
    for (double w : layer.weights.data()) os << w << " ";
    os << "\n";
    for (double b : layer.bias) os << b << " ";
    os << "\n";
  }
  return os.str();
}

Mlp mlp_from_string(const std::string& text) {
  std::istringstream is(text);
  std::string word, version;
  is >> word >> version;
  if (!is || word != "spear-mlp" || version != "v1") {
    throw std::runtime_error("mlp_from_string: bad header");
  }
  std::size_t n = 0;
  is >> n;
  if (!is || n < 2 || n > 64) {
    throw std::runtime_error("mlp_from_string: bad layer count");
  }
  std::vector<std::size_t> sizes(n);
  for (auto& s : sizes) {
    is >> s;
    if (!is || s == 0) throw std::runtime_error("mlp_from_string: bad size");
  }
  Rng rng(0);  // values are overwritten below
  Mlp net(sizes, rng);
  for (auto& layer : net.layers()) {
    for (double& w : layer.weights.data()) {
      is >> w;
      if (!is) throw std::runtime_error("mlp_from_string: truncated weights");
    }
    for (double& b : layer.bias) {
      is >> b;
      if (!is) throw std::runtime_error("mlp_from_string: truncated bias");
    }
  }
  return net;
}

void save_mlp(const Mlp& net, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("save_mlp: cannot open " + path);
  out << mlp_to_string(net);
  if (!out) throw std::runtime_error("save_mlp: write failed for " + path);
}

Mlp load_mlp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_mlp: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return mlp_from_string(buf.str());
}

}  // namespace spear
