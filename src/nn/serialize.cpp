#include "nn/serialize.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define SPEAR_SERIALIZE_HAVE_FSYNC 1
#endif

namespace spear {

std::string mlp_to_string(const Mlp& net) {
  // Text serialization cannot represent nan/inf portably (operator>> fails
  // on them), so a net that reached a non-finite state is rejected here
  // with a precise location instead of producing a file that cannot be
  // loaded back.  Training already guards against this (nn/grad_guard);
  // hitting it means a guard was bypassed.
  for (std::size_t l = 0; l < net.layers().size(); ++l) {
    const auto& layer = net.layers()[l];
    for (std::size_t i = 0; i < layer.weights.data().size(); ++i) {
      if (!std::isfinite(layer.weights.data()[i])) {
        throw std::runtime_error(
            "mlp_to_string: non-finite weight at layer " + std::to_string(l) +
            " index " + std::to_string(i) +
            "; refusing to serialize a corrupt network");
      }
    }
    for (std::size_t i = 0; i < layer.bias.size(); ++i) {
      if (!std::isfinite(layer.bias[i])) {
        throw std::runtime_error(
            "mlp_to_string: non-finite bias at layer " + std::to_string(l) +
            " index " + std::to_string(i) +
            "; refusing to serialize a corrupt network");
      }
    }
  }

  std::ostringstream os;
  os << std::setprecision(17);
  os << "spear-mlp v1\n";
  os << net.sizes().size();
  for (std::size_t s : net.sizes()) os << " " << s;
  os << "\n";
  for (const auto& layer : net.layers()) {
    for (double w : layer.weights.data()) os << w << " ";
    os << "\n";
    for (double b : layer.bias) os << b << " ";
    os << "\n";
  }
  return os.str();
}

Mlp mlp_from_string(const std::string& text) {
  std::istringstream is(text);
  std::string word, version;
  is >> word >> version;
  if (!is || word != "spear-mlp" || version != "v1") {
    throw std::runtime_error("mlp_from_string: bad header");
  }
  std::size_t n = 0;
  is >> n;
  if (!is || n < 2 || n > 64) {
    throw std::runtime_error("mlp_from_string: bad layer count");
  }
  std::vector<std::size_t> sizes(n);
  for (auto& s : sizes) {
    is >> s;
    if (!is || s == 0) throw std::runtime_error("mlp_from_string: bad size");
  }
  Rng rng(0);  // values are overwritten below
  Mlp net(sizes, rng);
  for (std::size_t l = 0; l < net.layers().size(); ++l) {
    auto& layer = net.layers()[l];
    for (std::size_t i = 0; i < layer.weights.data().size(); ++i) {
      is >> layer.weights.data()[i];
      if (!is) {
        // Distinguish running out of input from a token operator>> cannot
        // parse (e.g. "nan" written by a pre-guard serializer, or a
        // corrupted digit string).
        throw std::runtime_error(
            is.eof() ? "mlp_from_string: truncated weights"
                     : "mlp_from_string: invalid weight value at layer " +
                           std::to_string(l) + " index " + std::to_string(i));
      }
    }
    for (std::size_t i = 0; i < layer.bias.size(); ++i) {
      is >> layer.bias[i];
      if (!is) {
        throw std::runtime_error(
            is.eof() ? "mlp_from_string: truncated bias"
                     : "mlp_from_string: invalid bias value at layer " +
                           std::to_string(l) + " index " + std::to_string(i));
      }
    }
  }
  return net;
}

void save_mlp(const Mlp& net, const std::string& path) {
  const std::string text = mlp_to_string(net);

  // Atomic publish (mirrors the checkpoint layer, DESIGN.md §9): write a
  // sibling tmp file, flush + fsync, then rename over the target so a crash
  // mid-save can never leave a torn model file behind.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) {
    throw std::runtime_error("save_mlp: cannot open " + tmp + ": " +
                             std::strerror(errno));
  }
  const bool wrote = std::fwrite(text.data(), 1, text.size(), f) ==
                         text.size() &&
                     std::fflush(f) == 0;
#if SPEAR_SERIALIZE_HAVE_FSYNC
  const bool synced = wrote && ::fsync(::fileno(f)) == 0;
#else
  const bool synced = wrote;
#endif
  if (std::fclose(f) != 0 || !synced) {
    std::remove(tmp.c_str());
    throw std::runtime_error("save_mlp: write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("save_mlp: rename to " + path +
                             " failed: " + std::strerror(errno));
  }
}

Mlp load_mlp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_mlp: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return mlp_from_string(buf.str());
  } catch (const std::runtime_error& e) {
    // Parse errors name the offending file so a bad --model flag or a
    // half-written artifact is directly actionable from the message.
    throw std::runtime_error("load_mlp: " + path + ": " + e.what());
  }
}

}  // namespace spear
