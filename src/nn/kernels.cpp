#include "nn/kernels.h"

#include <algorithm>

// GCC and Clang both accept __restrict__; it lets the compiler keep the
// accumulator panel in registers across the k loop.
#if defined(__GNUC__) || defined(__clang__)
#define SPEAR_RESTRICT __restrict__
#define SPEAR_ALWAYS_INLINE __attribute__((always_inline))
#else
#define SPEAR_RESTRICT
#define SPEAR_ALWAYS_INLINE
#endif

// Runtime-dispatched SIMD clones (GNU ifunc): the "avx2"/"avx512f" clones
// execute the identical per-element IEEE mul/add sequence at 2x/4x the
// SSE2 register width, so results stay bit-identical to the portable
// clone and the seed loop — PROVIDED nothing contracts a*b+c into a fused
// multiply-add, which would change low bits.  The avx2 clone cannot
// contract (the FMA ISA is not part of it), but AVX-512F includes FMA
// forms, so this file is compiled with -ffp-contract=off (see
// src/CMakeLists.txt); that flag is load-bearing for the avx512f clone
// and also keeps SPEAR_NATIVE builds of these kernels contraction-free.
// Disabled under sanitizers: ifunc resolvers run before their runtimes
// initialize, and the portable clone is all the sanitizer jobs need.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__)
#define SPEAR_SIMD_CLONES \
  __attribute__((target_clones("default", "avx2", "avx512f")))
#else
#define SPEAR_SIMD_CLONES
#endif

namespace spear::kernels {

SPEAR_SIMD_CLONES
void matmul_into(const double* SPEAR_RESTRICT a, std::size_t rows,
                 std::size_t inner, const double* SPEAR_RESTRICT b,
                 std::size_t cols, double* SPEAR_RESTRICT out) {
  std::fill(out, out + rows * cols, 0.0);
  // Column tiles: the B-panel (inner x tile doubles) is reused by every
  // output row before the next panel is touched.  Within one output
  // element the k loop ascends, so accumulation order matches the seed
  // triple loop bit for bit; the branchless inner loop (no a == 0.0 skip)
  // is what lets the compiler vectorize over j.
  for (std::size_t j0 = 0; j0 < cols; j0 += kColTile) {
    const std::size_t j1 = std::min(j0 + kColTile, cols);
    for (std::size_t i = 0; i < rows; ++i) {
      const double* SPEAR_RESTRICT arow = a + i * inner;
      double* SPEAR_RESTRICT orow = out + i * cols;
      for (std::size_t k = 0; k < inner; ++k) {
        const double av = arow[k];
        const double* SPEAR_RESTRICT brow = b + k * cols;
        for (std::size_t j = j0; j < j1; ++j) orow[j] += av * brow[j];
      }
    }
  }
}

namespace {

// The grouped sweep behind both sparse matmuls, over the column span
// [j0, j1).  always_inline so each SIMD clone of its callers vectorizes
// the sweeps at its own ISA — a plain out-of-line helper would be
// compiled once, at the portable ISA.  Within one output element the +=
// chain executes in ascending-k order from a +0.0 accumulator, so bits
// match the dense kernel exactly.
SPEAR_ALWAYS_INLINE
inline void apply_compressed_row(const std::int32_t* SPEAR_RESTRICT kidx,
                                 const double* SPEAR_RESTRICT kval,
                                 std::size_t nnz,
                                 const double* SPEAR_RESTRICT b,
                                 std::size_t cols,
                                 double* SPEAR_RESTRICT orow,
                                 std::size_t j0, std::size_t j1) {
  std::size_t g = 0;
  if (nnz >= 4) {
    // The first group seeds the output span from the +0.0 accumulator, so
    // it needs no separate zero-fill pass.
    const double a0 = kval[0], a1 = kval[1], a2 = kval[2], a3 = kval[3];
    const double* SPEAR_RESTRICT b0 =
        b + static_cast<std::size_t>(kidx[0]) * cols;
    const double* SPEAR_RESTRICT b1 =
        b + static_cast<std::size_t>(kidx[1]) * cols;
    const double* SPEAR_RESTRICT b2 =
        b + static_cast<std::size_t>(kidx[2]) * cols;
    const double* SPEAR_RESTRICT b3 =
        b + static_cast<std::size_t>(kidx[3]) * cols;
    for (std::size_t j = j0; j < j1; ++j) {
      double acc = 0.0;
      acc += a0 * b0[j];
      acc += a1 * b1[j];
      acc += a2 * b2[j];
      acc += a3 * b3[j];
      orow[j] = acc;
    }
    g = 4;
  } else {
    std::fill(orow + j0, orow + j1, 0.0);
  }
  for (; g + 8 <= nnz; g += 8) {
    const double a0 = kval[g], a1 = kval[g + 1];
    const double a2 = kval[g + 2], a3 = kval[g + 3];
    const double a4 = kval[g + 4], a5 = kval[g + 5];
    const double a6 = kval[g + 6], a7 = kval[g + 7];
    const double* SPEAR_RESTRICT b0 =
        b + static_cast<std::size_t>(kidx[g]) * cols;
    const double* SPEAR_RESTRICT b1 =
        b + static_cast<std::size_t>(kidx[g + 1]) * cols;
    const double* SPEAR_RESTRICT b2 =
        b + static_cast<std::size_t>(kidx[g + 2]) * cols;
    const double* SPEAR_RESTRICT b3 =
        b + static_cast<std::size_t>(kidx[g + 3]) * cols;
    const double* SPEAR_RESTRICT b4 =
        b + static_cast<std::size_t>(kidx[g + 4]) * cols;
    const double* SPEAR_RESTRICT b5 =
        b + static_cast<std::size_t>(kidx[g + 5]) * cols;
    const double* SPEAR_RESTRICT b6 =
        b + static_cast<std::size_t>(kidx[g + 6]) * cols;
    const double* SPEAR_RESTRICT b7 =
        b + static_cast<std::size_t>(kidx[g + 7]) * cols;
    for (std::size_t j = j0; j < j1; ++j) {
      double acc = orow[j];
      acc += a0 * b0[j];
      acc += a1 * b1[j];
      acc += a2 * b2[j];
      acc += a3 * b3[j];
      acc += a4 * b4[j];
      acc += a5 * b5[j];
      acc += a6 * b6[j];
      acc += a7 * b7[j];
      orow[j] = acc;
    }
  }
  for (; g + 4 <= nnz; g += 4) {
    const double a0 = kval[g], a1 = kval[g + 1];
    const double a2 = kval[g + 2], a3 = kval[g + 3];
    const double* SPEAR_RESTRICT b0 =
        b + static_cast<std::size_t>(kidx[g]) * cols;
    const double* SPEAR_RESTRICT b1 =
        b + static_cast<std::size_t>(kidx[g + 1]) * cols;
    const double* SPEAR_RESTRICT b2 =
        b + static_cast<std::size_t>(kidx[g + 2]) * cols;
    const double* SPEAR_RESTRICT b3 =
        b + static_cast<std::size_t>(kidx[g + 3]) * cols;
    for (std::size_t j = j0; j < j1; ++j) {
      double acc = orow[j];
      acc += a0 * b0[j];
      acc += a1 * b1[j];
      acc += a2 * b2[j];
      acc += a3 * b3[j];
      orow[j] = acc;
    }
  }
  for (; g < nnz; ++g) {
    const double av = kval[g];
    const double* SPEAR_RESTRICT brow =
        b + static_cast<std::size_t>(kidx[g]) * cols;
    for (std::size_t j = j0; j < j1; ++j) orow[j] += av * brow[j];
  }
}

}  // namespace

SPEAR_SIMD_CLONES
void matmul_sparse_lhs_into(const double* SPEAR_RESTRICT a, std::size_t rows,
                            std::size_t inner,
                            const double* SPEAR_RESTRICT b, std::size_t cols,
                            double* SPEAR_RESTRICT out,
                            std::int32_t* SPEAR_RESTRICT kidx,
                            double* SPEAR_RESTRICT kval) {
  // Untiled on purpose: column tiles would rescan the LHS row once per
  // tile without ever making the B-panel L1-resident at NN widths.  The
  // nonzero compression keeps the branchy scan out of the sweeps, and the
  // grouped B-rows cut the output-row load/store traffic by the group
  // width.
  for (std::size_t i = 0; i < rows; ++i) {
    const double* SPEAR_RESTRICT arow = a + i * inner;
    // Branchless compression: store unconditionally, advance the cursor
    // only past nonzeros — zero entries are overwritten by the next k, and
    // the ~80%-zero feature rows cause no mispredicts.
    std::size_t nnz = 0;
    for (std::size_t k = 0; k < inner; ++k) {
      const double av = arow[k];
      kidx[nnz] = static_cast<std::int32_t>(k);
      kval[nnz] = av;
      nnz += static_cast<std::size_t>(av != 0.0);
    }
    apply_compressed_row(kidx, kval, nnz, b, cols, out + i * cols, 0,
                         cols);
  }
}

void compress_rows_into(const double* SPEAR_RESTRICT a, std::size_t rows,
                        std::size_t inner, std::size_t stride,
                        std::int32_t* SPEAR_RESTRICT kidx,
                        double* SPEAR_RESTRICT kval,
                        std::int32_t* SPEAR_RESTRICT row_nnz) {
  // Branchless compression: store unconditionally, advance the cursor only
  // past nonzeros — zero entries are overwritten by the next k, and the
  // ~80%-zero feature rows cause no mispredicts.
  for (std::size_t i = 0; i < rows; ++i) {
    const double* SPEAR_RESTRICT arow = a + i * inner;
    std::int32_t* SPEAR_RESTRICT ki = kidx + i * stride;
    double* SPEAR_RESTRICT kv = kval + i * stride;
    std::size_t nnz = 0;
    for (std::size_t k = 0; k < inner; ++k) {
      const double av = arow[k];
      ki[nnz] = static_cast<std::int32_t>(k);
      kv[nnz] = av;
      nnz += static_cast<std::size_t>(av != 0.0);
    }
    row_nnz[i] = static_cast<std::int32_t>(nnz);
  }
}

SPEAR_SIMD_CLONES
void matmul_compressed_into(const std::int32_t* SPEAR_RESTRICT kidx,
                            const double* SPEAR_RESTRICT kval,
                            const std::int32_t* SPEAR_RESTRICT row_nnz,
                            std::size_t rows, std::size_t stride,
                            const double* SPEAR_RESTRICT b, std::size_t cols,
                            double* SPEAR_RESTRICT out) {
  // Untiled like matmul_sparse_lhs_into — and column tiling measures
  // WORSE here: NN widths make the B row stride a power of two (2 KB at
  // 256 cols), so a narrow column panel maps onto ~2 of the 64 L1 sets
  // and conflict-misses instead of staying resident.  The full-width
  // sweep streams each B row once per batch row, which the prefetcher
  // handles well.
  for (std::size_t i = 0; i < rows; ++i) {
    apply_compressed_row(kidx + i * stride, kval + i * stride,
                         static_cast<std::size_t>(row_nnz[i]), b, cols,
                         out + i * cols, 0, cols);
  }
}

void reference_matmul_into(const double* a, std::size_t rows,
                           std::size_t inner, const double* b,
                           std::size_t cols, double* out) {
  std::fill(out, out + rows * cols, 0.0);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t k = 0; k < inner; ++k) {
      const double av = a[i * inner + k];
      if (av == 0.0) continue;
      const double* brow = &b[k * cols];
      double* orow = &out[i * cols];
      for (std::size_t j = 0; j < cols; ++j) orow[j] += av * brow[j];
    }
  }
}

SPEAR_SIMD_CLONES
void transpose_matmul_into(const double* SPEAR_RESTRICT a, std::size_t rows,
                           std::size_t inner, const double* SPEAR_RESTRICT b,
                           std::size_t cols, double* SPEAR_RESTRICT out) {
  std::fill(out, out + inner * cols, 0.0);
  // out[k][j] += a[i][k] * b[i][j], i ascending per element — the seed
  // order.  Branchless: post-ReLU activations are sparse but the skip
  // defeats vectorization, and the dense sweep wins at these widths.
  for (std::size_t j0 = 0; j0 < cols; j0 += kColTile) {
    const std::size_t j1 = std::min(j0 + kColTile, cols);
    for (std::size_t i = 0; i < rows; ++i) {
      const double* SPEAR_RESTRICT arow = a + i * inner;
      const double* SPEAR_RESTRICT brow = b + i * cols;
      for (std::size_t k = 0; k < inner; ++k) {
        const double av = arow[k];
        double* SPEAR_RESTRICT orow = out + k * cols;
        for (std::size_t j = j0; j < j1; ++j) orow[j] += av * brow[j];
      }
    }
  }
}

void matmul_transpose_into(const double* SPEAR_RESTRICT a, std::size_t rows,
                           std::size_t cols_a,
                           const double* SPEAR_RESTRICT b, std::size_t rows_b,
                           double* SPEAR_RESTRICT out) {
  // Dot products over contiguous rows of both operands; a scalar
  // accumulator keeps the seed's ascending-k order (a vectorized
  // reduction would reassociate the sum and change bits).
  for (std::size_t i = 0; i < rows; ++i) {
    const double* SPEAR_RESTRICT arow = a + i * cols_a;
    double* SPEAR_RESTRICT orow = out + i * rows_b;
    for (std::size_t j = 0; j < rows_b; ++j) {
      const double* SPEAR_RESTRICT brow = b + j * cols_a;
      double acc = 0.0;
      for (std::size_t k = 0; k < cols_a; ++k) acc += arow[k] * brow[k];
      orow[j] = acc;
    }
  }
}

SPEAR_SIMD_CLONES
void add_bias(double* SPEAR_RESTRICT m, std::size_t rows, std::size_t cols,
              const double* SPEAR_RESTRICT bias) {
  for (std::size_t i = 0; i < rows; ++i) {
    double* SPEAR_RESTRICT row = m + i * cols;
    for (std::size_t j = 0; j < cols; ++j) row[j] += bias[j];
  }
}

SPEAR_SIMD_CLONES
void add_bias_relu(double* SPEAR_RESTRICT m, std::size_t rows,
                   std::size_t cols, const double* SPEAR_RESTRICT bias,
                   double* SPEAR_RESTRICT relu_out) {
  for (std::size_t i = 0; i < rows; ++i) {
    double* SPEAR_RESTRICT row = m + i * cols;
    double* SPEAR_RESTRICT rrow = relu_out + i * cols;
    for (std::size_t j = 0; j < cols; ++j) {
      const double z = row[j] + bias[j];
      row[j] = z;
      rrow[j] = z > 0.0 ? z : 0.0;
    }
  }
}

SPEAR_SIMD_CLONES
void add_bias_relu_compress(double* SPEAR_RESTRICT m, std::size_t rows,
                            std::size_t cols,
                            const double* SPEAR_RESTRICT bias,
                            double* SPEAR_RESTRICT relu_out,
                            std::int32_t* SPEAR_RESTRICT kidx,
                            double* SPEAR_RESTRICT kval,
                            std::int32_t* SPEAR_RESTRICT row_nnz) {
  for (std::size_t i = 0; i < rows; ++i) {
    double* SPEAR_RESTRICT row = m + i * cols;
    double* SPEAR_RESTRICT rrow = relu_out + i * cols;
    std::int32_t* SPEAR_RESTRICT ki = kidx + i * cols;
    double* SPEAR_RESTRICT kv = kval + i * cols;
    // The same branchless compression as matmul_sparse_lhs_into, folded
    // into the bias+ReLU sweep so the next layer's matmul reads the
    // activations precompressed instead of re-scanning ~50%-zero rows.
    std::size_t nnz = 0;
    for (std::size_t j = 0; j < cols; ++j) {
      const double z = row[j] + bias[j];
      row[j] = z;
      const double r = z > 0.0 ? z : 0.0;
      rrow[j] = r;
      ki[nnz] = static_cast<std::int32_t>(j);
      kv[nnz] = r;
      nnz += static_cast<std::size_t>(r != 0.0);
    }
    row_nnz[i] = static_cast<std::int32_t>(nnz);
  }
}

SPEAR_SIMD_CLONES
void column_sums_accumulate(const double* SPEAR_RESTRICT m, std::size_t rows,
                            std::size_t cols, double* SPEAR_RESTRICT out) {
  for (std::size_t i = 0; i < rows; ++i) {
    const double* SPEAR_RESTRICT row = m + i * cols;
    for (std::size_t j = 0; j < cols; ++j) out[j] += row[j];
  }
}

void relu_backward_mask(double* SPEAR_RESTRICT grad,
                        const double* SPEAR_RESTRICT pre, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (pre[i] <= 0.0) grad[i] = 0.0;
  }
}

}  // namespace spear::kernels
