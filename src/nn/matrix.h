// Dense row-major matrix — the minimal linear-algebra substrate for the
// policy network.  Sized for this project's scale (inputs of a few hundred
// features, hidden layers 256/32/32, mini-batches of tens of rows).  The
// multiply entry points delegate to the cache-tiled kernels in
// nn/kernels.h (DESIGN.md §10); results are bit-identical to the original
// naive triple loop because every output element accumulates its products
// in the same ascending-k order.  The micro-benches in bench/ track
// throughput against the retained seed reference kernel.

#pragma once

#include <cstddef>
#include <new>
#include <string>
#include <vector>

#include "common/rng.h"

namespace spear {

/// Minimal allocator pinning allocations to `Align` bytes.  Matrix storage
/// uses 64 so every SIMD load in the kernels stays within one cache line —
/// the default 16-byte operator-new alignment makes every 64-byte vector
/// load straddle two lines, which measurably throttles the wide sweeps.
template <class T, std::size_t Align>
struct AlignedAllocator {
  using value_type = T;
  AlignedAllocator() = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) {}
  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T* p, std::size_t n) {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Align));
  }
  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };
  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// Cache-line-aligned double storage (see AlignedAllocator).
using AlignedVector = std::vector<double, AlignedAllocator<double, 64>>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix from_rows(std::size_t rows, std::size_t cols,
                          std::vector<double> data);

  /// He-normal initialization (stddev = sqrt(2 / fan_in)) for ReLU nets.
  static Matrix he_normal(std::size_t rows, std::size_t cols, Rng& rng);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }

  const AlignedVector& data() const { return data_; }
  AlignedVector& data() { return data_; }

  void fill(double value);

  /// Re-shapes to rows x cols and zero-fills, reusing the existing
  /// allocation whenever it is large enough — the workspace-reuse
  /// primitive: a buffer cycled through differing batch sizes settles at
  /// the high-water capacity and never reallocates again.
  void reshape(std::size_t rows, std::size_t cols);

  /// reshape without the zero-fill: contents are unspecified afterwards.
  /// For scratch buffers whose every element the next kernel overwrites —
  /// the zero sweep would cost more than a small forward pass itself.
  void reshape_uninit(std::size_t rows, std::size_t cols);

  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(double s);

  /// this (rows x cols) * o (cols x o.cols).
  Matrix matmul(const Matrix& o) const;
  /// Workspace variant: writes into `out` (must be rows x o.cols),
  /// overwriting it; no allocation.
  void matmul_into(const Matrix& o, Matrix& out) const;

  /// this^T * o — used for weight gradients (A^T dZ) without materializing
  /// the transpose.
  Matrix transpose_matmul(const Matrix& o) const;
  /// Workspace variant: writes into `out` (must be cols x o.cols).
  void transpose_matmul_into(const Matrix& o, Matrix& out) const;

  /// this * o^T — used for input gradients (dZ W^T).
  Matrix matmul_transpose(const Matrix& o) const;
  /// Workspace variant: writes into `out` (must be rows x o.rows).
  void matmul_transpose_into(const Matrix& o, Matrix& out) const;

  /// Adds `row` (1 x cols) to every row: bias broadcast.
  void add_row_broadcast(const std::vector<double>& row);

  /// Column-wise sums (1 x cols as a vector): bias gradients.
  std::vector<double> column_sums() const;

  /// In-place ReLU.
  void relu();

  /// dA ⊙ 1[Z > 0]: masks gradient through ReLU, given pre-activation Z.
  void relu_backward_mask(const Matrix& pre_activation);

  /// Row-wise softmax in place (numerically stabilized).
  void softmax_rows();

  /// Max |element|; used in gradient-norm tests.
  double max_abs() const;

  std::string shape_string() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  AlignedVector data_;
};

}  // namespace spear
