// Dense row-major matrix — the minimal linear-algebra substrate for the
// policy network.  Sized for this project's scale (inputs of a few hundred
// features, hidden layers 256/32/32, mini-batches of tens of rows), so the
// implementation favors clarity over blocking/vectorization tricks; the
// micro-benches in bench/ track its throughput.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"

namespace spear {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix from_rows(std::size_t rows, std::size_t cols,
                          std::vector<double> data);

  /// He-normal initialization (stddev = sqrt(2 / fan_in)) for ReLU nets.
  static Matrix he_normal(std::size_t rows, std::size_t cols, Rng& rng);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  void fill(double value);

  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(double s);

  /// this (rows x cols) * o (cols x o.cols).
  Matrix matmul(const Matrix& o) const;

  /// this^T * o — used for weight gradients (A^T dZ) without materializing
  /// the transpose.
  Matrix transpose_matmul(const Matrix& o) const;

  /// this * o^T — used for input gradients (dZ W^T).
  Matrix matmul_transpose(const Matrix& o) const;

  /// Adds `row` (1 x cols) to every row: bias broadcast.
  void add_row_broadcast(const std::vector<double>& row);

  /// Column-wise sums (1 x cols as a vector): bias gradients.
  std::vector<double> column_sums() const;

  /// In-place ReLU.
  void relu();

  /// dA ⊙ 1[Z > 0]: masks gradient through ReLU, given pre-activation Z.
  void relu_backward_mask(const Matrix& pre_activation);

  /// Row-wise softmax in place (numerically stabilized).
  void softmax_rows();

  /// Max |element|; used in gradient-norm tests.
  double max_abs() const;

  std::string shape_string() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace spear
