#include "env/env.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/obs.h"

namespace spear {

SchedulingEnv::SchedulingEnv(std::shared_ptr<const Dag> dag,
                             ResourceVector capacity, EnvOptions options,
                             std::shared_ptr<const DagFeatures> features)
    : dag_(std::move(dag)),
      features_(std::move(features)),
      options_(options),
      cluster_(std::move(capacity), options.faults) {
  if (!dag_) {
    throw std::invalid_argument("SchedulingEnv: null dag");
  }
  if (options_.faults) {
    if (options_.retry.max_retries < 0 || options_.retry.backoff_base < 0 ||
        options_.retry.backoff_cap < 0 || options_.retry.task_deadline < 0) {
      throw std::invalid_argument(
          "SchedulingEnv: retry options must be non-negative");
    }
    first_attempt_start_.assign(dag_->num_tasks(), kNoTime);
  }
  if (options_.max_ready == 0) {
    throw std::invalid_argument("SchedulingEnv: max_ready must be > 0");
  }
  for (const auto& t : dag_->tasks()) {
    if (!t.demand.fits_within(cluster_.capacity())) {
      throw std::invalid_argument(
          "SchedulingEnv: task " + std::to_string(t.id) +
          " demands more than the cluster capacity (unschedulable)");
    }
  }
  if (!features_) {
    features_ = std::make_shared<DagFeatures>(*dag_);
  }

  missing_parents_.resize(dag_->num_tasks());
  for (const auto& t : dag_->tasks()) {
    missing_parents_[static_cast<std::size_t>(t.id)] =
        static_cast<std::int32_t>(dag_->parents(t.id).size());
  }
  // Initially-ready tasks arrive in topological-id order.
  for (const auto& t : dag_->tasks()) {
    if (missing_parents_[static_cast<std::size_t>(t.id)] == 0) {
      backlog_.push_back(t.id);
    }
  }
  // Resume-from-occupancy: pre-place the already-running tasks at t = 0.
  for (TaskId id : options_.initial_running) {
    auto it = std::find(backlog_.begin(), backlog_.end(), id);
    if (it == backlog_.end()) {
      throw std::invalid_argument(
          "SchedulingEnv: initial_running task " + std::to_string(id) +
          " is not a source of the DAG (or listed twice)");
    }
    cluster_.place_preloaded(dag_->task(id));
    backlog_.erase(it);
  }
  refill_ready();
}

void SchedulingEnv::refill_ready() {
  while (ready_.size() < options_.max_ready && !backlog_.empty()) {
    ready_.push_back(backlog_.front());
    backlog_.erase(backlog_.begin());
  }
}

Time SchedulingEnv::makespan() const {
  if (!done()) {
    throw std::logic_error("SchedulingEnv::makespan: episode not finished");
  }
  return cluster_.current_makespan();
}

bool SchedulingEnv::can_schedule(std::size_t ready_index) const {
  if (ready_index >= ready_.size()) return false;
  return cluster_.can_place(dag_->task(ready_[ready_index]).demand);
}

bool SchedulingEnv::can_process() const {
  if (cluster_.busy()) return true;
  if (!options_.faults) return false;
  return next_event_time() != kNoTime;
}

Time SchedulingEnv::next_event_time() const {
  Time best = kNoTime;
  const auto consider = [&best](Time t) {
    if (t >= 0 && (best == kNoTime || t < best)) best = t;
  };
  if (cluster_.busy()) consider(cluster_.earliest_finish());
  if (!pending_retries_.empty()) consider(pending_retries_.front().ready_at);
  if (options_.faults && !options_.faults->loss_windows().empty()) {
    // A capacity-window boundary is an event only while it blocks some
    // visible ready task — otherwise it cannot change what is placeable.
    for (std::size_t i = 0; i < ready_.size(); ++i) {
      if (!can_schedule(i)) {
        consider(options_.faults->next_capacity_event_after(cluster_.now()));
        break;
      }
    }
  }
  return best;
}

std::vector<int> SchedulingEnv::valid_actions() const {
  std::vector<int> actions;
  for (std::size_t i = 0; i < ready_.size(); ++i) {
    if (can_schedule(i)) actions.push_back(static_cast<int>(i));
  }
  if (can_process()) actions.push_back(kProcessAction);
  return actions;
}

void SchedulingEnv::append_canonical_key(std::vector<std::uint64_t>& out) const {
  cluster_.append_canonical_key(out);
  out.push_back(static_cast<std::uint64_t>(ready_.size()));
  for (TaskId t : ready_) out.push_back(static_cast<std::uint64_t>(t));
  out.push_back(static_cast<std::uint64_t>(backlog_.size()));
  for (TaskId t : backlog_) out.push_back(static_cast<std::uint64_t>(t));
  out.push_back(static_cast<std::uint64_t>(pending_retries_.size()));
  for (const PendingRetry& p : pending_retries_) {
    out.push_back(static_cast<std::uint64_t>(p.task));
    out.push_back(static_cast<std::uint64_t>(p.ready_at));
  }
}

void SchedulingEnv::on_completed(const std::vector<TaskId>& tasks) {
  completed_ += tasks.size();
  for (TaskId t : tasks) {
    for (TaskId child : dag_->children(t)) {
      if (--missing_parents_[static_cast<std::size_t>(child)] == 0) {
        backlog_.push_back(child);
      }
    }
  }
  refill_ready();
}

void SchedulingEnv::after_advance(const std::vector<TaskId>& completed) {
  const RetryOptions& retry = options_.retry;
  for (TaskId task : cluster_.take_failed()) {
    ++fault_stats_.failures;
    // Covers every env instance, so search-time copies contribute too —
    // the registry totals are "all simulated + real fault events".
    if (obs::enabled()) {
      obs::count("env.task_failures");
      if (auto* tw = obs::trace()) {
        tw->instant("env.task_failure", "env",
                    "\"task\":" + std::to_string(task));
      }
    }
    const int attempts = cluster_.attempts(task);
    if (attempts > retry.max_retries) {
      if (obs::enabled()) {
        obs::count("env.job_aborts");
        if (auto* tw = obs::trace()) {
          tw->instant("env.job_abort", "env",
                      "\"task\":" + std::to_string(task) +
                          ",\"attempts\":" + std::to_string(attempts));
        }
      }
      throw JobAbortedError(task, attempts,
                            "retry budget exhausted (max_retries=" +
                                std::to_string(retry.max_retries) + ")");
    }
    // Exponential backoff: double per failure, saturating at the cap and
    // never waiting past a still-open per-task deadline window (see
    // retry_backoff_delay for the overflow hardening).
    const Time first = first_attempt_start_[static_cast<std::size_t>(task)];
    const Time delay =
        retry_backoff_delay(retry, attempts, cluster_.now(), first);
    const Time ready_at = cluster_.now() + delay;
    if (retry.task_deadline > 0 && ready_at > first + retry.task_deadline) {
      if (obs::enabled()) {
        obs::count("env.job_aborts");
        if (auto* tw = obs::trace()) {
          tw->instant("env.job_abort", "env",
                      "\"task\":" + std::to_string(task) +
                          ",\"attempts\":" + std::to_string(attempts));
        }
      }
      throw JobAbortedError(
          task, attempts,
          "retry at t=" + std::to_string(ready_at) +
              " would miss the per-task deadline (first start " +
              std::to_string(first) + " + deadline " +
              std::to_string(retry.task_deadline) + ")");
    }
    ++fault_stats_.retries;
    if (obs::enabled()) obs::count("env.task_retries");
    const PendingRetry entry{task, ready_at};
    const auto pos = std::upper_bound(
        pending_retries_.begin(), pending_retries_.end(), entry,
        [](const PendingRetry& a, const PendingRetry& b) {
          return a.ready_at != b.ready_at ? a.ready_at < b.ready_at
                                          : a.task < b.task;
        });
    pending_retries_.insert(pos, entry);
  }
  on_completed(completed);
  // Release retries whose backoff has elapsed back into the ready queue.
  while (!pending_retries_.empty() &&
         pending_retries_.front().ready_at <= cluster_.now()) {
    backlog_.push_back(pending_retries_.front().task);
    pending_retries_.erase(pending_retries_.begin());
  }
  refill_ready();
}

// NOTE: step() itself is deliberately uninstrumented — it is the hottest
// loop in the simulator (every rollout step) and even a relaxed-load
// branch costs ~2% there.  Fault events below are cold paths.
double SchedulingEnv::step(int action) {
  if (done()) {
    throw std::logic_error("SchedulingEnv::step: episode already finished");
  }
  if (action != kProcessAction) {
    const auto index = static_cast<std::size_t>(action);
    if (action >= 0 && can_schedule(index)) {
      const TaskId id = ready_[index];
      if (options_.faults &&
          first_attempt_start_[static_cast<std::size_t>(id)] == kNoTime) {
        first_attempt_start_[static_cast<std::size_t>(id)] = cluster_.now();
      }
      cluster_.place(dag_->task(id));
      ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(index));
      refill_ready();
      return 0.0;
    }
    // Invalid schedule request: fall through to processing if possible.
    if (!can_process()) {
      throw std::logic_error(
          "SchedulingEnv::step: invalid action with idle cluster");
    }
  }
  if (!can_process()) {
    throw std::logic_error(
        "SchedulingEnv::step: process action with idle cluster");
  }
  if (options_.faults) {
    after_advance(cluster_.advance_one_slot());
  } else {
    on_completed(cluster_.advance_one_slot());
  }
  return -1.0;
}

double SchedulingEnv::process_to_next_finish() {
  if (!can_process()) {
    throw std::logic_error(
        "SchedulingEnv::process_to_next_finish: idle cluster");
  }
  const Time before = cluster_.now();
  if (options_.faults) {
    // Jump to the next instant anything can change: a task finish (or
    // failure), a retry release, or a capacity-window boundary that
    // currently blocks a placement.
    after_advance(cluster_.advance_until(next_event_time()));
  } else {
    on_completed(cluster_.advance_to_next_finish());
  }
  return -static_cast<double>(cluster_.now() - before);
}

}  // namespace spear
