#include "env/env.h"

#include <algorithm>
#include <stdexcept>

namespace spear {

SchedulingEnv::SchedulingEnv(std::shared_ptr<const Dag> dag,
                             ResourceVector capacity, EnvOptions options,
                             std::shared_ptr<const DagFeatures> features)
    : dag_(std::move(dag)),
      features_(std::move(features)),
      options_(options),
      cluster_(std::move(capacity)) {
  if (!dag_) {
    throw std::invalid_argument("SchedulingEnv: null dag");
  }
  if (options_.max_ready == 0) {
    throw std::invalid_argument("SchedulingEnv: max_ready must be > 0");
  }
  for (const auto& t : dag_->tasks()) {
    if (!t.demand.fits_within(cluster_.capacity())) {
      throw std::invalid_argument(
          "SchedulingEnv: task " + std::to_string(t.id) +
          " demands more than the cluster capacity (unschedulable)");
    }
  }
  if (!features_) {
    features_ = std::make_shared<DagFeatures>(*dag_);
  }

  missing_parents_.resize(dag_->num_tasks());
  for (const auto& t : dag_->tasks()) {
    missing_parents_[static_cast<std::size_t>(t.id)] =
        static_cast<std::int32_t>(dag_->parents(t.id).size());
  }
  // Initially-ready tasks arrive in topological-id order.
  for (const auto& t : dag_->tasks()) {
    if (missing_parents_[static_cast<std::size_t>(t.id)] == 0) {
      backlog_.push_back(t.id);
    }
  }
  refill_ready();
}

void SchedulingEnv::refill_ready() {
  while (ready_.size() < options_.max_ready && !backlog_.empty()) {
    ready_.push_back(backlog_.front());
    backlog_.erase(backlog_.begin());
  }
}

Time SchedulingEnv::makespan() const {
  if (!done()) {
    throw std::logic_error("SchedulingEnv::makespan: episode not finished");
  }
  return cluster_.current_makespan();
}

bool SchedulingEnv::can_schedule(std::size_t ready_index) const {
  if (ready_index >= ready_.size()) return false;
  return cluster_.can_place(dag_->task(ready_[ready_index]).demand);
}

std::vector<int> SchedulingEnv::valid_actions() const {
  std::vector<int> actions;
  for (std::size_t i = 0; i < ready_.size(); ++i) {
    if (can_schedule(i)) actions.push_back(static_cast<int>(i));
  }
  if (can_process()) actions.push_back(kProcessAction);
  return actions;
}

void SchedulingEnv::on_completed(const std::vector<TaskId>& tasks) {
  completed_ += tasks.size();
  for (TaskId t : tasks) {
    for (TaskId child : dag_->children(t)) {
      if (--missing_parents_[static_cast<std::size_t>(child)] == 0) {
        backlog_.push_back(child);
      }
    }
  }
  refill_ready();
}

double SchedulingEnv::step(int action) {
  if (done()) {
    throw std::logic_error("SchedulingEnv::step: episode already finished");
  }
  if (action != kProcessAction) {
    const auto index = static_cast<std::size_t>(action);
    if (action >= 0 && can_schedule(index)) {
      const TaskId id = ready_[index];
      cluster_.place(dag_->task(id));
      ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(index));
      refill_ready();
      return 0.0;
    }
    // Invalid schedule request: fall through to processing if possible.
    if (!can_process()) {
      throw std::logic_error(
          "SchedulingEnv::step: invalid action with idle cluster");
    }
  }
  if (!can_process()) {
    throw std::logic_error(
        "SchedulingEnv::step: process action with idle cluster");
  }
  on_completed(cluster_.advance_one_slot());
  return -1.0;
}

double SchedulingEnv::process_to_next_finish() {
  if (!can_process()) {
    throw std::logic_error(
        "SchedulingEnv::process_to_next_finish: idle cluster");
  }
  const Time before = cluster_.now();
  on_completed(cluster_.advance_to_next_finish());
  return -static_cast<double>(cluster_.now() - before);
}

}  // namespace spear
