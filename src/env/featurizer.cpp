#include "env/featurizer.h"

#include <algorithm>
#include <stdexcept>

namespace spear {

Featurizer::Featurizer(FeaturizerOptions options) : options_(options) {
  if (options_.horizon <= 0) {
    throw std::invalid_argument("Featurizer: horizon must be positive");
  }
  if (options_.max_ready == 0) {
    throw std::invalid_argument("Featurizer: max_ready must be > 0");
  }
}

std::size_t Featurizer::input_dim(std::size_t resource_dims) const {
  const auto H = static_cast<std::size_t>(options_.horizon);
  const std::size_t per_task = options_.graph_features
                                   ? 4 + 2 * resource_dims
                                   : 2 + resource_dims;
  return H * resource_dims + options_.max_ready * per_task + 3;
}

void Featurizer::featurize(const SchedulingEnv& env,
                           std::vector<double>& out) const {
  const Dag& dag = env.dag();
  const DagFeatures& feats = env.features();
  const std::size_t R = dag.resource_dims();
  out.assign(input_dim(R), 0.0);
  std::size_t k = 0;

  // Normalization constants.  critical_path() >= 1 because runtimes are
  // positive; total loads are guarded against degenerate zero demand.
  const auto cp = static_cast<double>(std::max<Time>(feats.critical_path(), 1));
  std::vector<double> load_norm(R);
  for (std::size_t r = 0; r < R; ++r) {
    load_norm[r] = std::max(dag.total_load(r), 1e-9);
  }
  const auto n_tasks = static_cast<double>(dag.num_tasks());

  // 1. Cluster image over the horizon, as utilization fractions.
  const ClusterSim& cluster = env.cluster();
  for (Time dt = 0; dt < options_.horizon; ++dt) {
    const ResourceVector usage = cluster.projected_usage(cluster.now() + dt);
    for (std::size_t r = 0; r < R; ++r) {
      const double cap = std::max(cluster.capacity()[r], 1e-9);
      out[k++] = usage[r] / cap;
    }
  }

  // 2. Ready-task slots.
  const std::size_t per_task =
      options_.graph_features ? 4 + 2 * R : 2 + R;
  const auto& ready = env.ready();
  for (std::size_t i = 0; i < options_.max_ready; ++i) {
    if (i < ready.size()) {
      const Task& t = dag.task(ready[i]);
      out[k++] = 1.0;  // present
      out[k++] = static_cast<double>(t.runtime) / cp;
      for (std::size_t r = 0; r < R; ++r) {
        const double cap = std::max(cluster.capacity()[r], 1e-9);
        out[k++] = t.demand[r] / cap;
      }
      if (options_.graph_features) {
        out[k++] = static_cast<double>(feats.b_level(t.id)) / cp;
        out[k++] = static_cast<double>(feats.num_children(t.id)) /
                   std::max(n_tasks, 1.0);
        for (std::size_t r = 0; r < R; ++r) {
          out[k++] = feats.b_load(t.id, r) / load_norm[r];
        }
      }
    } else {
      k += per_task;  // zero padding for the empty slot
    }
  }

  // 3. Global scalars.
  out[k++] = static_cast<double>(env.backlog_size()) / std::max(n_tasks, 1.0);
  const auto placed = static_cast<double>(cluster.schedule().size());
  const auto running = static_cast<double>(cluster.num_running());
  out[k++] = (placed - running) / std::max(n_tasks, 1.0);  // completed frac
  out[k++] = running / std::max(n_tasks, 1.0);

  if (k != out.size()) {
    throw std::logic_error("Featurizer: feature layout mismatch");
  }
}

}  // namespace spear
