#include "env/featurizer.h"

#include <algorithm>
#include <stdexcept>

namespace spear {

namespace {

// Feature emitters: featurize_emit produces every feature value in layout
// order through one of these, so the dense row and the compressed
// (index, value) form are built by the same arithmetic — bitwise-equal by
// construction.  skip() advances past a run of zeros already present in
// the zero-filled row (empty ready slots).

struct DenseEmit {
  double* out;
  std::size_t k = 0;
  void value(double v) { out[k++] = v; }
  void skip(std::size_t n) { k += n; }
};

struct CompressEmit {
  double* out;
  std::int32_t* kidx;
  double* kval;
  std::size_t k = 0;
  std::size_t nnz = 0;
  void value(double v) {
    out[k] = v;
    // Branchless, like kernels::compress_rows_into: store unconditionally,
    // advance the cursor only past nonzeros.
    kidx[nnz] = static_cast<std::int32_t>(k);
    kval[nnz] = v;
    nnz += static_cast<std::size_t>(v != 0.0);
    ++k;
  }
  void skip(std::size_t n) { k += n; }
};

}  // namespace

Featurizer::Featurizer(FeaturizerOptions options) : options_(options) {
  if (options_.horizon <= 0) {
    throw std::invalid_argument("Featurizer: horizon must be positive");
  }
  if (options_.max_ready == 0) {
    throw std::invalid_argument("Featurizer: max_ready must be > 0");
  }
}

std::size_t Featurizer::input_dim(std::size_t resource_dims) const {
  const auto H = static_cast<std::size_t>(options_.horizon);
  const std::size_t per_task = options_.graph_features
                                   ? 4 + 2 * resource_dims
                                   : 2 + resource_dims;
  return H * resource_dims + options_.max_ready * per_task + 3;
}

void Featurizer::featurize(const SchedulingEnv& env,
                           std::vector<double>& out) const {
  // assign() reuses the vector's allocation across calls, so a reused
  // buffer makes this as allocation-free as featurize_into.
  out.assign(input_dim(env.dag().resource_dims()), 0.0);
  DenseEmit emit{out.data()};
  featurize_emit(env, out.data(), emit);
}

void Featurizer::featurize_into(const SchedulingEnv& env, double* out) const {
  std::fill(out, out + input_dim(env.dag().resource_dims()), 0.0);
  DenseEmit emit{out};
  featurize_emit(env, out, emit);
}

void Featurizer::featurize_compress_into(const SchedulingEnv& env,
                                         double* out, std::int32_t* kidx,
                                         double* kval,
                                         std::int32_t* row_nnz) const {
  std::fill(out, out + input_dim(env.dag().resource_dims()), 0.0);
  CompressEmit emit{out, kidx, kval};
  featurize_emit(env, out, emit);
  *row_nnz = static_cast<std::int32_t>(emit.nnz);
}

template <class Emit>
void Featurizer::featurize_emit(const SchedulingEnv& env, double* out,
                                Emit& emit) const {
  const Dag& dag = env.dag();
  const DagFeatures& feats = env.features();
  const std::size_t R = dag.resource_dims();

  // Normalization constants.  critical_path() >= 1 because runtimes are
  // positive; total loads are guarded against degenerate zero demand
  // (recomputed per use — two flops beat a heap-allocated cache on this
  // hot path).
  const auto cp = static_cast<double>(std::max<Time>(feats.critical_path(), 1));
  const auto load_norm = [&dag](std::size_t r) {
    return std::max(dag.total_load(r), 1e-9);
  };
  const auto n_tasks = static_cast<double>(dag.num_tasks());

  // 1. Cluster image over the horizon, as utilization fractions.  The raw
  // demands are accumulated into the zero-filled slots by one scan of the
  // running set (bit-identical to per-slot projected_usage sums), then
  // normalized in layout order through the emitter.
  const ClusterSim& cluster = env.cluster();
  cluster.accumulate_projected_usage(cluster.now(), options_.horizon, out);
  {
    std::size_t idx = 0;
    for (Time dt = 0; dt < options_.horizon; ++dt) {
      for (std::size_t r = 0; r < R; ++r, ++idx) {
        const double cap = std::max(cluster.capacity()[r], 1e-9);
        emit.value(out[idx] / cap);
      }
    }
  }

  // 2. Ready-task slots.
  const std::size_t per_task =
      options_.graph_features ? 4 + 2 * R : 2 + R;
  const auto& ready = env.ready();
  for (std::size_t i = 0; i < options_.max_ready; ++i) {
    if (i < ready.size()) {
      const Task& t = dag.task(ready[i]);
      emit.value(1.0);  // present
      emit.value(static_cast<double>(t.runtime) / cp);
      for (std::size_t r = 0; r < R; ++r) {
        const double cap = std::max(cluster.capacity()[r], 1e-9);
        emit.value(t.demand[r] / cap);
      }
      if (options_.graph_features) {
        emit.value(static_cast<double>(feats.b_level(t.id)) / cp);
        emit.value(static_cast<double>(feats.num_children(t.id)) /
                   std::max(n_tasks, 1.0));
        for (std::size_t r = 0; r < R; ++r) {
          emit.value(feats.b_load(t.id, r) / load_norm(r));
        }
      }
    } else {
      emit.skip(per_task);  // zero padding for the empty slot
    }
  }

  // 3. Global scalars.
  emit.value(static_cast<double>(env.backlog_size()) /
             std::max(n_tasks, 1.0));
  const auto placed = static_cast<double>(cluster.schedule().size());
  const auto running = static_cast<double>(cluster.num_running());
  emit.value((placed - running) / std::max(n_tasks, 1.0));  // completed frac
  emit.value(running / std::max(n_tasks, 1.0));

  if (emit.k != input_dim(R)) {
    throw std::logic_error("Featurizer: feature layout mismatch");
  }
}

}  // namespace spear
