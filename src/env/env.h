// The dependency-aware scheduling MDP (§III-B of the paper).
//
// State: the cluster's resource-time occupancy plus the list of ready tasks
// (tasks whose parents have all finished).  At most `max_ready` ready tasks
// are visible to the agent; the rest wait in a FIFO backlog queue.
//
// Actions: {-1, 0, 1, ..., k-1} where k = number of visible ready tasks.
//   * action i >= 0 schedules the i-th visible ready task at the current
//     time (valid only if its demand fits the instantaneously available
//     resources); time does NOT advance.
//   * action -1 ("process") advances time by one slot and yields reward -1,
//     so that the episode's cumulative reward is the negative makespan.
// MCTS uses process_to_next_finish() instead, advancing straight to the next
// task completion ("no new information arrives prior", §III-C) with reward
// equal to minus the elapsed slots.
//
// SchedulingEnv is a copyable value type; MCTS snapshots one per tree node.

#pragma once

#include <memory>
#include <vector>

#include "cluster/simulator.h"
#include "dag/dag.h"
#include "dag/features.h"
#include "fault/fault.h"

namespace spear {

struct EnvOptions {
  /// Max ready tasks exposed to the agent at once (paper: 15).
  std::size_t max_ready = 15;
  /// Failure-aware mode: a non-null injector decides per-attempt outcomes.
  /// Failed tasks re-enter the ready set after an exponential backoff (see
  /// `retry`); exhausting the retry budget or the per-task deadline throws
  /// JobAbortedError.  Null (default) = the idealized environment,
  /// bit-identical to the pre-fault implementation.
  std::shared_ptr<const FaultInjector> faults;
  RetryOptions retry;
  /// Resume-from-occupancy (online re-scheduling, DESIGN.md §14): these
  /// tasks are placed at t = 0 during construction, BEFORE any agent
  /// action, so the episode starts against a busy cluster.  Each must be a
  /// source of the DAG (its parents already finished in the outside world;
  /// encode the remaining work as the task's runtime) and the combined
  /// demand must fit the capacity.  Placement bypasses the fault injector
  /// (the work is already running; it must not fail or stretch again in
  /// the model).  Empty (default) = the usual idle-cluster start.
  std::vector<TaskId> initial_running;
};

/// Counters accumulated by a failure-aware episode.
struct EnvFaultStats {
  std::int64_t failures = 0;  ///< attempts that died
  std::int64_t retries = 0;   ///< re-queues scheduled after failures
};

class SchedulingEnv {
 public:
  /// The action index meaning "process the cluster".
  static constexpr int kProcessAction = -1;

  /// `dag` is shared immutable state; `features` may be null, in which case
  /// they are computed here (pass a precomputed one to share across many
  /// envs for the same DAG, e.g. across MCTS rollouts).
  SchedulingEnv(std::shared_ptr<const Dag> dag, ResourceVector capacity,
                EnvOptions options = {},
                std::shared_ptr<const DagFeatures> features = nullptr);

  const Dag& dag() const { return *dag_; }
  const DagFeatures& features() const { return *features_; }
  const ClusterSim& cluster() const { return cluster_; }
  const EnvOptions& options() const { return options_; }

  /// Visible ready tasks, in stable (FIFO arrival) order.
  const std::vector<TaskId>& ready() const { return ready_; }
  std::size_t backlog_size() const { return backlog_.size(); }

  /// All tasks finished?
  bool done() const { return completed_ == dag_->num_tasks(); }

  Time now() const { return cluster_.now(); }

  /// Makespan of the finished episode.  Requires done().
  Time makespan() const;

  /// True if visible ready task `i` fits the available resources right now.
  bool can_schedule(std::size_t ready_index) const;

  /// True if the process action is meaningful: something is running, or (in
  /// failure-aware mode) a retry backoff or capacity-loss window must be
  /// waited out before progress is possible.
  bool can_process() const;

  /// Failure counters (zero outside failure-aware mode).
  const EnvFaultStats& fault_stats() const { return fault_stats_; }

  /// Tasks currently waiting out a retry backoff.
  std::size_t pending_retries() const { return pending_retries_.size(); }

  /// Indices of currently valid actions: every fitting visible ready task,
  /// plus kProcessAction when the cluster is busy.
  std::vector<int> valid_actions() const;

  /// Appends this state's canonical transposition-key words (DESIGN.md
  /// §11): the cluster key (elapsed time + running set), the visible ready
  /// set, the backlog, and any pending retries.  Two states with equal keys
  /// featurize bit-identically and expose identical valid-action sets, so
  /// every DecisionPolicy evaluates them to bitwise-equal action weights —
  /// the property the leaf-parallel transposition cache relies on.  The DAG
  /// identity is NOT part of the key; callers must not mix keys across
  /// DAGs.
  void append_canonical_key(std::vector<std::uint64_t>& out) const;

  /// Applies an action and returns the reward (0 for scheduling, -1 per
  /// processed slot).  Invalid scheduling actions (task does not fit / index
  /// out of range) are treated as the process action when the cluster is
  /// busy — the standard trick that keeps sampled policies well-defined —
  /// and throw std::logic_error otherwise.
  double step(int action);

  /// MCTS variant: advances to the next task completion.  Requires
  /// can_process().  Returns -(elapsed slots).
  double process_to_next_finish();

  /// Runs `policy(env)` until done; returns the resulting makespan.
  template <typename Policy>
  Time rollout(Policy&& policy) {
    while (!done()) step(policy(*this));
    return makespan();
  }

 private:
  struct PendingRetry {
    TaskId task = kInvalidTask;
    Time ready_at = 0;
  };

  void on_completed(const std::vector<TaskId>& tasks);
  void refill_ready();
  /// Re-queues failed attempts under the retry policy (throws
  /// JobAbortedError on budget/deadline exhaustion) and releases retries
  /// whose backoff has elapsed.  Called after every time advance.
  void after_advance(const std::vector<TaskId>& completed);
  /// Earliest instant at which the state can change with no scheduling
  /// action: a task finish, a retry release, or a capacity-window boundary
  /// while some visible ready task cannot be placed.  kNoTime if none.
  Time next_event_time() const;

  static constexpr Time kNoTime = -1;

  std::shared_ptr<const Dag> dag_;
  std::shared_ptr<const DagFeatures> features_;
  EnvOptions options_;
  ClusterSim cluster_;
  std::vector<TaskId> ready_;             // visible ready tasks
  std::vector<TaskId> backlog_;           // overflow FIFO (front = index 0)
  std::vector<std::int32_t> missing_parents_;  // per task
  std::size_t completed_ = 0;
  std::vector<PendingRetry> pending_retries_;  // sorted by (ready_at, task)
  std::vector<Time> first_attempt_start_;      // per task; kNoTime = none
  EnvFaultStats fault_stats_;
};

}  // namespace spear
