// State featurization for the policy network (§III-D of the paper).
//
// The network input concatenates:
//   1. The cluster image: for each of the next `horizon` time slots and each
//      resource dimension, the fraction of capacity in use (reconstructed
//      from the running tasks).                              horizon x R
//   2. Per visible ready-task slot (up to `max_ready` slots, zero-padded):
//      [present, runtime, demand_0..demand_{R-1}, b-level, #children,
//       b-load_0..b-load_{R-1}]                              K x (4 + 2R)
//   3. Global scalars: [normalized backlog size, fraction of tasks
//      completed, fraction of tasks currently running].      3
//
// All features are normalized to roughly [0, 1] using per-DAG constants
// (critical path for times, total load for b-loads) so one trained network
// generalizes across DAG sizes.

#pragma once

#include <cstdint>
#include <vector>

#include "env/env.h"

namespace spear {

struct FeaturizerOptions {
  Time horizon = 20;         ///< time-slot lookahead of the cluster image
  std::size_t max_ready = 15;  ///< must match EnvOptions::max_ready
  /// Include the graph-derived task features (b-level, #children, b-loads).
  /// §III-D reports these are what lift the DRL model past Tetris/SJF;
  /// false reproduces the paper's "no graph features" ablation (the input
  /// shrinks to [present, runtime, demands] per ready slot).
  bool graph_features = true;
};

class Featurizer {
 public:
  explicit Featurizer(FeaturizerOptions options = {});

  const FeaturizerOptions& options() const { return options_; }

  /// Length of the feature vector for `resource_dims` resource dimensions.
  std::size_t input_dim(std::size_t resource_dims) const;

  /// Number of policy outputs: one per ready slot + the process action.
  /// Output k (the last) is the process action; output i < max_ready is
  /// "schedule visible ready task i".
  std::size_t num_actions() const { return options_.max_ready + 1; }
  std::size_t process_output() const { return options_.max_ready; }

  /// Fills `out` (resized to input_dim) with the features of `env`'s state.
  void featurize(const SchedulingEnv& env, std::vector<double>& out) const;

  /// Span variant for the batched fast path: writes input_dim(R) doubles
  /// starting at `out` (caller guarantees the capacity — typically a row
  /// of a preallocated batch matrix).  No allocation; identical values to
  /// featurize().
  void featurize_into(const SchedulingEnv& env, double* out) const;

  /// featurize_into that additionally emits the row's nonzero (index,
  /// value) pairs into kidx/kval with the count in *row_nnz — the
  /// compressed form the sparse NN kernels consume (nn/kernels.h), built
  /// while the features are written so the ~80%-zero row is never
  /// re-scanned.  `out` values and the compressed pairs are bit-identical
  /// to featurize_into followed by kernels::compress_rows_into.
  void featurize_compress_into(const SchedulingEnv& env, double* out,
                               std::int32_t* kidx, double* kval,
                               std::int32_t* row_nnz) const;

 private:
  template <class Emit>
  void featurize_emit(const SchedulingEnv& env, double* out,
                      Emit& emit) const;

  FeaturizerOptions options_;
};

}  // namespace spear
