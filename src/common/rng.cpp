#include "common/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace spear {

namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % range);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to keep log() finite.
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::truncated_normal(double mean, double stddev, double lo, double hi) {
  assert(lo <= hi);
  constexpr int kMaxAttempts = 64;
  for (int i = 0; i < kMaxAttempts; ++i) {
    const double x = normal(mean, stddev);
    if (x >= lo && x <= hi) return x;
  }
  const double x = normal(mean, stddev);
  return x < lo ? lo : (x > hi ? hi : x);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument(
        "Rng::categorical requires at least one positive weight");
  }
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  // Floating-point slop: return the last positive-weight index.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;  // unreachable given the throw above
}

Rng Rng::split() { return Rng(next_u64()); }

RngState Rng::state() const {
  RngState state;
  for (std::size_t i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.cached_normal = cached_normal_;
  state.has_cached_normal = has_cached_normal_;
  return state;
}

void Rng::set_state(const RngState& state) {
  for (std::size_t i = 0; i < 4; ++i) s_[i] = state.s[i];
  cached_normal_ = state.cached_normal;
  has_cached_normal_ = state.has_cached_normal;
}

}  // namespace spear
