#include "common/csv.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace spear {

struct CsvWriter::Impl {
  std::ofstream out;
};

CsvWriter::CsvWriter(const std::string& path) : impl_(new Impl) {
  impl_->out.open(path, std::ios::trunc);
  if (!impl_->out) {
    delete impl_;
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

CsvWriter::~CsvWriter() { delete impl_; }

void CsvWriter::write_row(const CsvRow& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) impl_->out << ',';
    impl_->out << csv_escape(fields[i]);
  }
  impl_->out << '\n';
}

std::string CsvWriter::field_of(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

std::string csv_escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::vector<CsvRow> parse_csv(const std::string& text) {
  std::vector<CsvRow> rows;
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        field_started = true;  // next field exists even if empty
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        end_row();
        break;
      default:
        field += c;
        field_started = true;
        break;
    }
  }
  if (in_quotes) {
    throw std::runtime_error("parse_csv: unterminated quoted field");
  }
  if (field_started || !field.empty() || !row.empty()) {
    end_row();
  }
  return rows;
}

std::vector<CsvRow> read_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("read_csv: cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_csv(buf.str());
}

}  // namespace spear
