#include "common/supervisor.h"

#include <atomic>
#include <csignal>

#include "common/logging.h"
#include "obs/obs.h"

namespace spear {

namespace {

std::atomic<bool> g_stop_requested{false};

void handle_stop_signal(int /*signum*/) {
  // Async-signal-safe: a lock-free atomic store and nothing else.  The
  // supervised loop notices at its next poll point.
  g_stop_requested.store(true, std::memory_order_relaxed);
}

}  // namespace

bool install_signal_handlers() {
  static_assert(std::atomic<bool>::is_always_lock_free,
                "stop flag must be async-signal-safe");
  bool ok = true;
  ok = std::signal(SIGINT, handle_stop_signal) != SIG_ERR && ok;
  ok = std::signal(SIGTERM, handle_stop_signal) != SIG_ERR && ok;
  return ok;
}

bool stop_requested() {
  return g_stop_requested.load(std::memory_order_relaxed);
}

void request_stop() { g_stop_requested.store(true, std::memory_order_relaxed); }

void reset_stop_flag() {
  g_stop_requested.store(false, std::memory_order_relaxed);
}

Watchdog::Watchdog(std::string name) : name_(std::move(name)) {
  thread_ = std::thread([this] { run(); });
}

Watchdog::~Watchdog() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void Watchdog::arm(std::chrono::milliseconds deadline, std::string label) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    deadline_ = std::chrono::steady_clock::now() + deadline;
    label_ = std::move(label);
    ++arm_id_;
    armed_ = true;
  }
  cv_.notify_all();
}

void Watchdog::disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_ = false;
  ++arm_id_;
}

std::size_t Watchdog::overruns() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return overruns_;
}

void Watchdog::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!shutdown_) {
    if (!armed_) {
      cv_.wait(lock, [this] { return armed_ || shutdown_; });
      continue;
    }
    const std::uint64_t id = arm_id_;
    if (cv_.wait_until(lock, deadline_, [this, id] {
          return shutdown_ || arm_id_ != id;
        })) {
      continue;  // disarmed, re-armed or shutting down
    }
    // Deadline elapsed while still armed: report once, then wait for the
    // next arm so a wedged epoch produces one warning, not a warning storm.
    ++overruns_;
    armed_ = false;
    const std::string label = label_;
    lock.unlock();
    SPEAR_LOG(Warn) << "watchdog[" << name_ << "]: "
                    << (label.empty() ? std::string("work unit") : label)
                    << " exceeded its deadline";
    if (obs::enabled()) {
      obs::count("supervisor.watchdog_overruns");
    }
    lock.lock();
  }
}

}  // namespace spear
