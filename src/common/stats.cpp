#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace spear {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  // Sample (N-1) divisor — see the convention note in stats.h.
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double min_of(const std::vector<double>& xs) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(const std::vector<double>& xs) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) {
    throw std::invalid_argument("percentile of an empty range");
  }
  p = std::clamp(p, 0.0, 100.0);
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double median(std::vector<double> xs) { return percentile(std::move(xs), 50.0); }

std::vector<CdfPoint> empirical_cdf(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  std::vector<CdfPoint> out;
  out.reserve(xs.size());
  const auto n = static_cast<double>(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    out.push_back({xs[i], static_cast<double>(i + 1) / n});
  }
  return out;
}

double win_rate(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("win_rate: size mismatch");
  }
  if (a.empty()) return 0.0;
  std::size_t wins = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) ++wins;
  }
  return static_cast<double>(wins) / static_cast<double>(a.size());
}

double no_worse_rate(const std::vector<double>& a,
                     const std::vector<double>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("no_worse_rate: size mismatch");
  }
  if (a.empty()) return 0.0;
  std::size_t ok = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] <= b[i]) ++ok;
  }
  return static_cast<double>(ok) / static_cast<double>(a.size());
}

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = min_of(xs);
  s.max = max_of(xs);
  s.p25 = percentile(xs, 25.0);
  s.median = percentile(xs, 50.0);
  s.p75 = percentile(xs, 75.0);
  return s;
}

std::string to_string(const Summary& s) {
  std::ostringstream os;
  os << "n=" << s.count << " mean=" << s.mean << " sd=" << s.stddev
     << " min=" << s.min << " p25=" << s.p25 << " med=" << s.median
     << " p75=" << s.p75 << " max=" << s.max;
  return os.str();
}

}  // namespace spear
