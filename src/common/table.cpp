#include "common/table.h"

#include <cstdio>
#include <iomanip>
#include <sstream>

namespace spear {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::cell_of(double v) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision_) << v;
  return os.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << "  ";
      os << std::left << std::setw(static_cast<int>(widths[c])) << cells[c];
    }
    os << "\n";
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c ? 2 : 0);
  }
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace spear
