// A small reusable fixed-size thread pool.
//
// Workers are started once and reused across many batches of tasks, so the
// per-batch cost is a queue push + condition-variable wake rather than a
// thread spawn.  Root-parallel MCTS submits one task per search worker per
// scheduling decision; benches and future subsystems (batch scheduling,
// parallel self-play) share the same primitive.
//
//   ThreadPool pool(4);
//   auto f = pool.submit([] { heavy_work(); });
//   f.get();                                   // rethrows task exceptions
//   pool.parallel_for(n, [&](std::size_t i) { shard(i); });  // blocking
//
// Exceptions thrown by a task are captured in the corresponding future;
// parallel_for waits for ALL shards to finish before rethrowing the first
// exception (in shard order), so captured references never dangle.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace spear {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Calls shutdown().
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Executes all pending tasks, then joins the workers.  Idempotent; after
  /// the first call submit()/parallel_for() throw std::runtime_error rather
  /// than deadlocking on a dead queue.
  void shutdown();

  /// Enqueues `task`; the future completes when it has run (or rethrows
  /// what it threw).
  std::future<void> submit(std::function<void()> task);

  /// Runs body(0) .. body(n-1) across the pool and blocks until every call
  /// has finished.  The first exception (lowest index) is rethrown after
  /// the barrier.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// std::thread::hardware_concurrency with a floor of 1.
  static std::size_t hardware_threads();

 private:
  void worker_loop(std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace spear
