// Small descriptive-statistics helpers used by the evaluation harness:
// means, medians, percentiles, CDF extraction and pairwise win rates.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace spear {

/// Arithmetic mean; 0 for an empty range.
double mean(const std::vector<double>& xs);

/// SAMPLE standard deviation (Bessel's N-1 divisor); 0 for fewer than two
/// samples.  Convention: every stddev this repo reports treats its inputs
/// as a sample of a larger population (benchmark repetitions, job subsets),
/// so the unbiased N-1 estimator is the right one.  An earlier revision
/// divided by N while guarding n < 2 like a sample stddev; no committed CSV
/// carries a stddev-derived column, so only log lines changed.
double stddev(const std::vector<double>& xs);

double min_of(const std::vector<double>& xs);
double max_of(const std::vector<double>& xs);

/// Linear-interpolation percentile, p in [0, 100].  Requires non-empty input.
double percentile(std::vector<double> xs, double p);

/// Median == 50th percentile.
double median(std::vector<double> xs);

/// One (x, F(x)) point per sample: the empirical CDF, sorted by x.
struct CdfPoint {
  double value = 0.0;
  double fraction = 0.0;  // fraction of samples <= value
};
std::vector<CdfPoint> empirical_cdf(std::vector<double> xs);

/// Fraction of indices where a[i] < b[i] (strictly better when lower-is-better).
/// Requires equal sizes.
double win_rate(const std::vector<double>& a, const std::vector<double>& b);

/// Fraction of indices where a[i] <= b[i].
double no_worse_rate(const std::vector<double>& a, const std::vector<double>& b);

/// Compact five-number-style summary for log lines.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
};
Summary summarize(const std::vector<double>& xs);

/// Renders a Summary as a single human-readable line.
std::string to_string(const Summary& s);

}  // namespace spear
