#include "common/flags.h"

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace spear {

namespace {

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

std::shared_ptr<std::int64_t> Flags::define_int(const std::string& name,
                                                std::int64_t def,
                                                const std::string& help) {
  Flag f;
  f.name = name;
  f.help = help;
  f.kind = Kind::kInt;
  f.int_val = std::make_shared<std::int64_t>(def);
  f.default_text = std::to_string(def);
  flags_.push_back(f);
  return f.int_val;
}

std::shared_ptr<double> Flags::define_double(const std::string& name,
                                             double def,
                                             const std::string& help) {
  Flag f;
  f.name = name;
  f.help = help;
  f.kind = Kind::kDouble;
  f.double_val = std::make_shared<double>(def);
  std::ostringstream os;
  os << def;
  f.default_text = os.str();
  flags_.push_back(f);
  return f.double_val;
}

std::shared_ptr<bool> Flags::define_bool(const std::string& name, bool def,
                                         const std::string& help) {
  Flag f;
  f.name = name;
  f.help = help;
  f.kind = Kind::kBool;
  f.bool_val = std::make_shared<bool>(def);
  f.default_text = def ? "true" : "false";
  flags_.push_back(f);
  return f.bool_val;
}

std::shared_ptr<std::string> Flags::define_string(const std::string& name,
                                                  const std::string& def,
                                                  const std::string& help) {
  Flag f;
  f.name = name;
  f.help = help;
  f.kind = Kind::kString;
  f.string_val = std::make_shared<std::string>(def);
  f.default_text = def;
  flags_.push_back(f);
  return f.string_val;
}

Flags::Flag* Flags::find(const std::string& name) {
  for (auto& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

void Flags::assign(Flag& flag, const std::string& value) {
  try {
    // std::stoll/std::stod stop at the first invalid character, which would
    // let "--seed=10abc" silently parse as 10; demand that the whole value
    // is consumed.
    std::size_t consumed = 0;
    switch (flag.kind) {
      case Kind::kInt: {
        const std::int64_t parsed = std::stoll(value, &consumed);
        if (consumed != value.size()) {
          throw std::runtime_error("trailing characters");
        }
        *flag.int_val = parsed;
        break;
      }
      case Kind::kDouble: {
        const double parsed = std::stod(value, &consumed);
        if (consumed != value.size()) {
          throw std::runtime_error("trailing characters");
        }
        *flag.double_val = parsed;
        break;
      }
      case Kind::kBool:
        if (value == "true" || value == "1") {
          *flag.bool_val = true;
        } else if (value == "false" || value == "0") {
          *flag.bool_val = false;
        } else {
          throw std::runtime_error("expected true/false");
        }
        break;
      case Kind::kString:
        *flag.string_val = value;
        break;
    }
  } catch (const std::exception&) {
    throw std::runtime_error("bad value for --" + flag.name + ": '" + value +
                             "'");
  }
}

void Flags::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    if (arg == "help") {
      std::cout << usage(argv[0]);
      std::exit(0);
    }
    std::string name = arg;
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    Flag* flag = find(name);
    if (flag == nullptr && starts_with(name, "no-")) {
      Flag* neg = find(name.substr(3));
      if (neg != nullptr && neg->kind == Kind::kBool && !has_value) {
        *neg->bool_val = false;
        continue;
      }
    }
    if (flag == nullptr) {
      throw std::runtime_error("unknown flag --" + name);
    }
    if (!has_value) {
      if (flag->kind == Kind::kBool) {
        *flag->bool_val = true;
        continue;
      }
      if (i + 1 >= argc) {
        throw std::runtime_error("missing value for --" + name);
      }
      value = argv[++i];
    }
    assign(*flag, value);
  }
}

std::string Flags::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& f : flags_) {
    os << "  --" << f.name << " (default: " << f.default_text << ")\n      "
       << f.help << "\n";
  }
  return os.str();
}

}  // namespace spear
