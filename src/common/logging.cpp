#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>

namespace spear {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= log_level()), level_(level) {
  if (!enabled_) return;
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << level_name(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  std::fflush(stderr);
}

}  // namespace detail
}  // namespace spear
