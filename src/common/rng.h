// Deterministic pseudo-random number generation for all of Spear.
//
// Every stochastic component (DAG generation, policy sampling, MCTS rollouts,
// RL training) draws from an explicitly seeded Rng so that simulations,
// tests and benchmarks are reproducible run-to-run.  The generator is
// xoshiro256** seeded via SplitMix64, both public-domain algorithms by
// Blackman & Vigna.

#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace spear {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Also usable standalone as a tiny, fast generator for hashing-style needs.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Complete serializable state of an Rng: the four xoshiro256** words plus
/// the Box-Muller cache (normal() hands out variates in pairs, so restoring
/// only the engine words would desynchronize a resumed normal stream).
struct RngState {
  std::array<std::uint64_t, 4> s{};
  double cached_normal = 0.0;
  bool has_cached_normal = false;

  friend bool operator==(const RngState&, const RngState&) = default;
};

/// xoshiro256**: the project-wide random engine.  Satisfies the
/// UniformRandomBitGenerator concept so it can also feed <random>
/// distributions where convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second variate).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Normal truncated (by resampling) to [lo, hi]; falls back to clamping
  /// after a bounded number of attempts so it never loops forever.
  double truncated_normal(double mean, double stddev, double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  std::size_t categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Deterministically derives an independent child generator; used to give
  /// each parallel component (job, rollout batch, ...) its own stream.
  Rng split();

  /// Snapshot of the full generator state; set_state() on any Rng restores
  /// it so the two produce bit-identical streams from that point on.  Used
  /// by the checkpoint layer for crash-safe training resume.
  RngState state() const;
  void set_state(const RngState& state);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace spear
