// Tiny command-line flag parser for the bench/example binaries.
//
//   Flags flags;
//   auto seed   = flags.define_int("seed", 42, "random seed");
//   auto paper  = flags.define_bool("paper", false, "paper-scale parameters");
//   flags.parse(argc, argv);          // throws on unknown flag / bad value
//   use(*seed, *paper);
//
// Accepted syntaxes: --name=value, --name value, --flag (bool true),
// --no-flag (bool false).

#pragma once

#include <memory>
#include <string>
#include <vector>

namespace spear {

class Flags {
 public:
  std::shared_ptr<std::int64_t> define_int(const std::string& name,
                                           std::int64_t def,
                                           const std::string& help);
  std::shared_ptr<double> define_double(const std::string& name, double def,
                                        const std::string& help);
  std::shared_ptr<bool> define_bool(const std::string& name, bool def,
                                    const std::string& help);
  std::shared_ptr<std::string> define_string(const std::string& name,
                                             const std::string& def,
                                             const std::string& help);

  /// Parses argv; on "--help" prints usage and exits(0).
  /// Throws std::runtime_error on unknown flags or malformed values.
  void parse(int argc, char** argv);

  /// Positional (non-flag) arguments left after parse().
  const std::vector<std::string>& positional() const { return positional_; }

  /// Usage text (also printed by --help).
  std::string usage(const std::string& program) const;

 private:
  enum class Kind { kInt, kDouble, kBool, kString };
  struct Flag {
    std::string name;
    std::string help;
    Kind kind;
    std::shared_ptr<std::int64_t> int_val;
    std::shared_ptr<double> double_val;
    std::shared_ptr<bool> bool_val;
    std::shared_ptr<std::string> string_val;
    std::string default_text;
  };

  Flag* find(const std::string& name);
  void assign(Flag& flag, const std::string& value);

  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace spear
