// Supervised graceful shutdown and deadline watchdogs (DESIGN.md §9, §12).
//
// Promoted from src/ckpt/ so the scheduling-as-a-service daemon and the
// trainers share ONE process-wide stop-flag path: a process has a single
// SIGINT/SIGTERM disposition, so whichever long-running loop owns the
// process installs the handlers here and every component (training epochs,
// service admission, frontends) polls the same flag.
//
// Signal path: install_signal_handlers() routes SIGINT/SIGTERM to a
// lock-free stop flag.  Long-running loops poll stop_requested() at their
// natural boundaries (epoch end, request dequeue, accept loop) and, when
// set, stop admitting new work, drain what is in flight, flush their
// checkpoint / RunReport, and exit cleanly — a second signal still kills
// the process the usual way because the handler only sets a flag.
//
// Watchdog path: a Watchdog owns one monitor thread; arm(deadline) starts a
// countdown and disarm() cancels it.  If a deadline elapses while armed the
// watchdog logs a warning and bumps the "supervisor.watchdog_overruns"
// counter — once per arm — but never kills anything: it composes with the
// anytime MCTS budget (DESIGN.md §7), which already degrades long decision
// searches, by making silent overruns visible instead of fatal.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

namespace spear {

/// Installs SIGINT/SIGTERM handlers that set the process-wide stop flag.
/// Idempotent; returns false when handler installation failed.
bool install_signal_handlers();

/// True once SIGINT/SIGTERM was received (or request_stop() was called).
bool stop_requested();

/// Programmatic equivalents, used by tests and embedders.
void request_stop();
void reset_stop_flag();

/// Deadline monitor for long-running units of work (a training epoch, a
/// decision search, a service request).  Overruns are observable, not fatal.
class Watchdog {
 public:
  /// `name` labels log lines and the obs counter
  /// ("supervisor.watchdog_overruns").
  explicit Watchdog(std::string name);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Starts (or restarts) the countdown.  `label` names the unit of work in
  /// the overrun warning, e.g. "epoch 17".
  void arm(std::chrono::milliseconds deadline, std::string label = {});

  /// Cancels the countdown; a no-op when not armed.
  void disarm();

  /// Deadlines that elapsed while armed since construction.
  std::size_t overruns() const;

 private:
  void run();

  const std::string name_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::chrono::steady_clock::time_point deadline_{};
  std::string label_;
  std::uint64_t arm_id_ = 0;   // increments on every arm/disarm
  bool armed_ = false;
  bool shutdown_ = false;
  std::size_t overruns_ = 0;
  std::thread thread_;
};

/// RAII arm/disarm around one unit of work.  A zero or negative deadline
/// disables the watchdog for the scope.
class WatchdogScope {
 public:
  WatchdogScope(Watchdog& dog, std::chrono::milliseconds deadline,
                std::string label = {})
      : dog_(dog), active_(deadline.count() > 0) {
    if (active_) dog_.arm(deadline, std::move(label));
  }
  ~WatchdogScope() {
    if (active_) dog_.disarm();
  }

  WatchdogScope(const WatchdogScope&) = delete;
  WatchdogScope& operator=(const WatchdogScope&) = delete;

 private:
  Watchdog& dog_;
  bool active_;
};

}  // namespace spear
