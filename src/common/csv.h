// Minimal CSV reading/writing used by the benchmark harness (every bench
// writes its series as CSV next to the stdout table) and by the trace module.
//
// Supports quoting with '"' and embedded commas/newlines on read; writes
// quote any field that needs it.  This is intentionally a small subset of
// RFC 4180 sufficient for our own files.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace spear {

/// One CSV row: a vector of string fields.
using CsvRow = std::vector<std::string>;

class CsvWriter {
 public:
  /// Opens (truncates) the file.  Throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void write_row(const CsvRow& fields);

  /// Convenience: formats arithmetic values with full precision.
  template <typename... Ts>
  void write(const Ts&... vals) {
    CsvRow row;
    row.reserve(sizeof...(vals));
    (row.push_back(field_of(vals)), ...);
    write_row(row);
  }

 private:
  static std::string field_of(const std::string& s) { return s; }
  static std::string field_of(const char* s) { return s; }
  static std::string field_of(double v);
  static std::string field_of(float v) { return field_of(double{v}); }
  static std::string field_of(int v) { return std::to_string(v); }
  static std::string field_of(long v) { return std::to_string(v); }
  static std::string field_of(long long v) { return std::to_string(v); }
  static std::string field_of(unsigned v) { return std::to_string(v); }
  static std::string field_of(unsigned long v) { return std::to_string(v); }
  static std::string field_of(unsigned long long v) { return std::to_string(v); }

  struct Impl;
  Impl* impl_;
};

/// Parses an entire CSV document.  Throws std::runtime_error on I/O failure
/// or unterminated quotes.
std::vector<CsvRow> read_csv(const std::string& path);

/// Parses CSV from a string (exposed for tests).
std::vector<CsvRow> parse_csv(const std::string& text);

/// Escapes a single field per RFC 4180 (exposed for tests).
std::string csv_escape(const std::string& field);

}  // namespace spear
