#include "common/thread_pool.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/obs.h"

namespace spear {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    throw std::invalid_argument("ThreadPool: need at least one worker");
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;  // already shut down (or shutting down)
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool: submit after shutdown");
    }
    queue_.push_back(std::move(packaged));
    depth = queue_.size();
  }
  cv_.notify_one();
  if (obs::enabled()) {
    obs::count("pool.tasks_submitted");
    obs::gauge("pool.queue_depth", static_cast<double>(depth));
  }
  return future;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  {
    // Checked even for the inline n <= 1 fast paths, so the after-shutdown
    // contract does not depend on the shard count.
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool: parallel_for after shutdown");
    }
  }
  if (n == 0) return;
  if (n == 1) {
    body(0);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&body, i] { body(i); }));
  }
  // Barrier first: every shard must be done before any rethrow, otherwise a
  // still-running shard could outlive the caller's captured state.
  for (auto& f : futures) f.wait();
  for (auto& f : futures) f.get();
}

std::size_t ThreadPool::hardware_threads() {
  return std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (obs::enabled()) {
      if (auto* tw = obs::trace()) {
        // The writer dedups per (writer, thread), so this is one metadata
        // event per worker per trace file, not one per task.
        tw->thread_name("pool-worker-" + std::to_string(worker_index));
      }
      // Metrics-only span: task runtime feeds the pool.task.ms histogram
      // (worker utilization); trace tracks come from the higher-level
      // spans the task itself opens (e.g. mcts.worker).
      obs::ScopedTimer run_span("pool.task", "pool", /*with_trace=*/false);
      task();  // exceptions land in the task's future
      continue;
    }
    task();  // exceptions land in the task's future
  }
}

}  // namespace spear
