// Aligned fixed-width console tables; every bench prints its results through
// this so that stdout matches the row/column structure of the paper's tables
// and figure series.

#pragma once

#include <string>
#include <vector>

namespace spear {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: mixed numeric/string row with fixed precision for doubles.
  template <typename... Ts>
  void add(const Ts&... vals) {
    std::vector<std::string> row;
    row.reserve(sizeof...(vals));
    (row.push_back(cell_of(vals)), ...);
    add_row(std::move(row));
  }

  /// Renders with a header rule; each column padded to its widest cell.
  std::string to_string() const;

  /// Prints to stdout.
  void print() const;

  /// Controls double formatting in add(); default 2 decimal places.
  void set_precision(int digits) { precision_ = digits; }

 private:
  std::string cell_of(const std::string& s) const { return s; }
  std::string cell_of(const char* s) const { return s; }
  std::string cell_of(double v) const;
  std::string cell_of(float v) const { return cell_of(double{v}); }
  std::string cell_of(int v) const { return std::to_string(v); }
  std::string cell_of(long v) const { return std::to_string(v); }
  std::string cell_of(long long v) const { return std::to_string(v); }
  std::string cell_of(unsigned v) const { return std::to_string(v); }
  std::string cell_of(unsigned long v) const { return std::to_string(v); }
  std::string cell_of(unsigned long long v) const { return std::to_string(v); }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  int precision_ = 2;
};

}  // namespace spear
