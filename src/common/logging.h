// Leveled logging to stderr.  Intentionally tiny: benches and examples use
// it for progress lines; the libraries themselves stay quiet below kWarn.
//
//   SPEAR_LOG(Info) << "trained epoch " << e << " mean makespan " << m;

#pragma once

#include <sstream>
#include <string>

namespace spear {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are discarded.  Default: kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace spear

#define SPEAR_LOG(severity)                                       \
  ::spear::detail::LogMessage(::spear::LogLevel::k##severity, \
                              __FILE__, __LINE__)
