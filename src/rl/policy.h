// The scheduling policy: featurizer + MLP + masked softmax over actions.
//
// Network outputs K+1 logits for K = max visible ready tasks: output i < K
// is "schedule visible ready task i", output K is the process action.
// Invalid outputs (empty ready slot, task that does not fit, process on an
// idle cluster) are masked out and the remaining logits renormalized — the
// gradient of the masked log-softmax is (masked_probs - onehot) with zeros
// at masked entries, which is what training uses.

#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "env/featurizer.h"
#include "nn/mlp.h"

namespace spear {

class Policy {
 public:
  /// Wraps an existing network; its input/output dims must match
  /// `featurizer.input_dim(resource_dims)` / `featurizer.num_actions()`.
  Policy(Featurizer featurizer, Mlp net, std::size_t resource_dims);

  /// Builds a fresh He-initialized policy with the paper's default topology
  /// (hidden layers 256, 32, 32).
  static Policy make(FeaturizerOptions featurizer_options,
                     std::size_t resource_dims, Rng& rng,
                     std::vector<std::size_t> hidden = {256, 32, 32});

  const Featurizer& featurizer() const { return featurizer_; }
  Mlp& net() { return net_; }
  const Mlp& net() const { return net_; }
  std::size_t resource_dims() const { return resource_dims_; }
  std::size_t num_outputs() const { return featurizer_.num_actions(); }

  /// Mask of valid network outputs in `env`'s current state.
  std::vector<bool> valid_output_mask(const SchedulingEnv& env) const;

  /// Masked softmax action distribution (size num_outputs; zeros at invalid
  /// outputs).  Requires at least one valid action (i.e. !env.done()).
  std::vector<double> action_probs(const SchedulingEnv& env) const;

  /// Allocation-free variant: features go straight into the network
  /// workspace (featurize_into), one single-row forward_ws pass, masked
  /// softmax into `out` (resized to num_outputs).  Identical values to
  /// action_probs(); the steady-state path performs no heap allocation
  /// beyond the caller's reused `out`/`mask` buffers.
  void action_probs_into(const SchedulingEnv& env, std::vector<bool>& mask,
                         std::vector<double>& out) const;

  /// Batched evaluation: featurizes all `n` states as rows of one input
  /// matrix, runs ONE forward pass, and emits each row's masked softmax
  /// into probs[i] (and its mask into masks[i]).  Row results are
  /// bit-identical to n action_probs() calls — each logits row depends
  /// only on its own input row and the kernels never mix rows.
  void action_probs_batch(const SchedulingEnv* const* envs, std::size_t n,
                          std::vector<std::vector<bool>>& masks,
                          std::vector<std::vector<double>>& probs) const;

  /// Workspace-external variant of action_probs_batch: ALL mutable forward
  /// state lives in the caller's `ws`, so any number of threads may share
  /// one immutable Policy as long as each brings its own workspace — the
  /// contract the shared inference service (DESIGN.md §15) is built on.
  /// Bit-identical to action_probs_batch, which delegates here with the
  /// member workspace.
  void action_probs_batch_ws(Mlp::ForwardWorkspace& ws,
                             const SchedulingEnv* const* envs, std::size_t n,
                             std::vector<std::vector<bool>>& masks,
                             std::vector<std::vector<double>>& probs) const;

  /// Samples a network output index from action_probs.
  std::size_t sample_output(const SchedulingEnv& env, Rng& rng) const;

  /// Highest-probability valid output.
  std::size_t greedy_output(const SchedulingEnv& env) const;

  /// Translates a network output index to a SchedulingEnv action.
  int to_env_action(std::size_t output) const;

  /// Plays one full episode sampling from the policy; returns the makespan.
  /// When `jump_on_process` is true, a process action advances to the next
  /// task completion instead of one slot (identical reachable states, far
  /// fewer steps; see DESIGN.md).
  Time rollout_episode(SchedulingEnv env, Rng& rng,
                       bool jump_on_process = true) const;

  /// Applies `mask` to raw logits and renormalizes: masked softmax.
  /// Exposed for the trainers.
  static std::vector<double> masked_softmax(const std::vector<double>& logits,
                                            const std::vector<bool>& mask);

  /// Span form of masked_softmax writing into caller storage (out must
  /// hold n doubles) — the zero-allocation primitive behind it.
  static void masked_softmax_into(const double* logits,
                                  const std::vector<bool>& mask,
                                  std::size_t n, double* out);

 private:
  Featurizer featurizer_;
  Mlp net_;
  std::size_t resource_dims_;
  /// Per-policy inference workspace (one thread per Policy instance; the
  /// parallel search clones the whole Policy per worker).
  mutable Mlp::ForwardWorkspace ws_;
  mutable std::vector<bool> scratch_mask_;
};

}  // namespace spear
