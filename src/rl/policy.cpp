#include "rl/policy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace spear {

namespace {

/// Fills `mask` with the valid-output mask (assign() reuses capacity, so a
/// caller-held buffer makes this allocation-free at steady state).
void fill_valid_mask(const SchedulingEnv& env, const Featurizer& featurizer,
                     std::vector<bool>& mask) {
  mask.assign(featurizer.num_actions(), false);
  const std::size_t visible =
      std::min(env.ready().size(), featurizer.options().max_ready);
  for (std::size_t i = 0; i < visible; ++i) {
    if (env.can_schedule(i)) mask[i] = true;
  }
  if (env.can_process()) mask[featurizer.process_output()] = true;
}

}  // namespace

Policy::Policy(Featurizer featurizer, Mlp net, std::size_t resource_dims)
    : featurizer_(featurizer), net_(std::move(net)),
      resource_dims_(resource_dims) {
  if (net_.input_dim() != featurizer_.input_dim(resource_dims_)) {
    throw std::invalid_argument("Policy: network input dim mismatch");
  }
  if (net_.output_dim() != featurizer_.num_actions()) {
    throw std::invalid_argument("Policy: network output dim mismatch");
  }
}

Policy Policy::make(FeaturizerOptions featurizer_options,
                    std::size_t resource_dims, Rng& rng,
                    std::vector<std::size_t> hidden) {
  Featurizer featurizer(featurizer_options);
  std::vector<std::size_t> sizes;
  sizes.push_back(featurizer.input_dim(resource_dims));
  for (std::size_t h : hidden) sizes.push_back(h);
  sizes.push_back(featurizer.num_actions());
  Mlp net(sizes, rng);
  return Policy(featurizer, std::move(net), resource_dims);
}

std::vector<bool> Policy::valid_output_mask(const SchedulingEnv& env) const {
  std::vector<bool> mask;
  fill_valid_mask(env, featurizer_, mask);
  return mask;
}

void Policy::masked_softmax_into(const double* logits,
                                 const std::vector<bool>& mask, std::size_t n,
                                 double* out) {
  if (mask.size() != n) {
    throw std::invalid_argument("masked_softmax: size mismatch");
  }
  double max = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    if (mask[i]) max = std::max(max, logits[i]);
  }
  if (max == -std::numeric_limits<double>::infinity()) {
    throw std::logic_error("masked_softmax: no valid action");
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!mask[i]) {
      out[i] = 0.0;
      continue;
    }
    out[i] = std::exp(logits[i] - max);
    sum += out[i];
  }
  for (std::size_t i = 0; i < n; ++i) out[i] /= sum;
}

std::vector<double> Policy::masked_softmax(const std::vector<double>& logits,
                                           const std::vector<bool>& mask) {
  std::vector<double> probs(logits.size(), 0.0);
  masked_softmax_into(logits.data(), mask, logits.size(), probs.data());
  return probs;
}

void Policy::action_probs_into(const SchedulingEnv& env,
                               std::vector<bool>& mask,
                               std::vector<double>& out) const {
  Matrix& input = net_.begin_forward(ws_, 1);
  featurizer_.featurize_compress_into(env, input.data().data(),
                                      ws_.kidx.data(), ws_.kval.data(),
                                      ws_.row_nnz.data());
  ws_.input_compressed = true;
  net_.forward_ws(ws_);
  fill_valid_mask(env, featurizer_, mask);
  out.assign(num_outputs(), 0.0);
  masked_softmax_into(ws_.logits().data().data(), mask, num_outputs(),
                      out.data());
}

std::vector<double> Policy::action_probs(const SchedulingEnv& env) const {
  std::vector<double> out;
  action_probs_into(env, scratch_mask_, out);
  return out;
}

void Policy::action_probs_batch(const SchedulingEnv* const* envs,
                                std::size_t n,
                                std::vector<std::vector<bool>>& masks,
                                std::vector<std::vector<double>>& probs) const {
  action_probs_batch_ws(ws_, envs, n, masks, probs);
}

void Policy::action_probs_batch_ws(
    Mlp::ForwardWorkspace& ws, const SchedulingEnv* const* envs, std::size_t n,
    std::vector<std::vector<bool>>& masks,
    std::vector<std::vector<double>>& probs) const {
  masks.resize(n);
  probs.resize(n);
  if (n == 0) return;
  Matrix& input = net_.begin_forward(ws, n);
  const std::size_t dim = net_.input_dim();
  // Each row's compressed (index, value) form is emitted while the
  // features are written, so forward_ws never re-scans the ~80%-zero
  // input (stride = input width, matching forward_ws's expectation).
  for (std::size_t i = 0; i < n; ++i) {
    featurizer_.featurize_compress_into(
        *envs[i], input.data().data() + i * dim, ws.kidx.data() + i * dim,
        ws.kval.data() + i * dim, ws.row_nnz.data() + i);
  }
  ws.input_compressed = true;
  net_.forward_ws(ws);
  const Matrix& logits = ws.logits();
  const std::size_t k = num_outputs();
  for (std::size_t i = 0; i < n; ++i) {
    fill_valid_mask(*envs[i], featurizer_, masks[i]);
    probs[i].assign(k, 0.0);
    masked_softmax_into(logits.data().data() + i * k, masks[i], k,
                        probs[i].data());
  }
}

std::size_t Policy::sample_output(const SchedulingEnv& env, Rng& rng) const {
  action_probs_into(env, scratch_mask_, ws_.probs);
  return rng.categorical(ws_.probs);
}

std::size_t Policy::greedy_output(const SchedulingEnv& env) const {
  action_probs_into(env, scratch_mask_, ws_.probs);
  return static_cast<std::size_t>(
      std::max_element(ws_.probs.begin(), ws_.probs.end()) -
      ws_.probs.begin());
}

int Policy::to_env_action(std::size_t output) const {
  if (output == featurizer_.process_output()) {
    return SchedulingEnv::kProcessAction;
  }
  return static_cast<int>(output);
}

Time Policy::rollout_episode(SchedulingEnv env, Rng& rng,
                             bool jump_on_process) const {
  while (!env.done()) {
    const int action = to_env_action(sample_output(env, rng));
    if (action == SchedulingEnv::kProcessAction && jump_on_process) {
      env.process_to_next_finish();
    } else {
      env.step(action);
    }
  }
  return env.makespan();
}

}  // namespace spear
