#include "rl/policy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace spear {

Policy::Policy(Featurizer featurizer, Mlp net, std::size_t resource_dims)
    : featurizer_(featurizer), net_(std::move(net)),
      resource_dims_(resource_dims) {
  if (net_.input_dim() != featurizer_.input_dim(resource_dims_)) {
    throw std::invalid_argument("Policy: network input dim mismatch");
  }
  if (net_.output_dim() != featurizer_.num_actions()) {
    throw std::invalid_argument("Policy: network output dim mismatch");
  }
}

Policy Policy::make(FeaturizerOptions featurizer_options,
                    std::size_t resource_dims, Rng& rng,
                    std::vector<std::size_t> hidden) {
  Featurizer featurizer(featurizer_options);
  std::vector<std::size_t> sizes;
  sizes.push_back(featurizer.input_dim(resource_dims));
  for (std::size_t h : hidden) sizes.push_back(h);
  sizes.push_back(featurizer.num_actions());
  Mlp net(sizes, rng);
  return Policy(featurizer, std::move(net), resource_dims);
}

std::vector<bool> Policy::valid_output_mask(const SchedulingEnv& env) const {
  std::vector<bool> mask(num_outputs(), false);
  const std::size_t visible =
      std::min(env.ready().size(), featurizer_.options().max_ready);
  for (std::size_t i = 0; i < visible; ++i) {
    if (env.can_schedule(i)) mask[i] = true;
  }
  if (env.can_process()) mask[featurizer_.process_output()] = true;
  return mask;
}

std::vector<double> Policy::masked_softmax(const std::vector<double>& logits,
                                           const std::vector<bool>& mask) {
  if (logits.size() != mask.size()) {
    throw std::invalid_argument("masked_softmax: size mismatch");
  }
  double max = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < logits.size(); ++i) {
    if (mask[i]) max = std::max(max, logits[i]);
  }
  if (max == -std::numeric_limits<double>::infinity()) {
    throw std::logic_error("masked_softmax: no valid action");
  }
  std::vector<double> probs(logits.size(), 0.0);
  double sum = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    if (!mask[i]) continue;
    probs[i] = std::exp(logits[i] - max);
    sum += probs[i];
  }
  for (auto& p : probs) p /= sum;
  return probs;
}

std::vector<double> Policy::action_probs(const SchedulingEnv& env) const {
  featurizer_.featurize(env, scratch_features_);
  const auto logits = net_.logits(scratch_features_);
  return masked_softmax(logits, valid_output_mask(env));
}

std::size_t Policy::sample_output(const SchedulingEnv& env, Rng& rng) const {
  return rng.categorical(action_probs(env));
}

std::size_t Policy::greedy_output(const SchedulingEnv& env) const {
  const auto probs = action_probs(env);
  return static_cast<std::size_t>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

int Policy::to_env_action(std::size_t output) const {
  if (output == featurizer_.process_output()) {
    return SchedulingEnv::kProcessAction;
  }
  return static_cast<int>(output);
}

Time Policy::rollout_episode(SchedulingEnv env, Rng& rng,
                             bool jump_on_process) const {
  while (!env.done()) {
    const int action = to_env_action(sample_output(env, rng));
    if (action == SchedulingEnv::kProcessAction && jump_on_process) {
      env.process_to_next_finish();
    } else {
      env.step(action);
    }
  }
  return env.makespan();
}

}  // namespace spear
