// REINFORCE with an averaged-rollout baseline (§III-D, §IV of the paper).
//
// For each training example (DAG), the current policy plays
// `rollouts_per_example` episodes; the return of an episode is the negative
// makespan (the cumulative -1-per-slot reward).  The baseline is the mean
// return over the example's rollouts, and every step of episode e is
// reinforced with advantage (G_e - baseline), normalized by the baseline
// magnitude so the gradient scale is independent of DAG size.  Updates use
// RMSProp with the paper's hyper-parameters.

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "ckpt/checkpoint.h"
#include "dag/dag.h"
#include "nn/rmsprop.h"
#include "rl/policy.h"

namespace spear {

struct ReinforceOptions {
  std::size_t epochs = 100;
  std::size_t rollouts_per_example = 20;  // paper: 20
  RmsPropOptions optimizer;               // paper defaults
  /// Jump to the next completion on sampled process actions (identical
  /// reachable states, many fewer gradient steps; see DESIGN.md).  The
  /// episode return still counts every elapsed slot.
  bool jump_on_process = true;
  /// Cap on recorded steps per episode (safety valve against degenerate
  /// policies early in training; 0 = unlimited).
  std::size_t max_steps_per_episode = 0;
  /// Global L2 norm ceiling for each gradient update (<= 0 disables
  /// clipping).  Non-finite gradients or returns always skip the update.
  double max_grad_norm = 10.0;
};

struct ReinforceResult {
  /// Mean makespan over all rollouts of all examples, one entry per epoch —
  /// the learning curve of Fig. 8(b).
  std::vector<double> epoch_mean_makespan;
  /// Updates whose gradient was rescaled to max_grad_norm.
  std::size_t clipped_updates = 0;
  /// Updates skipped because the loss or gradient went non-finite (each is
  /// also logged as a warning).
  std::size_t skipped_updates = 0;
};

/// Per-epoch progress callback: (epoch, mean makespan).
using ReinforceProgress = std::function<void(std::size_t, double)>;

/// Epoch-stepped REINFORCE.  train_reinforce() below is a thin loop over
/// run_epoch(); the class form exists so callers can checkpoint between
/// epochs and resume bit-identically after a crash (DESIGN.md §9): a
/// trainer restored from checkpoint_state() continues the exact weight,
/// optimizer and Rng trajectory of the interrupted run.
class ReinforceTrainer {
 public:
  /// Throws std::invalid_argument on an empty training set or zero
  /// rollouts.  Keeps references to `policy` and `rng`; both must outlive
  /// the trainer.
  ReinforceTrainer(Policy& policy, const std::vector<Dag>& examples,
                   const ResourceVector& capacity,
                   const ReinforceOptions& options, Rng& rng);

  std::size_t next_epoch() const { return next_epoch_; }
  bool done() const { return next_epoch_ >= options_.epochs; }
  std::uint64_t episodes() const { return episodes_; }
  /// Baseline of the last example update (checkpoint diagnostic).
  double last_baseline() const { return last_baseline_; }

  /// Runs one epoch over every example and returns its mean makespan
  /// (also appended to result().epoch_mean_makespan).
  double run_epoch();

  /// Curve and counters accumulated so far.
  const ReinforceResult& result() const { return result_; }

  /// Flushes end-of-training obs counters and returns the result.
  ReinforceResult finalize();

  /// Complete resumable state at the current epoch boundary.
  ckpt::TrainerState checkpoint_state() const;

  /// Restores a checkpoint_state() snapshot.  Throws ckpt::CheckpointError
  /// when the snapshot is from another phase or a different topology.
  void restore(const ckpt::TrainerState& state);

 private:
  Policy& policy_;
  ResourceVector capacity_;
  ReinforceOptions options_;
  Rng& rng_;
  RmsProp optimizer_;
  Mlp::Gradients grads_;
  /// Reused forward/backward buffers (DESIGN.md §10): after the first
  /// epoch the training loop's network math performs no heap allocation.
  Mlp::ForwardWorkspace ws_;
  std::vector<double> probs_scratch_;
  EnvOptions env_options_;
  std::vector<std::shared_ptr<const Dag>> dags_;
  std::vector<std::shared_ptr<const DagFeatures>> features_;
  ReinforceResult result_;
  std::size_t next_epoch_ = 0;
  std::uint64_t episodes_ = 0;
  double last_baseline_ = 0.0;
};

/// Trains `policy` in place on `examples`.  Deterministic given `rng`.
ReinforceResult train_reinforce(Policy& policy,
                                const std::vector<Dag>& examples,
                                const ResourceVector& capacity,
                                const ReinforceOptions& options, Rng& rng,
                                const ReinforceProgress& progress = {});

}  // namespace spear
