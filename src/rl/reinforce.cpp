#include "rl/reinforce.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "common/logging.h"
#include "nn/grad_guard.h"
#include "nn/loss.h"
#include "obs/obs.h"

namespace spear {

namespace {

struct EpisodeStep {
  std::vector<double> features;
  std::vector<bool> mask;
  std::size_t output = 0;  // sampled network output index
};

struct Episode {
  std::vector<EpisodeStep> steps;
  double ret = 0.0;  // cumulative reward = -makespan
};

Episode play_episode(const Policy& policy, SchedulingEnv env,
                     const ReinforceOptions& options, Rng& rng) {
  Episode episode;
  while (!env.done()) {
    EpisodeStep step;
    policy.featurizer().featurize(env, step.features);
    step.mask = policy.valid_output_mask(env);
    const auto logits = policy.net().logits(step.features);
    const auto probs = Policy::masked_softmax(logits, step.mask);
    step.output = rng.categorical(probs);

    const int action = policy.to_env_action(step.output);
    double reward = 0.0;
    if (action == SchedulingEnv::kProcessAction && options.jump_on_process) {
      reward = env.process_to_next_finish();
    } else {
      reward = env.step(action);
    }
    episode.ret += reward;

    if (options.max_steps_per_episode == 0 ||
        episode.steps.size() < options.max_steps_per_episode) {
      episode.steps.push_back(std::move(step));
    }
  }
  return episode;
}

}  // namespace

ReinforceResult train_reinforce(Policy& policy,
                                const std::vector<Dag>& examples,
                                const ResourceVector& capacity,
                                const ReinforceOptions& options, Rng& rng,
                                const ReinforceProgress& progress) {
  if (examples.empty()) {
    throw std::invalid_argument("train_reinforce: no training examples");
  }
  if (options.rollouts_per_example == 0) {
    throw std::invalid_argument(
        "train_reinforce: rollouts_per_example must be > 0");
  }

  Mlp& net = policy.net();
  RmsProp optimizer(net, options.optimizer);
  Mlp::Gradients grads = net.make_gradients();
  ReinforceResult result;

  EnvOptions env_options;
  env_options.max_ready = policy.featurizer().options().max_ready;

  // Immutable DAG state shared across all rollouts of an example.
  std::vector<std::shared_ptr<const Dag>> dags;
  std::vector<std::shared_ptr<const DagFeatures>> features;
  for (const auto& d : examples) {
    dags.push_back(std::make_shared<Dag>(d));
    features.push_back(std::make_shared<DagFeatures>(d));
  }

  for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
    obs::ScopedTimer epoch_span("reinforce.epoch", "rl");
    epoch_span.set_args("\"epoch\":" + std::to_string(epoch));
    double makespan_sum = 0.0;
    std::size_t makespan_count = 0;

    for (std::size_t e = 0; e < examples.size(); ++e) {
      // 1. Play the example's rollouts with the current policy.
      std::vector<Episode> episodes;
      episodes.reserve(options.rollouts_per_example);
      for (std::size_t r = 0; r < options.rollouts_per_example; ++r) {
        SchedulingEnv env(dags[e], capacity, env_options, features[e]);
        episodes.push_back(play_episode(policy, std::move(env), options, rng));
        makespan_sum += -episodes.back().ret;
        ++makespan_count;
      }

      // 2. Baseline = mean return over the example's rollouts.
      double baseline = 0.0;
      for (const auto& ep : episodes) baseline += ep.ret;
      baseline /= static_cast<double>(episodes.size());
      if (!std::isfinite(baseline)) {
        SPEAR_LOG(Warn) << "REINFORCE: non-finite return on example " << e
                        << " (epoch " << epoch << "); skipping its update";
        ++result.skipped_updates;
        continue;
      }
      const double scale = std::max(std::abs(baseline), 1.0);

      // 3. Policy-gradient step.  Descent gradient of
      //    -(G - b) * log pi(a|s) w.r.t. logits is (G - b)(pi - onehot);
      //    normalized by baseline magnitude and rollout count.
      grads.zero();
      std::size_t total_steps = 0;
      for (const auto& ep : episodes) total_steps += ep.steps.size();
      if (total_steps == 0) continue;

      for (const auto& ep : episodes) {
        if (ep.steps.empty()) continue;
        const double advantage = (ep.ret - baseline) / scale;
        if (advantage == 0.0) continue;
        // RmsProp minimizes, so the descent gradient of the surrogate loss
        // -advantage * log pi is advantage * (pi - onehot).
        const double weight =
            advantage / static_cast<double>(episodes.size());

        Matrix input(ep.steps.size(), net.input_dim());
        for (std::size_t s = 0; s < ep.steps.size(); ++s) {
          for (std::size_t j = 0; j < ep.steps[s].features.size(); ++j) {
            input(s, j) = ep.steps[s].features[j];
          }
        }
        Mlp::Forward cache = net.forward(input);
        Matrix d_logits(ep.steps.size(), net.output_dim());
        for (std::size_t s = 0; s < ep.steps.size(); ++s) {
          std::vector<double> row(net.output_dim());
          for (std::size_t j = 0; j < row.size(); ++j) {
            row[j] = cache.logits(s, j);
          }
          const auto probs = Policy::masked_softmax(row, ep.steps[s].mask);
          for (std::size_t j = 0; j < row.size(); ++j) {
            const double onehot = j == ep.steps[s].output ? 1.0 : 0.0;
            d_logits(s, j) = weight * (probs[j] - onehot);
          }
        }
        net.backward(cache, d_logits, grads);
      }
      const GradGuardReport guard =
          guard_gradients(grads, options.max_grad_norm);
      if (guard.skipped) {
        SPEAR_LOG(Warn) << "REINFORCE: non-finite gradient on example " << e
                        << " (epoch " << epoch << "); skipping its update";
        ++result.skipped_updates;
        continue;
      }
      if (guard.clipped) ++result.clipped_updates;
      optimizer.step(net, grads);
    }

    const double mean_makespan =
        makespan_sum / static_cast<double>(std::max<std::size_t>(
                           makespan_count, 1));
    result.epoch_mean_makespan.push_back(mean_makespan);
    if (obs::enabled()) {
      obs::count("reinforce.epochs");
      obs::gauge("reinforce.last_mean_makespan", mean_makespan);
    }
    if (progress) progress(epoch, mean_makespan);
  }
  if (obs::enabled()) {
    obs::count("reinforce.clipped_updates",
               static_cast<std::int64_t>(result.clipped_updates));
    obs::count("reinforce.skipped_updates",
               static_cast<std::int64_t>(result.skipped_updates));
  }
  return result;
}

}  // namespace spear
