#include "rl/reinforce.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "common/logging.h"
#include "nn/grad_guard.h"
#include "nn/loss.h"
#include "obs/obs.h"

namespace spear {

namespace {

struct EpisodeStep {
  std::vector<double> features;
  std::vector<bool> mask;
  std::size_t output = 0;  // sampled network output index
};

struct Episode {
  std::vector<EpisodeStep> steps;
  double ret = 0.0;  // cumulative reward = -makespan
};

Episode play_episode(const Policy& policy, SchedulingEnv env,
                     const ReinforceOptions& options, Rng& rng,
                     Mlp::ForwardWorkspace& ws, std::vector<double>& probs) {
  const Mlp& net = policy.net();
  Episode episode;
  while (!env.done()) {
    EpisodeStep step;
    // Features go straight into the reused workspace row; the copy kept in
    // the step record feeds the batched gradient pass later.
    Matrix& input = net.begin_forward(ws, 1);
    policy.featurizer().featurize_into(env, input.data().data());
    step.features.assign(input.data().begin(), input.data().end());
    step.mask = policy.valid_output_mask(env);
    net.forward_ws(ws);
    probs.assign(net.output_dim(), 0.0);
    Policy::masked_softmax_into(ws.logits().data().data(), step.mask,
                                net.output_dim(), probs.data());
    step.output = rng.categorical(probs);

    const int action = policy.to_env_action(step.output);
    double reward = 0.0;
    if (action == SchedulingEnv::kProcessAction && options.jump_on_process) {
      reward = env.process_to_next_finish();
    } else {
      reward = env.step(action);
    }
    episode.ret += reward;

    if (options.max_steps_per_episode == 0 ||
        episode.steps.size() < options.max_steps_per_episode) {
      episode.steps.push_back(std::move(step));
    }
  }
  return episode;
}

}  // namespace

ReinforceTrainer::ReinforceTrainer(Policy& policy,
                                   const std::vector<Dag>& examples,
                                   const ResourceVector& capacity,
                                   const ReinforceOptions& options, Rng& rng)
    : policy_(policy),
      capacity_(capacity),
      options_(options),
      rng_(rng),
      optimizer_(policy.net(), options.optimizer),
      grads_(policy.net().make_gradients()) {
  if (examples.empty()) {
    throw std::invalid_argument("train_reinforce: no training examples");
  }
  if (options_.rollouts_per_example == 0) {
    throw std::invalid_argument(
        "train_reinforce: rollouts_per_example must be > 0");
  }

  env_options_.max_ready = policy_.featurizer().options().max_ready;

  // Immutable DAG state shared across all rollouts of an example.
  for (const auto& d : examples) {
    dags_.push_back(std::make_shared<Dag>(d));
    features_.push_back(std::make_shared<DagFeatures>(d));
  }
}

double ReinforceTrainer::run_epoch() {
  Mlp& net = policy_.net();
  const std::size_t epoch = next_epoch_;

  obs::ScopedTimer epoch_span("reinforce.epoch", "rl");
  epoch_span.set_args("\"epoch\":" + std::to_string(epoch));
  double makespan_sum = 0.0;
  std::size_t makespan_count = 0;

  for (std::size_t e = 0; e < dags_.size(); ++e) {
    // 1. Play the example's rollouts with the current policy.
    std::vector<Episode> episodes;
    episodes.reserve(options_.rollouts_per_example);
    for (std::size_t r = 0; r < options_.rollouts_per_example; ++r) {
      SchedulingEnv env(dags_[e], capacity_, env_options_, features_[e]);
      episodes.push_back(play_episode(policy_, std::move(env), options_, rng_,
                                      ws_, probs_scratch_));
      makespan_sum += -episodes.back().ret;
      ++makespan_count;
      ++episodes_;
    }

    // 2. Baseline = mean return over the example's rollouts.
    double baseline = 0.0;
    for (const auto& ep : episodes) baseline += ep.ret;
    baseline /= static_cast<double>(episodes.size());
    if (!std::isfinite(baseline)) {
      SPEAR_LOG(Warn) << "REINFORCE: non-finite return on example " << e
                      << " (epoch " << epoch << "); skipping its update";
      ++result_.skipped_updates;
      continue;
    }
    last_baseline_ = baseline;
    const double scale = std::max(std::abs(baseline), 1.0);

    // 3. Policy-gradient step.  Descent gradient of
    //    -(G - b) * log pi(a|s) w.r.t. logits is (G - b)(pi - onehot);
    //    normalized by baseline magnitude and rollout count.
    grads_.zero();
    std::size_t total_steps = 0;
    for (const auto& ep : episodes) total_steps += ep.steps.size();
    if (total_steps == 0) continue;

    for (const auto& ep : episodes) {
      if (ep.steps.empty()) continue;
      const double advantage = (ep.ret - baseline) / scale;
      if (advantage == 0.0) continue;
      // RmsProp minimizes, so the descent gradient of the surrogate loss
      // -advantage * log pi is advantage * (pi - onehot).
      const double weight = advantage / static_cast<double>(episodes.size());

      // Batched forward/backward through the reused workspace — identical
      // math to a freshly allocated forward()/backward() pair.
      Matrix& input = net.begin_forward(ws_, ep.steps.size());
      for (std::size_t s = 0; s < ep.steps.size(); ++s) {
        std::copy(ep.steps[s].features.begin(), ep.steps[s].features.end(),
                  input.data().begin() +
                      static_cast<std::ptrdiff_t>(s * net.input_dim()));
      }
      net.forward_ws(ws_);
      const std::size_t out_dim = net.output_dim();
      probs_scratch_.assign(out_dim, 0.0);
      for (std::size_t s = 0; s < ep.steps.size(); ++s) {
        Policy::masked_softmax_into(
            ws_.logits().data().data() + s * out_dim, ep.steps[s].mask,
            out_dim, probs_scratch_.data());
        for (std::size_t j = 0; j < out_dim; ++j) {
          const double onehot = j == ep.steps[s].output ? 1.0 : 0.0;
          ws_.d_logits(s, j) = weight * (probs_scratch_[j] - onehot);
        }
      }
      net.backward_ws(ws_, ws_.d_logits, grads_);
    }
    const GradGuardReport guard = guard_gradients(grads_, options_.max_grad_norm);
    if (guard.skipped) {
      SPEAR_LOG(Warn) << "REINFORCE: non-finite gradient on example " << e
                      << " (epoch " << epoch << "); skipping its update";
      ++result_.skipped_updates;
      continue;
    }
    if (guard.clipped) ++result_.clipped_updates;
    optimizer_.step(net, grads_);
  }

  const double mean_makespan =
      makespan_sum /
      static_cast<double>(std::max<std::size_t>(makespan_count, 1));
  result_.epoch_mean_makespan.push_back(mean_makespan);
  if (obs::enabled()) {
    obs::count("reinforce.epochs");
    obs::gauge("reinforce.last_mean_makespan", mean_makespan);
  }
  ++next_epoch_;
  return mean_makespan;
}

ReinforceResult ReinforceTrainer::finalize() {
  if (obs::enabled()) {
    obs::count("reinforce.clipped_updates",
               static_cast<std::int64_t>(result_.clipped_updates));
    obs::count("reinforce.skipped_updates",
               static_cast<std::int64_t>(result_.skipped_updates));
  }
  return result_;
}

ckpt::TrainerState ReinforceTrainer::checkpoint_state() const {
  ckpt::TrainerState state;
  state.phase = ckpt::kPhaseReinforce;
  state.next_epoch = next_epoch_;
  state.episodes = episodes_;
  state.clipped_updates = result_.clipped_updates;
  state.skipped_updates = result_.skipped_updates;
  state.baseline = last_baseline_;
  state.rng = rng_.state();
  state.curve = result_.epoch_mean_makespan;
  state.net = ckpt::snapshot_of(policy_.net());
  state.optimizer = ckpt::snapshot_of(optimizer_.cache());
  return state;
}

void ReinforceTrainer::restore(const ckpt::TrainerState& state) {
  if (state.phase != ckpt::kPhaseReinforce) {
    throw ckpt::CheckpointError(
        "ReinforceTrainer::restore: checkpoint is from phase \"" +
        state.phase + "\"");
  }
  if (state.curve.size() != state.next_epoch) {
    throw ckpt::CheckpointError(
        "ReinforceTrainer::restore: curve length does not match epoch "
        "counter");
  }
  ckpt::restore_into(policy_.net(), state.net);
  ckpt::restore_into(optimizer_.cache(), state.optimizer);
  rng_.set_state(state.rng);
  next_epoch_ = state.next_epoch;
  episodes_ = state.episodes;
  last_baseline_ = state.baseline;
  result_.epoch_mean_makespan = state.curve;
  result_.clipped_updates = state.clipped_updates;
  result_.skipped_updates = state.skipped_updates;
}

ReinforceResult train_reinforce(Policy& policy,
                                const std::vector<Dag>& examples,
                                const ResourceVector& capacity,
                                const ReinforceOptions& options, Rng& rng,
                                const ReinforceProgress& progress) {
  ReinforceTrainer trainer(policy, examples, capacity, options, rng);
  while (!trainer.done()) {
    const std::size_t epoch = trainer.next_epoch();
    const double mean_makespan = trainer.run_epoch();
    if (progress) progress(epoch, mean_makespan);
  }
  return trainer.finalize();
}

}  // namespace spear
