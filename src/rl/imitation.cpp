#include "rl/imitation.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <stdexcept>

#include "common/logging.h"
#include "nn/grad_guard.h"
#include "nn/loss.h"
#include "obs/obs.h"
#include "sched/critical_path.h"

namespace spear {

std::vector<Demonstration> collect_cp_demonstrations(
    const Policy& policy, const std::vector<Dag>& dags,
    const ResourceVector& capacity, bool jump_on_process) {
  std::vector<Demonstration> demos;
  EnvOptions env_options;
  env_options.max_ready = policy.featurizer().options().max_ready;

  for (const auto& dag : dags) {
    SchedulingEnv env(std::make_shared<Dag>(dag), capacity, env_options);
    std::vector<double> features;
    while (!env.done()) {
      // The CP teacher: best fitting visible ready task by b-level priority,
      // otherwise process.
      int best = SchedulingEnv::kProcessAction;
      double best_priority = 0.0;
      for (std::size_t i = 0; i < env.ready().size(); ++i) {
        if (!env.can_schedule(i)) continue;
        const double p = critical_path_priority(env, env.ready()[i]);
        if (best == SchedulingEnv::kProcessAction || p > best_priority) {
          best = static_cast<int>(i);
          best_priority = p;
        }
      }

      Demonstration demo;
      policy.featurizer().featurize(env, demo.features);
      demo.mask = policy.valid_output_mask(env);
      demo.target_output =
          best == SchedulingEnv::kProcessAction
              ? static_cast<int>(policy.featurizer().process_output())
              : best;
      demos.push_back(std::move(demo));

      if (best == SchedulingEnv::kProcessAction && jump_on_process) {
        env.process_to_next_finish();
      } else {
        env.step(best);
      }
    }
  }
  return demos;
}

ImitationTrainer::ImitationTrainer(Policy& policy,
                                   std::vector<Demonstration> demos,
                                   const ImitationOptions& options, Rng& rng)
    : policy_(policy),
      options_(options),
      rng_(rng),
      demos_(std::move(demos)),
      optimizer_(policy.net(), options.optimizer),
      grads_(policy.net().make_gradients()) {
  if (demos_.empty()) {
    throw std::invalid_argument("train_imitation: no demonstrations");
  }
  if (options_.batch_size == 0) {
    throw std::invalid_argument("train_imitation: batch_size must be > 0");
  }
  order_.resize(demos_.size());
  std::iota(order_.begin(), order_.end(), 0);
}

double ImitationTrainer::run_epoch() {
  Mlp& net = policy_.net();
  const std::size_t epoch = next_epoch_;

  obs::ScopedTimer epoch_span("imitation.epoch", "rl");
  epoch_span.set_args("\"epoch\":" + std::to_string(epoch));
  rng_.shuffle(order_);
  double epoch_loss = 0.0;
  std::size_t batches = 0;

  for (std::size_t begin = 0; begin < order_.size();
       begin += options_.batch_size) {
    const std::size_t end =
        std::min(begin + options_.batch_size, order_.size());
    const std::size_t batch = end - begin;

    // Batched forward through the reused workspace — identical math to a
    // freshly allocated forward(), zero steady-state allocation.
    Matrix& input = net.begin_forward(ws_, batch);
    targets_scratch_.resize(batch);
    for (std::size_t b = 0; b < batch; ++b) {
      const Demonstration& demo = demos_[order_[begin + b]];
      std::copy(demo.features.begin(), demo.features.end(),
                input.data().begin() +
                    static_cast<std::ptrdiff_t>(b * net.input_dim()));
      targets_scratch_[b] = demo.target_output;
    }

    net.forward_ws(ws_);
    // Masked softmax per row; invalid outputs contribute no probability
    // and therefore no gradient.
    const std::size_t out_dim = net.output_dim();
    probs_scratch_.reshape(batch, out_dim);
    for (std::size_t b = 0; b < batch; ++b) {
      const Demonstration& demo = demos_[order_[begin + b]];
      Policy::masked_softmax_into(ws_.logits().data().data() + b * out_dim,
                                  demo.mask, out_dim,
                                  probs_scratch_.data().data() + b * out_dim);
    }
    const double batch_loss = cross_entropy(probs_scratch_, targets_scratch_);
    ++batches;
    ++batches_done_;
    if (!std::isfinite(batch_loss)) {
      SPEAR_LOG(Warn) << "imitation: non-finite loss in epoch " << epoch
                      << "; skipping the batch update";
      continue;
    }
    epoch_loss += batch_loss;

    weights_scratch_.assign(batch, 1.0 / static_cast<double>(batch));
    nll_logit_gradient_into(probs_scratch_, targets_scratch_,
                            weights_scratch_, ws_.d_logits);
    grads_.zero();
    net.backward_ws(ws_, ws_.d_logits, grads_);
    const GradGuardReport guard =
        guard_gradients(grads_, options_.max_grad_norm);
    if (guard.skipped) {
      SPEAR_LOG(Warn) << "imitation: non-finite gradient in epoch " << epoch
                      << "; skipping the batch update";
      continue;
    }
    optimizer_.step(net, grads_);
  }
  const double mean_loss =
      epoch_loss / static_cast<double>(std::max<std::size_t>(batches, 1));
  result_.epoch_losses.push_back(mean_loss);
  if (obs::enabled()) {
    obs::count("imitation.epochs");
    obs::gauge("imitation.last_loss", mean_loss);
  }
  ++next_epoch_;
  return mean_loss;
}

ckpt::TrainerState ImitationTrainer::checkpoint_state() const {
  ckpt::TrainerState state;
  state.phase = ckpt::kPhaseImitation;
  state.next_epoch = next_epoch_;
  state.episodes = batches_done_;
  state.rng = rng_.state();
  state.curve = result_.epoch_losses;
  state.permutation.assign(order_.begin(), order_.end());
  state.net = ckpt::snapshot_of(policy_.net());
  state.optimizer = ckpt::snapshot_of(optimizer_.cache());
  return state;
}

void ImitationTrainer::restore(const ckpt::TrainerState& state) {
  if (state.phase != ckpt::kPhaseImitation) {
    throw ckpt::CheckpointError(
        "ImitationTrainer::restore: checkpoint is from phase \"" +
        state.phase + "\"");
  }
  if (state.permutation.size() != demos_.size()) {
    throw ckpt::CheckpointError(
        "ImitationTrainer::restore: permutation covers " +
        std::to_string(state.permutation.size()) + " demos, trainer has " +
        std::to_string(demos_.size()));
  }
  if (state.curve.size() != state.next_epoch) {
    throw ckpt::CheckpointError(
        "ImitationTrainer::restore: curve length does not match epoch "
        "counter");
  }
  ckpt::restore_into(policy_.net(), state.net);
  ckpt::restore_into(optimizer_.cache(), state.optimizer);
  rng_.set_state(state.rng);
  next_epoch_ = state.next_epoch;
  batches_done_ = state.episodes;
  result_.epoch_losses = state.curve;
  order_.assign(state.permutation.begin(), state.permutation.end());
}

ImitationResult train_imitation(Policy& policy,
                                std::vector<Demonstration> demos,
                                const ImitationOptions& options, Rng& rng) {
  ImitationTrainer trainer(policy, std::move(demos), options, rng);
  while (!trainer.done()) trainer.run_epoch();
  return trainer.result();
}

ImitationResult pretrain_on_cp(Policy& policy, const std::vector<Dag>& dags,
                               const ResourceVector& capacity,
                               const ImitationOptions& options, Rng& rng) {
  auto demos = collect_cp_demonstrations(policy, dags, capacity,
                                         options.jump_on_process);
  return train_imitation(policy, std::move(demos), options, rng);
}

}  // namespace spear
