#include "infer/service.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "obs/obs.h"

namespace spear::infer {

namespace {

double us_between(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

InferenceOptions normalize(InferenceOptions options) {
  if (options.batch_max == 0) options.batch_max = 1;
  if (options.batch_timeout_us < 0) options.batch_timeout_us = 0;
  if (options.queue_capacity == 0) options.queue_capacity = 1;
  if (options.runners < 1) options.runners = 1;
  return options;
}

}  // namespace

double hist_percentile(const std::vector<std::int64_t>& hist, double pct) {
  std::int64_t total = 0;
  for (const std::int64_t c : hist) total += c;
  if (total <= 0) return 0.0;
  // Nearest-rank: the smallest width whose cumulative count reaches the
  // pct-th forward.
  const auto rank = static_cast<std::int64_t>(
      std::ceil(pct / 100.0 * static_cast<double>(total)));
  std::int64_t cumulative = 0;
  for (std::size_t w = 0; w < hist.size(); ++w) {
    cumulative += hist[w];
    if (cumulative >= rank && hist[w] > 0) return static_cast<double>(w);
  }
  return static_cast<double>(hist.size() - 1);
}

/// One in-flight enqueue: raw pointers into the caller's storage (valid
/// until wait() returns, per the enqueue contract) plus completion state
/// guarded by the service mutex.
struct InferenceService::Ticket::Request {
  const SchedulingEnv* const* envs = nullptr;
  std::size_t n = 0;
  std::vector<std::vector<bool>>* masks = nullptr;
  std::vector<std::vector<double>>* probs = nullptr;
  std::chrono::steady_clock::time_point enqueued{};
  bool done = false;
  std::exception_ptr error;
};

void InferenceService::Ticket::wait() {
  if (!request_) return;
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(service_->mutex_);
    service_->done_cv_.wait(lock, [&] { return request_->done; });
    error = request_->error;
  }
  request_.reset();
  if (error) std::rethrow_exception(error);
}

InferenceService::InferenceService(std::shared_ptr<const Policy> policy,
                                   InferenceOptions options)
    : options_(normalize(std::move(options))), policy_(std::move(policy)) {
  if (!policy_) {
    throw std::invalid_argument("InferenceService: null policy");
  }
  ring_.resize(options_.queue_capacity);
  stats_.batch_rows_hist.assign(InferenceStats::kHistMax + 1, 0);
  start();
}

InferenceService::~InferenceService() { shutdown(); }

void InferenceService::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (started_ || closed_) return;
  started_ = true;
  runners_.reserve(static_cast<std::size_t>(options_.runners));
  for (int r = 0; r < options_.runners; ++r) {
    runners_.emplace_back([this] { runner_loop(); });
  }
}

void InferenceService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  // Wake everyone: runners drain the ring and exit; clients blocked on a
  // full ring observe closed_ and throw.
  work_cv_.notify_all();
  space_cv_.notify_all();
  for (std::thread& runner : runners_) {
    if (runner.joinable()) runner.join();
  }
  runners_.clear();
}

std::shared_ptr<const Policy> InferenceService::policy() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return policy_;
}

void InferenceService::swap_policy(std::shared_ptr<const Policy> next) {
  if (!next) {
    throw std::invalid_argument("InferenceService: null policy swap");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  policy_ = std::move(next);
}

InferenceStats InferenceService::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

InferenceService::Ticket InferenceService::enqueue(
    const SchedulingEnv* const* envs, std::size_t n,
    std::vector<std::vector<bool>>& masks,
    std::vector<std::vector<double>>& probs) {
  auto request = std::make_shared<Ticket::Request>();
  request->envs = envs;
  request->n = n;
  request->masks = &masks;
  request->probs = &probs;
  request->enqueued = std::chrono::steady_clock::now();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Backpressure: a full ring parks the submitter until a runner makes
    // room.  Bounded by construction — queued work can never outrun the
    // runners by more than queue_capacity requests.
    space_cv_.wait(lock,
                   [&] { return closed_ || ring_size_ < ring_.size(); });
    if (closed_) {
      throw std::runtime_error("InferenceService: enqueue after shutdown");
    }
    ring_[(ring_head_ + ring_size_) % ring_.size()] = request;
    ++ring_size_;
    ++stats_.requests;
  }
  work_cv_.notify_one();
  return Ticket(this, std::move(request));
}

std::size_t InferenceService::gather_batch(
    std::unique_lock<std::mutex>& lock,
    std::vector<std::shared_ptr<Ticket::Request>>& batch) {
  std::size_t rows = 0;
  const auto pop = [&] {
    rows += ring_[ring_head_]->n;
    batch.push_back(std::move(ring_[ring_head_]));
    ring_head_ = (ring_head_ + 1) % ring_.size();
    --ring_size_;
  };
  pop();  // the caller saw ring_size_ > 0
  while (rows < options_.batch_max && ring_size_ > 0) pop();

  // Every client blocks on its ticket, so once max_clients requests are
  // aboard no further rows CAN arrive before this batch completes —
  // waiting out the timeout would be pure added latency.
  const auto all_clients_in = [&] {
    return options_.max_clients > 0 && batch.size() >= options_.max_clients;
  };

  // Adaptive close: under the cap with an empty ring, wait up to the
  // timeout for co-tenant rows — this is what turns N time-sliced narrow
  // forwards into one wide one under load.  Never wait while draining.
  bool timed_out = false;
  if (rows < options_.batch_max && !closed_ && !all_clients_in() &&
      options_.batch_timeout_us > 0) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(options_.batch_timeout_us);
    while (rows < options_.batch_max && !closed_ && !all_clients_in()) {
      if (ring_size_ > 0) {
        pop();
        continue;
      }
      if (work_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        timed_out = true;
        break;
      }
    }
    // Late arrivals between the timeout and here still fit under the cap.
    while (rows < options_.batch_max && ring_size_ > 0) pop();
  }

  if (rows >= options_.batch_max) {
    ++stats_.full_closes;
  } else if (closed_) {
    ++stats_.drain_closes;
  } else if (all_clients_in()) {
    ++stats_.client_closes;
  } else if (timed_out) {
    ++stats_.timeout_closes;
  } else {
    // timeout 0 (or spurious-wake close): charged as a timeout close —
    // "the service chose not to wait".
    ++stats_.timeout_closes;
  }
  return rows;
}

void InferenceService::runner_loop() {
  // The per-runner slice of the workspace pool: ALL mutable forward state
  // (input matrix, activations, compressed rows) lives here, so any number
  // of runners can share the immutable Policy (action_probs_batch_ws).
  Mlp::ForwardWorkspace ws;
  std::vector<std::shared_ptr<Ticket::Request>> batch;
  std::vector<const SchedulingEnv*> envs;
  std::vector<std::vector<bool>> masks;
  std::vector<std::vector<double>> probs;
  std::vector<double> waits_us;

  for (;;) {
    batch.clear();
    waits_us.clear();
    std::shared_ptr<const Policy> policy;
    std::size_t rows = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return closed_ || ring_size_ > 0; });
      if (ring_size_ == 0) return;  // closed and fully drained
      rows = gather_batch(lock, batch);
      // Copy-on-write read: this batch runs on the weights current at
      // assembly; a concurrent swap_policy affects only later batches.
      policy = policy_;
      const auto assembled = std::chrono::steady_clock::now();
      for (const auto& request : batch) {
        const double wait = us_between(request->enqueued, assembled);
        stats_.queue_wait_us += wait;
        waits_us.push_back(wait);
      }
      if (rows > 0) {
        ++stats_.forwards;
        stats_.rows += static_cast<std::int64_t>(rows);
        ++stats_.batch_rows_hist[std::min(rows, InferenceStats::kHistMax)];
      }
    }
    space_cv_.notify_all();

    // ONE fused forward for every row of every request in the batch, run
    // outside the lock so submitters and other runners proceed.
    std::exception_ptr error;
    if (rows > 0) {
      envs.clear();
      envs.reserve(rows);
      for (const auto& request : batch) {
        for (std::size_t i = 0; i < request->n; ++i) {
          envs.push_back(request->envs[i]);
        }
      }
      try {
        policy->action_probs_batch_ws(ws, envs.data(), rows, masks, probs);
      } catch (...) {
        error = std::current_exception();
      }
    }

    // Scatter each request's row slice back into its caller's buffers
    // (moves: the heap rows change hands, nothing is copied).
    if (!error) {
      std::size_t row = 0;
      for (const auto& request : batch) {
        request->masks->resize(request->n);
        request->probs->resize(request->n);
        for (std::size_t i = 0; i < request->n; ++i, ++row) {
          (*request->masks)[i] = std::move(masks[row]);
          (*request->probs)[i] = std::move(probs[row]);
        }
      }
    }

    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const auto& request : batch) {
        request->done = true;
        request->error = error;
      }
    }
    done_cv_.notify_all();

    if (obs::enabled() && rows > 0) {
      obs::count("infer.forwards");
      obs::count("infer.rows", static_cast<std::int64_t>(rows));
      obs::observe("infer.batch_rows", static_cast<double>(rows));
      obs::gauge("infer.occupancy",
                 static_cast<double>(rows) /
                     static_cast<double>(options_.batch_max));
      for (const double wait : waits_us) {
        obs::observe("infer.queue_wait_us", wait);
      }
    }
  }
}

}  // namespace spear::infer
