// Shared cross-request batched inference (DESIGN.md §15).
//
// Spear's quality-per-millisecond is bounded by policy-forward throughput,
// and the PR-5 kernels are fastest on WIDE batches — yet a fleet of
// concurrent searches (N service workers, each with a private cloned
// policy) issues many small forwards instead of a few large ones.  The
// InferenceService is the production dynamic batcher that fixes this: one
// process-wide instance owns the immutable weights, every search submits
// its rows through enqueue(), and runner threads fuse whatever rows are
// in flight across ALL clients into single action_probs_batch_ws forwards.
//
// Adaptive batching: a batch closes at `batch_max` rows or after
// `batch_timeout_us` microseconds, whichever comes first — a lone request
// never stalls longer than the timeout, while a loaded daemon rides wide
// batches.  This is the same policy a GPU inference server's dynamic
// batcher uses (and the shared-batched-evaluator pattern AlphaZeroArcade
// runs across its game threads).
//
// Determinism: fusing rows from unrelated requests is safe because the
// kernels never mix rows — Policy::action_probs_batch rows are
// bit-identical to single-row forwards (pinned by the KernelBitIdentity /
// BatchEval suites).  A request's results therefore do not depend on which
// other requests shared its batch, on the batch size, or on runner timing;
// only throughput changes.  That is the entire correctness argument, and
// tests/test_infer.cpp pins it end to end (same stream at batch_max 1 vs
// 32, byte-for-byte).
//
// Weights: the service holds a shared_ptr<const Policy>.  Clients share
// that pointer instead of deep-copying the network per worker; each runner
// thread owns a private ForwardWorkspace (the only mutable forward state —
// see Policy::action_probs_batch_ws).  swap_policy() publishes new weights
// copy-on-write for future trained-policy promotion: in-flight batches
// finish on the weights they started with, later batches use the new ones.
//
// Shutdown: shutdown() closes the ring — later enqueues throw — then
// drains every already-queued request before joining the runners, so no
// waiting client is ever stranded.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "rl/policy.h"

namespace spear::infer {

struct InferenceOptions {
  /// Close a batch once it holds at least this many rows.  A single
  /// request larger than the cap still runs as ONE forward (requests are
  /// never split — a client's rows always share a batch).
  std::size_t batch_max = 64;
  /// Close a non-full batch after waiting this long for more rows.  0 =
  /// never wait: every batch is whatever was queued at pop time.
  std::int64_t batch_timeout_us = 200;
  /// Known client-population cap: when > 0, a batch also closes as soon as
  /// it holds requests from this many clients — every client blocks on its
  /// ticket, so once all of them are in the batch no further rows CAN
  /// arrive and waiting out the timeout is pure latency.  The scheduling
  /// service sets this to its worker count.  0 = unknown population,
  /// timeout-only closes.
  std::size_t max_clients = 0;
  /// Bounded request ring: enqueue blocks (backpressure) while this many
  /// requests are already queued.
  std::size_t queue_capacity = 256;
  /// Runner threads draining the ring.  One is right for CPU inference —
  /// forwards are compute-bound, so extra runners just split batches.
  int runners = 1;
};

/// Monotonic service counters plus the physical batch-size histogram.
/// Always on (bumped once per BATCH under the service mutex, so the cost
/// is noise); obs metrics mirror these when a sink is installed.
struct InferenceStats {
  std::int64_t forwards = 0;  ///< fused physical forwards run
  std::int64_t rows = 0;      ///< rows scored by those forwards
  std::int64_t requests = 0;  ///< enqueue() calls accepted
  std::int64_t full_closes = 0;     ///< batches closed at batch_max rows
  std::int64_t timeout_closes = 0;  ///< batches closed by the timeout
  std::int64_t client_closes = 0;   ///< batches closed with all max_clients
                                    ///< clients' requests aboard
  std::int64_t drain_closes = 0;    ///< batches closed by shutdown drain
  /// Sum over requests of (batch assembly time - enqueue time), for the
  /// mean queue wait.
  double queue_wait_us = 0.0;
  /// batch_rows_hist[min(rows, kHistMax)] counts forwards of that width.
  std::vector<std::int64_t> batch_rows_hist;

  static constexpr std::size_t kHistMax = 256;

  double mean_batch_rows() const {
    return forwards > 0 ? static_cast<double>(rows) / forwards : 0.0;
  }
  double mean_queue_wait_us() const {
    return requests > 0 ? queue_wait_us / static_cast<double>(requests) : 0.0;
  }
};

/// Weighted percentile over a batch-size histogram (index = rows, value =
/// count): the smallest width w such that at least pct% of forwards were
/// <= w rows.  0 when the histogram is empty.
double hist_percentile(const std::vector<std::int64_t>& hist, double pct);

class InferenceService {
 public:
  InferenceService(std::shared_ptr<const Policy> policy,
                   InferenceOptions options);
  /// Calls shutdown() if still running.
  ~InferenceService();

  InferenceService(const InferenceService&) = delete;
  InferenceService& operator=(const InferenceService&) = delete;

  /// Spawns the runner threads.  Idempotent.
  void start();

  /// Closes the ring (later enqueues throw), drains every queued request,
  /// joins the runners.  Idempotent.
  void shutdown();

  /// Future-like handle to an in-flight request.  wait() blocks until the
  /// fused forward covering the request ran (rethrowing any forward
  /// failure); results land in the masks/probs the enqueue was given.
  class Ticket {
   public:
    Ticket() = default;
    bool valid() const { return request_ != nullptr; }
    void wait();

   private:
    friend class InferenceService;
    struct Request;
    Ticket(InferenceService* service, std::shared_ptr<Request> request)
        : service_(service), request_(std::move(request)) {}
    InferenceService* service_ = nullptr;
    std::shared_ptr<Request> request_;
  };

  /// Submits `n` rows for fused evaluation; on wait() the outputs are
  /// exactly policy()->action_probs_batch(envs, n, masks, probs) — the
  /// rows may share a physical forward with other clients' rows, which is
  /// unobservable in the results (header comment).  Blocks while the ring
  /// is full (backpressure); throws std::runtime_error once the service is
  /// shut down.  `envs`, `masks` and `probs` must stay valid until wait()
  /// returns.  Thread-safe.
  Ticket enqueue(const SchedulingEnv* const* envs, std::size_t n,
                 std::vector<std::vector<bool>>& masks,
                 std::vector<std::vector<double>>& probs);

  /// enqueue() + wait(): the blocking call sites use.
  void infer(const SchedulingEnv* const* envs, std::size_t n,
             std::vector<std::vector<bool>>& masks,
             std::vector<std::vector<double>>& probs) {
    enqueue(envs, n, masks, probs).wait();
  }

  /// Current weights.  Clients hold this pointer for featurizer access and
  /// action translation; it stays valid forever (copy-on-write swap).
  std::shared_ptr<const Policy> policy() const;

  /// Publishes new weights copy-on-write: batches popped after the swap
  /// run on `next`; in-flight batches finish on the weights they captured.
  /// The policy-promotion entry point (gated promotion, ROADMAP).
  void swap_policy(std::shared_ptr<const Policy> next);

  InferenceStats stats() const;
  const InferenceOptions& options() const { return options_; }

 private:
  void runner_loop();
  /// Pops queued requests into `batch` until batch_max rows, the timeout,
  /// or a drain; returns total rows.  Called with `lock` held.
  std::size_t gather_batch(std::unique_lock<std::mutex>& lock,
                           std::vector<std::shared_ptr<Ticket::Request>>& batch);

  InferenceOptions options_;
  std::shared_ptr<const Policy> policy_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< runners: requests queued / closed
  std::condition_variable space_cv_;  ///< clients: ring has room again
  std::condition_variable done_cv_;   ///< clients: some batch completed
  /// Bounded MPMC request ring (fixed storage, head/tail indices).
  std::vector<std::shared_ptr<Ticket::Request>> ring_;
  std::size_t ring_head_ = 0;
  std::size_t ring_size_ = 0;
  bool closed_ = false;
  InferenceStats stats_;

  std::vector<std::thread> runners_;
  bool started_ = false;
};

}  // namespace spear::infer
