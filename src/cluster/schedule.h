// A complete schedule: a start time for every task of a DAG, plus
// validation (dependency and capacity feasibility) and makespan computation.
// Every scheduler in the project produces one of these, and every test /
// bench validates it before trusting the makespan.
//
// Under fault injection a task may execute several times; the failure-aware
// simulator records every execution attempt (including failed ones) so
// validate_under_faults() can check the retried placements against the
// perturbed capacity grid — failed attempts occupy resources up to their
// failure point, and capacity-loss windows shrink the grid.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dag/dag.h"

namespace spear {

class FaultInjector;

struct Placement {
  TaskId task = kInvalidTask;
  Time start = 0;
};

/// One execution attempt recorded by the failure-aware simulator.
struct ScheduleAttempt {
  TaskId task = kInvalidTask;
  int attempt = 0;      ///< 0-based attempt index
  Time start = 0;
  Time duration = 0;    ///< effective occupancy (stragglers/failures differ
                        ///< from the nominal runtime)
  bool completed = false;
};

class Schedule {
 public:
  Schedule() = default;

  void add(TaskId task, Time start) { placements_.push_back({task, start}); }

  /// Records one execution attempt (failure-aware simulator only; the
  /// successful attempt is also add()ed as the task's placement).
  void add_attempt(TaskId task, int attempt, Time start, Time duration,
                   bool completed) {
    attempts_.push_back({task, attempt, start, duration, completed});
  }

  const std::vector<Placement>& placements() const { return placements_; }
  std::size_t size() const { return placements_.size(); }

  /// All recorded execution attempts; empty for idealized runs.
  const std::vector<ScheduleAttempt>& attempts() const { return attempts_; }

  /// Start time of `task`; throws std::out_of_range if absent.
  Time start_of(TaskId task) const;

  /// start + runtime of `task` under `dag`.
  Time finish_of(TaskId task, const Dag& dag) const;

  /// Max finish time over all placements (0 when empty).  When attempt
  /// records exist (fault mode) the effective attempt durations are used,
  /// since stragglers and failures shift finishes off the nominal runtimes.
  Time makespan(const Dag& dag) const;

  /// Checks that (a) every task of `dag` is placed exactly once, (b) every
  /// task starts at or after all of its parents finish, and (c) total demand
  /// never exceeds `capacity` in any time slot.  Returns std::nullopt when
  /// valid, otherwise a human-readable description of the first violation.
  std::optional<std::string> validate(const Dag& dag,
                                      const ResourceVector& capacity) const;

  /// Failure-aware validation of the attempt records: (a) every task has
  /// exactly one completed attempt, preceded only by failed ones with
  /// increasing indices; (b) the completed attempt starts at or after every
  /// parent's completed attempt finishes; (c) every attempt's occupancy and
  /// duration match `faults` exactly, and all attempts plus the injector's
  /// capacity-loss windows fit the capacity grid together.  Returns
  /// std::nullopt when valid.
  std::optional<std::string> validate_under_faults(
      const Dag& dag, const ResourceVector& capacity,
      const FaultInjector& faults) const;

 private:
  std::vector<Placement> placements_;
  std::vector<ScheduleAttempt> attempts_;
};

}  // namespace spear
