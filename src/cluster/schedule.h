// A complete schedule: a start time for every task of a DAG, plus
// validation (dependency and capacity feasibility) and makespan computation.
// Every scheduler in the project produces one of these, and every test /
// bench validates it before trusting the makespan.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dag/dag.h"

namespace spear {

struct Placement {
  TaskId task = kInvalidTask;
  Time start = 0;
};

class Schedule {
 public:
  Schedule() = default;

  void add(TaskId task, Time start) { placements_.push_back({task, start}); }

  const std::vector<Placement>& placements() const { return placements_; }
  std::size_t size() const { return placements_.size(); }

  /// Start time of `task`; throws std::out_of_range if absent.
  Time start_of(TaskId task) const;

  /// start + runtime of `task` under `dag`.
  Time finish_of(TaskId task, const Dag& dag) const;

  /// Max finish time over all placements (0 when empty).
  Time makespan(const Dag& dag) const;

  /// Checks that (a) every task of `dag` is placed exactly once, (b) every
  /// task starts at or after all of its parents finish, and (c) total demand
  /// never exceeds `capacity` in any time slot.  Returns std::nullopt when
  /// valid, otherwise a human-readable description of the first violation.
  std::optional<std::string> validate(const Dag& dag,
                                      const ResourceVector& capacity) const;

 private:
  std::vector<Placement> placements_;
};

}  // namespace spear
