// The resource–time space (§III-B of the paper).
//
// The cluster is modeled as one rectangle per resource dimension: width =
// capacity of that resource, height = time.  Placing a task occupies
// demand[r] of every resource r for `runtime` consecutive slots starting at
// its start time.  This class maintains the occupancy grid from a moving
// origin onward and answers placement queries; it is the substrate shared by
// the dynamic cluster simulator, Graphene's virtual packing stage, and
// schedule validation.

#pragma once

#include <vector>

#include "dag/dag.h"
#include "dag/resource.h"

namespace spear {

class ResourceTimeSpace {
 public:
  /// All-idle space with the given per-dimension capacity.
  explicit ResourceTimeSpace(ResourceVector capacity);

  const ResourceVector& capacity() const { return capacity_; }
  std::size_t dims() const { return capacity_.dims(); }

  /// Absolute time of the first slot still represented.
  Time origin() const { return origin_; }

  /// One past the last slot with any usage recorded (absolute time).
  Time horizon() const {
    return origin_ + static_cast<Time>(used_.size());
  }

  /// Resources in use at absolute time t (zero outside recorded range).
  ResourceVector used_at(Time t) const;

  /// capacity() - used_at(t).
  ResourceVector available_at(Time t) const;

  /// True if `demand` fits in every slot of [start, start + duration).
  bool fits(const ResourceVector& demand, Time start, Time duration) const;

  /// Earliest start >= not_before at which `demand` fits for `duration`
  /// slots.  Always exists because the space is idle beyond the horizon
  /// (requires demand <= capacity; throws std::invalid_argument otherwise).
  Time earliest_start(const ResourceVector& demand, Time duration,
                      Time not_before) const;

  /// Latest start such that the task occupies [start, start+duration) with
  /// start + duration <= deadline, or kInvalidTime if none exists at or
  /// after `not_before`.  Used by Graphene's backward placement.
  Time latest_start(const ResourceVector& demand, Time duration,
                    Time not_before, Time deadline) const;

  /// Marks [start, start + duration) as using `demand` more resources.
  /// Throws std::invalid_argument if that would exceed capacity anywhere.
  void place(const ResourceVector& demand, Time start, Time duration);

  /// Moves the origin forward to `t`, discarding slots before it.
  /// Throws if t < origin().
  void advance_origin(Time t);

  static constexpr Time kInvalidTime = -1;

 private:
  std::size_t index_of(Time t) const {
    return static_cast<std::size_t>(t - origin_);
  }
  void ensure_horizon(Time t);

  ResourceVector capacity_;
  Time origin_ = 0;
  std::vector<ResourceVector> used_;  // used_[i] = usage at origin_ + i
};

}  // namespace spear
