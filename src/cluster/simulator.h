// Dynamic cluster simulator — the "now" view of the resource-time space.
//
// Schedulers interact with the cluster online: they place ready tasks at the
// current time (if the demand fits the instantaneously available resources)
// and advance time.  Two advance modes exist, matching the paper:
//   * advance_one_slot()        — the RL environment processes one slot per
//                                 `process` action (§III-B);
//   * advance_to_next_finish()  — MCTS "only proceeds until at least one
//                                 task finishes" (§III-C).
// The simulator records every placement and produces the final Schedule.
//
// Failure-aware mode: constructed with a FaultInjector, each placement is
// one execution *attempt* whose outcome (completes / fails early /
// straggles) the injector decides deterministically.  Failed attempts hold
// their resources until the failure point, then surface through
// take_failed() so the environment can re-queue them; capacity-loss windows
// shrink what can_place() sees without touching running tasks.  With no
// injector every code path is bit-identical to the idealized simulator.
//
// ClusterSim is a cheap value type: MCTS snapshots it per tree node.

#pragma once

#include <memory>
#include <vector>

#include "cluster/schedule.h"
#include "dag/dag.h"
#include "fault/fault.h"

namespace spear {

class ClusterSim {
 public:
  /// `faults` may be null (idealized cluster, the default).
  explicit ClusterSim(ResourceVector capacity,
                      std::shared_ptr<const FaultInjector> faults = nullptr);

  const ResourceVector& capacity() const { return capacity_; }
  Time now() const { return now_; }

  /// Resources free at the current instant, before any capacity loss.
  const ResourceVector& available() const { return available_; }

  const FaultInjector* faults() const { return faults_.get(); }

  /// True if `demand` fits in the currently available resources, net of any
  /// active capacity-loss window.
  bool can_place(const ResourceVector& demand) const {
    if (faults_ && !faults_->loss_windows().empty()) {
      return demand.fits_within(available_ - faults_->capacity_loss_at(now_));
    }
    return demand.fits_within(available_);
  }

  /// Starts `task` now.  Throws std::invalid_argument if it does not fit.
  /// In failure-aware mode this begins the task's next execution attempt;
  /// whether it completes is decided by the injector.
  void place(const Task& task);

  /// Resume-from-occupancy: starts `task` now for exactly `task.runtime`
  /// slots, bypassing the fault injector and the attempt accounting — the
  /// task is ALREADY running in the outside world (the online execution
  /// engine re-searches mid-execution), so the model must not fail or
  /// stretch it again.  Identical to place() on an idealized cluster.
  /// Throws std::invalid_argument if the demand does not fit.
  void place_preloaded(const Task& task);

  /// Number of tasks currently running.
  std::size_t num_running() const { return running_.size(); }
  bool busy() const { return !running_.empty(); }

  /// Finish time of the earliest-finishing running task.
  /// Requires busy().
  Time earliest_finish() const;

  /// Advances time by exactly one slot; returns the tasks that completed.
  std::vector<TaskId> advance_one_slot();

  /// Advances to the earliest finish among running tasks; returns all tasks
  /// completing at that instant.  Requires busy().
  std::vector<TaskId> advance_to_next_finish();

  /// Advances to absolute time t (>= now()), completing tasks along the
  /// way; returns them.  Works on an idle cluster — the failure-aware
  /// environment uses this to wait out retry backoffs and capacity-loss
  /// windows.
  std::vector<TaskId> advance_until(Time t);

  /// Tasks whose latest attempt failed since the last call (failure-aware
  /// mode only); clears the buffer.  Failure instants coincide with the
  /// attempt's finish, so callers see failures exactly when the resources
  /// come back.
  std::vector<TaskId> take_failed();

  /// Execution attempts started so far for `task` (0 in idealized mode).
  int attempts(TaskId task) const {
    return static_cast<std::size_t>(task) < attempts_.size()
               ? attempts_[static_cast<std::size_t>(task)]
               : 0;
  }

  /// Resources that will still be in use at future instant t (>= now()),
  /// assuming no further placements: the sum of demands of running tasks
  /// whose finish time is after t.  Used to build the cluster image fed to
  /// the policy network.
  ResourceVector projected_usage(Time t) const;

  /// The batched form of projected_usage over a whole horizon: adds each
  /// running task's demand into out[dt * dims + r] for every dt in
  /// [0, horizon) with the task still running at from + dt.  One scan of
  /// the running set instead of one per slot; per (dt, r) cell the
  /// demands accumulate in the same running-order as projected_usage's
  /// scan, so the sums are bit-identical.
  void accumulate_projected_usage(Time from, Time horizon, double* out) const;

  /// Appends this cluster state's canonical transposition-key words: the
  /// current time plus the running set as (task, finish, fails) triples in
  /// placement order.  Placement order is part of the key on purpose —
  /// projected-usage sums accumulate in running order, so two states whose
  /// running sets differ only in order may featurize to different
  /// floating-point bit patterns and must not share a cache entry.
  void append_canonical_key(std::vector<std::uint64_t>& out) const;

  /// All placements so far, as a Schedule.
  const Schedule& schedule() const { return schedule_; }

  /// Makespan so far: latest finish among all placed tasks (running or done).
  Time current_makespan() const { return latest_finish_; }

 private:
  struct Running {
    TaskId task;
    Time finish;
    ResourceVector demand;
    bool fails = false;  ///< attempt dies (instead of completing) at finish
  };

  std::vector<TaskId> complete_until(Time t);

  ResourceVector capacity_;
  ResourceVector available_;
  Time now_ = 0;
  Time latest_finish_ = 0;
  std::vector<Running> running_;
  Schedule schedule_;
  std::shared_ptr<const FaultInjector> faults_;
  std::vector<int> attempts_;     ///< per-task attempt counts (fault mode)
  std::vector<TaskId> failed_;    ///< failures since last take_failed()
};

}  // namespace spear
