// Dynamic cluster simulator — the "now" view of the resource-time space.
//
// Schedulers interact with the cluster online: they place ready tasks at the
// current time (if the demand fits the instantaneously available resources)
// and advance time.  Two advance modes exist, matching the paper:
//   * advance_one_slot()        — the RL environment processes one slot per
//                                 `process` action (§III-B);
//   * advance_to_next_finish()  — MCTS "only proceeds until at least one
//                                 task finishes" (§III-C).
// The simulator records every placement and produces the final Schedule.
//
// ClusterSim is a cheap value type: MCTS snapshots it per tree node.

#pragma once

#include <vector>

#include "cluster/schedule.h"
#include "dag/dag.h"

namespace spear {

class ClusterSim {
 public:
  explicit ClusterSim(ResourceVector capacity);

  const ResourceVector& capacity() const { return capacity_; }
  Time now() const { return now_; }

  /// Resources free at the current instant.
  const ResourceVector& available() const { return available_; }

  /// True if `demand` fits in the currently available resources.
  bool can_place(const ResourceVector& demand) const {
    return demand.fits_within(available_);
  }

  /// Starts `task` now.  Throws std::invalid_argument if it does not fit.
  void place(const Task& task);

  /// Number of tasks currently running.
  std::size_t num_running() const { return running_.size(); }
  bool busy() const { return !running_.empty(); }

  /// Finish time of the earliest-finishing running task.
  /// Requires busy().
  Time earliest_finish() const;

  /// Advances time by exactly one slot; returns the tasks that completed.
  std::vector<TaskId> advance_one_slot();

  /// Advances to the earliest finish among running tasks; returns all tasks
  /// completing at that instant.  Requires busy().
  std::vector<TaskId> advance_to_next_finish();

  /// Resources that will still be in use at future instant t (>= now()),
  /// assuming no further placements: the sum of demands of running tasks
  /// whose finish time is after t.  Used to build the cluster image fed to
  /// the policy network.
  ResourceVector projected_usage(Time t) const;

  /// All placements so far, as a Schedule.
  const Schedule& schedule() const { return schedule_; }

  /// Makespan so far: latest finish among all placed tasks (running or done).
  Time current_makespan() const { return latest_finish_; }

 private:
  struct Running {
    TaskId task;
    Time finish;
    ResourceVector demand;
  };

  std::vector<TaskId> complete_until(Time t);

  ResourceVector capacity_;
  ResourceVector available_;
  Time now_ = 0;
  Time latest_finish_ = 0;
  std::vector<Running> running_;
  Schedule schedule_;
};

}  // namespace spear
