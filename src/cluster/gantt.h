// ASCII Gantt rendering of schedules — the resource-time space made
// visible.  Two views:
//   * gantt_chart: one row per task showing its [start, finish) span;
//   * utilization_chart: per-resource utilization over time in tenths.
// Used by the examples to show *why* a schedule wins, and handy when
// debugging scheduler changes.

#pragma once

#include <string>

#include "cluster/schedule.h"

namespace spear {

struct GanttOptions {
  /// Max chart width in character columns; longer schedules are scaled
  /// down (each column then covers ceil(makespan/width) slots).
  std::size_t width = 80;
};

/// Task rows ordered by start time; bars drawn with '#'.
std::string gantt_chart(const Schedule& schedule, const Dag& dag,
                        GanttOptions options = {});

/// Per-resource utilization heat rows ('0'-'9' tenths of capacity, '!' if
/// over).  Requires a valid schedule (validate() first for user input).
std::string utilization_chart(const Schedule& schedule, const Dag& dag,
                              const ResourceVector& capacity,
                              GanttOptions options = {});

}  // namespace spear
