#include "cluster/gantt.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace spear {

namespace {

/// Slots per character column so the chart fits in `width` columns.
Time scale_for(Time makespan, std::size_t width) {
  if (makespan <= 0 || width == 0) return 1;
  return (makespan + static_cast<Time>(width) - 1) /
         static_cast<Time>(width);
}

std::string task_label(const Dag& dag, TaskId id) {
  const Task& t = dag.task(id);
  return t.name.empty() ? "t" + std::to_string(id) : t.name;
}

}  // namespace

std::string gantt_chart(const Schedule& schedule, const Dag& dag,
                        GanttOptions options) {
  const Time makespan = schedule.makespan(dag);
  const Time scale = scale_for(makespan, options.width);
  const auto columns = static_cast<std::size_t>(
      makespan > 0 ? (makespan + scale - 1) / scale : 0);

  auto placements = schedule.placements();
  std::sort(placements.begin(), placements.end(),
            [](const Placement& a, const Placement& b) {
              return a.start != b.start ? a.start < b.start : a.task < b.task;
            });

  std::size_t label_width = 4;
  for (const auto& p : placements) {
    label_width = std::max(label_width, task_label(dag, p.task).size());
  }

  std::ostringstream os;
  os << "makespan " << makespan << " (1 col = " << scale << " slot"
     << (scale > 1 ? "s" : "") << ")\n";
  for (const auto& p : placements) {
    const Task& t = dag.task(p.task);
    std::string row(columns, '.');
    const auto first = static_cast<std::size_t>(p.start / scale);
    const auto last = static_cast<std::size_t>(
        (p.start + t.runtime - 1) / scale);
    for (std::size_t c = first; c <= last && c < columns; ++c) row[c] = '#';
    std::string label = task_label(dag, p.task);
    label.resize(label_width, ' ');
    os << label << " |" << row << "|\n";
  }
  return os.str();
}

std::string utilization_chart(const Schedule& schedule, const Dag& dag,
                              const ResourceVector& capacity,
                              GanttOptions options) {
  const Time makespan = schedule.makespan(dag);
  const Time scale = scale_for(makespan, options.width);
  const auto columns = static_cast<std::size_t>(
      makespan > 0 ? (makespan + scale - 1) / scale : 0);
  const std::size_t R = capacity.dims();

  // Mean utilization per column (sum over covered slots / slots).
  std::vector<std::vector<double>> usage(R,
                                         std::vector<double>(columns, 0.0));
  for (const auto& p : schedule.placements()) {
    const Task& t = dag.task(p.task);
    for (Time slot = p.start; slot < p.start + t.runtime; ++slot) {
      const auto column = static_cast<std::size_t>(slot / scale);
      for (std::size_t r = 0; r < R; ++r) {
        usage[r][column] += t.demand[r];
      }
    }
  }

  std::ostringstream os;
  os << "utilization (tenths of capacity; '!' = over)\n";
  for (std::size_t r = 0; r < R; ++r) {
    std::string row(columns, '0');
    for (std::size_t c = 0; c < columns; ++c) {
      const Time column_start = static_cast<Time>(c) * scale;
      const Time column_slots =
          std::min(scale, makespan - column_start);
      const double cap = std::max(capacity[r], 1e-9);
      const double mean_util =
          usage[r][c] / (cap * static_cast<double>(std::max<Time>(
                                   column_slots, 1)));
      if (mean_util > 1.0 + 1e-9) {
        row[c] = '!';
      } else {
        const int tenths = std::min(9, static_cast<int>(mean_util * 10.0));
        row[c] = static_cast<char>('0' + std::max(tenths, 0));
      }
    }
    os << "res" << r << " |" << row << "|\n";
  }
  return os.str();
}

}  // namespace spear
