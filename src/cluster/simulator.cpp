#include "cluster/simulator.h"

#include <algorithm>
#include <stdexcept>

namespace spear {

ClusterSim::ClusterSim(ResourceVector capacity,
                       std::shared_ptr<const FaultInjector> faults)
    : capacity_(capacity), available_(capacity), faults_(std::move(faults)) {
  if (capacity_.any_negative()) {
    throw std::invalid_argument("ClusterSim: negative capacity");
  }
}

void ClusterSim::place(const Task& task) {
  if (!can_place(task.demand)) {
    throw std::invalid_argument("ClusterSim::place: demand does not fit");
  }
  if (!faults_) {
    // Idealized path: bit-identical to the pre-fault simulator.
    available_ -= task.demand;
    const Time finish = now_ + task.runtime;
    running_.push_back({task.id, finish, task.demand});
    latest_finish_ = std::max(latest_finish_, finish);
    schedule_.add(task.id, now_);
    return;
  }
  const auto index = static_cast<std::size_t>(task.id);
  if (attempts_.size() <= index) attempts_.resize(index + 1, 0);
  const int attempt = attempts_[index]++;
  const AttemptOutcome outcome = faults_->attempt_outcome(task, attempt);
  available_ -= task.demand;
  const Time finish = now_ + outcome.duration;
  running_.push_back({task.id, finish, task.demand, outcome.fails});
  latest_finish_ = std::max(latest_finish_, finish);
  schedule_.add_attempt(task.id, attempt, now_, outcome.duration,
                        !outcome.fails);
  if (!outcome.fails) schedule_.add(task.id, now_);
}

void ClusterSim::place_preloaded(const Task& task) {
  if (!can_place(task.demand)) {
    throw std::invalid_argument(
        "ClusterSim::place_preloaded: demand does not fit");
  }
  available_ -= task.demand;
  const Time finish = now_ + task.runtime;
  running_.push_back({task.id, finish, task.demand});
  latest_finish_ = std::max(latest_finish_, finish);
  schedule_.add(task.id, now_);
}

Time ClusterSim::earliest_finish() const {
  if (running_.empty()) {
    throw std::logic_error("ClusterSim::earliest_finish: nothing running");
  }
  Time best = running_.front().finish;
  for (const auto& r : running_) best = std::min(best, r.finish);
  return best;
}

std::vector<TaskId> ClusterSim::complete_until(Time t) {
  std::vector<TaskId> done;
  for (std::size_t i = 0; i < running_.size();) {
    if (running_[i].finish <= t) {
      if (running_[i].fails) {
        failed_.push_back(running_[i].task);
      } else {
        done.push_back(running_[i].task);
      }
      available_ += running_[i].demand;
      running_[i] = running_.back();
      running_.pop_back();
    } else {
      ++i;
    }
  }
  now_ = t;
  return done;
}

ResourceVector ClusterSim::projected_usage(Time t) const {
  ResourceVector usage(capacity_.dims());
  for (const auto& r : running_) {
    if (r.finish > t) usage += r.demand;
  }
  return usage;
}

void ClusterSim::accumulate_projected_usage(Time from, Time horizon,
                                            double* out) const {
  const std::size_t dims = capacity_.dims();
  for (const auto& r : running_) {
    // finish > from + dt  <=>  dt < finish - from, clamped to the horizon.
    const Time span = std::min(horizon, r.finish - from);
    for (Time dt = 0; dt < span; ++dt) {
      double* slot = out + static_cast<std::size_t>(dt) * dims;
      for (std::size_t d = 0; d < dims; ++d) slot[d] += r.demand[d];
    }
  }
}

void ClusterSim::append_canonical_key(std::vector<std::uint64_t>& out) const {
  out.push_back(static_cast<std::uint64_t>(now_));
  out.push_back(static_cast<std::uint64_t>(running_.size()));
  for (const auto& r : running_) {
    out.push_back(static_cast<std::uint64_t>(r.task));
    out.push_back(static_cast<std::uint64_t>(r.finish));
    out.push_back(static_cast<std::uint64_t>(r.fails ? 1 : 0));
  }
}

std::vector<TaskId> ClusterSim::advance_one_slot() {
  return complete_until(now_ + 1);
}

std::vector<TaskId> ClusterSim::advance_to_next_finish() {
  return complete_until(earliest_finish());
}

std::vector<TaskId> ClusterSim::advance_until(Time t) {
  if (t < now_) {
    throw std::invalid_argument("ClusterSim::advance_until: time moves back");
  }
  return complete_until(t);
}

std::vector<TaskId> ClusterSim::take_failed() {
  std::vector<TaskId> out;
  out.swap(failed_);
  return out;
}

}  // namespace spear
