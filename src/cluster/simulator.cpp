#include "cluster/simulator.h"

#include <algorithm>
#include <stdexcept>

namespace spear {

ClusterSim::ClusterSim(ResourceVector capacity)
    : capacity_(capacity), available_(capacity) {
  if (capacity_.any_negative()) {
    throw std::invalid_argument("ClusterSim: negative capacity");
  }
}

void ClusterSim::place(const Task& task) {
  if (!can_place(task.demand)) {
    throw std::invalid_argument("ClusterSim::place: demand does not fit");
  }
  available_ -= task.demand;
  const Time finish = now_ + task.runtime;
  running_.push_back({task.id, finish, task.demand});
  latest_finish_ = std::max(latest_finish_, finish);
  schedule_.add(task.id, now_);
}

Time ClusterSim::earliest_finish() const {
  if (running_.empty()) {
    throw std::logic_error("ClusterSim::earliest_finish: nothing running");
  }
  Time best = running_.front().finish;
  for (const auto& r : running_) best = std::min(best, r.finish);
  return best;
}

std::vector<TaskId> ClusterSim::complete_until(Time t) {
  std::vector<TaskId> done;
  for (std::size_t i = 0; i < running_.size();) {
    if (running_[i].finish <= t) {
      done.push_back(running_[i].task);
      available_ += running_[i].demand;
      running_[i] = running_.back();
      running_.pop_back();
    } else {
      ++i;
    }
  }
  now_ = t;
  return done;
}

ResourceVector ClusterSim::projected_usage(Time t) const {
  ResourceVector usage(capacity_.dims());
  for (const auto& r : running_) {
    if (r.finish > t) usage += r.demand;
  }
  return usage;
}

std::vector<TaskId> ClusterSim::advance_one_slot() {
  return complete_until(now_ + 1);
}

std::vector<TaskId> ClusterSim::advance_to_next_finish() {
  return complete_until(earliest_finish());
}

}  // namespace spear
