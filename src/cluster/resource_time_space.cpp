#include "cluster/resource_time_space.h"

#include <stdexcept>

namespace spear {

ResourceTimeSpace::ResourceTimeSpace(ResourceVector capacity)
    : capacity_(std::move(capacity)) {
  if (capacity_.any_negative()) {
    throw std::invalid_argument("ResourceTimeSpace: negative capacity");
  }
}

ResourceVector ResourceTimeSpace::used_at(Time t) const {
  if (t < origin_ || t >= horizon()) return ResourceVector(dims());
  return used_[index_of(t)];
}

ResourceVector ResourceTimeSpace::available_at(Time t) const {
  return capacity_ - used_at(t);
}

bool ResourceTimeSpace::fits(const ResourceVector& demand, Time start,
                             Time duration) const {
  if (start < origin_) return false;
  for (Time t = start; t < start + duration; ++t) {
    if (t >= horizon()) break;  // idle beyond the horizon
    if (!(used_[index_of(t)] + demand).fits_within(capacity_)) return false;
  }
  return true;
}

Time ResourceTimeSpace::earliest_start(const ResourceVector& demand,
                                       Time duration, Time not_before) const {
  if (!demand.fits_within(capacity_)) {
    throw std::invalid_argument(
        "ResourceTimeSpace::earliest_start: demand exceeds capacity");
  }
  Time start = std::max(not_before, origin_);
  while (true) {
    bool ok = true;
    // Scan the window; on conflict, restart just after the conflicting slot.
    for (Time t = start; t < start + duration; ++t) {
      if (t >= horizon()) break;
      if (!(used_[index_of(t)] + demand).fits_within(capacity_)) {
        start = t + 1;
        ok = false;
        break;
      }
    }
    if (ok) return start;
  }
}

Time ResourceTimeSpace::latest_start(const ResourceVector& demand,
                                     Time duration, Time not_before,
                                     Time deadline) const {
  if (!demand.fits_within(capacity_)) {
    throw std::invalid_argument(
        "ResourceTimeSpace::latest_start: demand exceeds capacity");
  }
  Time start = deadline - duration;
  const Time floor = std::max(not_before, origin_);
  while (start >= floor) {
    bool ok = true;
    for (Time t = start + duration - 1; t >= start; --t) {
      if (t >= horizon()) continue;
      if (!(used_[index_of(t)] + demand).fits_within(capacity_)) {
        start = t - duration;  // next candidate ends just before slot t
        ok = false;
        break;
      }
    }
    if (ok) return start;
  }
  return kInvalidTime;
}

void ResourceTimeSpace::ensure_horizon(Time t) {
  while (horizon() < t) used_.emplace_back(dims());
}

void ResourceTimeSpace::place(const ResourceVector& demand, Time start,
                              Time duration) {
  if (start < origin_) {
    throw std::invalid_argument("ResourceTimeSpace::place: start in the past");
  }
  if (duration <= 0) {
    throw std::invalid_argument(
        "ResourceTimeSpace::place: non-positive duration");
  }
  if (!fits(demand, start, duration)) {
    throw std::invalid_argument(
        "ResourceTimeSpace::place: placement exceeds capacity");
  }
  ensure_horizon(start + duration);
  for (Time t = start; t < start + duration; ++t) {
    used_[index_of(t)] += demand;
  }
}

void ResourceTimeSpace::advance_origin(Time t) {
  if (t < origin_) {
    throw std::invalid_argument(
        "ResourceTimeSpace::advance_origin: cannot move backwards");
  }
  const Time drop = std::min(t - origin_, static_cast<Time>(used_.size()));
  used_.erase(used_.begin(), used_.begin() + drop);
  origin_ = t;
}

}  // namespace spear
