#include "cluster/schedule.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "cluster/resource_time_space.h"
#include "fault/fault.h"

namespace spear {

Time Schedule::start_of(TaskId task) const {
  for (const auto& p : placements_) {
    if (p.task == task) return p.start;
  }
  throw std::out_of_range("Schedule::start_of: task not placed");
}

Time Schedule::finish_of(TaskId task, const Dag& dag) const {
  return start_of(task) + dag.task(task).runtime;
}

Time Schedule::makespan(const Dag& dag) const {
  Time m = 0;
  if (!attempts_.empty()) {
    // Fault mode: effective durations (stragglers, failure points) differ
    // from the nominal runtimes, and failed attempts still occupy time.
    for (const auto& a : attempts_) {
      m = std::max(m, a.start + a.duration);
    }
    return m;
  }
  for (const auto& p : placements_) {
    m = std::max(m, p.start + dag.task(p.task).runtime);
  }
  return m;
}

std::optional<std::string> Schedule::validate(
    const Dag& dag, const ResourceVector& capacity) const {
  const std::size_t n = dag.num_tasks();

  std::vector<int> seen(n, 0);
  for (const auto& p : placements_) {
    if (p.task < 0 || static_cast<std::size_t>(p.task) >= n) {
      return "placement references unknown task id " + std::to_string(p.task);
    }
    if (p.start < 0) {
      return "task " + std::to_string(p.task) + " starts at negative time";
    }
    if (++seen[static_cast<std::size_t>(p.task)] > 1) {
      return "task " + std::to_string(p.task) + " placed more than once";
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (seen[i] == 0) {
      return "task " + std::to_string(i) + " was never placed";
    }
  }

  // Dependency feasibility.
  std::vector<Time> start(n);
  for (const auto& p : placements_) {
    start[static_cast<std::size_t>(p.task)] = p.start;
  }
  for (const auto& t : dag.tasks()) {
    for (TaskId parent : dag.parents(t.id)) {
      const Time parent_finish =
          start[static_cast<std::size_t>(parent)] + dag.task(parent).runtime;
      if (start[static_cast<std::size_t>(t.id)] < parent_finish) {
        std::ostringstream os;
        os << "task " << t.id << " starts at "
           << start[static_cast<std::size_t>(t.id)] << " before parent "
           << parent << " finishes at " << parent_finish;
        return os.str();
      }
    }
  }

  // Capacity feasibility via the shared occupancy grid (place() throws on
  // overflow, which we convert into a validation message).
  ResourceTimeSpace space(capacity);
  for (const auto& p : placements_) {
    const Task& t = dag.task(p.task);
    if (!space.fits(t.demand, p.start, t.runtime)) {
      std::ostringstream os;
      os << "task " << p.task << " at t=" << p.start
         << " exceeds cluster capacity";
      return os.str();
    }
    space.place(t.demand, p.start, t.runtime);
  }

  return std::nullopt;
}

std::optional<std::string> Schedule::validate_under_faults(
    const Dag& dag, const ResourceVector& capacity,
    const FaultInjector& faults) const {
  const std::size_t n = dag.num_tasks();

  // --- Per-task attempt structure: contiguous indices, failures strictly
  // before the single completed attempt, outcomes matching the injector. ---
  std::vector<std::vector<const ScheduleAttempt*>> by_task(n);
  for (const auto& a : attempts_) {
    if (a.task < 0 || static_cast<std::size_t>(a.task) >= n) {
      return "attempt references unknown task id " + std::to_string(a.task);
    }
    if (a.start < 0 || a.duration < 1) {
      return "task " + std::to_string(a.task) +
             " has an attempt with bad start/duration";
    }
    by_task[static_cast<std::size_t>(a.task)].push_back(&a);
  }

  std::vector<Time> completed_finish(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    auto& list = by_task[i];
    if (list.empty()) {
      return "task " + std::to_string(i) + " has no recorded attempts";
    }
    std::sort(list.begin(), list.end(),
              [](const ScheduleAttempt* a, const ScheduleAttempt* b) {
                return a->attempt < b->attempt;
              });
    const Task& task = dag.task(static_cast<TaskId>(i));
    Time prev_end = 0;
    for (std::size_t k = 0; k < list.size(); ++k) {
      const ScheduleAttempt& a = *list[k];
      if (a.attempt != static_cast<int>(k)) {
        return "task " + std::to_string(i) +
               " has non-contiguous attempt indices";
      }
      const bool last = k + 1 == list.size();
      if (a.completed != last) {
        return "task " + std::to_string(i) +
               (a.completed ? " completed before its final attempt"
                            : " never completed");
      }
      const AttemptOutcome expected = faults.attempt_outcome(task, a.attempt);
      if (expected.fails == a.completed || expected.duration != a.duration) {
        return "task " + std::to_string(i) + " attempt " +
               std::to_string(k) + " does not match the fault injector";
      }
      if (k > 0 && a.start < prev_end) {
        return "task " + std::to_string(i) + " attempt " +
               std::to_string(k) + " starts before attempt " +
               std::to_string(k - 1) + " releases its resources";
      }
      prev_end = a.start + a.duration;
      if (a.completed) completed_finish[i] = prev_end;
    }
    // The completed attempt is the task's placement.
    if (start_of(static_cast<TaskId>(i)) != list.back()->start) {
      return "task " + std::to_string(i) +
             " placement disagrees with its completed attempt";
    }
  }

  // --- Dependencies: a task's first attempt may only start once every
  // parent has *completed*. ---
  for (const auto& t : dag.tasks()) {
    const Time first_start =
        by_task[static_cast<std::size_t>(t.id)].front()->start;
    for (TaskId parent : dag.parents(t.id)) {
      if (first_start < completed_finish[static_cast<std::size_t>(parent)]) {
        std::ostringstream os;
        os << "task " << t.id << " starts at " << first_start
           << " before parent " << parent << " completes at "
           << completed_finish[static_cast<std::size_t>(parent)];
        return os.str();
      }
    }
  }

  // --- Perturbed capacity grid.  Two guarantees to re-check: (a) all
  // attempts together never exceed the raw capacity; (b) at each attempt's
  // start instant it also fit net of the attempts already running and the
  // active capacity-loss window (running tasks are exempt from a window
  // that opens mid-flight, exactly like the simulator). ---
  ResourceTimeSpace space(capacity);
  for (std::size_t j = 0; j < attempts_.size(); ++j) {
    const ScheduleAttempt& a = attempts_[j];
    const ResourceVector& demand =
        dag.task(a.task).demand;
    ResourceVector in_use = faults.capacity_loss_at(a.start);
    for (std::size_t k = 0; k < j; ++k) {
      const ScheduleAttempt& b = attempts_[k];
      if (b.start <= a.start && a.start < b.start + b.duration) {
        in_use += dag.task(b.task).demand;
      }
    }
    if (!(in_use + demand).fits_within(capacity)) {
      std::ostringstream os;
      os << "task " << a.task << " attempt " << a.attempt << " at t="
         << a.start << " exceeds the perturbed capacity";
      return os.str();
    }
    if (!space.fits(demand, a.start, a.duration)) {
      std::ostringstream os;
      os << "task " << a.task << " attempt " << a.attempt << " at t="
         << a.start << " exceeds cluster capacity";
      return os.str();
    }
    space.place(demand, a.start, a.duration);
  }

  return std::nullopt;
}

}  // namespace spear
