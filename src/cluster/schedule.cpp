#include "cluster/schedule.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "cluster/resource_time_space.h"

namespace spear {

Time Schedule::start_of(TaskId task) const {
  for (const auto& p : placements_) {
    if (p.task == task) return p.start;
  }
  throw std::out_of_range("Schedule::start_of: task not placed");
}

Time Schedule::finish_of(TaskId task, const Dag& dag) const {
  return start_of(task) + dag.task(task).runtime;
}

Time Schedule::makespan(const Dag& dag) const {
  Time m = 0;
  for (const auto& p : placements_) {
    m = std::max(m, p.start + dag.task(p.task).runtime);
  }
  return m;
}

std::optional<std::string> Schedule::validate(
    const Dag& dag, const ResourceVector& capacity) const {
  const std::size_t n = dag.num_tasks();

  std::vector<int> seen(n, 0);
  for (const auto& p : placements_) {
    if (p.task < 0 || static_cast<std::size_t>(p.task) >= n) {
      return "placement references unknown task id " + std::to_string(p.task);
    }
    if (p.start < 0) {
      return "task " + std::to_string(p.task) + " starts at negative time";
    }
    if (++seen[static_cast<std::size_t>(p.task)] > 1) {
      return "task " + std::to_string(p.task) + " placed more than once";
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (seen[i] == 0) {
      return "task " + std::to_string(i) + " was never placed";
    }
  }

  // Dependency feasibility.
  std::vector<Time> start(n);
  for (const auto& p : placements_) {
    start[static_cast<std::size_t>(p.task)] = p.start;
  }
  for (const auto& t : dag.tasks()) {
    for (TaskId parent : dag.parents(t.id)) {
      const Time parent_finish =
          start[static_cast<std::size_t>(parent)] + dag.task(parent).runtime;
      if (start[static_cast<std::size_t>(t.id)] < parent_finish) {
        std::ostringstream os;
        os << "task " << t.id << " starts at "
           << start[static_cast<std::size_t>(t.id)] << " before parent "
           << parent << " finishes at " << parent_finish;
        return os.str();
      }
    }
  }

  // Capacity feasibility via the shared occupancy grid (place() throws on
  // overflow, which we convert into a validation message).
  ResourceTimeSpace space(capacity);
  for (const auto& p : placements_) {
    const Task& t = dag.task(p.task);
    if (!space.fits(t.demand, p.start, t.runtime)) {
      std::ostringstream os;
      os << "task " << p.task << " at t=" << p.start
         << " exceeds cluster capacity";
      return os.str();
    }
    space.place(t.demand, p.start, t.runtime);
  }

  return std::nullopt;
}

}  // namespace spear
