#include "core/spear.h"

#include <stdexcept>

#include "common/logging.h"
#include "dag/generator.h"
#include "rl/imitation.h"
#include "rl/reinforce.h"
#include "trace/mapreduce.h"
#include "trace/trace.h"

namespace spear {

SearchMode parse_search_mode(const std::string& value) {
  if (value == "root") return SearchMode::kRoot;
  if (value == "leaf") return SearchMode::kLeaf;
  throw std::invalid_argument("unknown search mode '" + value +
                              "' (expected root or leaf)");
}

std::unique_ptr<MctsScheduler> make_spear_scheduler(
    std::shared_ptr<const Policy> policy, SpearOptions options) {
  MctsOptions mcts;
  mcts.initial_budget = options.initial_budget;
  mcts.min_budget = options.min_budget;
  mcts.exploration_scale = options.exploration_scale;
  mcts.seed = options.seed;
  mcts.num_threads = options.num_threads;
  mcts.time_budget_ms = options.time_budget_ms;
  mcts.faults = options.faults;
  mcts.retry = options.retry;
  mcts.search_mode = options.search_mode;
  mcts.leaf_tree_reuse = options.leaf_tree_reuse;
  mcts.name = "Spear";
  auto guide = std::make_shared<DrlDecisionPolicy>(std::move(policy),
                                                   !options.sample_rollouts);
  return std::make_unique<MctsScheduler>(std::move(mcts), std::move(guide));
}

std::unique_ptr<MctsScheduler> make_mcts_scheduler(
    std::int64_t initial_budget, std::int64_t min_budget, std::uint64_t seed,
    int num_threads, SearchMode search_mode, bool leaf_tree_reuse) {
  MctsOptions mcts;
  mcts.initial_budget = initial_budget;
  mcts.min_budget = min_budget;
  mcts.seed = seed;
  mcts.num_threads = num_threads;
  mcts.search_mode = search_mode;
  mcts.leaf_tree_reuse = leaf_tree_reuse;
  mcts.name = "MCTS";
  return std::make_unique<MctsScheduler>(std::move(mcts), nullptr);
}

Policy train_default_spear_policy(SpearTrainingOptions options) {
  Rng rng(options.seed);
  const ResourceVector capacity{1.0, 1.0};

  DagGeneratorOptions dag_options;
  dag_options.num_tasks = options.tasks_per_example;
  std::vector<Dag> examples =
      generate_random_dags(dag_options, options.num_examples, rng);
  if (options.include_mapreduce_examples) {
    // Half as many small shuffle-barrier jobs so the policy also sees the
    // trace workload's two-stage structure.
    TraceOptions trace_options;
    trace_options.num_jobs = std::max<std::size_t>(options.num_examples / 2, 1);
    trace_options.max_map_tasks = 15;
    trace_options.max_reduce_tasks = 15;
    trace_options.median_map_tasks = 10;
    trace_options.median_reduce_tasks = 10;
    trace_options.median_map_runtime = 20;
    trace_options.median_reduce_runtime = 12;
    trace_options.max_task_runtime = 60;
    Rng trace_rng = rng.split();
    for (const auto& job : generate_trace(trace_options, trace_rng)) {
      examples.push_back(mapreduce_to_dag(job));
    }
  }

  Policy policy = Policy::make(FeaturizerOptions{}, capacity.dims(), rng);

  ImitationOptions imitation;
  imitation.epochs = options.imitation_epochs;
  const auto imitation_result =
      pretrain_on_cp(policy, examples, capacity, imitation, rng);
  if (!imitation_result.epoch_losses.empty()) {
    SPEAR_LOG(Info) << "imitation pre-training: CE "
                    << imitation_result.epoch_losses.front() << " -> "
                    << imitation_result.epoch_losses.back();
  }

  ReinforceOptions reinforce;
  reinforce.epochs = options.reinforce_epochs;
  reinforce.rollouts_per_example = options.rollouts_per_example;
  const auto rl_result =
      train_reinforce(policy, examples, capacity, reinforce, rng);
  if (!rl_result.epoch_mean_makespan.empty()) {
    SPEAR_LOG(Info) << "REINFORCE: mean makespan "
                    << rl_result.epoch_mean_makespan.front() << " -> "
                    << rl_result.epoch_mean_makespan.back();
  }
  return policy;
}

}  // namespace spear
