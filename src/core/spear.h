// Spear — the paper's contribution: MCTS whose expansion and rollout steps
// are guided by a trained deep-RL scheduling policy instead of random
// choice, so the search focuses its budget on promising branches and can
// match pure MCTS quality with ~10% of the budget (Fig. 8a).
//
// Typical use:
//
//   Rng rng(42);
//   Policy policy = train_default_spear_policy(rng);   // or load_mlp(...)
//   auto spear = make_spear_scheduler(
//       std::make_shared<Policy>(std::move(policy)));
//   Schedule s = spear->schedule(dag, ResourceVector{1.0, 1.0});

#pragma once

#include <memory>

#include "mcts/mcts.h"
#include "rl/policy.h"

namespace spear {

struct SpearOptions {
  /// Search budget; the paper uses 1000/100 in simulations and 100/50 on
  /// the production trace (DRL guidance is what makes the small budget
  /// sufficient).
  std::int64_t initial_budget = 1000;
  std::int64_t min_budget = 100;
  double exploration_scale = 1.0;
  std::uint64_t seed = 42;
  /// Sample rollout actions from the policy distribution instead of taking
  /// the argmax.  Greedy (the default) evaluates leaves with the expert's
  /// deterministic play and measures noticeably better on both random DAGs
  /// and the trace workload.
  bool sample_rollouts = false;
  /// Root-parallel search workers (MctsOptions::num_threads); 1 = serial.
  int num_threads = 1;
  /// Anytime wall-clock budget per decision in ms; 0 = unlimited
  /// (MctsOptions::time_budget_ms).
  std::int64_t time_budget_ms = 0;
  /// Failure-aware scheduling: non-null schedules under this fault injector
  /// with `retry` (MctsOptions::faults / MctsOptions::retry).
  std::shared_ptr<const FaultInjector> faults;
  RetryOptions retry;
  /// Parallel-search architecture: kRoot (per-worker trees) or kLeaf (one
  /// shared tree + batched central evaluator; MctsOptions::search_mode).
  SearchMode search_mode = SearchMode::kRoot;
  /// Leaf mode: reuse the chosen subtree across decisions
  /// (MctsOptions::leaf_tree_reuse); the benches' --no-tree-reuse clears it.
  bool leaf_tree_reuse = true;
};

/// Parses a --search-mode flag value ("root" or "leaf"); throws
/// std::invalid_argument on anything else.
SearchMode parse_search_mode(const std::string& value);

/// Builds the Spear scheduler around a trained policy.
std::unique_ptr<MctsScheduler> make_spear_scheduler(
    std::shared_ptr<const Policy> policy, SpearOptions options = {});

/// Builds the pure-MCTS scheduler (random expansion/rollout) used as the
/// paper's ablation baseline.  `num_threads` > 1 enables parallel search
/// in the given `search_mode` (see MctsOptions::num_threads /
/// MctsOptions::search_mode).
std::unique_ptr<MctsScheduler> make_mcts_scheduler(
    std::int64_t initial_budget, std::int64_t min_budget,
    std::uint64_t seed = 42, int num_threads = 1,
    SearchMode search_mode = SearchMode::kRoot, bool leaf_tree_reuse = true);

struct SpearTrainingOptions {
  /// Pre-training and RL workload (paper: 144 examples of 25 tasks; the
  /// defaults here are scaled for a small machine — pass the paper's values
  /// explicitly to reproduce Fig. 8b at full scale).
  std::size_t num_examples = 24;
  std::size_t tasks_per_example = 25;
  std::size_t imitation_epochs = 10;
  std::size_t reinforce_epochs = 40;
  std::size_t rollouts_per_example = 8;
  /// Mix small MapReduce-shaped jobs (shuffle-barrier DAGs) into the
  /// training set alongside the random layered DAGs, so one policy guides
  /// both the simulation and the trace experiments well.
  bool include_mapreduce_examples = true;
  std::uint64_t seed = 7;
};

/// End-to-end policy production: generate training DAGs, imitation-pretrain
/// on the CP heuristic, then REINFORCE — the full §IV pipeline.  Returns the
/// trained policy (capacity fixed at 1.0 per resource, 2 resources).
Policy train_default_spear_policy(SpearTrainingOptions options = {});

}  // namespace spear
