// RunReport: one JSON summary file per bench run (DESIGN.md §8) —
// identifying metadata (bench name, key parameters) plus a full metrics
// snapshot.  Written by the bench binaries when --metrics-out is set.

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace spear::obs {

class RunReport {
 public:
  explicit RunReport(std::string name) : name_(std::move(name)) {}

  /// Adds one metadata entry (insertion order is preserved in the output).
  void set(const std::string& key, const std::string& value);
  /// Without this overload a string literal would pick the bool overload
  /// (pointer-to-bool is a standard conversion, string is user-defined).
  void set(const std::string& key, const char* value) {
    set(key, std::string(value));
  }
  void set(const std::string& key, std::int64_t value);
  void set(const std::string& key, double value);
  void set(const std::string& key, bool value);

  /// {"name":...,"meta":{...},"metrics":{...}} (metrics omitted when null).
  std::string to_json(const MetricsSnapshot* metrics = nullptr) const;

  /// Writes to_json() to `path`.  Throws std::runtime_error on failure.
  void write(const std::string& path,
             const MetricsSnapshot* metrics = nullptr) const;

 private:
  std::string name_;
  /// (key, pre-rendered JSON value) pairs.
  std::vector<std::pair<std::string, std::string>> meta_;
};

}  // namespace spear::obs
