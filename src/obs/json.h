// Tiny JSON emission helpers shared by the observability sinks (metrics
// snapshots, trace events, run reports).  Emission only — parsing JSON is
// out of scope for this repo.

#pragma once

#include <cmath>
#include <cstdio>
#include <string>

namespace spear::obs {

/// Escapes a string for inclusion inside a JSON string literal (without the
/// surrounding quotes).
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Formats a double as a JSON number; non-finite values (which JSON cannot
/// represent) become null.
inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace spear::obs
