// The global observability sink (DESIGN.md §8).
//
// Overhead contract: observability is OFF by default, and every
// instrumentation site is gated on enabled() — a single relaxed atomic load
// plus a predictable branch.  Disabled runs take no clocks, allocate
// nothing, and touch no locks, so the serial scheduling path stays
// bit-identical to the uninstrumented build and bench_micro regresses by
// no more than the cost of that branch.
//
// Enabling is explicit: install a MetricsRegistry and/or a
// TraceEventWriter (benches do this from --metrics-out / --trace-out),
// do the work, then read a snapshot / shutdown().  Install sinks before
// spawning concurrent work and shut down after joining it — the accessors
// intentionally hand out raw pointers without per-call locking.
//
//   obs::install_metrics(std::make_shared<obs::MetricsRegistry>());
//   obs::install_trace(std::make_shared<obs::TraceEventWriter>("trace.json"));
//   ... run ...
//   auto snap = obs::metrics()->snapshot();
//   obs::shutdown();
//
// Instrumentation sites look like:
//
//   if (obs::enabled()) obs::count("mcts.decisions");
//   obs::ScopedTimer span("mcts.decision", "mcts");   // no-op when disabled
//   span.set_args("\"depth\":" + std::to_string(depth));

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace spear::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True iff any sink is installed.  The one check hot paths pay.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Installed registry / writer; null when not installed.  Pointers are
/// stable between install and shutdown (see the header comment).
MetricsRegistry* metrics();
TraceEventWriter* trace();

void install_metrics(std::shared_ptr<MetricsRegistry> registry);
void install_trace(std::shared_ptr<TraceEventWriter> writer);

/// Closes the trace (if any), drops both sinks and disables.
void shutdown();

/// Counter / gauge / histogram shorthands that tolerate a missing registry
/// (e.g. trace-only runs).  Call only under enabled() on hot paths.
inline void count(const std::string& name, std::int64_t delta = 1) {
  if (MetricsRegistry* m = metrics()) m->add(name, delta);
}
inline void gauge(const std::string& name, double value) {
  if (MetricsRegistry* m = metrics()) m->set(name, value);
}
inline void observe(const std::string& name, double value) {
  if (MetricsRegistry* m = metrics()) m->observe(name, value);
}

/// RAII span: measures its scope's wall time, records it into the
/// "<name>.ms" histogram, and (unless with_trace is false) emits a Chrome
/// complete event on the calling thread's track.  Construction when
/// disabled is a branch — no clock is read.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string name, std::string category = "spear",
                       bool with_trace = true)
      : active_(enabled()), with_trace_(with_trace) {
    if (active_) {
      name_ = std::move(name);
      category_ = std::move(category);
      start_ = std::chrono::steady_clock::now();
    }
  }

  ~ScopedTimer() { finish(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  bool active() const { return active_; }

  /// Attaches a JSON args body (no braces) to the trace event.
  void set_args(std::string args_json) {
    if (active_) args_ = std::move(args_json);
  }

  /// Ends the span early (idempotent; the destructor is then a no-op).
  void finish();

 private:
  bool active_;
  bool with_trace_;
  std::string name_;
  std::string category_;
  std::string args_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace spear::obs
