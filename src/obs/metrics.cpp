#include "obs/metrics.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "obs/json.h"

namespace spear::obs {

MetricsRegistry::MetricsRegistry(std::size_t shards)
    : shards_(std::max<std::size_t>(shards, 1)) {}

MetricsRegistry::Shard& MetricsRegistry::shard_for(const std::string& name) {
  return shards_[std::hash<std::string>{}(name) % shards_.size()];
}

void MetricsRegistry::add(const std::string& name, std::int64_t delta) {
  Shard& shard = shard_for(name);
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.counters[name] += delta;
}

void MetricsRegistry::set(const std::string& name, double value) {
  Shard& shard = shard_for(name);
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.gauges[name] = value;
}

void MetricsRegistry::observe(const std::string& name, double value,
                              const std::vector<double>& bounds) {
  Shard& shard = shard_for(name);
  std::lock_guard<std::mutex> lock(shard.mutex);
  Histogram& h = shard.histograms[name];
  if (h.counts.empty()) {
    h.bounds = bounds.empty() ? default_time_bounds_ms() : bounds;
    h.counts.assign(h.bounds.size() + 1, 0);
  }
  const auto bucket = static_cast<std::size_t>(
      std::upper_bound(h.bounds.begin(), h.bounds.end(), value) -
      h.bounds.begin());
  ++h.counts[bucket];
  if (h.count == 0) {
    h.min = h.max = value;
  } else {
    h.min = std::min(h.min, value);
    h.max = std::max(h.max, value);
  }
  ++h.count;
  h.sum += value;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [name, v] : shard.counters) out.counters[name] += v;
    for (const auto& [name, v] : shard.gauges) out.gauges[name] = v;
    for (const auto& [name, h] : shard.histograms) {
      out.histograms[name] = {h.bounds, h.counts, h.count, h.sum, h.min,
                              h.max};
    }
  }
  return out;
}

void MetricsRegistry::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.counters.clear();
    shard.gauges.clear();
    shard.histograms.clear();
  }
}

const std::vector<double>& MetricsRegistry::default_time_bounds_ms() {
  // Powers of four from 1 us to ~16 s, in milliseconds.
  static const std::vector<double> bounds = {
      0.001, 0.004, 0.016, 0.064, 0.25, 1.0, 4.0, 16.0, 64.0, 250.0, 1000.0,
      4000.0, 16000.0};
  return bounds;
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    os << (first ? "" : ",") << '"' << json_escape(name) << "\":" << v;
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    os << (first ? "" : ",") << '"' << json_escape(name)
       << "\":" << json_number(v);
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    os << (first ? "" : ",") << '"' << json_escape(name) << "\":{\"count\":"
       << h.count << ",\"sum\":" << json_number(h.sum)
       << ",\"min\":" << json_number(h.min)
       << ",\"max\":" << json_number(h.max) << ",\"mean\":"
       << json_number(h.mean()) << ",\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      os << (i ? "," : "") << json_number(h.bounds[i]);
    }
    os << "],\"buckets\":[";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      os << (i ? "," : "") << h.counts[i];
    }
    os << "]}";
    first = false;
  }
  os << "}}";
  return os.str();
}

std::string MetricsSnapshot::to_csv() const {
  std::ostringstream os;
  os << "kind,name,field,value\n";
  for (const auto& [name, v] : counters) {
    os << "counter," << name << ",value," << v << "\n";
  }
  for (const auto& [name, v] : gauges) {
    os << "gauge," << name << ",value," << json_number(v) << "\n";
  }
  for (const auto& [name, h] : histograms) {
    os << "histogram," << name << ",count," << h.count << "\n";
    os << "histogram," << name << ",sum," << json_number(h.sum) << "\n";
    os << "histogram," << name << ",min," << json_number(h.min) << "\n";
    os << "histogram," << name << ",max," << json_number(h.max) << "\n";
    os << "histogram," << name << ",mean," << json_number(h.mean()) << "\n";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      os << "histogram," << name << ",le_"
         << (i < h.bounds.size() ? json_number(h.bounds[i]) : "inf") << ","
         << h.counts[i] << "\n";
    }
  }
  return os.str();
}

}  // namespace spear::obs
