// MetricsRegistry: named counters, gauges and fixed-bucket histograms for
// the observability layer (DESIGN.md §8).
//
// The registry is mutex-sharded: a metric name hashes to one of a fixed set
// of shards, each with its own lock and maps, so concurrent writers (e.g.
// root-parallel MCTS workers) rarely contend.  Snapshots merge the shards
// into name-sorted maps and serialize to JSON or CSV.
//
// Instrumentation sites never talk to a registry directly — they go through
// the global sink in obs/obs.h, which is disabled by default (one relaxed
// atomic load + branch on the hot path; see the overhead contract there).

#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace spear::obs {

/// Frozen state of one histogram.  `bounds` are inclusive upper bounds of
/// the first bounds.size() buckets; counts has one extra trailing bucket
/// for values above the last bound.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::int64_t> counts;  // bounds.size() + 1 entries
  std::int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
};

/// Point-in-time copy of every metric, name-sorted for stable output.
struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string to_json() const;
  /// Flat CSV: kind,name,field,value — one row per scalar.
  std::string to_csv() const;
};

class MetricsRegistry {
 public:
  /// `shards` bounds writer contention; 8 covers any realistic worker count.
  explicit MetricsRegistry(std::size_t shards = 8);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Adds `delta` to the named counter (created at 0 on first use).
  void add(const std::string& name, std::int64_t delta = 1);

  /// Sets the named gauge to `value`.
  void set(const std::string& name, double value);

  /// Records `value` into the named histogram.  The bucket bounds are fixed
  /// on the histogram's first observation: the explicit `bounds` if given,
  /// otherwise default_time_bounds_ms().  Later `bounds` are ignored.
  void observe(const std::string& name, double value,
               const std::vector<double>& bounds = {});

  /// Merged copy of every shard.
  MetricsSnapshot snapshot() const;

  /// Drops every metric (for tests and fresh runs).
  void clear();

  /// Default histogram bounds: exponential 0.001..~16k, tuned for
  /// durations in milliseconds.
  static const std::vector<double>& default_time_bounds_ms();

 private:
  struct Histogram {
    std::vector<double> bounds;
    std::vector<std::int64_t> counts;
    std::int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::map<std::string, std::int64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, Histogram> histograms;
  };

  Shard& shard_for(const std::string& name);

  std::deque<Shard> shards_;  // deque: Shard is immovable (owns a mutex)
};

}  // namespace spear::obs
