#include "obs/report.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "obs/json.h"

namespace spear::obs {

void RunReport::set(const std::string& key, const std::string& value) {
  meta_.emplace_back(key, "\"" + json_escape(value) + "\"");
}

void RunReport::set(const std::string& key, std::int64_t value) {
  meta_.emplace_back(key, std::to_string(value));
}

void RunReport::set(const std::string& key, double value) {
  meta_.emplace_back(key, json_number(value));
}

void RunReport::set(const std::string& key, bool value) {
  meta_.emplace_back(key, value ? "true" : "false");
}

std::string RunReport::to_json(const MetricsSnapshot* metrics) const {
  std::ostringstream os;
  os << "{\"name\":\"" << json_escape(name_) << "\",\"meta\":{";
  bool first = true;
  for (const auto& [key, value] : meta_) {
    os << (first ? "" : ",") << '"' << json_escape(key) << "\":" << value;
    first = false;
  }
  os << "}";
  if (metrics != nullptr) {
    os << ",\"metrics\":" << metrics->to_json();
  }
  os << "}\n";
  return os.str();
}

void RunReport::write(const std::string& path,
                      const MetricsSnapshot* metrics) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    throw std::runtime_error("RunReport: cannot open " + path);
  }
  const std::string json = to_json(metrics);
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
}

}  // namespace spear::obs
