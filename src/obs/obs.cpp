#include "obs/obs.h"

namespace spear::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

std::shared_ptr<MetricsRegistry>& metrics_slot() {
  static std::shared_ptr<MetricsRegistry> slot;
  return slot;
}

std::shared_ptr<TraceEventWriter>& trace_slot() {
  static std::shared_ptr<TraceEventWriter> slot;
  return slot;
}

void refresh_enabled() {
  detail::g_enabled.store(metrics_slot() != nullptr || trace_slot() != nullptr,
                          std::memory_order_relaxed);
}

}  // namespace

MetricsRegistry* metrics() { return metrics_slot().get(); }
TraceEventWriter* trace() { return trace_slot().get(); }

void install_metrics(std::shared_ptr<MetricsRegistry> registry) {
  metrics_slot() = std::move(registry);
  refresh_enabled();
}

void install_trace(std::shared_ptr<TraceEventWriter> writer) {
  trace_slot() = std::move(writer);
  refresh_enabled();
}

void shutdown() {
  if (auto& writer = trace_slot()) writer->close();
  trace_slot().reset();
  metrics_slot().reset();
  refresh_enabled();
}

void ScopedTimer::finish() {
  if (!active_) return;
  active_ = false;
  const auto end = std::chrono::steady_clock::now();
  const double ms = std::chrono::duration<double, std::milli>(end - start_)
                        .count();
  observe(name_ + ".ms", ms);
  if (with_trace_) {
    if (TraceEventWriter* tw = trace()) {
      const auto dur_us = std::chrono::duration_cast<std::chrono::microseconds>(
                              end - start_)
                              .count();
      tw->complete(name_, category_, tw->now_us() - dur_us, dur_us, args_);
    }
  }
}

}  // namespace spear::obs
