// TraceEventWriter: Chrome trace-event output for chrome://tracing and
// Perfetto (DESIGN.md §8).
//
// Events are written in the JSON Array Format, one event object per line —
// the file is simultaneously valid JSON and greppable JSONL.  Each OS
// thread that emits an event gets its own track: the writer assigns a
// stable small tid to every calling thread on first use, and threads can
// label their track with thread_name() (rendered by the trace viewers).
//
// Timestamps are microseconds since the writer was constructed, taken from
// the steady clock.  All emission goes through one mutex; callers are
// expected to emit coarse spans (per decision / per pool task / per epoch),
// not per-iteration events.

#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

namespace spear::obs {

class TraceEventWriter {
 public:
  /// Opens (truncates) `path` and writes the array opener.  Throws
  /// std::runtime_error on failure.
  explicit TraceEventWriter(const std::string& path);

  /// Calls close().
  ~TraceEventWriter();

  TraceEventWriter(const TraceEventWriter&) = delete;
  TraceEventWriter& operator=(const TraceEventWriter&) = delete;

  /// Writes the closing bracket and closes the file.  Idempotent.
  void close();

  /// Microseconds since construction (the ts domain of every event).
  std::int64_t now_us() const;

  /// Complete event ("ph":"X") on the calling thread's track.
  /// `args_json` is the body of the args object without braces, e.g.
  /// "\"depth\":3,\"budget\":100"; empty = no args.
  void complete(const std::string& name, const std::string& category,
                std::int64_t ts_us, std::int64_t dur_us,
                const std::string& args_json = "");

  /// Instant event ("ph":"i", thread scope) on the calling thread's track.
  void instant(const std::string& name, const std::string& category,
               const std::string& args_json = "");

  /// Counter event ("ph":"C") — plots `value` over time in the viewer.
  void counter(const std::string& name, double value);

  /// Names the calling thread's track (metadata event, emitted once per
  /// distinct name per thread).
  void thread_name(const std::string& name);

  /// Stable per-OS-thread track id (also useful for tests).
  static std::int64_t current_tid();

 private:
  void write_line(const std::string& line);

  std::FILE* file_ = nullptr;
  std::mutex mutex_;
  bool closed_ = false;
  std::chrono::steady_clock::time_point origin_;
};

}  // namespace spear::obs
