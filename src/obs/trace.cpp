#include "obs/trace.h"

#include <atomic>
#include <sstream>
#include <stdexcept>

#include "obs/json.h"

namespace spear::obs {

namespace {

std::int64_t next_tid() {
  static std::atomic<std::int64_t> counter{0};
  return ++counter;
}

}  // namespace

std::int64_t TraceEventWriter::current_tid() {
  thread_local const std::int64_t tid = next_tid();
  return tid;
}

TraceEventWriter::TraceEventWriter(const std::string& path)
    : origin_(std::chrono::steady_clock::now()) {
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    throw std::runtime_error("TraceEventWriter: cannot open " + path);
  }
  std::fputs("[\n", file_);
}

TraceEventWriter::~TraceEventWriter() { close(); }

void TraceEventWriter::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return;
  closed_ = true;
  if (file_ != nullptr) {
    // The trailing metadata event avoids a dangling comma, keeping the file
    // valid strict JSON (viewers also accept truncated traces).
    std::fputs("{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"trace_done\"}\n]\n",
               file_);
    std::fclose(file_);
    file_ = nullptr;
  }
}

std::int64_t TraceEventWriter::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

void TraceEventWriter::write_line(const std::string& line) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_ || file_ == nullptr) return;
  std::fputs(line.c_str(), file_);
}

void TraceEventWriter::complete(const std::string& name,
                                const std::string& category,
                                std::int64_t ts_us, std::int64_t dur_us,
                                const std::string& args_json) {
  std::ostringstream os;
  os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << current_tid() << ",\"ts\":"
     << ts_us << ",\"dur\":" << dur_us << ",\"name\":\"" << json_escape(name)
     << "\",\"cat\":\"" << json_escape(category) << "\",\"args\":{"
     << args_json << "}},\n";
  write_line(os.str());
}

void TraceEventWriter::instant(const std::string& name,
                               const std::string& category,
                               const std::string& args_json) {
  std::ostringstream os;
  os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":" << current_tid()
     << ",\"ts\":" << now_us() << ",\"name\":\"" << json_escape(name)
     << "\",\"cat\":\"" << json_escape(category) << "\",\"args\":{"
     << args_json << "}},\n";
  write_line(os.str());
}

void TraceEventWriter::counter(const std::string& name, double value) {
  std::ostringstream os;
  os << "{\"ph\":\"C\",\"pid\":1,\"tid\":" << current_tid() << ",\"ts\":"
     << now_us() << ",\"name\":\"" << json_escape(name)
     << "\",\"args\":{\"value\":" << json_number(value) << "}},\n";
  write_line(os.str());
}

void TraceEventWriter::thread_name(const std::string& name) {
  thread_local const TraceEventWriter* last_writer = nullptr;
  thread_local std::string last_named;
  if (last_writer == this && last_named == name) return;
  last_writer = this;
  last_named = name;
  std::ostringstream os;
  os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << current_tid()
     << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << json_escape(name)
     << "\"}},\n";
  write_line(os.str());
}

}  // namespace spear::obs
