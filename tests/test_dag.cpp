#include "dag/dag.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dag/generator.h"

namespace spear {
namespace {

TEST(DagBuilder, EmptyDag) {
  Dag dag = DagBuilder().build();
  EXPECT_TRUE(dag.empty());
  EXPECT_EQ(dag.num_tasks(), 0u);
  EXPECT_EQ(dag.num_edges(), 0u);
}

TEST(DagBuilder, SingleTask) {
  DagBuilder builder;
  const TaskId id = builder.add_task(5, ResourceVector{0.5, 0.5}, "solo");
  Dag dag = std::move(builder).build();
  EXPECT_EQ(dag.num_tasks(), 1u);
  EXPECT_EQ(dag.task(id).runtime, 5);
  EXPECT_EQ(dag.task(id).name, "solo");
  EXPECT_EQ(dag.sources(), std::vector<TaskId>{id});
  EXPECT_EQ(dag.sinks(), std::vector<TaskId>{id});
}

TEST(DagBuilder, IdsAreDense) {
  DagBuilder builder;
  EXPECT_EQ(builder.add_task(1, ResourceVector{0.1, 0.1}), 0);
  EXPECT_EQ(builder.add_task(1, ResourceVector{0.1, 0.1}), 1);
  EXPECT_EQ(builder.add_task(1, ResourceVector{0.1, 0.1}), 2);
}

TEST(DagBuilder, EdgesAndDegrees) {
  DagBuilder builder;
  const TaskId a = builder.add_task(1, ResourceVector{0.1, 0.1});
  const TaskId b = builder.add_task(1, ResourceVector{0.1, 0.1});
  const TaskId c = builder.add_task(1, ResourceVector{0.1, 0.1});
  builder.add_edge(a, b);
  builder.add_edge(a, c);
  builder.add_edge(b, c);
  Dag dag = std::move(builder).build();
  EXPECT_EQ(dag.num_edges(), 3u);
  EXPECT_EQ(dag.children(a).size(), 2u);
  EXPECT_EQ(dag.parents(c).size(), 2u);
  EXPECT_EQ(dag.sources(), std::vector<TaskId>{a});
  EXPECT_EQ(dag.sinks(), std::vector<TaskId>{c});
}

TEST(DagBuilder, DuplicateEdgeIgnored) {
  DagBuilder builder;
  const TaskId a = builder.add_task(1, ResourceVector{0.1, 0.1});
  const TaskId b = builder.add_task(1, ResourceVector{0.1, 0.1});
  builder.add_edge(a, b);
  builder.add_edge(a, b);
  Dag dag = std::move(builder).build();
  EXPECT_EQ(dag.num_edges(), 1u);
}

TEST(DagBuilder, RejectsNonPositiveRuntime) {
  DagBuilder builder;
  EXPECT_THROW(builder.add_task(0, ResourceVector{0.1, 0.1}),
               std::invalid_argument);
  EXPECT_THROW(builder.add_task(-3, ResourceVector{0.1, 0.1}),
               std::invalid_argument);
}

TEST(DagBuilder, RejectsNegativeDemand) {
  DagBuilder builder;
  EXPECT_THROW(builder.add_task(1, ResourceVector{-0.1, 0.1}),
               std::invalid_argument);
}

TEST(DagBuilder, RejectsNonFiniteDemand) {
  // NaN sails past the any_negative() check (NaN compares false against
  // everything), so add_task must reject non-finite components explicitly —
  // a NaN demand would otherwise poison every downstream makespan.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  DagBuilder builder;
  EXPECT_THROW(builder.add_task(1, ResourceVector{nan, 0.1}),
               std::invalid_argument);
  EXPECT_THROW(builder.add_task(1, ResourceVector{0.1, inf}),
               std::invalid_argument);
  EXPECT_THROW(builder.add_task(1, ResourceVector{-inf, 0.1}),
               std::invalid_argument);
}

TEST(DagBuilder, RejectsDimensionMismatch) {
  DagBuilder builder(3);
  EXPECT_THROW(builder.add_task(1, ResourceVector{0.1, 0.1}),
               std::invalid_argument);
}

TEST(DagBuilder, RejectsSelfEdge) {
  DagBuilder builder;
  const TaskId a = builder.add_task(1, ResourceVector{0.1, 0.1});
  EXPECT_THROW(builder.add_edge(a, a), std::invalid_argument);
}

TEST(DagBuilder, RejectsOutOfRangeEdge) {
  DagBuilder builder;
  builder.add_task(1, ResourceVector{0.1, 0.1});
  EXPECT_THROW(builder.add_edge(0, 5), std::invalid_argument);
  EXPECT_THROW(builder.add_edge(-1, 0), std::invalid_argument);
}

TEST(DagBuilder, DetectsCycle) {
  DagBuilder builder;
  const TaskId a = builder.add_task(1, ResourceVector{0.1, 0.1});
  const TaskId b = builder.add_task(1, ResourceVector{0.1, 0.1});
  const TaskId c = builder.add_task(1, ResourceVector{0.1, 0.1});
  builder.add_edge(a, b);
  builder.add_edge(b, c);
  builder.add_edge(c, a);
  EXPECT_THROW(std::move(builder).build(), std::invalid_argument);
}

TEST(Dag, TopologicalOrderRespectsEdges) {
  DagBuilder builder;
  const TaskId a = builder.add_task(1, ResourceVector{0.1, 0.1});
  const TaskId b = builder.add_task(1, ResourceVector{0.1, 0.1});
  const TaskId c = builder.add_task(1, ResourceVector{0.1, 0.1});
  const TaskId d = builder.add_task(1, ResourceVector{0.1, 0.1});
  builder.add_edge(a, b);
  builder.add_edge(a, c);
  builder.add_edge(b, d);
  builder.add_edge(c, d);
  Dag dag = std::move(builder).build();

  const auto& topo = dag.topological_order();
  ASSERT_EQ(topo.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < topo.size(); ++i) {
    pos[static_cast<std::size_t>(topo[i])] = i;
  }
  for (const auto& t : dag.tasks()) {
    for (TaskId child : dag.children(t.id)) {
      EXPECT_LT(pos[static_cast<std::size_t>(t.id)],
                pos[static_cast<std::size_t>(child)]);
    }
  }
}

TEST(Dag, TotalLoadAndRuntime) {
  DagBuilder builder;
  builder.add_task(2, ResourceVector{0.5, 0.1});
  builder.add_task(3, ResourceVector{0.2, 0.4});
  Dag dag = std::move(builder).build();
  EXPECT_EQ(dag.total_runtime(), 5);
  EXPECT_DOUBLE_EQ(dag.total_load(kCpu), 2 * 0.5 + 3 * 0.2);
  EXPECT_DOUBLE_EQ(dag.total_load(kMem), 2 * 0.1 + 3 * 0.4);
}

// Property: topological order is valid for any randomly generated DAG.
class RandomDagTopoTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomDagTopoTest, TopologicalOrderAlwaysValid) {
  Rng rng(GetParam());
  DagGeneratorOptions options;
  options.num_tasks = 60;
  Dag dag = generate_random_dag(options, rng);

  const auto& topo = dag.topological_order();
  ASSERT_EQ(topo.size(), dag.num_tasks());
  std::vector<std::size_t> pos(dag.num_tasks());
  for (std::size_t i = 0; i < topo.size(); ++i) {
    pos[static_cast<std::size_t>(topo[i])] = i;
  }
  for (const auto& t : dag.tasks()) {
    for (TaskId child : dag.children(t.id)) {
      EXPECT_LT(pos[static_cast<std::size_t>(t.id)],
                pos[static_cast<std::size_t>(child)]);
    }
  }
  // parents/children are mutually consistent.
  for (const auto& t : dag.tasks()) {
    for (TaskId child : dag.children(t.id)) {
      const auto& ps = dag.parents(child);
      EXPECT_NE(std::find(ps.begin(), ps.end(), t.id), ps.end());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagTopoTest,
                         ::testing::Values(1, 2, 3, 4, 5, 10, 99, 12345));

}  // namespace
}  // namespace spear
