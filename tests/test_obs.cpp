#include "obs/obs.h"

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace spear::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string temp_path(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir ? dir : "/tmp") + "/" + name;
}

TEST(MetricsRegistry, CountersGaugesAndHistograms) {
  MetricsRegistry registry;
  registry.add("a");
  registry.add("a", 4);
  registry.add("b", -2);
  registry.set("g", 1.5);
  registry.set("g", 2.5);  // last write wins
  registry.observe("h", 0.5, {1.0, 2.0});
  registry.observe("h", 1.5);  // bounds fixed on first observation
  registry.observe("h", 99.0);

  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("a"), 5);
  EXPECT_EQ(snap.counters.at("b"), -2);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g"), 2.5);

  const HistogramSnapshot& h = snap.histograms.at("h");
  EXPECT_EQ(h.count, 3);
  EXPECT_DOUBLE_EQ(h.sum, 101.0);
  EXPECT_DOUBLE_EQ(h.min, 0.5);
  EXPECT_DOUBLE_EQ(h.max, 99.0);
  ASSERT_EQ(h.bounds, (std::vector<double>{1.0, 2.0}));
  // 0.5 <= 1.0, 1.5 <= 2.0, 99 overflows into the trailing bucket.
  ASSERT_EQ(h.counts, (std::vector<std::int64_t>{1, 1, 1}));
  EXPECT_DOUBLE_EQ(h.mean(), 101.0 / 3.0);
}

TEST(MetricsRegistry, ClearDropsEverything) {
  MetricsRegistry registry;
  registry.add("x");
  registry.set("y", 1.0);
  registry.observe("z", 1.0);
  registry.clear();
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST(MetricsRegistry, ConcurrentWritersLoseNothing) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < kIncrements; ++i) {
        registry.add("shared");
        registry.add("per_thread_" + std::to_string(t));
        registry.observe("lat", static_cast<double>(i % 7));
      }
    });
  }
  for (auto& th : threads) th.join();

  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("shared"), kThreads * kIncrements);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(snap.counters.at("per_thread_" + std::to_string(t)),
              kIncrements);
  }
  EXPECT_EQ(snap.histograms.at("lat").count, kThreads * kIncrements);
}

TEST(MetricsSnapshot, JsonAndCsvRender) {
  MetricsRegistry registry;
  registry.add("runs", 3);
  registry.set("speed", 1.25);
  registry.observe("dur", 0.5, {1.0});

  const MetricsSnapshot snap = registry.snapshot();
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"runs\":3"), std::string::npos);
  EXPECT_NE(json.find("\"speed\":1.25"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\""), std::string::npos);

  const std::string csv = snap.to_csv();
  EXPECT_NE(csv.find("counter,runs,value,3"), std::string::npos);
  EXPECT_NE(csv.find("gauge,speed,value,1.25"), std::string::npos);
  EXPECT_NE(csv.find("histogram,dur,count,1"), std::string::npos);
}

TEST(TraceEventWriter, WritesValidEventsWithPerThreadTracks) {
  const std::string path = temp_path("spear_test_trace.json");
  std::int64_t main_tid = 0;
  std::int64_t other_tid = 0;
  {
    TraceEventWriter writer(path);
    writer.thread_name("main");
    writer.complete("span", "test", /*ts_us=*/10, /*dur_us=*/5,
                    "\"depth\":3");
    writer.instant("marker", "test");
    writer.counter("queue", 2.0);
    main_tid = TraceEventWriter::current_tid();
    std::thread other([&writer, &other_tid] {
      writer.thread_name("worker");
      writer.complete("span2", "test", 20, 7);
      other_tid = TraceEventWriter::current_tid();
    });
    other.join();
    writer.close();
  }
  EXPECT_NE(main_tid, other_tid);

  const std::string content = read_file(path);
  // Strict JSON array (the closer replaces the dangling comma problem
  // with a final metadata event).
  EXPECT_EQ(content.front(), '[');
  EXPECT_NE(content.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(content.find("\"name\":\"span\""), std::string::npos);
  EXPECT_NE(content.find("\"dur\":5"), std::string::npos);
  EXPECT_NE(content.find("\"args\":{\"depth\":3}"), std::string::npos);
  EXPECT_NE(content.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(content.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(content.find("thread_name"), std::string::npos);
  EXPECT_NE(content.find("\"worker\""), std::string::npos);
  EXPECT_EQ(content.substr(content.size() - 2), "]\n");
  std::remove(path.c_str());
}

TEST(TraceEventWriter, CloseIsIdempotent) {
  const std::string path = temp_path("spear_test_trace_close.json");
  TraceEventWriter writer(path);
  writer.instant("once", "test");
  writer.close();
  writer.close();  // no crash, no double-write
  const std::string content = read_file(path);
  EXPECT_EQ(content.find("]\n"), content.rfind("]\n"));
  std::remove(path.c_str());
}

TEST(TraceEventWriter, ThrowsOnUnwritablePath) {
  EXPECT_THROW(TraceEventWriter("/nonexistent-dir/trace.json"),
               std::runtime_error);
}

TEST(GlobalSink, DisabledByDefaultAndAfterShutdown) {
  shutdown();  // in case a prior test leaked state
  EXPECT_FALSE(enabled());
  EXPECT_EQ(metrics(), nullptr);
  EXPECT_EQ(trace(), nullptr);
  // Shorthands must be safe no-ops without a registry.
  count("nothing");
  gauge("nothing", 1.0);
  observe("nothing", 1.0);
  { ScopedTimer timer("noop", "test"); EXPECT_FALSE(timer.active()); }

  install_metrics(std::make_shared<MetricsRegistry>());
  EXPECT_TRUE(enabled());
  shutdown();
  EXPECT_FALSE(enabled());
  EXPECT_EQ(metrics(), nullptr);
}

TEST(GlobalSink, ScopedTimerRecordsHistogramAndTrace) {
  const std::string path = temp_path("spear_test_scoped_timer.json");
  install_metrics(std::make_shared<MetricsRegistry>());
  install_trace(std::make_shared<TraceEventWriter>(path));
  {
    ScopedTimer timer("unit.work", "test");
    EXPECT_TRUE(timer.active());
    timer.set_args("\"k\":1");
  }
  {
    ScopedTimer metrics_only("unit.quiet", "test", /*with_trace=*/false);
  }
  count("unit.count", 2);

  const MetricsSnapshot snap = metrics()->snapshot();
  EXPECT_EQ(snap.histograms.at("unit.work.ms").count, 1);
  EXPECT_EQ(snap.histograms.at("unit.quiet.ms").count, 1);
  EXPECT_EQ(snap.counters.at("unit.count"), 2);
  shutdown();
  EXPECT_FALSE(enabled());

  const std::string content = read_file(path);
  EXPECT_NE(content.find("\"name\":\"unit.work\""), std::string::npos);
  EXPECT_NE(content.find("\"args\":{\"k\":1}"), std::string::npos);
  // with_trace=false spans must not appear in the trace.
  EXPECT_EQ(content.find("unit.quiet"), std::string::npos);
  std::remove(path.c_str());
}

TEST(GlobalSink, FinishEndsSpanEarlyAndIsIdempotent) {
  install_metrics(std::make_shared<MetricsRegistry>());
  {
    ScopedTimer timer("early", "test", /*with_trace=*/false);
    timer.finish();
    timer.finish();  // destructor must then be a no-op too
  }
  const MetricsSnapshot snap = metrics()->snapshot();
  EXPECT_EQ(snap.histograms.at("early.ms").count, 1);
  shutdown();
}

TEST(RunReport, RendersMetaAndMetrics) {
  RunReport report("bench_x");
  report.set("jobs", static_cast<std::int64_t>(4));
  report.set("rate", 0.25);
  report.set("label", "trial \"A\"");
  report.set("paper", true);

  MetricsRegistry registry;
  registry.add("runs", 2);
  const MetricsSnapshot snap = registry.snapshot();

  const std::string json = report.to_json(&snap);
  EXPECT_NE(json.find("\"name\":\"bench_x\""), std::string::npos);
  EXPECT_NE(json.find("\"jobs\":4"), std::string::npos);
  EXPECT_NE(json.find("\"rate\":0.25"), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"trial \\\"A\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"paper\":true"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":"), std::string::npos);
  EXPECT_NE(json.find("\"runs\":2"), std::string::npos);
  // Without metrics the key is omitted entirely.
  EXPECT_EQ(report.to_json().find("\"metrics\""), std::string::npos);
}

TEST(RunReport, WriteProducesReadableFile) {
  const std::string path = temp_path("spear_test_report.json");
  RunReport report("bench_y");
  report.set("seed", static_cast<std::int64_t>(7));
  report.write(path);
  const std::string content = read_file(path);
  EXPECT_NE(content.find("\"name\":\"bench_y\""), std::string::npos);
  EXPECT_NE(content.find("\"seed\":7"), std::string::npos);
  std::remove(path.c_str());
  EXPECT_THROW(report.write("/nonexistent-dir/report.json"),
               std::runtime_error);
}

}  // namespace
}  // namespace spear::obs
