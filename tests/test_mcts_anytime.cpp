// Anytime (wall-clock budgeted) and failure-aware MCTS behavior.

#include <chrono>
#include <memory>
#include <thread>

#include <gtest/gtest.h>

#include "mcts/mcts.h"
#include "support/builders.h"

namespace spear {
namespace {

ResourceVector cap() { return ResourceVector{1.0, 1.0}; }

TEST(AnytimeMcts, RejectsNegativeTimeBudget) {
  MctsOptions options;
  options.time_budget_ms = -1;
  EXPECT_THROW(MctsScheduler{options}, std::invalid_argument);
}

TEST(AnytimeMcts, TinyBudgetStillReturnsAValidSchedule) {
  MctsOptions options;
  options.initial_budget = 100000;  // would take far longer than 1 ms
  options.min_budget = 100000;
  options.time_budget_ms = 1;
  MctsScheduler scheduler(options);

  const Dag dag = testing::make_independent(8, 4);
  const Schedule schedule = scheduler.schedule(dag, cap());
  EXPECT_EQ(schedule.validate(dag, cap()), std::nullopt);
  const auto& stats = scheduler.last_stats();
  EXPECT_GT(stats.decisions, 0);
  // The huge iteration budget cannot complete within 1 ms per decision.
  EXPECT_GT(stats.deadline_cutoffs + stats.degradations, 0);
}

/// A guide whose evaluation alone outlasts any 1 ms decision deadline —
/// forces the degradation path (zero completed iterations).
class SlowGuide : public DecisionPolicy {
 public:
  std::vector<std::pair<int, double>> action_weights(
      const SchedulingEnv& env) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return random_.action_weights(env);
  }

 private:
  RandomDecisionPolicy random_;
};

TEST(AnytimeMcts, DegradesToFallbackWhenTheGuideEatsTheBudget) {
  MctsOptions options;
  options.time_budget_ms = 1;
  options.fallback = std::make_shared<CpDecisionPolicy>();
  MctsScheduler scheduler(options, std::make_shared<SlowGuide>());

  const Dag dag = testing::make_diamond(3, 4, 5, 2);
  const Schedule schedule = scheduler.schedule(dag, cap());
  EXPECT_EQ(schedule.validate(dag, cap()), std::nullopt);
  const auto& stats = scheduler.last_stats();
  EXPECT_GT(stats.degradations, 0);
  EXPECT_EQ(stats.iterations, 0);  // nothing ever completed in time
}

TEST(AnytimeMcts, ZeroTimeBudgetStaysDeterministic) {
  const Dag dag = testing::make_diamond(2, 5, 3, 4);
  MctsOptions options;
  options.initial_budget = 200;
  options.min_budget = 50;
  options.seed = 7;

  const Schedule a = MctsScheduler(options).schedule(dag, cap());
  const Schedule b = MctsScheduler(options).schedule(dag, cap());
  ASSERT_EQ(a.placements().size(), b.placements().size());
  for (std::size_t i = 0; i < a.placements().size(); ++i) {
    EXPECT_EQ(a.placements()[i].task, b.placements()[i].task);
    EXPECT_EQ(a.placements()[i].start, b.placements()[i].start);
  }
}

TEST(FaultMcts, SearchUnderFaultsProducesAValidatedSchedule) {
  FaultOptions fault_options;
  fault_options.fault_rate = 0.3;
  fault_options.seed = 5;
  auto injector =
      std::make_shared<const FaultInjector>(fault_options, cap());

  MctsOptions options;
  options.initial_budget = 100;
  options.min_budget = 50;
  options.faults = injector;
  options.retry.max_retries = 5;
  MctsScheduler scheduler(options);

  const Dag dag = testing::make_independent(6, 5);
  const Schedule schedule = scheduler.schedule(dag, cap());
  EXPECT_EQ(schedule.validate_under_faults(dag, cap(), *injector),
            std::nullopt);

  std::int64_t failed_attempts = 0;
  for (const auto& a : schedule.attempts()) {
    if (!a.completed) ++failed_attempts;
  }
  const auto& stats = scheduler.last_stats();
  EXPECT_EQ(stats.task_failures, failed_attempts);
  EXPECT_EQ(stats.task_retries, failed_attempts);  // no aborts: all retried
}

TEST(FaultMcts, FaultAwareSearchIsReplayable) {
  FaultOptions fault_options;
  fault_options.fault_rate = 0.2;
  fault_options.straggler_rate = 0.2;
  fault_options.seed = 9;
  auto injector =
      std::make_shared<const FaultInjector>(fault_options, cap());

  MctsOptions options;
  options.initial_budget = 80;
  options.min_budget = 40;
  options.faults = injector;

  const Dag dag = testing::make_diamond(3, 4, 5, 2);
  const Schedule a = MctsScheduler(options).schedule(dag, cap());
  const Schedule b = MctsScheduler(options).schedule(dag, cap());
  ASSERT_EQ(a.attempts().size(), b.attempts().size());
  for (std::size_t i = 0; i < a.attempts().size(); ++i) {
    EXPECT_EQ(a.attempts()[i].task, b.attempts()[i].task);
    EXPECT_EQ(a.attempts()[i].start, b.attempts()[i].start);
    EXPECT_EQ(a.attempts()[i].duration, b.attempts()[i].duration);
  }
}

}  // namespace
}  // namespace spear
