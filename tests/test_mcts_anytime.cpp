// Anytime (wall-clock budgeted) and failure-aware MCTS behavior.

#include <chrono>
#include <memory>
#include <thread>

#include <gtest/gtest.h>

#include "mcts/mcts.h"
#include "support/builders.h"

namespace spear {
namespace {

ResourceVector cap() { return ResourceVector{1.0, 1.0}; }

TEST(AnytimeMcts, RejectsNegativeTimeBudget) {
  MctsOptions options;
  options.time_budget_ms = -1;
  EXPECT_THROW(MctsScheduler{options}, std::invalid_argument);
}

TEST(AnytimeMcts, TinyBudgetStillReturnsAValidSchedule) {
  MctsOptions options;
  options.initial_budget = 100000;  // would take far longer than 1 ms
  options.min_budget = 100000;
  options.time_budget_ms = 1;
  MctsScheduler scheduler(options);

  const Dag dag = testing::make_independent(8, 4);
  const Schedule schedule = scheduler.schedule(dag, cap());
  EXPECT_EQ(schedule.validate(dag, cap()), std::nullopt);
  const auto& stats = scheduler.last_stats();
  EXPECT_GT(stats.decisions, 0);
  // The huge iteration budget cannot complete within 1 ms per decision.
  EXPECT_GT(stats.deadline_cutoffs + stats.degradations, 0);
}

/// A guide whose evaluation alone outlasts any 1 ms decision deadline —
/// forces the degradation path (zero completed iterations).
class SlowGuide : public DecisionPolicy {
 public:
  std::vector<std::pair<int, double>> action_weights(
      const SchedulingEnv& env) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return random_.action_weights(env);
  }

 private:
  RandomDecisionPolicy random_;
};

TEST(AnytimeMcts, DegradesToFallbackWhenTheGuideEatsTheBudget) {
  MctsOptions options;
  options.time_budget_ms = 1;
  options.fallback = std::make_shared<CpDecisionPolicy>();
  MctsScheduler scheduler(options, std::make_shared<SlowGuide>());

  const Dag dag = testing::make_diamond(3, 4, 5, 2);
  const Schedule schedule = scheduler.schedule(dag, cap());
  EXPECT_EQ(schedule.validate(dag, cap()), std::nullopt);
  const auto& stats = scheduler.last_stats();
  EXPECT_GT(stats.degradations, 0);
  EXPECT_EQ(stats.iterations, 0);  // nothing ever completed in time
}

TEST(AnytimeMcts, ZeroTimeBudgetStaysDeterministic) {
  const Dag dag = testing::make_diamond(2, 5, 3, 4);
  MctsOptions options;
  options.initial_budget = 200;
  options.min_budget = 50;
  options.seed = 7;

  const Schedule a = MctsScheduler(options).schedule(dag, cap());
  const Schedule b = MctsScheduler(options).schedule(dag, cap());
  ASSERT_EQ(a.placements().size(), b.placements().size());
  for (std::size_t i = 0; i < a.placements().size(); ++i) {
    EXPECT_EQ(a.placements()[i].task, b.placements()[i].task);
    EXPECT_EQ(a.placements()[i].start, b.placements()[i].start);
  }
}

TEST(FaultMcts, SearchUnderFaultsProducesAValidatedSchedule) {
  FaultOptions fault_options;
  fault_options.fault_rate = 0.3;
  fault_options.seed = 5;
  auto injector =
      std::make_shared<const FaultInjector>(fault_options, cap());

  MctsOptions options;
  options.initial_budget = 100;
  options.min_budget = 50;
  options.faults = injector;
  options.retry.max_retries = 5;
  MctsScheduler scheduler(options);

  const Dag dag = testing::make_independent(6, 5);
  const Schedule schedule = scheduler.schedule(dag, cap());
  EXPECT_EQ(schedule.validate_under_faults(dag, cap(), *injector),
            std::nullopt);

  std::int64_t failed_attempts = 0;
  for (const auto& a : schedule.attempts()) {
    if (!a.completed) ++failed_attempts;
  }
  const auto& stats = scheduler.last_stats();
  EXPECT_EQ(stats.task_failures, failed_attempts);
  EXPECT_EQ(stats.task_retries, failed_attempts);  // no aborts: all retried
}

TEST(FaultMcts, SpeculativeFaultTelemetryIsCounted) {
  FaultOptions fault_options;
  fault_options.fault_rate = 0.3;
  fault_options.seed = 5;
  auto injector =
      std::make_shared<const FaultInjector>(fault_options, cap());

  MctsOptions options;
  options.initial_budget = 100;
  options.min_budget = 50;
  options.faults = injector;
  options.retry.max_retries = 5;
  MctsScheduler scheduler(options);

  const Dag dag = testing::make_independent(6, 5);
  scheduler.schedule(dag, cap());
  const auto& stats = scheduler.last_stats();
  // At a 30% per-attempt rate the search's expansion/rollout states must
  // observe failures; every counted failure was retried (budget 5 is ample).
  EXPECT_GT(stats.search_failures, 0);
  EXPECT_GT(stats.search_retries, 0);
  EXPECT_GE(stats.search_failures,
            stats.search_retries + stats.search_aborts);
}

TEST(FaultMcts, ParallelSearchKeepsPerWorkerFaultTelemetry) {
  // The root-parallel merge must fold each worker's speculative fault
  // counters into the scheduler Stats — before the merge was extended,
  // search-time fault events at num_threads > 1 were silently dropped.
  FaultOptions fault_options;
  fault_options.fault_rate = 0.3;
  fault_options.seed = 5;
  auto injector =
      std::make_shared<const FaultInjector>(fault_options, cap());

  MctsOptions options;
  options.initial_budget = 100;
  options.min_budget = 50;
  options.faults = injector;
  options.retry.max_retries = 5;
  options.num_threads = 3;
  MctsScheduler scheduler(options);

  const Dag dag = testing::make_independent(6, 5);
  const Schedule schedule = scheduler.schedule(dag, cap());
  EXPECT_EQ(schedule.validate_under_faults(dag, cap(), *injector),
            std::nullopt);

  const auto& stats = scheduler.last_stats();
  EXPECT_GT(stats.search_failures, 0);
  EXPECT_GT(stats.search_retries, 0);

  // The real-trajectory counters are unaffected by the worker merge: they
  // still match the schedule's failed attempts exactly.
  std::int64_t failed_attempts = 0;
  for (const auto& a : schedule.attempts()) {
    if (!a.completed) ++failed_attempts;
  }
  EXPECT_EQ(stats.task_failures, failed_attempts);
  EXPECT_EQ(stats.task_retries, failed_attempts);
}

TEST(AnytimeMcts, ParallelWorkersHonorTheDecisionDeadline) {
  MctsOptions options;
  options.initial_budget = 100000;  // unreachable within 1 ms
  options.min_budget = 100000;
  options.time_budget_ms = 1;
  options.num_threads = 4;
  MctsScheduler scheduler(options);

  const Dag dag = testing::make_independent(8, 4);
  const auto start = std::chrono::steady_clock::now();
  const Schedule schedule = scheduler.schedule(dag, cap());
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(schedule.validate(dag, cap()), std::nullopt);
  const auto& stats = scheduler.last_stats();
  // Workers check the deadline inside their iteration loops, so the huge
  // iteration budget must be truncated at (nearly) every decision...
  EXPECT_GT(stats.deadline_cutoffs + stats.degradations, 0);
  EXPECT_LT(stats.iterations, 100000 * stats.decisions);
  // ...keeping the whole schedule within a small multiple of
  // decisions x 1 ms (generous slack for slow CI machines).
  EXPECT_LT(elapsed, 5.0);
}

/// Cloneable SlowGuide: leaf-parallel search requires clone() (otherwise it
/// silently stays serial), so the deadline x leaf-mode interplay needs a
/// guide that is both slow and cloneable.
class CloneableSlowGuide : public DecisionPolicy {
 public:
  std::vector<std::pair<int, double>> action_weights(
      const SchedulingEnv& env) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return random_.action_weights(env);
  }
  std::shared_ptr<DecisionPolicy> clone() const override {
    return std::make_shared<CloneableSlowGuide>();
  }

 private:
  RandomDecisionPolicy random_;
};

TEST(AnytimeMcts, LeafModeDeadlineSmallerThanOneTickFallsBack) {
  // One evaluator tick includes a guide evaluation (20 ms here), so a 1 ms
  // budget can never finish a tick: every decision must degrade to the
  // fallback heuristic instead of stalling in the evaluator.
  MctsOptions options;
  options.time_budget_ms = 1;
  options.search_mode = SearchMode::kLeaf;
  options.num_threads = 2;
  MctsScheduler scheduler(options, std::make_shared<CloneableSlowGuide>());

  const Dag dag = testing::make_diamond(3, 4, 5, 2);
  const auto start = std::chrono::steady_clock::now();
  const Schedule schedule = scheduler.schedule(dag, cap());
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  EXPECT_EQ(schedule.validate(dag, cap()), std::nullopt);
  const auto& stats = scheduler.last_stats();
  EXPECT_EQ(stats.iterations, 0);  // not one tick completed in time
  EXPECT_GT(stats.degradations, 0);
  EXPECT_EQ(stats.degradations, stats.decisions - stats.forced_decisions);
  EXPECT_LT(elapsed, 10.0);  // degraded promptly; no evaluator stall
}

TEST(AnytimeMcts, LeafModeDegradationCountersAreWorkerCountInvariant) {
  // The deadline/degradation accounting must reconcile identically at 1, 2,
  // and 4 workers: with the guide eating the whole budget, every searched
  // decision degrades regardless of how many workers wait on the evaluator,
  // and the fallback trajectory (deterministic heuristic) is the same.
  const Dag dag = testing::make_diamond(3, 4, 5, 2);
  std::int64_t baseline_decisions = -1;
  std::int64_t baseline_degradations = -1;
  for (const int workers : {1, 2, 4}) {
    MctsOptions options;
    options.time_budget_ms = 1;
    options.search_mode = SearchMode::kLeaf;
    options.num_threads = workers;
    MctsScheduler scheduler(options,
                            std::make_shared<CloneableSlowGuide>());
    const Schedule schedule = scheduler.schedule(dag, cap());
    EXPECT_EQ(schedule.validate(dag, cap()), std::nullopt);

    const auto& stats = scheduler.last_stats();
    EXPECT_EQ(stats.iterations, 0) << "workers=" << workers;
    if (baseline_decisions < 0) {
      baseline_decisions = stats.decisions;
      baseline_degradations = stats.degradations;
      EXPECT_GT(baseline_degradations, 0);
    } else {
      EXPECT_EQ(stats.decisions, baseline_decisions)
          << "workers=" << workers;
      EXPECT_EQ(stats.degradations, baseline_degradations)
          << "workers=" << workers;
    }
  }
}

TEST(FaultMcts, FaultAwareSearchIsReplayable) {
  FaultOptions fault_options;
  fault_options.fault_rate = 0.2;
  fault_options.straggler_rate = 0.2;
  fault_options.seed = 9;
  auto injector =
      std::make_shared<const FaultInjector>(fault_options, cap());

  MctsOptions options;
  options.initial_budget = 80;
  options.min_budget = 40;
  options.faults = injector;

  const Dag dag = testing::make_diamond(3, 4, 5, 2);
  const Schedule a = MctsScheduler(options).schedule(dag, cap());
  const Schedule b = MctsScheduler(options).schedule(dag, cap());
  ASSERT_EQ(a.attempts().size(), b.attempts().size());
  for (std::size_t i = 0; i < a.attempts().size(); ++i) {
    EXPECT_EQ(a.attempts()[i].task, b.attempts()[i].task);
    EXPECT_EQ(a.attempts()[i].start, b.attempts()[i].start);
    EXPECT_EQ(a.attempts()[i].duration, b.attempts()[i].duration);
  }
}

}  // namespace
}  // namespace spear
