#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dag/generator.h"
#include "sched/critical_path.h"
#include "sched/list_scheduler.h"
#include "sched/random_scheduler.h"
#include "sched/sjf.h"
#include "sched/tetris.h"
#include "support/builders.h"

namespace spear {
namespace {

ResourceVector cap() { return ResourceVector{1.0, 1.0}; }

TEST(ListScheduler, RejectsNullPriority) {
  EXPECT_THROW(ListScheduler("x", nullptr), std::invalid_argument);
}

TEST(ListScheduler, SingleTask) {
  auto sjf = make_sjf_scheduler();
  Dag dag = testing::make_chain({5});
  EXPECT_EQ(validated_makespan(*sjf, dag, cap()), 5);
}

TEST(ListScheduler, ChainIsSequential) {
  auto sjf = make_sjf_scheduler();
  Dag dag = testing::make_chain({2, 3, 4});
  EXPECT_EQ(validated_makespan(*sjf, dag, cap()), 9);
}

TEST(ListScheduler, PacksIndependentTasksInPairs) {
  // 4 identical tasks of demand 0.5 on capacity 1.0: two waves.
  auto sjf = make_sjf_scheduler();
  Dag dag = testing::make_independent(4, 5, ResourceVector{0.5, 0.5});
  EXPECT_EQ(validated_makespan(*sjf, dag, cap()), 10);
}

TEST(ListScheduler, WorkConservingFillsLeftoverCapacity) {
  // One big task (0.7) and two small (0.3): small ones share the gap.
  DagBuilder builder;
  builder.add_task(10, ResourceVector{0.7, 0.7});
  builder.add_task(10, ResourceVector{0.3, 0.3});
  builder.add_task(10, ResourceVector{0.3, 0.3});
  Dag dag = std::move(builder).build();
  auto sjf = make_sjf_scheduler();
  // big+small at t=0, second small at t=10.
  EXPECT_EQ(validated_makespan(*sjf, dag, cap()), 20);
}

TEST(Sjf, PrefersShortTask) {
  // Two ready tasks that cannot run together; SJF starts the short one.
  DagBuilder builder;
  const TaskId long_task = builder.add_task(9, ResourceVector{0.8, 0.8});
  const TaskId short_task = builder.add_task(2, ResourceVector{0.8, 0.8});
  Dag dag = std::move(builder).build();
  auto sjf = make_sjf_scheduler();
  Schedule s = sjf->schedule(dag, cap());
  EXPECT_EQ(s.start_of(short_task), 0);
  EXPECT_EQ(s.start_of(long_task), 2);
}

TEST(CriticalPath, PrefersLongChainHead) {
  // head(1) -> tail(9): b-level(head) = 10.  lone(5) has b-level 5.
  // They cannot run together; CP starts the chain head first.
  DagBuilder builder;
  const TaskId head = builder.add_task(1, ResourceVector{0.8, 0.8});
  const TaskId tail = builder.add_task(9, ResourceVector{0.8, 0.8});
  const TaskId lone = builder.add_task(5, ResourceVector{0.8, 0.8});
  builder.add_edge(head, tail);
  Dag dag = std::move(builder).build();
  auto cp = make_critical_path_scheduler();
  Schedule s = cp->schedule(dag, cap());
  EXPECT_EQ(s.start_of(head), 0);
  // At t=1 tail (b-level 9) outranks lone (5): lone runs last.
  EXPECT_EQ(s.start_of(tail), 1);
  EXPECT_EQ(s.start_of(lone), 10);
}

TEST(CriticalPath, BeatsSjfOnChainVsShortTask) {
  // lone(2) vs head(3)->tail(20), demands prevent co-running.
  // CP: head first -> makespan 3 + 20 = 23 (lone fits nowhere parallel)
  //   => schedule: head [0,3), lone [3,5)... tail ready at 3, CP order
  //      tail(b=20) > lone(2): tail [3,23), lone [23,25)? lone can't run
  //      with tail (0.8 + 0.8 > 1)... => CP makespan 25.
  // SJF: lone first [0,2), head [2,5), tail [5,25) => 25.  Equal here, so
  // use co-runnable lone: lone demand 0.15 runs beside tail.
  DagBuilder builder;
  const TaskId lone = builder.add_task(2, ResourceVector{0.15, 0.15});
  const TaskId head = builder.add_task(3, ResourceVector{0.9, 0.9});
  const TaskId tail = builder.add_task(20, ResourceVector{0.8, 0.8});
  builder.add_edge(head, tail);
  Dag dag = std::move(builder).build();

  auto cp = make_critical_path_scheduler();
  auto sjf = make_sjf_scheduler();
  const Schedule cp_schedule = cp->schedule(dag, cap());
  const Time sjf_makespan = validated_makespan(*sjf, dag, cap());
  // CP: head [0,3) (lone does not fit beside 0.9), tail [3,23), lone beside
  // tail [3,5) -> 23.  SJF: lone [0,2), head [2,5), tail [5,25) -> 25.
  EXPECT_EQ(cp_schedule.makespan(dag), 23);
  EXPECT_EQ(cp_schedule.start_of(lone), 3);
  EXPECT_EQ(sjf_makespan, 25);
}

TEST(Tetris, AlignmentScoreMatchesDotProduct) {
  auto dag = std::make_shared<Dag>(
      testing::make_independent(2, 3, ResourceVector{0.6, 0.2}));
  EnvOptions options;
  options.max_ready = 2;
  SchedulingEnv env(dag, cap(), options);
  EXPECT_DOUBLE_EQ(tetris_alignment(env, 0), 0.6 * 1.0 + 0.2 * 1.0);
  env.step(0);
  EXPECT_DOUBLE_EQ(tetris_alignment(env, 1), 0.6 * 0.4 + 0.2 * 0.8);
}

TEST(Tetris, PicksBestAligningTask) {
  // After a CPU-heavy task runs, memory is plentiful: Tetris prefers the
  // memory-heavy task over another CPU-heavy one.
  DagBuilder builder;
  const TaskId first = builder.add_task(10, ResourceVector{0.6, 0.1});
  const TaskId cpu_heavy = builder.add_task(10, ResourceVector{0.4, 0.1});
  const TaskId mem_heavy = builder.add_task(10, ResourceVector{0.1, 0.8});
  Dag dag = std::move(builder).build();
  auto tetris = make_tetris_scheduler();
  Schedule s = tetris->schedule(dag, cap());
  // first has the highest initial alignment (0.7 vs 0.5 vs 0.9)...
  // mem_heavy: 0.1 + 0.8 = 0.9 is actually highest; then with (0.9, 0.2)
  // available: first = 0.6*0.9 + 0.1*0.2 = 0.56, cpu_heavy = 0.38.
  EXPECT_EQ(s.start_of(mem_heavy), 0);
  EXPECT_EQ(s.start_of(first), 0);
  EXPECT_EQ(s.start_of(cpu_heavy), 10);
}

TEST(RandomScheduler, ProducesValidSchedules) {
  Rng rng(17);
  DagGeneratorOptions options;
  options.num_tasks = 40;
  Dag dag = generate_random_dag(options, rng);
  auto random = make_random_scheduler(99);
  EXPECT_GT(validated_makespan(*random, dag, cap()), 0);
}

TEST(RandomScheduler, DeterministicPerSeedInstance) {
  Rng rng(18);
  DagGeneratorOptions options;
  options.num_tasks = 30;
  Dag dag = generate_random_dag(options, rng);
  auto a = make_random_scheduler(5);
  auto b = make_random_scheduler(5);
  EXPECT_EQ(a->schedule(dag, cap()).makespan(dag),
            b->schedule(dag, cap()).makespan(dag));
}

TEST(Baselines, NamesAreStable) {
  EXPECT_EQ(make_sjf_scheduler()->name(), "SJF");
  EXPECT_EQ(make_critical_path_scheduler()->name(), "CP");
  EXPECT_EQ(make_tetris_scheduler()->name(), "Tetris");
  EXPECT_EQ(make_random_scheduler(1)->name(), "Random");
}

// Property: every baseline yields a valid schedule on random DAGs, and no
// schedule beats the critical-path lower bound.
class BaselineValidityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BaselineValidityTest, AllBaselinesValidAndAboveLowerBounds) {
  Rng rng(GetParam());
  DagGeneratorOptions options;
  options.num_tasks = 50;
  Dag dag = generate_random_dag(options, rng);
  DagFeatures features(dag);

  // Lower bounds: critical path, and per-resource total load / capacity.
  Time lower = features.critical_path();
  for (std::size_t r = 0; r < dag.resource_dims(); ++r) {
    lower = std::max(lower, static_cast<Time>(dag.total_load(r) / cap()[r]));
  }

  std::vector<std::unique_ptr<Scheduler>> schedulers;
  schedulers.push_back(make_sjf_scheduler());
  schedulers.push_back(make_critical_path_scheduler());
  schedulers.push_back(make_tetris_scheduler());
  schedulers.push_back(make_random_scheduler(GetParam()));
  for (auto& s : schedulers) {
    const Time makespan = validated_makespan(*s, dag, cap());
    EXPECT_GE(makespan, lower) << s->name();
    EXPECT_LE(makespan, dag.total_runtime()) << s->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineValidityTest,
                         ::testing::Values(21, 22, 23, 24, 25));

}  // namespace
}  // namespace spear
