#include "nn/loss.h"

#include <cmath>

#include <gtest/gtest.h>

namespace spear {
namespace {

TEST(Loss, SoftmaxRowsSumToOne) {
  const Matrix probs = softmax(Matrix::from_rows(2, 3, {1, 2, 3, -1, 0, 1}));
  for (std::size_t i = 0; i < 2; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < 3; ++j) sum += probs(i, j);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
  // Monotone in the logits.
  EXPECT_LT(probs(0, 0), probs(0, 1));
  EXPECT_LT(probs(0, 1), probs(0, 2));
}

TEST(Loss, CrossEntropyOfUniform) {
  Matrix probs(2, 4, 0.25);
  EXPECT_NEAR(cross_entropy(probs, {0, 3}), std::log(4.0), 1e-12);
}

TEST(Loss, CrossEntropyPerfectPrediction) {
  Matrix probs = Matrix::from_rows(1, 2, {1.0, 0.0});
  EXPECT_NEAR(cross_entropy(probs, {0}), 0.0, 1e-12);
}

TEST(Loss, CrossEntropyValidations) {
  Matrix probs(2, 3, 1.0 / 3);
  EXPECT_THROW(cross_entropy(probs, {0}), std::invalid_argument);
  EXPECT_THROW(cross_entropy(probs, {0, 5}), std::invalid_argument);
}

TEST(Loss, NllGradientIsProbMinusOnehot) {
  const Matrix probs = Matrix::from_rows(1, 3, {0.2, 0.5, 0.3});
  const Matrix g = nll_logit_gradient(probs, {1}, {1.0});
  EXPECT_DOUBLE_EQ(g(0, 0), 0.2);
  EXPECT_DOUBLE_EQ(g(0, 1), -0.5);
  EXPECT_DOUBLE_EQ(g(0, 2), 0.3);
}

TEST(Loss, NllGradientAppliesWeights) {
  const Matrix probs = Matrix::from_rows(2, 2, {0.6, 0.4, 0.1, 0.9});
  const Matrix g = nll_logit_gradient(probs, {0, 1}, {2.0, -1.0});
  EXPECT_DOUBLE_EQ(g(0, 0), 2.0 * (0.6 - 1.0));
  EXPECT_DOUBLE_EQ(g(0, 1), 2.0 * 0.4);
  EXPECT_DOUBLE_EQ(g(1, 0), -1.0 * 0.1);
  EXPECT_DOUBLE_EQ(g(1, 1), -1.0 * (0.9 - 1.0));
}

TEST(Loss, NllGradientValidations) {
  const Matrix probs(1, 2, 0.5);
  EXPECT_THROW(nll_logit_gradient(probs, {0, 1}, {1.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(nll_logit_gradient(probs, {0}, {1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(nll_logit_gradient(probs, {7}, {1.0}), std::invalid_argument);
}

TEST(Loss, LogSoftmaxAtMatchesDirectComputation) {
  const std::vector<double> logits = {1.0, 2.0, 0.5};
  double sum = 0.0;
  for (double x : logits) sum += std::exp(x);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    EXPECT_NEAR(log_softmax_at(logits, i), logits[i] - std::log(sum), 1e-12);
  }
}

TEST(Loss, LogSoftmaxAtStableForHugeLogits) {
  const std::vector<double> logits = {1000.0, 999.0};
  EXPECT_NEAR(log_softmax_at(logits, 0), -std::log(1 + std::exp(-1.0)),
              1e-9);
  EXPECT_FALSE(std::isnan(log_softmax_at(logits, 1)));
}

TEST(Loss, LogSoftmaxAtValidatesIndex) {
  EXPECT_THROW(log_softmax_at({1.0, 2.0}, 2), std::invalid_argument);
}

}  // namespace
}  // namespace spear
