// End-to-end coverage for more than two resource dimensions (CPU, memory,
// disk/network, ...).  Everything in the library is dimension-generic;
// these tests pin that down through the whole stack: generator -> features
// -> env/featurizer -> baselines -> Graphene -> MCTS.

#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dag/generator.h"
#include "env/featurizer.h"
#include "mcts/mcts.h"
#include "rl/policy.h"
#include "sched/critical_path.h"
#include "sched/graphene.h"
#include "sched/insertion.h"
#include "sched/sjf.h"
#include "sched/tetris.h"

namespace spear {
namespace {

ResourceVector cap3() { return ResourceVector{1.0, 1.0, 1.0}; }

Dag random_dag3(std::uint64_t seed, std::size_t tasks = 30) {
  DagGeneratorOptions options;
  options.num_tasks = tasks;
  options.resource_dims = 3;
  Rng rng(seed);
  return generate_random_dag(options, rng);
}

TEST(MultiResource, GeneratorProducesThreeDimDemands) {
  const Dag dag = random_dag3(1);
  for (const auto& t : dag.tasks()) {
    EXPECT_EQ(t.demand.dims(), 3u);
  }
  EXPECT_EQ(dag.resource_dims(), 3u);
}

TEST(MultiResource, FeaturesCoverEveryDimension) {
  const Dag dag = random_dag3(2);
  DagFeatures features(dag);
  for (const auto& t : dag.tasks()) {
    for (std::size_t r = 0; r < 3; ++r) {
      EXPECT_GE(features.b_load(t.id, r), 0.0);
    }
  }
}

TEST(MultiResource, BaselinesScheduleValidly) {
  const Dag dag = random_dag3(3);
  const DagFeatures features(dag);
  for (auto& s : {make_sjf_scheduler(), make_critical_path_scheduler(),
                  make_tetris_scheduler(), make_graphene_scheduler(),
                  make_insertion_scheduler()}) {
    const Time makespan = validated_makespan(*s, dag, cap3());
    EXPECT_GE(makespan, features.critical_path()) << s->name();
    EXPECT_LE(makespan, dag.total_runtime()) << s->name();
  }
}

TEST(MultiResource, ThirdDimensionActuallyConstrains) {
  // Two tasks that fit together on CPU/memory but clash on the third
  // resource must serialize.
  DagBuilder builder(3);
  builder.add_task(5, ResourceVector{0.2, 0.2, 0.8});
  builder.add_task(5, ResourceVector{0.2, 0.2, 0.8});
  Dag dag = std::move(builder).build();
  auto tetris = make_tetris_scheduler();
  EXPECT_EQ(validated_makespan(*tetris, dag, cap3()), 10);
  // Relaxing the third dimension lets them co-run.
  DagBuilder relaxed(3);
  relaxed.add_task(5, ResourceVector{0.2, 0.2, 0.4});
  relaxed.add_task(5, ResourceVector{0.2, 0.2, 0.4});
  Dag dag2 = std::move(relaxed).build();
  EXPECT_EQ(validated_makespan(*tetris, dag2, cap3()), 5);
}

TEST(MultiResource, MctsSchedulesValidly) {
  const Dag dag = random_dag3(4, 15);
  MctsOptions options;
  options.initial_budget = 40;
  options.min_budget = 10;
  MctsScheduler mcts(options);
  const DagFeatures features(dag);
  const Time makespan = validated_makespan(mcts, dag, cap3());
  EXPECT_GE(makespan, features.critical_path());
  EXPECT_LE(makespan, dag.total_runtime());
}

TEST(MultiResource, PolicyNetworkAdaptsInputWidth) {
  Rng rng(5);
  FeaturizerOptions featurizer;
  featurizer.max_ready = 4;
  featurizer.horizon = 6;
  Policy policy = Policy::make(featurizer, 3, rng, {16});
  // 6*3 (image) + 4*(4 + 2*3) (ready slots) + 3 (globals) = 61.
  EXPECT_EQ(policy.net().input_dim(), 61u);

  const auto dag = std::make_shared<Dag>(random_dag3(6, 10));
  EnvOptions env_options;
  env_options.max_ready = 4;
  SchedulingEnv env(dag, cap3(), env_options);
  Rng sampler(7);
  const Time makespan = policy.rollout_episode(env, sampler);
  EXPECT_GT(makespan, 0);
}

}  // namespace
}  // namespace spear
