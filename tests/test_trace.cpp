#include "trace/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "sched/tetris.h"
#include "trace/mapreduce.h"
#include "trace/trace_io.h"

namespace spear {
namespace {

ResourceVector cap() { return ResourceVector{1.0, 1.0}; }

TEST(Trace, GeneratesRequestedJobCount) {
  Rng rng(1);
  const auto jobs = generate_trace({}, rng);
  EXPECT_EQ(jobs.size(), 99u);  // paper: 99 jobs
}

TEST(Trace, StageSizesWithinPaperBounds) {
  Rng rng(2);
  TraceOptions options;
  const auto jobs = generate_trace(options, rng);
  for (const auto& job : jobs) {
    EXPECT_GE(job.num_map(), options.min_tasks_per_stage);
    EXPECT_LE(job.num_map(), options.max_map_tasks);
    EXPECT_GE(job.num_reduce(), options.min_tasks_per_stage);
    EXPECT_LE(job.num_reduce(), options.max_reduce_tasks);
  }
}

TEST(Trace, RuntimesPositiveAndBounded) {
  Rng rng(3);
  TraceOptions options;
  const auto jobs = generate_trace(options, rng);
  for (const auto& job : jobs) {
    for (Time t : job.map_runtimes) {
      EXPECT_GE(t, 1);
      EXPECT_LE(t, options.max_task_runtime);
    }
    for (Time t : job.reduce_runtimes) {
      EXPECT_GE(t, 1);
      EXPECT_LE(t, options.max_task_runtime);
    }
  }
}

TEST(Trace, ReduceDemandsDominateMapDemands) {
  Rng rng(4);
  TraceOptions options;
  const auto jobs = generate_trace(options, rng);
  double map_sum = 0.0, reduce_sum = 0.0;
  for (const auto& job : jobs) {
    map_sum += job.map_demand.sum();
    reduce_sum += job.reduce_demand.sum();
  }
  EXPECT_GT(reduce_sum, map_sum);
}

TEST(Trace, StatsLandNearPaperTargets) {
  Rng rng(5);
  TraceOptions options;
  const auto jobs = generate_trace(options, rng);
  const auto stats = compute_trace_stats(jobs);
  // Medians within a loose band around the Fig. 9 values.
  EXPECT_NEAR(stats.median_map_tasks, 14.0, 4.0);
  EXPECT_NEAR(stats.median_reduce_tasks, 17.0, 5.0);
  EXPECT_GT(stats.median_map_runtime, stats.median_reduce_runtime);
  EXPECT_NEAR(stats.median_map_runtime, 73.0, 35.0);
  EXPECT_NEAR(stats.median_reduce_runtime, 32.0, 16.0);
}

TEST(Trace, DeterministicGivenSeed) {
  Rng a(6), b(6);
  const auto ja = generate_trace({}, a);
  const auto jb = generate_trace({}, b);
  ASSERT_EQ(ja.size(), jb.size());
  for (std::size_t i = 0; i < ja.size(); ++i) {
    EXPECT_EQ(ja[i].map_runtimes, jb[i].map_runtimes);
    EXPECT_EQ(ja[i].reduce_runtimes, jb[i].reduce_runtimes);
  }
}

TEST(Trace, RejectsBadOptions) {
  Rng rng(7);
  TraceOptions bad;
  bad.num_jobs = 0;
  EXPECT_THROW(generate_trace(bad, rng), std::invalid_argument);
  bad = {};
  bad.min_tasks_per_stage = 50;
  EXPECT_THROW(generate_trace(bad, rng), std::invalid_argument);
}

TEST(Trace, EmptyStatsAreZero) {
  const auto stats = compute_trace_stats({});
  EXPECT_DOUBLE_EQ(stats.median_map_tasks, 0.0);
  EXPECT_EQ(stats.max_map_tasks, 0u);
}

TEST(MapReduceDag, StructureIsTwoStageWithShuffleBarrier) {
  MapReduceJob job;
  job.job_id = "j";
  job.map_runtimes = {3, 4};
  job.reduce_runtimes = {5, 6, 7};
  job.map_demand = ResourceVector{0.1, 0.1};
  job.reduce_demand = ResourceVector{0.2, 0.3};
  const Dag dag = mapreduce_to_dag(job);

  ASSERT_EQ(dag.num_tasks(), 5u);
  EXPECT_EQ(dag.num_edges(), 6u);  // 2 maps x 3 reduces
  // Maps are sources with all reduces as children.
  for (TaskId m = 0; m < 2; ++m) {
    EXPECT_TRUE(dag.parents(m).empty());
    EXPECT_EQ(dag.children(m).size(), 3u);
    EXPECT_EQ(dag.task(m).runtime, job.map_runtimes[static_cast<std::size_t>(m)]);
    EXPECT_TRUE(dag.task(m).demand == job.map_demand);
  }
  for (TaskId r = 2; r < 5; ++r) {
    EXPECT_EQ(dag.parents(r).size(), 2u);
    EXPECT_TRUE(dag.children(r).empty());
    EXPECT_TRUE(dag.task(r).demand == job.reduce_demand);
  }
}

TEST(MapReduceDag, SchedulableByBaselines) {
  Rng rng(8);
  TraceOptions options;
  options.num_jobs = 3;
  const auto jobs = generate_trace(options, rng);
  auto tetris = make_tetris_scheduler();
  for (const auto& job : jobs) {
    const Dag dag = mapreduce_to_dag(job);
    const Time makespan = validated_makespan(*tetris, dag, cap());
    EXPECT_GT(makespan, 0);
  }
}

TEST(TraceIo, RoundTripPreservesJobs) {
  Rng rng(9);
  TraceOptions options;
  options.num_jobs = 5;
  const auto jobs = generate_trace(options, rng);
  const std::string path = ::testing::TempDir() + "/spear_trace_test.csv";
  save_trace(jobs, path);
  const auto loaded = load_trace(path);
  ASSERT_EQ(loaded.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(loaded[i].job_id, jobs[i].job_id);
    EXPECT_EQ(loaded[i].map_runtimes, jobs[i].map_runtimes);
    EXPECT_EQ(loaded[i].reduce_runtimes, jobs[i].reduce_runtimes);
    for (std::size_t r = 0; r < 2; ++r) {
      EXPECT_NEAR(loaded[i].map_demand[r], jobs[i].map_demand[r], 1e-12);
      EXPECT_NEAR(loaded[i].reduce_demand[r], jobs[i].reduce_demand[r],
                  1e-12);
    }
  }
  std::remove(path.c_str());
}

TEST(TraceIo, LoadRejectsMalformedFiles) {
  const std::string path = ::testing::TempDir() + "/spear_trace_bad.csv";
  {
    std::ofstream out(path);
    out << "job_id,stage,task_index,runtime,cpu,mem\n";
    out << "j,map,0,notanumber,0.1,0.1\n";
  }
  EXPECT_THROW(load_trace(path), std::runtime_error);
  {
    std::ofstream out(path);
    out << "job_id,stage,task_index,runtime,cpu,mem\n";
    out << "j,shuffle,0,5,0.1,0.1\n";
  }
  EXPECT_THROW(load_trace(path), std::runtime_error);
  {
    std::ofstream out(path);
    out << "job_id,stage\n";
    out << "j,map\n";
  }
  EXPECT_THROW(load_trace(path), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW(load_trace("/nonexistent/trace.csv"), std::runtime_error);
}

// Writes `body` under the canonical header and returns the file path.
std::string write_fixture(const std::string& name, const std::string& body,
                          bool header = true) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path);
  if (header) out << "job_id,stage,task_index,runtime,cpu,mem\n";
  out << body;
  return path;
}

void expect_load_error(const std::string& path, const std::string& fragment) {
  try {
    load_trace(path);
    FAIL() << "expected load_trace to reject " << path;
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << "error was: " << e.what();
  }
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsEmptyAndHeaderOnlyFiles) {
  expect_load_error(write_fixture("spear_empty.csv", "", /*header=*/false),
                    "empty file");
  expect_load_error(write_fixture("spear_header_only.csv", ""),
                    "header only");
}

TEST(TraceIo, RejectsTruncatedRowWithLocation) {
  const auto path = write_fixture("spear_truncated.csv",
                                  "j,map,0,5,0.1,0.1\nj,map,1,7\n");
  // The bad row is file line 3; the error must say where.
  expect_load_error(path, ":3: truncated row");
}

TEST(TraceIo, RejectsPartiallyNumericFields) {
  expect_load_error(
      write_fixture("spear_trailing.csv", "j,map,0,12abc,0.1,0.1\n"),
      "trailing characters in runtime '12abc'");
  expect_load_error(
      write_fixture("spear_bad_cpu.csv", "j,map,0,5,0.1x,0.1\n"),
      "trailing characters in cpu");
}

TEST(TraceIo, RejectsOutOfRangeValues) {
  expect_load_error(write_fixture("spear_zero_rt.csv", "j,map,0,0,0.1,0.1\n"),
                    "runtime must be >= 1");
  expect_load_error(
      write_fixture("spear_neg_mem.csv", "j,map,0,5,0.1,-0.5\n"),
      "mem must be finite and non-negative");
  expect_load_error(write_fixture("spear_inf_cpu.csv", "j,map,0,5,inf,0.1\n"),
                    "cpu must be finite and non-negative");
}

TEST(TraceIo, RejectsEmptyJobId) {
  expect_load_error(write_fixture("spear_no_id.csv", ",map,0,5,0.1,0.1\n"),
                    "empty job_id");
}

// --- arrival streams + JCT summaries (DESIGN.md §14) --------------------

TEST(TraceArrivals, PoissonStreamIsSortedDeterministicAndSeedSensitive) {
  ArrivalOptions options;
  options.mean_interarrival = 50.0;
  options.seed = 3;
  const auto a = generate_poisson_arrivals(200, options);
  ASSERT_EQ(a.size(), 200u);
  EXPECT_EQ(a.front(), 0);  // the stream starts at t = 0
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  EXPECT_EQ(generate_poisson_arrivals(200, options), a);
  options.seed = 4;
  EXPECT_NE(generate_poisson_arrivals(200, options), a);
  // The empirical mean gap tracks the configured rate.
  const double mean_gap =
      static_cast<double>(a.back()) / static_cast<double>(a.size() - 1);
  EXPECT_NEAR(mean_gap, 50.0, 10.0);
}

TEST(TraceArrivals, JctSummaryUsesNearestRankP99) {
  std::vector<Time> jcts;
  for (Time t = 1; t <= 100; ++t) jcts.push_back(t);
  const JctSummary summary = summarize_jct(jcts);
  EXPECT_DOUBLE_EQ(summary.mean, 50.5);
  EXPECT_EQ(summary.p99, 99);  // nearest-rank: ceil(0.99 * 100) = 99th value
  EXPECT_EQ(summary.max, 100);
  EXPECT_THROW(summarize_jct({}), std::invalid_argument);
  ArrivalOptions bad;
  bad.mean_interarrival = 0.0;
  EXPECT_THROW(generate_poisson_arrivals(1, bad), std::invalid_argument);
}

}  // namespace
}  // namespace spear
