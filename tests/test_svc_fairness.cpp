// Multi-tenant fair admission (DESIGN.md §13): deficit-round-robin weighted
// shares, priority-lane anti-starvation, per-tenant quotas and in-flight
// caps, cancellation across every request state, and the exactness of the
// stats reconciliation invariant under concurrent load.

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dag/io.h"
#include "support/builders.h"
#include "svc/json.h"
#include "svc/service.h"

namespace spear::svc {
namespace {

Job make_job(const std::string& tenant, const std::string& id,
             bool high_priority = false) {
  Job job;
  job.id = id;
  job.tenant = tenant;
  job.high_priority = high_priority;
  job.arrival = std::chrono::steady_clock::now();
  job.deadline = job.arrival + std::chrono::seconds(10);
  return job;
}

// --- deficit round robin ------------------------------------------------

TEST(SvcFairness, WeightedSharesConvergeUnderBacklog) {
  FairQueueOptions fair;
  fair.capacity = 300;
  fair.per_tenant["a"].weight = 3.0;
  fair.per_tenant["b"].weight = 1.0;
  AdmissionQueue queue(fair);
  for (int i = 0; i < 120; ++i) {
    ASSERT_EQ(queue.try_push(make_job("a", "a" + std::to_string(i))),
              std::nullopt);
    ASSERT_EQ(queue.try_push(make_job("b", "b" + std::to_string(i))),
              std::nullopt);
  }

  std::map<std::string, int> served;
  const int pops = 80;
  for (int i = 0; i < pops; ++i) {
    Job out;
    ASSERT_TRUE(queue.pop(out));
    ++served[out.tenant];
    queue.on_done(out);
  }
  // Weights 3:1 over a saturated backlog: a gets 3/4 of the dequeues.
  const double share_a = static_cast<double>(served["a"]) / pops;
  EXPECT_NEAR(share_a, 0.75, 0.05)
      << "a=" << served["a"] << " b=" << served["b"];
}

TEST(SvcFairness, FractionalWeightsBankDeficitAcrossRounds) {
  FairQueueOptions fair;
  fair.capacity = 200;
  fair.per_tenant["slow"].weight = 0.5;  // needs two ring visits per job
  fair.per_tenant["fast"].weight = 1.0;
  AdmissionQueue queue(fair);
  for (int i = 0; i < 60; ++i) {
    ASSERT_EQ(queue.try_push(make_job("slow", "s" + std::to_string(i))),
              std::nullopt);
    ASSERT_EQ(queue.try_push(make_job("fast", "f" + std::to_string(i))),
              std::nullopt);
  }
  std::map<std::string, int> served;
  for (int i = 0; i < 60; ++i) {
    Job out;
    ASSERT_TRUE(queue.pop(out));
    ++served[out.tenant];
    queue.on_done(out);
  }
  // 0.5 : 1.0 weights -> a 1/3 : 2/3 split.
  EXPECT_NEAR(static_cast<double>(served["slow"]) / 60, 1.0 / 3.0, 0.05);
}

TEST(SvcFairness, HighLaneIsCappedSoNormalCannotStarve) {
  FairQueueOptions fair;
  fair.capacity = 300;
  fair.high_lane_share = 0.75;  // 3 high pops per forced normal pop
  AdmissionQueue queue(fair);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(
        queue.try_push(make_job("h", "h" + std::to_string(i), /*high=*/true)),
        std::nullopt);
    ASSERT_EQ(queue.try_push(make_job("n", "n" + std::to_string(i))),
              std::nullopt);
  }
  int normal_served = 0;
  int max_wait = 0, wait = 0;  // consecutive high pops while normal waits
  for (int i = 0; i < 40; ++i) {
    Job out;
    ASSERT_TRUE(queue.pop(out));
    if (out.high_priority) {
      max_wait = std::max(max_wait, ++wait);
    } else {
      wait = 0;
      ++normal_served;
    }
    queue.on_done(out);
  }
  // With share 0.75 both lanes saturated: exactly every 4th pop is normal,
  // and normal work never waits behind more than 3 consecutive high pops.
  EXPECT_EQ(normal_served, 10);
  EXPECT_LE(max_wait, 3);
}

TEST(SvcFairness, HighLanePreemptsWhenNormalIsIdle) {
  AdmissionQueue queue(FairQueueOptions{});
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(
        queue.try_push(make_job("t", "h" + std::to_string(i), /*high=*/true)),
        std::nullopt);
  }
  // No normal work: the run cap never bites (it only counts pops that made
  // normal work wait).
  for (int i = 0; i < 5; ++i) {
    Job out;
    ASSERT_TRUE(queue.pop(out));
    EXPECT_TRUE(out.high_priority);
    queue.on_done(out);
  }
  ASSERT_EQ(queue.try_push(make_job("t", "n0")), std::nullopt);
  Job out;
  ASSERT_TRUE(queue.pop(out));
  EXPECT_EQ(out.id, "n0");
  queue.on_done(out);
}

// --- job-size-aware DRR costs (--tenant-cost-mode=tasks) ----------------

Job make_sized_job(const std::string& tenant, const std::string& id,
                   std::size_t tasks) {
  Job job = make_job(tenant, id);
  job.dag = std::make_shared<const Dag>(testing::make_independent(tasks, 3));
  return job;
}

TEST(SvcFairness, TaskCostModeEqualizesTasksNotRequests) {
  // "small" submits 4-task jobs, "big" submits 16-task jobs, equal weights.
  // Under kTasks a dequeue costs its task count, so both tenants receive
  // the same TASK throughput: 4 small jobs per big one.
  FairQueueOptions fair;
  fair.capacity = 200;
  fair.cost_mode = CostMode::kTasks;
  AdmissionQueue queue(fair);
  for (int i = 0; i < 60; ++i) {
    ASSERT_EQ(
        queue.try_push(make_sized_job("small", "s" + std::to_string(i), 4)),
        std::nullopt);
    ASSERT_EQ(
        queue.try_push(make_sized_job("big", "b" + std::to_string(i), 16)),
        std::nullopt);
  }
  std::map<std::string, long long> jobs, tasks;
  for (int i = 0; i < 30; ++i) {
    Job out;
    ASSERT_TRUE(queue.pop(out));
    ASSERT_TRUE(out.dag);
    ++jobs[out.tenant];
    tasks[out.tenant] += static_cast<long long>(out.dag->num_tasks());
    queue.on_done(out);
  }
  // Task throughput balances to within one big job's worth of quanta.
  EXPECT_LE(std::abs(tasks["small"] - tasks["big"]), 16)
      << "small " << tasks["small"] << " tasks / " << jobs["small"]
      << " jobs, big " << tasks["big"] << " tasks / " << jobs["big"]
      << " jobs";
  // ...which means small gets ~4x the REQUEST rate.
  EXPECT_GE(jobs["small"], 3 * jobs["big"]);
}

TEST(SvcFairness, UnitCostModeIgnoresJobSize) {
  // The default mode stays request-fair even when dags are attached: the
  // same workload as above splits dequeues 50/50 regardless of DAG size.
  FairQueueOptions fair;
  fair.capacity = 200;  // cost_mode defaults to kUnit
  AdmissionQueue queue(fair);
  for (int i = 0; i < 40; ++i) {
    ASSERT_EQ(
        queue.try_push(make_sized_job("small", "s" + std::to_string(i), 4)),
        std::nullopt);
    ASSERT_EQ(
        queue.try_push(make_sized_job("big", "b" + std::to_string(i), 16)),
        std::nullopt);
  }
  std::map<std::string, int> served;
  for (int i = 0; i < 40; ++i) {
    Job out;
    ASSERT_TRUE(queue.pop(out));
    EXPECT_EQ(out.cost, 1.0);  // unit mode never charges by size
    ++served[out.tenant];
    queue.on_done(out);
  }
  EXPECT_EQ(served["small"], 20);
  EXPECT_EQ(served["big"], 20);
}

// --- quotas and in-flight caps ------------------------------------------

TEST(SvcFairness, TenantQuotaShedsWithoutTouchingOtherTenants) {
  FairQueueOptions fair;
  fair.capacity = 10;
  fair.per_tenant["capped"].max_queued = 2;
  AdmissionQueue queue(fair);

  ASSERT_EQ(queue.try_push(make_job("capped", "c1")), std::nullopt);
  ASSERT_EQ(queue.try_push(make_job("capped", "c2")), std::nullopt);
  const auto verdict = queue.try_push(make_job("capped", "c3"));
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->code, ErrorCode::kQuotaExceeded);
  EXPECT_GE(verdict->retry_after_ms, 1);
  EXPECT_EQ(queue.shed_count(), 1);

  // The quota charged ONLY the offender; another tenant is still admitted.
  EXPECT_EQ(queue.try_push(make_job("other", "o1")), std::nullopt);
  EXPECT_EQ(queue.tenant_depth("capped"), 2u);
  EXPECT_EQ(queue.tenant_depth("other"), 1u);

  // The global bound still answers queue_full, not quota_exceeded.
  FairQueueOptions tiny;
  tiny.capacity = 1;
  AdmissionQueue global(tiny);
  ASSERT_EQ(global.try_push(make_job("t", "g1")), std::nullopt);
  const auto full = global.try_push(make_job("t", "g2"));
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->code, ErrorCode::kQueueFull);
}

TEST(SvcFairness, InFlightCapDefersUntilOnDone) {
  FairQueueOptions fair;
  fair.capacity = 10;
  fair.per_tenant["a"].max_in_flight = 1;
  AdmissionQueue queue(fair);
  ASSERT_EQ(queue.try_push(make_job("a", "a1")), std::nullopt);
  ASSERT_EQ(queue.try_push(make_job("a", "a2")), std::nullopt);
  ASSERT_EQ(queue.try_push(make_job("b", "b1")), std::nullopt);

  Job first, second, third;
  ASSERT_TRUE(queue.pop(first));
  EXPECT_EQ(first.id, "a1");
  // a is at its in-flight cap: the next pop skips a2 and serves b.
  ASSERT_TRUE(queue.pop(second));
  EXPECT_EQ(second.id, "b1");
  // a2 only becomes eligible once a1's slot is released.
  queue.on_done(first);
  ASSERT_TRUE(queue.pop(third));
  EXPECT_EQ(third.id, "a2");
  queue.on_done(second);
  queue.on_done(third);
}

// --- cancellation at the queue level ------------------------------------

TEST(SvcCancel, QueueRemovesQueuedAndFlagsInFlight) {
  AdmissionQueue queue(8);
  ASSERT_EQ(queue.try_push(make_job("t", "j1")), std::nullopt);
  ASSERT_EQ(queue.try_push(make_job("t", "j2")), std::nullopt);

  Job removed;
  EXPECT_EQ(queue.cancel("t", "nope", removed), CancelState::kNotFound);
  EXPECT_EQ(queue.cancel("other", "j1", removed), CancelState::kNotFound);

  ASSERT_EQ(queue.cancel("t", "j1", removed), CancelState::kQueued);
  EXPECT_EQ(removed.id, "j1");
  EXPECT_EQ(queue.size(), 1u);

  Job out;
  ASSERT_TRUE(queue.pop(out));
  EXPECT_EQ(out.id, "j2");
  EXPECT_FALSE(out.cancelled->load());
  Job unused;
  EXPECT_EQ(queue.cancel("t", "j2", unused), CancelState::kInFlight);
  EXPECT_TRUE(out.cancelled->load());  // token reaches the popped copy
  queue.on_done(out);
  // Once released, the id is gone entirely.
  EXPECT_EQ(queue.cancel("t", "j2", unused), CancelState::kNotFound);
}

// --- service-level cancellation -----------------------------------------

struct Outcome {
  bool ok = false;
  SubmitResult result;
  Rejection rejection;
};

SubmitRequest chain_request(const std::string& id,
                            const std::string& tenant = "") {
  SubmitRequest request;
  request.id = id;
  request.tenant = tenant;
  request.dag_text = dag_to_text(testing::make_chain({3, 3, 3, 3}));
  return request;
}

std::shared_ptr<std::promise<Outcome>> submit_async(SchedulerService& service,
                                                    SubmitRequest request) {
  auto promise = std::make_shared<std::promise<Outcome>>();
  service.submit(request, [promise](bool ok, const SubmitResult& result,
                                    const Rejection& rejection) {
    promise->set_value(Outcome{ok, result, rejection});
  });
  return promise;
}

void expect_invariant(const ServiceCounters& c) {
  EXPECT_EQ(c.submitted,
            c.placed + c.rejected_total() + c.cancelled + c.in_flight);
}

TEST(SvcCancel, QueuedSubmitIsAnsweredCancelled) {
  ServiceOptions options;
  options.workers = 1;
  SchedulerService service(options);  // never started: the job stays queued

  auto promise = submit_async(service, chain_request("q1", "alice"));
  EXPECT_EQ(service.queue_depth(), 1u);

  EXPECT_EQ(service.cancel("alice", "q1"), CancelState::kQueued);
  const Outcome outcome = promise->get_future().get();
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.rejection.code, ErrorCode::kCancelled);

  const ServiceCounters counters = service.counters();
  EXPECT_EQ(counters.cancelled, 1);
  EXPECT_EQ(counters.cancel_queued, 1);
  EXPECT_EQ(counters.in_flight, 0);
  EXPECT_EQ(counters.tenants.at("alice").cancelled, 1);
  expect_invariant(counters);
  EXPECT_EQ(service.queue_depth(), 0u);
}

TEST(SvcCancel, InFlightSearchIsCutOffEarly) {
  ServiceOptions options;
  options.workers = 1;
  // A search that would otherwise grind for seconds: huge iteration budget,
  // generous deadline.  The cancel token must cut it off at a checkpoint.
  options.search_iterations = 50'000'000;
  options.min_iterations = 100;
  options.max_budget_ms = 30'000;
  SchedulerService service(options);
  service.start();

  SubmitRequest request;
  request.id = "long";
  request.tenant = "bob";
  // A chain would be all FORCED decisions (one ready task each step — no
  // search at all); independent tasks give every decision a real search.
  request.dag_text = dag_to_text(testing::make_independent(10, 3));
  request.budget_ms = 20'000;
  auto promise = submit_async(service, request);
  // Wait for the worker to pick the job up (queued -> in flight).
  while (service.queue_depth() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const auto cancel_at = std::chrono::steady_clock::now();
  EXPECT_EQ(service.cancel("bob", "long"), CancelState::kInFlight);
  const Outcome outcome = promise->get_future().get();
  const double waited_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - cancel_at)
          .count();
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.rejection.code, ErrorCode::kCancelled);
  // Best-effort but prompt: far sooner than the 20 s deadline.
  EXPECT_LT(waited_ms, 5000.0);

  service.shutdown();
  const ServiceCounters counters = service.counters();
  EXPECT_EQ(counters.cancelled, 1);
  EXPECT_EQ(counters.cancel_in_flight, 1);
  expect_invariant(counters);
}

TEST(SvcCancel, ResolvedSubmitIsNotFound) {
  ServiceOptions options;
  options.workers = 1;
  options.search_iterations = 40;
  options.min_iterations = 20;
  SchedulerService service(options);
  service.start();

  const Outcome outcome =
      submit_async(service, chain_request("done", "carol"))
          ->get_future()
          .get();
  ASSERT_TRUE(outcome.ok);
  // The responder ran, but the worker may not have released the in-flight
  // slot yet — drain to make the not_found deterministic.
  service.shutdown();

  EXPECT_EQ(service.cancel("carol", "done"), CancelState::kNotFound);
  // Wrong tenant never matches another tenant's request either.
  EXPECT_EQ(service.cancel("mallory", "done"), CancelState::kNotFound);
  const ServiceCounters counters = service.counters();
  EXPECT_EQ(counters.cancel_not_found, 2);
  EXPECT_EQ(counters.cancelled, 0);
  expect_invariant(counters);
}

TEST(SvcCancel, CancelsRacingDrainResolveEverySubmitExactlyOnce) {
  for (const int workers : {1, 2, 4}) {
    ServiceOptions options;
    options.workers = workers;
    options.search_iterations = 200;
    options.min_iterations = 50;
    SchedulerService service(options);
    service.start();

    const int jobs = 12;
    auto responses = std::make_shared<std::atomic<int>>(0);
    for (int i = 0; i < jobs; ++i) {
      service.submit(chain_request("r" + std::to_string(i), "t"),
                     [responses](bool, const SubmitResult&, const Rejection&) {
                       ++*responses;
                     });
    }
    // Cancel everything while the drain races the workers: every submit
    // must resolve exactly once, as placed or cancelled, never both/neither.
    std::thread canceller([&] {
      for (int i = 0; i < jobs; ++i) {
        service.cancel("t", "r" + std::to_string(i));
      }
    });
    service.begin_drain();
    canceller.join();
    service.shutdown();

    const ServiceCounters counters = service.counters();
    EXPECT_EQ(responses->load(), jobs) << "workers=" << workers;
    EXPECT_EQ(counters.submitted, jobs);
    EXPECT_EQ(counters.in_flight, 0);
    EXPECT_EQ(counters.placed + counters.cancelled +
                  counters.rejected_total(),
              jobs);
    expect_invariant(counters);
  }
}

// --- fairness through the full service ----------------------------------

TEST(SvcFairness, ServiceHonorsQuotasAndTenantCountersAcrossWorkerCounts) {
  for (const int workers : {1, 2, 4}) {
    ServiceOptions options;
    options.workers = workers;
    options.search_iterations = 40;
    options.min_iterations = 20;
    options.limits.queue_capacity = 64;
    options.tenant_overrides["greedy"].max_queued = 2;
    SchedulerService service(options);
    // Not started: submits park in the queue so the quota deterministically
    // binds, regardless of worker count.
    auto done = std::make_shared<std::atomic<int>>(0);
    std::atomic<int> quota_shed{0};
    for (int i = 0; i < 5; ++i) {
      service.submit(
          chain_request("g" + std::to_string(i), "greedy"),
          [done, &quota_shed](bool ok, const SubmitResult&,
                              const Rejection& rejection) {
            if (!ok && rejection.code == ErrorCode::kQuotaExceeded) {
              ++quota_shed;
            }
            ++*done;
          });
    }
    for (int i = 0; i < 3; ++i) {
      service.submit(chain_request("m" + std::to_string(i), "modest"),
                     [done](bool, const SubmitResult&, const Rejection&) {
                       ++*done;
                     });
    }
    service.start();
    service.shutdown();

    const ServiceCounters counters = service.counters();
    EXPECT_EQ(done->load(), 8) << "workers=" << workers;
    EXPECT_EQ(quota_shed.load(), 3);
    EXPECT_EQ(counters.rejected_quota_exceeded, 3);
    EXPECT_EQ(counters.tenants.at("greedy").submitted, 5);
    EXPECT_EQ(counters.tenants.at("greedy").shed, 3);
    EXPECT_EQ(counters.tenants.at("greedy").placed, 2);
    EXPECT_EQ(counters.tenants.at("modest").placed, 3);
    expect_invariant(counters);
  }
}

// --- the reconciliation invariant under fire ----------------------------

// Regression (torn stats reads): the pre-§13 counters were independent
// relaxed atomics with `submitted` bumped before the outcome was chosen, so
// a stats snapshot taken mid-submit saw submitted != placed + rejected +
// queued.  The ledger records (submitted, outcome) transitions under one
// mutex — the invariant must hold in EVERY snapshot, not just at rest.
TEST(SvcStatsHammer, InvariantHoldsInEverySnapshotUnderLoad) {
  ServiceOptions options;
  options.workers = 2;
  options.search_iterations = 60;
  options.min_iterations = 20;
  options.limits.queue_capacity = 4;  // small: force queue_full sheds
  options.tenant_overrides["noisy"].max_queued = 2;  // force quota sheds
  SchedulerService service(options);
  service.start();

  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> violations{0};
  std::thread auditor([&] {
    while (!stop.load()) {
      const ServiceCounters c = service.counters();
      if (c.submitted !=
          c.placed + c.rejected_total() + c.cancelled + c.in_flight) {
        ++violations;
      }
      // Also audit the wire form: the JSON snapshot must reconcile too.
      const JsonValue stats = json_parse(service.counters_json());
      if (stats.at("submitted").as_number() !=
          stats.at("placed").as_number() +
              stats.at("rejected").at("total").as_number() +
              stats.at("cancelled").as_number() +
              stats.at("in_flight").as_number()) {
        ++violations;
      }
    }
  });

  auto answered = std::make_shared<std::atomic<int>>(0);
  const auto tally = [answered](bool, const SubmitResult&, const Rejection&) {
    ++*answered;
  };
  const int rounds = 120;
  for (int i = 0; i < rounds; ++i) {
    const std::string id = "h" + std::to_string(i);
    switch (i % 4) {
      case 0: service.submit(chain_request(id, "noisy"), tally); break;
      case 1: service.submit(chain_request(id, "quiet"), tally); break;
      case 2: {
        SubmitRequest bad;
        bad.id = id;
        bad.dag_text = "not a dag";
        service.submit(bad, tally);
        break;
      }
      case 3:
        service.submit(chain_request(id, "quiet"), tally);
        service.cancel("quiet", id);  // races queued/in-flight/placed
        break;
    }
  }
  service.shutdown();
  stop.store(true);
  auditor.join();

  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(answered->load(), rounds);
  const ServiceCounters counters = service.counters();
  EXPECT_EQ(counters.in_flight, 0);
  EXPECT_GT(counters.rejected_queue_full + counters.rejected_quota_exceeded,
            0);
  expect_invariant(counters);
}

}  // namespace
}  // namespace spear::svc
