#include "sched/insertion.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dag/features.h"
#include "dag/generator.h"
#include "sched/critical_path.h"
#include "support/builders.h"

namespace spear {
namespace {

ResourceVector cap() { return ResourceVector{1.0, 1.0}; }

TEST(Insertion, Name) {
  EXPECT_EQ(make_insertion_scheduler()->name(), "CP-insert");
}

TEST(Insertion, ChainIsSequential) {
  auto s = make_insertion_scheduler();
  Dag dag = testing::make_chain({2, 3, 4});
  EXPECT_EQ(validated_makespan(*s, dag, cap()), 9);
}

TEST(Insertion, PacksIndependentTasks) {
  auto s = make_insertion_scheduler();
  Dag dag = testing::make_independent(4, 5, ResourceVector{0.5, 0.5});
  EXPECT_EQ(validated_makespan(*s, dag, cap()), 10);
}

TEST(Insertion, UsesGapsTheOnlineExecutorCannot) {
  // Chain head(1) -> tail(10) plus a lone task (2).  CP order: head, tail,
  // lone.  The online executor starts head at 0; at t=1 it starts tail;
  // lone (0.8 demand) cannot co-run with tail (0.8) -> waits until 11:
  // makespan 13.  Insertion places lone into the idle gap... there is no
  // earlier gap here, but insertion still achieves 13; the distinguishing
  // case below uses a gap *before* a later-placed task.
  DagBuilder builder;
  const TaskId head = builder.add_task(1, ResourceVector{0.8, 0.8});
  const TaskId tail = builder.add_task(10, ResourceVector{0.8, 0.8});
  builder.add_edge(head, tail);
  const TaskId lone = builder.add_task(2, ResourceVector{0.8, 0.8});
  Dag dag = std::move(builder).build();

  auto insertion = make_insertion_scheduler();
  Schedule s = insertion->schedule(dag, cap());
  EXPECT_EQ(s.validate(dag, cap()), std::nullopt);
  // Insertion order: tail-chain first (b-level 11), then lone.  lone is
  // placed at its earliest fitting start, which is after tail: 11..13.
  EXPECT_EQ(s.makespan(dag), 13);
  EXPECT_EQ(s.start_of(head), 0);
  EXPECT_EQ(s.start_of(tail), 1);
  EXPECT_EQ(s.start_of(lone), 11);
}

TEST(Insertion, FillsEarlierGapWithLatePriorityTask) {
  // Two chains: A(5)->B(5) with demand 0.6, and a short lone task (0.3
  // demand, runtime 4) with the lowest b-level.  The lone task is placed
  // last but fits alongside the chain at t=0 — insertion exploits that.
  DagBuilder builder;
  const TaskId a = builder.add_task(5, ResourceVector{0.6, 0.6});
  const TaskId b = builder.add_task(5, ResourceVector{0.6, 0.6});
  builder.add_edge(a, b);
  const TaskId lone = builder.add_task(4, ResourceVector{0.3, 0.3});
  Dag dag = std::move(builder).build();

  auto insertion = make_insertion_scheduler();
  Schedule s = insertion->schedule(dag, cap());
  EXPECT_EQ(s.validate(dag, cap()), std::nullopt);
  EXPECT_EQ(s.start_of(lone), 0);  // inserted beside the chain head
  EXPECT_EQ(s.makespan(dag), 10);
}

// Property: valid schedules on random DAGs, never worse than the serial
// bound and never better than the critical path; and comparable to the
// online CP baseline.
class InsertionPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InsertionPropertyTest, ValidAndBounded) {
  Rng rng(GetParam());
  DagGeneratorOptions options;
  options.num_tasks = 50;
  Dag dag = generate_random_dag(options, rng);
  auto insertion = make_insertion_scheduler();
  const Time makespan = validated_makespan(*insertion, dag, cap());
  DagFeatures features(dag);
  EXPECT_GE(makespan, features.critical_path());
  EXPECT_LE(makespan, dag.total_runtime());
}

INSTANTIATE_TEST_SUITE_P(Seeds, InsertionPropertyTest,
                         ::testing::Values(41, 42, 43, 44, 45));

}  // namespace
}  // namespace spear
