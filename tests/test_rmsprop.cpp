#include "nn/rmsprop.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/loss.h"

namespace spear {
namespace {

TEST(RmsProp, RejectsBadHyperparameters) {
  Rng rng(1);
  Mlp net({2, 2}, rng);
  RmsPropOptions bad;
  bad.learning_rate = 0.0;
  EXPECT_THROW(RmsProp(net, bad), std::invalid_argument);
  bad = {};
  bad.rho = 1.0;
  EXPECT_THROW(RmsProp(net, bad), std::invalid_argument);
  bad = {};
  bad.epsilon = 0.0;
  EXPECT_THROW(RmsProp(net, bad), std::invalid_argument);
}

TEST(RmsProp, FirstStepMatchesHandComputation) {
  Rng rng(2);
  Mlp net({1, 1}, rng);
  net.layers()[0].weights = Matrix::from_rows(1, 1, {2.0});
  net.layers()[0].bias = {1.0};

  RmsPropOptions options;  // lr 1e-4, rho 0.9, eps 1e-9
  RmsProp optimizer(net, options);

  auto grads = net.make_gradients();
  grads.d_weights[0](0, 0) = 0.5;
  grads.d_bias[0][0] = -0.25;
  optimizer.step(net, grads);

  // cache = 0.1 * g^2; param -= lr * g / (sqrt(cache) + eps).
  const double wcache = 0.1 * 0.25;
  const double expected_w = 2.0 - 1e-4 * 0.5 / (std::sqrt(wcache) + 1e-9);
  EXPECT_NEAR(net.layers()[0].weights(0, 0), expected_w, 1e-12);
  const double bcache = 0.1 * 0.0625;
  const double expected_b = 1.0 + 1e-4 * 0.25 / (std::sqrt(bcache) + 1e-9);
  EXPECT_NEAR(net.layers()[0].bias[0], expected_b, 1e-12);
}

TEST(RmsProp, CacheAccumulatesAcrossSteps) {
  Rng rng(3);
  Mlp net({1, 1}, rng);
  net.layers()[0].weights = Matrix::from_rows(1, 1, {0.0});
  net.layers()[0].bias = {0.0};
  RmsProp optimizer(net, {});
  auto grads = net.make_gradients();
  grads.d_weights[0](0, 0) = 1.0;

  optimizer.step(net, grads);
  const double after_one = net.layers()[0].weights(0, 0);
  optimizer.step(net, grads);
  const double after_two = net.layers()[0].weights(0, 0);
  // Second step is smaller in magnitude than the first (cache grows).
  EXPECT_LT(std::abs(after_two - after_one), std::abs(after_one));
}

TEST(RmsProp, ZeroGradientLeavesParametersAlone) {
  Rng rng(4);
  Mlp net({2, 3, 2}, rng);
  const auto before = net.layers()[0].weights;
  RmsProp optimizer(net, {});
  auto grads = net.make_gradients();
  optimizer.step(net, grads);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_DOUBLE_EQ(net.layers()[0].weights.data()[i], before.data()[i]);
  }
}

TEST(RmsProp, DrivesClassificationLossDown) {
  // Tiny 2-class problem learnable by a linear model.
  Rng rng(5);
  Mlp net({2, 8, 2}, rng);
  RmsPropOptions options;
  options.learning_rate = 1e-2;  // larger lr for a fast test
  RmsProp optimizer(net, options);

  Matrix input = Matrix::from_rows(4, 2, {1, 0, 0, 1, -1, 0, 0, -1});
  const std::vector<int> targets = {0, 0, 1, 1};
  const std::vector<double> weights(4, 0.25);

  auto loss_now = [&] {
    return cross_entropy(softmax(net.forward(input).logits), targets);
  };
  const double initial = loss_now();
  auto grads = net.make_gradients();
  for (int step = 0; step < 200; ++step) {
    const auto cache = net.forward(input);
    const Matrix probs = softmax(cache.logits);
    const Matrix d_logits = nll_logit_gradient(probs, targets, weights);
    grads.zero();
    net.backward(cache, d_logits, grads);
    optimizer.step(net, grads);
  }
  EXPECT_LT(loss_now(), initial * 0.5);
}

}  // namespace
}  // namespace spear
