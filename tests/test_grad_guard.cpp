#include "nn/grad_guard.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "dag/generator.h"
#include "rl/reinforce.h"
#include "support/builders.h"

namespace spear {
namespace {

Mlp make_net(Rng& rng) { return Mlp({3, 4, 2}, rng); }

TEST(GradGuard, LeavesSmallGradientsUntouched) {
  Rng rng(1);
  Mlp net = make_net(rng);
  Mlp::Gradients grads = net.make_gradients();
  grads.d_weights[0](0, 0) = 0.3;
  grads.d_bias[1][0] = -0.4;

  const GradGuardReport report = guard_gradients(grads, 10.0);
  EXPECT_FALSE(report.clipped);
  EXPECT_FALSE(report.skipped);
  EXPECT_DOUBLE_EQ(report.norm, 0.5);
  EXPECT_DOUBLE_EQ(grads.d_weights[0](0, 0), 0.3);  // unchanged
}

TEST(GradGuard, ClipsAnExplodingBatchToTheNormBallPreservingDirection) {
  Rng rng(2);
  Mlp net = make_net(rng);
  Mlp::Gradients grads = net.make_gradients();
  grads.d_weights[0](0, 0) = 3000.0;
  grads.d_weights[0](0, 1) = 4000.0;

  const GradGuardReport report = guard_gradients(grads, 1.0);
  EXPECT_TRUE(report.clipped);
  EXPECT_FALSE(report.skipped);
  EXPECT_DOUBLE_EQ(report.norm, 5000.0);
  EXPECT_NEAR(std::sqrt(grads.squared_norm()), 1.0, 1e-12);
  // Direction preserved: components keep their 3:4 ratio.
  EXPECT_NEAR(grads.d_weights[0](0, 0), 0.6, 1e-12);
  EXPECT_NEAR(grads.d_weights[0](0, 1), 0.8, 1e-12);
}

TEST(GradGuard, SkipsAndZeroesNonFiniteGradients) {
  Rng rng(3);
  Mlp net = make_net(rng);
  Mlp::Gradients grads = net.make_gradients();
  grads.d_weights[0](0, 0) = 7.0;
  grads.d_bias[0][1] = std::numeric_limits<double>::quiet_NaN();

  const GradGuardReport report = guard_gradients(grads, 10.0);
  EXPECT_TRUE(report.skipped);
  EXPECT_FALSE(report.clipped);
  // Zeroed so that even an accidental optimizer step is a no-op.
  EXPECT_DOUBLE_EQ(grads.squared_norm(), 0.0);
}

TEST(GradGuard, DisabledClippingStillDetectsNonFinite) {
  Rng rng(4);
  Mlp net = make_net(rng);
  Mlp::Gradients grads = net.make_gradients();
  grads.d_weights[0](0, 0) = 1e9;
  EXPECT_FALSE(guard_gradients(grads, 0.0).clipped);
  EXPECT_DOUBLE_EQ(grads.d_weights[0](0, 0), 1e9);

  grads.d_weights[0](0, 0) = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(guard_gradients(grads, 0.0).skipped);
}

TEST(GradGuard, WeightsFiniteDetectsPoisonedNets) {
  Rng rng(5);
  Mlp net = make_net(rng);
  EXPECT_TRUE(weights_finite(net));
}

TEST(GradGuard, ReinforceClipsEveryUpdateUnderATinyNormCeiling) {
  Rng rng(6);
  FeaturizerOptions featurizer;
  featurizer.max_ready = 4;
  featurizer.horizon = 6;
  Policy policy = Policy::make(featurizer, 2, rng, {16});

  ReinforceOptions options;
  options.epochs = 1;
  options.rollouts_per_example = 8;
  options.max_grad_norm = 1e-9;  // every real gradient "explodes" past this
  // Independent tasks: sampled rollouts pack them differently, so returns
  // vary and the advantages (hence gradients) are non-zero.
  const std::vector<Dag> dags = {testing::make_independent(4, 2)};
  const ReinforceResult result = train_reinforce(
      policy, dags, ResourceVector{1.0, 1.0}, options, rng);

  EXPECT_GT(result.clipped_updates, 0u);
  EXPECT_EQ(result.skipped_updates, 0u);
  EXPECT_TRUE(weights_finite(policy.net()));
}

}  // namespace
}  // namespace spear
