#include "cluster/simulator.h"

#include <algorithm>
#include <stdexcept>

#include <gtest/gtest.h>

#include "support/builders.h"

namespace spear {
namespace {

Task make_task(TaskId id, Time runtime, ResourceVector demand) {
  return Task{id, runtime, std::move(demand), ""};
}

TEST(ClusterSim, StartsIdleWithFullCapacity) {
  ClusterSim sim(ResourceVector{1.0, 1.0});
  EXPECT_EQ(sim.now(), 0);
  EXPECT_FALSE(sim.busy());
  EXPECT_TRUE(sim.available() == (ResourceVector{1.0, 1.0}));
  EXPECT_EQ(sim.current_makespan(), 0);
}

TEST(ClusterSim, PlaceConsumesResources) {
  ClusterSim sim(ResourceVector{1.0, 1.0});
  sim.place(make_task(0, 5, ResourceVector{0.6, 0.3}));
  EXPECT_TRUE(sim.busy());
  EXPECT_EQ(sim.num_running(), 1u);
  EXPECT_DOUBLE_EQ(sim.available()[kCpu], 0.4);
  EXPECT_DOUBLE_EQ(sim.available()[kMem], 0.7);
  EXPECT_EQ(sim.current_makespan(), 5);
  EXPECT_EQ(sim.earliest_finish(), 5);
}

TEST(ClusterSim, PlaceRejectsOversizedDemand) {
  ClusterSim sim(ResourceVector{1.0, 1.0});
  sim.place(make_task(0, 5, ResourceVector{0.6, 0.6}));
  EXPECT_THROW(sim.place(make_task(1, 5, ResourceVector{0.6, 0.1})),
               std::invalid_argument);
}

TEST(ClusterSim, AdvanceOneSlotCompletesAtFinish) {
  ClusterSim sim(ResourceVector{1.0, 1.0});
  sim.place(make_task(0, 2, ResourceVector{0.5, 0.5}));
  EXPECT_TRUE(sim.advance_one_slot().empty());
  EXPECT_EQ(sim.now(), 1);
  const auto done = sim.advance_one_slot();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 0);
  EXPECT_EQ(sim.now(), 2);
  EXPECT_FALSE(sim.busy());
  EXPECT_TRUE(sim.available() == (ResourceVector{1.0, 1.0}));
}

TEST(ClusterSim, AdvanceToNextFinishJumps) {
  ClusterSim sim(ResourceVector{1.0, 1.0});
  sim.place(make_task(0, 7, ResourceVector{0.3, 0.3}));
  sim.place(make_task(1, 3, ResourceVector{0.3, 0.3}));
  const auto done = sim.advance_to_next_finish();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 1);
  EXPECT_EQ(sim.now(), 3);
  EXPECT_EQ(sim.num_running(), 1u);
}

TEST(ClusterSim, SimultaneousCompletions) {
  ClusterSim sim(ResourceVector{1.0, 1.0});
  sim.place(make_task(0, 4, ResourceVector{0.3, 0.3}));
  sim.place(make_task(1, 4, ResourceVector{0.3, 0.3}));
  auto done = sim.advance_to_next_finish();
  std::sort(done.begin(), done.end());
  EXPECT_EQ(done, (std::vector<TaskId>{0, 1}));
  EXPECT_FALSE(sim.busy());
}

TEST(ClusterSim, EarliestFinishRequiresRunningTask) {
  ClusterSim sim(ResourceVector{1.0, 1.0});
  EXPECT_THROW(sim.earliest_finish(), std::logic_error);
  EXPECT_THROW(sim.advance_to_next_finish(), std::logic_error);
}

TEST(ClusterSim, LaterPlacementExtendsMakespan) {
  ClusterSim sim(ResourceVector{1.0, 1.0});
  sim.place(make_task(0, 2, ResourceVector{0.5, 0.5}));
  sim.advance_to_next_finish();
  sim.place(make_task(1, 10, ResourceVector{0.5, 0.5}));
  EXPECT_EQ(sim.current_makespan(), 12);
}

TEST(ClusterSim, ScheduleRecordsStartTimes) {
  ClusterSim sim(ResourceVector{1.0, 1.0});
  sim.place(make_task(0, 2, ResourceVector{0.5, 0.5}));
  sim.advance_to_next_finish();
  sim.place(make_task(1, 3, ResourceVector{0.5, 0.5}));
  const Schedule& s = sim.schedule();
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.start_of(0), 0);
  EXPECT_EQ(s.start_of(1), 2);
}

TEST(ClusterSim, ProjectedUsageTracksFinishTimes) {
  ClusterSim sim(ResourceVector{1.0, 1.0});
  sim.place(make_task(0, 5, ResourceVector{0.4, 0.1}));
  sim.place(make_task(1, 2, ResourceVector{0.2, 0.3}));
  // At t in [0, 2): both run.
  EXPECT_DOUBLE_EQ(sim.projected_usage(0)[kCpu], 0.6);
  EXPECT_DOUBLE_EQ(sim.projected_usage(1)[kMem], 0.4);
  // At t in [2, 5): only task 0.
  EXPECT_DOUBLE_EQ(sim.projected_usage(2)[kCpu], 0.4);
  EXPECT_DOUBLE_EQ(sim.projected_usage(4)[kMem], 0.1);
  // At t >= 5: idle.
  EXPECT_DOUBLE_EQ(sim.projected_usage(5)[kCpu], 0.0);
}

TEST(ClusterSim, ResourcesRestoredExactlyAfterManyTasks) {
  ClusterSim sim(ResourceVector{1.0, 1.0});
  for (TaskId i = 0; i < 10; ++i) {
    sim.place(make_task(i, 1, ResourceVector{0.1, 0.1}));
  }
  sim.advance_to_next_finish();
  EXPECT_FALSE(sim.busy());
  EXPECT_TRUE(sim.available().fits_within(ResourceVector{1.0, 1.0}));
  // And a full-capacity task fits again.
  sim.place(make_task(20, 1, ResourceVector{1.0, 1.0}));
}

TEST(ClusterSim, NegativeCapacityThrows) {
  EXPECT_THROW(ClusterSim(ResourceVector{-0.5, 1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace spear
