// Cross-module integration tests: every scheduler in the project run
// against shared workloads (random layered DAGs, MapReduce trace jobs, the
// gallery instance), with schedules validated, bounded, and — on tiny
// instances — compared against the brute-force optimum.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/spear.h"
#include "dag/gallery.h"
#include "dag/generator.h"
#include "dag/io.h"
#include "rl/imitation.h"
#include "sched/critical_path.h"
#include "sched/graphene.h"
#include "sched/insertion.h"
#include "sched/random_scheduler.h"
#include "sched/sjf.h"
#include "sched/tetris.h"
#include "support/brute_force.h"
#include "trace/mapreduce.h"
#include "trace/trace.h"

namespace spear {
namespace {

ResourceVector cap() { return ResourceVector{1.0, 1.0}; }

std::vector<std::unique_ptr<Scheduler>> all_schedulers() {
  std::vector<std::unique_ptr<Scheduler>> out;
  out.push_back(make_sjf_scheduler());
  out.push_back(make_critical_path_scheduler());
  out.push_back(make_tetris_scheduler());
  out.push_back(make_graphene_scheduler());
  out.push_back(make_insertion_scheduler());
  out.push_back(make_random_scheduler(7));
  out.push_back(make_mcts_scheduler(40, 10));
  return out;
}

class WorkloadIntegrationTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WorkloadIntegrationTest, EverySchedulerValidOnRandomDags) {
  Rng rng(GetParam());
  DagGeneratorOptions options;
  options.num_tasks = 35;
  const Dag dag = generate_random_dag(options, rng);
  const DagFeatures features(dag);
  for (auto& scheduler : all_schedulers()) {
    const Time makespan = validated_makespan(*scheduler, dag, cap());
    EXPECT_GE(makespan, features.critical_path()) << scheduler->name();
    EXPECT_LE(makespan, dag.total_runtime()) << scheduler->name();
  }
}

TEST_P(WorkloadIntegrationTest, EverySchedulerValidOnTraceJobs) {
  Rng rng(GetParam());
  TraceOptions options;
  options.num_jobs = 2;
  for (const auto& job : generate_trace(options, rng)) {
    const Dag dag = mapreduce_to_dag(job);
    const DagFeatures features(dag);
    for (auto& scheduler : all_schedulers()) {
      const Time makespan = validated_makespan(*scheduler, dag, cap());
      EXPECT_GE(makespan, features.critical_path())
          << scheduler->name() << " on " << job.job_id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkloadIntegrationTest,
                         ::testing::Values(51, 52, 53));

TEST(Integration, SearchSchedulersReachOptimumOnTinyDags) {
  DagGeneratorOptions options;
  options.num_tasks = 5;
  options.max_width = 3;
  for (std::uint64_t seed : {61, 62, 63, 64}) {
    Rng rng(seed);
    const Dag dag = generate_random_dag(options, rng);
    const auto optimal = testing::optimal_makespan(dag, cap());
    ASSERT_TRUE(optimal.has_value());
    auto mcts = make_mcts_scheduler(200, 60, seed);
    EXPECT_EQ(validated_makespan(*mcts, dag, cap()), *optimal)
        << "seed " << seed;
    // Heuristics can be suboptimal but never beat the optimum.
    for (auto& scheduler : all_schedulers()) {
      EXPECT_GE(validated_makespan(*scheduler, dag, cap()), *optimal)
          << scheduler->name() << " seed " << seed;
    }
  }
}

TEST(Integration, DagSurvivesIoThenSchedules) {
  // Full pipeline: generate -> serialize -> parse -> schedule -> validate.
  Rng rng(71);
  DagGeneratorOptions options;
  options.num_tasks = 25;
  const Dag original = generate_random_dag(options, rng);
  const Dag loaded = dag_from_text(dag_to_text(original));
  auto tetris = make_tetris_scheduler();
  EXPECT_EQ(validated_makespan(*tetris, loaded, cap()),
            validated_makespan(*tetris, original, cap()));
}

TEST(Integration, SpearEndToEndOnMixedWorkload) {
  // Train a tiny policy, then schedule a random DAG, a trace job, and the
  // gallery instance with the same Spear scheduler.
  Rng rng(81);
  FeaturizerOptions featurizer;
  featurizer.max_ready = 6;
  featurizer.horizon = 8;
  Policy policy = Policy::make(featurizer, 2, rng, {24});
  DagGeneratorOptions gen;
  gen.num_tasks = 10;
  const auto train_dags = generate_random_dags(gen, 3, rng);
  ImitationOptions imitation;
  imitation.epochs = 8;
  pretrain_on_cp(policy, train_dags, cap(), imitation, rng);

  SpearOptions options;
  options.initial_budget = 60;
  options.min_budget = 20;
  auto spear = make_spear_scheduler(
      std::make_shared<const Policy>(std::move(policy)), options);

  Rng workload_rng(82);
  gen.num_tasks = 20;
  const Dag random_dag = generate_random_dag(gen, workload_rng);
  EXPECT_GT(validated_makespan(*spear, random_dag, cap()), 0);

  TraceOptions trace_options;
  trace_options.num_jobs = 1;
  const Dag trace_dag =
      mapreduce_to_dag(generate_trace(trace_options, workload_rng).front());
  EXPECT_GT(validated_makespan(*spear, trace_dag, cap()), 0);

  EXPECT_LE(validated_makespan(*spear, motivating_example_dag(), cap()), 39);
}

}  // namespace
}  // namespace spear
