// Wire-protocol layer of the scheduling service: the strict JSON parser,
// request parsing, and response serialization (svc/json.h, svc/protocol.h).

#include <gtest/gtest.h>

#include "svc/json.h"
#include "svc/protocol.h"

namespace spear::svc {
namespace {

// --- json_parse ---------------------------------------------------------

TEST(SvcJson, ParsesScalarsObjectsAndArrays) {
  const JsonValue v = json_parse(
      R"({"s":"hi","n":-2.5,"t":true,"f":false,"z":null,"a":[1,2,3]})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("s").as_string(), "hi");
  EXPECT_DOUBLE_EQ(v.at("n").as_number(), -2.5);
  EXPECT_TRUE(v.at("t").as_bool());
  EXPECT_FALSE(v.at("f").as_bool());
  EXPECT_TRUE(v.at("z").is_null());
  ASSERT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("a").as_array()[1].as_number(), 2.0);
}

TEST(SvcJson, DecodesEscapesAndUnicode) {
  const JsonValue v =
      json_parse(R"({"e":"a\"b\\c\nd\tAé"})");
  EXPECT_EQ(v.at("e").as_string(), "a\"b\\c\nd\tA\xc3\xa9");
}

TEST(SvcJson, DecodesSurrogatePairs) {
  // U+1F600 as a surrogate pair -> 4-byte UTF-8.
  const JsonValue v = json_parse(R"({"g":"😀"})");
  EXPECT_EQ(v.at("g").as_string(), "\xf0\x9f\x98\x80");
}

TEST(SvcJson, RejectsMalformedInput) {
  EXPECT_THROW(json_parse(""), JsonError);
  EXPECT_THROW(json_parse("{"), JsonError);
  EXPECT_THROW(json_parse("{}x"), JsonError);         // trailing garbage
  EXPECT_THROW(json_parse("{'a':1}"), JsonError);     // single quotes
  EXPECT_THROW(json_parse("{\"a\":01}"), JsonError);  // leading zero
  EXPECT_THROW(json_parse("[1,]"), JsonError);        // trailing comma
  EXPECT_THROW(json_parse("nulll"), JsonError);
}

TEST(SvcJson, RejectsDuplicateKeys) {
  EXPECT_THROW(json_parse(R"({"a":1,"a":2})"), JsonError);
}

TEST(SvcJson, RejectsPathologicalNesting) {
  // Depth cap: deep nesting must error, not overflow the parser stack.
  std::string bomb;
  for (int i = 0; i < 500; ++i) bomb += "[";
  EXPECT_THROW(json_parse(bomb), JsonError);
}

TEST(SvcJson, TypedAccessorsThrowOnMismatch) {
  const JsonValue v = json_parse(R"({"n":1})");
  EXPECT_THROW(v.at("n").as_string(), JsonError);
  EXPECT_TRUE(v.at("missing").is_null());  // absent key = null-kind value
  EXPECT_EQ(v.get_string("missing", "dflt"), "dflt");
  EXPECT_THROW(v.get_string("n", "dflt"), JsonError);  // present, wrong type
}

// --- parse_request ------------------------------------------------------

TEST(SvcProtocol, ParsesPingStatsAndSubmit) {
  EXPECT_EQ(parse_request(R"({"id":"p","method":"ping"})").method,
            Request::Method::kPing);
  EXPECT_EQ(parse_request(R"({"id":"s","method":"stats"})").method,
            Request::Method::kStats);

  const Request r = parse_request(
      R"({"id":"r1","method":"submit","dag":"dims 2\ntask a 5 0.5 0.5\n",)"
      R"("budget_ms":200,"iterations":50,"future_field":1})");
  EXPECT_EQ(r.method, Request::Method::kSubmit);
  EXPECT_EQ(r.id, "r1");
  EXPECT_EQ(r.submit.dag_text, "dims 2\ntask a 5 0.5 0.5\n");
  EXPECT_EQ(r.submit.budget_ms, 200);
  EXPECT_EQ(r.submit.iterations, 50);  // unknown fields tolerated
  EXPECT_EQ(r.submit.tenant, "");     // absent = resolved to "default" later
  EXPECT_FALSE(r.submit.high_priority);
}

TEST(SvcProtocol, ParsesTenantAndPriority) {
  const Request r = parse_request(
      R"({"id":"r1","method":"submit","dag":"d","tenant":"alice",)"
      R"("priority":"high"})");
  EXPECT_EQ(r.submit.tenant, "alice");
  EXPECT_TRUE(r.submit.high_priority);

  const Request normal = parse_request(
      R"({"id":"r2","method":"submit","dag":"d","priority":"normal"})");
  EXPECT_FALSE(normal.submit.high_priority);

  // Unknown lanes and mistyped tenants are protocol errors, not defaults.
  EXPECT_THROW(
      parse_request(
          R"({"id":"x","method":"submit","dag":"d","priority":"urgent"})"),
      JsonError);
  EXPECT_THROW(
      parse_request(R"({"id":"x","method":"submit","dag":"d","tenant":7})"),
      JsonError);
}

TEST(SvcProtocol, ParsesCancel) {
  const Request r =
      parse_request(R"({"id":"r9","method":"cancel","tenant":"bob"})");
  EXPECT_EQ(r.method, Request::Method::kCancel);
  EXPECT_EQ(r.cancel.id, "r9");
  EXPECT_EQ(r.cancel.tenant, "bob");

  const Request bare = parse_request(R"({"id":"r9","method":"cancel"})");
  EXPECT_EQ(bare.cancel.tenant, "");  // defaults like submit
}

TEST(SvcProtocol, RejectsBadRequests) {
  EXPECT_THROW(parse_request("not json"), JsonError);
  EXPECT_THROW(parse_request(R"([1,2])"), JsonError);  // not an object
  EXPECT_THROW(parse_request(R"({"id":"x"})"), JsonError);  // no method
  EXPECT_THROW(parse_request(R"({"id":"x","method":"nope"})"), JsonError);
  EXPECT_THROW(parse_request(R"({"id":"x","method":"submit"})"), JsonError);
  EXPECT_THROW(
      parse_request(R"({"id":"x","method":"submit","dag":""})"), JsonError);
  EXPECT_THROW(parse_request(
                   R"({"id":"x","method":"submit","dag":"d","budget_ms":-5})"),
               JsonError);
  EXPECT_THROW(
      parse_request(
          R"({"id":"x","method":"submit","dag":"d","budget_ms":1.5})"),
      JsonError);
}

// --- response serialization --------------------------------------------

TEST(SvcProtocol, PlacedResponseRoundTrips) {
  SubmitResult result;
  result.makespan = 12;
  result.mode = ServeMode::kReduced;
  result.degraded = true;
  result.queue_ms = 1.25;
  result.search_ms = 3.5;
  result.placements = {{"a", 0}, {"b \"q\"", 5}};

  const JsonValue v = json_parse(make_placed_response("r1", result));
  EXPECT_EQ(v.at("id").as_string(), "r1");
  EXPECT_TRUE(v.at("ok").as_bool());
  EXPECT_EQ(v.at("result").as_string(), "placed");
  EXPECT_DOUBLE_EQ(v.at("makespan").as_number(), 12.0);
  EXPECT_EQ(v.at("mode").as_string(), "reduced");
  EXPECT_TRUE(v.at("degraded").as_bool());
  const auto& placements = v.at("placements").as_array();
  ASSERT_EQ(placements.size(), 2u);
  EXPECT_EQ(placements[1].at("task").as_string(), "b \"q\"");  // escaping
  EXPECT_DOUBLE_EQ(placements[1].at("start").as_number(), 5.0);
}

TEST(SvcProtocol, ErrorResponseCarriesRetryAfterOnlyWhenSet) {
  const JsonValue with = json_parse(make_error_response(
      "r2", Rejection{ErrorCode::kQueueFull, "full", 40}));
  EXPECT_FALSE(with.at("ok").as_bool());
  EXPECT_EQ(with.at("error").at("code").as_string(), "queue_full");
  EXPECT_DOUBLE_EQ(with.at("error").at("retry_after_ms").as_number(), 40.0);

  const JsonValue without = json_parse(make_error_response(
      "r3", Rejection{ErrorCode::kInvalidDag, "cycle", -1}));
  EXPECT_FALSE(without.at("error").has("retry_after_ms"));
}

TEST(SvcProtocol, EveryErrorCodeHasAStableWireName) {
  EXPECT_STREQ(error_code_name(ErrorCode::kBadRequest), "bad_request");
  EXPECT_STREQ(error_code_name(ErrorCode::kInvalidDag), "invalid_dag");
  EXPECT_STREQ(error_code_name(ErrorCode::kUnschedulable), "unschedulable");
  EXPECT_STREQ(error_code_name(ErrorCode::kTooLarge), "too_large");
  EXPECT_STREQ(error_code_name(ErrorCode::kQueueFull), "queue_full");
  EXPECT_STREQ(error_code_name(ErrorCode::kQuotaExceeded), "quota_exceeded");
  EXPECT_STREQ(error_code_name(ErrorCode::kDeadlineExpired),
               "deadline_expired");
  EXPECT_STREQ(error_code_name(ErrorCode::kCancelled), "cancelled");
  EXPECT_STREQ(error_code_name(ErrorCode::kNotFound), "not_found");
  EXPECT_STREQ(error_code_name(ErrorCode::kShuttingDown), "shutting_down");
  EXPECT_STREQ(error_code_name(ErrorCode::kInternal), "internal");
}

TEST(SvcProtocol, CancelledResponseNamesTheInterceptedState) {
  const JsonValue v = json_parse(make_cancelled_response("r7", "queued"));
  EXPECT_EQ(v.at("id").as_string(), "r7");
  EXPECT_TRUE(v.at("ok").as_bool());
  EXPECT_EQ(v.at("result").as_string(), "cancelled");
  EXPECT_EQ(v.at("state").as_string(), "queued");
}

}  // namespace
}  // namespace spear::svc
