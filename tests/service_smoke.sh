#!/usr/bin/env bash
# End-to-end smoke test for spear_serviced (DESIGN.md §12), driven over the
# real wire protocol:
#
#   1. stdio transport: good DAG -> placed, malformed JSON -> bad_request,
#      bad DAG text -> invalid_dag, oversized DAG -> too_large, whale task
#      -> unschedulable, tenant-tagged high-priority submit -> placed with a
#      per-tenant stats slice, cancel of an unknown id -> not_found; daemon
#      exits 0 on stdin EOF.
#   2. AF_UNIX transport: same checks over a socket connection, plus a
#      deterministic two-tenant cancel exchange (a long search pins the
#      single worker, a queued submit behind it is cancelled), then
#      SIGTERM while a request may be in flight -> supervised drain,
#      exit code 0.
#
# Usage: service_smoke.sh <path-to-spear_serviced>

set -u

DAEMON="${1:?usage: service_smoke.sh <path-to-spear_serviced>}"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

GOOD='{"id":"good","method":"submit","dag":"dims 2\ntask a 5 0.5 0.5\ntask b 3 0.5 0.25\nedge a b\n","budget_ms":500}'
MALFORMED='this is not json'
BADDAG='{"id":"baddag","method":"submit","dag":"task without dims header"}'
WHALE='{"id":"whale","method":"submit","dag":"dims 2\ntask w 5 2.0 0.5\n"}'
OVERSIZED='{"id":"oversized","method":"submit","dag":"dims 2\ntask a 1 0.1 0.1\ntask b 1 0.1 0.1\ntask c 1 0.1 0.1\n"}'
TENANT='{"id":"tgood","method":"submit","dag":"dims 2\ntask a 5 0.5 0.5\ntask b 3 0.5 0.25\nedge a b\n","budget_ms":500,"tenant":"alice","priority":"high"}'
CANCELMISS='{"id":"nope","method":"cancel","tenant":"alice"}'
PING='{"id":"p","method":"ping"}'
STATS='{"id":"s","method":"stats"}'

expect_line() {  # <file> <pattern> <label>
  grep -q "$2" "$1" || { cat "$1" >&2; fail "$3: no line matching '$2'"; }
}

echo "=== stdio transport ==="
printf '%s\n' "$PING" "$GOOD" "$MALFORMED" "$BADDAG" "$WHALE" "$OVERSIZED" \
    "$TENANT" "$CANCELMISS" "$STATS" \
  | "$DAEMON" --workers=2 --max-tasks=2 >"$WORKDIR/stdio.out" 2>"$WORKDIR/stdio.err"
rc=$?
[ "$rc" -eq 0 ] || { cat "$WORKDIR/stdio.err" >&2; fail "stdio daemon exited $rc"; }

expect_line "$WORKDIR/stdio.out" '"id":"p".*"result":"pong"' "ping"
expect_line "$WORKDIR/stdio.out" '"id":"good".*"result":"placed"' "good submit"
expect_line "$WORKDIR/stdio.out" '"id":"good".*"task":"a","start":0' "placement a"
expect_line "$WORKDIR/stdio.out" '"code":"bad_request"' "malformed json"
expect_line "$WORKDIR/stdio.out" '"id":"baddag".*"code":"invalid_dag"' "bad dag text"
expect_line "$WORKDIR/stdio.out" '"id":"whale".*"code":"unschedulable"' "whale task"
expect_line "$WORKDIR/stdio.out" '"id":"oversized".*"code":"too_large"' "task-count cap"
expect_line "$WORKDIR/stdio.out" '"id":"tgood".*"result":"placed"' "tenant submit"
expect_line "$WORKDIR/stdio.out" '"id":"nope".*"code":"not_found"' "cancel miss"
# placed may still be in flight when stats is answered (responses are
# async); submitted is counted synchronously at dispatch, so it is exact:
# good + malformed + baddag + whale + oversized + tgood = 6.
expect_line "$WORKDIR/stdio.out" '"id":"s".*"submitted":6' "stats reconcile"
expect_line "$WORKDIR/stdio.out" '"alice":{"submitted":1' "tenant stats slice"
echo "stdio transport OK"

echo "=== socket transport + SIGTERM drain ==="
SOCK="$WORKDIR/spear.sock"
# One worker + an effectively unbounded iteration budget make the cancel
# exchange deterministic: a long search pins the worker while the queued
# victim waits.  (Chain DAGs have only forced decisions, so the other
# submits stay fast regardless of the iteration budget.)
"$DAEMON" --socket="$SOCK" --workers=1 --iterations=50000000 \
  --metrics-out="$WORKDIR/report.json" \
  </dev/null >"$WORKDIR/sock.out" 2>"$WORKDIR/sock.err" &
DPID=$!

for _ in $(seq 1 50); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { cat "$WORKDIR/sock.err" >&2; fail "socket never appeared"; }

python3 - "$SOCK" >"$WORKDIR/client.out" <<'EOF' || fail "socket client errored"
import json, socket, sys

s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sys.argv[1])
f = s.makefile("rw")

def rpc(obj):
    f.write(json.dumps(obj) + "\n")
    f.flush()
    return json.loads(f.readline())

dag = "dims 2\ntask a 5 0.5 0.5\ntask b 3 0.5 0.25\nedge a b\n"
r = rpc({"id": "g1", "method": "submit", "dag": dag, "budget_ms": 500})
assert r["ok"] and r["result"] == "placed", r
assert {p["task"] for p in r["placements"]} == {"a", "b"}, r

r = rpc({"id": "bad", "method": "submit", "dag": "not a dag"})
assert not r["ok"] and r["error"]["code"] == "invalid_dag", r

r = rpc({"id": "w", "method": "submit", "dag": "dims 2\ntask w 9 3.0 0.5\n"})
assert not r["ok"] and r["error"]["code"] == "unschedulable", r

r = rpc({"id": "s", "method": "stats"})
assert r["ok"] and r["stats"]["placed"] == 1, r
assert r["stats"]["rejected"]["total"] == 2, r

# Two-tenant cancel exchange.  Independent tasks force a REAL search, and
# the daemon's 50M-iteration budget means it runs until the 3s deadline —
# pinning the single worker while "jq" waits in the queue behind it.
slow = "dims 2\n" + "".join(
    "task s%d 4 0.4 0.4\n" % i for i in range(4))
dag_chain = dag
f.write(json.dumps({"id": "jslow", "method": "submit", "dag": slow,
                    "tenant": "alice", "budget_ms": 3000}) + "\n")
f.write(json.dumps({"id": "jq", "method": "submit", "dag": dag_chain,
                    "tenant": "alice", "priority": "high",
                    "budget_ms": 3000}) + "\n")
f.write(json.dumps({"id": "jq", "method": "cancel", "tenant": "alice"}) + "\n")
f.flush()
# Queued cancel answers the ORIGINAL submit first, then acks the cancel.
orig = json.loads(f.readline())
assert orig["id"] == "jq" and not orig["ok"], orig
assert orig["error"]["code"] == "cancelled", orig
ack = json.loads(f.readline())
assert ack["id"] == "jq" and ack["ok"] and ack["result"] == "cancelled", ack
assert ack["state"] == "queued", ack
slow_reply = json.loads(f.readline())
assert slow_reply["id"] == "jslow" and slow_reply["ok"], slow_reply

r = rpc({"id": "s2", "method": "stats"})
assert r["stats"]["tenants"]["alice"]["submitted"] == 2, r
assert r["stats"]["tenants"]["alice"]["cancelled"] == 1, r
assert r["stats"]["cancel"]["queued"] == 1, r
print("CANCEL_EXCHANGE_OK")

# Leave one request racing the shutdown: the drain must still answer it.
f.write(json.dumps({"id": "last", "method": "submit", "dag": dag}) + "\n")
f.flush()
print("CLIENT_DONE")
last = json.loads(f.readline())
assert last["id"] == "last" and "ok" in last, last
print("LAST_ANSWERED", last["ok"])
EOF

grep -q "CANCEL_EXCHANGE_OK" "$WORKDIR/client.out" || fail "cancel exchange failed"
grep -q "CLIENT_DONE" "$WORKDIR/client.out" || fail "client did not finish"

kill -TERM "$DPID"
wait "$DPID"
rc=$?
[ "$rc" -eq 0 ] || { cat "$WORKDIR/sock.err" >&2; fail "SIGTERM drain exited $rc"; }
grep -q "LAST_ANSWERED" "$WORKDIR/client.out" || fail "in-flight request lost in drain"
[ -e "$SOCK" ] && fail "socket file not cleaned up"
[ -s "$WORKDIR/report.json" ] || fail "run report not flushed on shutdown"
grep -q '"submitted"' "$WORKDIR/report.json" || fail "report missing counters"
echo "socket transport + drain OK"

echo "PASS: service smoke"
