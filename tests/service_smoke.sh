#!/usr/bin/env bash
# End-to-end smoke test for spear_serviced (DESIGN.md §12), driven over the
# real wire protocol:
#
#   1. stdio transport: good DAG -> placed, malformed JSON -> bad_request,
#      bad DAG text -> invalid_dag, oversized DAG -> too_large, whale task
#      -> unschedulable; daemon exits 0 on stdin EOF.
#   2. AF_UNIX transport: same checks over a socket connection, then
#      SIGTERM while a request may be in flight -> supervised drain,
#      exit code 0.
#
# Usage: service_smoke.sh <path-to-spear_serviced>

set -u

DAEMON="${1:?usage: service_smoke.sh <path-to-spear_serviced>}"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

GOOD='{"id":"good","method":"submit","dag":"dims 2\ntask a 5 0.5 0.5\ntask b 3 0.5 0.25\nedge a b\n","budget_ms":500}'
MALFORMED='this is not json'
BADDAG='{"id":"baddag","method":"submit","dag":"task without dims header"}'
WHALE='{"id":"whale","method":"submit","dag":"dims 2\ntask w 5 2.0 0.5\n"}'
OVERSIZED='{"id":"oversized","method":"submit","dag":"dims 2\ntask a 1 0.1 0.1\ntask b 1 0.1 0.1\ntask c 1 0.1 0.1\n"}'
PING='{"id":"p","method":"ping"}'
STATS='{"id":"s","method":"stats"}'

expect_line() {  # <file> <pattern> <label>
  grep -q "$2" "$1" || { cat "$1" >&2; fail "$3: no line matching '$2'"; }
}

echo "=== stdio transport ==="
printf '%s\n' "$PING" "$GOOD" "$MALFORMED" "$BADDAG" "$WHALE" "$OVERSIZED" "$STATS" \
  | "$DAEMON" --workers=2 --max-tasks=2 >"$WORKDIR/stdio.out" 2>"$WORKDIR/stdio.err"
rc=$?
[ "$rc" -eq 0 ] || { cat "$WORKDIR/stdio.err" >&2; fail "stdio daemon exited $rc"; }

expect_line "$WORKDIR/stdio.out" '"id":"p".*"result":"pong"' "ping"
expect_line "$WORKDIR/stdio.out" '"id":"good".*"result":"placed"' "good submit"
expect_line "$WORKDIR/stdio.out" '"id":"good".*"task":"a","start":0' "placement a"
expect_line "$WORKDIR/stdio.out" '"code":"bad_request"' "malformed json"
expect_line "$WORKDIR/stdio.out" '"id":"baddag".*"code":"invalid_dag"' "bad dag text"
expect_line "$WORKDIR/stdio.out" '"id":"whale".*"code":"unschedulable"' "whale task"
expect_line "$WORKDIR/stdio.out" '"id":"oversized".*"code":"too_large"' "task-count cap"
# placed may still be in flight when stats is answered (responses are
# async); submitted is counted synchronously at dispatch, so it is exact.
expect_line "$WORKDIR/stdio.out" '"id":"s".*"submitted":4' "stats reconcile"
echo "stdio transport OK"

echo "=== socket transport + SIGTERM drain ==="
SOCK="$WORKDIR/spear.sock"
"$DAEMON" --socket="$SOCK" --workers=2 --metrics-out="$WORKDIR/report.json" \
  </dev/null >"$WORKDIR/sock.out" 2>"$WORKDIR/sock.err" &
DPID=$!

for _ in $(seq 1 50); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { cat "$WORKDIR/sock.err" >&2; fail "socket never appeared"; }

python3 - "$SOCK" >"$WORKDIR/client.out" <<'EOF' || fail "socket client errored"
import json, socket, sys

s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sys.argv[1])
f = s.makefile("rw")

def rpc(obj):
    f.write(json.dumps(obj) + "\n")
    f.flush()
    return json.loads(f.readline())

dag = "dims 2\ntask a 5 0.5 0.5\ntask b 3 0.5 0.25\nedge a b\n"
r = rpc({"id": "g1", "method": "submit", "dag": dag, "budget_ms": 500})
assert r["ok"] and r["result"] == "placed", r
assert {p["task"] for p in r["placements"]} == {"a", "b"}, r

r = rpc({"id": "bad", "method": "submit", "dag": "not a dag"})
assert not r["ok"] and r["error"]["code"] == "invalid_dag", r

r = rpc({"id": "w", "method": "submit", "dag": "dims 2\ntask w 9 3.0 0.5\n"})
assert not r["ok"] and r["error"]["code"] == "unschedulable", r

r = rpc({"id": "s", "method": "stats"})
assert r["ok"] and r["stats"]["placed"] == 1, r
assert r["stats"]["rejected"]["total"] == 2, r

# Leave one request racing the shutdown: the drain must still answer it.
f.write(json.dumps({"id": "last", "method": "submit", "dag": dag}) + "\n")
f.flush()
print("CLIENT_DONE")
last = json.loads(f.readline())
assert last["id"] == "last" and "ok" in last, last
print("LAST_ANSWERED", last["ok"])
EOF

grep -q "CLIENT_DONE" "$WORKDIR/client.out" || fail "client did not finish"

kill -TERM "$DPID"
wait "$DPID"
rc=$?
[ "$rc" -eq 0 ] || { cat "$WORKDIR/sock.err" >&2; fail "SIGTERM drain exited $rc"; }
grep -q "LAST_ANSWERED" "$WORKDIR/client.out" || fail "in-flight request lost in drain"
[ -e "$SOCK" ] && fail "socket file not cleaned up"
[ -s "$WORKDIR/report.json" ] || fail "run report not flushed on shutdown"
grep -q '"submitted"' "$WORKDIR/report.json" || fail "report missing counters"
echo "socket transport + drain OK"

echo "PASS: service smoke"
