#include "dag/generator.h"

#include <map>
#include <stdexcept>

#include <gtest/gtest.h>

namespace spear {
namespace {

TEST(Generator, ProducesRequestedTaskCount) {
  Rng rng(1);
  DagGeneratorOptions options;
  options.num_tasks = 100;
  Dag dag = generate_random_dag(options, rng);
  EXPECT_EQ(dag.num_tasks(), 100u);
}

TEST(Generator, RuntimesWithinBounds) {
  Rng rng(2);
  DagGeneratorOptions options;
  options.num_tasks = 200;
  Dag dag = generate_random_dag(options, rng);
  for (const auto& t : dag.tasks()) {
    EXPECT_GE(t.runtime, options.runtime_min);
    EXPECT_LE(t.runtime, options.runtime_max);
  }
}

TEST(Generator, DemandsWithinBounds) {
  Rng rng(3);
  DagGeneratorOptions options;
  options.num_tasks = 200;
  Dag dag = generate_random_dag(options, rng);
  for (const auto& t : dag.tasks()) {
    for (std::size_t r = 0; r < options.resource_dims; ++r) {
      EXPECT_GE(t.demand[r], options.demand_min);
      EXPECT_LE(t.demand[r], options.demand_max);
    }
  }
}

TEST(Generator, LayerWidthsWithinRange) {
  Rng rng(4);
  DagGeneratorOptions options;
  options.num_tasks = 97;
  Dag dag = generate_random_dag(options, rng);

  // Recover layers from names ("L<layer>.<i>").
  std::map<int, int> layer_sizes;
  for (const auto& t : dag.tasks()) {
    const auto dot = t.name.find('.');
    ASSERT_NE(dot, std::string::npos);
    ++layer_sizes[std::stoi(t.name.substr(1, dot - 1))];
  }
  // All but the final layer are within [min_width, max_width]; the final
  // layer may be smaller (remainder).
  const int last = static_cast<int>(layer_sizes.size()) - 1;
  for (const auto& [layer, size] : layer_sizes) {
    EXPECT_GE(size, layer == last ? 1 : static_cast<int>(options.min_width));
    EXPECT_LE(size, static_cast<int>(options.max_width));
  }
}

TEST(Generator, EdgesOnlyBetweenAdjacentLayers) {
  Rng rng(5);
  DagGeneratorOptions options;
  options.num_tasks = 60;
  Dag dag = generate_random_dag(options, rng);
  auto layer_of = [&](TaskId id) {
    const auto& name = dag.task(id).name;
    return std::stoi(name.substr(1, name.find('.') - 1));
  };
  for (const auto& t : dag.tasks()) {
    for (TaskId c : dag.children(t.id)) {
      EXPECT_EQ(layer_of(c), layer_of(t.id) + 1);
    }
  }
}

TEST(Generator, NonFirstLayerTasksHaveParents) {
  Rng rng(6);
  DagGeneratorOptions options;
  options.num_tasks = 80;
  Dag dag = generate_random_dag(options, rng);
  for (const auto& t : dag.tasks()) {
    const bool first_layer = t.name.rfind("L0.", 0) == 0;
    if (!first_layer) {
      EXPECT_FALSE(dag.parents(t.id).empty())
          << "task " << t.name << " is an orphan";
    }
  }
}

TEST(Generator, InteriorTasksHaveChildren) {
  Rng rng(7);
  DagGeneratorOptions options;
  options.num_tasks = 80;
  Dag dag = generate_random_dag(options, rng);
  int max_layer = 0;
  auto layer_of = [&](const Task& t) {
    return std::stoi(t.name.substr(1, t.name.find('.') - 1));
  };
  for (const auto& t : dag.tasks()) max_layer = std::max(max_layer, layer_of(t));
  for (const auto& t : dag.tasks()) {
    if (layer_of(t) < max_layer) {
      EXPECT_FALSE(dag.children(t.id).empty())
          << "interior task " << t.name << " has no children";
    }
  }
}

TEST(Generator, DeterministicGivenSeed) {
  DagGeneratorOptions options;
  options.num_tasks = 50;
  Rng rng1(42), rng2(42);
  Dag a = generate_random_dag(options, rng1);
  Dag b = generate_random_dag(options, rng2);
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t i = 0; i < a.num_tasks(); ++i) {
    const auto id = static_cast<TaskId>(i);
    EXPECT_EQ(a.task(id).runtime, b.task(id).runtime);
    EXPECT_TRUE(a.task(id).demand == b.task(id).demand);
    EXPECT_EQ(a.children(id), b.children(id));
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  DagGeneratorOptions options;
  options.num_tasks = 50;
  Rng rng1(1), rng2(2);
  Dag a = generate_random_dag(options, rng1);
  Dag b = generate_random_dag(options, rng2);
  bool any_difference = a.num_edges() != b.num_edges();
  for (std::size_t i = 0; !any_difference && i < a.num_tasks(); ++i) {
    const auto id = static_cast<TaskId>(i);
    any_difference = a.task(id).runtime != b.task(id).runtime;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Generator, BatchGeneratesIndependentDags) {
  DagGeneratorOptions options;
  options.num_tasks = 30;
  Rng rng(9);
  const auto dags = generate_random_dags(options, 5, rng);
  ASSERT_EQ(dags.size(), 5u);
  for (const auto& d : dags) EXPECT_EQ(d.num_tasks(), 30u);
  // At least two of them differ (overwhelmingly likely).
  bool differ = false;
  for (std::size_t i = 0; i < dags[0].num_tasks() && !differ; ++i) {
    differ = dags[0].task(static_cast<TaskId>(i)).runtime !=
             dags[1].task(static_cast<TaskId>(i)).runtime;
  }
  EXPECT_TRUE(differ);
}

TEST(Generator, RejectsBadOptions) {
  Rng rng(1);
  DagGeneratorOptions options;
  options.num_tasks = 0;
  EXPECT_THROW(generate_random_dag(options, rng), std::invalid_argument);

  options = {};
  options.min_width = 0;
  EXPECT_THROW(generate_random_dag(options, rng), std::invalid_argument);

  options = {};
  options.min_width = 6;
  options.max_width = 5;
  EXPECT_THROW(generate_random_dag(options, rng), std::invalid_argument);

  options = {};
  options.runtime_min = 5;
  options.runtime_max = 2;
  EXPECT_THROW(generate_random_dag(options, rng), std::invalid_argument);

  options = {};
  options.demand_min = 0.5;
  options.demand_max = 0.2;
  EXPECT_THROW(generate_random_dag(options, rng), std::invalid_argument);
}

TEST(Generator, SingleTaskDag) {
  Rng rng(10);
  DagGeneratorOptions options;
  options.num_tasks = 1;
  Dag dag = generate_random_dag(options, rng);
  EXPECT_EQ(dag.num_tasks(), 1u);
  EXPECT_EQ(dag.num_edges(), 0u);
}

}  // namespace
}  // namespace spear
