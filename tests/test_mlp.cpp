#include "nn/mlp.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include <gtest/gtest.h>

#include "nn/loss.h"
#include "nn/serialize.h"

namespace spear {
namespace {

TEST(Mlp, ConstructionValidations) {
  Rng rng(1);
  EXPECT_THROW(Mlp({10}, rng), std::invalid_argument);
  EXPECT_THROW(Mlp({10, 0, 3}, rng), std::invalid_argument);
}

TEST(Mlp, ShapesAndParameterCount) {
  Rng rng(1);
  Mlp net({4, 8, 3}, rng);
  EXPECT_EQ(net.input_dim(), 4u);
  EXPECT_EQ(net.output_dim(), 3u);
  EXPECT_EQ(net.layers().size(), 2u);
  EXPECT_EQ(net.num_parameters(), 4u * 8 + 8 + 8u * 3 + 3);
}

TEST(Mlp, ForwardShapes) {
  Rng rng(2);
  Mlp net({5, 7, 2}, rng);
  Matrix input(3, 5, 0.1);
  const auto cache = net.forward(input);
  EXPECT_EQ(cache.logits.rows(), 3u);
  EXPECT_EQ(cache.logits.cols(), 2u);
  EXPECT_EQ(cache.pre_activations.size(), 2u);
  EXPECT_THROW(net.forward(Matrix(3, 4)), std::invalid_argument);
}

TEST(Mlp, SingleSampleLogitsMatchBatch) {
  Rng rng(3);
  Mlp net({4, 6, 3}, rng);
  const std::vector<double> x = {0.1, -0.2, 0.3, 0.4};
  const auto single = net.logits(x);
  Matrix batch = Matrix::from_rows(1, 4, x);
  const auto cache = net.forward(batch);
  ASSERT_EQ(single.size(), 3u);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_DOUBLE_EQ(single[j], cache.logits(0, j));
  }
}

TEST(Mlp, LinearNetworkComputesAffineMap) {
  // One layer (no hidden): logits = x W + b exactly.
  Rng rng(4);
  Mlp net({2, 2}, rng);
  net.layers()[0].weights = Matrix::from_rows(2, 2, {1, 2, 3, 4});
  net.layers()[0].bias = {0.5, -0.5};
  const auto y = net.logits({1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 1 + 3 + 0.5);
  EXPECT_DOUBLE_EQ(y[1], 2 + 4 - 0.5);
}

TEST(Mlp, ReluAppliedBetweenLayers) {
  Rng rng(5);
  Mlp net({1, 1, 1}, rng);
  // Force hidden pre-activation negative: output must ignore the weight.
  net.layers()[0].weights = Matrix::from_rows(1, 1, {-1.0});
  net.layers()[0].bias = {0.0};
  net.layers()[1].weights = Matrix::from_rows(1, 1, {5.0});
  net.layers()[1].bias = {0.25};
  EXPECT_DOUBLE_EQ(net.logits({2.0})[0], 0.25);   // relu(-2) = 0
  EXPECT_DOUBLE_EQ(net.logits({-2.0})[0], 10.25);  // relu(2) * 5 + 0.25
}

TEST(Mlp, GradientsMatchFiniteDifferences) {
  // Check dLoss/dparam for a small net on a CE loss against central
  // finite differences.
  Rng rng(7);
  Mlp net({3, 5, 4, 2}, rng);
  Matrix input = Matrix::from_rows(2, 3, {0.5, -0.3, 0.8, -0.1, 0.9, 0.2});
  const std::vector<int> targets = {1, 0};

  auto loss_of = [&]() {
    const auto cache = net.forward(input);
    return cross_entropy(softmax(cache.logits), targets);
  };

  // Analytic gradients.
  auto grads = net.make_gradients();
  const auto cache = net.forward(input);
  const Matrix probs = softmax(cache.logits);
  const std::vector<double> weights(2, 0.5);  // 1/batch
  const Matrix d_logits = nll_logit_gradient(probs, targets, weights);
  net.backward(cache, d_logits, grads);

  const double eps = 1e-6;
  for (std::size_t l = 0; l < net.layers().size(); ++l) {
    auto& w = net.layers()[l].weights;
    for (std::size_t i : {std::size_t{0}, w.size() / 2, w.size() - 1}) {
      const double saved = w.data()[i];
      w.data()[i] = saved + eps;
      const double up = loss_of();
      w.data()[i] = saved - eps;
      const double down = loss_of();
      w.data()[i] = saved;
      const double numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(grads.d_weights[l].data()[i], numeric, 1e-5)
          << "layer " << l << " weight " << i;
    }
    auto& b = net.layers()[l].bias;
    for (std::size_t i : {std::size_t{0}, b.size() - 1}) {
      const double saved = b[i];
      b[i] = saved + eps;
      const double up = loss_of();
      b[i] = saved - eps;
      const double down = loss_of();
      b[i] = saved;
      const double numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(grads.d_bias[l][i], numeric, 1e-5)
          << "layer " << l << " bias " << i;
    }
  }
}

TEST(Mlp, GradientsAccumulateAcrossBackwardCalls) {
  Rng rng(8);
  Mlp net({2, 3, 2}, rng);
  Matrix input = Matrix::from_rows(1, 2, {0.4, -0.6});
  const auto cache = net.forward(input);
  const Matrix d_logits = Matrix::from_rows(1, 2, {0.3, -0.3});

  auto once = net.make_gradients();
  net.backward(cache, d_logits, once);
  auto twice = net.make_gradients();
  net.backward(cache, d_logits, twice);
  net.backward(cache, d_logits, twice);

  for (std::size_t l = 0; l < once.d_weights.size(); ++l) {
    for (std::size_t i = 0; i < once.d_weights[l].size(); ++i) {
      EXPECT_NEAR(twice.d_weights[l].data()[i],
                  2.0 * once.d_weights[l].data()[i], 1e-12);
    }
  }
}

TEST(MlpGradients, ZeroScaleAddMaxAbs) {
  Rng rng(9);
  Mlp net({2, 3, 2}, rng);
  auto g = net.make_gradients();
  g.d_weights[0](0, 0) = 2.0;
  g.d_bias[1][0] = -4.0;
  EXPECT_DOUBLE_EQ(g.max_abs(), 4.0);
  g.scale(0.5);
  EXPECT_DOUBLE_EQ(g.d_weights[0](0, 0), 1.0);
  EXPECT_DOUBLE_EQ(g.d_bias[1][0], -2.0);
  auto h = net.make_gradients();
  h.d_weights[0](0, 0) = 1.0;
  g.add(h);
  EXPECT_DOUBLE_EQ(g.d_weights[0](0, 0), 2.0);
  g.zero();
  EXPECT_DOUBLE_EQ(g.max_abs(), 0.0);
}

TEST(MlpSerialize, RoundTripPreservesOutputs) {
  Rng rng(10);
  Mlp net({4, 6, 3}, rng);
  const auto text = mlp_to_string(net);
  const Mlp copy = mlp_from_string(text);
  const std::vector<double> x = {0.1, 0.2, -0.3, 0.4};
  const auto a = net.logits(x);
  const auto b = copy.logits(x);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(MlpSerialize, RejectsCorruptInput) {
  EXPECT_THROW(mlp_from_string("not a model"), std::runtime_error);
  EXPECT_THROW(mlp_from_string("spear-mlp v1\n2 4"), std::runtime_error);
  EXPECT_THROW(mlp_from_string("spear-mlp v1\n2 4 3\n1.0 2.0"),
               std::runtime_error);
  EXPECT_THROW(mlp_from_string("spear-mlp v2\n2 4 3\n"), std::runtime_error);
}

TEST(MlpSerialize, FileRoundTrip) {
  Rng rng(11);
  Mlp net({3, 4, 2}, rng);
  const std::string path = ::testing::TempDir() + "/spear_mlp_test.txt";
  save_mlp(net, path);
  const Mlp loaded = load_mlp(path);
  EXPECT_EQ(loaded.sizes(), net.sizes());
  const auto a = net.logits({1.0, 2.0, 3.0});
  const auto b = loaded.logits({1.0, 2.0, 3.0});
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  std::remove(path.c_str());
}

TEST(MlpSerialize, MissingFileThrows) {
  EXPECT_THROW(load_mlp("/nonexistent/model.txt"), std::runtime_error);
}

TEST(MlpSerialize, RoundTripsExtremeFiniteValues) {
  // The text format promises exact round-trips for every finite double:
  // denormals, signed zeros, and the extremes of the normal range.
  const std::vector<double> extremes = {
      0.0,
      -0.0,
      5e-324,                   // smallest denormal
      -5e-324,
      2.2250738585072014e-308,  // smallest normal
      -2.2250738585072014e-308,
      1.7976931348623157e308,   // largest finite
      -1.7976931348623157e308,
      1.0 + std::numeric_limits<double>::epsilon(),
  };
  Rng rng(12);
  Mlp net({3, 3, 1}, rng);
  auto& weights = net.layers()[0].weights.data();
  ASSERT_GE(weights.size(), extremes.size());
  for (std::size_t i = 0; i < extremes.size(); ++i) weights[i] = extremes[i];
  net.layers()[1].bias[0] = -0.0;

  const Mlp copy = mlp_from_string(mlp_to_string(net));
  const auto& back = copy.layers()[0].weights.data();
  for (std::size_t i = 0; i < extremes.size(); ++i) {
    EXPECT_EQ(back[i], extremes[i]) << "index " << i;
    EXPECT_EQ(std::signbit(back[i]), std::signbit(extremes[i]))
        << "sign lost at index " << i;
  }
  EXPECT_TRUE(std::signbit(copy.layers()[1].bias[0]));
}

TEST(MlpSerialize, RejectsNonFiniteNetwork) {
  Rng rng(13);
  Mlp net({2, 3, 2}, rng);
  net.layers()[1].weights.data()[2] = std::numeric_limits<double>::quiet_NaN();
  try {
    mlp_to_string(net);
    FAIL() << "non-finite network was serialized";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("non-finite"), std::string::npos);
    EXPECT_NE(what.find("layer 1"), std::string::npos);
  }

  // save_mlp must reject before creating anything on disk.
  const std::string path = ::testing::TempDir() + "/spear_mlp_nonfinite.txt";
  std::remove(path.c_str());
  EXPECT_THROW(save_mlp(net, path), std::runtime_error);
  EXPECT_FALSE(std::ifstream(path).good());
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
}

TEST(MlpSerialize, RejectsInfiniteBias) {
  Rng rng(14);
  Mlp net({2, 2, 2}, rng);
  net.layers()[0].bias[1] = std::numeric_limits<double>::infinity();
  EXPECT_THROW(mlp_to_string(net), std::runtime_error);
}

TEST(MlpSerialize, DistinguishesTruncationFromInvalidValues) {
  Rng rng(15);
  Mlp net({2, 2, 1}, rng);
  const std::string text = mlp_to_string(net);

  try {
    mlp_from_string(text.substr(0, text.size() / 2));
    FAIL() << "truncated input was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }

  // A "nan" token (from a pre-guard serializer) is invalid, not truncated,
  // and the message pinpoints the element.
  try {
    mlp_from_string("spear-mlp v1\n3 2 2 1\n1.0 nan 0.5 0.25\n0.1 0.2\n");
    FAIL() << "nan token was accepted";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("invalid weight value"), std::string::npos);
    EXPECT_NE(what.find("layer 0 index 1"), std::string::npos);
  }
}

TEST(MlpSerialize, LoadErrorsNameTheFile) {
  const std::string path = ::testing::TempDir() + "/spear_mlp_corrupt.txt";
  std::ofstream(path) << "spear-mlp v1\ngarbage";
  try {
    load_mlp(path);
    FAIL() << "corrupt model file was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(MlpSerialize, AtomicSaveLeavesNoTmpFile) {
  Rng rng(16);
  Mlp net({2, 3, 2}, rng);
  const std::string path = ::testing::TempDir() + "/spear_mlp_atomic.txt";
  save_mlp(net, path);
  EXPECT_TRUE(std::ifstream(path).good());
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace spear
