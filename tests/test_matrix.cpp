#include "nn/matrix.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace spear {
namespace {

TEST(Matrix, ConstructionAndFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m.fill(0.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(Matrix, FromRows) {
  const Matrix m = Matrix::from_rows(2, 2, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(m(0, 0), 1);
  EXPECT_DOUBLE_EQ(m(0, 1), 2);
  EXPECT_DOUBLE_EQ(m(1, 0), 3);
  EXPECT_DOUBLE_EQ(m(1, 1), 4);
  EXPECT_THROW(Matrix::from_rows(2, 2, {1, 2, 3}), std::invalid_argument);
}

TEST(Matrix, HeNormalStatistics) {
  Rng rng(1);
  const Matrix m = Matrix::he_normal(200, 100, rng);
  double sum = 0.0, sum_sq = 0.0;
  for (double x : m.data()) {
    sum += x;
    sum_sq += x * x;
  }
  const auto n = static_cast<double>(m.size());
  EXPECT_NEAR(sum / n, 0.0, 0.005);
  EXPECT_NEAR(sum_sq / n, 2.0 / 200.0, 0.001);  // var = 2 / fan_in
}

TEST(Matrix, AddSubtractScale) {
  Matrix a = Matrix::from_rows(1, 2, {1, 2});
  const Matrix b = Matrix::from_rows(1, 2, {10, 20});
  a += b;
  EXPECT_DOUBLE_EQ(a(0, 0), 11);
  a -= b;
  EXPECT_DOUBLE_EQ(a(0, 1), 2);
  a *= 3.0;
  EXPECT_DOUBLE_EQ(a(0, 0), 3);
  Matrix c(2, 2);
  EXPECT_THROW(a += c, std::invalid_argument);
  EXPECT_THROW(a -= c, std::invalid_argument);
}

TEST(Matrix, Matmul) {
  const Matrix a = Matrix::from_rows(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix b = Matrix::from_rows(3, 2, {7, 8, 9, 10, 11, 12});
  const Matrix c = a.matmul(b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c(0, 0), 58);
  EXPECT_DOUBLE_EQ(c(0, 1), 64);
  EXPECT_DOUBLE_EQ(c(1, 0), 139);
  EXPECT_DOUBLE_EQ(c(1, 1), 154);
  EXPECT_THROW(a.matmul(a), std::invalid_argument);
}

TEST(Matrix, TransposeMatmulMatchesExplicit) {
  const Matrix a = Matrix::from_rows(3, 2, {1, 2, 3, 4, 5, 6});
  const Matrix b = Matrix::from_rows(3, 2, {1, 0, 0, 1, 1, 1});
  // a^T b computed by hand: a^T is 2x3.
  const Matrix c = a.transpose_matmul(b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c(0, 0), 1 * 1 + 3 * 0 + 5 * 1);
  EXPECT_DOUBLE_EQ(c(0, 1), 1 * 0 + 3 * 1 + 5 * 1);
  EXPECT_DOUBLE_EQ(c(1, 0), 2 * 1 + 4 * 0 + 6 * 1);
  EXPECT_DOUBLE_EQ(c(1, 1), 2 * 0 + 4 * 1 + 6 * 1);
  EXPECT_THROW(a.transpose_matmul(Matrix(2, 2)), std::invalid_argument);
}

TEST(Matrix, MatmulTransposeMatchesExplicit) {
  const Matrix a = Matrix::from_rows(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix b = Matrix::from_rows(2, 3, {1, 1, 0, 0, 1, 1});
  // a b^T: 2x2.
  const Matrix c = a.matmul_transpose(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 1 + 2);
  EXPECT_DOUBLE_EQ(c(0, 1), 2 + 3);
  EXPECT_DOUBLE_EQ(c(1, 0), 4 + 5);
  EXPECT_DOUBLE_EQ(c(1, 1), 5 + 6);
  EXPECT_THROW(a.matmul_transpose(Matrix(2, 2)), std::invalid_argument);
}

TEST(Matrix, RowBroadcastAndColumnSums) {
  Matrix m = Matrix::from_rows(2, 2, {1, 2, 3, 4});
  m.add_row_broadcast({10, 20});
  EXPECT_DOUBLE_EQ(m(0, 0), 11);
  EXPECT_DOUBLE_EQ(m(1, 1), 24);
  const auto sums = m.column_sums();
  EXPECT_DOUBLE_EQ(sums[0], 11 + 13);
  EXPECT_DOUBLE_EQ(sums[1], 22 + 24);
  EXPECT_THROW(m.add_row_broadcast({1.0}), std::invalid_argument);
}

TEST(Matrix, Relu) {
  Matrix m = Matrix::from_rows(1, 4, {-1, 0, 0.5, 2});
  m.relu();
  EXPECT_DOUBLE_EQ(m(0, 0), 0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0);
  EXPECT_DOUBLE_EQ(m(0, 2), 0.5);
  EXPECT_DOUBLE_EQ(m(0, 3), 2);
}

TEST(Matrix, ReluBackwardMask) {
  Matrix grad = Matrix::from_rows(1, 3, {5, 6, 7});
  const Matrix pre = Matrix::from_rows(1, 3, {-1, 0, 2});
  grad.relu_backward_mask(pre);
  EXPECT_DOUBLE_EQ(grad(0, 0), 0);  // pre < 0
  EXPECT_DOUBLE_EQ(grad(0, 1), 0);  // pre == 0
  EXPECT_DOUBLE_EQ(grad(0, 2), 7);
  EXPECT_THROW(grad.relu_backward_mask(Matrix(2, 2)), std::invalid_argument);
}

TEST(Matrix, SoftmaxRows) {
  Matrix m = Matrix::from_rows(2, 2, {0, 0, 1000, 0});
  m.softmax_rows();
  EXPECT_DOUBLE_EQ(m(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.5);
  // Large logits must not overflow.
  EXPECT_NEAR(m(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(m(1, 1), 0.0, 1e-12);
  // Rows sum to one.
  EXPECT_DOUBLE_EQ(m(1, 0) + m(1, 1), 1.0);
}

TEST(Matrix, MaxAbs) {
  const Matrix m = Matrix::from_rows(1, 3, {-5, 2, 4});
  EXPECT_DOUBLE_EQ(m.max_abs(), 5.0);
  EXPECT_DOUBLE_EQ(Matrix(2, 2).max_abs(), 0.0);
}

TEST(Matrix, ShapeString) {
  EXPECT_EQ(Matrix(3, 7).shape_string(), "3x7");
}

}  // namespace
}  // namespace spear
