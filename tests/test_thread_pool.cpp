#include "common/thread_pool.h"

#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace spear {
namespace {

TEST(ThreadPool, RejectsZeroWorkers) {
  EXPECT_THROW(ThreadPool{0}, std::invalid_argument);
}

TEST(ThreadPool, HardwareThreadsAtLeastOne) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, FutureCompletesAfterTaskRan) {
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  auto future = pool.submit([&ran] { ran = true; });
  future.get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(hits.size(), [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SubmitPropagatesExceptionsThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The worker survives the exception and keeps serving tasks.
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, ParallelForRethrowsAfterAllShardsFinish) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(16,
                        [&completed](std::size_t i) {
                          if (i == 5) throw std::runtime_error("shard 5");
                          ++completed;
                        }),
      std::runtime_error);
  // Every non-throwing shard ran to completion before the rethrow.
  EXPECT_EQ(completed.load(), 15);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    pool.parallel_for(10, [&counter](std::size_t) { ++counter; });
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, SingleWorkerStillWorks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> counter{0};
  pool.parallel_for(7, [&counter](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 7);
}

TEST(ThreadPool, ShutdownExecutesPendingTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.shutdown();
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPool, ParallelForAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.shutdown();
  // Every shard count must throw, including the inline n <= 1 fast paths.
  EXPECT_THROW(pool.parallel_for(0, [](std::size_t) {}), std::runtime_error);
  EXPECT_THROW(pool.parallel_for(1, [](std::size_t) {}), std::runtime_error);
  EXPECT_THROW(pool.parallel_for(8, [](std::size_t) {}), std::runtime_error);
}

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool(3);
  pool.shutdown();
  pool.shutdown();  // second call must be a harmless no-op
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

}  // namespace
}  // namespace spear
