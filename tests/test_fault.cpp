#include "fault/fault.h"

#include <gtest/gtest.h>

#include "cluster/simulator.h"
#include "support/builders.h"

namespace spear {
namespace {

ResourceVector cap() { return ResourceVector{1.0, 1.0}; }

Task make_task(TaskId id, Time runtime) {
  Task t;
  t.id = id;
  t.runtime = runtime;
  t.demand = ResourceVector{0.5, 0.5};
  return t;
}

TEST(FaultInjector, RejectsBadOptions) {
  FaultOptions bad;
  bad.fault_rate = 1.5;
  EXPECT_THROW(FaultInjector(bad, cap()), std::invalid_argument);
  bad = {};
  bad.fail_fraction_min = 0.8;
  bad.fail_fraction_max = 0.2;
  EXPECT_THROW(FaultInjector(bad, cap()), std::invalid_argument);
  bad = {};
  bad.straggler_factor = 0.5;
  EXPECT_THROW(FaultInjector(bad, cap()), std::invalid_argument);
  bad = {};
  bad.num_loss_windows = 1;
  bad.loss_horizon = 0;
  EXPECT_THROW(FaultInjector(bad, cap()), std::invalid_argument);
}

TEST(FaultInjector, InactiveWithDefaultOptions) {
  FaultInjector injector({}, cap());
  EXPECT_FALSE(injector.active());
  EXPECT_TRUE(injector.loss_windows().empty());
  const auto outcome = injector.attempt_outcome(make_task(0, 10), 0);
  EXPECT_FALSE(outcome.fails);
  EXPECT_EQ(outcome.duration, 10);
}

TEST(FaultInjector, OutcomesAreAPureFunctionOfSeedTaskAttempt) {
  FaultOptions options;
  options.fault_rate = 0.5;
  options.straggler_rate = 0.3;
  options.seed = 99;
  FaultInjector a(options, cap());
  FaultInjector b(options, cap());
  // Query b in reverse order — replay must not depend on query order.
  std::vector<AttemptOutcome> forward, backward;
  for (int id = 0; id < 50; ++id) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      forward.push_back(a.attempt_outcome(make_task(id, 7), attempt));
    }
  }
  for (int id = 49; id >= 0; --id) {
    for (int attempt = 2; attempt >= 0; --attempt) {
      backward.push_back(b.attempt_outcome(make_task(id, 7), attempt));
    }
  }
  ASSERT_EQ(forward.size(), backward.size());
  for (std::size_t i = 0; i < forward.size(); ++i) {
    const auto& f = forward[i];
    const auto& r = backward[backward.size() - 1 - i];
    EXPECT_EQ(f.fails, r.fails);
    EXPECT_EQ(f.duration, r.duration);
  }
}

TEST(FaultInjector, DifferentSeedsGiveDifferentTraces) {
  FaultOptions options;
  options.fault_rate = 0.5;
  FaultOptions other = options;
  other.seed = options.seed + 1;
  FaultInjector a(options, cap());
  FaultInjector b(other, cap());
  int differing = 0;
  for (int id = 0; id < 100; ++id) {
    const Task t = make_task(id, 9);
    if (a.attempt_outcome(t, 0).fails != b.attempt_outcome(t, 0).fails) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjector, FailedAttemptsDieEarlyAndStragglersRunLonger) {
  FaultOptions options;
  options.fault_rate = 0.5;
  options.straggler_rate = 0.5;
  options.straggler_factor = 3.0;
  FaultInjector injector(options, cap());
  bool saw_failure = false, saw_straggler = false;
  for (int id = 0; id < 200; ++id) {
    const Task t = make_task(id, 10);
    const auto outcome = injector.attempt_outcome(t, 0);
    ASSERT_GE(outcome.duration, 1);
    if (outcome.fails) {
      saw_failure = true;
      // Dies at a fraction of its (possibly stretched) runtime.
      EXPECT_LT(outcome.duration, 30);
    } else {
      EXPECT_TRUE(outcome.duration == 10 || outcome.duration == 30);
      if (outcome.duration == 30) saw_straggler = true;
    }
  }
  EXPECT_TRUE(saw_failure);
  EXPECT_TRUE(saw_straggler);
}

TEST(FaultInjector, LossWindowsAreSortedNonOverlappingAndBounded) {
  FaultOptions options;
  options.num_loss_windows = 4;
  options.loss_horizon = 200;
  options.loss_window_length = 20;
  options.loss_fraction = 0.5;
  FaultInjector injector(options, cap());
  const auto& windows = injector.loss_windows();
  ASSERT_EQ(windows.size(), 4u);
  Time prev_end = 0;
  for (const auto& w : windows) {
    EXPECT_GE(w.start, prev_end);
    EXPECT_GT(w.end, w.start);
    EXPECT_LE(w.end, options.loss_horizon);
    EXPECT_DOUBLE_EQ(w.amount[0], 0.5);
    prev_end = w.end;
  }
  EXPECT_TRUE(injector.active());
}

TEST(FaultInjector, CapacityLossAndNextEventTrackWindows) {
  FaultOptions options;
  options.num_loss_windows = 1;
  options.loss_horizon = 50;
  options.loss_window_length = 10;
  options.loss_fraction = 1.0;
  FaultInjector injector(options, cap());
  ASSERT_EQ(injector.loss_windows().size(), 1u);
  const auto& w = injector.loss_windows().front();
  EXPECT_DOUBLE_EQ(injector.capacity_loss_at(w.start)[0], 1.0);
  EXPECT_DOUBLE_EQ(injector.capacity_loss_at(w.end)[0], 0.0);
  if (w.start > 0) {
    EXPECT_DOUBLE_EQ(injector.capacity_loss_at(w.start - 1)[0], 0.0);
    EXPECT_EQ(injector.next_capacity_event_after(0), w.start);
  }
  EXPECT_EQ(injector.next_capacity_event_after(w.start), w.end);
  EXPECT_EQ(injector.next_capacity_event_after(w.end),
            FaultInjector::kNoEvent);
}

// --- Failure-aware simulator ---

std::shared_ptr<const FaultInjector> failing_injector(double rate,
                                                      std::uint64_t seed) {
  FaultOptions options;
  options.fault_rate = rate;
  options.seed = seed;
  return std::make_shared<const FaultInjector>(options, cap());
}

TEST(FaultSim, RecordsAttemptsAndSurfacesFailures) {
  // Find a seed whose very first attempt of task 0 fails, so the test is
  // not at the mercy of one particular hash value.
  const Dag dag = testing::make_chain({10});
  std::shared_ptr<const FaultInjector> injector;
  for (std::uint64_t seed = 1; seed < 100; ++seed) {
    auto candidate = failing_injector(0.5, seed);
    if (candidate->attempt_outcome(dag.task(0), 0).fails &&
        !candidate->attempt_outcome(dag.task(0), 1).fails) {
      injector = candidate;
      break;
    }
  }
  ASSERT_TRUE(injector);

  ClusterSim sim(cap(), injector);
  sim.place(dag.task(0));
  EXPECT_EQ(sim.attempts(0), 1);
  auto completed = sim.advance_to_next_finish();
  EXPECT_TRUE(completed.empty());  // the attempt failed, nothing completed
  const auto failed = sim.take_failed();
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0], 0);
  EXPECT_TRUE(sim.take_failed().empty());  // buffer drained

  // Retry: second attempt succeeds.
  sim.place(dag.task(0));
  EXPECT_EQ(sim.attempts(0), 2);
  completed = sim.advance_to_next_finish();
  ASSERT_EQ(completed.size(), 1u);
  EXPECT_TRUE(sim.take_failed().empty());

  const auto& attempts = sim.schedule().attempts();
  ASSERT_EQ(attempts.size(), 2u);
  EXPECT_FALSE(attempts[0].completed);
  EXPECT_TRUE(attempts[1].completed);
  EXPECT_EQ(sim.schedule().placements().size(), 1u);  // success only
}

TEST(FaultSim, NullInjectorKeepsIdealizedBehaviour) {
  const Dag dag = testing::make_independent(3, 5);
  ClusterSim ideal(cap());
  ClusterSim with_null(cap(), nullptr);
  for (const auto& t : dag.tasks()) {
    if (ideal.can_place(t.demand)) ideal.place(t);
    if (with_null.can_place(t.demand)) with_null.place(t);
  }
  EXPECT_EQ(ideal.num_running(), with_null.num_running());
  EXPECT_EQ(ideal.advance_to_next_finish(), with_null.advance_to_next_finish());
  EXPECT_TRUE(with_null.schedule().attempts().empty());
}

TEST(FaultSim, AdvanceUntilRefusesToGoBackwards) {
  ClusterSim sim(cap(), failing_injector(0.0, 1));
  sim.advance_until(5);
  EXPECT_EQ(sim.now(), 5);
  EXPECT_THROW(sim.advance_until(3), std::invalid_argument);
}

// --- Fault-aware schedule validation ---

TEST(FaultValidate, AcceptsARealFaultySimulation) {
  const Dag dag = testing::make_independent(6, 8);
  const auto injector = failing_injector(0.4, 7);
  ClusterSim sim(cap(), injector);
  std::vector<TaskId> todo;
  for (const auto& t : dag.tasks()) todo.push_back(t.id);
  std::size_t done = 0;
  while (done < dag.num_tasks()) {
    bool placed = false;
    for (auto it = todo.begin(); it != todo.end();) {
      if (sim.can_place(dag.task(*it).demand)) {
        sim.place(dag.task(*it));
        it = todo.erase(it);
        placed = true;
      } else {
        ++it;
      }
    }
    (void)placed;
    done += sim.advance_to_next_finish().size();
    for (TaskId failed : sim.take_failed()) todo.push_back(failed);
  }
  EXPECT_EQ(sim.schedule().validate_under_faults(dag, cap(), *injector),
            std::nullopt);
}

TEST(FaultValidate, RejectsTamperedAttemptRecords) {
  const Dag dag = testing::make_chain({10});
  const auto injector = failing_injector(0.0, 1);

  // A fabricated schedule whose attempt duration disagrees with the
  // injector (which, at rate 0, says every attempt runs the full runtime).
  Schedule forged;
  forged.add(0, 0);
  forged.add_attempt(0, 0, 0, 4, true);  // injector says duration 10
  const auto error = forged.validate_under_faults(dag, cap(), *injector);
  ASSERT_TRUE(error.has_value());

  // Missing completed attempt.
  Schedule incomplete;
  incomplete.add(0, 0);
  incomplete.add_attempt(0, 0, 0, 10, false);
  EXPECT_TRUE(incomplete.validate_under_faults(dag, cap(), *injector)
                  .has_value());
}

TEST(FaultValidate, RejectsRetryBeforeFailureResolves) {
  // Need a trace where attempt 0 fails and attempt 1 completes, so the
  // only violation left to flag is the overlap.
  const Dag dag = testing::make_chain({10});
  std::shared_ptr<const FaultInjector> injector;
  for (std::uint64_t seed = 1; seed < 100; ++seed) {
    auto candidate = failing_injector(0.5, seed);
    if (candidate->attempt_outcome(dag.task(0), 0).fails &&
        !candidate->attempt_outcome(dag.task(0), 1).fails) {
      injector = candidate;
      break;
    }
  }
  ASSERT_TRUE(injector);
  const Time fail_at = injector->attempt_outcome(dag.task(0), 0).duration;
  ASSERT_GE(fail_at, 1);

  Schedule overlapping;
  // Second attempt starts before the first attempt's failure point.
  overlapping.add_attempt(0, 0, 0, fail_at, false);
  overlapping.add_attempt(0, 1, fail_at - 1,
                          injector->attempt_outcome(dag.task(0), 1).duration,
                          true);
  overlapping.add(0, fail_at - 1);
  const auto error = overlapping.validate_under_faults(dag, cap(), *injector);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("releases its resources"), std::string::npos);
}

}  // namespace
}  // namespace spear
