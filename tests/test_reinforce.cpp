#include "rl/reinforce.h"

#include <memory>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "dag/generator.h"
#include "rl/imitation.h"
#include "support/builders.h"

namespace spear {
namespace {

ResourceVector cap() { return ResourceVector{1.0, 1.0}; }

Policy make_tiny_policy(Rng& rng) {
  FeaturizerOptions options;
  options.max_ready = 4;
  options.horizon = 6;
  return Policy::make(options, 2, rng, {16});
}

TEST(Reinforce, ValidatesArguments) {
  Rng rng(1);
  Policy policy = make_tiny_policy(rng);
  EXPECT_THROW(train_reinforce(policy, {}, cap(), {}, rng),
               std::invalid_argument);
  ReinforceOptions bad;
  bad.rollouts_per_example = 0;
  const std::vector<Dag> dags = {testing::make_chain({1, 2})};
  EXPECT_THROW(train_reinforce(policy, dags, cap(), bad, rng),
               std::invalid_argument);
}

TEST(Reinforce, RecordsOneEntryPerEpoch) {
  Rng rng(2);
  Policy policy = make_tiny_policy(rng);
  const std::vector<Dag> dags = {testing::make_chain({2, 3})};
  ReinforceOptions options;
  options.epochs = 4;
  options.rollouts_per_example = 3;
  const auto result = train_reinforce(policy, dags, cap(), options, rng);
  ASSERT_EQ(result.epoch_mean_makespan.size(), 4u);
  // A 2-task chain always has makespan 5 regardless of policy.
  for (double m : result.epoch_mean_makespan) EXPECT_DOUBLE_EQ(m, 5.0);
}

TEST(Reinforce, ProgressCallbackInvokedEveryEpoch) {
  Rng rng(3);
  Policy policy = make_tiny_policy(rng);
  const std::vector<Dag> dags = {testing::make_chain({1, 1})};
  ReinforceOptions options;
  options.epochs = 3;
  options.rollouts_per_example = 2;
  std::size_t calls = 0;
  train_reinforce(policy, dags, cap(), options, rng,
                  [&](std::size_t epoch, double makespan) {
                    EXPECT_EQ(epoch, calls);
                    EXPECT_GT(makespan, 0.0);
                    ++calls;
                  });
  EXPECT_EQ(calls, 3u);
}

TEST(Reinforce, DeterministicGivenSeeds) {
  DagGeneratorOptions gen;
  gen.num_tasks = 8;
  Rng dag_rng(4);
  const auto dags = generate_random_dags(gen, 2, dag_rng);
  auto run = [&](std::uint64_t seed) {
    Rng rng(seed);
    Policy policy = make_tiny_policy(rng);
    ReinforceOptions options;
    options.epochs = 3;
    options.rollouts_per_example = 3;
    Rng train_rng(seed + 100);
    return train_reinforce(policy, dags, cap(), options, train_rng)
        .epoch_mean_makespan;
  };
  EXPECT_EQ(run(5), run(5));
}

TEST(Reinforce, ImprovesSchedulingOnPackingProblem) {
  // A workload with a real decision: pairs of complementary tasks pack into
  // half the time if scheduled in the right combination.  Starting from a
  // CP-pretrained policy, REINFORCE should not regress and typically
  // improves the mean makespan.
  DagGeneratorOptions gen;
  gen.num_tasks = 12;
  Rng dag_rng(6);
  const auto dags = generate_random_dags(gen, 3, dag_rng);

  Rng rng(7);
  Policy policy = make_tiny_policy(rng);
  ImitationOptions imitation;
  imitation.epochs = 10;
  pretrain_on_cp(policy, dags, cap(), imitation, rng);

  ReinforceOptions options;
  options.epochs = 25;
  options.rollouts_per_example = 6;
  options.optimizer.learning_rate = 1e-3;
  const auto result = train_reinforce(policy, dags, cap(), options, rng);

  const auto& curve = result.epoch_mean_makespan;
  ASSERT_EQ(curve.size(), 25u);
  const double early =
      mean(std::vector<double>(curve.begin(), curve.begin() + 5));
  const double late =
      mean(std::vector<double>(curve.end() - 5, curve.end()));
  // Allow noise but demand no serious regression.
  EXPECT_LE(late, early * 1.05);
}

TEST(Reinforce, EpisodeReturnsCountEverySlotEvenWithJumps) {
  // With jump_on_process, the per-epoch mean makespan must still equal the
  // true makespan (chain of total runtime 7 => makespan 7).
  Rng rng(8);
  Policy policy = make_tiny_policy(rng);
  const std::vector<Dag> dags = {testing::make_chain({3, 4})};
  ReinforceOptions options;
  options.epochs = 1;
  options.rollouts_per_example = 2;
  options.jump_on_process = true;
  const auto result = train_reinforce(policy, dags, cap(), options, rng);
  EXPECT_DOUBLE_EQ(result.epoch_mean_makespan[0], 7.0);
}

}  // namespace
}  // namespace spear
