#include "dag/features.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dag/generator.h"
#include "support/builders.h"

namespace spear {
namespace {

using testing::make_chain;
using testing::make_diamond;
using testing::make_independent;

TEST(DagFeatures, ChainBLevels) {
  // t0(3) -> t1(5) -> t2(2): b-levels 10, 7, 2.
  Dag dag = make_chain({3, 5, 2});
  DagFeatures f(dag);
  EXPECT_EQ(f.b_level(0), 10);
  EXPECT_EQ(f.b_level(1), 7);
  EXPECT_EQ(f.b_level(2), 2);
  EXPECT_EQ(f.critical_path(), 10);
}

TEST(DagFeatures, IndependentTasksBLevelIsOwnRuntime) {
  Dag dag = make_independent(4, 6);
  DagFeatures f(dag);
  for (const auto& t : dag.tasks()) {
    EXPECT_EQ(f.b_level(t.id), 6);
    EXPECT_EQ(f.num_children(t.id), 0u);
    EXPECT_EQ(f.num_descendants(t.id), 0u);
  }
  EXPECT_EQ(f.critical_path(), 6);
}

TEST(DagFeatures, DiamondBLevelTakesLongerBranch) {
  // a(2) -> b(7), c(3); b,c -> d(1).  b-level(a) = 2 + 7 + 1 = 10.
  Dag dag = make_diamond(2, 7, 3, 1);
  DagFeatures f(dag);
  EXPECT_EQ(f.b_level(0), 10);
  EXPECT_EQ(f.b_level(1), 8);
  EXPECT_EQ(f.b_level(2), 4);
  EXPECT_EQ(f.b_level(3), 1);
  EXPECT_EQ(f.critical_path(), 10);
}

TEST(DagFeatures, ChildrenAndDescendants) {
  Dag dag = make_diamond(1, 1, 1, 1);
  DagFeatures f(dag);
  EXPECT_EQ(f.num_children(0), 2u);
  EXPECT_EQ(f.num_children(1), 1u);
  EXPECT_EQ(f.num_children(3), 0u);
  EXPECT_EQ(f.num_descendants(0), 3u);
  EXPECT_EQ(f.num_descendants(1), 1u);
  EXPECT_EQ(f.num_descendants(3), 0u);
}

TEST(DagFeatures, BLoadAccumulatesAlongBLevelPath) {
  // Chain with distinct demands: t0(2, {0.5,0.1}) -> t1(3, {0.2,0.4}).
  DagBuilder builder;
  const TaskId a = builder.add_task(2, ResourceVector{0.5, 0.1});
  const TaskId b = builder.add_task(3, ResourceVector{0.2, 0.4});
  builder.add_edge(a, b);
  Dag dag = std::move(builder).build();
  DagFeatures f(dag);
  EXPECT_DOUBLE_EQ(f.b_load(b, kCpu), 3 * 0.2);
  EXPECT_DOUBLE_EQ(f.b_load(b, kMem), 3 * 0.4);
  EXPECT_DOUBLE_EQ(f.b_load(a, kCpu), 2 * 0.5 + 3 * 0.2);
  EXPECT_DOUBLE_EQ(f.b_load(a, kMem), 2 * 0.1 + 3 * 0.4);
}

TEST(DagFeatures, BLoadFollowsDominantChild) {
  // Root with two children: long child (runtime 9) vs short (runtime 1).
  // b-load must accumulate along the *long* (b-level) path.
  DagBuilder builder;
  const TaskId root = builder.add_task(1, ResourceVector{0.1, 0.1});
  const TaskId heavy = builder.add_task(9, ResourceVector{0.9, 0.9});
  const TaskId light = builder.add_task(1, ResourceVector{0.2, 0.2});
  builder.add_edge(root, heavy);
  builder.add_edge(root, light);
  Dag dag = std::move(builder).build();
  DagFeatures f(dag);
  EXPECT_DOUBLE_EQ(f.b_load(root, kCpu), 1 * 0.1 + 9 * 0.9);
}

TEST(DagFeatures, SingleTask) {
  DagBuilder builder;
  builder.add_task(4, ResourceVector{0.3, 0.6});
  Dag dag = std::move(builder).build();
  DagFeatures f(dag);
  EXPECT_EQ(f.b_level(0), 4);
  EXPECT_DOUBLE_EQ(f.b_load(0, kCpu), 4 * 0.3);
  EXPECT_EQ(f.critical_path(), 4);
}

// Property: on random DAGs, b-level satisfies its recurrence and the
// critical path is the max b-level (attained at some source-reachable task).
class FeaturePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FeaturePropertyTest, BLevelRecurrenceHolds) {
  Rng rng(GetParam());
  DagGeneratorOptions options;
  options.num_tasks = 80;
  Dag dag = generate_random_dag(options, rng);
  DagFeatures f(dag);

  Time max_b = 0;
  for (const auto& t : dag.tasks()) {
    Time best_child = 0;
    for (TaskId c : dag.children(t.id)) {
      best_child = std::max(best_child, f.b_level(c));
    }
    EXPECT_EQ(f.b_level(t.id), t.runtime + best_child);
    EXPECT_GE(f.b_level(t.id), t.runtime);
    max_b = std::max(max_b, f.b_level(t.id));
    // b-load is at least the task's own load and at most the whole DAG load.
    for (std::size_t r = 0; r < dag.resource_dims(); ++r) {
      EXPECT_GE(f.b_load(t.id, r),
                static_cast<double>(t.runtime) * t.demand[r] - 1e-12);
      EXPECT_LE(f.b_load(t.id, r), dag.total_load(r) + 1e-12);
    }
    // Descendant count at least direct children.
    EXPECT_GE(f.num_descendants(t.id), f.num_children(t.id));
  }
  EXPECT_EQ(f.critical_path(), max_b);
  EXPECT_LE(f.critical_path(), dag.total_runtime());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FeaturePropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace spear
