#include "common/logging.h"

#include <gtest/gtest.h>

namespace spear {
namespace {

TEST(Logging, LevelRoundTrips) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(original);
}

TEST(Logging, SuppressedMessagesDoNotEvaluateExpensively) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  // Streaming below the threshold must be safe and cheap; we can at least
  // assert it does not crash and leaves the level untouched.
  SPEAR_LOG(Debug) << "hidden " << 42;
  SPEAR_LOG(Info) << "also hidden";
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(original);
}

TEST(Logging, EmittingMessagesDoesNotCrash) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kDebug);
  SPEAR_LOG(Debug) << "debug " << 1;
  SPEAR_LOG(Info) << "info " << 2.5;
  SPEAR_LOG(Warn) << "warn " << "three";
  SPEAR_LOG(Error) << "error";
  set_log_level(original);
}

}  // namespace
}  // namespace spear
