// Leaf-parallel MCTS (DESIGN.md §11): seeded determinism across worker
// counts, stats reconciliation, cache bit-identity, and the serial
// fallback for uncloneable guides.

#include "mcts/mcts.h"

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "dag/generator.h"
#include "fault/fault.h"
#include "mcts/policies.h"
#include "rl/policy.h"
#include "support/builders.h"

namespace spear {
namespace {

ResourceVector cap() { return ResourceVector{1.0, 1.0}; }

Dag test_dag(std::uint64_t seed, std::size_t tasks = 16) {
  DagGeneratorOptions gen;
  gen.num_tasks = tasks;
  Rng rng(seed);
  return generate_random_dag(gen, rng);
}

std::shared_ptr<DrlDecisionPolicy> make_guide(bool greedy = true) {
  Rng rng(5);
  auto policy = std::make_shared<const Policy>(
      Policy::make(FeaturizerOptions{}, 2, rng, {16}));
  return std::make_shared<DrlDecisionPolicy>(std::move(policy), greedy);
}

MctsOptions leaf_options(int threads) {
  MctsOptions options;
  options.initial_budget = 48;
  options.min_budget = 16;
  options.num_threads = threads;
  options.search_mode = SearchMode::kLeaf;
  options.seed = 77;
  return options;
}

std::vector<Placement> run_leaf(const MctsOptions& options, const Dag& dag,
                                std::shared_ptr<DecisionPolicy> guide) {
  MctsScheduler mcts(options, std::move(guide));
  return mcts.schedule(dag, cap()).placements();
}

void expect_same_placements(const std::vector<Placement>& a,
                            const std::vector<Placement>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].task, b[i].task) << "placement " << i;
    EXPECT_EQ(a[i].start, b[i].start) << "placement " << i;
  }
}

TEST(LeafMcts, RejectsBadBatchSize) {
  MctsOptions options = leaf_options(2);
  options.leaf_batch_size = 0;
  EXPECT_THROW(MctsScheduler{options}, std::invalid_argument);
}

TEST(LeafMcts, SameSeedSameThreadsIsDeterministic) {
  const Dag dag = test_dag(21);
  for (const int threads : {1, 2, 4}) {
    const auto first = run_leaf(leaf_options(threads), dag, make_guide());
    const auto second = run_leaf(leaf_options(threads), dag, make_guide());
    expect_same_placements(first, second);
  }
}

TEST(LeafMcts, ResultsIndependentOfThreadCount) {
  // Descents are coordinator-serial, rollout RNG streams are keyed by slot
  // (not worker), and backups fold in slot order — so the worker count only
  // changes WHO computes each job, never the search.
  const Dag dag = test_dag(22);
  const auto reference = run_leaf(leaf_options(1), dag, make_guide());
  for (const int threads : {2, 4}) {
    expect_same_placements(reference,
                           run_leaf(leaf_options(threads), dag, make_guide()));
  }
}

TEST(LeafMcts, PureMctsAlsoThreadCountInvariant) {
  // No guide = the classic uniform-random rollout policy, which exercises
  // the sampling (RNG-consuming) pick path through the slot streams.
  const Dag dag = test_dag(23, 12);
  const auto reference = run_leaf(leaf_options(1), dag, nullptr);
  for (const int threads : {2, 4}) {
    expect_same_placements(reference,
                           run_leaf(leaf_options(threads), dag, nullptr));
  }
}

TEST(LeafMcts, IterationCountersReconcileWithBudget) {
  // Flat budget + no deadline: every searched decision runs its budget to
  // completion, so the totals must reconcile EXACTLY — the folded
  // per-worker tallies cannot drop or double-count a slot.
  const Dag dag = test_dag(24);
  for (const int threads : {1, 2, 4}) {
    MctsOptions options = leaf_options(threads);
    options.decay_budget = false;
    options.initial_budget = 32;
    options.leaf_batch_size = 8;
    MctsScheduler mcts(options, make_guide());
    mcts.schedule(dag, cap());
    const auto& stats = mcts.last_stats();
    const std::int64_t searched = stats.decisions - stats.forced_decisions;
    ASSERT_GT(searched, 0);
    EXPECT_EQ(stats.iterations, searched * 32) << "threads " << threads;
    // 8-slot ticks over a 32-iteration budget: exactly 4 ticks a decision.
    EXPECT_EQ(stats.leaf_ticks, searched * 4) << "threads " << threads;
    // Every iteration runs at most one rollout (terminal and aborted
    // expansions skip theirs); every expansion probes the TT at most once.
    EXPECT_GT(stats.rollouts, 0);
    EXPECT_LE(stats.rollouts, stats.iterations);
    EXPECT_LE(stats.tt_hits + stats.tt_misses, stats.nodes_expanded);
    EXPECT_EQ(stats.deadline_cutoffs, 0);
  }
}

TEST(LeafMcts, FaultCountersThreadInvariant) {
  FaultOptions fault_options;
  fault_options.fault_rate = 0.3;
  fault_options.seed = 9;
  const Dag dag = test_dag(25, 10);

  std::vector<MctsScheduler::Stats> per_threads;
  std::vector<std::vector<Placement>> schedules;
  for (const int threads : {1, 2, 4}) {
    MctsOptions options = leaf_options(threads);
    options.faults = std::make_shared<const FaultInjector>(fault_options, cap());
    MctsScheduler mcts(options, make_guide());
    schedules.push_back(mcts.schedule(dag, cap()).placements());
    per_threads.push_back(mcts.last_stats());
  }
  for (std::size_t i = 1; i < per_threads.size(); ++i) {
    expect_same_placements(schedules[0], schedules[i]);
    EXPECT_EQ(per_threads[0].iterations, per_threads[i].iterations);
    EXPECT_EQ(per_threads[0].search_failures, per_threads[i].search_failures);
    EXPECT_EQ(per_threads[0].search_retries, per_threads[i].search_retries);
    EXPECT_EQ(per_threads[0].search_aborts, per_threads[i].search_aborts);
    EXPECT_EQ(per_threads[0].task_failures, per_threads[i].task_failures);
    EXPECT_EQ(per_threads[0].task_retries, per_threads[i].task_retries);
  }
}

TEST(LeafMcts, VirtualLossCollisionsObserved) {
  // Multi-slot ticks force concurrent descents through shared prefixes;
  // the collision counter proves virtual loss actually engaged.
  const Dag dag = test_dag(26);
  MctsOptions options = leaf_options(2);
  options.leaf_batch_size = 16;
  MctsScheduler mcts(options, make_guide());
  mcts.schedule(dag, cap());
  EXPECT_GT(mcts.last_stats().vloss_collisions, 0);
}

TEST(LeafMcts, BatchedEvaluatorRuns) {
  const Dag dag = test_dag(27);
  MctsOptions options = leaf_options(2);
  MctsScheduler mcts(options, make_guide());
  mcts.schedule(dag, cap());
  const auto& stats = mcts.last_stats();
  EXPECT_GT(stats.leaf_ticks, 0);
  EXPECT_GT(stats.batched_evals, 0);
  EXPECT_GE(stats.batched_rows, stats.batched_evals);
  // Greedy DRL rollouts replay heavily (first-child expansion re-walks the
  // parent's rollout), so the workers' action caches must be hitting.
  EXPECT_GT(stats.rollout_cache_hits, 0);
}

TEST(LeafMcts, CachesOffMatchCachesOnBitForBit) {
  // Priors are cached, never values, and greedy picks are pure functions
  // of the state — so disabling every cache must reproduce the schedule
  // exactly, just slower.
  const Dag dag = test_dag(28);
  MctsOptions with_cache = leaf_options(2);
  MctsScheduler on(with_cache, make_guide());
  const auto on_placements = on.schedule(dag, cap()).placements();
  ASSERT_GT(on.last_stats().tt_hits + on.last_stats().tt_misses, 0);

  MctsOptions without_cache = with_cache;
  without_cache.transposition_capacity = 0;
  MctsScheduler off(without_cache, make_guide());
  const auto off_placements = off.schedule(dag, cap()).placements();
  EXPECT_EQ(off.last_stats().tt_hits, 0);
  EXPECT_EQ(off.last_stats().tt_misses, 0);
  EXPECT_EQ(off.last_stats().rollout_cache_hits, 0);
  EXPECT_EQ(off.last_stats().rollout_cache_misses, 0);

  expect_same_placements(on_placements, off_placements);
}

TEST(LeafMcts, SamplingGuideKeepsRolloutCacheCold) {
  // Sampled picks consume RNG, so the action cache must stay disarmed for
  // them — a cached action would skip the draw and shift the stream.
  const Dag dag = test_dag(29, 12);
  MctsScheduler mcts(leaf_options(2), make_guide(/*greedy=*/false));
  mcts.schedule(dag, cap());
  EXPECT_EQ(mcts.last_stats().rollout_cache_hits, 0);
  EXPECT_EQ(mcts.last_stats().rollout_cache_misses, 0);
}

TEST(LeafMcts, NoTreeReuseStillValid) {
  const Dag dag = test_dag(30);
  MctsOptions options = leaf_options(2);
  options.leaf_tree_reuse = false;
  MctsScheduler mcts(options, make_guide());
  DagFeatures features(dag);
  const Time makespan = validated_makespan(mcts, dag, cap());
  EXPECT_GE(makespan, features.critical_path());
  EXPECT_LE(makespan, dag.total_runtime());
  EXPECT_GT(mcts.last_stats().leaf_ticks, 0);
}

TEST(LeafMcts, UncloneableGuideFallsBackToSerial) {
  class UncloneableGuide : public DecisionPolicy {
   public:
    std::vector<std::pair<int, double>> action_weights(
        const SchedulingEnv& env) override {
      std::vector<std::pair<int, double>> out;
      for (int action : env.valid_actions()) out.emplace_back(action, 1.0);
      return out;
    }
    // clone() keeps the default nullptr: not safe to share across workers.
  };

  const Dag dag = test_dag(31, 10);
  MctsOptions options = leaf_options(2);
  MctsScheduler mcts(options, std::make_shared<UncloneableGuide>());
  DagFeatures features(dag);
  const Time makespan = validated_makespan(mcts, dag, cap());
  EXPECT_GE(makespan, features.critical_path());
  EXPECT_LE(makespan, dag.total_runtime());
  // The serial search ran instead: no ticks, no evaluator telemetry.
  EXPECT_EQ(mcts.last_stats().leaf_ticks, 0);
  EXPECT_EQ(mcts.last_stats().tt_hits + mcts.last_stats().tt_misses, 0);
}

}  // namespace
}  // namespace spear
