#include "common/stats.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace spear {
namespace {

TEST(Stats, MeanBasics) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Stats, StddevBasics) {
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({4.0}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({2.0, 2.0, 2.0}), 0.0);
  // Sample (N-1) sd of {1, 3}: sqrt(((1-2)^2 + (3-2)^2) / 1) = sqrt(2).
  EXPECT_DOUBLE_EQ(stddev({1.0, 3.0}), std::sqrt(2.0));
  // Sample sd of {2, 4, 4, 4, 5, 5, 7, 9}: variance 32/7.
  EXPECT_DOUBLE_EQ(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
                   std::sqrt(32.0 / 7.0));
}

TEST(Stats, MinMax) {
  EXPECT_DOUBLE_EQ(min_of({3.0, -1.0, 2.0}), -1.0);
  EXPECT_DOUBLE_EQ(max_of({3.0, -1.0, 2.0}), 3.0);
  EXPECT_TRUE(std::isnan(min_of({})));
  EXPECT_TRUE(std::isnan(max_of({})));
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 17.5);
}

TEST(Stats, PercentileUnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile({30.0, 10.0, 20.0}, 50.0), 20.0);
}

TEST(Stats, PercentileClampsP) {
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, 200.0), 2.0);
}

TEST(Stats, PercentileEmptyThrows) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Stats, EmpiricalCdf) {
  const auto cdf = empirical_cdf({3.0, 1.0, 2.0, 2.0});
  ASSERT_EQ(cdf.size(), 4u);
  EXPECT_DOUBLE_EQ(cdf.front().value, 1.0);
  EXPECT_DOUBLE_EQ(cdf.front().fraction, 0.25);
  EXPECT_DOUBLE_EQ(cdf.back().value, 3.0);
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
  // Non-decreasing in both coordinates.
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].value, cdf[i].value);
    EXPECT_LT(cdf[i - 1].fraction, cdf[i].fraction);
  }
}

TEST(Stats, WinRate) {
  EXPECT_DOUBLE_EQ(win_rate({1.0, 5.0, 2.0}, {2.0, 5.0, 1.0}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(win_rate({}, {}), 0.0);
}

TEST(Stats, NoWorseRate) {
  EXPECT_DOUBLE_EQ(no_worse_rate({1.0, 5.0, 2.0}, {2.0, 5.0, 1.0}),
                   2.0 / 3.0);
}

TEST(Stats, WinRateSizeMismatchThrows) {
  EXPECT_THROW(win_rate({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(no_worse_rate({1.0}, {}), std::invalid_argument);
}

TEST(Stats, SummaryFields) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.stddev, std::sqrt(2.5));  // sample variance 10/4
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.p25, 2.0);
  EXPECT_DOUBLE_EQ(s.p75, 4.0);
}

TEST(Stats, SummaryEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, SummaryToStringMentionsFields) {
  const auto text = to_string(summarize({1.0, 2.0}));
  EXPECT_NE(text.find("n=2"), std::string::npos);
  EXPECT_NE(text.find("mean="), std::string::npos);
  EXPECT_NE(text.find("med="), std::string::npos);
}

}  // namespace
}  // namespace spear
