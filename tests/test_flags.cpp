#include "common/flags.h"

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace spear {
namespace {

std::vector<char*> argv_of(std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (auto& a : args) argv.push_back(a.data());
  return argv;
}

TEST(Flags, DefaultsWhenUnset) {
  Flags flags;
  auto i = flags.define_int("count", 5, "a count");
  auto d = flags.define_double("rate", 0.5, "a rate");
  auto b = flags.define_bool("verbose", false, "verbosity");
  auto s = flags.define_string("name", "x", "a name");
  std::vector<std::string> args = {"prog"};
  auto argv = argv_of(args);
  flags.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(*i, 5);
  EXPECT_DOUBLE_EQ(*d, 0.5);
  EXPECT_FALSE(*b);
  EXPECT_EQ(*s, "x");
}

TEST(Flags, EqualsSyntax) {
  Flags flags;
  auto i = flags.define_int("count", 0, "");
  auto d = flags.define_double("rate", 0.0, "");
  auto s = flags.define_string("name", "", "");
  std::vector<std::string> args = {"prog", "--count=7", "--rate=1.25",
                                   "--name=spear"};
  auto argv = argv_of(args);
  flags.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(*i, 7);
  EXPECT_DOUBLE_EQ(*d, 1.25);
  EXPECT_EQ(*s, "spear");
}

TEST(Flags, SpaceSeparatedValue) {
  Flags flags;
  auto i = flags.define_int("count", 0, "");
  std::vector<std::string> args = {"prog", "--count", "9"};
  auto argv = argv_of(args);
  flags.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(*i, 9);
}

TEST(Flags, BareBoolSetsTrue) {
  Flags flags;
  auto b = flags.define_bool("paper", false, "");
  std::vector<std::string> args = {"prog", "--paper"};
  auto argv = argv_of(args);
  flags.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(*b);
}

TEST(Flags, NoPrefixClearsBool) {
  Flags flags;
  auto b = flags.define_bool("paper", true, "");
  std::vector<std::string> args = {"prog", "--no-paper"};
  auto argv = argv_of(args);
  flags.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_FALSE(*b);
}

TEST(Flags, BoolExplicitValues) {
  Flags flags;
  auto b = flags.define_bool("x", false, "");
  std::vector<std::string> args = {"prog", "--x=true"};
  auto argv = argv_of(args);
  flags.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(*b);

  Flags flags2;
  auto b2 = flags2.define_bool("x", true, "");
  std::vector<std::string> args2 = {"prog", "--x=0"};
  auto argv2 = argv_of(args2);
  flags2.parse(static_cast<int>(argv2.size()), argv2.data());
  EXPECT_FALSE(*b2);
}

TEST(Flags, UnknownFlagThrows) {
  Flags flags;
  std::vector<std::string> args = {"prog", "--bogus=1"};
  auto argv = argv_of(args);
  EXPECT_THROW(flags.parse(static_cast<int>(argv.size()), argv.data()),
               std::runtime_error);
}

TEST(Flags, BadIntValueThrows) {
  Flags flags;
  flags.define_int("count", 0, "");
  std::vector<std::string> args = {"prog", "--count=abc"};
  auto argv = argv_of(args);
  EXPECT_THROW(flags.parse(static_cast<int>(argv.size()), argv.data()),
               std::runtime_error);
}

TEST(Flags, BadBoolValueThrows) {
  Flags flags;
  flags.define_bool("b", false, "");
  std::vector<std::string> args = {"prog", "--b=maybe"};
  auto argv = argv_of(args);
  EXPECT_THROW(flags.parse(static_cast<int>(argv.size()), argv.data()),
               std::runtime_error);
}

TEST(Flags, MissingValueThrows) {
  Flags flags;
  flags.define_int("count", 0, "");
  std::vector<std::string> args = {"prog", "--count"};
  auto argv = argv_of(args);
  EXPECT_THROW(flags.parse(static_cast<int>(argv.size()), argv.data()),
               std::runtime_error);
}

TEST(Flags, PositionalArgumentsCollected) {
  Flags flags;
  flags.define_int("n", 0, "");
  std::vector<std::string> args = {"prog", "input.txt", "--n=2", "other"};
  auto argv = argv_of(args);
  flags.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"input.txt", "other"}));
}

TEST(Flags, UsageListsFlagsAndDefaults) {
  Flags flags;
  flags.define_int("budget", 1000, "search budget");
  const auto usage = flags.usage("prog");
  EXPECT_NE(usage.find("--budget"), std::string::npos);
  EXPECT_NE(usage.find("1000"), std::string::npos);
  EXPECT_NE(usage.find("search budget"), std::string::npos);
}

TEST(Flags, PartialIntParseRejected) {
  // std::stoll alone would accept "10abc" as 10; the parser must demand
  // that the whole value is consumed.
  Flags flags;
  auto i = flags.define_int("seed", 42, "");
  std::vector<std::string> args = {"prog", "--seed=10abc"};
  auto argv = argv_of(args);
  EXPECT_THROW(flags.parse(static_cast<int>(argv.size()), argv.data()),
               std::runtime_error);
  EXPECT_EQ(*i, 42);  // the bad value must not half-apply
}

TEST(Flags, PartialDoubleParseRejected) {
  Flags flags;
  auto d = flags.define_double("fault-rate", 0.0, "");
  std::vector<std::string> args = {"prog", "--fault-rate=0.1x"};
  auto argv = argv_of(args);
  EXPECT_THROW(flags.parse(static_cast<int>(argv.size()), argv.data()),
               std::runtime_error);
  EXPECT_DOUBLE_EQ(*d, 0.0);
}

TEST(Flags, TrailingWhitespaceRejected) {
  Flags flags;
  flags.define_int("n", 0, "");
  std::vector<std::string> args = {"prog", "--n=5 "};
  auto argv = argv_of(args);
  EXPECT_THROW(flags.parse(static_cast<int>(argv.size()), argv.data()),
               std::runtime_error);
}

TEST(Flags, BoolValueWithSuffixRejected) {
  Flags flags;
  flags.define_bool("b", false, "");
  std::vector<std::string> args = {"prog", "--b=truex"};
  auto argv = argv_of(args);
  EXPECT_THROW(flags.parse(static_cast<int>(argv.size()), argv.data()),
               std::runtime_error);
}

TEST(Flags, ScientificNotationDoubleStillParses) {
  Flags flags;
  auto d = flags.define_double("rate", 0.0, "");
  std::vector<std::string> args = {"prog", "--rate=1e-3"};
  auto argv = argv_of(args);
  flags.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_DOUBLE_EQ(*d, 1e-3);
}

TEST(Flags, NegativeNumbersParse) {
  Flags flags;
  auto i = flags.define_int("x", 0, "");
  auto d = flags.define_double("y", 0.0, "");
  std::vector<std::string> args = {"prog", "--x=-5", "--y=-2.5"};
  auto argv = argv_of(args);
  flags.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(*i, -5);
  EXPECT_DOUBLE_EQ(*d, -2.5);
}

}  // namespace
}  // namespace spear
