#include "common/table.h"

#include <gtest/gtest.h>

namespace spear {
namespace {

TEST(Table, HeaderAndRule) {
  Table t({"alg", "makespan"});
  const auto text = t.to_string();
  EXPECT_NE(text.find("alg"), std::string::npos);
  EXPECT_NE(text.find("makespan"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(Table, MixedTypesFormatted) {
  Table t({"alg", "makespan", "count"});
  t.add("Spear", 820.118, 10);
  const auto text = t.to_string();
  EXPECT_NE(text.find("Spear"), std::string::npos);
  EXPECT_NE(text.find("820.12"), std::string::npos);  // 2 decimals default
  EXPECT_NE(text.find("10"), std::string::npos);
}

TEST(Table, PrecisionControl) {
  Table t({"v"});
  t.set_precision(4);
  t.add(1.23456);
  EXPECT_NE(t.to_string().find("1.2346"), std::string::npos);
}

TEST(Table, ColumnsAligned) {
  Table t({"a", "b"});
  t.add("longvalue", "x");
  t.add("s", "y");
  const auto text = t.to_string();
  // Find the column position of "b" in the header and of "x"/"y" in rows:
  // all should start at the same offset.
  const auto lines = [&] {
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos < text.size()) {
      const auto nl = text.find('\n', pos);
      out.push_back(text.substr(pos, nl - pos));
      pos = nl + 1;
    }
    return out;
  }();
  ASSERT_GE(lines.size(), 4u);
  const auto col = lines[0].find('b');
  EXPECT_EQ(lines[2].find('x'), col);
  EXPECT_EQ(lines[3].find('y'), col);
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  // Should not crash rendering; missing cells are empty.
  const auto text = t.to_string();
  EXPECT_NE(text.find("only"), std::string::npos);
}

}  // namespace
}  // namespace spear
