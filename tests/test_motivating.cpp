// The reconstructed motivating example (§II-C / Fig. 3): exhaustive search
// certifies the optimum, every greedy baseline is provably trapped, and
// MCTS/Spear escape the trap.  This is the paper's headline phenomenon as
// an executable regression test.

#include "dag/gallery.h"

#include <gtest/gtest.h>

#include "core/spear.h"
#include "rl/imitation.h"
#include "sched/critical_path.h"
#include "sched/graphene.h"
#include "sched/sjf.h"
#include "sched/tetris.h"
#include "support/brute_force.h"

namespace spear {
namespace {

ResourceVector cap() { return ResourceVector{1.0, 1.0}; }

TEST(MotivatingExample, BruteForceOptimumIsTwentyNine) {
  const Dag dag = motivating_example_dag();
  const auto optimal = testing::optimal_makespan(dag, cap());
  ASSERT_TRUE(optimal.has_value());
  EXPECT_EQ(*optimal, kMotivatingExampleOptimum);
}

TEST(MotivatingExample, EveryGreedyBaselineIsTrapped) {
  const Dag dag = motivating_example_dag();
  for (const auto& baseline :
       {make_tetris_scheduler(), make_sjf_scheduler(),
        make_critical_path_scheduler(), make_graphene_scheduler()}) {
    EXPECT_EQ(validated_makespan(*baseline, dag, cap()), 39) << baseline->name();
  }
}

TEST(MotivatingExample, MctsFindsTheOptimum) {
  const Dag dag = motivating_example_dag();
  // Deterministic given the seed; 42 is the library default and finds the
  // optimum with this budget (other seeds may land at 30 — still far below
  // the 39 the greedy baselines are stuck at).
  auto mcts = make_mcts_scheduler(400, 100, /*seed=*/42);
  EXPECT_EQ(validated_makespan(*mcts, dag, cap()),
            kMotivatingExampleOptimum);
}

TEST(MotivatingExample, SpearFindsTheOptimum) {
  const Dag dag = motivating_example_dag();
  // A lightly imitation-trained policy guiding a modest budget.
  Rng rng(9);
  FeaturizerOptions featurizer;
  featurizer.max_ready = 8;
  featurizer.horizon = 10;
  Policy policy = Policy::make(featurizer, 2, rng, {32});
  ImitationOptions imitation;
  imitation.epochs = 10;
  imitation.optimizer.learning_rate = 1e-3;
  pretrain_on_cp(policy, {dag}, cap(), imitation, rng);

  SpearOptions options;
  options.initial_budget = 400;
  options.min_budget = 100;
  options.seed = 2;
  // The policy here is imitation-only (CP-like), and the instance is built
  // to trap CP; sampled rollouts supply the exploration that deterministic
  // expert rollouts would lack on this adversarial DAG.
  options.sample_rollouts = true;
  auto spear = make_spear_scheduler(
      std::make_shared<const Policy>(std::move(policy)), options);
  EXPECT_EQ(validated_makespan(*spear, dag, cap()),
            kMotivatingExampleOptimum);
}

TEST(MotivatingExample, ReductionMatchesPaperHeadline) {
  // 29 vs 39 is a 25.6% reduction — consistent with the paper's reported
  // "up to 20%" improvements over Graphene (ours is an upper-envelope
  // instance by construction).
  const double reduction = (39.0 - 29.0) / 39.0;
  EXPECT_GT(reduction, 0.20);
}

}  // namespace
}  // namespace spear
