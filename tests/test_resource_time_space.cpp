#include "cluster/resource_time_space.h"

#include <stdexcept>

#include <gtest/gtest.h>

namespace spear {
namespace {

ResourceVector cap() { return ResourceVector{1.0, 1.0}; }

TEST(ResourceTimeSpace, StartsIdle) {
  ResourceTimeSpace space(cap());
  EXPECT_EQ(space.origin(), 0);
  EXPECT_EQ(space.horizon(), 0);
  EXPECT_TRUE(space.used_at(0) == ResourceVector(2));
  EXPECT_TRUE(space.available_at(5) == cap());
}

TEST(ResourceTimeSpace, PlaceRecordsUsage) {
  ResourceTimeSpace space(cap());
  space.place(ResourceVector{0.5, 0.25}, 2, 3);
  EXPECT_TRUE(space.used_at(1) == ResourceVector(2));
  for (Time t = 2; t < 5; ++t) {
    EXPECT_DOUBLE_EQ(space.used_at(t)[kCpu], 0.5);
    EXPECT_DOUBLE_EQ(space.used_at(t)[kMem], 0.25);
  }
  EXPECT_TRUE(space.used_at(5) == ResourceVector(2));
  EXPECT_EQ(space.horizon(), 5);
}

TEST(ResourceTimeSpace, FitsChecksEverySlot) {
  ResourceTimeSpace space(cap());
  space.place(ResourceVector{0.8, 0.8}, 3, 2);  // busy in [3, 5)
  EXPECT_TRUE(space.fits(ResourceVector{0.5, 0.5}, 0, 3));
  EXPECT_FALSE(space.fits(ResourceVector{0.5, 0.5}, 0, 4));  // overlaps slot 3
  EXPECT_TRUE(space.fits(ResourceVector{0.2, 0.2}, 0, 10));
  EXPECT_TRUE(space.fits(ResourceVector{0.5, 0.5}, 5, 100));
}

TEST(ResourceTimeSpace, EarliestStartSkipsConflicts) {
  ResourceTimeSpace space(cap());
  space.place(ResourceVector{0.7, 0.7}, 0, 4);
  EXPECT_EQ(space.earliest_start(ResourceVector{0.5, 0.5}, 2, 0), 4);
  EXPECT_EQ(space.earliest_start(ResourceVector{0.2, 0.2}, 2, 0), 0);
  EXPECT_EQ(space.earliest_start(ResourceVector{0.5, 0.5}, 2, 10), 10);
}

TEST(ResourceTimeSpace, EarliestStartFindsGap) {
  ResourceTimeSpace space(cap());
  space.place(ResourceVector{0.9, 0.9}, 0, 2);
  space.place(ResourceVector{0.9, 0.9}, 5, 2);
  // A 3-slot window fits exactly in the gap [2, 5).
  EXPECT_EQ(space.earliest_start(ResourceVector{0.5, 0.5}, 3, 0), 2);
  // A 4-slot window must go after the second block.
  EXPECT_EQ(space.earliest_start(ResourceVector{0.5, 0.5}, 4, 0), 7);
}

TEST(ResourceTimeSpace, EarliestStartOversizedDemandThrows) {
  ResourceTimeSpace space(cap());
  EXPECT_THROW(space.earliest_start(ResourceVector{1.5, 0.5}, 1, 0),
               std::invalid_argument);
}

TEST(ResourceTimeSpace, LatestStartPacksAgainstDeadline) {
  ResourceTimeSpace space(cap());
  EXPECT_EQ(space.latest_start(ResourceVector{0.5, 0.5}, 3, 0, 10), 7);
}

TEST(ResourceTimeSpace, LatestStartAvoidsConflicts) {
  ResourceTimeSpace space(cap());
  space.place(ResourceVector{0.8, 0.8}, 8, 2);  // busy [8, 10)
  EXPECT_EQ(space.latest_start(ResourceVector{0.5, 0.5}, 3, 0, 10), 5);
}

TEST(ResourceTimeSpace, LatestStartReturnsInvalidWhenNoRoom) {
  ResourceTimeSpace space(cap());
  space.place(ResourceVector{0.8, 0.8}, 0, 10);
  EXPECT_EQ(space.latest_start(ResourceVector{0.5, 0.5}, 3, 0, 10),
            ResourceTimeSpace::kInvalidTime);
  // Window shorter than the duration is also impossible.
  EXPECT_EQ(space.latest_start(ResourceVector{0.1, 0.1}, 20, 0, 10),
            ResourceTimeSpace::kInvalidTime);
}

TEST(ResourceTimeSpace, PlaceOverCapacityThrows) {
  ResourceTimeSpace space(cap());
  space.place(ResourceVector{0.6, 0.6}, 0, 5);
  EXPECT_THROW(space.place(ResourceVector{0.5, 0.5}, 2, 2),
               std::invalid_argument);
  // Same demand fits after the conflict window.
  space.place(ResourceVector{0.5, 0.5}, 5, 2);
}

TEST(ResourceTimeSpace, PlaceValidatesArguments) {
  ResourceTimeSpace space(cap());
  EXPECT_THROW(space.place(ResourceVector{0.1, 0.1}, -1, 2),
               std::invalid_argument);
  EXPECT_THROW(space.place(ResourceVector{0.1, 0.1}, 0, 0),
               std::invalid_argument);
}

TEST(ResourceTimeSpace, StackedPlacementsSumExactlyToCapacity) {
  ResourceTimeSpace space(cap());
  for (int i = 0; i < 10; ++i) {
    space.place(ResourceVector{0.1, 0.1}, 0, 3);
  }
  EXPECT_NEAR(space.available_at(0)[kCpu], 0.0, 1e-9);
  // Capacity exactly consumed: nothing more fits...
  EXPECT_FALSE(space.fits(ResourceVector{0.05, 0.05}, 0, 1));
  // ...but zero demand does.
  EXPECT_TRUE(space.fits(ResourceVector{0.0, 0.0}, 0, 1));
}

TEST(ResourceTimeSpace, AdvanceOriginDropsPast) {
  ResourceTimeSpace space(cap());
  space.place(ResourceVector{0.5, 0.5}, 0, 4);
  space.advance_origin(2);
  EXPECT_EQ(space.origin(), 2);
  EXPECT_DOUBLE_EQ(space.used_at(2)[kCpu], 0.5);
  EXPECT_DOUBLE_EQ(space.used_at(3)[kCpu], 0.5);
  // Slots before the origin read as idle.
  EXPECT_TRUE(space.used_at(1) == ResourceVector(2));
  EXPECT_FALSE(space.fits(ResourceVector{0.1, 0.1}, 0, 1));  // past: no fit
}

TEST(ResourceTimeSpace, AdvanceOriginBackwardsThrows) {
  ResourceTimeSpace space(cap());
  space.advance_origin(5);
  EXPECT_THROW(space.advance_origin(3), std::invalid_argument);
}

TEST(ResourceTimeSpace, NegativeCapacityThrows) {
  EXPECT_THROW(ResourceTimeSpace(ResourceVector{-1.0, 1.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace spear
