#include "dag/merge.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dag/generator.h"
#include "sched/tetris.h"
#include "support/builders.h"

namespace spear {
namespace {

TEST(MergeDags, EmptyBatchIsEmptyDag) {
  const Dag merged = merge_dags({});
  EXPECT_TRUE(merged.empty());
}

TEST(MergeDags, SingleJobIsStructurallyIdentical) {
  Dag job = testing::make_diamond(1, 2, 3, 4);
  const Dag merged = merge_dags({job});
  ASSERT_EQ(merged.num_tasks(), job.num_tasks());
  EXPECT_EQ(merged.num_edges(), job.num_edges());
  for (const auto& t : job.tasks()) {
    EXPECT_EQ(merged.task(t.id).runtime, t.runtime);
    EXPECT_EQ(merged.children(t.id), job.children(t.id));
  }
}

TEST(MergeDags, OffsetsIdsAndPrefixesNames) {
  Dag a = testing::make_chain({2, 3});      // unnamed tasks
  Dag b = testing::make_diamond(1, 1, 1, 1);  // named a/b/c/d
  const Dag merged = merge_dags({a, b});
  ASSERT_EQ(merged.num_tasks(), 6u);
  EXPECT_EQ(merged.num_edges(), a.num_edges() + b.num_edges());
  // a's chain edge survives at offset 0.
  EXPECT_EQ(merged.children(0), std::vector<TaskId>{1});
  // b's root moved to id 2, with its children offset too.
  EXPECT_EQ(merged.children(2), (std::vector<TaskId>{3, 4}));
  EXPECT_EQ(merged.task(2).name, "j1/a");
  EXPECT_TRUE(merged.task(0).name.empty());
}

TEST(MergeDags, JobsStayIndependent) {
  Dag a = testing::make_chain({2, 3});
  Dag b = testing::make_chain({4, 5});
  const Dag merged = merge_dags({a, b});
  // No cross-job edges: both chain heads are sources.
  EXPECT_EQ(merged.sources().size(), 2u);
  EXPECT_EQ(merged.sinks().size(), 2u);
}

TEST(MergeDags, RejectsDimensionMismatch) {
  DagBuilder three(3);
  three.add_task(1, ResourceVector{0.1, 0.1, 0.1});
  Dag a = std::move(three).build();
  Dag b = testing::make_chain({1});
  EXPECT_THROW(merge_dags({a, b}), std::invalid_argument);
}

TEST(MergeDags, BatchSchedulesAsOneJob) {
  Rng rng(4);
  DagGeneratorOptions options;
  options.num_tasks = 12;
  const Dag a = generate_random_dag(options, rng);
  const Dag b = generate_random_dag(options, rng);
  const Dag merged = merge_dags({a, b});
  auto tetris = make_tetris_scheduler();
  const ResourceVector cap{1.0, 1.0};
  const Time batch = validated_makespan(*tetris, merged, cap);
  const Time alone_a = validated_makespan(*tetris, a, cap);
  const Time alone_b = validated_makespan(*tetris, b, cap);
  // Sharing the cluster can only help versus running serially, and the
  // batch cannot beat the longer job alone.
  EXPECT_LE(batch, alone_a + alone_b);
  EXPECT_GE(batch, std::max(alone_a, alone_b));
}

TEST(TetrisSrpt, WeightValidation) {
  EXPECT_THROW(make_tetris_srpt_scheduler(-0.1), std::invalid_argument);
  EXPECT_THROW(make_tetris_srpt_scheduler(1.1), std::invalid_argument);
}

TEST(TetrisSrpt, ZeroWeightMatchesPureTetris) {
  Rng rng(5);
  DagGeneratorOptions options;
  options.num_tasks = 25;
  const Dag dag = generate_random_dag(options, rng);
  const ResourceVector cap{1.0, 1.0};
  auto pure = make_tetris_scheduler();
  auto blended = make_tetris_srpt_scheduler(0.0);
  EXPECT_EQ(pure->schedule(dag, cap).makespan(dag),
            blended->schedule(dag, cap).makespan(dag));
}

TEST(TetrisSrpt, FullWeightPrefersShortRemainingWork) {
  // Two ready tasks that cannot co-run: SRPT picks the one with less
  // downstream work (lower b-level) first.
  DagBuilder builder;
  const TaskId chain_head = builder.add_task(5, ResourceVector{0.8, 0.8});
  const TaskId chain_tail = builder.add_task(10, ResourceVector{0.2, 0.2});
  builder.add_edge(chain_head, chain_tail);
  const TaskId lone = builder.add_task(5, ResourceVector{0.8, 0.8});
  Dag dag = std::move(builder).build();

  auto srpt = make_tetris_srpt_scheduler(1.0);
  const Schedule s = srpt->schedule(dag, ResourceVector{1.0, 1.0});
  EXPECT_EQ(s.start_of(lone), 0);  // b-level 5 < chain head's 15
}

TEST(TetrisSrpt, ValidSchedulesOnRandomDags) {
  Rng rng(6);
  DagGeneratorOptions options;
  options.num_tasks = 30;
  const Dag dag = generate_random_dag(options, rng);
  const ResourceVector cap{1.0, 1.0};
  for (double w : {0.25, 0.5, 0.75}) {
    auto s = make_tetris_srpt_scheduler(w);
    EXPECT_GT(validated_makespan(*s, dag, cap), 0) << "weight " << w;
  }
}

}  // namespace
}  // namespace spear
