#include "env/env.h"

#include <limits>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "fault/runner.h"
#include "mcts/policies.h"
#include "support/builders.h"

namespace spear {
namespace {

ResourceVector cap() { return ResourceVector{1.0, 1.0}; }

std::shared_ptr<const FaultInjector> injector_with(double rate,
                                                   std::uint64_t seed) {
  FaultOptions options;
  options.fault_rate = rate;
  options.seed = seed;
  return std::make_shared<const FaultInjector>(options, cap());
}

SchedulingEnv make_fault_env(Dag dag,
                             std::shared_ptr<const FaultInjector> faults,
                             RetryOptions retry = {}) {
  EnvOptions options;
  options.max_ready = std::max<std::size_t>(dag.num_tasks(), 1);
  options.faults = std::move(faults);
  options.retry = retry;
  return SchedulingEnv(std::make_shared<Dag>(std::move(dag)), cap(), options);
}

/// Schedules the first fitting visible task, otherwise processes.
Time drive_greedy(SchedulingEnv& env) {
  while (!env.done()) {
    bool scheduled = false;
    for (std::size_t i = 0; i < env.ready().size(); ++i) {
      if (env.can_schedule(i)) {
        env.step(static_cast<int>(i));
        scheduled = true;
        break;
      }
    }
    if (!scheduled) env.process_to_next_finish();
  }
  return env.makespan();
}

/// Seed whose fault trace makes attempt 0 of every listed task fail and
/// attempt 1 succeed (deterministic given the scan order).
std::shared_ptr<const FaultInjector> find_fail_once_injector(
    const Dag& dag, double rate) {
  for (std::uint64_t seed = 1; seed < 5000; ++seed) {
    auto candidate = injector_with(rate, seed);
    bool ok = true;
    for (const auto& t : dag.tasks()) {
      if (!candidate->attempt_outcome(t, 0).fails ||
          candidate->attempt_outcome(t, 1).fails) {
        ok = false;
        break;
      }
    }
    if (ok) return candidate;
  }
  return nullptr;
}

TEST(EnvFaults, AllTasksFailOnceThenRecover) {
  const Dag dag = testing::make_independent(3, 6);
  auto injector = find_fail_once_injector(dag, 0.5);
  ASSERT_TRUE(injector);

  SchedulingEnv env =
      make_fault_env(testing::make_independent(3, 6), injector);
  const Time makespan = drive_greedy(env);

  EXPECT_EQ(env.fault_stats().failures, 3);
  EXPECT_EQ(env.fault_stats().retries, 3);
  EXPECT_EQ(env.pending_retries(), 0u);
  // Every task ran (at least partially) twice, so the episode outlasts the
  // ideal 2-wave packing of three half-capacity tasks (12 slots).
  EXPECT_GT(makespan, 6);
  EXPECT_EQ(env.cluster().schedule().validate_under_faults(env.dag(), cap(),
                                                           *injector),
            std::nullopt);
  EXPECT_EQ(env.cluster().schedule().attempts().size(), 6u);
}

TEST(EnvFaults, RetryBudgetExhaustionAbortsInsteadOfLooping) {
  const Dag probe = testing::make_chain({8});
  std::shared_ptr<const FaultInjector> injector;
  for (std::uint64_t seed = 1; seed < 100 && !injector; ++seed) {
    auto candidate = injector_with(0.9, seed);
    if (candidate->attempt_outcome(probe.task(0), 0).fails) {
      injector = candidate;
    }
  }
  ASSERT_TRUE(injector);

  RetryOptions retry;
  retry.max_retries = 0;  // the very first failure is fatal
  SchedulingEnv env =
      make_fault_env(testing::make_chain({8}), injector, retry);
  try {
    drive_greedy(env);
    FAIL() << "expected JobAbortedError";
  } catch (const JobAbortedError& e) {
    EXPECT_EQ(e.task(), 0);
    EXPECT_EQ(e.attempts(), 1);
    EXPECT_NE(std::string(e.what()).find("retry budget exhausted"),
              std::string::npos);
  }
}

TEST(EnvFaults, PerTaskDeadlineAborts) {
  const Dag probe = testing::make_chain({8});
  std::shared_ptr<const FaultInjector> injector;
  for (std::uint64_t seed = 1; seed < 100 && !injector; ++seed) {
    auto candidate = injector_with(0.9, seed);
    if (candidate->attempt_outcome(probe.task(0), 0).fails) {
      injector = candidate;
    }
  }
  ASSERT_TRUE(injector);

  RetryOptions retry;
  retry.max_retries = 5;
  retry.backoff_base = 10;   // retry would release 10 slots after failure...
  retry.task_deadline = 1;   // ...far beyond the 1-slot deadline
  SchedulingEnv env =
      make_fault_env(testing::make_chain({8}), injector, retry);
  try {
    drive_greedy(env);
    FAIL() << "expected JobAbortedError";
  } catch (const JobAbortedError& e) {
    EXPECT_EQ(e.task(), 0);
    EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos);
  }
}

TEST(EnvFaults, BackoffDelaysTheRetryExactly) {
  const Dag probe = testing::make_chain({10});
  std::shared_ptr<const FaultInjector> injector;
  for (std::uint64_t seed = 1; seed < 1000 && !injector; ++seed) {
    auto candidate = injector_with(0.5, seed);
    if (candidate->attempt_outcome(probe.task(0), 0).fails &&
        !candidate->attempt_outcome(probe.task(0), 1).fails) {
      injector = candidate;
    }
  }
  ASSERT_TRUE(injector);
  const Time fail_at = injector->attempt_outcome(probe.task(0), 0).duration;

  RetryOptions retry;
  retry.backoff_base = 4;
  SchedulingEnv env =
      make_fault_env(testing::make_chain({10}), injector, retry);

  ASSERT_TRUE(env.can_schedule(0));
  env.step(0);
  env.process_to_next_finish();  // runs into the failure
  EXPECT_EQ(env.now(), fail_at);
  EXPECT_EQ(env.fault_stats().failures, 1);
  EXPECT_EQ(env.fault_stats().retries, 1);
  EXPECT_EQ(env.pending_retries(), 1u);
  EXPECT_TRUE(env.ready().empty());
  // Idle cluster, but a pending retry makes process meaningful.
  ASSERT_TRUE(env.can_process());

  env.process_to_next_finish();  // waits out the backoff
  EXPECT_EQ(env.now(), fail_at + 4);
  EXPECT_EQ(env.pending_retries(), 0u);
  ASSERT_EQ(env.ready().size(), 1u);

  env.step(0);
  env.process_to_next_finish();
  EXPECT_TRUE(env.done());
  EXPECT_EQ(env.makespan(), fail_at + 4 + 10);
}

TEST(EnvFaults, CapacityLossWindowBlocksPlacementUntilItCloses) {
  // A full-capacity loss window; find a seed that leaves slack before it so
  // the first task can start at t = 0.
  std::shared_ptr<const FaultInjector> injector;
  for (std::uint64_t seed = 1; seed < 100 && !injector; ++seed) {
    FaultOptions options;
    options.num_loss_windows = 1;
    options.loss_fraction = 1.0;
    options.loss_horizon = 40;
    options.loss_window_length = 10;
    options.seed = seed;
    auto candidate = std::make_shared<const FaultInjector>(options, cap());
    if (!candidate->loss_windows().empty() &&
        candidate->loss_windows().front().start >= 2) {
      injector = candidate;
    }
  }
  ASSERT_TRUE(injector);
  const auto& window = injector->loss_windows().front();

  // Chain: the first task finishes one slot into the window, leaving its
  // child ready but unplaceable until the window closes.
  SchedulingEnv env = make_fault_env(
      testing::make_chain({window.start + 1, 5}), injector);

  ASSERT_TRUE(env.can_schedule(0));
  env.step(0);
  env.process_to_next_finish();
  EXPECT_EQ(env.now(), window.start + 1);
  ASSERT_EQ(env.ready().size(), 1u);
  EXPECT_FALSE(env.can_schedule(0));  // window withholds all capacity
  // Idle cluster + blocked ready task: process must remain available, and
  // the only valid action, so the episode cannot deadlock.
  EXPECT_TRUE(env.can_process());
  EXPECT_EQ(env.valid_actions(),
            std::vector<int>{SchedulingEnv::kProcessAction});

  env.process_to_next_finish();  // waits out the window
  EXPECT_EQ(env.now(), window.end);
  ASSERT_TRUE(env.can_schedule(0));
  env.step(0);
  env.process_to_next_finish();
  EXPECT_TRUE(env.done());
  EXPECT_EQ(env.makespan(), window.end + 5);
  EXPECT_EQ(env.cluster().schedule().validate_under_faults(env.dag(), cap(),
                                                           *injector),
            std::nullopt);
}

TEST(EnvFaults, StragglersStretchTheMakespan) {
  FaultOptions options;
  options.straggler_rate = 1.0;
  options.straggler_factor = 2.0;
  auto injector = std::make_shared<const FaultInjector>(options, cap());

  SchedulingEnv env = make_fault_env(testing::make_chain({5}), injector);
  const Time makespan = drive_greedy(env);
  EXPECT_EQ(makespan, 10);  // every attempt runs 2x slower
  EXPECT_EQ(env.fault_stats().failures, 0);
  EXPECT_EQ(env.cluster().schedule().makespan(env.dag()), 10);
}

// --- Hardened retry backoff (overflow + deadline clamps) ------------------

TEST(RetryBackoff, MatchesClosedFormWithinTheCap) {
  RetryOptions retry;
  retry.backoff_base = 4;
  retry.backoff_cap = 64;
  EXPECT_EQ(retry_backoff_delay(retry, 1, 0, 0), 4);
  EXPECT_EQ(retry_backoff_delay(retry, 2, 0, 0), 8);
  EXPECT_EQ(retry_backoff_delay(retry, 3, 0, 0), 16);
  EXPECT_EQ(retry_backoff_delay(retry, 4, 0, 0), 32);
  EXPECT_EQ(retry_backoff_delay(retry, 5, 0, 0), 64);
  EXPECT_EQ(retry_backoff_delay(retry, 6, 0, 0), 64);  // capped from here on
}

TEST(RetryBackoff, DoublingSaturatesInsteadOfOverflowing) {
  // With a huge cap the naive base * 2^(k-1) recurrence overflows the signed
  // Time around attempt 63 and yields a negative delay "in the past".  The
  // hardened version saturates at the cap and stays representable.
  RetryOptions retry;
  retry.backoff_base = 1;
  retry.backoff_cap = std::numeric_limits<Time>::max();
  const Time d = retry_backoff_delay(retry, 200, 0, 0);
  EXPECT_GT(d, 0);
  EXPECT_EQ(d, std::numeric_limits<Time>::max());
  // now + delay must remain representable too.
  const Time now = 1000;
  EXPECT_EQ(retry_backoff_delay(retry, 200, now, 0),
            std::numeric_limits<Time>::max() - now);
}

TEST(RetryBackoff, CapsAtTheRemainingDeadlineWindow) {
  RetryOptions retry;
  retry.backoff_base = 40;
  retry.backoff_cap = 1000;
  retry.task_deadline = 100;
  // Second failure at t = 50: the naive delay (80) would release at 130,
  // past the deadline at 100.  The hardened delay waits only the remaining
  // 50 slots — the last admissible retry instant.
  EXPECT_EQ(retry_backoff_delay(retry, 2, 50, 0), 50);
  // An already-spent window leaves the delay uncapped; the caller's
  // deadline check then aborts exactly as before.
  EXPECT_EQ(retry_backoff_delay(retry, 2, 180, 0), 80);
  // first_start shifts the window.
  EXPECT_EQ(retry_backoff_delay(retry, 2, 150, 100), 50);
  // No deadline: no clamp at all.
  retry.task_deadline = 0;
  EXPECT_EQ(retry_backoff_delay(retry, 2, 50, 0), 80);
}

TEST(RetryBackoff, DeadlineClampRescuesAJobTheNaiveBackoffWouldAbort) {
  // A task that fails twice: the first backoff (40) fits the 100-slot
  // deadline, but the naive second backoff (80) would release at >= 122 and
  // abort the job.  The hardened backoff parks the retry at exactly the
  // deadline instant, where the third attempt succeeds.
  const Dag probe = testing::make_chain({10});
  std::shared_ptr<const FaultInjector> injector;
  for (std::uint64_t seed = 1; seed < 20000 && !injector; ++seed) {
    auto candidate = injector_with(0.5, seed);
    if (candidate->attempt_outcome(probe.task(0), 0).fails &&
        candidate->attempt_outcome(probe.task(0), 1).fails &&
        !candidate->attempt_outcome(probe.task(0), 2).fails) {
      injector = candidate;
    }
  }
  ASSERT_TRUE(injector);
  const Time f1 = injector->attempt_outcome(probe.task(0), 0).duration;
  const Time f2 = injector->attempt_outcome(probe.task(0), 1).duration;
  // Failed attempts die strictly inside the 10-slot runtime, so the second
  // failure lands at f1 + 40 + f2 <= 58 < 100 while the naive retry at
  // + 80 would land at >= 122 > 100.
  ASSERT_LE(f1 + 40 + f2, 58);

  RetryOptions retry;
  retry.max_retries = 3;
  retry.backoff_base = 40;
  retry.backoff_cap = 1000;
  retry.task_deadline = 100;
  SchedulingEnv env =
      make_fault_env(testing::make_chain({10}), injector, retry);
  const Time makespan = drive_greedy(env);
  EXPECT_EQ(env.fault_stats().failures, 2);
  EXPECT_EQ(env.fault_stats().retries, 2);
  // The rescued third attempt starts at the deadline instant exactly.
  EXPECT_EQ(makespan, 100 + 10);
  EXPECT_EQ(env.cluster().schedule().validate_under_faults(env.dag(), cap(),
                                                           *injector),
            std::nullopt);
}

// --- Greedy policy execution under faults (the rescheduling baselines) ---

TEST(FaultRunner, HeuristicPoliciesRescheduleThroughFailures) {
  const Dag dag = testing::make_diamond(3, 4, 5, 2);
  auto injector = injector_with(0.3, 11);
  RetryOptions retry;

  for (auto* policy :
       std::initializer_list<DecisionPolicy*>{new TetrisDecisionPolicy(),
                                              new CpDecisionPolicy()}) {
    std::unique_ptr<DecisionPolicy> owned(policy);
    const FaultRunResult result =
        run_policy_under_faults(*owned, dag, cap(), injector, retry);
    EXPECT_FALSE(result.aborted) << result.abort_reason;
    EXPECT_EQ(result.schedule.validate_under_faults(dag, cap(), *injector),
              std::nullopt);
    EXPECT_EQ(result.makespan, result.schedule.makespan(dag));
  }
}

TEST(FaultRunner, NullInjectorMatchesIdealizedValidation) {
  const Dag dag = testing::make_diamond(3, 4, 5, 2);
  TetrisDecisionPolicy tetris;
  const FaultRunResult result =
      run_policy_under_faults(tetris, dag, cap(), nullptr, {});
  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(result.schedule.validate(dag, cap()), std::nullopt);
  EXPECT_TRUE(result.schedule.attempts().empty());
  EXPECT_EQ(result.fault_stats.failures, 0);
}

}  // namespace
}  // namespace spear
