#include "dag/dot.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "support/builders.h"

namespace spear {
namespace {

TEST(Dot, ContainsNodesAndEdges) {
  Dag dag = testing::make_diamond(1, 2, 3, 4);
  const auto dot = to_dot(dag);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("t0"), std::string::npos);
  EXPECT_NE(dot.find("t3"), std::string::npos);
  EXPECT_NE(dot.find("t0 -> t1"), std::string::npos);
  EXPECT_NE(dot.find("t2 -> t3"), std::string::npos);
}

TEST(Dot, ShowsRuntimeAndDemand) {
  Dag dag = testing::make_chain({7});
  const auto dot = to_dot(dag);
  EXPECT_NE(dot.find("rt=7"), std::string::npos);
  EXPECT_NE(dot.find("(0.5, 0.5)"), std::string::npos);
}

TEST(Dot, IncludesTaskNames) {
  Dag dag = testing::make_diamond(1, 1, 1, 1);
  const auto dot = to_dot(dag);
  EXPECT_NE(dot.find("a\\n"), std::string::npos);
  EXPECT_NE(dot.find("d\\n"), std::string::npos);
}

TEST(Dot, WritesToFile) {
  const auto path =
      (std::filesystem::temp_directory_path() / "spear_dot_test.dot").string();
  Dag dag = testing::make_chain({1, 2});
  write_dot(dag, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, to_dot(dag));
  std::remove(path.c_str());
}

TEST(Dot, WriteFailureThrows) {
  Dag dag = testing::make_chain({1});
  EXPECT_THROW(write_dot(dag, "/nonexistent/dir/x.dot"), std::runtime_error);
}

}  // namespace
}  // namespace spear
