#include "mcts/mcts.h"

#include <memory>

#include <gtest/gtest.h>

#include "dag/generator.h"
#include "sched/random_scheduler.h"
#include "sched/tetris.h"
#include "support/brute_force.h"
#include "support/builders.h"

namespace spear {
namespace {

ResourceVector cap() { return ResourceVector{1.0, 1.0}; }

SchedulingEnv make_env(Dag dag) {
  EnvOptions options;
  options.max_ready = std::max<std::size_t>(dag.num_tasks(), 1);
  return SchedulingEnv(std::make_shared<Dag>(std::move(dag)), cap(), options);
}

TEST(SearchTree, AddChildAndBackpropagate) {
  SearchTree tree(make_env(testing::make_chain({1, 2})));
  const NodeId root = tree.root();
  EXPECT_EQ(tree.size(), 1u);

  SchedulingEnv child_state = tree.node(root).state;
  child_state.step(0);
  const NodeId child = tree.add_child(root, 0, std::move(child_state));
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_EQ(tree.node(child).parent, root);
  EXPECT_EQ(tree.node(child).action_from_parent, 0);
  EXPECT_EQ(tree.node(root).children, std::vector<NodeId>{child});

  tree.backpropagate(child, -10.0);
  tree.backpropagate(child, -4.0);
  EXPECT_EQ(tree.node(child).visits, 2);
  EXPECT_DOUBLE_EQ(tree.node(child).max_value, -4.0);
  EXPECT_DOUBLE_EQ(tree.node(child).mean_value(), -7.0);
  EXPECT_EQ(tree.node(root).visits, 2);
  EXPECT_DOUBLE_EQ(tree.node(root).max_value, -4.0);
}

TEST(Mcts, RejectsBadOptions) {
  MctsOptions options;
  options.initial_budget = 0;
  EXPECT_THROW(MctsScheduler{options}, std::invalid_argument);
  options = {};
  options.min_budget = -1;
  EXPECT_THROW(MctsScheduler{options}, std::invalid_argument);
  options = {};
  options.exploration_scale = -0.5;
  EXPECT_THROW(MctsScheduler{options}, std::invalid_argument);
}

TEST(Mcts, SingleTaskIsTrivial) {
  MctsOptions options;
  options.initial_budget = 10;
  options.min_budget = 2;
  MctsScheduler mcts(options);
  Dag dag = testing::make_chain({5});
  EXPECT_EQ(validated_makespan(mcts, dag, cap()), 5);
}

TEST(Mcts, ChainIsSequential) {
  MctsOptions options;
  options.initial_budget = 20;
  options.min_budget = 3;
  MctsScheduler mcts(options);
  Dag dag = testing::make_chain({2, 3, 4});
  EXPECT_EQ(validated_makespan(mcts, dag, cap()), 9);
}

TEST(Mcts, PacksIndependentTasksOptimally) {
  MctsOptions options;
  options.initial_budget = 50;
  options.min_budget = 10;
  MctsScheduler mcts(options);
  Dag dag = testing::make_independent(4, 5, ResourceVector{0.5, 0.5});
  EXPECT_EQ(validated_makespan(mcts, dag, cap()), 10);
}

TEST(Mcts, StatsArePopulated) {
  MctsOptions options;
  options.initial_budget = 30;
  options.min_budget = 5;
  MctsScheduler mcts(options);
  Dag dag = testing::make_independent(4, 3, ResourceVector{0.4, 0.4});
  mcts.schedule(dag, cap());
  const auto& stats = mcts.last_stats();
  EXPECT_GT(stats.decisions, 0);
  EXPECT_GT(stats.iterations, 0);
  EXPECT_GT(stats.rollouts, 0);
}

TEST(Mcts, ForcedMovesSkipSearch) {
  // A pure chain has exactly one valid action at every decision, so no
  // search iterations should be spent at all.
  MctsOptions options;
  options.initial_budget = 1000;
  options.min_budget = 100;
  MctsScheduler mcts(options);
  Dag dag = testing::make_chain({2, 2, 2});
  mcts.schedule(dag, cap());
  EXPECT_EQ(mcts.last_stats().iterations, 0);
}

TEST(Mcts, DeterministicGivenSeed) {
  DagGeneratorOptions gen;
  gen.num_tasks = 15;
  Rng rng(3);
  Dag dag = generate_random_dag(gen, rng);
  MctsOptions options;
  options.initial_budget = 40;
  options.min_budget = 8;
  options.seed = 77;
  MctsScheduler a(options), b(options);
  EXPECT_EQ(a.schedule(dag, cap()).makespan(dag),
            b.schedule(dag, cap()).makespan(dag));
}

TEST(Mcts, FindsOptimalOnSmallInstances) {
  // Brute-force-verified optimality on tiny random DAGs.
  DagGeneratorOptions gen;
  gen.num_tasks = 6;
  gen.max_width = 3;
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    Rng rng(seed);
    Dag dag = generate_random_dag(gen, rng);
    const auto optimal = testing::optimal_makespan(dag, cap());
    ASSERT_TRUE(optimal.has_value());

    MctsOptions options;
    options.initial_budget = 300;
    options.min_budget = 100;
    options.seed = seed;
    MctsScheduler mcts(options);
    EXPECT_EQ(validated_makespan(mcts, dag, cap()), *optimal)
        << "seed " << seed;
  }
}

TEST(Mcts, BeatsRandomSchedulingOnAverage) {
  DagGeneratorOptions gen;
  gen.num_tasks = 20;
  Rng rng(9);
  double mcts_total = 0.0, random_total = 0.0;
  for (int i = 0; i < 3; ++i) {
    Dag dag = generate_random_dag(gen, rng);
    MctsOptions options;
    options.initial_budget = 100;
    options.min_budget = 20;
    options.seed = static_cast<std::uint64_t>(i);
    MctsScheduler mcts(options);
    mcts_total += static_cast<double>(validated_makespan(mcts, dag, cap()));
    auto random = make_random_scheduler(static_cast<std::uint64_t>(i));
    random_total +=
        static_cast<double>(validated_makespan(*random, dag, cap()));
  }
  EXPECT_LE(mcts_total, random_total);
}

TEST(Mcts, MoreBudgetDoesNotHurtOnAverage) {
  // The paper's Fig. 7(a) trend, in miniature: across a few DAGs, total
  // makespan with a large budget <= with a tiny budget.
  DagGeneratorOptions gen;
  gen.num_tasks = 15;
  Rng rng(10);
  double small_total = 0.0, large_total = 0.0;
  for (int i = 0; i < 4; ++i) {
    Dag dag = generate_random_dag(gen, rng);
    MctsOptions small;
    small.initial_budget = 5;
    small.min_budget = 2;
    small.seed = 1;
    MctsScheduler s(small);
    small_total += static_cast<double>(validated_makespan(s, dag, cap()));
    MctsOptions large;
    large.initial_budget = 200;
    large.min_budget = 50;
    large.seed = 1;
    MctsScheduler l(large);
    large_total += static_cast<double>(validated_makespan(l, dag, cap()));
  }
  EXPECT_LE(large_total, small_total);
}

TEST(Mcts, MeanBackpropAblationStillValid) {
  DagGeneratorOptions gen;
  gen.num_tasks = 15;
  Rng rng(12);
  Dag dag = generate_random_dag(gen, rng);
  MctsOptions options;
  options.initial_budget = 50;
  options.min_budget = 10;
  options.max_backprop = false;  // classic mean-value UCB
  MctsScheduler mcts(options);
  DagFeatures features(dag);
  const Time makespan = validated_makespan(mcts, dag, cap());
  EXPECT_GE(makespan, features.critical_path());
  EXPECT_LE(makespan, dag.total_runtime());
}

TEST(Mcts, FlatBudgetAblationUsesMoreIterations) {
  DagGeneratorOptions gen;
  gen.num_tasks = 12;
  Rng rng(13);
  Dag dag = generate_random_dag(gen, rng);

  MctsOptions decayed;
  decayed.initial_budget = 60;
  decayed.min_budget = 5;
  decayed.seed = 3;
  MctsScheduler with_decay(decayed);
  with_decay.schedule(dag, cap());

  MctsOptions flat = decayed;
  flat.decay_budget = false;
  MctsScheduler without_decay(flat);
  without_decay.schedule(dag, cap());

  EXPECT_GT(without_decay.last_stats().iterations,
            with_decay.last_stats().iterations);
}

TEST(Mcts, TreeReuseProducesValidSchedules) {
  DagGeneratorOptions gen;
  gen.num_tasks = 20;
  Rng rng(14);
  Dag dag = generate_random_dag(gen, rng);
  MctsOptions options;
  options.initial_budget = 60;
  options.min_budget = 10;
  options.reuse_tree = true;
  MctsScheduler mcts(options);
  DagFeatures features(dag);
  const Time makespan = validated_makespan(mcts, dag, cap());
  EXPECT_GE(makespan, features.critical_path());
  EXPECT_LE(makespan, dag.total_runtime());
  EXPECT_GT(mcts.last_stats().decisions, 0);
}

TEST(Mcts, TreeReuseStillFindsOptimalOnSmallInstance) {
  Dag dag = testing::make_independent(4, 5, ResourceVector{0.5, 0.5});
  MctsOptions options;
  options.initial_budget = 80;
  options.min_budget = 20;
  options.reuse_tree = true;
  MctsScheduler mcts(options);
  EXPECT_EQ(validated_makespan(mcts, dag, cap()), 10);
}

TEST(SearchTree, RerootKeepsSubtreeStatistics) {
  SearchTree tree(make_env(testing::make_independent(
      3, 2, ResourceVector{0.3, 0.3})));
  SearchNode& root = tree.node(tree.root());
  root.untried = {{0, 1.0}, {1, 0.5}};

  SchedulingEnv child_state = root.state;
  child_state.step(0);
  const NodeId child = tree.add_child(tree.root(), 0, std::move(child_state));
  tree.node(child).untried = {{1, 1.0}};
  SchedulingEnv grandchild_state = tree.node(child).state;
  grandchild_state.step(1);
  const NodeId grandchild =
      tree.add_child(child, 1, std::move(grandchild_state));
  tree.backpropagate(grandchild, -12.0);
  tree.backpropagate(child, -20.0);

  SearchTree rerooted = tree.reroot(child);
  const SearchNode& new_root = rerooted.node(rerooted.root());
  EXPECT_EQ(new_root.parent, kNoNode);
  EXPECT_EQ(new_root.visits, 2);
  EXPECT_DOUBLE_EQ(new_root.max_value, -12.0);
  EXPECT_EQ(new_root.untried.size(), 1u);
  ASSERT_EQ(new_root.children.size(), 1u);
  const SearchNode& moved_grandchild =
      rerooted.node(new_root.children.front());
  EXPECT_EQ(moved_grandchild.action_from_parent, 1);
  EXPECT_DOUBLE_EQ(moved_grandchild.max_value, -12.0);
  EXPECT_EQ(rerooted.size(), 2u);  // sibling-free: only the subtree
}

TEST(Mcts, RejectsNonPositiveThreadCount) {
  MctsOptions options;
  options.num_threads = 0;
  EXPECT_THROW(MctsScheduler{options}, std::invalid_argument);
  options.num_threads = -2;
  EXPECT_THROW(MctsScheduler{options}, std::invalid_argument);
}

TEST(Mcts, ParallelPacksIndependentTasksOptimally) {
  MctsOptions options;
  options.initial_budget = 50;
  options.min_budget = 10;
  options.num_threads = 4;
  MctsScheduler mcts(options);
  Dag dag = testing::make_independent(4, 5, ResourceVector{0.5, 0.5});
  EXPECT_EQ(validated_makespan(mcts, dag, cap()), 10);
}

TEST(Mcts, ParallelMatchesSerialOptimaOnSmallInstances) {
  // Makespan parity: on brute-force-verified instances, the root-parallel
  // search must find the same optimum the serial search finds.
  DagGeneratorOptions gen;
  gen.num_tasks = 6;
  gen.max_width = 3;
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    Rng rng(seed);
    Dag dag = generate_random_dag(gen, rng);
    const auto optimal = testing::optimal_makespan(dag, cap());
    ASSERT_TRUE(optimal.has_value());

    MctsOptions options;
    options.initial_budget = 300;
    options.min_budget = 100;
    options.seed = seed;
    options.num_threads = 4;
    MctsScheduler mcts(options);
    EXPECT_EQ(validated_makespan(mcts, dag, cap()), *optimal)
        << "seed " << seed;
  }
}

TEST(Mcts, ParallelDeterministicAtFixedThreadCount) {
  // Worker RNG streams depend only on (seed, decision, worker id) and the
  // merge is order-independent of OS scheduling, so repeated runs with the
  // same thread count must agree exactly.
  DagGeneratorOptions gen;
  gen.num_tasks = 15;
  Rng rng(3);
  Dag dag = generate_random_dag(gen, rng);
  MctsOptions options;
  options.initial_budget = 40;
  options.min_budget = 8;
  options.seed = 77;
  options.num_threads = 3;
  MctsScheduler a(options), b(options);
  EXPECT_EQ(a.schedule(dag, cap()).makespan(dag),
            b.schedule(dag, cap()).makespan(dag));
  EXPECT_EQ(a.last_stats().iterations, b.last_stats().iterations);
  EXPECT_EQ(a.last_stats().rollouts, b.last_stats().rollouts);
}

TEST(Mcts, ParallelTelemetryPopulated) {
  MctsOptions options;
  options.initial_budget = 30;
  options.min_budget = 6;
  options.num_threads = 2;
  MctsScheduler mcts(options);
  Dag dag = testing::make_independent(4, 3, ResourceVector{0.4, 0.4});
  mcts.schedule(dag, cap());
  const auto& stats = mcts.last_stats();
  EXPECT_GT(stats.decisions, 0);
  EXPECT_GT(stats.iterations, 0);
  EXPECT_GT(stats.rollouts, 0);
  EXPECT_GT(stats.nodes_expanded, 0);
  EXPECT_GT(stats.env_copies, 0);
  EXPECT_GT(stats.search_seconds, 0.0);
  EXPECT_GT(stats.seconds_per_decision(), 0.0);
  EXPECT_GT(stats.iterations_per_second(), 0.0);
}

TEST(Mcts, SerialTelemetryPopulated) {
  MctsOptions options;
  options.initial_budget = 30;
  options.min_budget = 5;
  MctsScheduler mcts(options);
  Dag dag = testing::make_independent(4, 3, ResourceVector{0.4, 0.4});
  mcts.schedule(dag, cap());
  const auto& stats = mcts.last_stats();
  EXPECT_GT(stats.nodes_expanded, 0);
  EXPECT_GT(stats.env_copies, 0);
  EXPECT_GT(stats.search_seconds, 0.0);
  // Each iteration expands at most one node and copies the env at most
  // twice (child snapshot + rollout start).
  EXPECT_LE(stats.nodes_expanded, stats.iterations);
  EXPECT_LE(stats.env_copies, 2 * stats.iterations);
}

TEST(Mcts, SerialAndParallelStatsAccountIdentically) {
  // With a flat budget and no deadline, every searched decision consumes
  // exactly initial_budget iterations: trivially in the serial mode, and in
  // the root-parallel mode because the per-worker shares sum to the budget.
  // The parallel half of this invariant only holds when the merge folds
  // every worker's private Stats in — a dropped accumulator undercounts.
  DagGeneratorOptions gen;
  gen.num_tasks = 12;
  Rng rng(5);
  Dag dag = generate_random_dag(gen, rng);

  const std::int64_t budget = 48;
  const auto run = [&](int threads) {
    MctsOptions options;
    options.initial_budget = budget;
    options.min_budget = budget;
    options.decay_budget = false;
    options.seed = 21;
    options.num_threads = threads;
    MctsScheduler mcts(options);
    mcts.schedule(dag, cap());
    return mcts.last_stats();
  };

  for (const int threads : {1, 3, 4}) {
    const auto stats = run(threads);
    ASSERT_GT(stats.searched_decisions(), 0) << "threads " << threads;
    EXPECT_EQ(stats.iterations, stats.searched_decisions() * budget)
        << "threads " << threads;
    // Terminal/aborted leaves backpropagate without a rollout.
    EXPECT_GT(stats.rollouts, 0) << "threads " << threads;
    EXPECT_LE(stats.rollouts, stats.iterations) << "threads " << threads;
    EXPECT_LE(stats.nodes_expanded, stats.iterations)
        << "threads " << threads;
    EXPECT_EQ(stats.decisions,
              stats.searched_decisions() + stats.forced_decisions)
        << "threads " << threads;
  }
}

TEST(Mcts, UncloneableGuideFallsBackToSerialSearch) {
  // A custom guide without clone() cannot be shared across workers; the
  // scheduler must silently run the serial search instead of racing.
  class UniformNoClone : public DecisionPolicy {
   public:
    std::vector<std::pair<int, double>> action_weights(
        const SchedulingEnv& env) override {
      std::vector<std::pair<int, double>> out;
      for (int a : env.valid_actions()) out.emplace_back(a, 1.0);
      return out;
    }
  };
  MctsOptions options;
  options.initial_budget = 40;
  options.min_budget = 10;
  options.num_threads = 4;
  MctsScheduler mcts(options, std::make_shared<UniformNoClone>());
  Dag dag = testing::make_independent(4, 5, ResourceVector{0.5, 0.5});
  EXPECT_EQ(validated_makespan(mcts, dag, cap()), 10);
  EXPECT_GT(mcts.last_stats().iterations, 0);
}

TEST(GreedyEstimate, MatchesHeuristicRollout) {
  Dag dag = testing::make_independent(4, 5, ResourceVector{0.5, 0.5});
  auto env = make_env(dag);
  EXPECT_EQ(greedy_makespan_estimate(env), 10);
  Dag chain = testing::make_chain({2, 3});
  auto env2 = make_env(chain);
  EXPECT_EQ(greedy_makespan_estimate(env2), 5);
}

TEST(DecisionPolicies, RandomWeightsAreUniformOverValid) {
  RandomDecisionPolicy policy;
  auto env = make_env(testing::make_independent(3, 2, ResourceVector{0.3, 0.3}));
  const auto weights = policy.action_weights(env);
  ASSERT_EQ(weights.size(), 3u);  // idle cluster: no process action
  for (const auto& [action, w] : weights) {
    EXPECT_GE(action, 0);
    EXPECT_DOUBLE_EQ(w, 1.0);
  }
}

TEST(DecisionPolicies, HeuristicIncludesProcessWhenBusy) {
  HeuristicDecisionPolicy policy;
  auto env = make_env(testing::make_independent(2, 4, ResourceVector{0.4, 0.4}));
  env.step(0);
  const auto weights = policy.action_weights(env);
  bool has_process = false;
  for (const auto& [action, w] : weights) {
    if (action == SchedulingEnv::kProcessAction) has_process = true;
    EXPECT_GT(w, 0.0);
  }
  EXPECT_TRUE(has_process);
}

TEST(DecisionPolicies, WeightsAreReturnedInDescendingOrder) {
  // The action_weights ordering contract: MCTS pops untried actions from
  // the front, so policies must pre-sort by descending weight.
  HeuristicDecisionPolicy policy;
  auto env = make_env(testing::make_independent(3, 4, ResourceVector{0.3, 0.3}));
  env.step(0);
  const auto weights = policy.action_weights(env);
  ASSERT_GE(weights.size(), 2u);
  for (std::size_t i = 1; i < weights.size(); ++i) {
    EXPECT_GE(weights[i - 1].second, weights[i].second);
  }
}

TEST(DecisionPolicies, BuiltinPoliciesAreCloneable) {
  RandomDecisionPolicy random;
  HeuristicDecisionPolicy heuristic;
  auto random_clone = random.clone();
  auto heuristic_clone = heuristic.clone();
  ASSERT_NE(random_clone, nullptr);
  ASSERT_NE(heuristic_clone, nullptr);
  // Clones behave like the originals.
  auto env = make_env(testing::make_independent(3, 2, ResourceVector{0.3, 0.3}));
  EXPECT_EQ(random_clone->action_weights(env).size(),
            random.action_weights(env).size());
  Rng rng(1);
  EXPECT_EQ(heuristic_clone->pick(env, rng), heuristic.pick(env, rng));
}

TEST(DecisionPolicies, HeuristicPickPrefersSchedulingOverProcess) {
  HeuristicDecisionPolicy policy;
  auto env = make_env(testing::make_independent(2, 4, ResourceVector{0.3, 0.3}));
  env.step(0);
  Rng rng(1);
  const int action = policy.pick(env, rng);
  EXPECT_GE(action, 0);  // schedules the remaining fitting task
}

TEST(DecisionPolicies, PickFallsBackToUniformOnZeroWeights) {
  // A custom policy returning all-zero weights must still pick something.
  class ZeroPolicy : public DecisionPolicy {
   public:
    std::vector<std::pair<int, double>> action_weights(
        const SchedulingEnv& env) override {
      std::vector<std::pair<int, double>> out;
      for (int a : env.valid_actions()) out.emplace_back(a, 0.0);
      return out;
    }
  };
  ZeroPolicy policy;
  auto env = make_env(testing::make_independent(2, 2, ResourceVector{0.2, 0.2}));
  Rng rng(2);
  const int action = policy.pick(env, rng);
  EXPECT_TRUE(action == 0 || action == 1);
}

}  // namespace
}  // namespace spear
